// Package nanobus is a from-scratch Go implementation of the unified bus
// energy-dissipation and thermal model of Sundaresan & Mahapatra,
// "Accurate Energy Dissipation and Thermal Modeling for Nanometer-Scale
// Buses" (HPCA 2005), together with every substrate the paper's evaluation
// depends on: ITRS-2001 technology parameters, a boundary-element
// capacitance extractor, delay-optimal repeater insertion, bus-invert
// family encoders, a RISC CPU + cache simulator producing SPEC-like
// address traces, and an experiment harness that regenerates each of the
// paper's tables and figures.
//
// The package is a facade: it re-exports the stable public surface of the
// internal packages through type aliases, so downstream users program
// against nanobus.* names only.
//
// Quick start:
//
//	sim, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node130})
//	if err != nil { ... }
//	sim.StepWord(0x1000)
//	sim.StepWord(0x1004)
//	if err := sim.Finish(); err != nil { ... }
//	fmt.Println(sim.TotalEnergy().Total(), sim.Temps())
//
// See examples/ for complete programs and DESIGN.md for the system map.
package nanobus

import (
	"nanobus/internal/capmodel"
	"nanobus/internal/core"
	"nanobus/internal/delay"
	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/expt"
	"nanobus/internal/extract"
	"nanobus/internal/extract3d"
	"nanobus/internal/fdm"
	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
	"nanobus/internal/reliability"
	"nanobus/internal/repeater"
	"nanobus/internal/thermal"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// --- Technology nodes (ITRS-2001, the paper's Table 1) ---------------------

// Node describes one technology node's global-interconnect parameters.
type Node = itrs.Node

// The paper's four nodes.
var (
	Node130 = itrs.N130
	Node90  = itrs.N90
	Node65  = itrs.N65
	Node45  = itrs.N45
)

// Nodes returns the four ITRS nodes, oldest first.
func Nodes() []Node { return itrs.Nodes() }

// NodeByName resolves "130nm", "90nm", "65nm" or "45nm".
func NodeByName(name string) (Node, bool) { return itrs.ByName(name) }

// ResolveNode is NodeByName with a typed error: unknown labels return an
// error satisfying errors.Is(err, ErrUnknownNode).
func ResolveNode(name string) (Node, error) { return itrs.Resolve(name) }

// --- Typed errors -----------------------------------------------------------
//
// The facade's fallible constructors return errors wrapping these
// sentinels, testable with errors.Is. Bus methods that can close a
// sampling interval — StepWord, StepIdle, StepBatch, StepIdleBatch, and
// Finish — can poison the simulator's sticky Err(); the sticky error wraps
// ErrSimulatorPoisoned, and Bus.Reset clears it.
var (
	// ErrUnknownEncoding is returned (wrapped) by NewEncoder, NewDecoder
	// and WithEncoding for unrecognised scheme names.
	ErrUnknownEncoding = encoding.ErrUnknownScheme
	// ErrUnknownNode is returned (wrapped) by ResolveNode for
	// unrecognised node labels.
	ErrUnknownNode = itrs.ErrUnknownNode
	// ErrSimulatorPoisoned marks a Bus whose interval flush failed; see
	// Bus.Err.
	ErrSimulatorPoisoned = core.ErrPoisoned
	// ErrCheckpointCorrupt marks a Bus.Restore blob rejected for
	// structural damage: truncation, bad magic, unsupported version, or
	// checksum mismatch.
	ErrCheckpointCorrupt = core.ErrCheckpointCorrupt
	// ErrCheckpointMismatch marks a structurally valid checkpoint taken
	// under a different bus configuration than the Restore target's.
	ErrCheckpointMismatch = core.ErrCheckpointMismatch
)

// --- Bus simulation (the paper's unified model) ----------------------------

// BusConfig configures a bus simulator; see the field docs on core.Config.
type BusConfig = core.Config

// Bus drives one address bus through the per-line energy model and the
// thermal-RC network.
type Bus = core.Simulator

// Sample is one sampling interval's energy/temperature record.
type Sample = core.Sample

// LineEnergy splits a wire's energy into self, adjacent-coupling, and
// non-adjacent-coupling components.
type LineEnergy = energy.LineEnergy

// NewBus builds a bus simulator from an explicit config. BusConfig is the
// zero-magic escape hatch: its zero values mean exactly what core.Config
// documents (self-only coupling, default length/interval). Prefer New for
// the option-based constructor with the paper's full model as default.
func NewBus(cfg BusConfig) (*Bus, error) { return core.New(cfg) }

// PairResult bundles the IA and DA simulators after a RunPair run.
type PairResult = core.PairResult

// RunPair drives separate IA and DA bus simulators from one trace source.
var RunPair = core.RunPair

// RunPairContext is RunPair with cancellation: the context is checked once
// per sampling interval, so cancellation stops the run loop within one
// interval's worth of cycles.
var RunPairContext = core.RunPairContext

// RunSingle drives one simulator from a trace's "ia" or "da" stream.
var RunSingle = core.RunSingle

// RunSingleContext is RunSingle with per-sampling-interval cancellation.
var RunSingleContext = core.RunSingleContext

// DefaultLength is the paper's 10 mm global bus length.
const DefaultLength = core.DefaultLength

// DefaultIntervalCycles is the paper's 100K-cycle sampling interval.
const DefaultIntervalCycles = core.DefaultIntervalCycles

// --- Encodings --------------------------------------------------------------

// Encoder maps data words to physical bus words.
type Encoder = encoding.Encoder

// Decoder recovers data words.
type Decoder = encoding.Decoder

// NewEncoder returns an encoder by name: "Unencoded", "BI", "OEBI", "CBI",
// "Gray", "T0".
func NewEncoder(name string) (Encoder, error) { return encoding.New(name) }

// NewDecoder returns the matching decoder.
func NewDecoder(name string) (Decoder, error) { return encoding.NewDecoder(name) }

// EncodingSchemes lists every implemented scheme.
func EncodingSchemes() []string { return encoding.AllSchemes() }

// CrosstalkHistogram grades a word stream by coupling class (0C..4C).
type CrosstalkHistogram = encoding.CrosstalkHistogram

// NewCrosstalkHistogram returns a histogram for a width-wire bus.
func NewCrosstalkHistogram(width int) *CrosstalkHistogram {
	return encoding.NewCrosstalkHistogram(width)
}

// CrosstalkClass grades one wire's transition (see encoding.CrosstalkClass).
var CrosstalkClass = encoding.CrosstalkClass

// --- Traces and workloads ----------------------------------------------------

// TraceCycle is one committed-instruction slot on the address buses.
type TraceCycle = trace.Cycle

// TraceSource yields consecutive bus cycles.
type TraceSource = trace.Source

// Benchmark is one of the eight SPEC-like synthetic programs.
type Benchmark = workload.Benchmark

// Benchmarks returns the paper's eight benchmarks (integer first).
func Benchmarks() []Benchmark { return workload.All() }

// BenchmarksWithExtras adds the extra workloads (gzip, equake) beyond the
// paper's set.
func BenchmarksWithExtras() []Benchmark { return workload.AllWithExtras() }

// BenchmarkByName resolves eon, crafty, twolf, mcf, applu, swim, art, ammp.
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// NewSyntheticTrace returns the statistical address-stream generator.
func NewSyntheticTrace(cfg trace.SynthConfig) TraceSource { return trace.NewSynth(cfg) }

// DefaultSynthConfig returns an integer-program-like generator config.
var DefaultSynthConfig = trace.DefaultSynthConfig

// --- Capacitance extraction ---------------------------------------------------

// BusLayout is a coplanar bus cross-section for extraction.
type BusLayout = geometry.BusLayout

// ExtractionResult is a Maxwell capacitance matrix in F/m.
type ExtractionResult = extract.Result

// ExtractionOptions tune BEM accuracy.
type ExtractionOptions = extract.Options

// CapacitanceDistribution is the Fig. 1(b) breakdown.
type CapacitanceDistribution = extract.BusDistribution

// ExtractBus runs the boundary-element extractor on a bus layout.
func ExtractBus(layout BusLayout, opts ExtractionOptions) (*ExtractionResult, CapacitanceDistribution, error) {
	return extract.ExtractBus(layout, opts)
}

// Box is an axis-aligned 3-D conductor for the 3-D extractor.
type Box = extract3d.Box

// Extraction3DResult is a 3-D Maxwell capacitance matrix in farads.
type Extraction3DResult = extract3d.Result

// Extraction3DOptions tune the 3-D solver.
type Extraction3DOptions = extract3d.Options

// Extract3D runs the 3-D boundary-element extractor (the FastCap-style
// solver; see internal/extract3d).
var Extract3D = extract3d.Extract

// BusBoxes3D lays out a finite-length coplanar bus for Extract3D.
var BusBoxes3D = extract3d.BusBoxes

// CapacitanceMatrix is the per-unit-length bus capacitance description
// consumed by the energy model.
type CapacitanceMatrix = capmodel.Matrix

// NewCapacitanceMatrix anchors Table 1 values with the node's calibrated
// non-adjacent decay.
func NewCapacitanceMatrix(node Node, wires int) (*CapacitanceMatrix, error) {
	return capmodel.FromNode(node, wires, capmodel.DefaultDecay(node))
}

// --- Repeaters and thermal -----------------------------------------------------

// RepeaterPlan is a delay-optimal insertion result.
type RepeaterPlan = repeater.Plan

// PlanRepeaters computes the delay-optimal plan for a line of the given
// length on the node.
func PlanRepeaters(node Node, length float64) (RepeaterPlan, error) {
	return repeater.InsertDefault(node, length)
}

// ThermalNetwork is the bus thermal-RC network.
type ThermalNetwork = thermal.Network

// ThermalOptions configure NewThermalNetwork.
type ThermalOptions = thermal.NodeOptions

// NewThermalNetwork builds the network for a wires-wide bus on the node.
func NewThermalNetwork(node Node, wires int, opts ThermalOptions) (*ThermalNetwork, error) {
	return thermal.NewFromNode(node, wires, opts)
}

// InterLayerRise evaluates the paper's Eq. 7 heating correction in kelvin.
func InterLayerRise(node Node) float64 { return thermal.InterLayerRise(node) }

// FieldGrid is the 2-D finite-difference thermal field solver used to
// cross-validate the lumped RC network.
type FieldGrid = fdm.Grid

// FieldOptions configure the field discretisation.
type FieldOptions = fdm.Options

// NewFieldCrossSection builds the finite-difference grid of a bus
// cross-section with per-wire line power (W/m).
func NewFieldCrossSection(node Node, power []float64, ambient float64, opts FieldOptions) (*FieldGrid, error) {
	return fdm.NewBusCrossSection(node, power, ambient, opts)
}

// --- Experiments (the paper's tables and figures) --------------------------------

// Experiment result and option types.
type (
	// Table1Row is one node's Table 1 column plus derived model values.
	Table1Row = expt.Table1Row
	// Fig1BRow is one node's capacitance distribution.
	Fig1BRow = expt.Fig1BRow
	// Fig1BOptions tunes the Fig. 1(b) extraction.
	Fig1BOptions = expt.Fig1BOptions
	// Sec33Row quantifies the non-adjacent coupling study.
	Sec33Row = expt.Sec33Row
	// Sec33Options configures the Sec. 3.3 study.
	Sec33Options = expt.Sec33Options
	// Fig3Cell is one Fig. 3 energy bar.
	Fig3Cell = expt.Fig3Cell
	// Fig3Options configures the encoding study.
	Fig3Options = expt.Fig3Options
	// Fig4Series is one transient energy/temperature series.
	Fig4Series = expt.Fig4Series
	// Fig4Options configures the transient study.
	Fig4Options = expt.Fig4Options
	// Fig5Result is the idle-window study outcome.
	Fig5Result = expt.Fig5Result
	// Fig5Options configures the idle-window study.
	Fig5Options = expt.Fig5Options
)

// Experiment drivers; each regenerates one of the paper's tables/figures.
var (
	Table1 = expt.Table1
	Fig1B  = expt.Fig1B
	Sec33  = expt.Sec33
	Fig3   = expt.Fig3
	Fig4   = expt.Fig4
	Fig5   = expt.Fig5
)

// --- Extension analyses (paper Secs. 1, 5.3.1, 6 follow-ons) ----------------

// Extension experiment types.
type (
	// L2BusResult is the L1-to-L2 address-bus study outcome.
	L2BusResult = expt.L2BusResult
	// L2BusOptions configures the L2 bus study.
	L2BusOptions = expt.L2BusOptions
	// SubstrateResult is the substrate-variation study outcome.
	SubstrateResult = expt.SubstrateResult
	// ReliabilityParams configure Black's-equation EM lifetimes.
	ReliabilityParams = reliability.Params
	// BusReliability grades a bus's per-wire EM lifetimes.
	BusReliability = reliability.BusAssessment
	// DelayReport is the temperature-dependent delay analysis of a node.
	DelayReport = delay.Report
)

// Extension drivers.
var (
	// L2Bus drives the L1->L2 address bus through the cache hierarchy.
	L2Bus = expt.L2Bus
	// Substrate runs the combined substrate-variation study.
	Substrate = expt.Substrate
	// AssessReliability grades per-wire electromigration lifetime.
	AssessReliability = reliability.AssessBus
	// RelativeMTTF evaluates Black's equation against a reference point.
	RelativeMTTF = reliability.RelativeMTTF
	// AnalyzeDelay reports thermal delay degradation and RLC damping for
	// all nodes at the given wire temperature (0 = ambient + 20 K).
	AnalyzeDelay = delay.AnalyzeAll
	// DampingFactor classifies a line's RLC damping (>1: over-damped,
	// the paper's RC-model validity condition).
	DampingFactor = delay.DampingFactor
)

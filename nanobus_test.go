package nanobus_test

import (
	"testing"

	"nanobus"
)

// TestFacadeQuickstart exercises the README's quick-start path end to end
// through the public API only.
func TestFacadeQuickstart(t *testing.T) {
	sim, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node130, CouplingDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint32(0x1000); addr < 0x1100; addr += 4 {
		sim.StepWord(addr)
	}
	sim.Finish()
	if sim.TotalEnergy().Total() <= 0 {
		t.Error("no energy dissipated")
	}
	if len(sim.Temps()) != 32 {
		t.Errorf("temps length %d", len(sim.Temps()))
	}
}

func TestFacadeNodes(t *testing.T) {
	if len(nanobus.Nodes()) != 4 {
		t.Error("want 4 nodes")
	}
	n, ok := nanobus.NodeByName("90nm")
	if !ok || n.Name != "90nm" {
		t.Error("NodeByName failed")
	}
}

func TestFacadeEncodersAndBenchmarks(t *testing.T) {
	for _, name := range nanobus.EncodingSchemes() {
		enc, err := nanobus.NewEncoder(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := nanobus.NewDecoder(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dec.Decode(enc.Encode(0xCAFEBABE)) != 0xCAFEBABE {
			t.Errorf("%s: round trip failed", name)
		}
	}
	if len(nanobus.Benchmarks()) != 8 {
		t.Error("want 8 benchmarks")
	}
	if _, ok := nanobus.BenchmarkByName("mcf"); !ok {
		t.Error("mcf missing")
	}
}

func TestFacadeRepeatersThermalExtraction(t *testing.T) {
	plan, err := nanobus.PlanRepeaters(nanobus.Node130, 0.01)
	if err != nil || plan.Crep <= 0 {
		t.Errorf("PlanRepeaters: %+v, %v", plan, err)
	}
	net, err := nanobus.NewThermalNetwork(nanobus.Node130, 8, nanobus.ThermalOptions{})
	if err != nil || net.N() != 8 {
		t.Errorf("NewThermalNetwork: %v", err)
	}
	if nanobus.InterLayerRise(nanobus.Node130) <= 0 {
		t.Error("InterLayerRise <= 0")
	}
	caps, err := nanobus.NewCapacitanceMatrix(nanobus.Node45, 16)
	if err != nil || caps.N() != 16 {
		t.Errorf("NewCapacitanceMatrix: %v", err)
	}
}

func TestFacadeExperimentAliases(t *testing.T) {
	rows, err := nanobus.Table1()
	if err != nil || len(rows) != 4 {
		t.Errorf("Table1: %d rows, %v", len(rows), err)
	}
	s33, err := nanobus.Sec33(nanobus.Sec33Options{})
	if err != nil || len(s33) != 4 {
		t.Errorf("Sec33: %v", err)
	}
}

func TestFacadeSyntheticTrace(t *testing.T) {
	src := nanobus.NewSyntheticTrace(nanobus.DefaultSynthConfig(1))
	ia, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node65})
	if err != nil {
		t.Fatal(err)
	}
	da, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node65})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nanobus.RunPair(src, ia, da, 5000)
	if err != nil || res.Cycles != 5000 {
		t.Fatalf("RunPair: %v cycles=%d", err, res.Cycles)
	}
	if ia.TotalEnergy().Total() <= 0 || da.TotalEnergy().Total() <= 0 {
		t.Error("synthetic trace dissipated nothing")
	}
}

// Hot-path micro-benchmarks for the perf-critical kernels: the memoized
// transition-energy lookup, the exact thermal propagator, the end-to-end
// RunPair pipeline, and sweep scaling across worker counts. scripts/bench.sh
// runs these with -benchmem and records the results in BENCH_hotpath.json.
package nanobus_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"nanobus/internal/capmodel"
	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/expt"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// addressWords is a deterministic address-bus-like word stream: mostly
// sequential, with jumps and holds (the regime the memo targets).
func addressWords(n int) []uint64 {
	words := make([]uint64, n)
	w, rng := uint64(0x4000_1000), uint32(12345)
	for i := range words {
		rng = rng*1664525 + 1013904223
		switch rng % 10 {
		case 0:
			w = uint64(rng) * 2654435761 % (1 << 32) // far jump
		case 1:
			// hold
		default:
			w += 4
		}
		words[i] = w
	}
	return words
}

func benchModel(b *testing.B) *energy.Model {
	b.Helper()
	caps, err := capmodel.FromNode(itrs.N130, 32, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		b.Fatal(err)
	}
	m, err := energy.New(energy.Config{Caps: caps, Length: 0.01, Vdd: itrs.N130.Vdd, Crep: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTransition compares the direct O(s^2) transition kernel against
// the memoized lookup on the same address stream.
func BenchmarkTransition(b *testing.B) {
	m := benchModel(b)
	words := addressWords(1 << 14)
	out := make([]energy.LineEnergy, 32)

	b.Run("direct", func(b *testing.B) {
		prev := uint64(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := words[i&(len(words)-1)]
			if _, err := m.Transition(prev, cur, out); err != nil {
				b.Fatal(err)
			}
			prev = cur
		}
	})
	b.Run("memo", func(b *testing.B) {
		memo, err := energy.NewMemo(m, 0)
		if err != nil {
			b.Fatal(err)
		}
		prev := uint64(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := words[i&(len(words)-1)]
			if _, err := memo.Transition(prev, cur, out); err != nil {
				b.Fatal(err)
			}
			prev = cur
		}
		b.ReportMetric(100*memo.Stats().HitRate(), "hit_pct")
	})
}

// BenchmarkThermalAdvance compares one interval step under the exact
// propagator against the paper's sub-stepped RK4.
func BenchmarkThermalAdvance(b *testing.B) {
	p := make([]float64, 32)
	for i := range p {
		p[i] = 1
	}
	dt := 100_000 / itrs.N130.ClockHz
	for _, mode := range []struct {
		name string
		rk4  bool
	}{{"exact", false}, {"rk4", true}} {
		b.Run(mode.name, func(b *testing.B) {
			net, err := thermal.NewFromNode(itrs.N130, 32, thermal.NodeOptions{UseRK4: mode.rk4})
			if err != nil {
				b.Fatal(err)
			}
			// Prime outside the timer: the propagator factorises lazily.
			if err := net.Advance(dt, p); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Advance(dt, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// loopSource replays a captured window forever, so RunPair benchmarks
// measure simulation cost, not trace generation.
type loopSource struct {
	cycles []trace.Cycle
	pos    int
}

func (s *loopSource) Next() (trace.Cycle, bool) {
	c := s.cycles[s.pos]
	s.pos++
	if s.pos == len(s.cycles) {
		s.pos = 0
	}
	return c, true
}

func captureBenchWindow(b *testing.B, n uint64) []trace.Cycle {
	b.Helper()
	bench, _ := workload.ByName("swim")
	src, err := bench.NewWarmSource(bench.WarmupCycles)
	if err != nil {
		b.Fatal(err)
	}
	window := make([]trace.Cycle, 0, n)
	for uint64(len(window)) < n {
		c, ok := src.Next()
		if !ok {
			b.Fatal("trace ended during capture")
		}
		window = append(window, c)
	}
	return window
}

// BenchmarkRunPair measures end-to-end ns/cycle of the dual-bus pipeline:
// "optimized" is the default configuration (transition memo + exact
// propagator), "unoptimized" disables both (direct kernel + sub-stepped
// RK4) — the pre-overhaul hot path.
func BenchmarkRunPair(b *testing.B) {
	window := captureBenchWindow(b, 1<<16)
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"optimized", core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true}},
		{"unoptimized", core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true,
			MemoSizeLog2: -1, Thermal: thermal.NodeOptions{UseRK4: true}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			mk := func() *core.Simulator {
				sim, err := core.New(mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
				return sim
			}
			ia, da := mk(), mk()
			src := &loopSource{cycles: window}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := core.RunPair(src, ia, da, uint64(b.N))
			if err != nil {
				b.Fatal(err)
			}
			if res.Cycles != uint64(b.N) {
				b.Fatalf("ran %d of %d cycles", res.Cycles, b.N)
			}
		})
	}
}

// BenchmarkStepBatch compares the per-word context loop against the
// chunked batch fast path (one encoder dispatch per chunk, accumulator
// StepBatch) on the same address stream; both are bit-identical paths.
func BenchmarkStepBatch(b *testing.B) {
	words := make([]uint32, 1<<14)
	for i, w := range addressWords(len(words)) {
		words[i] = uint32(w)
	}
	mk := func() *core.Simulator {
		sim, err := core.New(core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true})
		if err != nil {
			b.Fatal(err)
		}
		return sim
	}
	ctx := context.Background()
	b.Run("perword", func(b *testing.B) {
		sim := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.StepWord(words[i&(len(words)-1)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		sim := mk()
		if _, err := sim.StepBatch(ctx, words); err != nil { // warm the memo
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			n := len(words)
			if left := b.N - done; n > left {
				n = left
			}
			if _, err := sim.StepBatch(ctx, words[:n]); err != nil {
				b.Fatal(err)
			}
			done += n
		}
	})
}

// BenchmarkMultiStep measures the struct-of-arrays multi-bus kernel:
// ns/op is the cost of one lockstep cycle (one word on each of the K
// buses), so dividing by K gives the per-bus-per-word cost the benchgate
// multi-gate asserts on (K=16 must be at least 2x cheaper per bus than
// K=1). Each bus carries a phase-shifted address-like stream so the
// shared memo sees realistic cross-bus redundancy. The extra
// ns_word_bus metric is the per-bus normalization, recorded alongside
// ns/op in BENCH_hotpath.json.
func BenchmarkMultiStep(b *testing.B) {
	const rows = 1 << 13
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			msim, err := core.NewMulti(core.MultiConfig{
				Config: core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true},
				Buses:  k,
			})
			if err != nil {
				b.Fatal(err)
			}
			slab := make([]uint32, rows*k)
			for bus := 0; bus < k; bus++ {
				words := addressWords(rows)
				for r := 0; r < rows; r++ {
					slab[r*k+bus] = uint32(words[r]) + uint32(bus)<<10
				}
			}
			ctx := context.Background()
			if _, err := msim.StepBatch(ctx, slab); err != nil { // warm the memo
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := rows
				if left := b.N - done; n > left {
					n = left
				}
				if _, err := msim.StepBatch(ctx, slab[:n*k]); err != nil {
					b.Fatal(err)
				}
				done += n
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns_word_bus")
		})
	}

	// The headline gate compares K=16 against the scalar pipeline per bus.
	// Comparing the K1 and K16 sub-benchmarks across records is too noisy
	// to gate on — they run minutes apart and CPU frequency scaling shifts
	// between them — so this paired variant interleaves the two kernels
	// chunk by chunk inside one timing window (drift hits both sides
	// equally) and reports the per-bus speedup directly. benchgate
	// -multi-gate asserts speedup_x >= 2. The scalar side drives one
	// simulator (a 16-sim fleet would thrash its 16 separate memos, so one
	// sim is the baseline's best case).
	b.Run("K16vsK1", func(b *testing.B) {
		const k = 16
		mk := func(buses int) *core.MultiSim {
			msim, err := core.NewMulti(core.MultiConfig{
				Config: core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true},
				Buses:  buses,
			})
			if err != nil {
				b.Fatal(err)
			}
			return msim
		}
		sim, msim := mk(1), mk(k)
		words := make([]uint32, rows)
		slab := make([]uint32, rows*k)
		for bus := 0; bus < k; bus++ {
			ws := addressWords(rows)
			for r := 0; r < rows; r++ {
				w := uint32(ws[r]) + uint32(bus)<<10
				slab[r*k+bus] = w
				if bus == 0 {
					words[r] = w
				}
			}
		}
		ctx := context.Background()
		if _, err := sim.StepBatch(ctx, words); err != nil { // warm the memos
			b.Fatal(err)
		}
		if _, err := msim.StepBatch(ctx, slab); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var tScalar, tMulti time.Duration
		done := 0
		for done < b.N {
			n := rows
			if left := b.N - done; n > left {
				n = left
			}
			t0 := time.Now()
			if _, err := sim.StepBatch(ctx, words[:n]); err != nil {
				b.Fatal(err)
			}
			t1 := time.Now()
			if _, err := msim.StepBatch(ctx, slab[:n*k]); err != nil {
				b.Fatal(err)
			}
			tScalar += t1.Sub(t0)
			tMulti += time.Since(t1)
			done += n
		}
		perBusMulti := float64(tMulti.Nanoseconds()) / float64(k)
		b.ReportMetric(float64(tScalar.Nanoseconds())/perBusMulti, "speedup_x")
		b.ReportMetric(perBusMulti/float64(b.N), "ns_word_bus")
	})
}

// BenchmarkSweepWorkers measures Fig. 3 sweep scaling across pool sizes
// (fixed workload: 2 benchmarks x 1 node x 4 schemes x 2 buses = 16 jobs).
// "cold" builds every simulator and captures every trace window per call
// (the one-shot CLI cost); "warm" shares a SweepCache across calls (the
// steady state of a long-lived analysis process), replaying compiled
// tapes through pooled simulators.
func BenchmarkSweepWorkers(b *testing.B) {
	opts := expt.Fig3Options{
		Cycles:     200_000,
		Benchmarks: []string{"eon", "swim"},
		Nodes:      []itrs.Node{itrs.N130},
	}
	for _, workers := range []int{1, 2, 4} {
		name := map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers]
		b.Run(name+"/cold", func(b *testing.B) {
			o := opts
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := expt.Fig3(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/warm", func(b *testing.B) {
			o := opts
			o.Workers = workers
			o.Cache = expt.NewSweepCache()
			if _, err := expt.Fig3(o); err != nil { // fill the cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := expt.Fig3(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoolingStep measures the adaptive encoding controller's cost
// on the per-word hot path. "static" is the plain BI reference; "base"
// runs the controller with an unreachable ceiling (pure controller
// overhead: the padded encoder plus the per-interval decision); "cool"
// pins the ceiling at the floor so the controller flips to CoolSpread at
// the first interval boundary and stays there (the spreading encoder's
// steady-state cost). The interval is shortened so the decision path
// actually runs during the benchtime window.
func BenchmarkCoolingStep(b *testing.B) {
	words := make([]uint32, 1<<14)
	for i, w := range addressWords(len(words)) {
		words[i] = uint32(w)
	}
	const interval = 4096
	run := func(b *testing.B, cfg core.Config) {
		b.Helper()
		cfg.Node = itrs.N130
		cfg.CouplingDepth = -1
		cfg.DropSamples = true
		cfg.IntervalCycles = interval
		sim, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := sim.StepBatch(ctx, words); err != nil { // warm the memo
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			n := len(words)
			if left := b.N - done; n > left {
				n = left
			}
			if _, err := sim.StepBatch(ctx, words[:n]); err != nil {
				b.Fatal(err)
			}
			done += n
		}
	}
	b.Run("static", func(b *testing.B) {
		enc, err := encoding.New("BI")
		if err != nil {
			b.Fatal(err)
		}
		run(b, core.Config{Encoder: enc})
	})
	b.Run("base", func(b *testing.B) {
		run(b, core.Config{Adaptive: &core.AdaptiveConfig{
			Base: "BI", Cool: "CoolSpread", CeilingK: 1e6, HysteresisK: 0.001,
		}})
	})
	b.Run("cool", func(b *testing.B) {
		run(b, core.Config{Adaptive: &core.AdaptiveConfig{
			Base: "BI", Cool: "CoolSpread", CeilingK: 1, HysteresisK: 0.001,
		}})
	})
}

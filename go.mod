module nanobus

go 1.22

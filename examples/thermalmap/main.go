// Thermal map: run a hot workload on both address buses and render the
// per-wire temperature profile as an ASCII heat map, showing the
// non-uniform cross-bus temperature distribution the paper's per-line
// model exists to expose (Secs. 3.3, 4).
//
// Usage: go run ./examples/thermalmap [-bench swim] [-cycles 2000000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nanobus"
)

func main() {
	bench := flag.String("bench", "swim", "benchmark name")
	cycles := flag.Uint64("cycles", 2_000_000, "cycles to simulate")
	node := flag.String("node", "130nm", "technology node")
	flag.Parse()

	n, ok := nanobus.NodeByName(*node)
	if !ok {
		log.Fatalf("unknown node %q", *node)
	}
	b, ok := nanobus.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		log.Fatal(err)
	}
	mk := func() *nanobus.Bus {
		sim, err := nanobus.NewBus(nanobus.BusConfig{
			Node:          n,
			CouplingDepth: -1,
			DropSamples:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sim
	}
	ia, da := mk(), mk()
	if _, err := nanobus.RunPair(src, ia, da, *cycles); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s, %d cycles\n\n", b.Name, n.Name, *cycles)
	render("IA bus", ia)
	fmt.Println()
	render("DA bus", da)
}

func render(label string, sim *nanobus.Bus) {
	temps := sim.Temps()
	lines := make([]nanobus.LineEnergy, sim.Width())
	sim.LineEnergies(lines)

	minT, maxT := temps[0], temps[0]
	for _, t := range temps {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	fmt.Printf("%s: avg %.4f K, span [%.4f, %.4f] K\n", label, mean(temps), minT, maxT)
	const width = 50
	shades := []byte(" .:-=+*#%@")
	for i, t := range temps {
		frac := 0.0
		if maxT > minT {
			frac = (t - minT) / (maxT - minT)
		}
		bar := int(frac*float64(width) + 0.5)
		shade := shades[int(frac*float64(len(shades)-1)+0.5)]
		fmt.Printf("  wire %2d %8.4f K |%s%s| E=%.3g J\n",
			i, t,
			strings.Repeat(string(shade), bar),
			strings.Repeat(" ", width-bar),
			lines[i].Total())
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

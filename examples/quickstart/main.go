// Quickstart: model a 32-bit global address bus at the 130 nm node, drive
// a short burst of addresses, and read back the energy split and wire
// temperatures — the minimal end-to-end use of the nanobus public API.
package main

import (
	"fmt"
	"log"

	"nanobus"
)

func main() {
	sim, err := nanobus.NewBus(nanobus.BusConfig{
		Node:          nanobus.Node130,
		CouplingDepth: -1, // full model: all coupling pairs
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of sequential fetch addresses followed by a jump to a far
	// region — the pattern that makes address buses interesting.
	addr := uint32(0x0001_0000)
	for i := 0; i < 64; i++ {
		sim.StepWord(addr)
		addr += 4
	}
	sim.StepWord(0x7FFE_0000) // stack access: high-order bits flip
	for i := 0; i < 63; i++ {
		sim.StepIdle() // bus holds its value: no dissipation
	}
	if err := sim.Finish(); err != nil {
		log.Fatal(err)
	}

	tot := sim.TotalEnergy()
	fmt.Printf("bus width:              %d wires\n", sim.Width())
	fmt.Printf("cycles simulated:       %d\n", sim.Cycles())
	fmt.Printf("self energy:            %.4g J\n", tot.Self)
	fmt.Printf("adjacent coupling:      %.4g J\n", tot.CoupAdj)
	fmt.Printf("non-adjacent coupling:  %.4g J (%.1f%% of total)\n",
		tot.CoupNonAdj, 100*tot.CoupNonAdj/tot.Total())
	fmt.Printf("total:                  %.4g J\n", tot.Total())

	temps := sim.Temps()
	maxT, maxI := temps[0], 0
	for i, t := range temps {
		if t > maxT {
			maxT, maxI = t, i
		}
	}
	fmt.Printf("hottest wire:           #%d at %.4f K\n", maxI, maxT)
}

// Custom technology: define a hypothetical (non-ITRS) interconnect node,
// extract its bus capacitance matrix with the built-in boundary-element
// solver instead of the Table 1 values, and compare its energy and thermal
// behaviour against the stock 45 nm node — the workflow a user follows to
// study a process the library doesn't ship parameters for.
package main

import (
	"fmt"
	"log"

	"nanobus"
)

func main() {
	// A hypothetical "32 nm-class" node: scaled geometry, aggressive
	// low-K dielectric with poor thermal conductivity.
	custom := nanobus.Node{
		Name: "custom32", FeatureNm: 32,
		MetalLayers:   11,
		WireWidth:     74e-9,
		WireThickness: 170e-9,
		ILDHeight:     175e-9,
		EpsRel:        1.9,
		KILD:          0.05,
		ClockHz:       15e9,
		Vdd:           0.5,
		JMax:          3.2e10,
		// CLine/CInter filled from extraction below; placeholders keep
		// Validate happy until then.
		CLine: 1e-12, CInter: 1e-12, RWire: 1.75e6,
	}

	// Extract the real capacitances from the cross-section geometry.
	layout := nanobus.BusLayout{
		Wires: 9,
		W:     custom.WireWidth, T: custom.WireThickness,
		S: custom.WireWidth, H: custom.ILDHeight,
		EpsRel: custom.EpsRel,
	}
	res, dist, err := nanobus.ExtractBus(layout, nanobus.ExtractionOptions{PanelsPerEdge: 6})
	if err != nil {
		log.Fatal(err)
	}
	mid := layout.Wires / 2
	custom.CLine = res.SelfToGround(mid)
	custom.CInter = res.Coupling(mid, mid+1)

	fmt.Printf("extracted for %s (%d panels):\n", custom.Name, res.Panels)
	fmt.Printf("  c_line  = %.2f pF/m\n", custom.CLine*1e12)
	fmt.Printf("  c_inter = %.2f pF/m\n", custom.CInter*1e12)
	fmt.Printf("  non-adjacent coupling share: %.1f%%\n\n", 100*dist.NonAdjacentFrac())

	// Compare both nodes on identical synthetic traffic.
	for _, node := range []nanobus.Node{nanobus.Node45, custom} {
		sim, err := nanobus.NewBus(nanobus.BusConfig{
			Node:          node,
			CouplingDepth: -1,
			DropSamples:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		src := nanobus.NewSyntheticTrace(nanobus.DefaultSynthConfig(42))
		if _, err := nanobus.RunSingle(src, sim, "da", 200_000); err != nil {
			log.Fatal(err)
		}
		tot := sim.TotalEnergy()
		plan, err := nanobus.PlanRepeaters(node, nanobus.DefaultLength)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", node.Name)
		fmt.Printf("  DA-bus energy over 200K cycles: %.4g J (self %.3g, coupling %.3g)\n",
			tot.Total(), tot.Self, tot.CoupAdj+tot.CoupNonAdj)
		fmt.Printf("  repeaters per 10 mm line: %.1f of size %.0fx\n", plan.CountK, plan.SizeH)
		fmt.Printf("  inter-layer heating Δθ: %.1f K\n", nanobus.InterLayerRise(node))
		maxT := 0.0
		for _, t := range sim.Temps() {
			if t > maxT {
				maxT = t
			}
		}
		fmt.Printf("  hottest wire after the run: %.3f K\n\n", maxT)
	}
}

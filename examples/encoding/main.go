// Encoding study: compare every implemented low-power encoding scheme
// (the paper's BI/OEBI/CBI plus the Gray and T0 extensions) on a
// benchmark's data- and instruction-address streams, across technology
// nodes — a compact version of the paper's Fig. 3 with the extension
// schemes included.
//
// Usage: go run ./examples/encoding [-bench eon] [-cycles 500000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"nanobus"
)

func main() {
	bench := flag.String("bench", "eon", "benchmark: eon, crafty, twolf, mcf, applu, swim, art, ammp")
	cycles := flag.Uint64("cycles", 500_000, "measured cycles")
	flag.Parse()

	b, ok := nanobus.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	// Capture one trace window so every scheme sees identical traffic.
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		log.Fatal(err)
	}
	window := make([]nanobus.TraceCycle, 0, *cycles)
	for uint64(len(window)) < *cycles {
		c, ok := src.Next()
		if !ok {
			log.Fatal("trace ended early")
		}
		window = append(window, c)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tbus\tscheme\twires\tenergy (J)\tvs unencoded")
	for _, node := range nanobus.Nodes() {
		for _, bus := range []string{"IA", "DA"} {
			baseline := 0.0
			for _, scheme := range nanobus.EncodingSchemes() {
				enc, err := nanobus.NewEncoder(scheme)
				if err != nil {
					log.Fatal(err)
				}
				sim, err := nanobus.NewBus(nanobus.BusConfig{
					Node:          node,
					Encoder:       enc,
					CouplingDepth: -1,
					DropSamples:   true,
				})
				if err != nil {
					log.Fatal(err)
				}
				kind := "da"
				if bus == "IA" {
					kind = "ia"
				}
				if _, err := nanobus.RunSingle(replay(window), sim, kind, *cycles); err != nil {
					log.Fatal(err)
				}
				e := sim.TotalEnergy().Total()
				if scheme == "Unencoded" {
					baseline = e
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.4g\t%+.2f%%\n",
					node.Name, bus, scheme, sim.Width(), e, 100*(e-baseline)/baseline)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

// replay wraps a captured window as a fresh TraceSource.
func replay(window []nanobus.TraceCycle) nanobus.TraceSource {
	return &sliceSource{cycles: window}
}

type sliceSource struct {
	cycles []nanobus.TraceCycle
	pos    int
}

func (s *sliceSource) Next() (nanobus.TraceCycle, bool) {
	if s.pos >= len(s.cycles) {
		return nanobus.TraceCycle{}, false
	}
	c := s.cycles[s.pos]
	s.pos++
	return c, true
}

// Integration tests exercising the full pipeline through the public API:
// workload -> CPU -> trace -> encoder -> energy -> thermal -> samples.
package nanobus_test

import (
	"math"
	"testing"

	"nanobus"
)

// TestDeterministicReproduction: two identical end-to-end runs must agree
// bit-for-bit — the property that makes every EXPERIMENTS.md number
// reproducible.
func TestDeterministicReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	run := func() (float64, []float64) {
		b, ok := nanobus.BenchmarkByName("crafty")
		if !ok {
			t.Fatal("crafty missing")
		}
		src, err := b.NewWarmSource(600_000)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := nanobus.NewEncoder("BI")
		if err != nil {
			t.Fatal(err)
		}
		sim, err := nanobus.NewBus(nanobus.BusConfig{
			Node:           nanobus.Node90,
			Encoder:        enc,
			CouplingDepth:  -1,
			IntervalCycles: 50_000,
			DropSamples:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nanobus.RunSingle(src, sim, "ia", 300_000); err != nil {
			t.Fatal(err)
		}
		return sim.TotalEnergy().Total(), sim.Temps()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 {
		t.Errorf("energies differ across identical runs: %.17g vs %.17g", e1, e2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Errorf("wire %d temperature differs: %.17g vs %.17g", i, t1[i], t2[i])
		}
	}
}

// TestEncodedPipelinePreservesData: pushing a benchmark trace through an
// encoder and decoding the physical words recovers the original address
// stream exactly (end-to-end transparency of every scheme).
func TestEncodedPipelinePreservesData(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run")
	}
	b, _ := nanobus.BenchmarkByName("twolf")
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint32
	for len(addrs) < 20_000 {
		c, ok := src.Next()
		if !ok {
			t.Fatal("trace ended")
		}
		if c.DValid {
			addrs = append(addrs, c.DAddr)
		}
	}
	for _, scheme := range nanobus.EncodingSchemes() {
		enc, err := nanobus.NewEncoder(scheme)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := nanobus.NewDecoder(scheme)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range addrs {
			if got := dec.Decode(enc.Encode(a)); got != a {
				t.Fatalf("%s: address %d corrupted: %#x -> %#x", scheme, i, a, got)
			}
		}
	}
}

// TestThermalEnergyBalance: at steady state, the power leaving through the
// vertical paths equals the power injected — conservation across the
// energy/thermal interface.
func TestThermalEnergyBalance(t *testing.T) {
	net, err := nanobus.NewThermalNetwork(nanobus.Node130, 8, nanobus.ThermalOptions{
		DisableInterLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 2, 3, 4, 4, 3, 2, 1}
	ss, err := net.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical heat out per wire is (T - ambient)/Rvert; lateral flows
	// are internal and cancel in the sum, so sum(ΔT)/Rvert must equal
	// the total injected power. Rvert is recovered from a uniform-load
	// run (where ΔT = P*Rvert exactly).
	g := 0.0
	total := 0.0
	for i, temp := range ss {
		g += temp - net.Ambient()
		total += p[i]
	}
	uniform := make([]float64, 8)
	for i := range uniform {
		uniform[i] = 1
	}
	us, err := net.SteadyState(uniform)
	if err != nil {
		t.Fatal(err)
	}
	rUnit := us[0] - net.Ambient() // = 1 W/m * Rvert
	if math.Abs(g/total-rUnit) > 1e-9*rUnit {
		t.Errorf("aggregate balance violated: sum(ΔT)/sum(P) = %g, Rvert = %g", g/total, rUnit)
	}
}

// TestFacadeFieldSolver drives the FDM validation through the facade.
func TestFacadeFieldSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("field solve")
	}
	p := []float64{0, 10, 0}
	grid, err := nanobus.NewFieldCrossSection(nanobus.Node130, p, 318.15, nanobus.FieldOptions{CellsPerWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grid.SolveSteadyState(1e-7, 40000); err != nil {
		t.Fatal(err)
	}
	temps, err := grid.WireTemps()
	if err != nil {
		t.Fatal(err)
	}
	if !(temps[1] > temps[0] && temps[1] > temps[2]) {
		t.Errorf("hot wire not hottest: %v", temps)
	}
}

// TestFacade3DExtractor drives the 3-D extractor through the facade.
func TestFacade3DExtractor(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D solve")
	}
	boxes := nanobus.BusBoxes3D(nanobus.Node130, 3, 10*nanobus.Node130.Pitch())
	res, err := nanobus.Extract3D(boxes, nanobus.Node130.EpsRel, nanobus.Extraction3DOptions{
		TargetPanels: 120, GroundPlane: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coupling(0, 1) <= res.Coupling(0, 2) {
		t.Error("adjacent coupling not dominant in 3-D")
	}
}

// TestCrosstalkFacade grades a stream through the facade.
func TestCrosstalkFacade(t *testing.T) {
	h := nanobus.NewCrosstalkHistogram(8)
	h.Observe(0x00)
	h.Observe(0x55)
	h.Observe(0xAA)
	if h.MeanClass() <= 0 {
		t.Error("no crosstalk graded")
	}
	if nanobus.CrosstalkClass(0b01, 0b10, 0, 2) != 2 {
		t.Error("facade CrosstalkClass wrong")
	}
}

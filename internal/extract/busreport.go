package extract

import (
	"fmt"

	"nanobus/internal/geometry"
)

// BusDistribution is the Fig. 1(b) breakdown for one extracted bus: the
// share of a wire's total capacitance contributed by the ground (self)
// capacitance and by coupling to neighbours at each distance.
type BusDistribution struct {
	// Wires is the bus width used for the extraction.
	Wires int
	// CgndFrac is the self (ground) capacitance share in [0, 1].
	CgndFrac float64
	// CC is the coupling share by neighbour distance: CC[0] is the
	// adjacent-neighbour (CC1) share, CC[1] the one-wire-between (CC2)
	// share, CC[2] the two-wires-between (CC3) share.
	CC [3]float64
	// CCRest is the share from neighbours three or more wires away.
	CCRest float64
	// CgndPerMeter, CC1PerMeter are the absolute values (F/m) for the
	// reference (centre) wire.
	CgndPerMeter, CC1PerMeter float64
}

// NonAdjacentFrac returns the total non-adjacent coupling share
// (CC2 + CC3 + rest) — the quantity the paper reports as ~8-10%.
func (d BusDistribution) NonAdjacentFrac() float64 {
	return d.CC[1] + d.CC[2] + d.CCRest
}

// ExtractBus runs the extractor on a coplanar bus layout and returns both
// the raw result and the Fig. 1(b) distribution, measured at the centre
// wire (which has the most symmetric neighbourhood).
func ExtractBus(layout geometry.BusLayout, opts Options) (*Result, BusDistribution, error) {
	if err := layout.Validate(); err != nil {
		return nil, BusDistribution{}, err
	}
	res, err := Extract(layout.Conductors(), layout.EpsRel, opts)
	if err != nil {
		return nil, BusDistribution{}, err
	}
	dist, err := Distribution(res)
	return res, dist, err
}

// Distribution computes the Fig. 1(b) capacitance breakdown from an
// extraction result, using the centre conductor as the reference wire.
func Distribution(res *Result) (BusDistribution, error) {
	n := len(res.Names)
	if n < 2 {
		return BusDistribution{}, fmt.Errorf("extract: distribution needs >= 2 wires, got %d", n)
	}
	ref := n / 2
	cgnd := res.SelfToGround(ref)
	total := cgnd
	byDist := map[int]float64{}
	for j := 0; j < n; j++ {
		if j == ref {
			continue
		}
		d := j - ref
		if d < 0 {
			d = -d
		}
		c := res.Coupling(ref, j)
		byDist[d] += c
		total += c
	}
	if total <= 0 {
		return BusDistribution{}, fmt.Errorf("extract: non-positive total capacitance %g", total)
	}
	dist := BusDistribution{
		Wires:        n,
		CgndFrac:     cgnd / total,
		CgndPerMeter: cgnd,
		CC1PerMeter:  byDist[1],
	}
	dist.CC[0] = byDist[1] / total
	dist.CC[1] = byDist[2] / total
	dist.CC[2] = byDist[3] / total
	rest := 0.0
	for d, c := range byDist {
		if d >= 4 {
			rest += c
		}
	}
	dist.CCRest = rest / total
	return dist, nil
}

// CouplingDecay returns, for the centre wire, the ratio of coupling at each
// neighbour distance to the adjacent coupling: decay[0] = 1 (distance 1),
// decay[1] = CC2/CC1, etc., up to maxDist. The capacitance model uses these
// ratios to extend the paper's Table 1 adjacent coupling to non-adjacent
// pairs.
func CouplingDecay(res *Result, maxDist int) []float64 {
	n := len(res.Names)
	ref := n / 2
	c1 := res.Coupling(ref, ref+1)
	if ref > 0 {
		c1 = 0.5 * (c1 + res.Coupling(ref, ref-1))
	}
	if maxDist > n-1 {
		maxDist = n - 1
	}
	decay := make([]float64, maxDist)
	for d := 1; d <= maxDist; d++ {
		num, cnt := 0.0, 0
		if ref+d < n {
			num += res.Coupling(ref, ref+d)
			cnt++
		}
		if ref-d >= 0 {
			num += res.Coupling(ref, ref-d)
			cnt++
		}
		if cnt > 0 && c1 > 0 {
			decay[d-1] = (num / float64(cnt)) / c1
		}
	}
	return decay
}

// Package extract implements a two-dimensional boundary-element-method
// (method-of-moments) capacitance extractor — the from-scratch substitute
// for the FastCap runs the paper uses to obtain the full coupling matrix of
// a 32-bit coplanar bus (Sec. 3.2.1, Fig. 1).
//
// Model: conductor cross-sections above a grounded plane at y = 0, embedded
// in a uniform dielectric of permittivity eps = epsRel*eps0. Each conductor
// boundary is discretised into straight panels carrying uniform (per-panel)
// line charge density. The ground plane is enforced exactly with image
// charges, which also fixes the 2-D logarithmic potential's arbitrary
// constant (the plane is the zero-potential reference). Collocating the
// potential at panel midpoints yields a dense linear system P q = v that is
// solved once per conductor (sharing one LU factorisation) to produce the
// Maxwell capacitance matrix in F/m.
package extract

import (
	"fmt"
	"math"

	"nanobus/internal/geometry"
	"nanobus/internal/linalg"
	"nanobus/internal/units"
)

// Options tune the extraction.
type Options struct {
	// PanelsPerEdge is the minimum number of panels per conductor edge.
	// Higher is more accurate and slower. Zero means 8.
	PanelsPerEdge int
	// MaxPanelFraction caps panel length at this fraction of the
	// conductor's shortest edge. Zero means 0.5 (i.e. no extra cap beyond
	// PanelsPerEdge).
	MaxPanelFraction float64
}

func (o Options) panelsPerEdge() int {
	if o.PanelsPerEdge <= 0 {
		return 8
	}
	return o.PanelsPerEdge
}

// Result holds the extracted Maxwell capacitance matrix and its mesh
// metadata. Units are farads per meter of bus length (2-D extraction).
type Result struct {
	// Names are the conductor names in matrix order.
	Names []string
	// Maxwell is the short-circuit (Maxwell) capacitance matrix: the
	// charge on conductor i with conductor j at 1 V and all others
	// grounded. Diagonal entries are positive, off-diagonals negative.
	Maxwell *linalg.Matrix
	// Panels is the number of boundary elements used.
	Panels int
}

// Coupling returns the (positive) coupling capacitance between conductors
// i and j in F/m.
func (r *Result) Coupling(i, j int) float64 {
	if i == j {
		return 0
	}
	return -0.5 * (r.Maxwell.At(i, j) + r.Maxwell.At(j, i))
}

// SelfToGround returns conductor i's capacitance to the ground plane in
// F/m: the row sum of the Maxwell matrix (total charge with every
// conductor at 1 V).
func (r *Result) SelfToGround(i int) float64 {
	s := 0.0
	for j := 0; j < r.Maxwell.Cols(); j++ {
		s += r.Maxwell.At(i, j)
	}
	return s
}

// TotalCapacitance returns conductor i's total capacitance: self-to-ground
// plus all couplings.
func (r *Result) TotalCapacitance(i int) float64 {
	t := r.SelfToGround(i)
	for j := 0; j < r.Maxwell.Cols(); j++ {
		if j != i {
			t += r.Coupling(i, j)
		}
	}
	return t
}

// Extract runs the boundary-element extraction for the given conductors in
// a uniform dielectric of relative permittivity epsRel over the grounded
// plane y = 0. All conductor boundaries must lie strictly above the plane.
func Extract(conductors []geometry.Conductor, epsRel float64, opts Options) (*Result, error) {
	if len(conductors) == 0 {
		return nil, fmt.Errorf("extract: no conductors")
	}
	if epsRel < 1 {
		return nil, fmt.Errorf("extract: relative permittivity %g < 1", epsRel)
	}
	// Panel length budget from the smallest edge.
	shortest := math.Inf(1)
	for _, c := range conductors {
		if len(c.Boundary) == 0 {
			return nil, fmt.Errorf("extract: conductor %q has empty boundary", c.Name)
		}
		for _, s := range c.Boundary {
			if s.A.Y <= 0 || s.B.Y <= 0 {
				return nil, fmt.Errorf("extract: conductor %q touches or crosses the ground plane", c.Name)
			}
			if l := s.Length(); l > 0 && l < shortest {
				shortest = l
			}
		}
	}
	frac := opts.MaxPanelFraction
	if frac <= 0 {
		frac = 0.5
	}
	panels := geometry.Discretize(conductors, shortest*frac, opts.panelsPerEdge())
	n := len(panels)

	eps := epsRel * units.Eps0

	// Potential coefficient matrix: P[i][j] = potential at panel i's
	// midpoint due to unit line-charge density on panel j, including the
	// negative image below the ground plane.
	p, err := linalg.NewMatrix(n, n)
	if err != nil {
		return nil, fmt.Errorf("extract: potential matrix: %w", err)
	}
	for i := 0; i < n; i++ {
		obs := panels[i].Midpoint()
		row := p.Row(i)
		for j := 0; j < n; j++ {
			direct := segmentPotential(obs, panels[j].Segment, i == j)
			mirrored := geometry.Segment{
				A: geometry.Point{X: panels[j].A.X, Y: -panels[j].A.Y},
				B: geometry.Point{X: panels[j].B.X, Y: -panels[j].B.Y},
			}
			image := segmentPotential(obs, mirrored, false)
			row[j] = (direct - image) / (2 * math.Pi * eps)
		}
	}
	lu, err := linalg.FactorLU(p)
	if err != nil {
		return nil, fmt.Errorf("extract: potential matrix factorisation: %w", err)
	}

	nc := len(conductors)
	maxwell, err := linalg.NewMatrix(nc, nc)
	if err != nil {
		return nil, fmt.Errorf("extract: maxwell matrix: %w", err)
	}
	names := make([]string, nc)
	for ci, c := range conductors {
		names[ci] = c.Name
	}
	rhs := make([]float64, n)
	for k := 0; k < nc; k++ {
		for i := range rhs {
			if panels[i].Conductor == k {
				rhs[i] = 1
			} else {
				rhs[i] = 0
			}
		}
		q, err := lu.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("extract: solve for conductor %d: %w", k, err)
		}
		for i, panel := range panels {
			maxwell.Add(panel.Conductor, k, q[i]*panel.Length())
		}
	}
	return &Result{Names: names, Maxwell: maxwell, Panels: n}, nil
}

// segmentPotential returns the integral of -ln(distance) along the segment
// for a unit line-charge density (the 2-D free-space potential up to the
// 1/(2*pi*eps) factor applied by the caller). self selects the exact
// self-term formula (observation point on the panel itself), where the
// logarithmic singularity is integrable.
func segmentPotential(obs geometry.Point, seg geometry.Segment, self bool) float64 {
	l := seg.Length()
	if l == 0 { //nanolint:ignore floateq a degenerate zero-length panel contributes no potential
		return 0
	}
	if self {
		// Observation at the panel's own midpoint:
		// -Int_{-L/2}^{L/2} ln|u| du = -L*(ln(L/2) - 1).
		return -l * (math.Log(l/2) - 1)
	}
	// Local frame: origin at segment midpoint, x along the segment.
	ux := (seg.B.X - seg.A.X) / l
	uy := (seg.B.Y - seg.A.Y) / l
	mid := seg.Midpoint()
	dx := obs.X - mid.X
	dy := obs.Y - mid.Y
	x := dx*ux + dy*uy  // along-segment coordinate
	y := -dx*uy + dy*ux // perpendicular coordinate
	h := l / 2
	// -Int_{-h}^{h} (1/2) ln((x-t)^2 + y^2) dt, evaluated analytically.
	return -(antiderivative(x+h, y) - antiderivative(x-h, y))
}

// antiderivative is F(u) with F'(u) = (1/2) ln(u^2 + y^2):
// F(u) = (u/2) ln(u^2+y^2) - u + y*atan(u/y)  (y != 0)
// F(u) = u ln|u| - u                           (y == 0)
func antiderivative(u, y float64) float64 {
	if y == 0 { //nanolint:ignore floateq selects the exact y = 0 analytic branch of the antiderivative
		if u == 0 { //nanolint:ignore floateq the u = 0 limit of u*ln|u| is exactly 0
			return 0
		}
		return u*math.Log(math.Abs(u)) - u
	}
	return u/2*math.Log(u*u+y*y) - u + y*math.Atan(u/y)
}

package extract

import (
	"math"
	"testing"

	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// TestCylinderOverGroundPlane validates the extractor against the analytic
// capacitance of a circular cylinder of radius a with axis at height h over
// a ground plane: C = 2*pi*eps / acosh(h/a) per unit length.
func TestCylinderOverGroundPlane(t *testing.T) {
	a := 1.0e-6
	h := 4.0e-6
	circ := geometry.CircleConductor("cyl", 0, h, a, 96)
	res, err := Extract([]geometry.Conductor{circ}, 1.0, Options{PanelsPerEdge: 1})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	got := res.Maxwell.At(0, 0)
	want := 2 * math.Pi * units.Eps0 / math.Acosh(h/a)
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("cylinder capacitance = %.4g F/m, analytic %.4g F/m (rel err %.3f)", got, want, rel)
	}
}

// TestPermittivityScaling: capacitance must scale linearly with epsRel.
func TestPermittivityScaling(t *testing.T) {
	cond := []geometry.Conductor{geometry.RectConductor("w", 0, 1e-6, 1e-6, 1e-6)}
	r1, err := Extract(cond, 1.0, Options{PanelsPerEdge: 6})
	if err != nil {
		t.Fatalf("Extract eps=1: %v", err)
	}
	r33, err := Extract(cond, 3.3, Options{PanelsPerEdge: 6})
	if err != nil {
		t.Fatalf("Extract eps=3.3: %v", err)
	}
	ratio := r33.Maxwell.At(0, 0) / r1.Maxwell.At(0, 0)
	if math.Abs(ratio-3.3) > 1e-6 {
		t.Errorf("eps scaling ratio = %.8f, want 3.3", ratio)
	}
}

// TestMaxwellMatrixProperties: symmetry, positive diagonal, negative
// off-diagonals, and diagonal dominance for a small bus.
func TestMaxwellMatrixProperties(t *testing.T) {
	layout := geometry.BusLayout{
		Wires: 5,
		W:     335e-9, T: 670e-9, S: 335e-9, H: 724e-9,
		EpsRel: 3.3,
	}
	res, _, err := ExtractBus(layout, Options{PanelsPerEdge: 6})
	if err != nil {
		t.Fatalf("ExtractBus: %v", err)
	}
	m := res.Maxwell
	if !m.IsSymmetric(0.02) {
		t.Error("Maxwell matrix is not symmetric within 2%")
	}
	for i := 0; i < m.Rows(); i++ {
		if m.At(i, i) <= 0 {
			t.Errorf("diagonal C[%d][%d] = %g, want > 0", i, i, m.At(i, i))
		}
		offSum := 0.0
		for j := 0; j < m.Cols(); j++ {
			if i == j {
				continue
			}
			if m.At(i, j) >= 0 {
				t.Errorf("off-diagonal C[%d][%d] = %g, want < 0", i, j, m.At(i, j))
			}
			offSum += -m.At(i, j)
		}
		if m.At(i, i) <= offSum {
			t.Errorf("row %d not diagonally dominant: diag %g, off-sum %g", i, m.At(i, i), offSum)
		}
	}
}

// TestCouplingDecreasesWithDistance: coupling falls monotonically with
// neighbour distance.
func TestCouplingDecreasesWithDistance(t *testing.T) {
	layout := geometry.BusLayout{
		Wires: 7,
		W:     335e-9, T: 670e-9, S: 335e-9, H: 724e-9,
		EpsRel: 3.3,
	}
	res, _, err := ExtractBus(layout, Options{PanelsPerEdge: 5})
	if err != nil {
		t.Fatalf("ExtractBus: %v", err)
	}
	ref := 3
	prev := math.Inf(1)
	for d := 1; d <= 3; d++ {
		c := res.Coupling(ref, ref+d)
		if c <= 0 {
			t.Errorf("coupling at distance %d = %g, want > 0", d, c)
		}
		if c >= prev {
			t.Errorf("coupling at distance %d (%g) >= distance %d (%g)", d, c, d-1, prev)
		}
		prev = c
	}
}

// TestFig1bDistribution130nm: the headline Fig. 1(b) property — for the
// 130 nm ITRS geometry, non-adjacent coupling is non-negligible (the paper
// reports ~8-10% across nodes).
func TestFig1bDistribution130nm(t *testing.T) {
	n := itrs.N130
	layout := geometry.BusLayout{
		Wires: 11, // smaller than 32 for test speed; centre wire converges fast
		W:     n.WireWidth, T: n.WireThickness, S: n.Spacing(), H: n.ILDHeight,
		EpsRel: n.EpsRel,
	}
	_, dist, err := ExtractBus(layout, Options{PanelsPerEdge: 5})
	if err != nil {
		t.Fatalf("ExtractBus: %v", err)
	}
	if dist.CgndFrac <= 0 || dist.CgndFrac >= 1 {
		t.Errorf("Cgnd fraction = %.3f, want in (0,1)", dist.CgndFrac)
	}
	if dist.CC[0] < 0.3 {
		t.Errorf("CC1 fraction = %.3f, want dominant (>0.3) for high-aspect global wires", dist.CC[0])
	}
	na := dist.NonAdjacentFrac()
	if na < 0.02 || na > 0.25 {
		t.Errorf("non-adjacent fraction = %.3f, want in the paper's neighbourhood (0.02..0.25)", na)
	}
	sum := dist.CgndFrac + dist.CC[0] + dist.CC[1] + dist.CC[2] + dist.CCRest
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %.6f, want 1", sum)
	}
}

// TestCouplingDecayShape: decay ratios start at 1 and strictly decrease.
func TestCouplingDecayShape(t *testing.T) {
	layout := geometry.BusLayout{
		Wires: 9,
		W:     230e-9, T: 482e-9, S: 230e-9, H: 498e-9,
		EpsRel: 2.8,
	}
	res, _, err := ExtractBus(layout, Options{PanelsPerEdge: 5})
	if err != nil {
		t.Fatalf("ExtractBus: %v", err)
	}
	decay := CouplingDecay(res, 4)
	if math.Abs(decay[0]-1) > 1e-9 {
		t.Errorf("decay[0] = %g, want 1", decay[0])
	}
	for i := 1; i < len(decay); i++ {
		if decay[i] >= decay[i-1] {
			t.Errorf("decay[%d] = %g >= decay[%d] = %g; want strictly decreasing", i, decay[i], i-1, decay[i-1])
		}
		if decay[i] <= 0 {
			t.Errorf("decay[%d] = %g, want > 0", i, decay[i])
		}
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, 1, Options{}); err == nil {
		t.Error("empty conductor list accepted")
	}
	c := geometry.RectConductor("w", 0, 1e-6, 1e-6, 1e-6)
	if _, err := Extract([]geometry.Conductor{c}, 0.5, Options{}); err == nil {
		t.Error("epsRel < 1 accepted")
	}
	below := geometry.RectConductor("bad", 0, -1e-6, 1e-6, 0.5e-6)
	if _, err := Extract([]geometry.Conductor{below}, 1, Options{}); err == nil {
		t.Error("conductor below ground plane accepted")
	}
	if _, err := Extract([]geometry.Conductor{{Name: "empty"}}, 1, Options{}); err == nil {
		t.Error("conductor with empty boundary accepted")
	}
}

func TestDistributionErrors(t *testing.T) {
	c := geometry.RectConductor("w", 0, 1e-6, 1e-6, 1e-6)
	res, err := Extract([]geometry.Conductor{c}, 1, Options{PanelsPerEdge: 4})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if _, err := Distribution(res); err == nil {
		t.Error("single-wire distribution accepted")
	}
}

func TestBusLayoutValidate(t *testing.T) {
	bad := []geometry.BusLayout{
		{Wires: 0, W: 1, T: 1, S: 1, H: 1, EpsRel: 2},
		{Wires: 2, W: 0, T: 1, S: 1, H: 1, EpsRel: 2},
		{Wires: 2, W: 1, T: 1, S: 1, H: 1, EpsRel: 0.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("layout %d accepted: %+v", i, b)
		}
	}
	good := geometry.BusLayout{Wires: 2, W: 1e-6, T: 1e-6, S: 1e-6, H: 1e-6, EpsRel: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good layout rejected: %v", err)
	}
}

// TestSymmetricBusSymmetricResult: wires mirrored about the bus centre see
// mirrored capacitances.
func TestSymmetricBusSymmetricResult(t *testing.T) {
	layout := geometry.BusLayout{
		Wires: 5,
		W:     145e-9, T: 319e-9, S: 145e-9, H: 329e-9,
		EpsRel: 2.5,
	}
	res, _, err := ExtractBus(layout, Options{PanelsPerEdge: 5})
	if err != nil {
		t.Fatalf("ExtractBus: %v", err)
	}
	// Wire 0 vs wire 4 self-to-ground should match.
	a, b := res.SelfToGround(0), res.SelfToGround(4)
	if rel := math.Abs(a-b) / math.Abs(a); rel > 0.01 {
		t.Errorf("edge wires' Cgnd differ: %g vs %g (rel %.3f)", a, b, rel)
	}
	// Coupling (0,1) vs (4,3) should match.
	c01, c43 := res.Coupling(0, 1), res.Coupling(4, 3)
	if rel := math.Abs(c01-c43) / c01; rel > 0.01 {
		t.Errorf("mirrored couplings differ: %g vs %g", c01, c43)
	}
}

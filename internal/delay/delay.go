// Package delay analyses the performance side effects the paper attributes
// to wire heating (Secs. 1, 5.3.1): copper resistivity grows with
// temperature, so hotter wires have larger RC delay; and it implements the
// paper's Sec. 1 scoping check — that long global lines in ITRS
// technologies are over-damped RLC systems, so an RC-only energy model is
// accurate (the justification cites Mui/Banerjee/Mehrotra [10]).
package delay

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/repeater"
	"nanobus/internal/units"
)

// TempCoeffCu is copper's temperature coefficient of resistivity (1/K)
// around room temperature.
const TempCoeffCu = 0.0039

// RefTempK is the reference temperature of the Table 1 resistances.
const RefTempK = 293.15

// ResistivityAt scales a reference resistivity from RefTempK to tempK with
// the linear model rho(T) = rho0 * (1 + alpha*(T - T0)).
func ResistivityAt(rho0, tempK float64) float64 {
	return rho0 * (1 + TempCoeffCu*(tempK-RefTempK))
}

// DelayAt returns the repeated-line delay of a length-meter global wire on
// the node when the wire sits at tempK, along with the delay at the
// reference temperature. The repeater plan is re-evaluated with the hotter
// wire resistance (designers fix the plan at design time, so the same
// h and k are kept; only the wire RC changes).
func DelayAt(node itrs.Node, length, tempK float64) (hot, ref float64, err error) {
	if tempK <= 0 {
		return 0, 0, fmt.Errorf("delay: non-positive temperature %g", tempK)
	}
	plan, err := repeater.InsertDefault(node, length)
	if err != nil {
		return 0, 0, err
	}
	ref = plan.WireDelay

	scale := ResistivityAt(1, tempK) // rho(T)/rho0
	inv := repeater.DefaultInverter(node)
	segs := math.Max(1, math.Round(plan.CountK))
	cseg := node.CTotal() * length / segs
	rseg := node.RWire * scale * length / segs
	segDelay := units.ElmoreLumped*(inv.R0/plan.SizeH)*(cseg+plan.SizeH*inv.C0) +
		units.ElmoreDistributed*rseg*cseg + units.ElmoreLumped*rseg*plan.SizeH*inv.C0
	return segs * segDelay, ref, nil
}

// DegradationPct returns the percentage delay growth at tempK relative to
// the reference temperature.
func DegradationPct(node itrs.Node, length, tempK float64) (float64, error) {
	hot, ref, err := DelayAt(node, length, tempK)
	if err != nil {
		return 0, err
	}
	return 100 * (hot - ref) / ref, nil
}

// InductancePerMeter estimates the loop inductance (H/m) of a global wire
// over its return plane with the standard microstrip form
// L = (mu0/2pi) * ln(8h/w + w/(4h)), where h is the dielectric height and
// w the wire width. Good to tens of percent — sufficient for a damping
// classification.
func InductancePerMeter(node itrs.Node) float64 {
	const mu0 = 4 * math.Pi * 1e-7
	h := node.ILDHeight
	w := node.WireWidth
	return mu0 / (2 * math.Pi) * math.Log(8*h/w+w/(4*h))
}

// DampingFactor returns the RLC damping factor of a line of the given
// length: zeta = (R/2) * sqrt(C/L). zeta > 1 means over-damped, where the
// paper's RC-only energy model is accurate.
func DampingFactor(node itrs.Node, length float64) (float64, error) {
	if length <= 0 {
		return 0, fmt.Errorf("delay: non-positive length %g", length)
	}
	r := node.RWire * length
	c := node.CTotal() * length
	l := InductancePerMeter(node) * length
	return r / 2 * math.Sqrt(c/l), nil
}

// Report is the per-node thermal-delay analysis.
type Report struct {
	Node itrs.Node
	// RefDelay and HotDelay are the 10 mm line delays (s) at the
	// reference temperature and at HotTempK.
	RefDelay, HotDelay float64
	// HotTempK is the evaluated wire temperature.
	HotTempK float64
	// DegradationPct is the relative delay growth.
	DegradationPct float64
	// Damping is the full-line RLC damping factor (> 1: over-damped).
	Damping float64
}

// Analyze produces the report for a node at the given wire temperature,
// using the paper's 10 mm line.
func Analyze(node itrs.Node, hotTempK float64) (Report, error) {
	const length = 0.01
	hot, ref, err := DelayAt(node, length, hotTempK)
	if err != nil {
		return Report{}, err
	}
	zeta, err := DampingFactor(node, length)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Node:           node,
		RefDelay:       ref,
		HotDelay:       hot,
		HotTempK:       hotTempK,
		DegradationPct: 100 * (hot - ref) / ref,
		Damping:        zeta,
	}, nil
}

// AnalyzeAll runs Analyze for all four ITRS nodes at the paper's observed
// steady-state temperature band (ambient + ~20 K) unless hotTempK > 0.
func AnalyzeAll(hotTempK float64) ([]Report, error) {
	if hotTempK <= 0 {
		hotTempK = units.AmbientK + 20
	}
	var out []Report
	for _, n := range itrs.Nodes() {
		r, err := Analyze(n, hotTempK)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

package delay

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestResistivityScaling(t *testing.T) {
	rho0 := units.RhoCopper
	if got := ResistivityAt(rho0, RefTempK); got != rho0 {
		t.Errorf("rho at reference = %g, want %g", got, rho0)
	}
	// +100 K: +39%.
	got := ResistivityAt(rho0, RefTempK+100)
	want := rho0 * 1.39
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("rho at +100K = %g, want %g", got, want)
	}
}

func TestDelayGrowsWithTemperature(t *testing.T) {
	for _, n := range itrs.Nodes() {
		hot, ref, err := DelayAt(n, 0.01, units.AmbientK+20)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if hot <= ref {
			t.Errorf("%s: hot delay %g <= ref %g", n.Name, hot, ref)
		}
		pct, err := DegradationPct(n, 0.01, units.AmbientK+20)
		if err != nil {
			t.Fatal(err)
		}
		// ~45-65 K above the 293 K reference at alpha 0.39%/K scales the
		// wire-RC part; expect single-digit-to-low-teens percent delay
		// growth.
		if pct < 1 || pct > 30 {
			t.Errorf("%s: degradation %.2f%% outside plausible band", n.Name, pct)
		}
	}
}

func TestDelayValidation(t *testing.T) {
	if _, _, err := DelayAt(itrs.N130, 0.01, 0); err == nil {
		t.Error("zero temperature accepted")
	}
	if _, err := DampingFactor(itrs.N130, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestOverdampedGlobalLines(t *testing.T) {
	// The paper's Sec. 1 scoping claim: >10 mm global lines in these
	// technologies are over-damped, so the RC energy model is valid.
	for _, n := range itrs.Nodes() {
		zeta, err := DampingFactor(n, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if zeta <= 1 {
			t.Errorf("%s: 10 mm line damping %.2f <= 1 (not over-damped)", n.Name, zeta)
		}
	}
	// Damping grows with length (R, C scale linearly; L too — zeta ~ L^1).
	z5, _ := DampingFactor(itrs.N130, 0.005)
	z20, _ := DampingFactor(itrs.N130, 0.02)
	if z20 <= z5 {
		t.Errorf("damping not increasing with length: %g vs %g", z5, z20)
	}
}

func TestInductancePlausible(t *testing.T) {
	// Global-wire loop inductance should be of order 1 uH/m (microstrip
	// with thin dielectric: a few hundred nH/m).
	for _, n := range itrs.Nodes() {
		l := InductancePerMeter(n)
		if l < 1e-8 || l > 1e-5 {
			t.Errorf("%s: L = %g H/m implausible", n.Name, l)
		}
	}
}

func TestAnalyzeAll(t *testing.T) {
	reports, err := AnalyzeAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, r := range reports {
		if r.HotTempK != units.AmbientK+20 {
			t.Errorf("%s: default temp %g", r.Node.Name, r.HotTempK)
		}
		if r.Damping <= 1 {
			t.Errorf("%s: damping %g", r.Node.Name, r.Damping)
		}
		if r.DegradationPct <= 0 {
			t.Errorf("%s: degradation %g", r.Node.Name, r.DegradationPct)
		}
	}
	if _, err := AnalyzeAll(400); err != nil {
		t.Fatal(err)
	}
}

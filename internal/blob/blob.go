// Package blob is the checkpoint blob store behind nanobusd durability
// and cluster replication. A Store keyed by session id holds opaque NBSE
// envelopes; the server writes every (auto-)checkpoint through one, and
// restore/resurrection reads them back — possibly on a different node
// than the one that wrote them.
//
// The interface is context-aware because cluster stores cross the
// network: a replication fan-out or a peer fetch must respect request
// deadlines. Implementations must be safe for concurrent use, and Put
// must be atomic per id (a crashed Put leaves either the old blob or the
// new one, never a torn mix) so restores after a kill -9 read a
// consistent envelope.
package blob

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nanobus/internal/faultinject"
)

// ErrNotFound is returned by Store.Get when no blob exists under the id.
var ErrNotFound = errors.New("blob: not found")

// Store persists checkpoint envelopes by session id.
type Store interface {
	// Put atomically stores data under id, replacing any previous blob.
	Put(ctx context.Context, id string, data []byte) error
	// Get returns the blob stored under id, or an error wrapping
	// ErrNotFound.
	Get(ctx context.Context, id string) ([]byte, error)
	// List returns the stored ids in sorted order.
	List(ctx context.Context) ([]string, error)
	// Delete removes the blob under id (a no-op when absent).
	Delete(ctx context.Context, id string) error
}

// ValidID reports whether id fits the server's 1-64 char lowercase-hex
// session-id alphabet. Every Store implementation rejects other ids: the
// FS store because a hostile id could escape its directory, the rest for
// uniformity, so an id that works against one store works against all.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func checkID(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("blob: invalid session id %q", id)
	}
	return nil
}

// --- MemStore ----------------------------------------------------------------

// MemStore is an in-process Store for tests and single-process
// durability (surviving session poisoning, not process death).
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore builds an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put stores a copy of data under id.
func (s *MemStore) Put(_ context.Context, id string, data []byte) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = bytes.Clone(data)
	return nil
}

// Get returns a copy of the blob stored under id.
func (s *MemStore) Get(_ context.Context, id string) ([]byte, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return bytes.Clone(data), nil
}

// List returns the stored ids, sorted.
func (s *MemStore) List(_ context.Context) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes the blob stored under id (a no-op when absent).
func (s *MemStore) Delete(_ context.Context, id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
	return nil
}

// --- FSStore -----------------------------------------------------------------

// blobSuffix is the on-disk envelope file extension. It predates this
// package (PR 5's FSStore used the same layout), so upgraded nodes keep
// reading the checkpoints they wrote before the cluster work.
const blobSuffix = ".nbse"

// FSStore persists blobs as files under a directory, one per session
// id. Writes go through a temp file + rename so a crash never leaves a
// torn envelope, and ids are restricted to the lowercase-hex alphabet so
// a hostile id cannot escape the directory.
type FSStore struct {
	dir string
}

// NewFSStore builds an FSStore rooted at dir, creating it if needed.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: store dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// path maps a session id onto its blob file.
func (s *FSStore) path(id string) (string, error) {
	if err := checkID(id); err != nil {
		return "", err
	}
	return filepath.Join(s.dir, id+blobSuffix), nil
}

// Put atomically writes the blob for id.
func (s *FSStore) Put(_ context.Context, id string, data []byte) error {
	p, err := s.path(id)
	if err != nil {
		return err
	}
	// Chaos harnesses arm these: "store.fs.save" injects slowness or
	// errors, "store.fs.truncate" cuts the blob to simulate a torn write
	// that slipped past the rename barrier (e.g. a dying disk).
	if err := faultinject.Hit("store.fs.save"); err != nil {
		return fmt.Errorf("blob: save: %w", err)
	}
	data = faultinject.Truncate("store.fs.truncate", data)
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("blob: save: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		//nanolint:ignore droppederr the write error is reported; close/remove are best-effort cleanup
		_ = tmp.Close()
		//nanolint:ignore droppederr the write error is reported; close/remove are best-effort cleanup
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("blob: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		//nanolint:ignore droppederr the close error is reported; remove is best-effort cleanup
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("blob: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		//nanolint:ignore droppederr the rename error is reported; remove is best-effort cleanup
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("blob: save: %w", err)
	}
	return nil
}

// Get reads the blob for id.
func (s *FSStore) Get(_ context.Context, id string) ([]byte, error) {
	p, err := s.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("blob: load: %w", err)
	}
	return data, nil
}

// List returns the stored ids, sorted.
func (s *FSStore) List(_ context.Context) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blob: list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		id, found := strings.CutSuffix(e.Name(), blobSuffix)
		if e.IsDir() || !found || !ValidID(id) {
			continue // temp files, foreign droppings
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes the blob for id (a no-op when absent).
func (s *FSStore) Delete(_ context.Context, id string) error {
	p, err := s.path(id)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blob: delete: %w", err)
	}
	return nil
}

package blob

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// maxPeerBlobBytes bounds one peer blob transfer; it matches the
// server's envelope ceiling (a session with millions of retained samples
// should use DropSamples, not a multi-GB checkpoint).
const maxPeerBlobBytes = 64 << 20

// HTTPStore speaks the peer-replication endpoints a clustered nanobusd
// mounts (PUT/GET/DELETE /v1/cluster/blobs/{id}, GET /v1/cluster/blobs)
// against one remote node. It is the transport leg under Replicated:
// every method is one request against the peer's *local* store, so
// replication never cascades.
type HTTPStore struct {
	base string
	hc   *http.Client
}

// NewHTTPStore builds a peer store for the node at baseURL (e.g.
// "http://10.0.0.2:8080"). hc nil uses http.DefaultClient; callers
// replicating on a hot path should pass a client with a timeout so a
// hung peer cannot stall checkpoints past the request deadline.
func NewHTTPStore(baseURL string, hc *http.Client) *HTTPStore {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTPStore{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

func (s *HTTPStore) url(id string) string { return s.base + "/v1/cluster/blobs/" + id }

func (s *HTTPStore) do(req *http.Request) (*http.Response, error) {
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		//nanolint:ignore droppederr the 404 is the result; body close is best-effort
		_ = resp.Body.Close()
		return nil, fmt.Errorf("%w: peer %s", ErrNotFound, s.base)
	}
	if resp.StatusCode/100 != 2 {
		//nanolint:ignore droppederr the status error is reported either way; the body snippet is best-effort color
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		//nanolint:ignore droppederr the status error is reported; body close is best-effort
		_ = resp.Body.Close()
		return nil, fmt.Errorf("blob: peer %s: HTTP %d: %s", s.base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Put replicates the blob to the peer.
func (s *HTTPStore) Put(ctx context.Context, id string, data []byte) error {
	if err := checkID(id); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.url(id), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.do(req)
	if err != nil {
		return err
	}
	//nanolint:ignore droppederr the 2xx status is the result; body drain/close is connection reuse hygiene
	_, _ = io.Copy(io.Discard, resp.Body)
	//nanolint:ignore droppederr the 2xx status is the result; body drain/close is connection reuse hygiene
	_ = resp.Body.Close()
	return nil
}

// Get fetches the blob from the peer.
func (s *HTTPStore) Get(ctx context.Context, id string) ([]byte, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		//nanolint:ignore droppederr the payload is already read; close is best-effort
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBlobBytes+1))
	if err != nil {
		return nil, fmt.Errorf("blob: peer %s: read: %w", s.base, err)
	}
	if len(data) > maxPeerBlobBytes {
		return nil, fmt.Errorf("blob: peer %s: blob exceeds %d bytes", s.base, maxPeerBlobBytes)
	}
	return data, nil
}

// List fetches the peer's stored ids.
func (s *HTTPStore) List(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/v1/cluster/blobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		//nanolint:ignore droppederr the payload is already read; close is best-effort
		_ = resp.Body.Close()
	}()
	var ids []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBlobBytes)).Decode(&ids); err != nil {
		return nil, fmt.Errorf("blob: peer %s: decode list: %w", s.base, err)
	}
	return ids, nil
}

// Delete removes the blob on the peer.
func (s *HTTPStore) Delete(ctx context.Context, id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.url(id), nil)
	if err != nil {
		return err
	}
	resp, err := s.do(req)
	if err != nil {
		return err
	}
	//nanolint:ignore droppederr the 2xx status is the result; body drain/close is connection reuse hygiene
	_, _ = io.Copy(io.Discard, resp.Body)
	//nanolint:ignore droppederr the 2xx status is the result; body drain/close is connection reuse hygiene
	_ = resp.Body.Close()
	return nil
}

// Interface conformance.
var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FSStore)(nil)
	_ Store = (*Replicated)(nil)
	_ Store = (*HTTPStore)(nil)
)

package blob

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Replicated is the fan-out store that lets a cluster survive node
// death: every Put lands on the local store (which must succeed — it is
// the durability the caller was promised) and is then replicated,
// best-effort, to the peer stores. Get serves locally when possible and
// falls back to the peers, so a node resurrecting a dead neighbour's
// session finds the envelope even though it never wrote it.
//
// Replication is best-effort by design: an auto-checkpoint must not fail
// the step stream because one peer is down (that peer being down may be
// exactly why the checkpoint matters). Failed fan-outs are counted, not
// returned; the next checkpoint retries naturally.
type Replicated struct {
	local Store
	peers []Store
	// validate, when set, vets every blob read (local or peer) before it
	// is returned; a corrupt local copy falls back to the peers instead
	// of poisoning the restore.
	validate func([]byte) error

	putErrors atomic.Uint64
}

// ReplicatedOption configures a Replicated store.
type ReplicatedOption func(*Replicated)

// WithValidator installs fn as the blob integrity check applied before
// any Get returns data. The server passes the NBSE envelope CRC check so
// a torn replica is skipped, not restored.
func WithValidator(fn func([]byte) error) ReplicatedOption {
	return func(r *Replicated) { r.validate = fn }
}

// NewReplicated builds a Replicated store writing through local and
// fanning out to peers.
func NewReplicated(local Store, peers []Store, opts ...ReplicatedOption) *Replicated {
	r := &Replicated{local: local, peers: peers}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// PutErrors reports how many peer replications have failed since the
// store was built (a metrics hook; the failures themselves are absorbed).
func (r *Replicated) PutErrors() uint64 { return r.putErrors.Load() }

// Put writes locally (must succeed) then fans out to every peer
// (best-effort).
func (r *Replicated) Put(ctx context.Context, id string, data []byte) error {
	if err := r.local.Put(ctx, id, data); err != nil {
		return err
	}
	for _, p := range r.peers {
		if err := p.Put(ctx, id, data); err != nil {
			r.putErrors.Add(1)
		}
	}
	return nil
}

// Get returns the local blob when present and valid, falling back to
// the peers in order. A valid peer copy is written back to the local
// store (best-effort) so the next restore is local.
func (r *Replicated) Get(ctx context.Context, id string) ([]byte, error) {
	data, lastErr := r.local.Get(ctx, id)
	if lastErr == nil {
		if r.validate == nil {
			return data, nil
		}
		if verr := r.validate(data); verr == nil {
			return data, nil
		}
		// Corrupt local copy: fall through to the peers.
		lastErr = fmt.Errorf("%w: local copy of %s failed validation", ErrNotFound, id)
	}
	for _, p := range r.peers {
		pdata, perr := p.Get(ctx, id)
		if perr != nil {
			if !errors.Is(perr, ErrNotFound) {
				lastErr = perr
			}
			continue
		}
		if r.validate != nil {
			if verr := r.validate(pdata); verr != nil {
				lastErr = verr
				continue
			}
		}
		// Repair the local copy so the next Get is one disk read; failure
		// only costs the repair, not the restore.
		//nanolint:ignore droppederr write-back repair is best-effort; the fetched blob is already in hand
		_ = r.local.Put(ctx, id, pdata)
		return pdata, nil
	}
	if errors.Is(lastErr, ErrNotFound) {
		return nil, fmt.Errorf("%w: %s (local and %d peers)", ErrNotFound, id, len(r.peers))
	}
	return nil, lastErr
}

// List returns the union of the local and peer id sets, sorted. Peers
// that fail are skipped: List feeds replication GC, which must work
// while a node is down.
func (r *Replicated) List(ctx context.Context) ([]string, error) {
	ids, err := r.local.List(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, p := range r.peers {
		pids, perr := p.List(ctx)
		if perr != nil {
			continue
		}
		for _, id := range pids {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes the blob locally and from every peer (best-effort on
// the peers: a down peer's stale replica is garbage, not a hazard — a
// resurrection from it is rejected by the seq frontier of the client).
func (r *Replicated) Delete(ctx context.Context, id string) error {
	err := r.local.Delete(ctx, id)
	for _, p := range r.peers {
		//nanolint:ignore droppederr peer deletes are best-effort GC; a stale replica only wastes space
		_ = p.Delete(ctx, id)
	}
	return err
}

package blob

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// storeConformance drives one Store implementation through the
// round-trip, overwrite, list, delete, and invalid-id contract.
func storeConformance(t *testing.T, st Store) {
	t.Helper()
	ctx := context.Background()

	if _, err := st.Get(ctx, "deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := st.Put(ctx, "deadbeef", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ctx, "cafe", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "deadbeef")
	if err != nil || !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite replaces.
	if err := st.Put(ctx, "deadbeef", []byte("three")); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get(ctx, "deadbeef"); !bytes.Equal(got, []byte("three")) {
		t.Fatalf("Get after overwrite = %q", got)
	}
	ids, err := st.List(ctx)
	if err != nil || !reflect.DeepEqual(ids, []string{"cafe", "deadbeef"}) {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := st.Delete(ctx, "cafe"); err != nil {
		t.Fatal(err)
	}
	// Deleting an absent blob is a no-op.
	if err := st.Delete(ctx, "cafe"); err != nil {
		t.Fatalf("Delete(absent) = %v", err)
	}
	if _, err := st.Get(ctx, "cafe"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}

	for _, id := range []string{"", "../escape", "a/b", "UPPER", "xyz", strings.Repeat("a", 65)} {
		if err := st.Put(ctx, id, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid id", id)
		}
		if _, err := st.Get(ctx, id); err == nil {
			t.Errorf("Get(%q) accepted an invalid id", id)
		}
	}
}

func TestMemStoreConformance(t *testing.T) { storeConformance(t, NewMemStore()) }

func TestFSStoreConformance(t *testing.T) {
	st, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeConformance(t, st)
}

func TestMemStoreCopies(t *testing.T) {
	st := NewMemStore()
	ctx := context.Background()
	data := []byte("abc")
	if err := st.Put(ctx, "aa", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, err := st.Get(ctx, "aa")
	if err != nil || string(got) != "abc" {
		t.Fatalf("caller mutation leaked into the store: %q, %v", got, err)
	}
	got[0] = 'Y'
	if again, _ := st.Get(ctx, "aa"); string(again) != "abc" {
		t.Fatalf("reader mutation leaked into the store: %q", again)
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"a": true, "deadbeef0123456789": true, strings.Repeat("f", 64): true,
		"": false, strings.Repeat("f", 65): false, "A": false, "g": false, "a-b": false,
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
}

// --- Replicated ---------------------------------------------------------------

// failingStore wraps a Store, failing every operation.
type failingStore struct{}

func (failingStore) Put(context.Context, string, []byte) error { return errors.New("peer down") }
func (failingStore) Get(context.Context, string) ([]byte, error) {
	return nil, errors.New("peer down")
}
func (failingStore) List(context.Context) ([]string, error) { return nil, errors.New("peer down") }
func (failingStore) Delete(context.Context, string) error   { return errors.New("peer down") }

func TestReplicatedFanOutAndFallback(t *testing.T) {
	ctx := context.Background()
	local, p1, p2 := NewMemStore(), NewMemStore(), NewMemStore()
	r := NewReplicated(local, []Store{p1, p2})

	if err := r.Put(ctx, "deadbeef", []byte("env")); err != nil {
		t.Fatal(err)
	}
	for i, st := range []Store{local, p1, p2} {
		if got, err := st.Get(ctx, "deadbeef"); err != nil || string(got) != "env" {
			t.Fatalf("copy %d = %q, %v", i, got, err)
		}
	}

	// Local loss: Get falls back to a peer and repairs the local copy.
	if err := local.Delete(ctx, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	if got, err := r.Get(ctx, "deadbeef"); err != nil || string(got) != "env" {
		t.Fatalf("peer fallback = %q, %v", got, err)
	}
	if got, err := local.Get(ctx, "deadbeef"); err != nil || string(got) != "env" {
		t.Fatalf("write-back repair missing: %q, %v", got, err)
	}

	if _, err := r.Get(ctx, "ab"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent everywhere) = %v, want ErrNotFound", err)
	}
}

func TestReplicatedSurvivesDeadPeer(t *testing.T) {
	ctx := context.Background()
	local := NewMemStore()
	r := NewReplicated(local, []Store{failingStore{}})
	// A dead peer must not fail the Put (the checkpoint is the durability
	// the caller was promised) — only count it.
	if err := r.Put(ctx, "deadbeef", []byte("env")); err != nil {
		t.Fatalf("Put with dead peer = %v", err)
	}
	if r.PutErrors() != 1 {
		t.Errorf("PutErrors = %d, want 1", r.PutErrors())
	}
	if got, err := r.Get(ctx, "deadbeef"); err != nil || string(got) != "env" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if ids, err := r.List(ctx); err != nil || !reflect.DeepEqual(ids, []string{"deadbeef"}) {
		t.Fatalf("List with dead peer = %v, %v", ids, err)
	}
	if err := r.Delete(ctx, "deadbeef"); err != nil {
		t.Fatalf("Delete with dead peer = %v", err)
	}
}

// TestReplicatedCorruptLocalFallsBack is the replica-integrity test: a
// valid-looking local blob that fails validation is skipped in favor of
// a peer copy that passes, and the restore succeeds from the second
// source.
func TestReplicatedCorruptLocalFallsBack(t *testing.T) {
	ctx := context.Background()
	local, peer := NewMemStore(), NewMemStore()
	r := NewReplicated(local, []Store{peer}, WithValidator(func(b []byte) error {
		if !bytes.HasPrefix(b, []byte("ok")) {
			return errors.New("corrupt")
		}
		return nil
	}))
	if err := local.Put(ctx, "deadbeef", []byte("torn...")); err != nil {
		t.Fatal(err)
	}
	if err := peer.Put(ctx, "deadbeef", []byte("ok-env")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, "deadbeef")
	if err != nil || string(got) != "ok-env" {
		t.Fatalf("corrupt-local fallback = %q, %v", got, err)
	}
	// The repair overwrote the torn local copy.
	if fixed, _ := local.Get(ctx, "deadbeef"); string(fixed) != "ok-env" {
		t.Fatalf("local copy not repaired: %q", fixed)
	}

	// All copies corrupt: the restore must fail, not hand back garbage.
	if err := peer.Put(ctx, "deadbeef", []byte("also-torn")); err != nil {
		t.Fatal(err)
	}
	if err := local.Put(ctx, "deadbeef", []byte("torn...")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, "deadbeef"); err == nil {
		t.Fatal("Get returned a blob that failed validation everywhere")
	}
}

func TestReplicatedListUnion(t *testing.T) {
	ctx := context.Background()
	local, peer := NewMemStore(), NewMemStore()
	r := NewReplicated(local, []Store{peer, failingStore{}})
	for i, st := range []Store{local, peer} {
		if err := st.Put(ctx, fmt.Sprintf("%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.Put(ctx, "99", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ids, err := r.List(ctx)
	if err != nil || !reflect.DeepEqual(ids, []string{"00", "01", "99"}) {
		t.Fatalf("List union = %v, %v", ids, err)
	}
}

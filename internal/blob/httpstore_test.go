package blob

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// peerHandler mimics the /v1/cluster/blobs surface a clustered nanobusd
// mounts, backed by a MemStore. (The real handlers are wired in
// internal/server; their integration is covered there. This double keeps
// the transport test free of an import cycle.)
func peerHandler(st *MemStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/cluster/blobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := st.Put(r.Context(), r.PathValue("id"), data); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/cluster/blobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		data, err := st.Get(r.Context(), r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		//nanolint:ignore droppederr a failed test-server write surfaces as a client-side read error
		_, _ = w.Write(data)
	})
	mux.HandleFunc("DELETE /v1/cluster/blobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := st.Delete(r.Context(), r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/cluster/blobs", func(w http.ResponseWriter, r *http.Request) {
		ids, err := st.List(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		body := []byte("[")
		for i, id := range ids {
			if i > 0 {
				body = append(body, ',')
			}
			body = append(body, '"')
			body = append(body, id...)
			body = append(body, '"')
		}
		body = append(body, ']')
		//nanolint:ignore droppederr a failed test-server write surfaces as a client-side read error
		_, _ = w.Write(body)
	})
	return mux
}

func TestHTTPStoreConformance(t *testing.T) {
	srv := httptest.NewServer(peerHandler(NewMemStore()))
	defer srv.Close()
	storeConformance(t, NewHTTPStore(srv.URL, srv.Client()))
}

func TestHTTPStoreDeadPeer(t *testing.T) {
	srv := httptest.NewServer(peerHandler(NewMemStore()))
	srv.Close() // the peer is gone before the first request
	st := NewHTTPStore(srv.URL, nil)
	if err := st.Put(t.Context(), "deadbeef", []byte("x")); err == nil {
		t.Fatal("Put against a dead peer succeeded")
	}
	if _, err := st.Get(t.Context(), "deadbeef"); err == nil {
		t.Fatal("Get against a dead peer succeeded")
	}
}

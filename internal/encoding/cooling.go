// Cooling codes. The paper's BI/OEBI/CBI family minimizes *energy*; its
// own thermal model (Sec. 5.3) shows the failure mode at deep-submicron
// nodes is the *peak wire temperature*, which tracks each wire's
// sustained switching duty, not the bus total. "Cooling Codes"
// (Chee/Etzion/Kiah/Vardy, arXiv:1701.07872) design codes that bound the
// number of simultaneously hot wires; the two schemes here adapt that
// idea to the simulator's stateful-encoder contract:
//
//   - CoolSpread rotates the data-bit-to-wire mapping on a fixed word
//     period, spreading a hot bit position's duty across every wire of
//     the bus. No control wires are added (the decoder replays the
//     rotation from its own word counter), so the bandwidth overhead is
//     zero; the worst wire's long-run duty approaches the bus average.
//
//   - CoolCap partitions the 32 data bits into four groups of eight with
//     one invert line each, inverting any group whose intra-group
//     switching weight exceeds half the group. That caps the number of
//     simultaneously switching wires per group at 5 (4 data + the invert
//     line), bounding the per-transition heat burst any wire
//     neighbourhood sees, at a 4-wire (12.5%) overhead.
package encoding

import "math/bits"

// CoolSpreadPeriod is the default rotation period in transmitted words.
// Short enough that a phase-locked hot bit is spread well inside one
// 100K-cycle sampling interval, long enough that the whole-bus shift at
// each rotation boundary is amortized to under 2% of transitions.
const CoolSpreadPeriod = 64

// CoolSpread is the spreading cooling code: physical wire (j+r) mod 32
// carries data bit j, with the rotation r advancing by one every Period
// transmitted words. The mapping schedule is a pure function of the word
// count, so the decoder tracks it without any control wires.
type CoolSpread struct {
	// Period is the rotation period in words (0 means CoolSpreadPeriod).
	Period uint32
	prev   uint64
	count  uint32
	first  bool
}

// NewCoolSpread returns a spreading cooling-code encoder with the
// default rotation period.
func NewCoolSpread() *CoolSpread { return &CoolSpread{Period: CoolSpreadPeriod, first: true} }

// Name implements Encoder.
func (*CoolSpread) Name() string { return "CoolSpread" }

// Width implements Encoder.
func (*CoolSpread) Width() int { return DataWidth }

func (c *CoolSpread) period() uint32 {
	if c.Period == 0 {
		return CoolSpreadPeriod
	}
	return c.Period
}

// Encode implements Encoder.
func (c *CoolSpread) Encode(data uint32) uint64 {
	r := int(c.count / c.period() % DataWidth)
	c.count++
	c.first = false
	c.prev = uint64(bits.RotateLeft32(data, r))
	return c.prev
}

// Reset implements Encoder.
func (c *CoolSpread) Reset() { c.prev, c.count, c.first = 0, 0, true }

// EncodeBatch implements BatchEncoder.
func (c *CoolSpread) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = c.Encode(w)
	}
}

// State implements Stateful (the rotation word counter rides in Last).
func (c *CoolSpread) State() State { return State{Prev: c.prev, Last: c.count, First: c.first} }

// SetState implements Stateful.
func (c *CoolSpread) SetState(st State) { c.prev, c.count, c.first = st.Prev, st.Last, st.First }

// CoolSpreadDecoder decodes CoolSpread words by replaying the rotation
// schedule from its own word counter.
type CoolSpreadDecoder struct {
	Period uint32
	count  uint32
}

// NewCoolSpreadDecoder returns a decoder matching NewCoolSpread.
func NewCoolSpreadDecoder() *CoolSpreadDecoder { return &CoolSpreadDecoder{Period: CoolSpreadPeriod} }

// Decode implements Decoder.
func (d *CoolSpreadDecoder) Decode(phys uint64) uint32 {
	period := d.Period
	if period == 0 {
		period = CoolSpreadPeriod
	}
	r := int(d.count / period % DataWidth)
	d.count++
	return bits.RotateLeft32(uint32(phys), -r)
}

// Reset implements Decoder.
func (d *CoolSpreadDecoder) Reset() { d.count = 0 }

// --- CoolCap -----------------------------------------------------------------

// coolCapGroups partitions the 32 data bits into byte-sized groups, each
// with its own invert line on wires 32..35.
const coolCapGroups = 4

// CoolCap is the weight-capped cooling code: per-group bus-invert over
// four 8-bit groups. Group g occupies wires 8g..8g+7 and its invert line
// wire 32+g; a group is inverted whenever more than half of its bits
// would switch, capping simultaneous transitions at 4 data wires + 1
// invert line per group.
type CoolCap struct {
	prev  uint64
	first bool
}

// NewCoolCap returns a weight-capped cooling-code encoder.
func NewCoolCap() *CoolCap { return &CoolCap{first: true} }

// Name implements Encoder.
func (*CoolCap) Name() string { return "CoolCap" }

// Width implements Encoder.
func (*CoolCap) Width() int { return DataWidth + coolCapGroups }

// Encode implements Encoder.
func (c *CoolCap) Encode(data uint32) uint64 {
	if c.first {
		c.first = false
		c.prev = uint64(data)
		return c.prev
	}
	phys := uint64(data)
	for g := 0; g < coolCapGroups; g++ {
		shift := uint(8 * g)
		prevByte := uint32(c.prev>>shift) & 0xFF
		dataByte := (data >> shift) & 0xFF
		// Count the group's switching bits including the invert line's own
		// transition for the candidate we would otherwise pick.
		if bits.OnesCount32(prevByte^dataByte) > 4 {
			phys ^= 0xFF << shift              // invert the group's data bits
			phys |= 1 << (DataWidth + uint(g)) // raise the group's invert line
		}
	}
	c.prev = phys
	return phys
}

// Reset implements Encoder.
func (c *CoolCap) Reset() { c.prev, c.first = 0, true }

// EncodeBatch implements BatchEncoder.
func (c *CoolCap) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = c.Encode(w)
	}
}

// State implements Stateful.
func (c *CoolCap) State() State { return State{Prev: c.prev, First: c.first} }

// SetState implements Stateful.
func (c *CoolCap) SetState(st State) { c.prev, c.first = st.Prev, st.First }

// CoolCapDecoder decodes CoolCap words.
type CoolCapDecoder struct{}

// Decode implements Decoder.
func (*CoolCapDecoder) Decode(phys uint64) uint32 {
	data := uint32(phys)
	for g := 0; g < coolCapGroups; g++ {
		if phys&(1<<(DataWidth+uint(g))) != 0 {
			data ^= 0xFF << uint(8*g)
		}
	}
	return data
}

// Reset implements Decoder.
func (*CoolCapDecoder) Reset() {}

// CoolingSchemes lists the cooling-code family.
func CoolingSchemes() []string { return []string{"CoolSpread", "CoolCap"} }

// --- Padded ------------------------------------------------------------------

// Padded widens an encoder to a fixed physical width without driving the
// extra wires: padding wires never switch, so they dissipate nothing and
// sit at ambient. The adaptive controller uses this to run two encoders
// of different native widths on one bus (the capacitance and thermal
// models are sized once, to the common width).
type Padded struct {
	inner Encoder
	width int
}

// Pad returns enc widened to width wires; it returns enc unchanged when
// the widths already agree. Pad panics if width is narrower than the
// encoder — callers size the bus to the family's maximum.
func Pad(enc Encoder, width int) Encoder {
	if enc.Width() == width {
		return enc
	}
	if enc.Width() > width {
		//nanolint:ignore libpanic callers pad to the family maximum by construction; a narrower width is a programming error, not input
		panic("encoding: Pad narrower than the encoder")
	}
	return &Padded{inner: enc, width: width}
}

// Name implements Encoder (the padding is a bus-geometry concern, not a
// scheme identity: a padded BI still encodes as "BI").
func (p *Padded) Name() string { return p.inner.Name() }

// Width implements Encoder.
func (p *Padded) Width() int { return p.width }

// Encode implements Encoder.
func (p *Padded) Encode(data uint32) uint64 { return p.inner.Encode(data) }

// Reset implements Encoder.
func (p *Padded) Reset() { p.inner.Reset() }

// EncodeBatch implements BatchEncoder.
func (p *Padded) EncodeBatch(dst []uint64, src []uint32) {
	EncodeWords(p.inner, dst, src)
}

// State implements Stateful when the inner encoder does; stateless inner
// encoders report a zero State.
func (p *Padded) State() State {
	if se, ok := p.inner.(Stateful); ok {
		return se.State()
	}
	return State{}
}

// SetState implements Stateful.
func (p *Padded) SetState(st State) {
	if se, ok := p.inner.(Stateful); ok {
		se.SetState(st)
	}
}

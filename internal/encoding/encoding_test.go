package encoding

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip drives an encoder/decoder pair over a word sequence and checks
// every word is recovered.
func roundTrip(t *testing.T, name string, words []uint32) {
	t.Helper()
	enc, err := New(name)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	dec, err := NewDecoder(name)
	if err != nil {
		t.Fatalf("NewDecoder(%s): %v", name, err)
	}
	for i, w := range words {
		phys := enc.Encode(w)
		if phys>>uint(enc.Width()) != 0 {
			t.Fatalf("%s: physical word %#x exceeds width %d", name, phys, enc.Width())
		}
		got := dec.Decode(phys)
		if got != w {
			t.Fatalf("%s: word %d: encoded %#x decoded to %#x, want %#x", name, i, phys, got, w)
		}
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	words := make([]uint32, 2000)
	for i := range words {
		switch rng.Intn(3) {
		case 0: // sequential run
			if i > 0 {
				words[i] = words[i-1] + 4
			} else {
				words[i] = rng.Uint32()
			}
		case 1: // strided
			if i > 0 {
				words[i] = words[i-1] + 64
			} else {
				words[i] = rng.Uint32()
			}
		default: // random
			words[i] = rng.Uint32()
		}
	}
	for _, name := range AllSchemes() {
		t.Run(name, func(t *testing.T) { roundTrip(t, name, words) })
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, name := range AllSchemes() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(words []uint32) bool {
				enc, _ := New(name)
				dec, _ := NewDecoder(name)
				for _, w := range words {
					if dec.Decode(enc.Encode(w)) != w {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBIInvertsWhenBeneficial(t *testing.T) {
	enc := NewBI()
	enc.Encode(0x00000000)
	// All 32 bits would flip; BI must invert (send 0 with invert line).
	phys := enc.Encode(0xFFFFFFFF)
	if phys&(1<<DataWidth) == 0 {
		t.Error("BI did not raise invert line for a 32-bit flip")
	}
	if uint32(phys) != 0 {
		t.Errorf("BI transmitted %#x, want 0 (inverted all-ones)", uint32(phys))
	}
	// The physical transition cost is 1 line (the invert line).
	if d := bits.OnesCount64(phys ^ 0); d != 1 {
		t.Errorf("BI physical Hamming = %d, want 1", d)
	}
}

func TestBIDoesNotInvertAtOrBelowHalf(t *testing.T) {
	enc := NewBI()
	enc.Encode(0)
	// Exactly 16 bits flip: no inversion (paper: invert only when greater
	// than half).
	phys := enc.Encode(0x0000FFFF)
	if phys&(1<<DataWidth) != 0 {
		t.Error("BI inverted on exactly half the bus width")
	}
}

func TestBIReducesSelfTransitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	un := NewUnencoded()
	bi := NewBI()
	prevU, prevB := uint64(0), uint64(0)
	totalU, totalB := 0, 0
	for i := 0; i < 5000; i++ {
		w := rng.Uint32()
		pu := un.Encode(w)
		pb := bi.Encode(w)
		if i > 0 {
			totalU += selfCost(prevU, pu, un.Width())
			totalB += selfCost(prevB, pb, bi.Width())
		}
		prevU, prevB = pu, pb
	}
	if totalB >= totalU {
		t.Errorf("BI self transitions %d >= unencoded %d on random traffic", totalB, totalU)
	}
}

func TestOEBIModesReachable(t *testing.T) {
	// Craft inputs that exercise each OEBI mode.
	enc := NewOEBI()
	enc.Encode(0)
	seen := map[uint64]bool{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		phys := enc.Encode(rng.Uint32())
		mode := (phys & 1) | (phys>>(DataWidth+1))&1<<1
		seen[mode] = true
	}
	if len(seen) < 3 {
		t.Errorf("OEBI exercised only %d of 4 modes on random traffic", len(seen))
	}
}

func TestOEBINoWorseCouplingThanUnencoded(t *testing.T) {
	// OEBI picks the minimum-coupling mode among four that include
	// "no inversion", so per step its physical coupling cost cannot
	// exceed the unencoded word placed on the same 34-wire layout.
	rng := rand.New(rand.NewSource(29))
	enc := NewOEBI()
	prevPhys := enc.Encode(rng.Uint32())
	for i := 0; i < 3000; i++ {
		w := rng.Uint32()
		phys := enc.Encode(w)
		rawPhys := uint64(w) << 1 // mode 00 candidate on the same layout
		cEnc := couplingCost(prevPhys, phys, enc.Width())
		cRaw := couplingCost(prevPhys, rawPhys, enc.Width())
		if cEnc > cRaw {
			t.Fatalf("step %d: OEBI coupling cost %d > unencoded-on-same-bus %d", i, cEnc, cRaw)
		}
		prevPhys = phys
	}
}

func TestCBIPicksLowerCouplingChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	enc := NewCBI()
	prev := enc.Encode(rng.Uint32())
	for i := 0; i < 3000; i++ {
		w := rng.Uint32()
		phys := enc.Encode(w)
		plain := uint64(w)
		inverted := uint64(^w) | 1<<DataWidth
		cPlain := couplingCost(prev, plain, enc.Width())
		cInv := couplingCost(prev, inverted, enc.Width())
		want := plain
		if cInv < cPlain {
			want = inverted
		}
		if phys != want {
			t.Fatalf("step %d: CBI sent %#x, want %#x (costs plain=%d inv=%d)", i, phys, want, cPlain, cInv)
		}
		prev = phys
	}
}

func TestGraySequentialSingleBit(t *testing.T) {
	enc := NewGray()
	prev := enc.Encode(100)
	for a := uint32(101); a < 200; a++ {
		cur := enc.Encode(a)
		if d := bits.OnesCount64(prev ^ cur); d != 1 {
			t.Fatalf("Gray consecutive addresses %d->%d flipped %d bits, want 1", a-1, a, d)
		}
		prev = cur
	}
}

func TestT0FreezesSequentialRuns(t *testing.T) {
	enc := NewT0(4)
	prev := enc.Encode(0x1000)
	for i := 1; i <= 50; i++ {
		cur := enc.Encode(0x1000 + uint32(4*i))
		if i == 1 {
			// First sequential step: INC rises (1 transition).
			if d := bits.OnesCount64(prev ^ cur); d != 1 {
				t.Fatalf("first sequential step flipped %d lines, want 1", d)
			}
		} else if cur != prev {
			t.Fatalf("sequential step %d changed the physical bus", i)
		}
		prev = cur
	}
	// A jump transmits the raw address with INC low.
	cur := enc.Encode(0x7FFF0000)
	if cur&(1<<DataWidth) != 0 {
		t.Error("jump left INC high")
	}
	if uint32(cur) != 0x7FFF0000 {
		t.Errorf("jump transmitted %#x", uint32(cur))
	}
}

func TestCouplingCostCases(t *testing.T) {
	// Two-wire bus, classify the canonical cases of Sec. 3.2.
	cases := []struct {
		prev, cur uint64
		want      int
	}{
		{0b00, 0b00, 0}, // quiet
		{0b00, 0b11, 0}, // same direction: no coupling cost
		{0b01, 0b10, 4}, // toggle: Miller doubled
		{0b00, 0b01, 1}, // charge against quiet
		{0b01, 0b00, 1}, // discharge against quiet
	}
	for _, c := range cases {
		if got := couplingCost(c.prev, c.cur, 2); got != c.want {
			t.Errorf("couplingCost(%02b->%02b) = %d, want %d", c.prev, c.cur, got, c.want)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Error("unknown encoder accepted")
	}
	if _, err := NewDecoder("nope"); err == nil {
		t.Error("unknown decoder accepted")
	}
}

func TestWidths(t *testing.T) {
	want := map[string]int{
		"Unencoded": 32, "BI": 33, "OEBI": 34, "CBI": 33, "Gray": 32, "T0": 33,
	}
	for name, w := range want {
		enc, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Width() != w {
			t.Errorf("%s width = %d, want %d", name, enc.Width(), w)
		}
		if enc.Name() != name {
			t.Errorf("Name() = %q, want %q", enc.Name(), name)
		}
	}
}

func TestReset(t *testing.T) {
	for _, name := range AllSchemes() {
		enc, _ := New(name)
		a := enc.Encode(0xDEADBEEF)
		enc.Encode(0x12345678)
		enc.Reset()
		b := enc.Encode(0xDEADBEEF)
		if a != b {
			t.Errorf("%s: Reset did not restore initial behaviour (%#x vs %#x)", name, a, b)
		}
	}
}

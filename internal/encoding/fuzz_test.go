package encoding

import (
	"encoding/binary"
	"testing"
)

// FuzzEncoders drives every registered scheme over an arbitrary word
// stream and checks the invariants that the simulator and the wire
// protocols rely on: encode/decode round-trips, physical words stay
// inside the declared width, EncodeBatch matches per-word Encode, and a
// State capture/restore mid-stream reproduces the original output.
func FuzzEncoders(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00, 0xAA, 0x55, 0xAA, 0x55})
	seq := make([]byte, 64*4)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint32(seq[i*4:], uint32(i*4))
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint32, 0, len(raw)/4+1)
		for len(raw) >= 4 {
			words = append(words, binary.LittleEndian.Uint32(raw))
			raw = raw[4:]
		}
		if len(raw) > 0 {
			var tail [4]byte
			copy(tail[:], raw)
			words = append(words, binary.LittleEndian.Uint32(tail[:]))
		}
		for _, name := range AllSchemes() {
			enc, err := New(name)
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			dec, err := NewDecoder(name)
			if err != nil {
				t.Fatalf("NewDecoder(%s): %v", name, err)
			}
			width := uint(enc.Width())
			phys := make([]uint64, len(words))
			for i, w := range words {
				phys[i] = enc.Encode(w)
				if width < 64 && phys[i]>>width != 0 {
					t.Fatalf("%s: word %d: physical %#x exceeds width %d", name, i, phys[i], width)
				}
				if got := dec.Decode(phys[i]); got != w {
					t.Fatalf("%s: word %d: decoded %#x, want %#x", name, i, got, w)
				}
			}

			if be, ok := enc.(BatchEncoder); ok {
				enc.Reset()
				batch := make([]uint64, len(words))
				be.EncodeBatch(batch, words)
				for i := range batch {
					if batch[i] != phys[i] {
						t.Fatalf("%s: word %d: EncodeBatch %#x != Encode %#x", name, i, batch[i], phys[i])
					}
				}
			}

			if se, ok := enc.(Stateful); ok && len(words) > 1 {
				cut := len(words) / 2
				enc.Reset()
				for _, w := range words[:cut] {
					enc.Encode(w)
				}
				st := se.State()
				fresh, _ := New(name)
				fresh.(Stateful).SetState(st)
				for i, w := range words[cut:] {
					if got := fresh.Encode(w); got != phys[cut+i] {
						t.Fatalf("%s: resumed word %d: got %#x, want %#x", name, cut+i, got, phys[cut+i])
					}
				}
			}
		}
	})
}

package encoding

import (
	"math/rand"
	"testing"
)

func TestCrosstalkClassCanonical(t *testing.T) {
	// 3-wire bus, classifying the middle wire (index 1).
	cases := []struct {
		name      string
		prev, cur uint64
		want      int
	}{
		{"all quiet", 0b000, 0b000, 0},
		{"all rise together", 0b000, 0b111, 0},
		{"middle rises alone", 0b000, 0b010, 2},
		{"middle rises, left rises too", 0b000, 0b011, 1},
		{"middle vs both anti-phase", 0b101, 0b010, 4},
		{"middle vs one anti-phase, one quiet", 0b001, 0b010, 3},
		{"middle quiet, both neighbours toggle", 0b101, 0b000, 2},
	}
	for _, c := range cases {
		if got := CrosstalkClass(c.prev, c.cur, 1, 3); got != c.want {
			t.Errorf("%s: class = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCrosstalkClassEdgeWire(t *testing.T) {
	// Edge wires have one neighbour: max class 2.
	if got := CrosstalkClass(0b01, 0b10, 0, 2); got != 2 {
		t.Errorf("edge anti-phase class = %d, want 2", got)
	}
	if got := CrosstalkClass(0b00, 0b01, 0, 2); got != 1 {
		t.Errorf("edge lone-rise class = %d, want 1", got)
	}
}

func TestCrosstalkClassMatchesCouplingCost(t *testing.T) {
	// Sum of per-wire classes equals 2x the couplingCost (each pair
	// contributes its (vi-vj)^2... note couplingCost counts each pair
	// once, classes count it from both wires)... verify the exact 2x
	// relation on random words. Classes are |di-dj| (0..2) per pair while
	// couplingCost uses (di-dj)^2 (0,1,4), so the relation is exact only
	// for |d| in {0,1}; use single-direction patterns to pin it, then
	// sanity-bound the general case.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		prev := rng.Uint64() & 0xFFFF
		cur := prev | rng.Uint64()&0xFFFF // rising-only transitions
		classSum := 0
		for i := 0; i < 16; i++ {
			classSum += CrosstalkClass(prev, cur, i, 16)
		}
		cost := couplingCost(prev, cur, 16)
		if classSum != 2*cost {
			t.Fatalf("trial %d: class sum %d != 2*couplingCost %d (rising-only)", trial, classSum, cost)
		}
	}
}

func TestCrosstalkHistogram(t *testing.T) {
	h := NewCrosstalkHistogram(4)
	h.Observe(0b0000)
	h.Observe(0b1111) // all rise together: class 0 on every wire
	h.Observe(0b1010) // wires 0,2 fall: mixed classes
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	if h.Counts[0] != 4 {
		t.Errorf("class-0 count = %d, want 4 (the common-mode transition)", h.Counts[0])
	}
	if h.MeanClass() <= 0 {
		t.Error("mean class not positive for toggling stream")
	}
	// Repeated word: all wires class 0.
	before := h.Counts[0]
	h.Observe(0b1010)
	if h.Counts[0] != before+4 {
		t.Error("repeated word did not record class 0 for all wires")
	}
	if h.Fraction(0)+h.Fraction(1)+h.Fraction(2)+h.Fraction(3)+h.Fraction(4) < 0.999 {
		t.Error("fractions do not sum to 1")
	}
	if h.Fraction(9) != 0 {
		t.Error("out-of-range class fraction != 0")
	}
}

func TestCrosstalkStreamsCompare(t *testing.T) {
	// An anti-phase toggling stream must grade far worse than a
	// sequential counting stream.
	seq := NewCrosstalkHistogram(16)
	tog := NewCrosstalkHistogram(16)
	for i := 0; i < 1000; i++ {
		seq.Observe(uint64(i))
		if i%2 == 0 {
			tog.Observe(0x5555)
		} else {
			tog.Observe(0xAAAA)
		}
	}
	if tog.MeanClass() < 2*seq.MeanClass() {
		t.Errorf("toggle stream class %.3f not far above sequential %.3f",
			tog.MeanClass(), seq.MeanClass())
	}
	// The anti-phase stream is pure class 4 (interior) and 2 (edges).
	if tog.Counts[1] != 0 || tog.Counts[3] != 0 {
		t.Errorf("anti-phase stream has odd classes: %v", tog.Counts)
	}
}

func TestHistogramBounds(t *testing.T) {
	h := NewCrosstalkHistogram(0)
	if h.Width != 1 {
		t.Errorf("width clamp = %d", h.Width)
	}
	h2 := NewCrosstalkHistogram(100)
	if h2.Width != 64 {
		t.Errorf("width clamp = %d", h2.Width)
	}
	var empty CrosstalkHistogram
	if empty.MeanClass() != 0 || empty.Fraction(0) != 0 {
		t.Error("empty histogram stats not zero")
	}
}

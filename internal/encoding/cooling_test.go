package encoding

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestCoolingWidths(t *testing.T) {
	want := map[string]int{"CoolSpread": 32, "CoolCap": 36}
	for name, w := range want {
		enc, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Width() != w {
			t.Errorf("%s width = %d, want %d", name, enc.Width(), w)
		}
		if enc.Name() != name {
			t.Errorf("Name() = %q, want %q", enc.Name(), name)
		}
	}
}

// TestCoolSpreadSpreadsDuty is the scheme's defining property: a stream
// that hammers one bit position must distribute that position's switching
// activity across every wire, pulling the worst wire's transition count
// down toward the bus average.
func TestCoolSpreadSpreadsDuty(t *testing.T) {
	const words = 32 * CoolSpreadPeriod * 4 // several full rotation cycles
	countTransitions := func(enc Encoder) (perWire [DataWidth]uint64) {
		var prev uint64
		for i := 0; i < words; i++ {
			// Toggle bit 0 every word: without spreading, wire 0 sees
			// every transition and the other wires none.
			phys := enc.Encode(uint32(i & 1))
			if i > 0 {
				diff := prev ^ phys
				for w := 0; w < DataWidth; w++ {
					perWire[w] += (diff >> uint(w)) & 1
				}
			}
			prev = phys
		}
		return perWire
	}
	raw := countTransitions(NewUnencoded())
	spread := countTransitions(NewCoolSpread())

	var rawMax, spreadMax, spreadMin uint64
	spreadMin = ^uint64(0)
	for w := 0; w < DataWidth; w++ {
		if raw[w] > rawMax {
			rawMax = raw[w]
		}
		if spread[w] > spreadMax {
			spreadMax = spread[w]
		}
		if spread[w] < spreadMin {
			spreadMin = spread[w]
		}
	}
	if rawMax < words-1 {
		t.Fatalf("unencoded hot wire saw %d transitions, want ~%d", rawMax, words-1)
	}
	// Each of the 32 rotations holds the hot bit for Period words, 4
	// times over, plus boundary shifts: the worst wire must be within 2x
	// of the best, and far below the unencoded hot wire.
	if spreadMax > 4*spreadMin+uint64(8*CoolSpreadPeriod) {
		t.Errorf("CoolSpread imbalance: max %d vs min %d transitions", spreadMax, spreadMin)
	}
	if spreadMax*4 > rawMax {
		t.Errorf("CoolSpread hot wire %d not well below unencoded hot wire %d", spreadMax, rawMax)
	}
}

// TestCoolCapBoundsGroupWeight is CoolCap's defining property: no 8-bit
// group ever switches more than 4 data wires (+1 invert line) in one
// transition.
func TestCoolCapBoundsGroupWeight(t *testing.T) {
	enc := NewCoolCap()
	rng := rand.New(rand.NewSource(99))
	var prev uint64
	for i := 0; i < 20000; i++ {
		phys := enc.Encode(rng.Uint32())
		if i > 0 {
			diff := prev ^ phys
			for g := 0; g < coolCapGroups; g++ {
				dataSw := bits.OnesCount64((diff >> uint(8*g)) & 0xFF)
				if dataSw > 4 {
					t.Fatalf("word %d: group %d switched %d data wires, cap is 4", i, g, dataSw)
				}
			}
		}
		prev = phys
	}
}

// TestCoolingStatefulResume pins the checkpoint contract: capturing State
// mid-stream and replaying the tail on a fresh encoder must reproduce the
// original physical words exactly. CoolSpread additionally proves the
// rotation counter rides in State.Last.
func TestCoolingStatefulResume(t *testing.T) {
	for _, name := range CoolingSchemes() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			words := make([]uint32, 500)
			for i := range words {
				words[i] = rng.Uint32()
			}
			ref, _ := New(name)
			want := make([]uint64, len(words))
			for i, w := range words {
				want[i] = ref.Encode(w)
			}

			head, _ := New(name)
			for _, w := range words[:137] {
				head.Encode(w)
			}
			st := head.(Stateful).State()

			tail, _ := New(name)
			tail.(Stateful).SetState(st)
			for i, w := range words[137:] {
				if got := tail.Encode(w); got != want[137+i] {
					t.Fatalf("resumed word %d: got %#x, want %#x", 137+i, got, want[137+i])
				}
			}
		})
	}
}

func TestPadPreservesEncodingAndState(t *testing.T) {
	inner := NewBI()
	padded := Pad(NewBI(), 36)
	if padded.Width() != 36 {
		t.Fatalf("padded width = %d, want 36", padded.Width())
	}
	if padded.Name() != "BI" {
		t.Fatalf("padded name = %q, want BI", padded.Name())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		w := rng.Uint32()
		if a, b := inner.Encode(w), padded.Encode(w); a != b {
			t.Fatalf("word %d: inner %#x != padded %#x", i, a, b)
		}
	}
	if a, b := inner.State(), padded.(Stateful).State(); a != b {
		t.Fatalf("state diverged: %+v vs %+v", a, b)
	}
	if got := Pad(inner, inner.Width()); got.(*BI) != inner {
		t.Error("Pad to native width should return the encoder unchanged")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pad narrower than encoder should panic")
		}
	}()
	Pad(NewCoolCap(), 33)
}

func TestPadBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]uint32, 300)
	for i := range src {
		src[i] = rng.Uint32()
	}
	scalar := Pad(NewBI(), 36)
	batch := Pad(NewBI(), 36).(BatchEncoder)
	dst := make([]uint64, len(src))
	batch.EncodeBatch(dst, src)
	for i, w := range src {
		if want := scalar.Encode(w); dst[i] != want {
			t.Fatalf("word %d: batch %#x != scalar %#x", i, dst[i], want)
		}
	}
}

func TestCoolSpreadCustomPeriod(t *testing.T) {
	enc := &CoolSpread{Period: 2, first: true}
	dec := &CoolSpreadDecoder{Period: 2}
	for i := 0; i < 200; i++ {
		w := uint32(i * 2654435761)
		if got := dec.Decode(enc.Encode(w)); got != w {
			t.Fatalf("word %d: round trip failed", i)
		}
	}
	// Words 2 and 3 use rotation 1: bit 31 must land on wire 0.
	enc.Reset()
	enc.Encode(0)
	enc.Encode(0)
	if got := enc.Encode(1 << 31); got != 1 {
		t.Fatalf("rotation after period: got %#x, want 0x1", got)
	}
}

package encoding

// Crosstalk classification: the deep-submicron coupling literature the
// paper builds on (Sotiriadis [16, 17], Kim's CBI [9]) grades each wire's
// transition by how much coupling capacitance it effectively switches,
// from class 0C (both neighbours move with the wire: no coupling switched)
// to 4C (both neighbours toggle against it: four units of Miller-doubled
// coupling). The class equals |di-dl| + |di-dr| where d ∈ {-1,0,+1} are
// the normalised transition directions of the wire and its neighbours —
// exactly the per-pair (vi-vj)^2 cost of couplingCost collapsed to units
// of C.
//
// The classifier powers trace analyses (how toggle-heavy is a workload's
// address stream?) and explains encoder behaviour: CBI exists to convert
// 3C/4C patterns into cheaper classes.

// CrosstalkClass grades wire i's transition in prev -> cur on a bus of the
// given width. Edge wires have one neighbour, so their maximum class is
// 2C. A quiet wire between switching neighbours still switches coupling
// charge; its class counts that (|0-dl| + |0-dr|).
func CrosstalkClass(prev, cur uint64, i, width int) int {
	di := dir(prev, cur, i)
	class := 0
	if i > 0 {
		d := di - dir(prev, cur, i-1)
		if d < 0 {
			d = -d
		}
		class += d
	}
	if i < width-1 {
		d := di - dir(prev, cur, i+1)
		if d < 0 {
			d = -d
		}
		class += d
	}
	return class
}

// CrosstalkHistogram accumulates the class distribution of a word stream.
type CrosstalkHistogram struct {
	// Counts[c] is the number of (wire, transition) observations in
	// class c (0..4).
	Counts [5]uint64
	// Width is the bus width observed.
	Width int

	prev    uint64
	started bool
}

// NewCrosstalkHistogram returns a histogram for a width-wire bus.
func NewCrosstalkHistogram(width int) *CrosstalkHistogram {
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return &CrosstalkHistogram{Width: width}
}

// Observe feeds the next bus word.
func (h *CrosstalkHistogram) Observe(word uint64) {
	if !h.started {
		h.started = true
		h.prev = word
		return
	}
	if word != h.prev {
		for i := 0; i < h.Width; i++ {
			c := CrosstalkClass(h.prev, word, i, h.Width)
			h.Counts[c]++
		}
	} else {
		h.Counts[0] += uint64(h.Width)
	}
	h.prev = word
}

// Total returns the number of graded observations.
func (h *CrosstalkHistogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fraction returns class c's share of all observations.
func (h *CrosstalkHistogram) Fraction(c int) float64 {
	if c < 0 || c > 4 {
		return 0
	}
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[c]) / float64(t)
}

// MeanClass returns the average coupling class — a single toggle-heaviness
// figure for a stream (0: perfectly quiet/shielded, 4: worst-case
// anti-phase toggling).
func (h *CrosstalkHistogram) MeanClass() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	sum := 0.0
	for c, n := range h.Counts {
		sum += float64(c) * float64(n)
	}
	return sum / float64(t)
}

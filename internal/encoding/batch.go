// Batch encoding. The simulator's batch pipeline encodes whole word
// slices at a time; going through Encoder.Encode would cost one interface
// dispatch per word, which on the memoized hot path is comparable to the
// energy kernel itself. BatchEncoder is the optional batch fast path:
// every built-in scheme implements it, stateless schemes as a tight loop
// and stateful ones as a direct (devirtualized) method-call loop. Batch
// encoding is defined to be exactly Encode applied in order, so results
// are bit-identical either way.
package encoding

// BatchEncoder is implemented by encoders that can encode a whole slice
// per call. EncodeBatch must behave exactly like calling Encode(src[i])
// for i in order, storing each result in dst[i]; dst and src must have
// equal length.
type BatchEncoder interface {
	EncodeBatch(dst []uint64, src []uint32)
}

// EncodeWords encodes src into dst (equal lengths) through the encoder's
// batch fast path when it has one, falling back to per-word Encode calls.
func EncodeWords(e Encoder, dst []uint64, src []uint32) {
	if be, ok := e.(BatchEncoder); ok {
		be.EncodeBatch(dst, src)
		return
	}
	for i, w := range src {
		dst[i] = e.Encode(w)
	}
}

// EncodeBatch implements BatchEncoder.
func (*Unencoded) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = uint64(w)
	}
}

// EncodeBatch implements BatchEncoder.
func (*Gray) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = uint64(w ^ (w >> 1))
	}
}

// EncodeBatch implements BatchEncoder.
func (b *BI) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = b.Encode(w)
	}
}

// EncodeBatch implements BatchEncoder.
func (o *OEBI) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = o.Encode(w)
	}
}

// EncodeBatch implements BatchEncoder.
func (c *CBI) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = c.Encode(w)
	}
}

// EncodeBatch implements BatchEncoder.
func (t *T0) EncodeBatch(dst []uint64, src []uint32) {
	for i, w := range src {
		dst[i] = t.Encode(w)
	}
}

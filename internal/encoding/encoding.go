// Package encoding implements the low-power bus encoding schemes the paper
// evaluates (Sec. 5.2) — bus-invert (BI), odd/even bus-invert (OEBI) and
// coupling-driven bus-invert (CBI) — plus an unencoded baseline and two
// extension codes (Gray, T0) for the address-bus study the paper motivates.
//
// Encoders are stateful: every scheme's decision depends on the word
// currently held on the physical bus. Width() reports the number of
// physical wires including invert/control lines, which the energy model
// charges like any other line (the paper's setup: BI and CBI add one
// invert line as the MSB; OEBI adds two, odd-invert as the LSB and
// even-invert as the MSB).
package encoding

import (
	"errors"
	"fmt"
	"math/bits"
)

// Encoder maps 32-bit data words onto physical bus words.
type Encoder interface {
	// Name identifies the scheme ("BI", "OEBI", ...).
	Name() string
	// Width returns the physical bus width in wires (>= 32).
	Width() int
	// Encode returns the physical word to drive for data, updating the
	// encoder's state.
	Encode(data uint32) uint64
	// Reset returns the encoder to its initial (bus undriven) state.
	Reset()
}

// Decoder recovers data words from physical bus words.
type Decoder interface {
	// Decode recovers the data word from the physical word, updating any
	// decoder state.
	Decode(phys uint64) uint32
	// Reset clears decoder state.
	Reset()
}

// DataWidth is the address width of the paper's buses.
const DataWidth = 32

// couplingCost is the energy-proportional coupling metric used by the
// OEBI/CBI mode decisions: for each adjacent wire pair the squared
// difference of normalised transition directions (vi - vj)^2, which is 4
// for a toggle (Miller case), 1 for a switch against a quiet line, and 0
// otherwise — proportional to the pair's coupling energy.
func couplingCost(prev, cur uint64, width int) int {
	cost := 0
	for i := 0; i < width-1; i++ {
		vi := dir(prev, cur, i)
		vj := dir(prev, cur, i+1)
		d := vi - vj
		cost += d * d
	}
	return cost
}

// dir returns the normalised transition direction of bit i: +1 rising,
// -1 falling, 0 quiet.
func dir(prev, cur uint64, i int) int {
	p := int((prev >> uint(i)) & 1)
	c := int((cur >> uint(i)) & 1)
	return c - p
}

// selfCost returns the number of switching lines (self-transition count).
func selfCost(prev, cur uint64, width int) int {
	mask := uint64(1)<<uint(width) - 1
	return bits.OnesCount64((prev ^ cur) & mask)
}

// --- Unencoded -----------------------------------------------------------

// Unencoded is the pass-through baseline.
type Unencoded struct{}

// NewUnencoded returns the pass-through baseline encoder.
func NewUnencoded() *Unencoded { return &Unencoded{} }

// Name implements Encoder.
func (*Unencoded) Name() string { return "Unencoded" }

// Width implements Encoder.
func (*Unencoded) Width() int { return DataWidth }

// Encode implements Encoder.
func (*Unencoded) Encode(data uint32) uint64 { return uint64(data) }

// Reset implements Encoder.
func (*Unencoded) Reset() {}

// UnencodedDecoder decodes the pass-through scheme.
type UnencodedDecoder struct{}

// Decode implements Decoder.
func (*UnencodedDecoder) Decode(phys uint64) uint32 { return uint32(phys) }

// Reset implements Decoder.
func (*UnencodedDecoder) Reset() {}

// --- Bus-invert (Stan & Burleson) ---------------------------------------

// BI is classic bus-invert coding: if the Hamming distance between the new
// data and the word on the bus exceeds half the bus width, transmit the
// complement and raise the invert line (wire 32, the MSB position).
type BI struct {
	prev  uint64
	first bool
}

// NewBI returns a bus-invert encoder.
func NewBI() *BI { return &BI{first: true} }

// Name implements Encoder.
func (*BI) Name() string { return "BI" }

// Width implements Encoder.
func (*BI) Width() int { return DataWidth + 1 }

// Encode implements Encoder.
func (b *BI) Encode(data uint32) uint64 {
	if b.first {
		b.first = false
		b.prev = uint64(data)
		return b.prev
	}
	prevData := uint32(b.prev)
	h := bits.OnesCount32(prevData ^ data)
	if h > DataWidth/2 {
		b.prev = uint64(^data) | 1<<DataWidth
	} else {
		b.prev = uint64(data)
	}
	return b.prev
}

// Reset implements Encoder.
func (b *BI) Reset() { b.prev = 0; b.first = true }

// BIDecoder decodes bus-invert words.
type BIDecoder struct{}

// Decode implements Decoder.
func (*BIDecoder) Decode(phys uint64) uint32 {
	data := uint32(phys)
	if phys&(1<<DataWidth) != 0 {
		data = ^data
	}
	return data
}

// Reset implements Decoder.
func (*BIDecoder) Reset() {}

// --- Odd/even bus-invert (Zhang et al.) ----------------------------------

// OEBI is odd/even bus-invert: even and odd bit positions are invertible
// independently, choosing among the four modes (none / even / odd / all
// inverted) the one with the lowest coupling cost on the physical bus. Per
// the paper's setup the odd-invert line is the LSB wire (wire 0) and the
// even-invert line the MSB wire (wire 33); data occupies wires 1..32.
type OEBI struct {
	prev  uint64
	first bool
}

// NewOEBI returns an odd/even bus-invert encoder.
func NewOEBI() *OEBI { return &OEBI{first: true} }

// Name implements Encoder.
func (*OEBI) Name() string { return "OEBI" }

// Width implements Encoder.
func (*OEBI) Width() int { return DataWidth + 2 }

const (
	oebiEvenMask = uint32(0x55555555) // data bits 0,2,4,... (even positions)
	oebiOddMask  = uint32(0xAAAAAAAA)
)

// assemble builds the physical word from data and the two invert flags.
func (o *OEBI) assemble(data uint32, invOdd, invEven bool) uint64 {
	d := data
	if invOdd {
		d ^= oebiOddMask
	}
	if invEven {
		d ^= oebiEvenMask
	}
	phys := uint64(d) << 1 // data on wires 1..32
	if invOdd {
		phys |= 1 // odd-invert line: LSB wire
	}
	if invEven {
		phys |= 1 << (DataWidth + 1) // even-invert line: MSB wire
	}
	return phys
}

// Encode implements Encoder.
func (o *OEBI) Encode(data uint32) uint64 {
	if o.first {
		o.first = false
		o.prev = o.assemble(data, false, false)
		return o.prev
	}
	best := o.assemble(data, false, false)
	bestCost := couplingCost(o.prev, best, o.Width())
	for _, mode := range [3][2]bool{{false, true}, {true, false}, {true, true}} {
		cand := o.assemble(data, mode[0], mode[1])
		if c := couplingCost(o.prev, cand, o.Width()); c < bestCost {
			best, bestCost = cand, c
		}
	}
	o.prev = best
	return best
}

// Reset implements Encoder.
func (o *OEBI) Reset() { o.prev = 0; o.first = true }

// OEBIDecoder decodes odd/even bus-invert words.
type OEBIDecoder struct{}

// Decode implements Decoder.
func (*OEBIDecoder) Decode(phys uint64) uint32 {
	data := uint32(phys >> 1)
	if phys&1 != 0 {
		data ^= oebiOddMask
	}
	if phys&(1<<(DataWidth+1)) != 0 {
		data ^= oebiEvenMask
	}
	return data
}

// Reset implements Decoder.
func (*OEBIDecoder) Reset() {}

// --- Coupling-driven bus-invert (Kim et al.) ------------------------------

// CBI is coupling-driven bus-invert: transmit the data or its complement,
// whichever has the lower coupling cost against the word on the bus
// (including the invert line itself, placed at the MSB like BI).
type CBI struct {
	prev  uint64
	first bool
}

// NewCBI returns a coupling-driven bus-invert encoder.
func NewCBI() *CBI { return &CBI{first: true} }

// Name implements Encoder.
func (*CBI) Name() string { return "CBI" }

// Width implements Encoder.
func (*CBI) Width() int { return DataWidth + 1 }

// Encode implements Encoder.
func (c *CBI) Encode(data uint32) uint64 {
	if c.first {
		c.first = false
		c.prev = uint64(data)
		return c.prev
	}
	plain := uint64(data)
	inverted := uint64(^data) | 1<<DataWidth
	if couplingCost(c.prev, inverted, c.Width()) < couplingCost(c.prev, plain, c.Width()) {
		c.prev = inverted
	} else {
		c.prev = plain
	}
	return c.prev
}

// Reset implements Encoder.
func (c *CBI) Reset() { c.prev = 0; c.first = true }

// CBIDecoder decodes coupling-driven bus-invert words (same layout as BI).
type CBIDecoder = BIDecoder

// --- Gray (extension) -----------------------------------------------------

// Gray transmits the Gray code of the address, an extension scheme for
// sequential address streams (single-bit transitions between consecutive
// addresses).
type Gray struct{}

// NewGray returns a Gray-code encoder.
func NewGray() *Gray { return &Gray{} }

// Name implements Encoder.
func (*Gray) Name() string { return "Gray" }

// Width implements Encoder.
func (*Gray) Width() int { return DataWidth }

// Encode implements Encoder.
func (*Gray) Encode(data uint32) uint64 { return uint64(data ^ (data >> 1)) }

// Reset implements Encoder.
func (*Gray) Reset() {}

// GrayDecoder decodes Gray-coded words.
type GrayDecoder struct{}

// Decode implements Decoder.
func (*GrayDecoder) Decode(phys uint64) uint32 {
	g := uint32(phys)
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}

// Reset implements Decoder.
func (*GrayDecoder) Reset() {}

// --- T0 (extension) --------------------------------------------------------

// T0 freezes the bus when the address follows the expected sequential
// stride and raises an INC line instead (wire 32); otherwise the raw
// address is transmitted with INC low. Stride is the instruction size.
type T0 struct {
	Stride uint32
	prev   uint64
	last   uint32
	first  bool
}

// NewT0 returns a T0 encoder with the given sequential stride (e.g. 4 for
// word-addressed instruction fetch).
func NewT0(stride uint32) *T0 {
	if stride == 0 {
		stride = 4
	}
	return &T0{Stride: stride, first: true}
}

// Name implements Encoder.
func (*T0) Name() string { return "T0" }

// Width implements Encoder.
func (*T0) Width() int { return DataWidth + 1 }

// Encode implements Encoder.
func (t *T0) Encode(data uint32) uint64 {
	if t.first {
		t.first = false
		t.last = data
		t.prev = uint64(data)
		return t.prev
	}
	if data == t.last+t.Stride {
		// Freeze data lines, raise INC.
		t.prev = (t.prev & (1<<DataWidth - 1)) | 1<<DataWidth
	} else {
		t.prev = uint64(data)
	}
	t.last = data
	return t.prev
}

// Reset implements Encoder.
func (t *T0) Reset() { t.prev, t.last, t.first = 0, 0, true }

// T0Decoder decodes T0 words.
type T0Decoder struct {
	Stride uint32
	last   uint32
	first  bool
}

// NewT0Decoder returns a decoder matching NewT0(stride).
func NewT0Decoder(stride uint32) *T0Decoder {
	if stride == 0 {
		stride = 4
	}
	return &T0Decoder{Stride: stride, first: true}
}

// Decode implements Decoder.
func (d *T0Decoder) Decode(phys uint64) uint32 {
	if d.first {
		d.first = false
		d.last = uint32(phys)
		return d.last
	}
	if phys&(1<<DataWidth) != 0 {
		d.last += d.Stride
	} else {
		d.last = uint32(phys)
	}
	return d.last
}

// Reset implements Decoder.
func (d *T0Decoder) Reset() { d.last, d.first = 0, true }

// --- Registry ---------------------------------------------------------------

// ErrUnknownScheme is wrapped by the errors New and NewDecoder return for
// unrecognised scheme names; test with errors.Is.
var ErrUnknownScheme = errors.New("encoding: unknown scheme")

// New returns a fresh encoder by name. Recognised names: "Unencoded", "BI",
// "OEBI", "CBI", "Gray", "T0", "CoolSpread", "CoolCap".
func New(name string) (Encoder, error) {
	switch name {
	case "Unencoded", "unencoded", "none":
		return NewUnencoded(), nil
	case "BI", "bi":
		return NewBI(), nil
	case "OEBI", "oebi":
		return NewOEBI(), nil
	case "CBI", "cbi":
		return NewCBI(), nil
	case "Gray", "gray":
		return NewGray(), nil
	case "T0", "t0":
		return NewT0(4), nil
	case "CoolSpread", "coolspread":
		return NewCoolSpread(), nil
	case "CoolCap", "coolcap":
		return NewCoolCap(), nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownScheme, name)
	}
}

// NewDecoder returns the decoder matching the named scheme.
func NewDecoder(name string) (Decoder, error) {
	switch name {
	case "Unencoded", "unencoded", "none":
		return &UnencodedDecoder{}, nil
	case "BI", "bi":
		return &BIDecoder{}, nil
	case "OEBI", "oebi":
		return &OEBIDecoder{}, nil
	case "CBI", "cbi":
		return &CBIDecoder{}, nil
	case "Gray", "gray":
		return &GrayDecoder{}, nil
	case "T0", "t0":
		return NewT0Decoder(4), nil
	case "CoolSpread", "coolspread":
		return NewCoolSpreadDecoder(), nil
	case "CoolCap", "coolcap":
		return &CoolCapDecoder{}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownScheme, name)
	}
}

// PaperSchemes lists the schemes evaluated in the paper's Fig. 3, in its
// presentation order.
func PaperSchemes() []string { return []string{"BI", "OEBI", "CBI", "Unencoded"} }

// AllSchemes lists every implemented scheme including extensions.
func AllSchemes() []string {
	return []string{"Unencoded", "BI", "OEBI", "CBI", "Gray", "T0", "CoolSpread", "CoolCap"}
}

package encoding

// State is the serializable snapshot of a stateful encoder: the word it
// holds on the physical bus plus the scheme-specific history its next
// Encode decision depends on. The fields are a superset across schemes —
// BI/OEBI/CBI use Prev/First only, T0 additionally uses Last.
type State struct {
	// Prev is the physical word currently driven on the bus.
	Prev uint64
	// Last is scheme-private history (T0: the last data word seen;
	// CoolSpread: the transmitted-word counter driving the rotation).
	Last uint32
	// First marks that no word has been transmitted yet.
	First bool
}

// Stateful is implemented by encoders whose Encode decisions depend on
// bus history. Checkpointing captures State and replays it with SetState
// so a restored encoder continues the stream bit-identically. Stateless
// schemes (Unencoded, Gray) deliberately do not implement it.
type Stateful interface {
	Encoder
	// State returns the encoder's current serializable state.
	State() State
	// SetState overwrites the encoder's state (checkpoint restore).
	SetState(State)
}

// State implements Stateful.
func (b *BI) State() State { return State{Prev: b.prev, First: b.first} }

// SetState implements Stateful.
func (b *BI) SetState(st State) { b.prev, b.first = st.Prev, st.First }

// State implements Stateful.
func (o *OEBI) State() State { return State{Prev: o.prev, First: o.first} }

// SetState implements Stateful.
func (o *OEBI) SetState(st State) { o.prev, o.first = st.Prev, st.First }

// State implements Stateful.
func (c *CBI) State() State { return State{Prev: c.prev, First: c.first} }

// SetState implements Stateful.
func (c *CBI) SetState(st State) { c.prev, c.first = st.Prev, st.First }

// State implements Stateful.
func (t *T0) State() State { return State{Prev: t.prev, Last: t.last, First: t.first} }

// SetState implements Stateful.
func (t *T0) SetState(st State) { t.prev, t.last, t.first = st.Prev, st.Last, st.First }

package itrs

import (
	"math"
	"testing"

	"nanobus/internal/units"
)

func TestTable1Values(t *testing.T) {
	// Spot checks straight from the paper's Table 1.
	if N130.MetalLayers != 8 || N90.MetalLayers != 9 || N65.MetalLayers != 10 || N45.MetalLayers != 10 {
		t.Error("metal layer counts wrong")
	}
	if N130.WireWidth != 335e-9 {
		t.Errorf("130nm width = %g", N130.WireWidth)
	}
	if N45.CLine != 19.05e-12 {
		t.Errorf("45nm cline = %g", N45.CLine)
	}
	if N90.ClockHz != 3.99e9 {
		t.Errorf("90nm clock = %g", N90.ClockHz)
	}
	if N65.Vdd != 0.7 {
		t.Errorf("65nm vdd = %g", N65.Vdd)
	}
}

func TestAllNodesValid(t *testing.T) {
	for _, n := range Nodes() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	good := N130
	cases := []func(*Node){
		func(n *Node) { n.Name = "" },
		func(n *Node) { n.MetalLayers = 0 },
		func(n *Node) { n.WireWidth = 0 },
		func(n *Node) { n.EpsRel = 0.5 },
		func(n *Node) { n.KILD = 0 },
		func(n *Node) { n.ClockHz = 0 },
		func(n *Node) { n.CLine = 0 },
	}
	for i, mutate := range cases {
		n := good
		mutate(&n)
		if err := n.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	n := N130
	if n.Spacing() != n.WireWidth {
		t.Error("spacing != width (ITRS assumption)")
	}
	if n.Pitch() != 2*n.WireWidth {
		t.Error("pitch != 2*width")
	}
	want := n.CLine + 2*n.CInter
	if n.CTotal() != want {
		t.Errorf("CTotal = %g, want %g", n.CTotal(), want)
	}
	if math.Abs(n.AspectRatio()-2) > 1e-9 {
		t.Errorf("aspect ratio = %g, want 2", n.AspectRatio())
	}
	if math.Abs(n.CyclePeriod()*n.ClockHz-1) > 1e-12 {
		t.Error("cycle period inconsistent")
	}
}

func TestRWireSelfConsistency(t *testing.T) {
	// Table 1's rwire must equal rho*l/(w*t) with the effective copper
	// resistivity — validates both the table transcription and the
	// resistivity constant.
	for _, n := range Nodes() {
		got := n.ResistancePerMeter()
		rel := math.Abs(got-n.RWire) / n.RWire
		if rel > 0.01 {
			t.Errorf("%s: recomputed rwire %.4g vs table %.4g (%.2f%% apart)",
				n.Name, got, n.RWire, 100*rel)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		n, ok := ByName(name)
		if !ok || n.Name != name {
			t.Errorf("ByName(%s) failed", name)
		}
	}
	if _, ok := ByName("22nm"); ok {
		t.Error("unknown node resolved")
	}
	if len(Names()) != 4 {
		t.Error("want 4 names")
	}
}

func TestScalingTrends(t *testing.T) {
	ns := Nodes()
	for i := 1; i < len(ns); i++ {
		prev, cur := ns[i-1], ns[i]
		if cur.WireWidth >= prev.WireWidth {
			t.Errorf("width did not shrink %s -> %s", prev.Name, cur.Name)
		}
		if cur.ClockHz <= prev.ClockHz {
			t.Errorf("clock did not rise %s -> %s", prev.Name, cur.Name)
		}
		if cur.Vdd >= prev.Vdd {
			t.Errorf("vdd did not fall %s -> %s", prev.Name, cur.Name)
		}
		if cur.KILD >= prev.KILD {
			t.Errorf("dielectric conductivity did not fall %s -> %s", prev.Name, cur.Name)
		}
		if cur.RWire <= prev.RWire {
			t.Errorf("wire resistance did not rise %s -> %s", prev.Name, cur.Name)
		}
	}
}

func TestLayerStack(t *testing.T) {
	for _, n := range Nodes() {
		stack := n.LayerStack()
		if len(stack) != n.MetalLayers {
			t.Fatalf("%s: %d layers, want %d", n.Name, len(stack), n.MetalLayers)
		}
		top := stack[len(stack)-1]
		if math.Abs(top.Thickness-n.WireThickness) > 1e-15 {
			t.Errorf("%s: top thickness %g != %g", n.Name, top.Thickness, n.WireThickness)
		}
		if math.Abs(top.ILDBelow-n.ILDHeight) > 1e-15 {
			t.Errorf("%s: top ILD %g != %g", n.Name, top.ILDBelow, n.ILDHeight)
		}
		m1 := stack[0]
		if m1.Width != float64(n.FeatureNm)*units.Nano {
			t.Errorf("%s: M1 width %g", n.Name, m1.Width)
		}
		// Monotone growth bottom to top.
		for i := 1; i < len(stack); i++ {
			if stack[i].Thickness < stack[i-1].Thickness-1e-15 {
				t.Errorf("%s: thickness not monotone at layer %d", n.Name, i+1)
			}
			if stack[i].Index != i+1 {
				t.Errorf("%s: layer index %d at position %d", n.Name, stack[i].Index, i)
			}
			if stack[i].Coverage != DefaultCoverage {
				t.Errorf("%s: coverage %g", n.Name, stack[i].Coverage)
			}
		}
	}
}

func TestSortedByFeature(t *testing.T) {
	sorted := SortedByFeature([]Node{N45, N130, N90})
	if sorted[0].Name != "130nm" || sorted[2].Name != "45nm" {
		t.Errorf("sort order: %s %s %s", sorted[0].Name, sorted[1].Name, sorted[2].Name)
	}
}

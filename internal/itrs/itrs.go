// Package itrs provides the ITRS-2001 technology parameters used throughout
// the bus energy and thermal models. The values reproduce Table 1 of
// Sundaresan & Mahapatra (HPCA 2005) for the topmost-layer (global)
// interconnect of the 130, 90, 65 and 45 nm nodes, together with derived
// quantities (wire resistance, repeater parameters) and a synthesized
// metal-layer stack used by the inter-layer heating model (Eq. 7).
package itrs

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nanobus/internal/units"
)

// Node describes one technology node's global-interconnect parameters.
// All geometric values are in meters, electrical values in SI units, and
// per-unit-length values are per meter of wire, exactly as in Table 1 of
// the paper (converted from nm, pF/m, kohm/m).
type Node struct {
	// Name is the conventional node label, e.g. "130nm".
	Name string
	// FeatureNm is the node's feature size in nanometers (130, 90, 65, 45).
	FeatureNm int

	// MetalLayers is the total number of metal layers.
	MetalLayers int
	// WireWidth is the global wire width w in meters. Per ITRS the wire
	// spacing equals the width (Table 1 note), so Spacing() == WireWidth.
	WireWidth float64
	// WireThickness is the global wire thickness t in meters.
	WireThickness float64
	// ILDHeight is the inter-layer dielectric height t_ild in meters.
	ILDHeight float64
	// EpsRel is the relative permittivity of the dielectric.
	EpsRel float64
	// KILD is the thermal conductivity of the dielectric in W/(m*K).
	// The paper uses a single dielectric conductivity for both the
	// inter-layer (ILD) and inter-metal (IMD) dielectric.
	KILD float64
	// ClockHz is the on-chip clock frequency in Hz.
	ClockHz float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// JMax is the maximum wire current density in A/m^2.
	JMax float64
	// CLine is the wire self (ground) capacitance in F/m.
	CLine float64
	// CInter is the adjacent-wire coupling capacitance in F/m.
	CInter float64
	// RWire is the wire resistance in ohm/m.
	RWire float64
}

// Spacing returns the inter-wire spacing s in meters. Per the ITRS layout
// assumption used by the paper, spacing equals wire width.
func (n Node) Spacing() float64 { return n.WireWidth }

// Pitch returns the wire pitch (width + spacing) in meters.
func (n Node) Pitch() float64 { return n.WireWidth + n.Spacing() }

// CTotal returns the total wire capacitance Cint = cline + 2*cinter in F/m
// (Sec. 3.1.1 of the paper), the load seen by repeater sizing.
func (n Node) CTotal() float64 { return n.CLine + 2*n.CInter }

// AspectRatio returns thickness/width of the global wire.
func (n Node) AspectRatio() float64 { return n.WireThickness / n.WireWidth }

// CyclePeriod returns the clock period in seconds.
func (n Node) CyclePeriod() float64 { return 1 / n.ClockHz }

// ResistancePerMeter recomputes rho*1/(w*t) and should agree with RWire;
// it is used by tests to validate the table's self-consistency.
func (n Node) ResistancePerMeter() float64 {
	return units.RhoCopper / (n.WireWidth * n.WireThickness)
}

// Validate checks that the node's parameters are physically sensible.
func (n Node) Validate() error {
	switch {
	case n.Name == "":
		return fmt.Errorf("itrs: node has empty name")
	case n.MetalLayers <= 0:
		return fmt.Errorf("itrs: %s: metal layers %d <= 0", n.Name, n.MetalLayers)
	case n.WireWidth <= 0 || n.WireThickness <= 0 || n.ILDHeight <= 0:
		return fmt.Errorf("itrs: %s: non-positive geometry", n.Name)
	case n.EpsRel < 1:
		return fmt.Errorf("itrs: %s: relative permittivity %.3g < 1", n.Name, n.EpsRel)
	case n.KILD <= 0:
		return fmt.Errorf("itrs: %s: non-positive dielectric conductivity", n.Name)
	case n.ClockHz <= 0 || n.Vdd <= 0 || n.JMax <= 0:
		return fmt.Errorf("itrs: %s: non-positive electrical parameter", n.Name)
	case n.CLine <= 0 || n.CInter <= 0 || n.RWire <= 0:
		return fmt.Errorf("itrs: %s: non-positive RC parameter", n.Name)
	}
	return nil
}

// Table 1 of the paper, in SI units.
var (
	// N130 is the 130 nm node.
	N130 = Node{
		Name: "130nm", FeatureNm: 130,
		MetalLayers:   8,
		WireWidth:     335 * units.Nano,
		WireThickness: 670 * units.Nano,
		ILDHeight:     724 * units.Nano,
		EpsRel:        3.3,
		KILD:          0.6,
		ClockHz:       1.68 * units.Giga,
		Vdd:           1.1,
		JMax:          0.96e10, // 0.96 MA/cm^2
		CLine:         44.06 * units.Pico,
		CInter:        91.72 * units.Pico,
		RWire:         98.02 * units.Kilo,
	}
	// N90 is the 90 nm node.
	N90 = Node{
		Name: "90nm", FeatureNm: 90,
		MetalLayers:   9,
		WireWidth:     230 * units.Nano,
		WireThickness: 482 * units.Nano,
		ILDHeight:     498 * units.Nano,
		EpsRel:        2.8,
		KILD:          0.19,
		ClockHz:       3.99 * units.Giga,
		Vdd:           1.0,
		JMax:          1.5e10,
		CLine:         32.77 * units.Pico,
		CInter:        76.84 * units.Pico,
		RWire:         198.45 * units.Kilo,
	}
	// N65 is the 65 nm node.
	N65 = Node{
		Name: "65nm", FeatureNm: 65,
		MetalLayers:   10,
		WireWidth:     145 * units.Nano,
		WireThickness: 319 * units.Nano,
		ILDHeight:     329 * units.Nano,
		EpsRel:        2.5,
		KILD:          0.12,
		ClockHz:       6.73 * units.Giga,
		Vdd:           0.7,
		JMax:          2.1e10,
		CLine:         25.07 * units.Pico,
		CInter:        68.42 * units.Pico,
		RWire:         475.62 * units.Kilo,
	}
	// N45 is the 45 nm node.
	N45 = Node{
		Name: "45nm", FeatureNm: 45,
		MetalLayers:   10,
		WireWidth:     103 * units.Nano,
		WireThickness: 236 * units.Nano,
		ILDHeight:     243 * units.Nano,
		EpsRel:        2.1,
		KILD:          0.07,
		ClockHz:       11.51 * units.Giga,
		Vdd:           0.6,
		JMax:          2.7e10,
		CLine:         19.05 * units.Pico,
		CInter:        58.12 * units.Pico,
		RWire:         905.05 * units.Kilo,
	}
)

// Nodes returns the paper's four technology nodes ordered from the oldest
// (130 nm) to the newest (45 nm).
func Nodes() []Node { return []Node{N130, N90, N65, N45} }

// ByName returns the node with the given label ("130nm", "90nm", "65nm",
// "45nm"); the second result reports whether it was found.
func ByName(name string) (Node, bool) {
	for _, n := range Nodes() {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// ErrUnknownNode is wrapped by the error Resolve returns for unrecognised
// node labels; test with errors.Is.
var ErrUnknownNode = errors.New("itrs: unknown node")

// Resolve is ByName with a typed error: it returns the node with the given
// label, or an error wrapping ErrUnknownNode listing the valid labels.
func Resolve(name string) (Node, error) {
	if n, ok := ByName(name); ok {
		return n, nil
	}
	return Node{}, fmt.Errorf("%w %q (have %v)", ErrUnknownNode, name, Names())
}

// Names returns the available node labels, oldest first.
func Names() []string {
	ns := Nodes()
	names := make([]string, len(ns))
	for i, n := range ns {
		names[i] = n.Name
	}
	return names
}

// MetalLayer describes one layer of the synthesized metal stack used by the
// inter-layer heating correction (Eq. 7). Lower layers are thinner and more
// finely pitched than the global layer.
type MetalLayer struct {
	// Index is 1 for the lowest metal layer (M1).
	Index int
	// Thickness is the wire thickness t_j in meters.
	Thickness float64
	// Width is the wire width in meters.
	Width float64
	// Spacing is the inter-wire spacing in meters.
	Spacing float64
	// ILDBelow is the thickness of the inter-layer dielectric directly
	// below this layer in meters.
	ILDBelow float64
	// Coverage is the metal coverage factor alpha_j (dimensionless); the
	// paper assumes 0.5 everywhere.
	Coverage float64
}

// DefaultCoverage is the paper's coverage factor alpha = 0.5 (Sec. 4.1.2).
const DefaultCoverage = 0.5

// LayerStack synthesizes a plausible per-layer metal stack for the node.
// ITRS-2001 (and the paper's Table 1) give only topmost-layer geometry, so
// the lower layers are generated by geometric interpolation: M1 has
// feature-sized half-pitch and aspect ratio ~1.6, and each dimension grows
// geometrically up to the global layer's Table 1 values. This is the
// modeling substitution documented in DESIGN.md; the inter-layer heating
// correction depends only on per-layer t_j, alpha_j and ILD thicknesses, so
// a smooth interpolated stack reproduces the correction's magnitude.
func (n Node) LayerStack() []MetalLayer {
	nl := n.MetalLayers
	stack := make([]MetalLayer, nl)
	// Layer 1 geometry from the feature size.
	w1 := float64(n.FeatureNm) * units.Nano
	t1 := 1.6 * w1
	ild1 := 1.0 * w1
	for i := 0; i < nl; i++ {
		// Geometric interpolation factor from M1 (f=0) to Mtop (f=1).
		f := 0.0
		if nl > 1 {
			f = float64(i) / float64(nl-1)
		}
		stack[i] = MetalLayer{
			Index:     i + 1,
			Thickness: geomInterp(t1, n.WireThickness, f),
			Width:     geomInterp(w1, n.WireWidth, f),
			Spacing:   geomInterp(w1, n.Spacing(), f),
			ILDBelow:  geomInterp(ild1, n.ILDHeight, f),
			Coverage:  DefaultCoverage,
		}
	}
	return stack
}

// geomInterp interpolates geometrically between a (f=0) and b (f=1).
func geomInterp(a, b, f float64) float64 {
	if a <= 0 || b <= 0 {
		return a + (b-a)*f
	}
	return a * math.Pow(b/a, f)
}

// SortedByFeature returns the nodes sorted by descending feature size
// (oldest technology first); useful for stable table output.
func SortedByFeature(nodes []Node) []Node {
	out := make([]Node, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i].FeatureNm > out[j].FeatureNm })
	return out
}

package energy

import "fmt"

// AccumulatorState is the serializable snapshot of an Accumulator: the bus
// word it holds, the first-word flag, cycle counters, and the per-line and
// bus-wide energies accumulated in the current window. The transition memo
// is deliberately excluded — its contents are a pure function of the model,
// so a restored accumulator simply re-warms (bit-identically) as it runs.
type AccumulatorState struct {
	// Prev is the word currently held on the bus (width-masked).
	Prev uint64
	// First marks that no word has been transmitted yet.
	First bool
	// Cycles and IdleCycles are the window's cycle counters.
	Cycles, IdleCycles uint64
	// Total is the accumulated bus-wide energy of the window.
	Total LineEnergy
	// Lines is the accumulated per-line energy of the window (length N).
	Lines []LineEnergy
}

// State returns a deep copy of the accumulator's serializable state.
func (a *Accumulator) State() AccumulatorState {
	lines := make([]LineEnergy, len(a.lines))
	copy(lines, a.lines)
	return AccumulatorState{
		Prev:       a.prev,
		First:      a.first,
		Cycles:     a.cycles,
		IdleCycles: a.idleCycles,
		Total:      a.total,
		Lines:      lines,
	}
}

// SetState overwrites the accumulator's state from a snapshot taken by
// State on an accumulator over the same model. The memo (and its hit/miss
// counters) are kept as-is: cached transition energies depend only on the
// model, so a warm memo replays restored traffic bit-identically.
func (a *Accumulator) SetState(st AccumulatorState) error {
	if len(st.Lines) != len(a.lines) {
		return fmt.Errorf("energy: state has %d lines, accumulator has %d", len(st.Lines), len(a.lines))
	}
	a.prev = st.Prev & mask(a.model.n)
	a.first = st.First
	a.cycles = st.Cycles
	a.idleCycles = st.IdleCycles
	a.total = st.Total
	copy(a.lines, st.Lines)
	return nil
}

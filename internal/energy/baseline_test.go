package energy

import (
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/capmodel"
	"nanobus/internal/itrs"
)

// TestPerLineSumsToWholeBusBaseline is the paper's consistency claim: its
// per-line attribution must sum to exactly the whole-bus energy of the
// Sotiriadis-style baseline for every transition.
func TestPerLineSumsToWholeBusBaseline(t *testing.T) {
	m := testModel(t, 24, itrs.N90)
	rng := rand.New(rand.NewSource(77))
	out := make([]LineEnergy, 24)
	for trial := 0; trial < 1000; trial++ {
		prev := rng.Uint64()
		cur := rng.Uint64()
		perLine, err := m.Transition(prev, cur, out)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := m.WholeBusTransition(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(perLine.Total(), whole, 1e-10) {
			t.Fatalf("trial %d: per-line sum %g != whole-bus %g", trial, perLine.Total(), whole)
		}
	}
}

func TestWholeBusNilModel(t *testing.T) {
	var m *Model
	if _, err := m.WholeBusTransition(0, 1); err == nil {
		t.Error("nil model accepted")
	}
}

func TestActivityEnergyBaseline(t *testing.T) {
	caps, err := capmodel.FromNode(itrs.N130, 8, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Caps: caps, Length: 0.01, Vdd: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	// alpha=1, 1 cycle: every wire's full self energy.
	e, err := m.ActivityEnergy(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 0.5 * itrs.N130.CLine * 0.01 * 1.1 * 1.1
	if math.Abs(e-want) > 1e-12*want {
		t.Errorf("activity energy = %g, want %g", e, want)
	}
	// Linear in alpha and cycles.
	e2, err := m.ActivityEnergy(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(e2, 5*e, 1e-12) {
		t.Errorf("scaling wrong: %g vs %g", e2, 5*e)
	}
	if _, err := m.ActivityEnergy(-0.1, 1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := m.ActivityEnergy(1.1, 1); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

// TestActivityBaselineMissesCoupling shows why the paper rejects
// activity-only models: on toggle-heavy traffic the baseline (even with a
// perfectly measured alpha) undercounts energy because coupling dominates.
func TestActivityBaselineMissesCoupling(t *testing.T) {
	m := testModel(t, 16, itrs.N130)
	acc := NewAccumulator(m)
	cycles := uint64(200)
	transitions := 0
	prev := uint64(0x5555)
	acc.Step(prev)
	for i := uint64(1); i < cycles; i++ {
		cur := prev ^ 0xFFFF // full toggle, alternating pattern
		acc.Step(cur)
		transitions += 16
		prev = cur
	}
	alpha := float64(transitions) / float64(16*(cycles-1))
	baseline, err := m.ActivityEnergy(alpha, cycles-1)
	if err != nil {
		t.Fatal(err)
	}
	actual := acc.Total().Total()
	if actual <= baseline {
		t.Errorf("coupling-aware energy %g <= activity baseline %g on toggle traffic", actual, baseline)
	}
	if actual < 1.5*baseline {
		t.Errorf("coupling should dominate: actual %g vs baseline %g", actual, baseline)
	}
}

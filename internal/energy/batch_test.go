package energy

import (
	"testing"

	"nanobus/internal/capmodel"
	"nanobus/internal/itrs"
)

func batchTestModel(t *testing.T) *Model {
	t.Helper()
	caps, err := capmodel.FromNode(itrs.N130, 32, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Caps: caps, Length: 0.01, Vdd: itrs.N130.Vdd, Crep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// batchTestWords is an address-like stream with jumps, holds and repeats.
func batchTestWords(n int) []uint64 {
	words := make([]uint64, n)
	w, rng := uint64(0x4000_1000), uint32(99)
	for i := range words {
		rng = rng*1664525 + 1013904223
		switch rng % 8 {
		case 0:
			w = uint64(rng)
		case 1: // hold
		default:
			w += 4
		}
		words[i] = w
	}
	return words
}

// TestStepBatchMatchesStep requires StepBatch to be bit-identical to the
// per-word loop, with and without the memo, across batch split points.
func TestStepBatchMatchesStep(t *testing.T) {
	m := batchTestModel(t)
	words := batchTestWords(4096)
	for _, memo := range []bool{false, true} {
		ref := NewAccumulator(m)
		got := NewAccumulator(m)
		if memo {
			if err := ref.EnableMemo(4); err != nil {
				t.Fatal(err)
			}
			if err := got.EnableMemo(4); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range words {
			ref.Step(w)
		}
		// Uneven split points exercise the first-word and mid-stream paths.
		got.StepBatch(words[:1])
		got.StepBatch(words[1:7])
		got.StepBatch(words[7:7]) // empty batch is a no-op
		got.StepBatch(words[7:1033])
		got.StepBatch(words[1033:])
		if ref.Cycles() != got.Cycles() {
			t.Fatalf("memo=%v: cycles %d != %d", memo, ref.Cycles(), got.Cycles())
		}
		if ref.Total() != got.Total() {
			t.Fatalf("memo=%v: total %+v != %+v", memo, ref.Total(), got.Total())
		}
		if ref.Last() != got.Last() {
			t.Fatalf("memo=%v: last %x != %x", memo, ref.Last(), got.Last())
		}
		for i := 0; i < m.N(); i++ {
			if ref.Line(i) != got.Line(i) {
				t.Fatalf("memo=%v: line %d: %+v != %+v", memo, i, ref.Line(i), got.Line(i))
			}
		}
	}
}

// TestIdleNMatchesIdle checks the bulk idle counters.
func TestIdleNMatchesIdle(t *testing.T) {
	m := batchTestModel(t)
	ref, got := NewAccumulator(m), NewAccumulator(m)
	for i := 0; i < 137; i++ {
		ref.Idle()
	}
	got.IdleN(100)
	got.IdleN(0)
	got.IdleN(37)
	if ref.Cycles() != got.Cycles() || ref.IdleCycles() != got.IdleCycles() {
		t.Fatalf("cycles %d/%d != %d/%d", ref.Cycles(), ref.IdleCycles(), got.Cycles(), got.IdleCycles())
	}
}

// TestStepAllocs is the alloc regression gate for the per-word hot path:
// steady-state Step must not allocate, memoized or direct. (The memo's
// miss path may allocate entry storage while warming; the gate measures
// the warmed state.)
func TestStepAllocs(t *testing.T) {
	m := batchTestModel(t)
	words := batchTestWords(1 << 10)
	for _, memo := range []bool{false, true} {
		acc := NewAccumulator(m)
		if memo {
			if err := acc.EnableMemo(0); err != nil {
				t.Fatal(err)
			}
		}
		acc.StepBatch(words) // warm the memo
		i := 0
		allocs := testing.AllocsPerRun(1000, func() {
			acc.Step(words[i&(len(words)-1)])
			i++
		})
		if allocs != 0 {
			t.Errorf("memo=%v: Step allocates %v/op in steady state, want 0", memo, allocs)
		}
	}
}

// TestStepBatchAllocs is the alloc regression gate for the batch path:
// steady-state StepBatch and IdleN must not allocate at all.
func TestStepBatchAllocs(t *testing.T) {
	m := batchTestModel(t)
	words := batchTestWords(1 << 10)
	for _, memo := range []bool{false, true} {
		acc := NewAccumulator(m)
		if memo {
			if err := acc.EnableMemo(0); err != nil {
				t.Fatal(err)
			}
		}
		acc.StepBatch(words) // warm the memo
		allocs := testing.AllocsPerRun(100, func() {
			acc.StepBatch(words)
			acc.IdleN(64)
		})
		if allocs != 0 {
			t.Errorf("memo=%v: StepBatch allocates %v/op in steady state, want 0", memo, allocs)
		}
	}
}

// Batch stepping. The per-cycle cost of Accumulator.Step on an address
// stream is dominated not by the transition kernel (the memo reduces it to
// a sparse accumulate) but by the per-word call overhead around it: one
// exported-function call per cycle, a memo-pointer load, a width-mask
// recompute, and the prev-word store. StepBatch hoists all of that out of
// the loop and processes a whole word slice per call — the same operations
// in the same order as per-word Step, so results are bit-identical — and
// IdleN collapses runs of idle cycles into two counter additions.
package energy

import "math/bits"

// StepBatch transmits every word in words, one per cycle, exactly like
// calling Step(word) for each: same state updates, same accumulation
// order, bit-identical energies. It allocates nothing.
//
//nanolint:hotpath per-chunk kernel under Simulator.StepBatch; allocates nothing
func (a *Accumulator) StepBatch(words []uint64) {
	a.cycles += uint64(len(words))
	if len(words) == 0 {
		return
	}
	m := mask(a.model.n)
	i := 0
	if a.first {
		a.first = false
		a.prev = words[0] & m
		i = 1
	}
	prev := a.prev
	if a.memo != nil {
		memo := a.memo
		lines := a.lines
		for ; i < len(words); i++ {
			word := words[i] & m
			if word == prev {
				continue
			}
			diff := prev ^ word
			e := memo.lookup(diff, word&diff)
			k := 0
			for d := diff; d != 0; d &= d - 1 {
				lines[bits.TrailingZeros64(d)].add(e.lines[k])
				k++
			}
			a.total.add(e.total)
			prev = word
		}
		a.prev = prev
		return
	}
	for ; i < len(words); i++ {
		word := words[i] & m
		if word == prev {
			continue
		}
		tot := a.model.transition(prev, word, a.step)
		for j := range a.step {
			a.lines[j].add(a.step[j])
		}
		a.total.add(tot)
		prev = word
	}
	a.prev = prev
}

// IdleN advances n cycles with the bus holding its value — equivalent to n
// Idle calls (idle cycles dissipate nothing, so only the counters move).
func (a *Accumulator) IdleN(n uint64) {
	a.cycles += n
	a.idleCycles += n
}

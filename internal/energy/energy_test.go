package energy

import (
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/capmodel"
	"nanobus/internal/itrs"
)

func testModel(t *testing.T, n int, node itrs.Node) *Model {
	t.Helper()
	caps, err := capmodel.FromNode(node, n, capmodel.DefaultDecay(node))
	if err != nil {
		t.Fatalf("capmodel.FromNode: %v", err)
	}
	m, err := New(Config{Caps: caps, Length: 0.01, Vdd: node.Vdd, Crep: 0})
	if err != nil {
		t.Fatalf("energy.New: %v", err)
	}
	return m
}

// bruteForce recomputes per-line energies directly from the paper's
// formulas without any of the incremental-optimisation tricks.
func bruteForce(m *Model, prev, cur uint64) []LineEnergy {
	n := m.N()
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		pb := (prev >> uint(i)) & 1
		cb := (cur >> uint(i)) & 1
		switch {
		case pb == 0 && cb == 1:
			v[i] = m.Vdd()
		case pb == 1 && cb == 0:
			v[i] = -m.Vdd()
		}
	}
	out := make([]LineEnergy, n)
	for i := 0; i < n; i++ {
		if v[i] == 0 {
			continue
		}
		out[i].Self = 0.5 * m.SelfCap(i) * v[i] * v[i]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			e := 0.5 * m.CouplingCap(i, j) * (v[i]*v[i] - v[i]*v[j])
			if j == i-1 || j == i+1 {
				out[i].CoupAdj += e
			} else {
				out[i].CoupNonAdj += e
			}
		}
	}
	return out
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestTransitionMatchesBruteForce(t *testing.T) {
	m := testModel(t, 16, itrs.N130)
	rng := rand.New(rand.NewSource(9))
	out := make([]LineEnergy, 16)
	for trial := 0; trial < 500; trial++ {
		prev := rng.Uint64() & 0xFFFF
		cur := rng.Uint64() & 0xFFFF
		if _, err := m.Transition(prev, cur, out); err != nil {
			t.Fatalf("Transition: %v", err)
		}
		want := bruteForce(m, prev, cur)
		for i := range want {
			if !relClose(out[i].Self, want[i].Self, 1e-12) ||
				!relClose(out[i].CoupAdj, want[i].CoupAdj, 1e-12) ||
				!relClose(out[i].CoupNonAdj, want[i].CoupNonAdj, 1e-12) {
				t.Fatalf("trial %d (%#x->%#x) line %d: got %+v, want %+v",
					trial, prev, cur, i, out[i], want[i])
			}
		}
	}
}

func TestSelfEnergyValue(t *testing.T) {
	// Single rising transition on line 0: Eself = 0.5*(cline*L)*Vdd^2.
	m := testModel(t, 8, itrs.N130)
	out := make([]LineEnergy, 8)
	if _, err := m.Transition(0, 1, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	want := 0.5 * itrs.N130.CLine * 0.01 * itrs.N130.Vdd * itrs.N130.Vdd
	if !relClose(out[0].Self, want, 1e-12) {
		t.Errorf("self energy = %g, want %g", out[0].Self, want)
	}
	// Rising and falling transitions dissipate the same self energy.
	if _, err := m.Transition(1, 0, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if !relClose(out[0].Self, want, 1e-12) {
		t.Errorf("falling self energy = %g, want %g", out[0].Self, want)
	}
}

func TestMillerToggleDoubling(t *testing.T) {
	// Opposite transitions on adjacent lines: each line's adjacent
	// coupling energy is c*Vdd^2 (doubled); same-direction transitions
	// dissipate zero coupling energy in that pair.
	m := testModel(t, 2, itrs.N130)
	out := make([]LineEnergy, 2)
	c := m.CouplingCap(0, 1)
	v2 := itrs.N130.Vdd * itrs.N130.Vdd

	// Toggle: 01 -> 10.
	if _, err := m.Transition(0b01, 0b10, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	for i := 0; i < 2; i++ {
		if !relClose(out[i].CoupAdj, c*v2, 1e-12) {
			t.Errorf("toggle line %d coupling = %g, want %g", i, out[i].CoupAdj, c*v2)
		}
	}

	// Same direction: 00 -> 11.
	if _, err := m.Transition(0b00, 0b11, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	for i := 0; i < 2; i++ {
		if out[i].CoupAdj != 0 {
			t.Errorf("same-direction line %d coupling = %g, want 0", i, out[i].CoupAdj)
		}
	}

	// Charge against quiet: 00 -> 01. Only the switching line dissipates.
	if _, err := m.Transition(0b00, 0b01, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if !relClose(out[0].CoupAdj, 0.5*c*v2, 1e-12) {
		t.Errorf("charge coupling = %g, want %g", out[0].CoupAdj, 0.5*c*v2)
	}
	if out[1].Total() != 0 {
		t.Errorf("quiet line dissipated %g", out[1].Total())
	}
}

func TestEnergyNonNegative(t *testing.T) {
	m := testModel(t, 32, itrs.N90)
	rng := rand.New(rand.NewSource(3))
	out := make([]LineEnergy, 32)
	for trial := 0; trial < 2000; trial++ {
		prev := rng.Uint64()
		cur := rng.Uint64()
		tot, err := m.Transition(prev, cur, out)
		if err != nil {
			t.Fatalf("Transition: %v", err)
		}
		for i, le := range out {
			if le.Self < 0 || le.CoupAdj < -1e-30 || le.CoupNonAdj < -1e-30 {
				t.Fatalf("negative energy on line %d: %+v (%#x -> %#x)", i, le, prev, cur)
			}
		}
		if tot.Total() < 0 {
			t.Fatalf("negative total energy %g", tot.Total())
		}
	}
}

func TestNoTransitionNoEnergy(t *testing.T) {
	m := testModel(t, 32, itrs.N65)
	out := make([]LineEnergy, 32)
	tot, err := m.Transition(0xDEADBEEF, 0xDEADBEEF, out)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if tot.Total() != 0 {
		t.Errorf("identical words dissipated %g", tot.Total())
	}
}

func TestWorstCasePatternOrdering(t *testing.T) {
	// The paper's Sec. 3.3 example: the alternating pattern (every line
	// toggles in opposition) dissipates more total energy than the
	// centre-dip pattern, but the centre-dip pattern concentrates more
	// energy in the middle wire than its neighbours see on average.
	m := testModel(t, 5, itrs.N130)
	out := make([]LineEnergy, 5)

	// All low -> centre-dip impossible; the paper's patterns describe
	// direction per line: up up down up up means prev=00100, cur=11011.
	thermalWorst, err := m.Transition(0b00100, 0b11011, out)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	centre := out[2].Total()
	edge := out[0].Total()
	if centre <= edge {
		t.Errorf("centre line energy %g <= edge %g; expected concentration in centre", centre, edge)
	}

	energyWorst, err := m.Transition(0b01010, 0b10101, out)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	if energyWorst.Total() <= thermalWorst.Total() {
		t.Errorf("alternating pattern total %g <= centre-dip total %g; paper says alternating is the energy worst case",
			energyWorst.Total(), thermalWorst.Total())
	}
}

func TestNonAdjacentUnderestimation(t *testing.T) {
	// Dropping non-adjacent coupling must underestimate the middle wire's
	// energy in the thermal worst-case pattern (Sec. 3.3): the error
	// should be a few percent.
	m := testModel(t, 32, itrs.N130)
	out := make([]LineEnergy, 32)
	// All lines toggle: odd bits fall, even bits rise, except make the
	// middle line oppose its non-adjacent peers.
	prev := uint64(1 << 16)
	cur := ^prev & 0xFFFFFFFF
	if _, err := m.Transition(prev, cur, out); err != nil {
		t.Fatalf("Transition: %v", err)
	}
	mid := out[16]
	frac := mid.CoupNonAdj / mid.Total()
	if frac <= 0.01 || frac >= 0.2 {
		t.Errorf("non-adjacent share of middle wire = %.4f, want a few percent", frac)
	}
}

func TestAccumulator(t *testing.T) {
	m := testModel(t, 8, itrs.N130)
	acc := NewAccumulator(m)
	acc.Step(0x00) // first word: establishes state, no energy
	if acc.Total().Total() != 0 {
		t.Errorf("first word dissipated %g", acc.Total().Total())
	}
	acc.Step(0xFF)
	e1 := acc.Total().Total()
	if e1 <= 0 {
		t.Error("transition dissipated nothing")
	}
	acc.Idle()
	if acc.Total().Total() != e1 {
		t.Error("idle cycle dissipated energy")
	}
	acc.Step(0xFF) // same word: no energy
	if acc.Total().Total() != e1 {
		t.Error("repeated word dissipated energy")
	}
	if acc.Cycles() != 4 || acc.IdleCycles() != 1 {
		t.Errorf("cycles = %d idle = %d, want 4 and 1", acc.Cycles(), acc.IdleCycles())
	}

	// Per-line sum equals total.
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += acc.Line(i).Total()
	}
	if !relClose(sum, acc.Total().Total(), 1e-12) {
		t.Errorf("per-line sum %g != total %g", sum, acc.Total().Total())
	}

	acc.Reset()
	if acc.Total().Total() != 0 || acc.Cycles() != 0 {
		t.Error("Reset did not clear accumulation")
	}
	if acc.Last() != 0xFF {
		t.Error("Reset cleared the held bus word")
	}
}

func TestNewValidation(t *testing.T) {
	caps, err := capmodel.FromNode(itrs.N130, 4, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Caps: nil, Length: 1, Vdd: 1},
		{Caps: caps, Length: 0, Vdd: 1},
		{Caps: caps, Length: 1, Vdd: 0},
		{Caps: caps, Length: 1, Vdd: 1, Crep: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTransitionOutLenMismatch(t *testing.T) {
	m := testModel(t, 8, itrs.N130)
	if _, err := m.Transition(0, 1, make([]LineEnergy, 4)); err == nil {
		t.Error("short out slice accepted")
	}
}

func TestCrepIncreasesSelfEnergy(t *testing.T) {
	caps, err := capmodel.FromNode(itrs.N130, 4, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Config{Caps: caps, Length: 0.01, Vdd: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	repeated, err := New(Config{Caps: caps, Length: 0.01, Vdd: 1.1, Crep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	o1 := make([]LineEnergy, 4)
	o2 := make([]LineEnergy, 4)
	if _, err := plain.Transition(0, 1, o1); err != nil {
		t.Fatal(err)
	}
	if _, err := repeated.Transition(0, 1, o2); err != nil {
		t.Fatal(err)
	}
	wantDelta := 0.5 * 1e-12 * 1.1 * 1.1
	if !relClose(o2[0].Self-o1[0].Self, wantDelta, 1e-12) {
		t.Errorf("Crep self-energy delta = %g, want %g", o2[0].Self-o1[0].Self, wantDelta)
	}
	if o2[0].CoupAdj != o1[0].CoupAdj {
		t.Error("Crep changed coupling energy")
	}
}

// Multi-bus accumulation. A MultiAccumulator carries K buses over one
// shared Model in struct-of-arrays form: one [K]-slab of held words, one
// [K*W]-slab of window line energies, and — the hot-path point — one
// shared transition memo probed once per (word, bus) with the per-line
// scatter deferred. Where the scalar Accumulator expands every memo hit
// into per-line float adds immediately (a loop-carried FP dependency
// chain of ~s*3 adds per cycle), the multi path only increments a uint32
// count for the (memo slot, bus) pair; Drain folds each touched slot
// into the window once per sampling interval as count x entry energies.
// Per-interval and cumulative energies are therefore mathematically
// identical to K scalar accumulators but associate the float additions
// differently — agreement is to rounding (~1e-12 relative), not bit
// exact. Bit-exactness for K == 1 is provided one level up (core.MultiSim
// delegates K == 1 to the scalar pipeline).
package energy

import (
	"fmt"
	"math/bits"
)

// overflowAt forces a per-slot drain just before a uint16 transition
// count would wrap (see MultiAccumulator.StepBus).
const overflowAt = 0xfffe

// addScaled accumulates f repetitions of o into le with one multiply per
// component — the drain kernel that replaces count repetitions of add.
func (le *LineEnergy) addScaled(o LineEnergy, f float64) {
	le.Self += f * o.Self
	le.CoupAdj += f * o.CoupAdj
	le.CoupNonAdj += f * o.CoupNonAdj
}

// MultiAccumulator accumulates transition energies for K buses sharing
// one width-W Model. The buses advance in lockstep (AddCycles/IdleN move
// one shared clock); per-bus words flow through StepBus. It is not safe
// for concurrent use.
type MultiAccumulator struct {
	model *Model
	buses int

	prev  []uint64 // [K] held physical words
	first []bool   // [K] no word transmitted yet

	cycles, idleCycles uint64

	lines []LineEnergy // [K*W] window per-line energies, bus-major
	total []LineEnergy // [K] window bus-wide energies
	step  []LineEnergy // [W] scratch for the direct (no-memo) path

	memo *Memo
	// Aggregation state over the memo table: counts[k*tableSize+slot]
	// pending transitions of bus k through slot (bus-major, so one bus's
	// StepBus pass touches a contiguous tableSize*2-byte window — 32 KiB
	// at the default table size, L1-resident — instead of striding across
	// the whole slab), touched the slots with any pending count (insertion
	// order, for a deterministic drain), marked the membership bitmap
	// behind touched. uint16 counts halve the slab; a counter about to
	// overflow forces an early drain of its slot (see StepBus), so counts
	// are exact at any interval length.
	counts  []uint16
	touched []int32
	marked  []bool
	onEvict func(int)
}

// NewMultiAccumulator builds a K-bus accumulator over the model, without
// memoization (every transition runs the direct kernel). Callers on the
// batch hot path should EnableMemo.
func NewMultiAccumulator(m *Model, buses int) (*MultiAccumulator, error) {
	if m == nil {
		return nil, fmt.Errorf("energy: NewMultiAccumulator over nil model")
	}
	if buses < 1 {
		return nil, fmt.Errorf("energy: multi-accumulator buses %d < 1", buses)
	}
	a := &MultiAccumulator{
		model: m,
		buses: buses,
		prev:  make([]uint64, buses),
		first: make([]bool, buses),
		lines: make([]LineEnergy, buses*m.n),
		total: make([]LineEnergy, buses),
		step:  make([]LineEnergy, m.n),
	}
	for k := range a.first {
		a.first[k] = true
	}
	a.onEvict = a.drainSlot
	return a, nil
}

// EnableMemo attaches a shared transition memo of 2^sizeLog2 entries
// (0 selects DefaultMemoSizeLog2) plus the per-(slot, bus) count slabs.
func (a *MultiAccumulator) EnableMemo(sizeLog2 int) error {
	m, err := NewMemo(a.model, sizeLog2)
	if err != nil {
		return err
	}
	a.memo = m
	a.counts = make([]uint16, len(m.table)*a.buses)
	a.marked = make([]bool, len(m.table))
	a.touched = a.touched[:0]
	return nil
}

// Memo returns the attached transition memo, or nil.
func (a *MultiAccumulator) Memo() *Memo { return a.memo }

// Buses returns K.
func (a *MultiAccumulator) Buses() int { return a.buses }

// Width returns the per-bus line count W.
func (a *MultiAccumulator) Width() int { return a.model.n }

// StepBus transmits words on bus k, one per cycle. It does not advance
// the shared clock: callers step every bus the same number of words per
// round and account the cycles once via AddCycles (the core multi-bus
// stepper does exactly that per chunk).
//
//nanolint:hotpath per-chunk kernel under MultiSim.StepBatch; steady state allocates nothing
func (a *MultiAccumulator) StepBus(k int, words []uint64) {
	if len(words) == 0 {
		return
	}
	m := mask(a.model.n)
	i := 0
	if a.first[k] {
		a.first[k] = false
		a.prev[k] = words[0] & m
		i = 1
	}
	prev := a.prev[k]
	if a.memo != nil {
		memo := a.memo
		keys := memo.keys
		hmask := memo.mask
		counts := a.counts[k*len(keys) : (k+1)*len(keys)]
		// Popcount-indexed probe cache: an incrementing address stream
		// cycles its switching mask through carry chains (0b100, 0b1100,
		// 0b100, 0b11100, ...) whose popcounts 1, 2, 3, ... are distinct, so
		// a tiny cache indexed by popcount(diff) holds the whole cycle where
		// a last-transition shortcut only catches immediate repeats. A hit
		// skips the hash and both random table probes. Entries are validated
		// against the full (diff, rising) key; a zero scDiff never matches
		// because no-op transitions are filtered before the shortcut. Only
		// installSlot moves table entries, so the miss branch clears any
		// shortcut entry whose cached slot it just reused — without that, a
		// hit on the stale key would count transitions against the evicting
		// key's energies. The marked/touched bookkeeping below is shared
		// with the probe path, so a shortcut slot is already tracked.
		var scDiff, scRising [8]uint64
		var scSlot [8]int32
		for ; i < len(words); i++ {
			word := words[i] & m
			if word == prev {
				continue
			}
			diff := prev ^ word
			rising := word & diff
			prev = word
			sc := bits.OnesCount64(diff) & 7
			if scDiff[sc] == diff && scRising[sc] == rising && counts[scSlot[sc]] < overflowAt {
				memo.hits++
				counts[scSlot[sc]]++
				continue
			}
			// Inline two-way probe (the hit path of Memo.lookupSlot); only
			// misses leave the loop body.
			h := memoHash(diff, rising)
			slot := int(h & hmask)
			if kk := keys[slot]; kk.diff == diff && kk.rising == rising {
				memo.hits++
			} else if slot = int((h >> 32) & hmask); keys[slot].diff == diff && keys[slot].rising == rising {
				memo.hits++
			} else {
				slot = memo.installSlot(diff, rising, h, a.onEvict)
				for j := range scSlot {
					if int(scSlot[j]) == slot {
						scDiff[j] = 0
					}
				}
			}
			scDiff[sc], scRising[sc], scSlot[sc] = diff, rising, int32(slot)
			c := counts[slot]
			if c >= overflowAt {
				// Saturating would lose transitions; drain the slot early
				// (unmarks it) and restart its count.
				a.drainSlot(slot)
				c = 0
			}
			counts[slot] = c + 1
			if c == 0 && !a.marked[slot] {
				a.marked[slot] = true
				a.touched = append(a.touched, int32(slot))
			}
		}
		a.prev[k] = prev
		return
	}
	lines := a.lines[k*a.model.n : (k+1)*a.model.n]
	for ; i < len(words); i++ {
		word := words[i] & m
		if word == prev {
			continue
		}
		tot := a.model.transition(prev, word, a.step)
		for j := range a.step {
			lines[j].add(a.step[j])
		}
		a.total[k].add(tot)
		prev = word
	}
	a.prev[k] = prev
}

// AddCycles advances the shared clock by n cycles (one call per lockstep
// batch round, after every bus stepped its n words).
func (a *MultiAccumulator) AddCycles(n uint64) { a.cycles += n }

// IdleN advances n idle cycles on every bus: the buses hold their values,
// only the counters move.
func (a *MultiAccumulator) IdleN(n uint64) {
	a.cycles += n
	a.idleCycles += n
}

// drainSlot folds one memo slot's pending counts into the window: for
// each bus with pending transitions through the slot, the entry's sparse
// per-line energies scatter once, scaled by the count.
func (a *MultiAccumulator) drainSlot(slot int) {
	e := &a.memo.table[slot]
	w := a.model.n
	size := len(a.memo.table)
	for k := 0; k < a.buses; k++ {
		c := a.counts[k*size+slot]
		if c == 0 {
			continue
		}
		a.counts[k*size+slot] = 0
		f := float64(c)
		lines := a.lines[k*w : (k+1)*w]
		idx := 0
		for d := e.diff; d != 0; d &= d - 1 {
			lines[bits.TrailingZeros64(d)].addScaled(e.lines[idx], f)
			idx++
		}
		a.total[k].addScaled(e.total, f)
	}
	a.marked[slot] = false
}

// Drain folds every pending (slot, bus) count into the window, in slot
// touch order — deterministic for a given word stream. Flush paths call
// it before reading BusLines/BusTotal; it is idempotent until the next
// StepBus.
//
// The loop nest is bus-outer, slot-inner: one bus's counts window is a
// contiguous tableSize*2-byte slab (L1/L2-resident) where the slot-outer
// order of drainSlot takes a cache miss per (slot, bus) pair — the count
// columns sit a full table apart. Each bus applies the touched slots in
// the same order drainSlot would have, so the per-bus float association
// (and therefore every energy, bit for bit) is unchanged.
func (a *MultiAccumulator) Drain() {
	if len(a.touched) == 0 {
		return
	}
	size := len(a.memo.table)
	w := a.model.n
	for k := 0; k < a.buses; k++ {
		counts := a.counts[k*size : (k+1)*size]
		lines := a.lines[k*w : (k+1)*w]
		total := &a.total[k]
		for _, s := range a.touched {
			c := counts[s]
			if c == 0 {
				// Covers both untouched (this bus never hit the slot) and
				// already-drained slots (an eviction or overflow drain
				// zeroed every bus's count and unmarked the slot).
				continue
			}
			counts[s] = 0
			f := float64(c)
			e := &a.memo.table[s]
			idx := 0
			for d := e.diff; d != 0; d &= d - 1 {
				lines[bits.TrailingZeros64(d)].addScaled(e.lines[idx], f)
				idx++
			}
			total.addScaled(e.total, f)
		}
	}
	for _, s := range a.touched {
		a.marked[s] = false
	}
	a.touched = a.touched[:0]
}

// BusLines copies bus k's window per-line energies into dst (length W).
// Call Drain first; pending counts are not included.
func (a *MultiAccumulator) BusLines(k int, dst []LineEnergy) {
	copy(dst, a.lines[k*a.model.n:(k+1)*a.model.n])
}

// BusTotal returns bus k's window bus-wide energy. Call Drain first.
func (a *MultiAccumulator) BusTotal(k int) LineEnergy { return a.total[k] }

// Cycles returns the shared window cycle count.
func (a *MultiAccumulator) Cycles() uint64 { return a.cycles }

// IdleCycles returns the shared window idle-cycle count.
func (a *MultiAccumulator) IdleCycles() uint64 { return a.idleCycles }

// Reset clears the window (energies and counters) for the next sampling
// interval, keeping the held words, the memo, and any pending counts —
// callers Drain before Reset, exactly as the scalar flush drains Lines
// before Reset.
func (a *MultiAccumulator) Reset() {
	a.cycles = 0
	a.idleCycles = 0
	for i := range a.lines {
		a.lines[i] = LineEnergy{}
	}
	for i := range a.total {
		a.total[i] = LineEnergy{}
	}
}

// ResetAll additionally forgets the held words (every bus transmits a
// "first" word next), drops pending counts, and keeps the warm memo.
func (a *MultiAccumulator) ResetAll() {
	a.Reset()
	for k := range a.prev {
		a.prev[k] = 0
		a.first[k] = true
	}
	size := 0
	if a.memo != nil {
		size = len(a.memo.table)
	}
	for _, s := range a.touched {
		if a.marked[s] {
			a.marked[s] = false
			for k := 0; k < a.buses; k++ {
				a.counts[k*size+int(s)] = 0
			}
		}
	}
	a.touched = a.touched[:0]
}

// BusState returns bus k's serializable state in the scalar
// AccumulatorState form (shared cycle counters replicated per bus). Call
// Drain first so pending counts are folded into the window.
func (a *MultiAccumulator) BusState(k int) AccumulatorState {
	w := a.model.n
	lines := make([]LineEnergy, w)
	copy(lines, a.lines[k*w:(k+1)*w])
	return AccumulatorState{
		Prev:       a.prev[k],
		First:      a.first[k],
		Cycles:     a.cycles,
		IdleCycles: a.idleCycles,
		Total:      a.total[k],
		Lines:      lines,
	}
}

// SetBusState overwrites bus k's state from a snapshot. The shared cycle
// counters take the snapshot's values (every bus snapshot carries the
// same lockstep counters).
func (a *MultiAccumulator) SetBusState(k int, st AccumulatorState) error {
	w := a.model.n
	if len(st.Lines) != w {
		return fmt.Errorf("energy: state has %d lines, accumulator has %d", len(st.Lines), w)
	}
	a.prev[k] = st.Prev & mask(w)
	a.first[k] = st.First
	a.cycles = st.Cycles
	a.idleCycles = st.IdleCycles
	a.total[k] = st.Total
	copy(a.lines[k*w:(k+1)*w], st.Lines)
	return nil
}

package energy

import (
	"math/rand"
	"testing"

	"nanobus/internal/capmodel"
	"nanobus/internal/itrs"
)

func memoTestModel(t *testing.T, width int) *Model {
	t.Helper()
	caps, err := capmodel.FromNode(itrs.N130, width, capmodel.DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Caps: caps, Length: 0.01, Vdd: itrs.N130.Vdd, Crep: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// addressStream mimics bus traffic: mostly sequential steps with occasional
// random jumps and repeats, the locality regime the memo exploits.
func addressStream(rng *rand.Rand, n int) []uint64 {
	words := make([]uint64, n)
	w := uint64(rng.Uint32())
	for i := range words {
		switch rng.Intn(10) {
		case 0:
			w = rng.Uint64() // far jump
		case 1:
			// repeat w: a held bus
		default:
			w += 4 // sequential access
		}
		words[i] = w
	}
	return words
}

// TestMemoTransitionBitIdentical is the tentpole property: for random word
// streams and bus widths the memoized Transition is bit-identical to the
// direct kernel — both on cold misses and on replayed hits.
func TestMemoTransitionBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 7, 32, 33, 64} {
		m := memoTestModel(t, width)
		memo, err := NewMemo(m, 8) // small table: exercises eviction too
		if err != nil {
			t.Fatal(err)
		}
		words := addressStream(rng, 2000)
		wantOut := make([]LineEnergy, width)
		gotOut := make([]LineEnergy, width)
		prev := uint64(0)
		for k, cur := range words {
			wantTot, err := m.Transition(prev, cur, wantOut)
			if err != nil {
				t.Fatal(err)
			}
			gotTot, err := memo.Transition(prev, cur, gotOut)
			if err != nil {
				t.Fatal(err)
			}
			if gotTot != wantTot {
				t.Fatalf("width %d step %d: memo total %+v != direct %+v", width, k, gotTot, wantTot)
			}
			for i := range wantOut {
				if gotOut[i] != wantOut[i] {
					t.Fatalf("width %d step %d line %d: memo %+v != direct %+v", width, k, i, gotOut[i], wantOut[i])
				}
			}
			prev = cur
		}
		st := memo.Stats()
		if st.Hits+st.Misses == 0 {
			t.Errorf("width %d: no lookups recorded", width)
		}
		if st.Hits == 0 {
			t.Errorf("width %d: address-like stream produced zero hits", width)
		}
		if st.Entries > st.Capacity {
			t.Errorf("width %d: %d entries in a %d-slot table", width, st.Entries, st.Capacity)
		}
	}
}

// TestAccumulatorMemoBitIdentical drives two accumulators — one memoized,
// one not — through identical streams and requires bit-identical per-line
// and total accumulations.
func TestAccumulatorMemoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{3, 32, 33} {
		m := memoTestModel(t, width)
		plain := NewAccumulator(m)
		memod := NewAccumulator(m)
		if err := memod.EnableMemo(6); err != nil {
			t.Fatal(err)
		}
		for _, w := range addressStream(rng, 5000) {
			plain.Step(w)
			memod.Step(w)
		}
		if plain.Total() != memod.Total() {
			t.Fatalf("width %d: totals diverge: %+v vs %+v", width, plain.Total(), memod.Total())
		}
		for i := 0; i < width; i++ {
			if plain.Line(i) != memod.Line(i) {
				t.Fatalf("width %d line %d: %+v vs %+v", width, i, plain.Line(i), memod.Line(i))
			}
		}
		if plain.Last() != memod.Last() || plain.Cycles() != memod.Cycles() {
			t.Fatalf("width %d: bus state diverged", width)
		}
	}
}

func TestMemoStatsAndHitRate(t *testing.T) {
	m := memoTestModel(t, 8)
	memo, err := NewMemo(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Stats().HitRate() != 0 {
		t.Error("hit rate nonzero before any lookup")
	}
	out := make([]LineEnergy, 8)
	if _, err := memo.Transition(0, 0xFF, out); err != nil {
		t.Fatal(err)
	}
	if _, err := memo.Transition(0, 0xFF, out); err != nil {
		t.Fatal(err)
	}
	st := memo.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 || st.Capacity != 16 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry, 16 slots", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %g, want 0.5", st.HitRate())
	}
	// A zero-diff transition never touches the cache.
	if _, err := memo.Transition(7, 7, out); err != nil {
		t.Fatal(err)
	}
	if got := memo.Stats(); got.Hits+got.Misses != 2 {
		t.Errorf("no-op transition counted: %+v", got)
	}
	if memo.Model() != m {
		t.Error("Model() accessor broken")
	}
}

func TestNewMemoValidation(t *testing.T) {
	m := memoTestModel(t, 4)
	if _, err := NewMemo(nil, 0); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewMemo(m, -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewMemo(m, 40); err == nil {
		t.Error("oversized table accepted")
	}
	memo, err := NewMemo(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Stats().Capacity != 1<<DefaultMemoSizeLog2 {
		t.Errorf("default capacity %d, want %d", memo.Stats().Capacity, 1<<DefaultMemoSizeLog2)
	}
	out := make([]LineEnergy, 3)
	if _, err := memo.Transition(0, 1, out); err == nil {
		t.Error("wrong out length accepted")
	}
}

func TestAccumulatorResetAll(t *testing.T) {
	m := memoTestModel(t, 16)
	acc := NewAccumulator(m)
	if err := acc.EnableMemo(0); err != nil {
		t.Fatal(err)
	}
	words := []uint64{0x10, 0x14, 0x18, 0x9999, 0x1C}
	run := func() (LineEnergy, uint64) {
		for _, w := range words {
			acc.Step(w)
		}
		acc.Idle()
		return acc.Total(), acc.Cycles()
	}
	tot1, cyc1 := run()
	warmHits := acc.Memo().Stats().Hits
	acc.ResetAll()
	if acc.Total() != (LineEnergy{}) || acc.Cycles() != 0 || acc.IdleCycles() != 0 {
		t.Fatalf("ResetAll left residue: total %+v cycles %d", acc.Total(), acc.Cycles())
	}
	if acc.Last() != 0 {
		t.Fatalf("ResetAll kept held word %#x", acc.Last())
	}
	tot2, cyc2 := run()
	if tot1 != tot2 || cyc1 != cyc2 {
		t.Fatalf("replay after ResetAll differs: %+v/%d vs %+v/%d", tot1, cyc1, tot2, cyc2)
	}
	// The memo stayed warm: the replay must hit on every transition.
	if got := acc.Memo().Stats(); got.Hits <= warmHits {
		t.Errorf("memo went cold across ResetAll: %d hits then %d", warmHits, got.Hits)
	}
}

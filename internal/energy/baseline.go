package energy

import (
	"fmt"
	"math/bits"
)

// WholeBusTransition computes the transition energy of the whole bus with
// the prior-art formulation the paper compares against (Sotiriadis &
// Chandrakasan [16, 17]): total energy only, from self terms and pairwise
// coupling terms 0.5*c(i,j)*(Vi-Vj)^2, with no attribution to individual
// wires. The paper's per-line model must sum to exactly this value (the
// package tests assert it); its added value is the attribution, which the
// thermal model needs.
func (m *Model) WholeBusTransition(prev, cur uint64) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("energy: nil model")
	}
	n := m.n
	v := make([]float64, n)
	diff := (prev ^ cur) & mask(n)
	for d := diff; d != 0; d &= d - 1 {
		i := bits.TrailingZeros64(d)
		if cur&(1<<uint(i)) != 0 {
			v[i] = m.vdd
		} else {
			v[i] = -m.vdd
		}
	}
	total := 0.0
	for i := 0; i < n; i++ {
		if v[i] != 0 { //nanolint:ignore floateq sparsity skip: an exactly zero swing dissipates nothing
			total += 0.5 * m.selfCap[i] * v[i] * v[i]
		}
		for j := i + 1; j < n; j++ {
			d := v[i] - v[j]
			if d != 0 { //nanolint:ignore floateq sparsity skip: an exactly zero differential swing dissipates nothing
				total += 0.5 * m.coup[i][j] * d * d
			}
		}
	}
	return total, nil
}

// ActivityEnergy computes the pre-coupling-era estimate (Ye et al. [19],
// as characterised in the paper's Sec. 2): self transitions only, i.e.
// alpha * 0.5 * (Cline+Crep) * Vdd^2 per wire per cycle, with a single
// average switching-activity factor alpha for the whole bus. It needs no
// trace — only the activity factor — which is exactly why it cannot
// capture per-wire or temporal behaviour.
func (m *Model) ActivityEnergy(alpha float64, cycles uint64) (float64, error) {
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("energy: activity factor %g outside [0,1]", alpha)
	}
	perCycle := 0.0
	for i := 0; i < m.n; i++ {
		perCycle += alpha * 0.5 * m.selfCap[i] * m.vdd2
	}
	return perCycle * float64(cycles), nil
}

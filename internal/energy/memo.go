// Transition-energy memoization. The per-line energies of a bus transition
// depend only on the pair (diff, rising): the switching mask and the subset
// of switching lines that rise (see transitionSparse). Address streams are
// extremely repetitive — an IA bus mostly increments, a DA bus cycles
// through a working set — so a small direct-mapped cache over that key
// converts the O(s^2) pairwise kernel into an O(s) sparse accumulate for
// the overwhelming majority of cycles.
package energy

import (
	"fmt"
	"math/bits"
)

// DefaultMemoSizeLog2 sizes the transition memo at 2^14 = 16384 entries —
// large enough that SPEC-style address windows hit in the high 90s percent,
// small enough (a few MB with typical switching densities) to stay resident
// per simulator.
const DefaultMemoSizeLog2 = 14

// maxMemoSizeLog2 caps the table at 2^22 entries so a typo'd size cannot
// silently allocate gigabytes.
const maxMemoSizeLog2 = 22

// memoEntry is one direct-mapped slot: the key pair plus the sparse
// per-switching-line energies (ascending wire order, one per set bit of
// diff) and their bus-wide total. diff == 0 marks an unused slot, because a
// no-op transition is filtered out before lookup.
type memoEntry struct {
	diff, rising uint64
	total        LineEnergy
	lines        []LineEnergy
}

// memoKey mirrors the (diff, rising) key of the entry in the same slot.
// The parallel key array exists purely for probe locality: four keys share
// one cache line where the 64-byte entries take a line each, so the hit
// path of a probe touches a quarter of the cache footprint. installSlot
// keeps keys and table in sync; everything else treats the entry as
// authoritative.
type memoKey struct {
	diff, rising uint64
}

// Memo is a direct-mapped transition-energy cache over one Model. It is not
// safe for concurrent use; give each goroutine's Accumulator its own Memo
// (the sweep runner does).
type Memo struct {
	model *Model
	mask  uint64
	keys  []memoKey
	table []memoEntry

	hits, misses uint64
	used         uint64

	idx [64]int // scratch for miss-path index decoding
}

// MemoStats are the cache observability counters.
type MemoStats struct {
	// Hits and Misses count Lookup outcomes; a miss computes the kernel
	// and installs (or replaces) an entry.
	Hits, Misses uint64
	// Entries is the number of occupied slots, Capacity the table size.
	Entries, Capacity uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s MemoStats) HitRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// NewMemo builds a transition memo of 2^sizeLog2 entries over the model.
// sizeLog2 == 0 selects DefaultMemoSizeLog2.
func NewMemo(m *Model, sizeLog2 int) (*Memo, error) {
	if m == nil {
		return nil, fmt.Errorf("energy: NewMemo over nil model")
	}
	if sizeLog2 == 0 {
		sizeLog2 = DefaultMemoSizeLog2
	}
	if sizeLog2 < 1 || sizeLog2 > maxMemoSizeLog2 {
		return nil, fmt.Errorf("energy: memo size 2^%d outside [2^1, 2^%d]", sizeLog2, maxMemoSizeLog2)
	}
	size := uint64(1) << uint(sizeLog2)
	return &Memo{
		model: m,
		mask:  size - 1,
		keys:  make([]memoKey, size),
		table: make([]memoEntry, size),
	}, nil
}

// Model returns the model the memo caches for.
func (c *Memo) Model() *Model { return c.model }

// Stats returns the hit/miss/occupancy counters.
func (c *Memo) Stats() MemoStats {
	return MemoStats{Hits: c.hits, Misses: c.misses, Entries: c.used, Capacity: uint64(len(c.table))}
}

// memoHash mixes the (diff, rising) key into a table index. rising is a
// subset of diff, so the pair is highly correlated; a multiply-xorshift of
// each half keeps sequential address patterns from clustering in one way.
func memoHash(diff, rising uint64) uint64 {
	h := diff*0x9e3779b97f4a7c15 ^ rising*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h
}

// lookup returns the cache entry for a non-zero switching mask diff and its
// rising subset, computing and installing it on a miss. The table is
// two-way pseudo-associative: a key probes a primary slot (low hash bits)
// and an alternate slot (high hash bits), so two keys colliding on one
// index no longer evict each other every round trip through a working
// set. The returned entry is valid until the next lookup.
//
//nanolint:hotpath probed once per switching transition; hits must not allocate
func (c *Memo) lookup(diff, rising uint64) *memoEntry {
	h := memoHash(diff, rising)
	pi := int(h & c.mask)
	if k := c.keys[pi]; k.diff == diff && k.rising == rising {
		c.hits++
		return &c.table[pi]
	}
	ai := int((h >> 32) & c.mask)
	if k := c.keys[ai]; k.diff == diff && k.rising == rising {
		c.hits++
		return &c.table[ai]
	}
	return &c.table[c.installSlot(diff, rising, h, nil)]
}

// lookupSlot is lookup for aggregating callers: it returns the table
// index of the entry for (diff, rising), installing it on a miss with the
// same probe and eviction policy as lookup, so a mixed workload of both
// entry points sees one coherent cache. When installing would evict a
// live entry, onEvict runs first with the old entry still in place — the
// multi-bus accumulator drains its per-slot transition counts there
// before the slot's energies change. The index stays valid (same entry,
// same energies) until a lookup or lookupSlot misses into it.
//
//nanolint:hotpath probed once per switching transition on the multi-bus path; hits must not allocate
func (c *Memo) lookupSlot(diff, rising uint64, onEvict func(int)) int {
	h := memoHash(diff, rising)
	pi := int(h & c.mask)
	if k := c.keys[pi]; k.diff == diff && k.rising == rising {
		c.hits++
		return pi
	}
	ai := int((h >> 32) & c.mask)
	if k := c.keys[ai]; k.diff == diff && k.rising == rising {
		c.hits++
		return ai
	}
	return c.installSlot(diff, rising, h, onEvict)
}

// installSlot is the shared miss path behind lookupSlot and the multi-bus
// accumulator's inlined probe: pick the victim slot for (diff, rising)
// under the standard eviction policy, run onEvict if a live entry is
// displaced, compute and install the transition energies, and return the
// slot index. h must be memoHash(diff, rising).
func (c *Memo) installSlot(diff, rising, h uint64, onEvict func(int)) int {
	c.misses++
	idx := int(h & c.mask)
	if ai := int((h >> 32) & c.mask); c.keys[idx].diff != 0 && c.keys[ai].diff == 0 {
		idx = ai
	}
	e := &c.table[idx]
	if e.diff == 0 {
		c.used++
	} else if onEvict != nil {
		onEvict(idx)
	}
	s := bits.OnesCount64(diff)
	if cap(e.lines) < s {
		e.lines = make([]LineEnergy, s)
	}
	e.lines = e.lines[:s]
	e.total = c.model.transitionSparse(diff, rising, c.idx[:s], e.lines)
	e.diff, e.rising = diff, rising
	c.keys[idx] = memoKey{diff: diff, rising: rising}
	return idx
}

// Transition is the memoized equivalent of Model.Transition: identical
// contract, bit-identical results (the miss path runs the same sparse
// kernel the model does, and hits replay its stored output).
func (c *Memo) Transition(prev, cur uint64, out []LineEnergy) (LineEnergy, error) {
	if len(out) != c.model.n {
		return LineEnergy{}, fmt.Errorf("energy: out length %d, want %d", len(out), c.model.n)
	}
	for i := range out {
		out[i] = LineEnergy{}
	}
	diff := (prev ^ cur) & mask(c.model.n)
	if diff == 0 {
		return LineEnergy{}, nil
	}
	e := c.lookup(diff, cur&diff)
	k := 0
	for d := diff; d != 0; d &= d - 1 {
		out[bits.TrailingZeros64(d)] = e.lines[k]
		k++
	}
	return e.total, nil
}

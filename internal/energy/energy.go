// Package energy implements the paper's per-line bus energy dissipation
// model (Sec. 3). For every bus cycle it computes, for each wire i, the
// energy dissipated by
//
//   - the self transition: Eself = 0.5*(Cline + Crep)*Vi^2 (Sec. 3.1), where
//     Vi = Vfinal - Vinitial is in {-Vdd, 0, +Vdd}, and
//   - coupling transitions against every other wire j:
//     Ec(i,j) = 0.5*c(i,j)*(Vi^2 - Vi*Vj) (Sec. 3.2), which yields the
//     Miller-doubled energy c*Vdd^2 per line on a toggle (opposite
//     transitions), 0.5*c*Vdd^2 on a charge/discharge against a quiet
//     line, and 0 between two quiet or two same-direction lines.
//
// Coupling is accounted separately for adjacent (|i-j| == 1) and
// non-adjacent (|i-j| > 1) pairs so the harness can present the paper's
// "Self", "NN" (self + adjacent) and "All" (self + all pairs) variants from
// one simulation pass.
package energy

import (
	"fmt"
	"math/bits"

	"nanobus/internal/capmodel"
)

// Model holds the absolute (length-scaled) electrical parameters of a bus.
type Model struct {
	n    int
	vdd  float64
	vdd2 float64
	// selfCap[i] is (cline*L + Crep) in farads.
	selfCap []float64
	// coup[i][j] is the absolute coupling capacitance in farads.
	coup [][]float64
	// rowSum[i] = sum_j coup[i][j].
	rowSum []float64
}

// Config assembles a Model.
type Config struct {
	// Caps is the per-unit-length capacitance matrix (F/m).
	Caps *capmodel.Matrix
	// Length is the bus length in meters.
	Length float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// Crep is the total repeater capacitance added to each line in farads
	// (absolute). Zero if the bus has no repeaters.
	Crep float64
}

// New builds an energy model from the configuration.
func New(cfg Config) (*Model, error) {
	if cfg.Caps == nil {
		return nil, fmt.Errorf("energy: nil capacitance matrix")
	}
	n := cfg.Caps.N()
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("energy: bus width %d out of range [1,64]", n)
	}
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("energy: non-positive length %g", cfg.Length)
	}
	if cfg.Vdd <= 0 {
		return nil, fmt.Errorf("energy: non-positive Vdd %g", cfg.Vdd)
	}
	if cfg.Crep < 0 {
		return nil, fmt.Errorf("energy: negative Crep %g", cfg.Crep)
	}
	m := &Model{
		n:       n,
		vdd:     cfg.Vdd,
		vdd2:    cfg.Vdd * cfg.Vdd,
		selfCap: make([]float64, n),
		coup:    make([][]float64, n),
		rowSum:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.selfCap[i] = cfg.Caps.Self(i)*cfg.Length + cfg.Crep
		m.coup[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			c := cfg.Caps.Coupling(i, j) * cfg.Length
			m.coup[i][j] = c
			m.rowSum[i] += c
		}
	}
	return m, nil
}

// N returns the bus width in wires.
func (m *Model) N() int { return m.n }

// Vdd returns the supply voltage.
func (m *Model) Vdd() float64 { return m.vdd }

// SelfCap returns wire i's absolute self capacitance (including repeaters)
// in farads.
func (m *Model) SelfCap(i int) float64 { return m.selfCap[i] }

// CouplingCap returns the absolute coupling capacitance between wires i and
// j in farads.
func (m *Model) CouplingCap(i, j int) float64 { return m.coup[i][j] }

// LineEnergy is one wire's energy for a transition or an accumulation
// window, split by component (joules).
type LineEnergy struct {
	// Self is the self-capacitance energy.
	Self float64
	// CoupAdj is coupling energy against adjacent neighbours (|i-j|==1).
	CoupAdj float64
	// CoupNonAdj is coupling energy against non-adjacent neighbours.
	CoupNonAdj float64
}

// Total returns self + all coupling energy.
func (e LineEnergy) Total() float64 { return e.Self + e.CoupAdj + e.CoupNonAdj }

// TotalNN returns the "NN" model variant: self + adjacent coupling only.
func (e LineEnergy) TotalNN() float64 { return e.Self + e.CoupAdj }

func (e *LineEnergy) add(o LineEnergy) {
	e.Self += o.Self
	e.CoupAdj += o.CoupAdj
	e.CoupNonAdj += o.CoupNonAdj
}

// Transition computes the per-line energies for the bus transition
// prev -> cur. Bit i of the words is wire i's logic value. out must have
// length N and is fully overwritten; the summed energy over all lines is
// returned. The cost is O(s^2 + s) where s is the number of switching
// lines.
func (m *Model) Transition(prev, cur uint64, out []LineEnergy) (LineEnergy, error) {
	if len(out) != m.n {
		return LineEnergy{}, fmt.Errorf("energy: out length %d, want %d", len(out), m.n)
	}
	return m.transition(prev, cur, out), nil
}

// transition is the no-check kernel behind Transition, for callers whose
// scratch slice is sized to the model by construction (the Accumulator).
func (m *Model) transition(prev, cur uint64, out []LineEnergy) LineEnergy {
	for i := range out {
		out[i] = LineEnergy{}
	}
	diff := (prev ^ cur) & mask(m.n)
	if diff == 0 {
		return LineEnergy{}
	}
	var idx [64]int
	var les [64]LineEnergy
	s := bits.OnesCount64(diff)
	total := m.transitionSparse(diff, cur&diff, idx[:s], les[:s])
	for a := 0; a < s; a++ {
		out[idx[a]] = les[a]
	}
	return total
}

// transitionSparse computes the energies of the s switching lines of a
// transition. The transition is described by its memoizable key: diff is
// the switching mask (already width-masked, non-zero) and rising = cur&diff
// is the subset of switching lines that rise — the per-line energies depend
// on nothing else, because quiet lines contribute their coupling
// capacitance independent of their logic value (Sec. 3.2). idx and les must
// have length s = popcount(diff); idx receives the switching wire indices
// in ascending order, les their energies. The bus-wide total is returned.
func (m *Model) transitionSparse(diff, rising uint64, idx []int, les []LineEnergy) LineEnergy {
	// Switching lines and their normalised transition direction
	// vi = Vi/Vdd in {-1, +1}.
	var dir [64]float64
	s := 0
	for d := diff; d != 0; d &= d - 1 {
		i := bits.TrailingZeros64(d)
		idx[s] = i
		if rising&(1<<uint(i)) != 0 {
			dir[s] = 1 // rising
		} else {
			dir[s] = -1 // falling
		}
		s++
	}
	// Coupling: 0.5*Vdd^2 * sum_j c_ij*(1 - vi*vj), where vj = 0 for quiet
	// lines. Start each switching line from the all-quiet assumption
	// (every j contributes c_ij, pre-split by adjacency), then correct
	// each switching pair once: the contribution becomes c_ij*(1 - vi*vj),
	// i.e. add -c_ij*vi*vj — the same delta on both lines of the pair.
	var coupAdj, coupNon [64]float64
	for a := 0; a < s; a++ {
		i := idx[a]
		row := m.coup[i]
		adj := 0.0
		if i > 0 {
			adj += row[i-1]
		}
		if i < m.n-1 {
			adj += row[i+1]
		}
		coupAdj[a] = adj
		coupNon[a] = m.rowSum[i] - adj
	}
	for a := 0; a < s; a++ {
		i := idx[a]
		row := m.coup[i]
		va := dir[a]
		for b := a + 1; b < s; b++ {
			j := idx[b]
			c := row[j]
			if c == 0 { //nanolint:ignore floateq sparsity skip: an exactly zero coupling capacitance contributes nothing
				continue
			}
			delta := -c * va * dir[b]
			if j == i-1 || j == i+1 {
				coupAdj[a] += delta
				coupAdj[b] += delta
			} else {
				coupNon[a] += delta
				coupNon[b] += delta
			}
		}
	}
	var total LineEnergy
	half := 0.5 * m.vdd2
	for a := 0; a < s; a++ {
		i := idx[a]
		le := LineEnergy{
			Self:       half * m.selfCap[i],
			CoupAdj:    half * coupAdj[a],
			CoupNonAdj: half * coupNon[a],
		}
		les[a] = le
		total.add(le)
	}
	return total
}

// Accumulator drives a Model over a word stream, accumulating per-line
// energies. It tracks the previously transmitted word, so callers just push
// the new word each cycle (or call Idle for cycles in which the bus holds
// its value, which dissipate nothing — the paper's idle assumption).
type Accumulator struct {
	model *Model
	prev  uint64
	// first marks that no word has been transmitted yet; the first word
	// establishes the initial state without dissipating (the paper's
	// traces likewise start from the first transmitted address).
	first bool

	cycles     uint64
	idleCycles uint64

	lines []LineEnergy
	total LineEnergy
	step  []LineEnergy
	// memo, when non-nil, caches per-transition results and switches Step
	// to the sparse accumulate path (identical numerics, see Memo).
	memo *Memo
}

// NewAccumulator returns an accumulator over the model, starting from an
// undriven bus (the first pushed word sets the state free of charge).
func NewAccumulator(m *Model) *Accumulator {
	return &Accumulator{
		model: m,
		first: true,
		lines: make([]LineEnergy, m.n),
		step:  make([]LineEnergy, m.n),
	}
}

// Model returns the underlying energy model.
func (a *Accumulator) Model() *Model { return a.model }

// EnableMemo attaches a fresh transition memo of 2^sizeLog2 entries
// (0 = DefaultMemoSizeLog2) to the accumulator. Memoized stepping is
// bit-identical to the direct kernel; only the cost changes.
func (a *Accumulator) EnableMemo(sizeLog2 int) error {
	m, err := NewMemo(a.model, sizeLog2)
	if err != nil {
		return err
	}
	a.memo = m
	return nil
}

// Memo returns the attached transition memo, or nil when memoization is
// disabled.
func (a *Accumulator) Memo() *Memo { return a.memo }

// Step transmits word on the bus for one cycle and accrues the transition
// energy against the previously transmitted word.
func (a *Accumulator) Step(word uint64) {
	a.cycles++
	if a.first {
		a.first = false
		a.prev = word & mask(a.model.n)
		return
	}
	word &= mask(a.model.n)
	if word == a.prev {
		return
	}
	if a.memo != nil {
		diff := a.prev ^ word
		e := a.memo.lookup(diff, word&diff)
		k := 0
		for d := diff; d != 0; d &= d - 1 {
			a.lines[bits.TrailingZeros64(d)].add(e.lines[k])
			k++
		}
		a.total.add(e.total)
		a.prev = word
		return
	}
	tot := a.model.transition(a.prev, word, a.step)
	for i := range a.step {
		a.lines[i].add(a.step[i])
	}
	a.total.add(tot)
	a.prev = word
}

// Idle advances one cycle with the bus holding its previous value; no
// energy is dissipated.
func (a *Accumulator) Idle() {
	a.cycles++
	a.idleCycles++
}

// Cycles returns the number of bus cycles stepped (including idles).
func (a *Accumulator) Cycles() uint64 { return a.cycles }

// IdleCycles returns how many cycles were idle.
func (a *Accumulator) IdleCycles() uint64 { return a.idleCycles }

// Line returns the accumulated energy of wire i.
func (a *Accumulator) Line(i int) LineEnergy { return a.lines[i] }

// Lines copies the accumulated per-line energies into dst (length N).
func (a *Accumulator) Lines(dst []LineEnergy) {
	copy(dst, a.lines)
}

// Total returns the accumulated bus-wide energy.
func (a *Accumulator) Total() LineEnergy { return a.total }

// Last returns the word currently held on the bus.
func (a *Accumulator) Last() uint64 { return a.prev }

// Reset zeroes the accumulated energies and cycle counts but keeps the bus
// state (the held word), so interval-based callers can difference cheaply.
func (a *Accumulator) Reset() {
	for i := range a.lines {
		a.lines[i] = LineEnergy{}
	}
	a.total = LineEnergy{}
	a.cycles = 0
	a.idleCycles = 0
}

// ResetAll returns the accumulator to its initial undriven state: energies,
// cycle counts, and the held word are all cleared. The memo cache and its
// counters are deliberately kept — a sweep driver replaying new traffic
// through the same model wants the cache warm.
func (a *Accumulator) ResetAll() {
	a.Reset()
	a.first = true
	a.prev = 0
}

func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

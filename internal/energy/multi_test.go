package energy

import (
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/itrs"
)

// relCloseScaled reports |a-b| <= tol * max(|a|,|b|) — a genuinely
// relative comparison (the shared relClose helper's +1 floor would make
// any tolerance absolute against ~1e-12 J energies).
func relCloseScaled(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// TestMultiAccumulatorMatchesScalar drives K buses through a
// MultiAccumulator and the same word streams through K independent scalar
// Accumulators, in several rounds with drains in between, and checks the
// window energies agree to rounding.
func TestMultiAccumulatorMatchesScalar(t *testing.T) {
	const width, buses = 16, 5
	m := testModel(t, width, itrs.N90)

	multi, err := NewMultiAccumulator(m, buses)
	if err != nil {
		t.Fatalf("NewMultiAccumulator: %v", err)
	}
	if err := multi.EnableMemo(6); err != nil { // tiny table to force evictions
		t.Fatalf("EnableMemo: %v", err)
	}

	scalars := make([]*Accumulator, buses)
	for k := range scalars {
		scalars[k] = NewAccumulator(m)
	}

	rng := rand.New(rand.NewSource(7))
	const rounds, perRound = 6, 400
	words := make([]uint64, perRound)
	lineBuf := make([]LineEnergy, width)
	scalarLines := make([]LineEnergy, width)
	for r := 0; r < rounds; r++ {
		for k := 0; k < buses; k++ {
			for i := range words {
				// Mix of sequential and random patterns so some
				// transitions repeat (memo hits) and some do not.
				if rng.Intn(3) == 0 {
					words[i] = rng.Uint64()
				} else {
					words[i] = uint64(r*perRound+i) + uint64(k)<<8
				}
			}
			multi.StepBus(k, words)
			scalars[k].StepBatch(words)
		}
		multi.AddCycles(perRound)

		multi.Drain()
		for k := 0; k < buses; k++ {
			multi.BusLines(k, lineBuf)
			scalars[k].Lines(scalarLines)
			for j := range lineBuf {
				if !relCloseScaled(lineBuf[j].Total(), scalarLines[j].Total(), 1e-9) {
					t.Fatalf("round %d bus %d line %d: multi %g scalar %g",
						r, k, j, lineBuf[j].Total(), scalarLines[j].Total())
				}
			}
			if !relCloseScaled(multi.BusTotal(k).Total(), scalars[k].Total().Total(), 1e-9) {
				t.Fatalf("round %d bus %d total: multi %g scalar %g",
					r, k, multi.BusTotal(k).Total(), scalars[k].Total().Total())
			}
		}
		if multi.Cycles() != scalars[0].Cycles() {
			t.Fatalf("round %d cycles: multi %d scalar %d", r, multi.Cycles(), scalars[0].Cycles())
		}
		// Reset windows on both sides (held words persist), as flush does.
		multi.Reset()
		for k := range scalars {
			scalars[k].Reset()
		}
	}
}

// TestMultiAccumulatorIdleAndState exercises IdleN, the BusState/
// SetBusState round trip, and ResetAll.
func TestMultiAccumulatorIdleAndState(t *testing.T) {
	const width, buses = 8, 3
	m := testModel(t, width, itrs.N130)
	a, err := NewMultiAccumulator(m, buses)
	if err != nil {
		t.Fatalf("NewMultiAccumulator: %v", err)
	}
	if err := a.EnableMemo(0); err != nil {
		t.Fatalf("EnableMemo: %v", err)
	}
	words := []uint64{0x1, 0x3, 0x7, 0xf, 0x1f}
	for k := 0; k < buses; k++ {
		a.StepBus(k, words)
	}
	a.AddCycles(uint64(len(words)))
	a.IdleN(10)
	if a.Cycles() != 15 || a.IdleCycles() != 10 {
		t.Fatalf("cycles=%d idle=%d, want 15/10", a.Cycles(), a.IdleCycles())
	}

	a.Drain()
	st := a.BusState(1)
	if st.Prev != 0x1f || st.First {
		t.Fatalf("bus state prev=%#x first=%v", st.Prev, st.First)
	}

	b, err := NewMultiAccumulator(m, buses)
	if err != nil {
		t.Fatalf("NewMultiAccumulator: %v", err)
	}
	if err := b.SetBusState(1, st); err != nil {
		t.Fatalf("SetBusState: %v", err)
	}
	got := b.BusState(1)
	if got.Prev != st.Prev || got.Total != st.Total || got.Cycles != st.Cycles {
		t.Fatalf("state round trip mismatch: %+v vs %+v", got, st)
	}
	if err := b.SetBusState(0, AccumulatorState{Lines: make([]LineEnergy, width+1)}); err == nil {
		t.Fatal("SetBusState accepted wrong line count")
	}

	a.ResetAll()
	if a.Cycles() != 0 || a.BusTotal(0) != (LineEnergy{}) {
		t.Fatal("ResetAll left window state")
	}
	if st := a.BusState(0); !st.First {
		t.Fatal("ResetAll kept held word")
	}
}

// TestMultiAccumulatorValidation covers constructor error paths.
func TestMultiAccumulatorValidation(t *testing.T) {
	m := testModel(t, 4, itrs.N130)
	if _, err := NewMultiAccumulator(nil, 2); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewMultiAccumulator(m, 0); err == nil {
		t.Fatal("zero buses accepted")
	}
	a, err := NewMultiAccumulator(m, 2)
	if err != nil {
		t.Fatalf("NewMultiAccumulator: %v", err)
	}
	if err := a.EnableMemo(99); err == nil {
		t.Fatal("oversized memo accepted")
	}
	if a.Buses() != 2 || a.Width() != 4 {
		t.Fatalf("accessors: buses=%d width=%d, want 2/4", a.Buses(), a.Width())
	}
	if a.Memo() != nil {
		t.Fatal("memo present before a successful EnableMemo")
	}
	if err := a.EnableMemo(0); err != nil {
		t.Fatalf("EnableMemo(0): %v", err)
	}
	if a.Memo() == nil || a.Memo().Stats().Capacity != 1<<DefaultMemoSizeLog2 {
		t.Fatal("default-sized memo absent after EnableMemo(0)")
	}
}

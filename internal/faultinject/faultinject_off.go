//go:build nanobus_nofault

// Build-tag gate: with -tags nanobus_nofault every failpoint site compiles
// down to a constant no-op, so deployments can prove the chaos machinery
// is physically absent from the binary.
package faultinject

import "errors"

// EnvVar and EnvSeed mirror the active build's names (ignored here).
const (
	EnvVar  = "NANOBUS_FAILPOINTS"
	EnvSeed = "NANOBUS_FAILPOINT_SEED"
)

// ErrInjected is never returned in this build.
var ErrInjected = errors.New("faultinject: injected failure")

// Active always reports false: nothing can be armed.
func Active() bool { return false }

// SetAll rejects arming: the machinery is compiled out.
func SetAll(string) error { return errors.New("faultinject: disabled by nanobus_nofault build tag") }

// Set rejects arming: the machinery is compiled out.
func Set(string, string) error {
	return errors.New("faultinject: disabled by nanobus_nofault build tag")
}

// Clear is a no-op.
func Clear(string) {}

// Reset is a no-op.
func Reset() {}

// Hits always reports zero.
func Hits(string) uint64 { return 0 }

// Hit never injects.
func Hit(string) error { return nil }

// Truncate never truncates.
func Truncate(_ string, b []byte) []byte { return b }

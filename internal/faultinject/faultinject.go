//go:build !nanobus_nofault

// Package faultinject provides named failpoints for chaos and robustness
// testing. Production code calls Hit (or Truncate) at interesting sites —
// interval flushes, ingest decodes, checkpoint-store writes — and the
// package decides, per an armed specification, whether to inject a fault:
// a returned error, a panic, a delay, or a truncated byte slice.
//
// Failpoints are armed either programmatically (Set, from tests) or from
// the NANOBUS_FAILPOINTS environment variable at process start:
//
//	NANOBUS_FAILPOINTS='server.ingest.decode=error,nth=3;store.fs.save=sleep=50ms,prob=0.2'
//
// The grammar per failpoint is action[=param][,mod=value...]:
//
//	actions:  error | panic | sleep=<duration> | truncate=<keep-bytes>
//	mods:     nth=<n>    fire only on exactly the n-th hit (1-based)
//	          after=<n>  fire on every hit strictly after the n-th
//	          prob=<p>   fire with probability p (deterministic RNG,
//	                     seeded by NANOBUS_FAILPOINT_SEED, default 1)
//
// When nothing is armed the entire machinery reduces to one atomic load
// per Hit, and the hot sites only run at interval/request granularity, so
// the production cost is negligible. Building with -tags nanobus_nofault
// compiles the package down to constant no-ops (faultinject_off.go).
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar arms failpoints at process start; see the package comment for the
// grammar.
const EnvVar = "NANOBUS_FAILPOINTS"

// EnvSeed seeds the deterministic RNG behind prob= triggers (default 1).
const EnvSeed = "NANOBUS_FAILPOINT_SEED"

// ErrInjected is wrapped by every error a failpoint injects; test with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected failure")

type action int

const (
	actError action = iota
	actPanic
	actSleep
	actTruncate
)

// failpoint is one armed site specification.
type failpoint struct {
	name  string
	act   action
	sleep time.Duration
	keep  int // truncate: bytes to keep
	// triggers; zero values mean "fire always".
	nth   uint64
	after uint64
	prob  float64
	hasP  bool
	hits  atomic.Uint64
}

var (
	mu     sync.Mutex
	points map[string]*failpoint
	rng    *rand.Rand
	// armed counts active failpoints so Hit's fast path is one atomic load.
	armed atomic.Int32
)

func init() {
	points = make(map[string]*failpoint)
	seed := int64(1)
	if v := os.Getenv(EnvSeed); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			seed = n
		}
	}
	rng = rand.New(rand.NewSource(seed))
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := SetAll(spec); err != nil {
			// A malformed env spec must be loud: silently running without
			// the requested chaos would make a chaos run vacuously green.
			fmt.Fprintf(os.Stderr, "faultinject: %s: %v\n", EnvVar, err)
		}
	}
}

// Active reports whether any failpoint is armed. Call sites may use it to
// skip preparing arguments; Hit itself already takes the same fast path.
func Active() bool { return armed.Load() > 0 }

// SetAll arms every failpoint of a semicolon-separated name=spec list.
func SetAll(list string) error {
	for _, entry := range strings.Split(list, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("faultinject: entry %q is not name=spec", entry)
		}
		if err := Set(name, spec); err != nil {
			return err
		}
	}
	return nil
}

// Set arms the named failpoint with a spec (see the package comment for
// the grammar). Re-arming replaces the previous spec and resets the hit
// counter.
func Set(name, spec string) error {
	fp := &failpoint{name: name}
	parts := strings.Split(spec, ",")
	actTok := strings.TrimSpace(parts[0])
	actName, param, _ := strings.Cut(actTok, "=")
	switch actName {
	case "error":
		fp.act = actError
	case "panic":
		fp.act = actPanic
	case "sleep":
		d, err := time.ParseDuration(param)
		if err != nil {
			return fmt.Errorf("faultinject: %s: bad sleep duration %q: %w", name, param, err)
		}
		fp.act, fp.sleep = actSleep, d
	case "truncate":
		n, err := strconv.Atoi(param)
		if err != nil || n < 0 {
			return fmt.Errorf("faultinject: %s: bad truncate size %q", name, param)
		}
		fp.act, fp.keep = actTruncate, n
	default:
		return fmt.Errorf("faultinject: %s: unknown action %q", name, actName)
	}
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return fmt.Errorf("faultinject: %s: bad modifier %q", name, mod)
		}
		switch key {
		case "nth":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("faultinject: %s: bad nth %q", name, val)
			}
			fp.nth = n
		case "after":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("faultinject: %s: bad after %q", name, val)
			}
			fp.after = n
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("faultinject: %s: bad prob %q", name, val)
			}
			fp.prob, fp.hasP = p, true
		default:
			return fmt.Errorf("faultinject: %s: unknown modifier %q", name, key)
		}
	}
	mu.Lock()
	if _, existed := points[name]; !existed {
		armed.Add(1)
	}
	points[name] = fp
	mu.Unlock()
	return nil
}

// Clear disarms the named failpoint.
func Clear(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Hits returns how many times the named failpoint site has been reached
// since it was armed (whether or not it fired).
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if fp, ok := points[name]; ok {
		return fp.hits.Load()
	}
	return 0
}

// lookup returns the armed failpoint and whether its trigger fires for
// this hit.
func lookup(name string) (*failpoint, bool) {
	mu.Lock()
	defer mu.Unlock()
	fp, ok := points[name]
	if !ok {
		return nil, false
	}
	n := fp.hits.Add(1)
	switch {
	case fp.nth != 0 && n != fp.nth:
		return fp, false
	case fp.after != 0 && n <= fp.after:
		return fp, false
	case fp.hasP && rng.Float64() >= fp.prob:
		return fp, false
	}
	return fp, true
}

// Hit evaluates the named failpoint: it returns nil when nothing is armed
// or the trigger does not fire, returns an ErrInjected-wrapped error for
// error actions, sleeps (then returns nil) for sleep actions, and panics
// for panic actions. Truncate actions are inert here (use Truncate).
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	fp, fire := lookup(name)
	if !fire {
		return nil
	}
	switch fp.act {
	case actError:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	case actPanic:
		//nanolint:ignore libpanic the panic IS the injected fault; chaos tests arm it deliberately
		panic("faultinject: injected panic at " + name)
	case actSleep:
		time.Sleep(fp.sleep)
	}
	return nil
}

// Truncate evaluates a truncate-action failpoint against b: when armed and
// firing it returns b shortened to the configured keep length; otherwise b
// unchanged. Corrupting a checkpoint on its way to disk is the canonical
// use.
func Truncate(name string, b []byte) []byte {
	if armed.Load() == 0 {
		return b
	}
	fp, fire := lookup(name)
	if !fire || fp.act != actTruncate || fp.keep >= len(b) {
		return b
	}
	return b[:fp.keep]
}

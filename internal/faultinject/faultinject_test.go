//go:build !nanobus_nofault

package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestHitDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
	if Active() {
		t.Fatal("Active with nothing armed")
	}
}

func TestErrorAction(t *testing.T) {
	defer Reset()
	if err := Set("a", "error"); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("not Active after Set")
	}
	if err := Hit("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if err := Hit("b"); err != nil {
		t.Fatalf("unarmed name injected: %v", err)
	}
	Clear("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("cleared failpoint still injects: %v", err)
	}
}

func TestNthAndAfterTriggers(t *testing.T) {
	defer Reset()
	if err := Set("nth", "error,nth=3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Hit("nth")
		if (i == 3) != (err != nil) {
			t.Fatalf("nth=3: hit %d -> %v", i, err)
		}
	}
	if Hits("nth") != 5 {
		t.Fatalf("Hits = %d, want 5", Hits("nth"))
	}
	if err := Set("after", "error,after=2"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		err := Hit("after")
		if (i > 2) != (err != nil) {
			t.Fatalf("after=2: hit %d -> %v", i, err)
		}
	}
}

func TestSleepAction(t *testing.T) {
	defer Reset()
	if err := Set("slow", "sleep=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep failpoint returned after %v", d)
	}
}

func TestTruncateAction(t *testing.T) {
	defer Reset()
	if err := Set("trunc", "truncate=4,nth=2"); err != nil {
		t.Fatal(err)
	}
	b := []byte("12345678")
	if got := Truncate("trunc", b); len(got) != 8 {
		t.Fatalf("first hit truncated to %d bytes", len(got))
	}
	if got := Truncate("trunc", b); len(got) != 4 {
		t.Fatalf("second hit kept %d bytes, want 4", len(got))
	}
	// Hit on a truncate action is inert.
	if err := Set("trunc2", "truncate=1"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("trunc2"); err != nil {
		t.Fatalf("Hit on truncate action = %v", err)
	}
}

func TestProbDeterministic(t *testing.T) {
	defer Reset()
	if err := Set("p", "error,prob=0.5"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 1000; i++ {
		if Hit("p") != nil {
			fired++
		}
	}
	if fired < 400 || fired > 600 {
		t.Fatalf("prob=0.5 fired %d/1000", fired)
	}
}

func TestSetAllAndSpecErrors(t *testing.T) {
	defer Reset()
	if err := SetAll("x=error,nth=1; y=sleep=5ms"); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("SetAll armed nothing")
	}
	for _, bad := range []string{
		"frob", "sleep=notaduration", "truncate=-1", "error,nth=0",
		"error,prob=2", "error,bogus=1", "error,nth",
	} {
		if err := Set("bad", bad); err == nil {
			t.Errorf("Set(%q) accepted a malformed spec", bad)
		}
	}
	if err := SetAll("no-equals-here"); err == nil {
		t.Error("SetAll accepted an entry without name=spec")
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	if err := Set("boom", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	_ = Hit("boom")
}

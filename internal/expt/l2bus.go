package expt

import (
	"fmt"

	"nanobus/internal/cache"
	"nanobus/internal/core"
	"nanobus/internal/itrs"
	"nanobus/internal/workload"
)

// L2BusResult is the extension experiment the paper's generality claim
// invites ("our model can be used to study energy and thermal
// characteristics of any bus ... routed in the upper metal layers"): the
// L1-to-L2 address bus, whose traffic is the L1 miss/writeback stream of
// the Sec. 5.1 cache hierarchy.
type L2BusResult struct {
	Benchmark string
	Node      string
	Cycles    uint64
	// L2BusEnergy is the energy of the L1->L2 address bus (J).
	L2BusEnergy float64
	// DABusEnergy and IABusEnergy are the processor-side buses over the
	// same window, for comparison.
	DABusEnergy, IABusEnergy float64
	// Duty is the fraction of cycles the L2 bus carries an address.
	Duty float64
	// DL1MissRate and IL1MissRate summarize the hierarchy behaviour.
	DL1MissRate, IL1MissRate float64
}

// L2BusOptions configure the study.
type L2BusOptions struct {
	// Cycles is the measured window; zero means 2,000,000.
	Cycles uint64
	// Node defaults to 130 nm.
	Node itrs.Node
	// Benchmark defaults to mcf (the heaviest miss stream).
	Benchmark string
}

// L2Bus runs a benchmark through the paper's cache hierarchy and drives
// three bus simulators: the two processor-to-L1 address buses and the
// L1-to-L2 address bus fed by the miss/writeback stream.
func L2Bus(opts L2BusOptions) (*L2BusResult, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 2_000_000
	}
	node := opts.Node
	if node.Name == "" {
		node = itrs.N130
	}
	benchName := opts.Benchmark
	if benchName == "" {
		benchName = "mcf"
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, err
	}
	h, err := cache.NewPaperHierarchy()
	if err != nil {
		return nil, err
	}
	mk := func() (*core.Simulator, error) {
		return core.New(core.Config{Node: node, CouplingDepth: -1, DropSamples: true})
	}
	ia, err := mk()
	if err != nil {
		return nil, err
	}
	da, err := mk()
	if err != nil {
		return nil, err
	}
	l2, err := mk()
	if err != nil {
		return nil, err
	}

	// Collect the L2-bound block addresses emitted during each cycle.
	var pending []uint32
	hook := func(blockAddr uint32, write bool) {
		pending = append(pending, blockAddr)
	}
	h.IL1.MissHook = hook
	h.DL1.MissHook = hook

	var driven uint64
	for n := uint64(0); n < cycles; n++ {
		c, ok := src.Next()
		if !ok {
			return nil, fmt.Errorf("expt: %s trace ended after %d cycles", benchName, n)
		}
		pending = pending[:0]
		if c.IValid {
			ia.StepWord(c.IAddr)
			h.Fetch(c.IAddr)
		} else {
			ia.StepIdle()
		}
		if c.DValid {
			da.StepWord(c.DAddr)
			if c.DStore {
				h.Store(c.DAddr)
			} else {
				h.Load(c.DAddr)
			}
		} else {
			da.StepIdle()
		}
		// The L2 bus carries (at most) one address per cycle; queued
		// block addresses from multi-transfer cycles drain on later idle
		// cycles — a single-channel bus, like the paper's setup.
		if len(pending) > 0 {
			l2.StepWord(pending[0])
			driven++
		} else {
			l2.StepIdle()
		}
	}
	for _, sim := range []*core.Simulator{ia, da, l2} {
		if err := sim.Finish(); err != nil {
			return nil, err
		}
	}

	return &L2BusResult{
		Benchmark:   benchName,
		Node:        node.Name,
		Cycles:      cycles,
		L2BusEnergy: l2.TotalEnergy().Total(),
		DABusEnergy: da.TotalEnergy().Total(),
		IABusEnergy: ia.TotalEnergy().Total(),
		Duty:        float64(driven) / float64(cycles),
		DL1MissRate: h.DL1.Stats().MissRate(),
		IL1MissRate: h.IL1.Stats().MissRate(),
	}, nil
}

// SubstrateResult is the combined substrate-variation extension (the
// paper's Sec. 6 future work): wire temperatures when the substrate swings
// by ±SwingK with the given period while the bus switches.
type SubstrateResult struct {
	Benchmark string
	// MaxTempFixed is the peak wire temperature with a constant ambient.
	MaxTempFixed float64
	// MaxTempVarying is the peak with the swinging substrate.
	MaxTempVarying float64
	// SwingK is the applied half-amplitude.
	SwingK float64
}

// Substrate runs the same workload window twice — constant ambient vs a
// square-wave ambient of half-amplitude swingK toggling every periodCycles
// — and reports the peak wire temperatures.
func Substrate(benchName string, node itrs.Node, cycles, periodCycles uint64, swingK float64) (*SubstrateResult, error) {
	if benchName == "" {
		benchName = "swim"
	}
	if node.Name == "" {
		node = itrs.N130
	}
	if cycles == 0 {
		cycles = 4_000_000
	}
	if periodCycles == 0 {
		periodCycles = 1_000_000
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	run := func(vary bool) (float64, error) {
		src, err := b.NewWarmSource(b.WarmupCycles)
		if err != nil {
			return 0, err
		}
		sim, err := core.New(core.Config{Node: node, CouplingDepth: -1, DropSamples: true})
		if err != nil {
			return 0, err
		}
		base := sim.Network().Ambient()
		peak := 0.0
		var n uint64
		for n < cycles {
			c, ok := src.Next()
			if !ok {
				return 0, fmt.Errorf("trace ended")
			}
			if c.DValid {
				sim.StepWord(c.DAddr)
			} else {
				sim.StepIdle()
			}
			n++
			if vary && n%periodCycles == 0 {
				// Warm half-cycle first, so the peak-vs-fixed comparison
				// sees the +swing phase within short windows too.
				half := (n / periodCycles) % 2
				amb := base - swingK
				if half == 1 {
					amb = base + swingK
				}
				if err := sim.Network().SetAmbient(amb); err != nil {
					return 0, err
				}
			}
			if n%100_000 == 0 {
				if t, _ := sim.Network().MaxTemp(); t > peak {
					peak = t
				}
			}
		}
		if err := sim.Finish(); err != nil {
			return 0, err
		}
		if t, _ := sim.Network().MaxTemp(); t > peak {
			peak = t
		}
		return peak, nil
	}
	fixed, err := run(false)
	if err != nil {
		return nil, err
	}
	varying, err := run(true)
	if err != nil {
		return nil, err
	}
	return &SubstrateResult{
		Benchmark:      benchName,
		MaxTempFixed:   fixed,
		MaxTempVarying: varying,
		SwingK:         swingK,
	}, nil
}

package expt

import (
	"testing"

	"nanobus/internal/itrs"
)

// TestFig3CacheBitIdentical requires cache reuse to be invisible in the
// results: a cold shared-cache call, a warm shared-cache call, and a
// nil-cache call must produce identical cells.
func TestFig3CacheBitIdentical(t *testing.T) {
	opts := Fig3Options{
		Cycles:     30_000,
		Benchmarks: []string{"eon", "swim"},
		Nodes:      []itrs.Node{itrs.N130},
		Schemes:    []string{"BI", "Unencoded"},
		Workers:    2,
	}
	ref, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSweepCache()
	opts.Cache = cache
	for _, phase := range []string{"cold", "warm"} {
		cells, err := Fig3(opts)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if len(cells) != len(ref) {
			t.Fatalf("%s: %d cells, want %d", phase, len(cells), len(ref))
		}
		for i := range ref {
			if cells[i] != ref[i] {
				t.Fatalf("%s cell %d: %+v != %+v", phase, i, cells[i], ref[i])
			}
		}
	}
}

// TestFig4CacheBitIdentical checks the same for the transient study.
func TestFig4CacheBitIdentical(t *testing.T) {
	opts := Fig4Options{
		Cycles:         120_000,
		IntervalCycles: 20_000,
		Benchmarks:     []string{"swim"},
	}
	ref, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = NewSweepCache()
	for _, phase := range []string{"cold", "warm"} {
		series, err := Fig4(opts)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if len(series) != len(ref) {
			t.Fatalf("%s: %d series, want %d", phase, len(series), len(ref))
		}
		for i := range ref {
			if len(series[i].Samples) != len(ref[i].Samples) {
				t.Fatalf("%s series %d: %d samples, want %d", phase, i,
					len(series[i].Samples), len(ref[i].Samples))
			}
			for j := range ref[i].Samples {
				if series[i].Samples[j].Energy != ref[i].Samples[j].Energy ||
					series[i].Samples[j].MaxTemp != ref[i].Samples[j].MaxTemp {
					t.Fatalf("%s series %d sample %d differs", phase, i, j)
				}
			}
			if series[i].Energy != ref[i].Energy || series[i].MaxTemp != ref[i].MaxTemp {
				t.Fatalf("%s series %d summary differs", phase, i)
			}
		}
	}
}

// TestFig3WarmCacheAllocs is the sweep alloc regression gate: with a warm
// cache every simulator and tape is reused, so a whole Fig. 3 sweep
// allocates only scheduling scraps and result slices — orders of
// magnitude below the tens of thousands of allocations the uncached
// sweep paid per call.
func TestFig3WarmCacheAllocs(t *testing.T) {
	opts := Fig3Options{
		Cycles:     20_000,
		Benchmarks: []string{"eon", "swim"},
		Nodes:      []itrs.Node{itrs.N130},
		Workers:    1,
		Cache:      NewSweepCache(),
	}
	if _, err := Fig3(opts); err != nil { // warm the cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Fig3(opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 500 {
		t.Errorf("warm-cache Fig3 sweep allocates %v objects, want <= 500", allocs)
	}
}

// TestFig3WarmCacheAllocsFlatAcrossWorkers pins the scoped sim pools: a
// warm parallel sweep must not allocate much more than the serial one.
// Before scoping, concurrent same-config jobs swapped simulators between
// calls and every swap retrained a transition memo, so warm allocs grew
// roughly 10x from one worker to four.
func TestFig3WarmCacheAllocsFlatAcrossWorkers(t *testing.T) {
	measure := func(workers int) float64 {
		opts := Fig3Options{
			Cycles:     20_000,
			Benchmarks: []string{"eon", "swim"},
			Nodes:      []itrs.Node{itrs.N130},
			Workers:    workers,
			Cache:      NewSweepCache(),
		}
		if _, err := Fig3(opts); err != nil { // warm the cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := Fig3(opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	serial, parallel4 := measure(1), measure(4)
	// Goroutine spin-up costs a handful of allocations per worker; memo
	// retraining costs thousands. The bound separates the two regimes.
	if parallel4 > 2*serial+300 {
		t.Errorf("warm Fig3 sweep allocates %v objects at 4 workers vs %v serial; want flat", parallel4, serial)
	}
}

// Package expt contains one driver per table and figure of the paper's
// evaluation, mapping each onto the library's modules (see DESIGN.md's
// experiment index). Every driver returns plain data rows; rendering to
// text/CSV lives in print.go so the CLI, benchmarks, and tests share the
// same computations.
package expt

import (
	"nanobus/internal/itrs"
	"nanobus/internal/repeater"
	"nanobus/internal/thermal"
)

// Table1Row reproduces one column of the paper's Table 1 plus the derived
// quantities the models compute from it (repeater plan, thermal
// resistances, inter-layer rise).
type Table1Row struct {
	Node itrs.Node
	// Repeater plan for the default 10 mm line.
	Repeater repeater.Plan
	// RVertical and RLateral are the Eq. 6 / Sec. 4.1.1 thermal
	// resistances (K*m/W).
	RVertical, RLateral float64
	// HeatCapacity is the per-wire thermal capacitance (J/(K*m)) with the
	// default dielectric heat mass.
	HeatCapacity float64
	// TimeConstantMS is RVertical*HeatCapacity in milliseconds.
	TimeConstantMS float64
	// InterLayerRise is the Eq. 7 Δθ in kelvin.
	InterLayerRise float64
	// RecomputedRWire is rho*l/(w*t), which should agree with the table's
	// rwire.
	RecomputedRWire float64
}

// Table1 computes the rows for all (or the given) nodes.
func Table1(nodes ...itrs.Node) ([]Table1Row, error) {
	if len(nodes) == 0 {
		nodes = itrs.Nodes()
	}
	rows := make([]Table1Row, 0, len(nodes))
	for _, n := range nodes {
		if err := n.Validate(); err != nil {
			return nil, err
		}
		plan, err := repeater.InsertDefault(n, 0.01)
		if err != nil {
			return nil, err
		}
		g := thermal.NodeGeometry(n)
		rv, err := g.VerticalResistance()
		if err != nil {
			return nil, err
		}
		rl, err := g.LateralResistance()
		if err != nil {
			return nil, err
		}
		hc := g.HeatCapacity(thermal.HeatCapacityOptions{
			ExtraDielectricArea: thermal.DefaultExtraDielectricArea,
		})
		rows = append(rows, Table1Row{
			Node:            n,
			Repeater:        plan,
			RVertical:       rv,
			RLateral:        rl,
			HeatCapacity:    hc,
			TimeConstantMS:  rv * hc * 1e3,
			InterLayerRise:  thermal.InterLayerRise(n),
			RecomputedRWire: n.ResistancePerMeter(),
		})
	}
	return rows, nil
}

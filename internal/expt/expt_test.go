package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestTable1Rows(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		// Table rwire and rho/(w*t) must agree within 15% (the paper's
		// effective resistivity assumption).
		rel := math.Abs(r.RecomputedRWire-r.Node.RWire) / r.Node.RWire
		if rel > 0.15 {
			t.Errorf("%s: recomputed rwire off by %.1f%%", r.Node.Name, 100*rel)
		}
		if r.Repeater.Crep <= 0 || r.RVertical <= 0 || r.RLateral <= 0 {
			t.Errorf("%s: non-positive derived values: %+v", r.Node.Name, r)
		}
		// Crep ~ 0.756 * Cint * L.
		want := math.Sqrt(0.4/0.7) * r.Node.CTotal() * 0.01
		if math.Abs(r.Repeater.Crep-want) > 1e-9*want {
			t.Errorf("%s: Crep = %g, want %g", r.Node.Name, r.Repeater.Crep, want)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"130nm", "45nm", "c_line", "Δθ"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestFig1BShape(t *testing.T) {
	if testing.Short() {
		t.Skip("BEM extraction")
	}
	rows, err := Fig1B(Fig1BOptions{Wires: 11, PanelsPerEdge: 4}, itrs.N130, itrs.N45)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		na := r.Dist.NonAdjacentFrac()
		if na < 0.02 || na > 0.2 {
			t.Errorf("%s: non-adjacent %.3f outside plausible band", r.Node.Name, na)
		}
	}
	// Paper: the non-adjacent share decreases slightly with scaling.
	if rows[1].Dist.NonAdjacentFrac() > rows[0].Dist.NonAdjacentFrac() {
		t.Errorf("non-adjacent share grew with scaling: %.3f -> %.3f",
			rows[0].Dist.NonAdjacentFrac(), rows[1].Dist.NonAdjacentFrac())
	}
	var buf bytes.Buffer
	PrintFig1B(&buf, rows)
	if !strings.Contains(buf.String(), "Cgnd%") {
		t.Error("Fig1B output missing header")
	}
}

func TestSec33Numbers(t *testing.T) {
	rows, err := Sec33(Sec33Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// Underestimate must be in the several-percent range the paper
		// reports (6.6% at 130 nm with FastCap's matrix; our BEM decay
		// gives a nearby figure) and roughly node-independent.
		if r.MiddleUnderestimatePct < 2 || r.MiddleUnderestimatePct > 12 {
			t.Errorf("%s: underestimate %.2f%% outside [2,12]", r.Node.Name, r.MiddleUnderestimatePct)
		}
		if i > 0 {
			d := math.Abs(r.MiddleUnderestimatePct - rows[0].MiddleUnderestimatePct)
			if d > 2 {
				t.Errorf("underestimate varies too much across nodes: %.2f vs %.2f",
					r.MiddleUnderestimatePct, rows[0].MiddleUnderestimatePct)
			}
		}
		// Alternating pattern is the total-energy worst case.
		if r.EnergyWorstTotal <= r.ThermalWorstTotal {
			t.Errorf("%s: alternating total %.3g <= centre-dip total %.3g",
				r.Node.Name, r.EnergyWorstTotal, r.ThermalWorstTotal)
		}
		// Centre-dip concentrates energy in the middle wire.
		if r.MiddleShareThermalWorst <= r.MiddleShareEnergyWorst {
			t.Errorf("%s: no concentration: dip share %.4f <= alt share %.4f",
				r.Node.Name, r.MiddleShareThermalWorst, r.MiddleShareEnergyWorst)
		}
	}
	if _, err := Sec33(Sec33Options{Wires: 2}); err == nil {
		t.Error("2-wire sec33 accepted")
	}
	var buf bytes.Buffer
	PrintSec33(&buf, rows)
	if !strings.Contains(buf.String(), "underestimate") {
		t.Error("Sec33 output missing header")
	}
}

func TestFig3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	cells, err := Fig3(Fig3Options{
		Cycles:     150_000,
		Benchmarks: []string{"crafty", "swim"},
		Nodes:      []itrs.Node{itrs.N130},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks x 1 node x 4 schemes x 2 buses + 8 means = 24.
	if len(cells) != 24 {
		t.Fatalf("%d cells, want 24", len(cells))
	}
	byKey := map[string]Fig3Cell{}
	for _, c := range cells {
		byKey[c.Bus+"/"+c.Scheme+"/"+c.Benchmark] = c
		if !(c.Self <= c.NN && c.NN <= c.All) {
			t.Errorf("variant ordering violated in %+v", c)
		}
		if c.All <= 0 {
			t.Errorf("zero energy in %+v", c)
		}
	}
	// Paper finding (e): encodings on the IA bus are ineffective — within
	// a few percent of unencoded, never dramatically better.
	un := byKey["IA/Unencoded/mean"].All
	for _, scheme := range []string{"BI", "OEBI", "CBI"} {
		enc := byKey["IA/"+scheme+"/mean"].All
		if enc < 0.9*un {
			t.Errorf("%s on IA improved energy by >10%% (%.3g vs %.3g), contradicting the paper's finding",
				scheme, enc, un)
		}
	}
	var buf bytes.Buffer
	PrintFig3(&buf, MeanCells(cells))
	if !strings.Contains(buf.String(), "Unencoded") {
		t.Error("Fig3 output missing scheme")
	}
}

func TestFig4SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	series, err := Fig4(Fig4Options{
		Cycles:         600_000,
		IntervalCycles: 50_000,
		Benchmarks:     []string{"eon"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series, want 2 (DA+IA)", len(series))
	}
	for _, s := range series {
		if len(s.Samples) != 12 {
			t.Errorf("%s: %d samples, want 12", s.Bus, len(s.Samples))
		}
		last := s.Samples[len(s.Samples)-1]
		if last.AvgTemp <= units.AmbientK {
			t.Errorf("%s: no temperature rise (%.3f K)", s.Bus, last.AvgTemp)
		}
	}
	// Drift metric: both buses warm from ambient, so the drift is
	// positive, and an empty series drifts zero.
	for _, s := range series {
		if s.MaxTempDrift() <= 0 {
			t.Errorf("%s: drift %g, want > 0 during warm-up", s.Bus, s.MaxTempDrift())
		}
	}
	if (Fig4Series{}).MaxTempDrift() != 0 {
		t.Error("empty series drift != 0")
	}

	var buf bytes.Buffer
	PrintFig4Summary(&buf, series)
	if !strings.Contains(buf.String(), "eon") {
		t.Error("Fig4 summary missing benchmark")
	}
	buf.Reset()
	if err := WriteFig4CSV(&buf, series[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycle,interval_energy_j") {
		t.Error("CSV missing header")
	}
}

func TestFig5SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	res, err := Fig5(Fig5Options{
		Cycles:         3_000_000,
		IdleStart:      1_500_000,
		IdleLength:     500_000,
		IntervalCycles: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TempBeforeIdle == 0 || res.TempAfterIdle == 0 {
		t.Fatal("idle window brackets not found")
	}
	// The Fig. 5 property: no appreciable cooling across the idle gap.
	rise := res.TempBeforeIdle - units.AmbientK
	if rise <= 0 {
		t.Fatal("no rise before the idle window")
	}
	if res.DropK > 0.15*rise {
		t.Errorf("idle gap cooled by %.4f K of a %.4f K rise (>15%%)", res.DropK, rise)
	}
	// Invalid window rejected.
	if _, err := Fig5(Fig5Options{Cycles: 100, IdleStart: 50, IdleLength: 100}); err == nil {
		t.Error("overlong idle window accepted")
	}
}

func TestFig3UnknownBenchmark(t *testing.T) {
	if _, err := Fig3(Fig3Options{Benchmarks: []string{"gcc"}, Cycles: 10}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Fig4(Fig4Options{Benchmarks: []string{"gcc"}, Cycles: 10}); err == nil {
		t.Error("unknown benchmark accepted by Fig4")
	}
	if _, err := Fig5(Fig5Options{Benchmark: "gcc", Cycles: 1000, IdleStart: 10, IdleLength: 10}); err == nil {
		t.Error("unknown benchmark accepted by Fig5")
	}
}

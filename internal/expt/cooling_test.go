package expt

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
)

// TestCoolingCellDefendsCeiling runs one self-calibrated cell and checks
// the headline claims: the derived ceiling is defended by the controller,
// exceeded by the static base encoder, reached through at least one
// switch, and paid for with at most 15% bandwidth overhead.
func TestCoolingCellDefendsCeiling(t *testing.T) {
	opts := CoolingOptions{
		Cycles:         2_000_000,
		IntervalCycles: 100_000,
		Nodes:          []itrs.Node{itrs.N45},
		Benchmarks:     []string{"mcf"},
	}
	cells, err := Cooling(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if !c.Defended {
		t.Errorf("ceiling %.6f K not defended: adaptive peak %.6f K", c.CeilingK, c.PeakAdaptiveK)
	}
	if !c.BaseExceeds {
		t.Errorf("static %s peak %.6f K does not exceed the ceiling %.6f K", c.Base, c.PeakBaseK, c.CeilingK)
	}
	if len(c.Switches) == 0 {
		t.Error("no encoder switch recorded")
	}
	if c.OverheadPct > 15 {
		t.Errorf("bandwidth overhead %.1f%% > 15%%", c.OverheadPct)
	}
	var occ uint64
	for _, o := range c.Occupancy {
		occ += o.Cycles
	}
	if occ != opts.Cycles {
		t.Errorf("occupancy covers %d cycles, want %d", occ, opts.Cycles)
	}

	// The derivation is deterministic: a second run agrees bit for bit.
	again, err := Cooling(opts)
	if err != nil {
		t.Fatal(err)
	}
	c2 := again[0]
	if math.Float64bits(c2.CeilingK) != math.Float64bits(c.CeilingK) ||
		math.Float64bits(c2.PeakAdaptiveK) != math.Float64bits(c.PeakAdaptiveK) {
		t.Errorf("re-run derived a different cell: %.17g/%.17g vs %.17g/%.17g",
			c2.CeilingK, c2.PeakAdaptiveK, c.CeilingK, c.PeakAdaptiveK)
	}
	if len(c2.Switches) != len(c.Switches) {
		t.Fatalf("re-run switch count %d, want %d", len(c2.Switches), len(c.Switches))
	}
	for i := range c.Switches {
		a, b := c.Switches[i], c2.Switches[i]
		if a.Cycle != b.Cycle || a.From != b.From || a.To != b.To ||
			math.Float64bits(a.TempK) != math.Float64bits(b.TempK) {
			t.Errorf("switch %d differs across runs: %+v vs %+v", i, a, b)
		}
	}
}

// TestCoolingMultiBusLeg exercises the K-bus static comparison: the cool
// scheme's grid peak must not exceed the base scheme's.
func TestCoolingMultiBusLeg(t *testing.T) {
	cells, err := Cooling(CoolingOptions{
		Cycles:         600_000,
		IntervalCycles: 100_000,
		Nodes:          []itrs.Node{itrs.N45},
		Benchmarks:     []string{"mcf"},
		Buses:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	leg := cells[0].MultiBus
	if leg == nil || leg.Buses != 3 {
		t.Fatalf("multi-bus leg missing: %+v", leg)
	}
	if leg.PeakBaseK <= 0 || leg.PeakCoolK <= 0 {
		t.Fatalf("degenerate grid peaks: %+v", leg)
	}
	if leg.PeakCoolK > leg.PeakBaseK {
		t.Errorf("cool scheme grid peak %.6f K above base %.6f K", leg.PeakCoolK, leg.PeakBaseK)
	}
}

package expt

import (
	"fmt"

	"nanobus/internal/core"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
	"nanobus/internal/units"
	"nanobus/internal/workload"
)

// BaselineComparison contrasts the paper's dynamic per-line thermal model
// against the two prior-art approaches it criticises (Sec. 1-2):
//
//   - the worst-case model of Chiang & Saraswat [6] / Banerjee [2], which
//     assumes every wire carries the maximum RMS current density jmax, and
//   - the average-activity model of Huang et al. [8], which converts a
//     single average switching factor into a steady-state temperature.
//
// The paper's argument is quantitative: the worst-case model grossly
// overestimates signal-line temperatures (forcing oversized safety
// margins and packaging cost), while activity averaging misses the
// per-wire spread that drives electromigration. Both effects are measured
// here on a real trace.
type BaselineComparison struct {
	Benchmark string
	Node      string
	Cycles    uint64
	// DynamicMaxTemp is the hottest wire temperature reached by the
	// paper's model during the run (K).
	DynamicMaxTemp float64
	// DynamicAvgTemp is the average wire temperature at run end.
	DynamicAvgTemp float64
	// DynamicSpread is the hottest-minus-coolest wire gap at run end.
	DynamicSpread float64
	// AvgActivityTemp is the Huang-style steady state: run-average bus
	// power spread uniformly over the wires.
	AvgActivityTemp float64
	// WorstCaseTemp is the Chiang-style steady state with every wire at
	// jmax.
	WorstCaseTemp float64
}

// Baselines runs the comparison for one benchmark's DA bus.
func Baselines(benchName string, node itrs.Node, cycles uint64) (*BaselineComparison, error) {
	if benchName == "" {
		benchName = "swim"
	}
	if node.Name == "" {
		node = itrs.N130
	}
	if cycles == 0 {
		cycles = 4_000_000
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, err
	}
	sim, err := core.New(core.Config{Node: node, CouplingDepth: -1, DropSamples: true})
	if err != nil {
		return nil, err
	}
	n, err := core.RunSingle(src, sim, "da", cycles)
	if err != nil {
		return nil, err
	}
	if n < cycles {
		return nil, fmt.Errorf("expt: %s trace ended after %d cycles", benchName, n)
	}

	out := &BaselineComparison{Benchmark: benchName, Node: node.Name, Cycles: n}
	temps := sim.Temps()
	minT := temps[0]
	for _, t := range temps {
		if t > out.DynamicMaxTemp {
			out.DynamicMaxTemp = t
		}
		if t < minT {
			minT = t
		}
		out.DynamicAvgTemp += t
	}
	out.DynamicAvgTemp /= float64(len(temps))
	out.DynamicSpread = out.DynamicMaxTemp - minT

	// Huang-style: run-average total power, uniform across wires, at
	// steady state.
	wallTime := float64(n) * node.CyclePeriod()
	avgPowerPerWire := sim.TotalEnergy().Total() / wallTime / float64(sim.Width()) / core.DefaultLength
	uniform := make([]float64, sim.Width())
	for i := range uniform {
		uniform[i] = avgPowerPerWire
	}
	ss, err := sim.Network().SteadyState(uniform)
	if err != nil {
		return nil, err
	}
	out.AvgActivityTemp = ss[len(ss)/2]

	// Chiang-style: every wire at jmax forever.
	pMax := node.JMax * node.JMax * units.RhoCopper * node.WireWidth * node.WireThickness
	worst := make([]float64, sim.Width())
	for i := range worst {
		worst[i] = pMax
	}
	ws, err := sim.Network().SteadyState(worst)
	if err != nil {
		return nil, err
	}
	out.WorstCaseTemp = ws[len(ws)/2]
	return out, nil
}

// NewThermalForBaselines builds a fresh network matching the comparison's
// configuration (exported for tests that probe the steady-state helpers).
func NewThermalForBaselines(node itrs.Node, wires int) (*thermal.Network, error) {
	return thermal.NewFromNode(node, wires, thermal.NodeOptions{})
}

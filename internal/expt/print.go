package expt

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"nanobus/internal/units"
)

// PrintTable1 renders the Table 1 reproduction.
func PrintTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "parameter\t"+strings.Join(nodeNames(rows), "\t"))
	p := func(label, format string, f func(Table1Row) interface{}) {
		cells := make([]string, len(rows))
		for i, r := range rows {
			cells[i] = fmt.Sprintf(format, f(r))
		}
		fmt.Fprintln(tw, label+"\t"+strings.Join(cells, "\t"))
	}
	p("metal layers", "%d", func(r Table1Row) interface{} { return r.Node.MetalLayers })
	p("wire width (nm)", "%.0f", func(r Table1Row) interface{} { return r.Node.WireWidth / units.Nano })
	p("wire thickness (nm)", "%.0f", func(r Table1Row) interface{} { return r.Node.WireThickness / units.Nano })
	p("ILD height (nm)", "%.0f", func(r Table1Row) interface{} { return r.Node.ILDHeight / units.Nano })
	p("eps_r", "%.1f", func(r Table1Row) interface{} { return r.Node.EpsRel })
	p("k_ild (W/mK)", "%.2f", func(r Table1Row) interface{} { return r.Node.KILD })
	p("f_clk (GHz)", "%.2f", func(r Table1Row) interface{} { return r.Node.ClockHz / units.Giga })
	p("Vdd (V)", "%.1f", func(r Table1Row) interface{} { return r.Node.Vdd })
	p("j_max (MA/cm2)", "%.2f", func(r Table1Row) interface{} { return r.Node.JMax / 1e10 })
	p("c_line (pF/m)", "%.2f", func(r Table1Row) interface{} { return r.Node.CLine / units.Pico })
	p("c_inter (pF/m)", "%.2f", func(r Table1Row) interface{} { return r.Node.CInter / units.Pico })
	p("r_wire (kΩ/m)", "%.2f", func(r Table1Row) interface{} { return r.Node.RWire / units.Kilo })
	p("r_wire recomputed (kΩ/m)", "%.2f", func(r Table1Row) interface{} { return r.RecomputedRWire / units.Kilo })
	fmt.Fprintln(tw, "derived (10 mm line)\t\t\t\t")
	p("repeater size h", "%.1f", func(r Table1Row) interface{} { return r.Repeater.SizeH })
	p("repeater count k", "%.1f", func(r Table1Row) interface{} { return r.Repeater.CountK })
	p("Crep (pF)", "%.2f", func(r Table1Row) interface{} { return r.Repeater.Crep / units.Pico })
	p("line delay (ns)", "%.2f", func(r Table1Row) interface{} { return r.Repeater.WireDelay * 1e9 })
	p("R_vert (K·m/W)", "%.2f", func(r Table1Row) interface{} { return r.RVertical })
	p("R_lat (K·m/W)", "%.2f", func(r Table1Row) interface{} { return r.RLateral })
	p("C_th (mJ/K·m)", "%.2f", func(r Table1Row) interface{} { return r.HeatCapacity * 1e3 })
	p("tau (ms)", "%.1f", func(r Table1Row) interface{} { return r.TimeConstantMS })
	p("Δθ inter-layer (K)", "%.1f", func(r Table1Row) interface{} { return r.InterLayerRise })
	return tw.Flush()
}

func nodeNames(rows []Table1Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Node.Name
	}
	return out
}

// PrintFig1B renders the capacitance-distribution table.
func PrintFig1B(w io.Writer, rows []Fig1BRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tCgnd%\tCC1%\tCC2%\tCC3%\tCCrest%\tnon-adjacent%")
	for _, r := range rows {
		d := r.Dist
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Node.Name, 100*d.CgndFrac, 100*d.CC[0], 100*d.CC[1],
			100*d.CC[2], 100*d.CCRest, 100*d.NonAdjacentFrac())
	}
	return tw.Flush()
}

// PrintSec33 renders the non-adjacent underestimation study.
func PrintSec33(w io.Writer, rows []Sec33Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tmiddle underestimate%\tE(centre-dip) J\tE(alternating) J\tmid share dip\tmid share alt")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3g\t%.3g\t%.3f\t%.3f\n",
			r.Node.Name, r.MiddleUnderestimatePct,
			r.ThermalWorstTotal, r.EnergyWorstTotal,
			r.MiddleShareThermalWorst, r.MiddleShareEnergyWorst)
	}
	return tw.Flush()
}

// PrintFig3 renders the Fig. 3 energy bars (mean rows by default; pass all
// cells to include per-benchmark detail).
func PrintFig3(w io.Writer, cells []Fig3Cell) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bus\tnode\tscheme\tbenchmark\tSelf (J)\tNN (J)\tAll (J)\tcycles")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.4g\t%.4g\t%.4g\t%d\n",
			c.Bus, c.Node, c.Scheme, c.Benchmark, c.Self, c.NN, c.All, c.Cycles)
	}
	return tw.Flush()
}

// PrintFig4Summary renders the per-series summary lines.
func PrintFig4Summary(w io.Writer, series []Fig4Series) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbus\tnode\tintervals\tmean E/interval (J)\tE fluct (cv)\tavg T final (K)\tmax T final (K)")
	for _, s := range series {
		finalAvg, finalMax := 0.0, 0.0
		if n := len(s.Samples); n > 0 {
			finalAvg = s.Samples[n-1].AvgTemp
			finalMax = s.Samples[n-1].MaxTemp
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.4g\t%.4f\t%.2f\t%.2f\n",
			s.Benchmark, s.Bus, s.Node, s.Energy.N,
			s.Energy.Mean, s.Energy.CoefficientVar, finalAvg, finalMax)
	}
	return tw.Flush()
}

// WriteFig4CSV streams one series as CSV (cycle, energy, avgK, maxK).
func WriteFig4CSV(w io.Writer, s Fig4Series) error {
	if _, err := fmt.Fprintf(w, "# %s %s bus, node %s\ncycle,interval_energy_j,avg_temp_k,max_temp_k\n",
		s.Benchmark, s.Bus, s.Node); err != nil {
		return err
	}
	for _, smp := range s.Samples {
		if _, err := fmt.Fprintf(w, "%d,%.6g,%.4f,%.4f\n",
			smp.EndCycle, smp.Energy, smp.AvgTemp, smp.MaxTemp); err != nil {
			return err
		}
	}
	return nil
}

package expt_test

import (
	"context"
	"math"
	"net"
	"net/http/httptest"
	"testing"

	"nanobus/client"
	"nanobus/internal/expt"
	"nanobus/internal/server"
)

// socService stands up one in-process nanobusd with both transports.
func socService(t *testing.T) (*client.Client, string) {
	t.Helper()
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		//nanolint:ignore droppederr the accept loop exits with net.ErrClosed on cleanup
		_ = srv.ServeNBWP(lis)
	}()
	t.Cleanup(func() {
		//nanolint:ignore droppederr test cleanup; the listener may already be closed
		_ = lis.Close()
	})
	return client.New(ts.URL, client.WithHTTPClient(ts.Client())), lis.Addr().String()
}

// TestSoCMapTransportsAgree runs the whole-SoC scenario over HTTP and
// NBWP against one server and requires bit-identical figures and frames.
func TestSoCMapTransportsAgree(t *testing.T) {
	hc, addr := socService(t)
	ctx := context.Background()
	opts := expt.SoCMapOptions{Cycles: 20_000, IntervalCycles: 5_000, Benchmark: "swim"}

	httpRes, err := expt.SoCMap(ctx, opts, expt.HTTPMapOpener(ctx, hc))
	if err != nil {
		t.Fatal(err)
	}
	nc, err := client.DialNBWP(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nbwpRes, err := expt.SoCMap(ctx, opts, expt.NBWPMapOpener(ctx, nc))
	if err != nil {
		t.Fatal(err)
	}

	for _, res := range []*expt.SoCMapResult{httpRes, nbwpRes} {
		if res.Cycles != opts.Cycles {
			t.Fatalf("ran %d cycles, want %d", res.Cycles, opts.Cycles)
		}
		if len(res.Buses) != 4 || len(res.PerBusEnergyJ) != 4 || len(res.TempsK) != 4 {
			t.Fatalf("result is not 4-bus: %+v", res.Buses)
		}
		// 4 closed intervals stream while words flow; the finish interval
		// is retained in the result, not streamed.
		if len(res.Frames) != 4 {
			t.Fatalf("%d frames, want 4", len(res.Frames))
		}
		for i, f := range res.Frames {
			if f.EndCycle != uint64(i+1)*opts.IntervalCycles {
				t.Fatalf("frame %d ends at %d", i, f.EndCycle)
			}
			for k, temps := range f.TempsK {
				if len(temps) == 0 {
					t.Fatalf("frame %d bus %d has no wire temps", i, k)
				}
			}
			if f.MaxTempK <= 0 {
				t.Fatalf("frame %d max temp %g", i, f.MaxTempK)
			}
		}
		if res.TotalEnergyJ <= 0 || res.MaxTempK <= res.AvgTempK-1e-9 {
			t.Fatalf("implausible summary: %+v", res)
		}
		// The IA bus fetches nearly every cycle; the L2 buses are sparse.
		if res.Duty[0] < res.Duty[2] || res.Duty[0] < res.Duty[3] {
			t.Fatalf("duty ordering implausible: %v", res.Duty)
		}
	}

	if math.Float64bits(httpRes.TotalEnergyJ) != math.Float64bits(nbwpRes.TotalEnergyJ) ||
		math.Float64bits(httpRes.MaxTempK) != math.Float64bits(nbwpRes.MaxTempK) {
		t.Fatalf("transports disagree: http %g/%g nbwp %g/%g",
			httpRes.TotalEnergyJ, httpRes.MaxTempK, nbwpRes.TotalEnergyJ, nbwpRes.MaxTempK)
	}
	for i := range httpRes.Frames {
		hf, nf := httpRes.Frames[i], nbwpRes.Frames[i]
		for k := range hf.TempsK {
			for j := range hf.TempsK[k] {
				if math.Float64bits(hf.TempsK[k][j]) != math.Float64bits(nf.TempsK[k][j]) {
					t.Fatalf("frame %d bus %d wire %d differs across transports", i, k, j)
				}
			}
		}
	}
}

// TestSoCMapCouplingMatters pins the banded thermal network end to end:
// severing the lateral resistance must change the map (an isolated bus
// cannot heat its neighbor), and the coupled interior buses must end no
// cooler than their isolated twins.
func TestSoCMapCouplingMatters(t *testing.T) {
	hc, _ := socService(t)
	ctx := context.Background()
	opts := expt.SoCMapOptions{Cycles: 20_000, IntervalCycles: 10_000, Benchmark: "swim"}

	coupled, err := expt.SoCMap(ctx, opts, expt.HTTPMapOpener(ctx, hc))
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableBusCoupling = true
	isolated, err := expt.SoCMap(ctx, opts, expt.HTTPMapOpener(ctx, hc))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(coupled.TotalEnergyJ) != math.Float64bits(isolated.TotalEnergyJ) {
		t.Fatalf("thermal coupling changed energy: %g vs %g", coupled.TotalEnergyJ, isolated.TotalEnergyJ)
	}
	diff := false
	for k := range coupled.TempsK {
		for j := range coupled.TempsK[k] {
			if coupled.TempsK[k][j] != isolated.TempsK[k][j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("disable_bus_coupling left the temperature map unchanged")
	}
}

package expt

import (
	"fmt"

	"nanobus/internal/capmodel"
	"nanobus/internal/energy"
	"nanobus/internal/itrs"
	"nanobus/internal/repeater"
)

// Sec33Row quantifies the Sec. 3.3 non-adjacent coupling study for one
// node: how much the middle wire's energy is underestimated when
// non-adjacent coupling capacitances are neglected, for the thermal
// worst-case pattern, and the two worst-case pattern energies.
type Sec33Row struct {
	Node itrs.Node
	// MiddleUnderestimatePct is the paper's headline number (~6.6% at
	// 130 nm): 100*(E_all - E_nn)/E_all for the middle wire of a 32-bit
	// bus under the thermal worst-case pattern (all lines rise, middle
	// falls).
	MiddleUnderestimatePct float64
	// ThermalWorstTotal is the bus energy of the centre-dip pattern
	// (up up down up up ... generalised to 32 bits), in joules.
	ThermalWorstTotal float64
	// EnergyWorstTotal is the bus energy of the alternating pattern
	// (down up down up ...), in joules.
	EnergyWorstTotal float64
	// MiddleShareThermalWorst is the middle wire's share of the bus
	// energy under the centre-dip pattern (non-uniform concentration).
	MiddleShareThermalWorst float64
	// MiddleShareEnergyWorst is the same under the alternating pattern
	// (uniform).
	MiddleShareEnergyWorst float64
}

// Sec33Options configure the study.
type Sec33Options struct {
	// Wires is the bus width; zero means 32.
	Wires int
	// Length is the bus length; zero means 10 mm.
	Length float64
}

// Sec33 runs the non-adjacent coupling underestimation study.
func Sec33(opts Sec33Options, nodes ...itrs.Node) ([]Sec33Row, error) {
	if len(nodes) == 0 {
		nodes = itrs.Nodes()
	}
	wires := opts.Wires
	if wires == 0 {
		wires = 32
	}
	if wires < 3 {
		return nil, fmt.Errorf("expt: sec33 needs >= 3 wires, got %d", wires)
	}
	length := opts.Length
	if length == 0 { //nanolint:ignore floateq zero means the option was left unset
		length = 0.01
	}
	mid := wires / 2

	rows := make([]Sec33Row, 0, len(nodes))
	for _, node := range nodes {
		caps, err := capmodel.FromNode(node, wires, capmodel.DefaultDecay(node))
		if err != nil {
			return nil, err
		}
		plan, err := repeater.InsertDefault(node, length)
		if err != nil {
			return nil, err
		}
		mk := func(c *capmodel.Matrix) (*energy.Model, error) {
			return energy.New(energy.Config{
				Caps: c, Length: length, Vdd: node.Vdd, Crep: plan.Crep,
			})
		}
		all, err := mk(caps)
		if err != nil {
			return nil, err
		}
		nn, err := mk(caps.Truncate(1))
		if err != nil {
			return nil, err
		}

		// Thermal worst case: every line rises except the middle, which
		// falls (the 32-bit generalisation of up up down up up).
		dip := ^uint64(0) >> uint(64-wires) &^ (1 << uint(mid))
		prevDip := uint64(1) << uint(mid)
		// Energy worst case: alternating toggle.
		alt := uint64(0x5555555555555555) >> uint(64-wires)
		prevAlt := ^alt & (^uint64(0) >> uint(64-wires))

		out := make([]energy.LineEnergy, wires)
		allTotDip, err := all.Transition(prevDip, dip, out)
		if err != nil {
			return nil, err
		}
		allMid := out[mid].Total()
		nnOut := make([]energy.LineEnergy, wires)
		if _, err := nn.Transition(prevDip, dip, nnOut); err != nil {
			return nil, err
		}
		nnMid := nnOut[mid].Total()

		allTotAlt, err := all.Transition(prevAlt, alt, out)
		if err != nil {
			return nil, err
		}
		altMid := out[mid].Total()

		rows = append(rows, Sec33Row{
			Node:                    node,
			MiddleUnderestimatePct:  100 * (allMid - nnMid) / allMid,
			ThermalWorstTotal:       allTotDip.Total(),
			EnergyWorstTotal:        allTotAlt.Total(),
			MiddleShareThermalWorst: allMid / allTotDip.Total(),
			MiddleShareEnergyWorst:  altMid / allTotAlt.Total(),
		})
	}
	return rows, nil
}

package expt

import (
	"fmt"
	"sync"

	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// SweepCache retains the expensive sweep inputs across driver calls:
// simulators keyed by configuration (capacitance extraction, thermal
// eigendecomposition and the transition memo survive via Reset, which is
// bit-identical to a fresh build) and compiled trace tapes keyed by
// (benchmark, bus, window length). One cache shared across Fig3/Fig4
// calls turns a repeated sweep into pure replay: no model rebuilds, no
// re-capture, no per-cycle trace dispatch. A nil cache in the drivers'
// options means a private per-call cache, which still deduplicates work
// inside the call. All methods are safe for concurrent use.
type SweepCache struct {
	mu      sync.Mutex
	sims    map[simKey][]*core.Simulator
	tapes   map[tapeKey]*core.Tape
	windows [][]trace.Cycle
}

// simKey is the pooling identity of a sweep simulator: every field that
// reaches core.Config, with zero values meaning the core defaults (nodes
// and encoders are identified by name; both registries return fixed
// configurations per name).
type simKey struct {
	node     string
	scheme   string
	lengthM  float64
	interval uint64
	depth    int
	memoLog2 int
	track    bool
	drop     bool
	// scope never reaches core.Config; it partitions otherwise identical
	// configurations by the traffic they replay (Fig3 keys on the bus,
	// Fig4 on the pair role). Without it, concurrent same-config jobs
	// swap simulators between sweep calls and each swap retrains the
	// transition memo — thousands of entry-slab allocations per call
	// that scale with the worker count instead of staying flat.
	scope string
}

// tapeKey identifies one compiled single-bus trace window.
type tapeKey struct {
	bench  string
	kind   string // "ia" or "da"
	cycles uint64
}

// NewSweepCache returns an empty cache.
func NewSweepCache() *SweepCache {
	return &SweepCache{
		sims:  map[simKey][]*core.Simulator{},
		tapes: map[tapeKey]*core.Tape{},
	}
}

// sim pops a cached simulator for k — reset, so bit-identical to a fresh
// build — or constructs one from the key.
func (c *SweepCache) sim(k simKey) (*core.Simulator, error) {
	c.mu.Lock()
	if free := c.sims[k]; len(free) > 0 {
		sim := free[len(free)-1]
		c.sims[k] = free[:len(free)-1]
		c.mu.Unlock()
		sim.Reset()
		return sim, nil
	}
	c.mu.Unlock()

	node, err := itrs.Resolve(k.node)
	if err != nil {
		return nil, err
	}
	var enc encoding.Encoder
	if k.scheme != "" {
		if enc, err = encoding.New(k.scheme); err != nil {
			return nil, err
		}
	}
	return core.New(core.Config{
		Node:           node,
		Length:         k.lengthM,
		Encoder:        enc,
		CouplingDepth:  k.depth,
		IntervalCycles: k.interval,
		TrackWireTemps: k.track,
		MemoSizeLog2:   k.memoLog2,
		DropSamples:    k.drop,
	})
}

// release shelves a simulator for reuse under its key; poisoned
// simulators are dropped.
func (c *SweepCache) release(k simKey, sim *core.Simulator) {
	if sim == nil || sim.Err() != nil {
		return
	}
	c.mu.Lock()
	c.sims[k] = append(c.sims[k], sim)
	c.mu.Unlock()
}

// window pops a pooled capture buffer (nil when the pool is empty — the
// capture path grows it to size). Buffers return through putWindow, so a
// shared cache amortises the 12-bytes/cycle capture slabs across both
// workers and sweep invocations instead of allocating one per worker per
// call.
func (c *SweepCache) window() []trace.Cycle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.windows); n > 0 {
		w := c.windows[n-1]
		c.windows = c.windows[:n-1]
		return w
	}
	return nil
}

// putWindow shelves a capture buffer for reuse.
func (c *SweepCache) putWindow(w []trace.Cycle) {
	if cap(w) == 0 {
		return
	}
	c.mu.Lock()
	c.windows = append(c.windows, w[:0])
	c.mu.Unlock()
}

// tapePair returns the benchmark's compiled IA and DA tapes for a window
// of exactly cycles cycles, capturing and compiling on miss. window is a
// reusable capture buffer: the caller passes what the previous call
// returned (nil at first), so one worker sweeping many benchmarks
// allocates the window once. Concurrent misses of the same key build
// twice and store equivalent tapes — wasteful but correct, and the
// drivers dispatch one benchmark per job so it does not happen there.
func (c *SweepCache) tapePair(b workload.Benchmark, cycles uint64, window []trace.Cycle) (ia, da *core.Tape, _ []trace.Cycle, err error) {
	ki := tapeKey{b.Name, "ia", cycles}
	kd := tapeKey{b.Name, "da", cycles}
	c.mu.Lock()
	ia, da = c.tapes[ki], c.tapes[kd]
	c.mu.Unlock()
	if ia != nil && da != nil {
		return ia, da, window, nil
	}
	window, err = captureWindowInto(b, cycles, window)
	if err != nil {
		return nil, nil, window, err
	}
	if ia, err = core.CompileTape(trace.NewSliceSource(window), "ia", cycles); err != nil {
		return nil, nil, window, err
	}
	if da, err = core.CompileTape(trace.NewSliceSource(window), "da", cycles); err != nil {
		return nil, nil, window, err
	}
	if ia.Cycles() != cycles || da.Cycles() != cycles {
		return nil, nil, window, fmt.Errorf("expt: %s tape is %d cycles, want %d", b.Name, ia.Cycles(), cycles)
	}
	c.mu.Lock()
	c.tapes[ki], c.tapes[kd] = ia, da
	c.mu.Unlock()
	return ia, da, window, nil
}

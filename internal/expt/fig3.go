package expt

import (
	"context"
	"fmt"

	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/parallel"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// Fig3Cell is one bar of the paper's Fig. 3: total energy dissipated in one
// address bus, for one technology node and encoding scheme, under the
// three capacitance-model variants.
type Fig3Cell struct {
	// Bus is "DA" or "IA".
	Bus string
	// Node is the technology node name.
	Node string
	// Scheme is the encoding name.
	Scheme string
	// Benchmark is the workload, or "mean" for the cross-benchmark
	// average.
	Benchmark string
	// Self is the total energy with self capacitance only (J).
	Self float64
	// NN adds nearest-neighbour coupling.
	NN float64
	// All adds every coupling pair (the paper's full model).
	All float64
	// Cycles is the measured window length.
	Cycles uint64
}

// Fig3Options configure the encoding-effectiveness study.
type Fig3Options struct {
	// Cycles is the measured trace window per benchmark; zero means
	// 2,000,000. (The paper measures 20M instructions after a 500M-
	// instruction warm-up; scale Cycles up to match.)
	Cycles uint64
	// Benchmarks to run; nil means all eight.
	Benchmarks []string
	// Nodes to evaluate; nil means all four ITRS nodes.
	Nodes []itrs.Node
	// Schemes to evaluate; nil means the paper's four (BI, OEBI, CBI,
	// Unencoded).
	Schemes []string
	// Buses to evaluate; nil means both ("DA", "IA").
	Buses []string
	// Workers bounds the sweep-pool concurrency; zero means GOMAXPROCS.
	Workers int
	// Cache retains simulators and compiled trace tapes across calls;
	// nil means a private per-call cache. Results are bit-identical
	// either way (Reset reuse and tape replay are exact).
	Cache *SweepCache
}

// Fig3 runs the study and returns per-benchmark cells followed by
// cross-benchmark mean cells (Benchmark == "mean"). The same captured
// trace window drives every (node, scheme) pair of a benchmark, exactly
// like the paper replaying one SHADE trace through each configuration.
//
// The sweep runs in two phases. First each benchmark's window is captured
// once and compiled into run-length tapes (in parallel, one reusable
// capture buffer per worker). Then one job per (node, scheme, bus)
// configuration takes a simulator from the cache and replays every
// benchmark's tape through it on the batch pipeline — the capacitance
// extraction, thermal factorisation and transition memo are paid once per
// configuration (once per cache lifetime with a shared Cache), and the
// replay itself allocates nothing. Cells are folded in the fixed
// benchmark-major order, so results are bit-identical across worker
// counts and cache reuse.
func Fig3(opts Fig3Options) ([]Fig3Cell, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 2_000_000
	}
	benchNames := opts.Benchmarks
	if benchNames == nil {
		benchNames = workload.Names()
	}
	nodes := opts.Nodes
	if nodes == nil {
		nodes = itrs.Nodes()
	}
	schemes := opts.Schemes
	if schemes == nil {
		schemes = encoding.PaperSchemes()
	}
	buses := opts.Buses
	if buses == nil {
		buses = []string{"DA", "IA"}
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewSweepCache()
	}

	benches := make([]workload.Benchmark, len(benchNames))
	for i, name := range benchNames {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("expt: unknown benchmark %q", name)
		}
		benches[i] = b
	}

	type job struct {
		node   itrs.Node
		scheme string
		bus    string
	}
	var jobs []job
	for _, node := range nodes {
		for _, scheme := range schemes {
			for _, bus := range buses {
				jobs = append(jobs, job{node, scheme, bus})
			}
		}
	}

	// Phase 1: capture and compile every benchmark's tapes. The capture
	// window (12 bytes/cycle) lives only inside this phase, one buffer
	// per worker, drawn from (and returned to) the cache's window pool so
	// repeated sweeps reuse the slabs instead of reallocating per call.
	type tapes struct{ ia, da *core.Tape }
	benchTapes := make([]tapes, len(benches))
	windows := make([][]trace.Cycle, parallel.Workers(opts.Workers))
	phaseErr := parallel.ForEachWorker(opts.Workers, len(benches), func(worker, bi int) error {
		if windows[worker] == nil {
			windows[worker] = cache.window()
		}
		ia, da, buf, err := cache.tapePair(benches[bi], cycles, windows[worker])
		windows[worker] = buf
		if err != nil {
			return fmt.Errorf("%s: %w", benches[bi].Name, err)
		}
		benchTapes[bi] = tapes{ia, da}
		return nil
	})
	for _, w := range windows {
		cache.putWindow(w)
	}
	if phaseErr != nil {
		return nil, fmt.Errorf("expt: fig3 capture: %w", phaseErr)
	}

	// Phase 2: config-major replay. Each job writes its benchmark row of
	// the flat result slab; disjoint regions, no synchronisation.
	flat := make([]Fig3Cell, len(jobs)*len(benches))
	ctx := context.Background()
	err := parallel.ForEach(opts.Workers, len(jobs), func(ji int) error {
		jb := jobs[ji]
		// scope pins each bus's jobs to simulators trained on that bus's
		// traffic, so warm-cache memo hit rates stay high at any worker
		// count (see simKey.scope).
		k := simKey{node: jb.node.Name, scheme: jb.scheme, depth: -1, drop: true, scope: jb.bus}
		sim, err := cache.sim(k)
		if err != nil {
			return err
		}
		defer cache.release(k, sim)
		for bi := range benches {
			sim.Reset()
			tp := benchTapes[bi].da
			if jb.bus == "IA" {
				tp = benchTapes[bi].ia
			}
			err := sim.PlayTape(ctx, tp)
			if err == nil {
				err = sim.Finish()
			}
			if err != nil {
				return fmt.Errorf("%s/%s/%s/%s: %w", jb.bus, jb.node.Name, jb.scheme, benches[bi].Name, err)
			}
			tot := sim.TotalEnergy()
			flat[ji*len(benches)+bi] = Fig3Cell{
				Bus: jb.bus, Node: jb.node.Name, Scheme: jb.scheme,
				Benchmark: benches[bi].Name,
				Self:      tot.Self,
				NN:        tot.Self + tot.CoupAdj,
				All:       tot.Total(),
				Cycles:    sim.Cycles(),
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("expt: fig3: %w", err)
	}

	// Fold benchmark-major — the same cell order and float-addition order
	// as a serial benchmark-by-benchmark sweep.
	var cells []Fig3Cell
	type key struct{ bus, node, scheme string }
	sums := map[key]*Fig3Cell{}
	for bi := range benches {
		for ji := range jobs {
			cell := flat[ji*len(benches)+bi]
			cells = append(cells, cell)
			k := key{cell.Bus, cell.Node, cell.Scheme}
			agg := sums[k]
			if agg == nil {
				agg = &Fig3Cell{Bus: cell.Bus, Node: cell.Node, Scheme: cell.Scheme, Benchmark: "mean"}
				sums[k] = agg
			}
			agg.Self += cell.Self
			agg.NN += cell.NN
			agg.All += cell.All
			agg.Cycles += cell.Cycles
		}
	}
	nb := float64(len(benchNames))
	for _, bus := range buses {
		for _, node := range nodes {
			for _, scheme := range schemes {
				agg := sums[key{bus, node.Name, scheme}]
				if agg == nil {
					continue
				}
				agg.Self /= nb
				agg.NN /= nb
				agg.All /= nb
				agg.Cycles = uint64(float64(agg.Cycles) / nb)
				cells = append(cells, *agg)
			}
		}
	}
	return cells, nil
}

// captureWindow replays a benchmark past its warm-up and records a fixed
// cycle window so every configuration sees identical traffic.
func captureWindow(b workload.Benchmark, cycles uint64) ([]trace.Cycle, error) {
	return captureWindowInto(b, cycles, nil)
}

// captureWindowInto is captureWindow reusing buf's capacity; sweep
// workers pass their per-worker buffer so repeated captures allocate the
// window once per worker, not once per benchmark.
func captureWindowInto(b workload.Benchmark, cycles uint64, buf []trace.Cycle) ([]trace.Cycle, error) {
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return buf, err
	}
	if uint64(cap(buf)) < cycles {
		buf = make([]trace.Cycle, 0, cycles)
	}
	window := buf[:0]
	for uint64(len(window)) < cycles {
		c, ok := src.Next()
		if !ok {
			return window, fmt.Errorf("expt: %s trace ended after %d cycles", b.Name, len(window))
		}
		window = append(window, c)
	}
	return window, nil
}

// MeanCells filters the cross-benchmark mean rows.
func MeanCells(cells []Fig3Cell) []Fig3Cell {
	var out []Fig3Cell
	for _, c := range cells {
		if c.Benchmark == "mean" {
			out = append(out, c)
		}
	}
	return out
}

package expt

import (
	"fmt"

	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/parallel"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// Fig3Cell is one bar of the paper's Fig. 3: total energy dissipated in one
// address bus, for one technology node and encoding scheme, under the
// three capacitance-model variants.
type Fig3Cell struct {
	// Bus is "DA" or "IA".
	Bus string
	// Node is the technology node name.
	Node string
	// Scheme is the encoding name.
	Scheme string
	// Benchmark is the workload, or "mean" for the cross-benchmark
	// average.
	Benchmark string
	// Self is the total energy with self capacitance only (J).
	Self float64
	// NN adds nearest-neighbour coupling.
	NN float64
	// All adds every coupling pair (the paper's full model).
	All float64
	// Cycles is the measured window length.
	Cycles uint64
}

// Fig3Options configure the encoding-effectiveness study.
type Fig3Options struct {
	// Cycles is the measured trace window per benchmark; zero means
	// 2,000,000. (The paper measures 20M instructions after a 500M-
	// instruction warm-up; scale Cycles up to match.)
	Cycles uint64
	// Benchmarks to run; nil means all eight.
	Benchmarks []string
	// Nodes to evaluate; nil means all four ITRS nodes.
	Nodes []itrs.Node
	// Schemes to evaluate; nil means the paper's four (BI, OEBI, CBI,
	// Unencoded).
	Schemes []string
	// Buses to evaluate; nil means both ("DA", "IA").
	Buses []string
	// Workers bounds the sweep-pool concurrency; zero means GOMAXPROCS.
	Workers int
}

// Fig3 runs the study and returns per-benchmark cells followed by
// cross-benchmark mean cells (Benchmark == "mean"). The same captured
// trace window drives every (node, scheme) pair of a benchmark, exactly
// like the paper replaying one SHADE trace through each configuration.
//
// One simulator is built per (node, scheme, bus) configuration and reused
// (via Reset) across every benchmark, so the capacitance extraction,
// thermal factorisation and transition memo are paid once; the benchmarks
// then replay through the shared parallel sweep pool.
func Fig3(opts Fig3Options) ([]Fig3Cell, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 2_000_000
	}
	benchNames := opts.Benchmarks
	if benchNames == nil {
		benchNames = workload.Names()
	}
	nodes := opts.Nodes
	if nodes == nil {
		nodes = itrs.Nodes()
	}
	schemes := opts.Schemes
	if schemes == nil {
		schemes = encoding.PaperSchemes()
	}
	buses := opts.Buses
	if buses == nil {
		buses = []string{"DA", "IA"}
	}

	type job struct {
		node   itrs.Node
		scheme string
		bus    string
	}
	var jobs []job
	for _, node := range nodes {
		for _, scheme := range schemes {
			for _, bus := range buses {
				jobs = append(jobs, job{node, scheme, bus})
			}
		}
	}

	// Build every configuration's simulator once, in parallel (extraction
	// and the thermal eigendecomposition dominate construction time).
	sims, err := parallel.Map(opts.Workers, len(jobs), func(ji int) (*core.Simulator, error) {
		jb := jobs[ji]
		enc, err := encoding.New(jb.scheme)
		if err != nil {
			return nil, err
		}
		return core.New(core.Config{
			Node:          jb.node,
			Encoder:       enc,
			CouplingDepth: -1,
			DropSamples:   true,
		})
	})
	if err != nil {
		return nil, fmt.Errorf("expt: fig3 setup: %w", err)
	}

	var cells []Fig3Cell
	type key struct{ bus, node, scheme string }
	sums := map[key]*Fig3Cell{}

	for _, name := range benchNames {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("expt: unknown benchmark %q", name)
		}
		window, err := captureWindow(b, cycles)
		if err != nil {
			return nil, err
		}
		// Replay the shared read-only window through every configuration on
		// the sweep pool; each job owns its simulator, so reuse is safe.
		results, err := parallel.Map(opts.Workers, len(jobs), func(ji int) (Fig3Cell, error) {
			jb := jobs[ji]
			sim := sims[ji]
			sim.Reset()
			kind := "da"
			if jb.bus == "IA" {
				kind = "ia"
			}
			src := trace.NewSliceSource(window)
			if _, err := core.RunSingle(src, sim, kind, cycles); err != nil {
				return Fig3Cell{}, fmt.Errorf("%s/%s/%s: %w", jb.bus, jb.node.Name, jb.scheme, err)
			}
			tot := sim.TotalEnergy()
			return Fig3Cell{
				Bus: jb.bus, Node: jb.node.Name, Scheme: jb.scheme,
				Benchmark: name,
				Self:      tot.Self,
				NN:        tot.Self + tot.CoupAdj,
				All:       tot.Total(),
				Cycles:    sim.Cycles(),
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("expt: fig3: %w", err)
		}
		for _, cell := range results {
			cells = append(cells, cell)
			k := key{cell.Bus, cell.Node, cell.Scheme}
			agg := sums[k]
			if agg == nil {
				agg = &Fig3Cell{Bus: cell.Bus, Node: cell.Node, Scheme: cell.Scheme, Benchmark: "mean"}
				sums[k] = agg
			}
			agg.Self += cell.Self
			agg.NN += cell.NN
			agg.All += cell.All
			agg.Cycles += cell.Cycles
		}
	}
	nb := float64(len(benchNames))
	for _, bus := range buses {
		for _, node := range nodes {
			for _, scheme := range schemes {
				agg := sums[key{bus, node.Name, scheme}]
				if agg == nil {
					continue
				}
				agg.Self /= nb
				agg.NN /= nb
				agg.All /= nb
				agg.Cycles = uint64(float64(agg.Cycles) / nb)
				cells = append(cells, *agg)
			}
		}
	}
	return cells, nil
}

// captureWindow replays a benchmark past its warm-up and records a fixed
// cycle window so every configuration sees identical traffic.
func captureWindow(b workload.Benchmark, cycles uint64) ([]trace.Cycle, error) {
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, err
	}
	window := make([]trace.Cycle, 0, cycles)
	for uint64(len(window)) < cycles {
		c, ok := src.Next()
		if !ok {
			return nil, fmt.Errorf("expt: %s trace ended after %d cycles", b.Name, len(window))
		}
		window = append(window, c)
	}
	return window, nil
}

// MeanCells filters the cross-benchmark mean rows.
func MeanCells(cells []Fig3Cell) []Fig3Cell {
	var out []Fig3Cell
	for _, c := range cells {
		if c.Benchmark == "mean" {
			out = append(out, c)
		}
	}
	return out
}

package expt

import (
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestBaselinesComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	res, err := Baselines("swim", itrs.N130, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The worst-case (jmax everywhere) prediction must far exceed what
	// the dynamic model observes — the paper's over-margining argument.
	if res.WorstCaseTemp <= res.DynamicMaxTemp {
		t.Errorf("worst-case %.2f K <= dynamic max %.2f K", res.WorstCaseTemp, res.DynamicMaxTemp)
	}
	if res.WorstCaseTemp < res.DynamicMaxTemp+5 {
		t.Errorf("worst-case margin only %.2f K; expected gross overestimation",
			res.WorstCaseTemp-res.DynamicMaxTemp)
	}
	// The dynamic model must expose a nonzero per-wire spread that the
	// uniform average-activity model cannot represent.
	if res.DynamicSpread <= 0 {
		t.Error("no per-wire temperature spread")
	}
	if res.DynamicMaxTemp <= units.AmbientK {
		t.Error("no heating observed")
	}
	if res.Cycles != 2_000_000 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestBaselinesUnknownBenchmark(t *testing.T) {
	if _, err := Baselines("gcc", itrs.N130, 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

package expt

import (
	"context"
	"fmt"

	"nanobus/client"
	"nanobus/internal/cache"
	"nanobus/internal/itrs"
	"nanobus/internal/workload"
)

// The whole-SoC interconnect thermal map is the multi-bus headline
// scenario: four global buses of one floorplan — the processor's
// instruction and data address buses plus the L2 fill and writeback
// streams of the Sec. 5.1 cache hierarchy — run in lockstep through one
// nanobusd multi-bus session, laterally coupled on the top metal layer.
// The session streams one Sample per bus per closed interval, and the
// driver folds them into per-interval temperature frames: a thermal
// movie of the interconnect fabric, computed server-side by the banded
// propagator in a single kernel pass.

// SoCBusLabels name the scenario's buses in bus-index order.
var SoCBusLabels = [4]string{"IA", "DA", "L2R", "L2W"}

// SoCMapOptions configure the scenario.
type SoCMapOptions struct {
	// Benchmark defaults to swim.
	Benchmark string
	// Node defaults to 130 nm.
	Node itrs.Node
	// Cycles is the lockstep window; zero means 200,000.
	Cycles uint64
	// IntervalCycles is the sampling (and thermal-advance) interval;
	// zero means Cycles/10.
	IntervalCycles uint64
	// GapPitches is the lateral bus-to-bus gap in wire pitches; zero
	// means the thermal package default.
	GapPitches float64
	// DisableBusCoupling severs the lateral thermal resistance — the
	// isolation baseline for coupling A/B studies.
	DisableBusCoupling bool
	// BatchRows is the number of lockstep cycles per step request; zero
	// means 8192.
	BatchRows int
}

// SoCMapFrame is one sampling interval of the thermal movie.
type SoCMapFrame struct {
	// EndCycle is the interval's closing cycle.
	EndCycle uint64
	// TempsK is the per-bus wire-temperature map at the interval close,
	// indexed [bus][wire].
	TempsK [][]float64
	// MaxTempK is the hottest wire across all buses.
	MaxTempK float64
}

// SoCMapResult is the folded scenario outcome.
type SoCMapResult struct {
	Benchmark string
	Node      string
	// Buses are the bus labels, index-aligned with every per-bus slice.
	Buses  []string
	Cycles uint64
	// Frames is the streamed thermal movie, one frame per closed
	// sampling interval.
	Frames []SoCMapFrame
	// TotalEnergyJ sums all buses; PerBusEnergyJ splits it.
	TotalEnergyJ  float64
	PerBusEnergyJ []float64
	// Duty is the fraction of cycles each bus carried a fresh word
	// (an idle bus holds its last word, dissipating nothing).
	Duty []float64
	// AvgTempK / MaxTempK / MaxBus / MaxWire summarize the final map.
	AvgTempK float64
	MaxTempK float64
	MaxBus   int
	MaxWire  int
	// TempsK is the final [bus][wire] temperature map.
	TempsK [][]float64
}

// MapSession is the slice of the client session surface SoCMap drives;
// *client.NBWPSession satisfies it directly, HTTPMapOpener adapts the
// HTTP streaming path.
type MapSession interface {
	StepBinary(ctx context.Context, words []uint32) (client.StepSummary, error)
	Result(ctx context.Context, finish bool) (*client.Result, error)
	Close(ctx context.Context) error
}

// MapOpener opens a multi-bus session with a streamed-sample callback on
// whichever transport the caller holds.
type MapOpener func(cfg client.SessionConfig, onSample func(client.Sample)) (MapSession, error)

// NBWPMapOpener adapts an NBWP connection: SAMPLE frames arrive on the
// connection's reader goroutine, strictly before the acks of the batches
// that closed them.
func NBWPMapOpener(ctx context.Context, nc *client.NBWPConn) MapOpener {
	return func(cfg client.SessionConfig, onSample func(client.Sample)) (MapSession, error) {
		return nc.Open(ctx, cfg, onSample)
	}
}

// HTTPMapOpener adapts the HTTP transport: each batch posts as an NDJSON
// ?stream=samples request, so samples stream back on the same response.
func HTTPMapOpener(ctx context.Context, c *client.Client) MapOpener {
	return func(cfg client.SessionConfig, onSample func(client.Sample)) (MapSession, error) {
		sess, err := c.CreateSession(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &httpMapSession{HTTPSession: sess, onSample: onSample}, nil
	}
}

// httpMapSession reroutes StepBinary through the sample-streaming NDJSON
// step endpoint.
type httpMapSession struct {
	*client.HTTPSession
	onSample func(client.Sample)
}

func (h *httpMapSession) StepBinary(ctx context.Context, words []uint32) (client.StepSummary, error) {
	body, err := client.BodyFromLines([]client.StepLine{{Words: words}})
	if err != nil {
		return client.StepSummary{}, err
	}
	return h.StepStream(ctx, body, h.onSample)
}

// SoCMap captures the floorplan's four traffic streams, drives them
// through one multi-bus session opened by open, and folds the streamed
// samples into the thermal movie. Figures are bit-identical across
// transports (both wires serve the same server-side documents).
func SoCMap(ctx context.Context, opts SoCMapOptions, open MapOpener) (*SoCMapResult, error) {
	if open == nil {
		return nil, fmt.Errorf("expt: socmap needs a session opener")
	}
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 200_000
	}
	interval := opts.IntervalCycles
	if interval == 0 {
		interval = cycles / 10
	}
	node := opts.Node
	if node.Name == "" {
		node = itrs.N130
	}
	batchRows := opts.BatchRows
	if batchRows == 0 {
		batchRows = 8192
	}

	slab, duty, err := captureSoCTraffic(opts.Benchmark, cycles)
	if err != nil {
		return nil, err
	}

	const k = len(SoCBusLabels)
	depth := -1
	cfg := client.SessionConfig{
		Node:               node.Name,
		Buses:              k,
		IntervalCycles:     interval,
		CouplingDepth:      &depth,
		TrackWireTemps:     true,
		BusGapPitches:      opts.GapPitches,
		DisableBusCoupling: opts.DisableBusCoupling,
	}
	var frames []SoCMapFrame
	onSample := func(s client.Sample) {
		temps := append([]float64(nil), s.WireTempsK...)
		if n := len(frames); n == 0 || frames[n-1].EndCycle != s.EndCycle {
			frames = append(frames, SoCMapFrame{EndCycle: s.EndCycle, TempsK: make([][]float64, k)})
		}
		f := &frames[len(frames)-1]
		if s.Bus >= 0 && s.Bus < k {
			f.TempsK[s.Bus] = temps
		}
		if s.MaxTempK > f.MaxTempK {
			f.MaxTempK = s.MaxTempK
		}
	}
	sess, err := open(cfg, onSample)
	if err != nil {
		return nil, err
	}
	defer func() {
		//nanolint:ignore droppederr best-effort cleanup; the result already returned
		_ = sess.Close(context.WithoutCancel(ctx))
	}()

	rows := int(cycles)
	for r := 0; r < rows; r += batchRows {
		n := batchRows
		if left := rows - r; n > left {
			n = left
		}
		if _, err := sess.StepBinary(ctx, slab[r*k:(r+n)*k]); err != nil {
			return nil, fmt.Errorf("expt: socmap step: %w", err)
		}
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("expt: socmap result: %w", err)
	}
	if res.Buses != k || len(res.PerBus) != k {
		return nil, fmt.Errorf("expt: socmap result has %d buses, want %d", res.Buses, k)
	}

	out := &SoCMapResult{
		Benchmark:     benchNameOrDefault(opts.Benchmark),
		Node:          node.Name,
		Buses:         SoCBusLabels[:],
		Cycles:        res.Cycles,
		Frames:        frames,
		TotalEnergyJ:  res.Total.TotalJ,
		PerBusEnergyJ: make([]float64, k),
		Duty:          duty,
		AvgTempK:      res.AvgTempK,
		MaxTempK:      res.MaxTempK,
		MaxBus:        res.MaxBus,
		MaxWire:       res.MaxWire,
		TempsK:        make([][]float64, k),
	}
	for i, pb := range res.PerBus {
		out.PerBusEnergyJ[i] = pb.Total.TotalJ
		out.TempsK[i] = pb.TempsK
	}
	return out, nil
}

func benchNameOrDefault(name string) string {
	if name == "" {
		return "swim"
	}
	return name
}

// captureSoCTraffic replays the benchmark through the paper's cache
// hierarchy and interleaves the four bus streams cycle-major, one word
// per bus per cycle. An idle bus holds its last word (zero transitions);
// the L2 fill and writeback buses drain their miss queues one block
// address per cycle, like the single-channel L2 bus of the L2Bus study.
func captureSoCTraffic(benchName string, cycles uint64) (slab []uint32, duty []float64, err error) {
	b, ok := workload.ByName(benchNameOrDefault(benchName))
	if !ok {
		return nil, nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, nil, err
	}
	h, err := cache.NewPaperHierarchy()
	if err != nil {
		return nil, nil, err
	}
	var readQ, writeQ []uint32
	hook := func(blockAddr uint32, write bool) {
		if write {
			writeQ = append(writeQ, blockAddr)
		} else {
			readQ = append(readQ, blockAddr)
		}
	}
	h.IL1.MissHook = hook
	h.DL1.MissHook = hook

	const k = len(SoCBusLabels)
	slab = make([]uint32, int(cycles)*k)
	fresh := make([]uint64, k)
	var hold [k]uint32
	for n := uint64(0); n < cycles; n++ {
		c, ok := src.Next()
		if !ok {
			return nil, nil, fmt.Errorf("expt: %s trace ended after %d cycles", b.Name, n)
		}
		if c.IValid {
			hold[0] = c.IAddr
			fresh[0]++
			h.Fetch(c.IAddr)
		}
		if c.DValid {
			hold[1] = c.DAddr
			fresh[1]++
			if c.DStore {
				h.Store(c.DAddr)
			} else {
				h.Load(c.DAddr)
			}
		}
		if len(readQ) > 0 {
			hold[2] = readQ[0]
			readQ = readQ[1:]
			fresh[2]++
		}
		if len(writeQ) > 0 {
			hold[3] = writeQ[0]
			writeQ = writeQ[1:]
			fresh[3]++
		}
		copy(slab[int(n)*k:], hold[:])
	}
	duty = make([]float64, k)
	for i, f := range fresh {
		duty[i] = float64(f) / float64(cycles)
	}
	return slab, duty, nil
}

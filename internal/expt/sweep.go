package expt

import (
	"fmt"

	"nanobus/internal/itrs"
	"nanobus/internal/parallel"
	"nanobus/internal/workload"
)

// This file hosts the multi-benchmark sweep variants of the single-shot
// studies. They all share the same shape — independent per-benchmark jobs
// on the bounded parallel pool, results in benchmark order, lowest-index
// first error — so the drivers in cmd/nanobus can run whole tables with
// one call instead of looping serially.

// resolveBenchmarks expands nil to the full benchmark set and validates
// explicit names early, before any worker spins up.
func resolveBenchmarks(names []string) ([]string, error) {
	if names == nil {
		return workload.Names(), nil
	}
	for _, n := range names {
		if _, ok := workload.ByName(n); !ok {
			return nil, fmt.Errorf("expt: unknown benchmark %q", n)
		}
	}
	return names, nil
}

// BaselinesSweep runs the prior-art comparison for every benchmark (nil
// means all) concurrently, returning results in benchmark order.
func BaselinesSweep(benchmarks []string, node itrs.Node, cycles uint64, workers int) ([]*BaselineComparison, error) {
	names, err := resolveBenchmarks(benchmarks)
	if err != nil {
		return nil, err
	}
	return parallel.Map(workers, len(names), func(i int) (*BaselineComparison, error) {
		return Baselines(names[i], node, cycles)
	})
}

// EncStatsSweep runs the encoder-statistics study for every benchmark (nil
// means all) concurrently; the result is one flattened slice, benchmarks in
// order, the per-benchmark scheme order preserved.
func EncStatsSweep(benchmarks []string, opts EncStatsOptions, workers int) ([]EncoderStats, error) {
	names, err := resolveBenchmarks(benchmarks)
	if err != nil {
		return nil, err
	}
	rows, err := parallel.Map(workers, len(names), func(i int) ([]EncoderStats, error) {
		o := opts
		o.Benchmark = names[i]
		return EncStats(o)
	})
	if err != nil {
		return nil, err
	}
	var out []EncoderStats
	for _, r := range rows {
		out = append(out, r...)
	}
	return out, nil
}

// L2BusSweep runs the L2-bus extension for every benchmark (nil means all)
// concurrently, returning results in benchmark order.
func L2BusSweep(benchmarks []string, opts L2BusOptions, workers int) ([]*L2BusResult, error) {
	names, err := resolveBenchmarks(benchmarks)
	if err != nil {
		return nil, err
	}
	return parallel.Map(workers, len(names), func(i int) (*L2BusResult, error) {
		o := opts
		o.Benchmark = names[i]
		return L2Bus(o)
	})
}

package expt

import (
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestL2BusStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	res, err := L2Bus(L2BusOptions{Cycles: 400_000, Benchmark: "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if res.L2BusEnergy <= 0 {
		t.Error("L2 bus dissipated nothing on mcf")
	}
	// mcf misses hard: the L2 bus must be busy.
	if res.Duty < 0.1 {
		t.Errorf("L2 bus duty = %.3f, want > 0.1 for mcf", res.Duty)
	}
	if res.DL1MissRate < 0.3 {
		t.Errorf("D-L1 miss rate = %.3f, want > 0.3 for mcf", res.DL1MissRate)
	}
	// crafty barely misses: its L2 bus is almost idle and cheap.
	quiet, err := L2Bus(L2BusOptions{Cycles: 400_000, Benchmark: "crafty"})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Duty > 0.05 {
		t.Errorf("crafty L2 duty = %.3f, want near zero", quiet.Duty)
	}
	if quiet.L2BusEnergy >= res.L2BusEnergy {
		t.Errorf("crafty L2 energy %.3g >= mcf %.3g", quiet.L2BusEnergy, res.L2BusEnergy)
	}
}

func TestL2BusUnknownBenchmark(t *testing.T) {
	if _, err := L2Bus(L2BusOptions{Benchmark: "gcc", Cycles: 10}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSubstrateVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	res, err := Substrate("swim", itrs.N130, 2_000_000, 500_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The varying substrate's +10 K half-cycles must push the peak above
	// the fixed-ambient peak (the combined effect the paper warns about).
	if res.MaxTempVarying <= res.MaxTempFixed {
		t.Errorf("varying substrate peak %.3f <= fixed %.3f", res.MaxTempVarying, res.MaxTempFixed)
	}
	// And by no more than the applied swing.
	if res.MaxTempVarying > res.MaxTempFixed+res.SwingK+0.5 {
		t.Errorf("peak rose by %.3f, more than the %.1f K swing",
			res.MaxTempVarying-res.MaxTempFixed, res.SwingK)
	}
	if res.MaxTempFixed <= units.AmbientK {
		t.Error("no heating in the fixed run")
	}
}

func TestSubstrateUnknownBenchmark(t *testing.T) {
	if _, err := Substrate("gcc", itrs.N130, 1000, 100, 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestEncStatsPaperFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven study")
	}
	// IA streams: inversion (essentially) never triggers — the paper's
	// core explanation for why encodings don't help instruction buses.
	ia, err := EncStats(EncStatsOptions{Cycles: 200_000, Benchmark: "eon", Bus: "IA"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ia {
		if r.InvertRate > 0.01 {
			t.Errorf("%s on IA inverts %.4f of cycles, want ~0", r.Scheme, r.InvertRate)
		}
	}
	// DA streams: OEBI's inversions are dominated by the all-invert mode
	// (the paper: "this mode occurred most of the time"), which is why
	// OEBI behaves like plain BI.
	da, err := EncStats(EncStatsOptions{Cycles: 200_000, Benchmark: "eon", Bus: "DA"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range da {
		if r.Scheme != "OEBI" {
			continue
		}
		if r.InvertRate < 0.05 {
			t.Errorf("OEBI never inverts on DA (%.4f)", r.InvertRate)
		}
		partial := r.OEBIModes[1] + r.OEBIModes[2]
		allInv := r.OEBIModes[3]
		if allInv < 5*partial {
			t.Errorf("all-invert mode (%.3f) does not dominate partial modes (%.3f)", allInv, partial)
		}
	}
}

func TestEncStatsValidation(t *testing.T) {
	if _, err := EncStats(EncStatsOptions{Benchmark: "gcc", Cycles: 10}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := EncStats(EncStatsOptions{Bus: "XX", Cycles: 10, Benchmark: "eon"}); err == nil {
		t.Error("unknown bus accepted")
	}
}

package expt

import (
	"nanobus/internal/extract"
	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
)

// Fig1BRow is one technology node's capacitance distribution (the paper's
// Fig. 1(b) stacked bar).
type Fig1BRow struct {
	Node itrs.Node
	Dist extract.BusDistribution
}

// Fig1BOptions tune the extraction cost/accuracy.
type Fig1BOptions struct {
	// Wires is the bus width to extract; zero means the paper's 32.
	Wires int
	// PanelsPerEdge controls BEM accuracy; zero means 6.
	PanelsPerEdge int
}

// Fig1B extracts the capacitance distribution for each node with the
// module's own BEM extractor (the FastCap substitute).
func Fig1B(opts Fig1BOptions, nodes ...itrs.Node) ([]Fig1BRow, error) {
	if len(nodes) == 0 {
		nodes = itrs.Nodes()
	}
	wires := opts.Wires
	if wires == 0 {
		wires = 32
	}
	panels := opts.PanelsPerEdge
	if panels == 0 {
		panels = 6
	}
	rows := make([]Fig1BRow, 0, len(nodes))
	for _, n := range nodes {
		layout := geometry.BusLayout{
			Wires: wires,
			W:     n.WireWidth, T: n.WireThickness,
			S: n.Spacing(), H: n.ILDHeight,
			EpsRel: n.EpsRel,
		}
		_, dist, err := extract.ExtractBus(layout, extract.Options{PanelsPerEdge: panels})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1BRow{Node: n, Dist: dist})
	}
	return rows, nil
}

package expt

import (
	"fmt"

	"nanobus/internal/encoding"
	"nanobus/internal/workload"
)

// EncoderStats reports how often each scheme actually exercised its invert
// machinery on a real address stream — the measurement behind the paper's
// Sec. 5.2.1 explanations ("the number of bit transitions between
// consecutive cycles [is] very low to cause inversion", and for OEBI "the
// [all-invert] mode occurred most of the time" when inversion does
// trigger).
type EncoderStats struct {
	Benchmark string
	Bus       string
	Scheme    string
	Cycles    uint64
	// InvertRate is the fraction of driven cycles with any invert line
	// raised.
	InvertRate float64
	// OEBIModes[m] is the fraction of cycles in OEBI mode m (00, 01, 10,
	// 11); only populated for OEBI.
	OEBIModes [4]float64
}

// EncStatsOptions configure the study.
type EncStatsOptions struct {
	// Cycles is the observed window; zero means 1,000,000.
	Cycles uint64
	// Benchmark defaults to eon.
	Benchmark string
	// Bus is "DA" or "IA"; empty means DA.
	Bus string
}

// EncStats runs the trace through every BI-family encoder, observing the
// invert lines on the physical words.
func EncStats(opts EncStatsOptions) ([]EncoderStats, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 1_000_000
	}
	benchName := opts.Benchmark
	if benchName == "" {
		benchName = "eon"
	}
	bus := opts.Bus
	if bus == "" {
		bus = "DA"
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, err
	}
	// Capture the bus's word stream.
	words := make([]uint32, 0, cycles)
	for uint64(len(words)) < cycles {
		c, ok := src.Next()
		if !ok {
			return nil, fmt.Errorf("expt: %s trace ended after %d cycles", benchName, len(words))
		}
		switch bus {
		case "IA":
			if c.IValid {
				words = append(words, c.IAddr)
			}
		case "DA":
			if c.DValid {
				words = append(words, c.DAddr)
			}
		default:
			return nil, fmt.Errorf("expt: unknown bus %q", bus)
		}
	}

	var out []EncoderStats
	for _, scheme := range []string{"BI", "OEBI", "CBI"} {
		enc, err := encoding.New(scheme)
		if err != nil {
			return nil, err
		}
		st := EncoderStats{Benchmark: benchName, Bus: bus, Scheme: scheme, Cycles: uint64(len(words))}
		var inverted uint64
		var modes [4]uint64
		for _, w := range words {
			phys := enc.Encode(w)
			switch scheme {
			case "BI", "CBI":
				if phys&(1<<encoding.DataWidth) != 0 {
					inverted++
				}
			case "OEBI":
				odd := phys & 1
				even := (phys >> (encoding.DataWidth + 1)) & 1
				mode := odd | even<<1
				modes[mode]++
				if mode != 0 {
					inverted++
				}
			}
		}
		n := float64(len(words))
		st.InvertRate = float64(inverted) / n
		for m := range modes {
			st.OEBIModes[m] = float64(modes[m]) / n
		}
		out = append(out, st)
	}
	return out, nil
}

package expt

import (
	"testing"

	"nanobus/internal/itrs"
)

// TestFig3DeterministicAcrossWorkers requires the pooled sweep to return
// exactly the same cells no matter the worker count — the determinism
// contract of the shared runner (and of simulator reuse via Reset).
func TestFig3DeterministicAcrossWorkers(t *testing.T) {
	base := Fig3Options{
		Cycles:     20_000,
		Benchmarks: []string{"eon", "swim"},
		Nodes:      []itrs.Node{itrs.N130},
		Schemes:    []string{"BI", "Unencoded"},
		Buses:      []string{"DA"},
	}
	var ref []Fig3Cell
	for _, workers := range []int{1, 2, 4} {
		opts := base
		opts.Workers = workers
		cells, err := Fig3(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = cells
			continue
		}
		if len(cells) != len(ref) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(cells), len(ref))
		}
		for i := range ref {
			if cells[i] != ref[i] {
				t.Fatalf("workers=%d cell %d: %+v != serial %+v", workers, i, cells[i], ref[i])
			}
		}
	}
}

// TestBaselinesSweepMatchesSerial checks ordering and value agreement with
// the single-shot driver.
func TestBaselinesSweepMatchesSerial(t *testing.T) {
	names := []string{"swim", "mcf"}
	got, err := BaselinesSweep(names, itrs.N130, 200_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d results, want 2", len(got))
	}
	for i, name := range names {
		want, err := Baselines(name, itrs.N130, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Benchmark != name {
			t.Errorf("result %d is %q, want %q (ordering)", i, got[i].Benchmark, name)
		}
		if *got[i] != *want {
			t.Errorf("%s: sweep %+v != serial %+v", name, got[i], want)
		}
	}
	if _, err := BaselinesSweep([]string{"nope"}, itrs.N130, 1000, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestEncStatsSweepFlattening checks the flattened benchmark-major order.
func TestEncStatsSweepFlattening(t *testing.T) {
	names := []string{"eon", "gzip"}
	got, err := EncStatsSweep(names, EncStatsOptions{Cycles: 50_000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 2 benchmarks x 3 schemes
		t.Fatalf("%d rows, want 6", len(got))
	}
	wantOrder := []string{"eon", "eon", "eon", "gzip", "gzip", "gzip"}
	for i, row := range got {
		if row.Benchmark != wantOrder[i] {
			t.Errorf("row %d benchmark %q, want %q", i, row.Benchmark, wantOrder[i])
		}
	}
}

// TestL2BusSweep checks ordering and agreement with the single-shot driver.
func TestL2BusSweep(t *testing.T) {
	names := []string{"mcf"}
	got, err := L2BusSweep(names, L2BusOptions{Cycles: 100_000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := L2Bus(L2BusOptions{Cycles: 100_000, Benchmark: "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || *got[0] != *want {
		t.Fatalf("sweep %+v != serial %+v", got[0], want)
	}
}

package expt

import (
	"fmt"

	"nanobus/internal/core"
	"nanobus/internal/itrs"
	"nanobus/internal/parallel"
	"nanobus/internal/stats"
	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

// Fig4Series is the time series of one bus in one Fig. 4 panel: interval
// energy, average temperature, and maximum temperature, sampled every
// IntervalCycles.
type Fig4Series struct {
	Benchmark string
	Bus       string // "DA" or "IA"
	Node      string
	Samples   []core.Sample
	// Summary statistics used by the Sec. 5.3.1 discussion.
	Energy  stats.Summary
	AvgTemp stats.Summary
	MaxTemp stats.Summary
}

// MaxTempDrift returns the hottest-wire temperature change from the first
// to the last sample — the Sec. 5.3.1 drift metric (the paper reports the
// hottest wire rising 0.0003-0.0005 K over a 12M-cycle window, with the IA
// bus drifting faster than the DA bus).
func (s Fig4Series) MaxTempDrift() float64 {
	if len(s.Samples) < 2 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].MaxTemp - s.Samples[0].MaxTemp
}

// Fig4Options configure the transient study.
type Fig4Options struct {
	// Cycles is the simulated window; zero means 300,000,000 (the
	// paper's window — takes minutes; tests and quick runs pass less).
	Cycles uint64
	// IntervalCycles is the sampling interval; zero means the paper's
	// 100,000.
	IntervalCycles uint64
	// Node is the technology node; zero value means 130 nm (the paper's
	// thermal plots).
	Node itrs.Node
	// Benchmarks to run; nil means the paper's pair, eon and swim.
	Benchmarks []string
	// Timing, when true, runs the trace through the cache hierarchy and
	// inserts miss-stall idle cycles (the timing-aware extension; the
	// paper's SHADE traces are functional, one instruction per cycle).
	Timing bool
	// Workers bounds the per-benchmark sweep concurrency; zero means
	// GOMAXPROCS.
	Workers int
	// Cache retains simulators across calls (keyed by node and interval);
	// nil builds fresh ones. Reuse is bit-identical (Simulator.Reset).
	Cache *SweepCache
}

// Fig4 reproduces the paper's transient energy/temperature plots: for each
// benchmark, both address buses are driven from one trace while their
// thermal networks advance interval power through the exact propagator.
// Benchmarks run concurrently on the shared sweep pool; the output order
// (DA then IA per benchmark, benchmarks in input order) is deterministic.
func Fig4(opts Fig4Options) ([]Fig4Series, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 300_000_000
	}
	node := opts.Node
	if node.Name == "" {
		node = itrs.N130
	}
	benchNames := opts.Benchmarks
	if benchNames == nil {
		benchNames = []string{"eon", "swim"}
	}
	pairs, err := parallel.Map(opts.Workers, len(benchNames), func(bi int) ([2]Fig4Series, error) {
		name := benchNames[bi]
		b, ok := workload.ByName(name)
		if !ok {
			return [2]Fig4Series{}, fmt.Errorf("expt: unknown benchmark %q", name)
		}
		src, err := b.NewWarmSource(b.WarmupCycles)
		if err != nil {
			return [2]Fig4Series{}, err
		}
		if opts.Timing {
			ta, err := trace.NewTimingAdapter(src, trace.DefaultLatencies())
			if err != nil {
				return [2]Fig4Series{}, err
			}
			src = ta
		}
		var ia, da *core.Simulator
		if opts.Cache != nil {
			// The IA and DA roles see disjoint traffic; scoping their
			// pools keeps each reused simulator's memo trained on its own
			// role (see simKey.scope).
			ki := simKey{node: node.Name, interval: opts.IntervalCycles, depth: -1, scope: "ia"}
			kd := simKey{node: node.Name, interval: opts.IntervalCycles, depth: -1, scope: "da"}
			if ia, err = opts.Cache.sim(ki); err != nil {
				return [2]Fig4Series{}, err
			}
			defer opts.Cache.release(ki, ia)
			if da, err = opts.Cache.sim(kd); err != nil {
				return [2]Fig4Series{}, err
			}
			defer opts.Cache.release(kd, da)
		} else if ia, da, err = newPair(node, opts.IntervalCycles); err != nil {
			return [2]Fig4Series{}, err
		}
		if _, err := core.RunPair(src, ia, da, cycles); err != nil {
			return [2]Fig4Series{}, err
		}
		// Safe to release after summarise: Reset drops the simulator's
		// reference to the returned sample slice instead of reusing it.
		return [2]Fig4Series{
			summarise(name, "DA", node.Name, da.Samples()),
			summarise(name, "IA", node.Name, ia.Samples()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Series, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p[0], p[1])
	}
	return out, nil
}

func newPair(node itrs.Node, interval uint64) (ia, da *core.Simulator, err error) {
	mk := func() (*core.Simulator, error) {
		return core.New(core.Config{
			Node:           node,
			CouplingDepth:  -1,
			IntervalCycles: interval,
		})
	}
	if ia, err = mk(); err != nil {
		return nil, nil, err
	}
	if da, err = mk(); err != nil {
		return nil, nil, err
	}
	return ia, da, nil
}

func summarise(bench, bus, node string, samples []core.Sample) Fig4Series {
	var e, a, m stats.Stream
	for _, s := range samples {
		e.Add(s.Energy)
		a.Add(s.AvgTemp)
		m.Add(s.MaxTemp)
	}
	return Fig4Series{
		Benchmark: bench, Bus: bus, Node: node,
		Samples: samples,
		Energy:  stats.Summarize(&e),
		AvgTemp: stats.Summarize(&a),
		MaxTemp: stats.Summarize(&m),
	}
}

// Fig5Result is the idle-window experiment: the paper's Fig. 5 shows that
// a ~1M-cycle idle period causes no appreciable cooling.
type Fig5Result struct {
	Series Fig4Series
	// IdleStart and IdleLength locate the injected window (cycles).
	IdleStart, IdleLength uint64
	// TempBeforeIdle and TempAfterIdle are the max-temperature samples
	// bracketing the window.
	TempBeforeIdle, TempAfterIdle float64
	// DropK is the cooling across the window in kelvin.
	DropK float64
}

// Fig5Options configure the idle study.
type Fig5Options struct {
	// Cycles is the simulated window; zero means 40,000,000 (the paper
	// plots ~40M cycles).
	Cycles uint64
	// IdleStart and IdleLength place the idle window; zeros mean a 1M
	// cycle window starting mid-run.
	IdleStart, IdleLength uint64
	// IntervalCycles is the sampling interval; zero means 100,000.
	IntervalCycles uint64
	// Node defaults to 130 nm.
	Node itrs.Node
	// Benchmark defaults to swim (the paper's Fig. 5 subject).
	Benchmark string
}

// Fig5 injects an idle window into the benchmark's trace and reports the
// temperature drop across it.
func Fig5(opts Fig5Options) (*Fig5Result, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 40_000_000
	}
	idleLen := opts.IdleLength
	if idleLen == 0 {
		idleLen = 1_000_000
	}
	idleStart := opts.IdleStart
	if idleStart == 0 {
		idleStart = cycles / 2
	}
	if idleStart+idleLen >= cycles {
		return nil, fmt.Errorf("expt: idle window [%d,+%d) exceeds the %d-cycle run",
			idleStart, idleLen, cycles)
	}
	node := opts.Node
	if node.Name == "" {
		node = itrs.N130
	}
	benchName := opts.Benchmark
	if benchName == "" {
		benchName = "swim"
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("expt: unknown benchmark %q", benchName)
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return nil, err
	}
	injected, err := trace.NewIdleInjector(src, []trace.IdleWindow{
		{Start: idleStart, Length: idleLen},
	})
	if err != nil {
		return nil, err
	}
	ia, da, err := newPair(node, opts.IntervalCycles)
	if err != nil {
		return nil, err
	}
	if _, err := core.RunPair(injected, ia, da, cycles); err != nil {
		return nil, err
	}
	series := summarise(benchName, "DA", node.Name, da.Samples())
	res := &Fig5Result{
		Series:     series,
		IdleStart:  idleStart,
		IdleLength: idleLen,
	}
	// Locate the samples bracketing the idle window.
	for _, s := range series.Samples {
		if s.EndCycle <= idleStart {
			res.TempBeforeIdle = s.MaxTemp
		}
		if res.TempAfterIdle == 0 && s.EndCycle >= idleStart+idleLen { //nanolint:ignore floateq zero kelvin is the not-yet-recorded sentinel; physical temperatures are positive
			res.TempAfterIdle = s.MaxTemp
		}
	}
	res.DropK = res.TempBeforeIdle - res.TempAfterIdle
	return res, nil
}

package expt

import (
	"context"
	"fmt"

	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/parallel"
	"nanobus/internal/workload"
)

// The cooling experiment: peak wire temperature versus bandwidth
// overhead for the adaptive encoding controller, per benchmark and
// technology node. Each cell is self-calibrating — the thermal state
// space of the model is dominated by the exogenous inter-layer heating
// (Eq. 7), so an absolute ceiling chosen a priori would either never
// trigger or trigger immediately. Instead each cell derives its ceiling
// from the trace itself:
//
//  1. Run the Base encoder statically: peakBase and the trajectory.
//  2. Run the Cool encoder statically: peakCool (the floor the
//     controller can reach).
//  3. Take the trigger as the mid-run Base reading, run a provisional
//     controller with ceiling == trigger (guard 0): peakAdaptive.
//  4. Set the final ceiling halfway between peakAdaptive and peakBase,
//     and the guard so the trigger is unchanged; re-run. Because the
//     controller only ever reads trigger and release — never the
//     ceiling itself — the re-run's switch schedule is bit-identical to
//     the provisional run's, and the derived ceiling now separates the
//     defended peak from the static-Base peak with a real margin on
//     both sides.
//
// The derivation is a deterministic function of the trace and the
// configuration, so two runs of a cell agree bit for bit — the property
// the CI adaptive gate pins.

// CoolingOptions configure the adaptive-cooling study.
type CoolingOptions struct {
	// Cycles is the simulated window per run; zero means 20,000,000.
	Cycles uint64
	// IntervalCycles is the sampling interval (and therefore the
	// controller's decision cadence); zero means the paper's 100,000.
	IntervalCycles uint64
	// Nodes are the technology nodes to sweep; nil means all four.
	Nodes []itrs.Node
	// Benchmarks to run; nil means mcf, art and equake.
	Benchmarks []string
	// Base and Cool name the controller's encoder pair; empty means
	// "BI" and "CoolSpread".
	Base, Cool string
	// HysteresisK is the controller's release band; zero means 0.001 K.
	HysteresisK float64
	// Buses, when > 1, adds a static multi-bus leg per cell: K copies of
	// the benchmark's fetch stream driven in lockstep under each scheme,
	// comparing grid-wide peak temperatures.
	Buses int
	// Workers bounds cell concurrency; zero means GOMAXPROCS.
	Workers int
}

// CoolingBusLeg is the optional multi-bus leg of a cell: the same
// traffic on K thermally coupled buses under each static scheme.
type CoolingBusLeg struct {
	Buses     int
	PeakBaseK float64
	PeakCoolK float64
}

// CoolingCell is one (node, benchmark) cell of the study.
type CoolingCell struct {
	Node      string
	Benchmark string
	Base      string
	Cool      string

	// Static reference peaks.
	PeakBaseK float64
	PeakCoolK float64

	// Derived control law (see the package comment above).
	TriggerK float64
	CeilingK float64
	GuardK   float64

	// Adaptive outcome.
	PeakAdaptiveK float64
	Switches      []core.SwitchEvent
	Occupancy     []core.EncoderCycles
	Samples       []core.Sample

	// Defended reports PeakAdaptiveK <= CeilingK; BaseExceeds reports
	// PeakBaseK > CeilingK. Both true is the headline claim: the
	// controller holds a ceiling the static Base encoder breaks.
	Defended    bool
	BaseExceeds bool

	// WidthBase is the static Base physical width; WidthAdaptive is the
	// controller's common padded width. OverheadPct is the bandwidth
	// overhead of the adaptive bus versus the unencoded 32-wire bus.
	WidthBase     int
	WidthAdaptive int
	OverheadPct   float64

	// MultiBus is set when CoolingOptions.Buses > 1.
	MultiBus *CoolingBusLeg
}

// Cooling runs the study: one cell per (node, benchmark), cells run
// concurrently, output order is nodes-major in input order.
func Cooling(opts CoolingOptions) ([]CoolingCell, error) {
	cycles := opts.Cycles
	if cycles == 0 {
		cycles = 20_000_000
	}
	interval := opts.IntervalCycles
	if interval == 0 {
		interval = core.DefaultIntervalCycles
	}
	if cycles < 4*interval {
		return nil, fmt.Errorf("expt: cooling needs at least 4 intervals (%d cycles at interval %d)", cycles, interval)
	}
	nodes := opts.Nodes
	if nodes == nil {
		nodes = []itrs.Node{itrs.N130, itrs.N90, itrs.N65, itrs.N45}
	}
	benches := opts.Benchmarks
	if benches == nil {
		benches = []string{"mcf", "art", "equake"}
	}
	base := opts.Base
	if base == "" {
		base = "BI"
	}
	cool := opts.Cool
	if cool == "" {
		cool = "CoolSpread"
	}
	hyst := opts.HysteresisK
	if hyst == 0 { //nanolint:ignore floateq zero means the field was absent
		hyst = 0.001
	}

	cells, err := parallel.Map(opts.Workers, len(nodes)*len(benches), func(i int) (CoolingCell, error) {
		node := nodes[i/len(benches)]
		bench := benches[i%len(benches)]
		return coolingCell(node, bench, base, cool, cycles, interval, hyst, opts.Buses)
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// coolingCell runs one cell of the study (see the package comment for
// the calibration recipe).
func coolingCell(node itrs.Node, bench, base, cool string, cycles, interval uint64, hyst float64, buses int) (CoolingCell, error) {
	baseRun, widthBase, err := coolingStatic(node, bench, base, cycles, interval)
	if err != nil {
		return CoolingCell{}, err
	}
	coolRun, _, err := coolingStatic(node, bench, cool, cycles, interval)
	if err != nil {
		return CoolingCell{}, err
	}
	peakBase := peakMaxTemp(baseRun)
	peakCool := peakMaxTemp(coolRun)
	trigger := baseRun[len(baseRun)/2].MaxTemp

	// Provisional run: ceiling == trigger, no guard. Its peak tells us
	// how high the bus still climbs under the controller.
	provisional, _, err := coolingAdaptive(node, bench, base, cool, cycles, interval, trigger, 0, hyst)
	if err != nil {
		return CoolingCell{}, err
	}
	peakAd := peakMaxTemp(provisional.Samples())

	// Final run: the ceiling splits the defended peak from the static
	// peak; the guard keeps the trigger — and with it every switch
	// point — exactly where the provisional run had it.
	ceiling := (peakAd + peakBase) / 2
	guard := ceiling - trigger
	final, widthAd, err := coolingAdaptive(node, bench, base, cool, cycles, interval, ceiling, guard, hyst)
	if err != nil {
		return CoolingCell{}, err
	}
	samples := final.Samples()
	peakFinal := peakMaxTemp(samples)

	cell := CoolingCell{
		Node: node.Name, Benchmark: bench, Base: base, Cool: cool,
		PeakBaseK: peakBase, PeakCoolK: peakCool,
		TriggerK: trigger, CeilingK: ceiling, GuardK: guard,
		PeakAdaptiveK: peakFinal,
		Switches:      final.SwitchEvents(),
		Occupancy:     final.EncoderOccupancy(),
		Samples:       samples,
		Defended:      peakFinal <= ceiling,
		BaseExceeds:   peakBase > ceiling,
		WidthBase:     widthBase,
		WidthAdaptive: widthAd,
		OverheadPct:   100 * float64(widthAd-encoding.DataWidth) / float64(encoding.DataWidth),
	}
	if buses > 1 {
		leg, err := coolingMultiBus(node, bench, base, cool, cycles, interval, buses)
		if err != nil {
			return CoolingCell{}, err
		}
		cell.MultiBus = &leg
	}
	return cell, nil
}

func peakMaxTemp(samples []core.Sample) float64 {
	peak := 0.0
	for _, s := range samples {
		if s.MaxTemp > peak {
			peak = s.MaxTemp
		}
	}
	return peak
}

// coolingStatic runs bench's data-address stream through one static
// encoder and returns the sample trajectory and physical width.
func coolingStatic(node itrs.Node, bench, scheme string, cycles, interval uint64) ([]core.Sample, int, error) {
	b, ok := workload.ByName(bench)
	if !ok {
		return nil, 0, fmt.Errorf("expt: unknown benchmark %q", bench)
	}
	src, err := b.NewSource()
	if err != nil {
		return nil, 0, err
	}
	enc, err := encoding.New(scheme)
	if err != nil {
		return nil, 0, err
	}
	sim, err := core.New(core.Config{Node: node, Encoder: enc, IntervalCycles: interval})
	if err != nil {
		return nil, 0, err
	}
	if _, err := core.RunSingle(src, sim, "da", cycles); err != nil {
		return nil, 0, err
	}
	return sim.Samples(), sim.Width(), nil
}

// coolingAdaptive runs bench under the controller and returns the
// finished simulator (trajectory, events, occupancy) and its width.
func coolingAdaptive(node itrs.Node, bench, base, cool string, cycles, interval uint64, ceiling, guard, hyst float64) (*core.Simulator, int, error) {
	b, ok := workload.ByName(bench)
	if !ok {
		return nil, 0, fmt.Errorf("expt: unknown benchmark %q", bench)
	}
	src, err := b.NewSource()
	if err != nil {
		return nil, 0, err
	}
	sim, err := core.New(core.Config{
		Node:           node,
		IntervalCycles: interval,
		Adaptive: &core.AdaptiveConfig{
			Base: base, Cool: cool,
			CeilingK: ceiling, GuardK: guard, HysteresisK: hyst,
		},
	})
	if err != nil {
		return nil, 0, err
	}
	if _, err := core.RunSingle(src, sim, "da", cycles); err != nil {
		return nil, 0, err
	}
	return sim, sim.Width(), nil
}

// coolingMultiBus drives K copies of bench's fetch stream through the
// banded multi-bus kernel under each static scheme and compares
// grid-wide peaks — every bus hot and thermally coupled, the SoC-style
// worst case the scalar cells cannot see.
func coolingMultiBus(node itrs.Node, bench, base, cool string, cycles, interval uint64, buses int) (CoolingBusLeg, error) {
	leg := CoolingBusLeg{Buses: buses}
	for i, scheme := range []string{base, cool} {
		enc, err := encoding.New(scheme)
		if err != nil {
			return CoolingBusLeg{}, err
		}
		m, err := core.NewMulti(core.MultiConfig{
			Config: core.Config{Node: node, Encoder: enc, IntervalCycles: interval},
			Buses:  buses,
		})
		if err != nil {
			return CoolingBusLeg{}, err
		}
		b, ok := workload.ByName(bench)
		if !ok {
			return CoolingBusLeg{}, fmt.Errorf("expt: unknown benchmark %q", bench)
		}
		src, err := b.NewSource()
		if err != nil {
			return CoolingBusLeg{}, err
		}
		// Interleave K copies of the fetch stream cycle-major, in
		// interval-sized slabs so memory stays bounded.
		ctx := context.Background()
		slab := make([]uint32, 0, int(interval)*buses)
		var fed uint64
		for fed < cycles {
			c, ok := src.Next()
			if !ok {
				break
			}
			for k := 0; k < buses; k++ {
				slab = append(slab, c.IAddr)
			}
			fed++
			if uint64(len(slab)/buses) >= interval {
				if _, err := m.StepBatch(ctx, slab); err != nil {
					return CoolingBusLeg{}, err
				}
				slab = slab[:0]
			}
		}
		if len(slab) > 0 {
			if _, err := m.StepBatch(ctx, slab); err != nil {
				return CoolingBusLeg{}, err
			}
		}
		if err := m.Finish(); err != nil {
			return CoolingBusLeg{}, err
		}
		peak, _, _ := m.Grid().MaxTemp()
		if i == 0 {
			leg.PeakBaseK = peak
		} else {
			leg.PeakCoolK = peak
		}
	}
	return leg, nil
}

package linalg

import (
	"fmt"
	"math"
)

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += a*x in place and returns y.
func AXPY(a float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range y {
		y[i] += a * x[i]
	}
	return y
}

// Scale multiplies v by a in place and returns v.
func Scale(a float64, v []float64) []float64 {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub returns a new vector a - b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ConjugateGradient solves A x = b for a symmetric positive-definite A,
// starting from the zero vector, stopping when the residual norm drops
// below tol*|b| or maxIter iterations elapse. It returns the solution and
// the number of iterations performed.
func ConjugateGradient(a *Matrix, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, 0, fmt.Errorf("linalg: CG needs a square matrix, got %dx%d", n, a.Cols())
	}
	if len(b) != n {
		return nil, 0, fmt.Errorf("linalg: CG rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, 0, nil
	}
	rs := Dot(r, r)
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rs) <= tol*bnorm {
			return x, k, nil
		}
		ap := a.MulVec(p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return nil, k, fmt.Errorf("linalg: CG: matrix not positive definite (p'Ap=%g)", pap)
		}
		alpha := rs / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	if math.Sqrt(rs) <= tol*bnorm {
		return x, maxIter, nil
	}
	return x, maxIter, fmt.Errorf("linalg: CG did not converge in %d iterations (residual %g)", maxIter, math.Sqrt(rs)/bnorm)
}

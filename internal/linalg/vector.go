package linalg

import (
	"fmt"
	"math"
)

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("linalg: Dot length mismatch %d vs %d", len(a), len(b))
	}
	return dot(a, b), nil
}

// dot is the no-check kernel behind Dot, for callers that have already
// validated the operand lengths.
func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(dot(v, v)) }

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += a*x in place and returns y.
func AXPY(a float64, x, y []float64) ([]float64, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("linalg: AXPY length mismatch %d vs %d", len(x), len(y))
	}
	axpy(a, x, y)
	return y, nil
}

// axpy is the no-check kernel behind AXPY.
func axpy(a float64, x, y []float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}

// Scale multiplies v by a in place and returns v.
func Scale(a float64, v []float64) []float64 {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub returns a new vector a - b.
func Sub(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("linalg: Sub length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// ConjugateGradient solves A x = b for a symmetric positive-definite A,
// starting from the zero vector, stopping when the residual norm drops
// below tol*|b| or maxIter iterations elapse. It returns the solution and
// the number of iterations performed.
func ConjugateGradient(a *Matrix, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, 0, fmt.Errorf("linalg: CG needs a square matrix, got %dx%d", n, a.Cols())
	}
	if len(b) != n {
		return nil, 0, fmt.Errorf("linalg: CG rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	bnorm := Norm2(b)
	if bnorm == 0 { //nanolint:ignore floateq an exactly zero rhs has the exact solution x = 0; any nonzero rhs takes the iterative path
		return x, 0, nil
	}
	rs := dot(r, r)
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rs) <= tol*bnorm {
			return x, k, nil
		}
		ap := a.mulVec(p)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, k, fmt.Errorf("linalg: CG: matrix not positive definite (p'Ap=%g)", pap)
		}
		alpha := rs / pap
		axpy(alpha, p, x)
		axpy(-alpha, ap, r)
		rsNew := dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	if math.Sqrt(rs) <= tol*bnorm {
		return x, maxIter, nil
	}
	return x, maxIter, fmt.Errorf("linalg: CG did not converge in %d iterations (residual %g)", maxIter, math.Sqrt(rs)/bnorm)
}

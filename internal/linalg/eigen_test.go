package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// reconstruct evaluates (Q diag(w) Q^T)[i][j].
func reconstruct(w []float64, q *Matrix, i, j int) float64 {
	s := 0.0
	for k := range w {
		s += q.At(i, k) * w[k] * q.At(j, k)
	}
	return s
}

func checkEigen(t *testing.T, d, e []float64) {
	t.Helper()
	n := len(d)
	w, q, err := SymTridiagEigen(d, e)
	if err != nil {
		t.Fatalf("SymTridiagEigen: %v", err)
	}
	scale := 0.0
	for _, v := range d {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, v := range e {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	tol := 1e-12 * scale * float64(n)
	// Ascending eigenvalues.
	for k := 1; k < n; k++ {
		if w[k] < w[k-1] {
			t.Errorf("eigenvalues not ascending: w[%d]=%g < w[%d]=%g", k, w[k], k-1, w[k-1])
		}
	}
	// Orthonormal columns.
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += q.At(i, a) * q.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(s-want) > 1e-12*float64(n) {
				t.Errorf("Q^T Q [%d][%d] = %g, want %g", a, b, s, want)
			}
		}
	}
	// Reconstruction matches the tridiagonal input.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			switch {
			case i == j:
				want = d[i]
			case j == i+1:
				want = e[i]
			case j == i-1:
				want = e[j]
			}
			if got := reconstruct(w, q, i, j); math.Abs(got-want) > tol {
				t.Errorf("reconstruction [%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestSymTridiagEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	w, _, err := SymTridiagEigen([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-3) > 1e-14 {
		t.Errorf("eigenvalues %v, want [1 3]", w)
	}
}

func TestSymTridiagEigenDiagonal(t *testing.T) {
	// Zero off-diagonals: eigenvalues are the sorted diagonal.
	w, q, err := SymTridiagEigen([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range []float64{1, 2, 3} {
		if math.Abs(w[k]-want) > 1e-14 {
			t.Errorf("w[%d] = %g, want %g", k, w[k], want)
		}
	}
	// Columns must be permuted unit vectors: q[1][0]=1 pairs eigenvalue 1.
	if math.Abs(math.Abs(q.At(1, 0))-1) > 1e-14 {
		t.Errorf("eigenvector for eigenvalue 1 = column 0 of %v", q)
	}
}

func TestSymTridiagEigenSingle(t *testing.T) {
	w, q, err := SymTridiagEigen([]float64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 5 || math.Abs(q.At(0, 0)) != 1 {
		t.Errorf("1x1 decomposition w=%v q=%v", w, q)
	}
}

func TestSymTridiagEigenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 10
		}
		for i := range e {
			e[i] = rng.NormFloat64() * 10
		}
		checkEigen(t, d, e)
	}
}

func TestSymTridiagEigenThermalShaped(t *testing.T) {
	// A diagonally dominant system like the bus thermal network: positive
	// diagonal, negative off-diagonal, widely varying magnitudes.
	n := 33
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 500 + 10*float64(i)
	}
	for i := range e {
		e[i] = -140
	}
	w, _, err := SymTridiagEigen(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range w {
		if v <= 0 {
			t.Errorf("diagonally dominant SPD system produced eigenvalue w[%d] = %g <= 0", k, v)
		}
	}
	checkEigen(t, d, e)
}

func TestSymTridiagEigenValidation(t *testing.T) {
	if _, _, err := SymTridiagEigen(nil, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := SymTridiagEigen([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("wrong off-diagonal length accepted")
	}
	if _, _, err := SymTridiagEigen([]float64{math.NaN(), 2}, []float64{1}); err == nil {
		t.Error("NaN diagonal accepted")
	}
	if _, _, err := SymTridiagEigen([]float64{1, 2}, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf off-diagonal accepted")
	}
}

func TestSolveTridiagonalIntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 17
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 4 + rng.Float64()
		if i > 0 {
			sub[i] = -rng.Float64()
		}
		if i < n-1 {
			sup[i] = -rng.Float64()
		}
		rhs[i] = rng.NormFloat64()
	}
	want, err := SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		t.Fatal(err)
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	got := make([]float64, n)
	if err := SolveTridiagonalInto(sub, diag, sup, rhs, cp, dp, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("x[%d] = %g, want %g (bit-identical)", i, got[i], want[i])
		}
	}
	// Length validation.
	if err := SolveTridiagonalInto(sub, diag, sup, rhs, cp[:1], dp, got); err == nil {
		t.Error("short scratch accepted")
	}
}

func TestMulVecInto(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 3)
	if err := m.MulVecInto([]float64{1, 1}, y); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{3, 7, 11} {
		if y[i] != want {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
	if err := m.MulVecInto([]float64{1}, y); err == nil {
		t.Error("short x accepted")
	}
	if err := m.MulVecInto([]float64{1, 1}, y[:2]); err == nil {
		t.Error("short y accepted")
	}
}

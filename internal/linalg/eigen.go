package linalg

import (
	"fmt"
	"math"
	"sort"
)

// eigenEps is the relative deflation threshold of the QL iteration: an
// off-diagonal element is treated as zero once it is below machine epsilon
// times the magnitude of its diagonal neighbours.
const eigenEps = 2.220446049250313e-16

// eigenMaxIter bounds the implicit-shift sweeps per eigenvalue; symmetric
// tridiagonal QL converges in a handful of sweeps, so hitting this limit
// indicates non-finite input.
const eigenMaxIter = 64

// SymTridiagEigen computes the full eigendecomposition of the symmetric
// tridiagonal matrix T with main diagonal d (length n) and off-diagonal e
// (length n-1, e[i] coupling rows i and i+1). It returns the eigenvalues in
// ascending order and an orthonormal matrix Q whose columns are the
// matching eigenvectors, so that T = Q * diag(w) * Q^T.
//
// The implementation is the classical QL iteration with implicit Wilkinson
// shifts (Golub & Van Loan, Sec. 8.3): O(n^2) for the eigenvalues plus
// O(n^3) for accumulating the rotations into Q. It is the factorisation
// behind the thermal model's exact interval propagator, where T is the
// symmetrized conductance-over-capacitance system of the bus.
func SymTridiagEigen(d, e []float64) ([]float64, *Matrix, error) {
	n := len(d)
	if n == 0 {
		return nil, nil, fmt.Errorf("linalg: SymTridiagEigen of empty matrix")
	}
	if len(e) != n-1 {
		return nil, nil, fmt.Errorf("linalg: SymTridiagEigen off-diagonal length %d, want %d", len(e), n-1)
	}
	for i, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("linalg: SymTridiagEigen non-finite diagonal d[%d] = %g", i, v)
		}
	}
	for i, v := range e {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("linalg: SymTridiagEigen non-finite off-diagonal e[%d] = %g", i, v)
		}
	}
	// Working copies: dd becomes the eigenvalues, ee is consumed. ee is
	// padded to length n so index m+1 reads below never go out of range.
	dd := make([]float64, n)
	copy(dd, d)
	ee := make([]float64, n)
	copy(ee, e)
	z := newMatrix(n, n)
	for i := 0; i < n; i++ {
		z.Set(i, i, 1)
	}

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first negligible off-diagonal at or after l.
			var m int
			for m = l; m < n-1; m++ {
				t := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= eigenEps*t {
					break
				}
			}
			if m == l {
				break // dd[l] has converged to an eigenvalue
			}
			if iter == eigenMaxIter {
				return nil, nil, fmt.Errorf("linalg: SymTridiagEigen did not converge at row %d", l)
			}
			// Wilkinson-style implicit shift from the leading 2x2.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 { //nanolint:ignore floateq exact underflow of the rotation radius; the sweep restarts cleanly
					dd[i+1] -= p
					ee[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				// Accumulate the Givens rotation into the eigenvector
				// matrix (columns i and i+1).
				for k := 0; k < n; k++ {
					f := z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if underflow {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort eigenvalues ascending, permuting eigenvector columns to match.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return dd[perm[a]] < dd[perm[b]] })
	w := make([]float64, n)
	q := newMatrix(n, n)
	for j, pj := range perm {
		w[j] = dd[pj]
		for i := 0; i < n; i++ {
			q.Set(i, j, z.At(i, pj))
		}
	}
	return w, q, nil
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix with partial
// (row) pivoting. The input is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs = a
				p = i
			}
		}
		if maxAbs == 0 { //nanolint:ignore floateq an exactly zero pivot column is structural singularity
			return nil, ErrSingular
		}
		if p != k {
			rowP, rowK := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				rowP[j], rowK[j] = rowK[j], rowP[j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 { //nanolint:ignore floateq sparsity skip: a zero multiplier eliminates the row update
				continue
			}
			rowI, rowK := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 { //nanolint:ignore floateq an exactly zero diagonal after elimination is singular
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveMatrix solves A X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	n := f.lu.Rows()
	if b.Rows() != n {
		return nil, fmt.Errorf("linalg: LU solve rhs has %d rows, want %d", b.Rows(), n)
	}
	out := newMatrix(n, b.Cols())
	col := make([]float64, n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU is a convenience wrapper: factor A and solve A x = b.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Invert returns A^-1 via LU factorization.
func Invert(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	id, err := Identity(a.Rows())
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(id)
}

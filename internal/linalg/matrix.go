// Package linalg implements the small dense linear-algebra kernel needed by
// the capacitance extractor (dense collocation systems solved by LU) and the
// thermal model (tridiagonal steady-state solves). It is self-contained and
// uses only the standard library.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("linalg: invalid matrix dimensions %dx%d", rows, cols)
	}
	return newMatrix(rows, cols), nil
}

// newMatrix is the no-check constructor behind NewMatrix, for callers whose
// dimensions are positive by construction (e.g. taken from an existing
// matrix).
func newMatrix(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewSquare returns an n x n zero matrix for callers whose dimension is
// positive by construction (e.g. taken from an existing matrix or a
// validated configuration). It panics on n <= 0 — a programming error at
// the call site, not an input condition.
func NewSquare(n int) *Matrix {
	if n <= 0 {
		//nanolint:ignore libpanic dimension is positive by construction at every call site; a violation is a programming error, not input
		panic(fmt.Sprintf("linalg: NewSquare(%d)", n))
	}
	return newMatrix(n, n)
}

// NewRect is NewSquare's rectangular sibling: a rows x cols zero matrix
// for callers whose dimensions are positive by construction. It panics on
// non-positive dimensions.
func NewRect(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		//nanolint:ignore libpanic dimension is positive by construction at every call site; a violation is a programming error, not input
		panic(fmt.Sprintf("linalg: NewRect(%d, %d)", rows, cols))
	}
	return newMatrix(rows, cols)
}

// NewMatrixFromRows builds a matrix from row slices, which must be equal length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: NewMatrixFromRows of empty rows")
	}
	m := newMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: invalid identity dimension %d", n)
	}
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := newMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := newMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec computes y = M x. x must have length Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch: %d vs %d", len(x), m.cols)
	}
	return m.mulVec(x), nil
}

// mulVec is the no-check kernel behind MulVec.
func (m *Matrix) mulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecInto computes y = M x without allocating. x must have length Cols
// and y length Rows; y must not alias x. The dot product runs over four
// independent accumulators: a single running sum serializes on the FP-add
// latency (~4 cycles per element), which made this kernel the hot-path
// floor of the thermal propagator. The deterministic fixed merge order
// keeps results reproducible run to run.
//
//nanolint:hotpath per-interval thermal matvec; allocates nothing
func (m *Matrix) MulVecInto(x, y []float64) error {
	if len(x) != m.cols || len(y) != m.rows {
		return fmt.Errorf("linalg: MulVecInto dimension mismatch: x=%d y=%d for %dx%d", len(x), len(y), m.rows, m.cols)
	}
	for i := 0; i < m.rows; i++ {
		r := m.Row(i)
		xv := x
		var s0, s1, s2, s3 float64
		for len(r) >= 4 && len(xv) >= 4 {
			s0 += r[0] * xv[0]
			s1 += r[1] * xv[1]
			s2 += r[2] * xv[2]
			s3 += r[3] * xv[3]
			r, xv = r[4:], xv[4:]
		}
		for j := range r {
			s0 += r[j] * xv[j]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
	return nil
}

// Mul computes the matrix product M*B.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("linalg: Mul dimension mismatch: %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := newMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 { //nanolint:ignore floateq sparsity skip: zero entries contribute nothing to the product
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// MulInto computes out = M*B without allocating. out must be Rows x
// b.Cols and must not alias m or b. It is the kernel behind the banded
// thermal grid's spectral transforms, where the operand shapes repeat
// every sampling interval and the scratch matrices are preallocated.
func (m *Matrix) MulInto(b, out *Matrix) error {
	if m.cols != b.rows {
		return fmt.Errorf("linalg: MulInto dimension mismatch: %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	if out.rows != m.rows || out.cols != b.cols {
		return fmt.Errorf("linalg: MulInto output is %dx%d, want %dx%d", out.rows, out.cols, m.rows, b.cols)
	}
	if out == m || out == b {
		return fmt.Errorf("linalg: MulInto output aliases an operand")
	}
	for i := range out.data {
		out.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 { //nanolint:ignore floateq sparsity skip: zero entries contribute nothing to the product
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return nil
}

// IsSymmetric reports whether the matrix is square and symmetric within tol
// (relative to the largest absolute element).
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	maxAbs := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 { //nanolint:ignore floateq an exactly zero matrix has no scale for the relative tolerance and is trivially symmetric
		return true
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element.
func (m *Matrix) MaxAbs() float64 {
	maxAbs := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .5g", m.At(i, j))
			if j < m.cols-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package linalg

import "fmt"

// SolveTridiagonal solves a tridiagonal system using the Thomas algorithm.
// sub is the subdiagonal (length n, sub[0] unused), diag the main diagonal
// (length n), sup the superdiagonal (length n, sup[n-1] unused) and rhs the
// right-hand side. The inputs are not modified. The Thomas algorithm is
// stable for the diagonally dominant systems produced by the thermal
// network's steady state.
func SolveTridiagonal(sub, diag, sup, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: tridiagonal length mismatch: sub=%d diag=%d sup=%d rhs=%d",
			len(sub), len(diag), len(sup), len(rhs))
	}
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty tridiagonal system")
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if diag[0] == 0 { //nanolint:ignore floateq an exactly zero leading diagonal entry is structural singularity
		return nil, ErrSingular
	}
	cp[0] = sup[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i]*cp[i-1]
		if den == 0 { //nanolint:ignore floateq an exactly zero eliminated diagonal is singular
			return nil, ErrSingular
		}
		cp[i] = sup[i] / den
		dp[i] = (rhs[i] - sub[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

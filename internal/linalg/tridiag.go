package linalg

import "fmt"

// SolveTridiagonal solves a tridiagonal system using the Thomas algorithm.
// sub is the subdiagonal (length n, sub[0] unused), diag the main diagonal
// (length n), sup the superdiagonal (length n, sup[n-1] unused) and rhs the
// right-hand side. The inputs are not modified. The Thomas algorithm is
// stable for the diagonally dominant systems produced by the thermal
// network's steady state.
func SolveTridiagonal(sub, diag, sup, rhs []float64) ([]float64, error) {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: tridiagonal length mismatch: sub=%d diag=%d sup=%d rhs=%d",
			len(sub), len(diag), len(sup), len(rhs))
	}
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty tridiagonal system")
	}
	x := make([]float64, n)
	if err := SolveTridiagonalInto(sub, diag, sup, rhs, make([]float64, n), make([]float64, n), x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTridiagonalInto is the allocation-free kernel behind
// SolveTridiagonal: cp and dp are caller-provided scratch vectors and x
// receives the solution, all of length n. Hot paths (the thermal
// propagator's per-interval steady-state solve) keep these buffers across
// calls. The inputs sub/diag/sup/rhs are not modified; x may alias rhs.
func SolveTridiagonalInto(sub, diag, sup, rhs, cp, dp, x []float64) error {
	n := len(diag)
	if len(sub) != n || len(sup) != n || len(rhs) != n || len(cp) != n || len(dp) != n || len(x) != n {
		return fmt.Errorf("linalg: tridiagonal length mismatch: sub=%d diag=%d sup=%d rhs=%d cp=%d dp=%d x=%d",
			len(sub), len(diag), len(sup), len(rhs), len(cp), len(dp), len(x))
	}
	if n == 0 {
		return fmt.Errorf("linalg: empty tridiagonal system")
	}
	if diag[0] == 0 { //nanolint:ignore floateq an exactly zero leading diagonal entry is structural singularity
		return ErrSingular
	}
	cp[0] = sup[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i]*cp[i-1]
		if den == 0 { //nanolint:ignore floateq an exactly zero eliminated diagonal is singular
			return ErrSingular
		}
		cp[i] = sup[i] / den
		dp[i] = (rhs[i] - sub[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// mustM unwraps a (Matrix, error) constructor result for test fixtures
// whose inputs are valid by construction.
func mustM(m *Matrix, err error) *Matrix {
	if err != nil {
		panic(err)
	}
	return m
}

// mustV0 unwraps a (float64, error) result the same way.
func mustV0(v float64, err error) float64 {
	if err != nil {
		panic(err)
	}
	return v
}

// mustV unwraps a (vector, error) result the same way.
func mustV(v []float64, err error) []float64 {
	if err != nil {
		panic(err)
	}
	return v
}

func TestNewMatrixZeroed(t *testing.T) {
	m := mustM(NewMatrix(3, 4))
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixInvalidDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		if _, err := NewMatrix(dims[0], dims[1]); err == nil {
			t.Errorf("NewMatrix(%d,%d) returned nil error", dims[0], dims[1])
		}
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows returned nil error")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Error("empty rows returned nil error")
	}
}

func TestSetAtAdd(t *testing.T) {
	m := mustM(NewMatrix(2, 2))
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Errorf("At(0,1) = %g, want 7.5", got)
	}
}

func TestIdentityMulVec(t *testing.T) {
	m := mustM(Identity(4))
	x := []float64{1, -2, 3, 4}
	y := mustV(m.MulVec(x))
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("I*x[%d] = %g, want %g", i, y[i], x[i])
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{1, 2}, {3, 4}}))
	b := mustM(NewMatrixFromRows([][]float64{{5, 6}, {7, 8}}))
	c := mustM(a.Mul(b))
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}}))
	tr := a.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s := mustM(NewMatrixFromRows([][]float64{{2, 1}, {1, 3}}))
	if !s.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a := mustM(NewMatrixFromRows([][]float64{{2, 1}, {0, 3}}))
	if a.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	r := mustM(NewMatrixFromRows([][]float64{{2, 1, 1}, {1, 3, 1}}))
	if r.IsSymmetric(1e-12) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{1, 2}, {3, 4}}))
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}))
	b := []float64{8, -11, -3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{1, 2}, {2, 4}}))
	if _, err := FactorLU(a); err == nil {
		t.Error("FactorLU of singular matrix returned nil error")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := mustM(NewMatrix(2, 3))
	if _, err := FactorLU(a); err == nil {
		t.Error("FactorLU of non-square matrix returned nil error")
	}
}

func TestLUDet(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{4, 3}, {6, 3}}))
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if !almostEqual(f.Det(), -6, 1e-12) {
		t.Errorf("det = %g, want -6", f.Det())
	}
}

func TestInvert(t *testing.T) {
	a := mustM(NewMatrixFromRows([][]float64{{4, 7}, {2, 6}}))
	inv, err := Invert(a)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	prod := mustM(a.Mul(inv))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-12) {
				t.Errorf("A*A^-1[%d][%d] = %g, want %g", i, j, prod.At(i, j), want)
			}
		}
	}
}

// Property: for random well-conditioned matrices, LU solve reproduces b.
func TestLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := mustM(NewMatrix(n, n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			// Diagonal boost for conditioning.
			a.Add(i, i, float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := mustV(a.MulVec(xTrue))
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTridiagonalKnown(t *testing.T) {
	// System: [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] -> x = [1 1 1].
	sub := []float64{0, -1, -1}
	diag := []float64{2, 2, 2}
	sup := []float64{-1, -1, 0}
	rhs := []float64{1, 0, 1}
	x, err := SolveTridiagonal(sub, diag, sup, rhs)
	if err != nil {
		t.Fatalf("SolveTridiagonal: %v", err)
	}
	for i, want := range []float64{1, 1, 1} {
		if !almostEqual(x[i], want, 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestTridiagonalMismatch(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{1}, []float64{1, 2}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := SolveTridiagonal(nil, nil, nil, nil); err == nil {
		t.Error("empty system not detected")
	}
}

// Property: Thomas algorithm agrees with dense LU on random diagonally
// dominant tridiagonal systems.
func TestTridiagonalMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		sub := make([]float64, n)
		diag := make([]float64, n)
		sup := make([]float64, n)
		rhs := make([]float64, n)
		dense := mustM(NewMatrix(n, n))
		for i := 0; i < n; i++ {
			if i > 0 {
				sub[i] = rng.NormFloat64()
				dense.Set(i, i-1, sub[i])
			}
			if i < n-1 {
				sup[i] = rng.NormFloat64()
				dense.Set(i, i+1, sup[i])
			}
			diag[i] = 4 + rng.Float64() // dominant
			dense.Set(i, i, diag[i])
			rhs[i] = rng.NormFloat64()
		}
		xt, err := SolveTridiagonal(sub, diag, sup, rhs)
		if err != nil {
			t.Fatalf("SolveTridiagonal: %v", err)
		}
		xl, err := SolveLU(dense, rhs)
		if err != nil {
			t.Fatalf("SolveLU: %v", err)
		}
		for i := range xt {
			if !almostEqual(xt[i], xl[i], 1e-9) {
				t.Fatalf("trial %d: x[%d]: thomas %g, lu %g", trial, i, xt[i], xl[i])
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := mustV0(Dot(a, b)); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := Dot(a, []float64{1}); err == nil {
		t.Error("Dot length mismatch returned nil error")
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Errorf("NormInf = %g, want 7", got)
	}
	y := []float64{1, 1, 1}
	mustV(AXPY(2, a, y))
	if _, err := AXPY(2, a, []float64{1}); err == nil {
		t.Error("AXPY length mismatch returned nil error")
	}
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("AXPY[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	d := mustV(Sub(b, a))
	if _, err := Sub(b, []float64{1}); err == nil {
		t.Error("Sub length mismatch returned nil error")
	}
	for i := range d {
		if d[i] != 3 {
			t.Errorf("Sub[%d] = %g, want 3", i, d[i])
		}
	}
	s := Scale(0.5, []float64{2, 4})
	if s[0] != 1 || s[1] != 2 {
		t.Errorf("Scale = %v, want [1 2]", s)
	}
}

func TestConjugateGradientSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	// Build SPD matrix A = B'B + n*I.
	b := mustM(NewMatrix(n, n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := mustM(b.Transpose().Mul(b))
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	rhs := mustV(a.MulVec(xTrue))
	x, iters, err := ConjugateGradient(a, rhs, 1e-12, 10*n)
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if iters == 0 {
		t.Error("CG converged in 0 iterations on nonzero rhs")
	}
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-6) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestConjugateGradientZeroRHS(t *testing.T) {
	a := mustM(Identity(3))
	x, iters, err := ConjugateGradient(a, []float64{0, 0, 0}, 1e-12, 10)
	if err != nil || iters != 0 {
		t.Fatalf("CG zero rhs: x=%v iters=%d err=%v", x, iters, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Error("CG zero rhs returned nonzero solution")
		}
	}
}

package ode

import (
	"math"
	"testing"
)

// expSys is dy/dt = -lambda*y with exact solution y0*exp(-lambda*t).
type expSys struct{ lambda float64 }

func (e expSys) Dim() int { return 1 }
func (e expSys) Derivatives(t float64, y, dydt []float64) {
	dydt[0] = -e.lambda * y[0]
}

// oscSys is the harmonic oscillator y” = -w^2 y as a 2-dim system.
type oscSys struct{ w float64 }

func (o oscSys) Dim() int { return 2 }
func (o oscSys) Derivatives(t float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -o.w * o.w * y[0]
}

func TestRK4ExponentialDecay(t *testing.T) {
	s := expSys{lambda: 3}
	y := []float64{2}
	integ := NewRK4(1e-3)
	if _, err := integ.Integrate(s, 0, 1, y); err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	want := 2 * math.Exp(-3)
	if math.Abs(y[0]-want) > 1e-9 {
		t.Errorf("y(1) = %.12g, want %.12g", y[0], want)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving the step should reduce error by ~16x for a smooth problem.
	s := expSys{lambda: 1}
	exact := math.Exp(-1)
	errAt := func(h float64) float64 {
		y := []float64{1}
		integ := NewRK4(h)
		if _, err := integ.Integrate(s, 0, 1, y); err != nil {
			t.Fatalf("Integrate: %v", err)
		}
		return math.Abs(y[0] - exact)
	}
	e1 := errAt(0.1)
	e2 := errAt(0.05)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("error ratio for halved step = %.2f, want ~16 (4th order)", ratio)
	}
}

func TestRK4Oscillator(t *testing.T) {
	s := oscSys{w: 2}
	y := []float64{1, 0} // y(0)=1, y'(0)=0 -> y(t)=cos(2t)
	integ := NewRK4(1e-3)
	if _, err := integ.Integrate(s, 0, math.Pi, y); err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if math.Abs(y[0]-math.Cos(2*math.Pi)) > 1e-7 {
		t.Errorf("y(pi) = %g, want %g", y[0], math.Cos(2*math.Pi))
	}
}

func TestRK4BadSpan(t *testing.T) {
	integ := NewRK4(0.1)
	y := []float64{1}
	if _, err := integ.Integrate(expSys{1}, 1, 1, y); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := integ.Integrate(expSys{1}, 1, 0, y); err == nil {
		t.Error("negative span accepted")
	}
}

func TestRK4DimMismatch(t *testing.T) {
	integ := NewRK4(0.1)
	if _, err := integ.Integrate(expSys{1}, 0, 1, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestRK4SingleStepWhenNoMaxStep(t *testing.T) {
	integ := NewRK4(0)
	y := []float64{1}
	evals, err := integ.Integrate(expSys{1}, 0, 1, y)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if evals != 4 {
		t.Errorf("evals = %d, want 4 (single RK4 step)", evals)
	}
}

func TestEulerFirstOrderConvergence(t *testing.T) {
	s := expSys{lambda: 1}
	exact := math.Exp(-1)
	errAt := func(h float64) float64 {
		y := []float64{1}
		integ := NewEuler(h)
		if _, err := integ.Integrate(s, 0, 1, y); err != nil {
			t.Fatalf("Integrate: %v", err)
		}
		return math.Abs(y[0] - exact)
	}
	e1 := errAt(0.01)
	e2 := errAt(0.005)
	ratio := e1 / e2
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("Euler error ratio = %.2f, want ~2 (1st order)", ratio)
	}
}

func TestRK45MatchesExact(t *testing.T) {
	s := oscSys{w: 1}
	y := []float64{0, 1} // y(t)=sin(t)
	integ := NewRK45(1e-10, 1e-13)
	evals, err := integ.Integrate(s, 0, 10, y)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if evals == 0 {
		t.Error("no derivative evaluations performed")
	}
	if math.Abs(y[0]-math.Sin(10)) > 1e-8 {
		t.Errorf("y(10) = %g, want %g", y[0], math.Sin(10))
	}
	if math.Abs(y[1]-math.Cos(10)) > 1e-8 {
		t.Errorf("y'(10) = %g, want %g", y[1], math.Cos(10))
	}
}

func TestRK45AgreesWithRK4(t *testing.T) {
	// The integrators must agree on a stiff-ish linear decay like the
	// thermal network's.
	s := expSys{lambda: 50}
	y4 := []float64{1}
	y45 := []float64{1}
	if _, err := NewRK4(1e-4).Integrate(s, 0, 0.5, y4); err != nil {
		t.Fatalf("RK4: %v", err)
	}
	if _, err := NewRK45(1e-10, 1e-14).Integrate(s, 0, 0.5, y45); err != nil {
		t.Fatalf("RK45: %v", err)
	}
	if math.Abs(y4[0]-y45[0]) > 1e-9 {
		t.Errorf("RK4 %g vs RK45 %g differ", y4[0], y45[0])
	}
}

func TestRK45BadSpan(t *testing.T) {
	if _, err := NewRK45(0, 0).Integrate(expSys{1}, 2, 1, []float64{1}); err == nil {
		t.Error("negative span accepted")
	}
}

func TestFuncAdapter(t *testing.T) {
	f := Func{N: 1, F: func(t float64, y, dydt []float64) { dydt[0] = 1 }}
	if f.Dim() != 1 {
		t.Fatalf("Dim = %d, want 1", f.Dim())
	}
	y := []float64{0}
	if _, err := NewRK4(0.1).Integrate(f, 0, 2, y); err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if math.Abs(y[0]-2) > 1e-12 {
		t.Errorf("y = %g, want 2", y[0])
	}
}

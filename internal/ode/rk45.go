package ode

import (
	"fmt"
	"math"
)

// RK45 is an adaptive Dormand-Prince 5(4) integrator with embedded error
// control. It is used to cross-check the fixed-step RK4 results on the
// thermal network (the two must agree within tolerance for the reproduced
// figures to be trustworthy).
type RK45 struct {
	// RelTol and AbsTol control the local error estimate. Zero values
	// default to 1e-8 and 1e-12.
	RelTol, AbsTol float64
	// MaxSteps bounds the number of accepted+rejected steps; zero means
	// 1e6.
	MaxSteps int
}

// NewRK45 returns an adaptive integrator with the given tolerances.
func NewRK45(relTol, absTol float64) *RK45 {
	return &RK45{RelTol: relTol, AbsTol: absTol}
}

// Dormand-Prince coefficients.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// 5th-order solution weights.
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	// 4th-order (embedded) solution weights.
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// Integrate advances y from t0 to t1 adaptively.
func (r *RK45) Integrate(s System, t0, t1 float64, y []float64) (int, error) {
	span := t1 - t0
	if span <= 0 {
		return 0, ErrBadSpan
	}
	n := s.Dim()
	if len(y) != n {
		return 0, fmt.Errorf("ode: state length %d, want %d", len(y), n)
	}
	relTol := r.RelTol
	if relTol <= 0 {
		relTol = 1e-8
	}
	absTol := r.AbsTol
	if absTol <= 0 {
		absTol = 1e-12
	}
	maxSteps := r.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}

	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	y5 := make([]float64, n)
	y4 := make([]float64, n)

	t := t0
	h := span / 16
	evals := 0
	for step := 0; step < maxSteps; step++ {
		if t >= t1 {
			return evals, nil
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Stage evaluations.
		s.Derivatives(t, y, k[0])
		evals++
		for stage := 1; stage < 7; stage++ {
			copy(ytmp, y)
			for prev := 0; prev < stage; prev++ {
				a := dpA[stage][prev]
				if a == 0 { //nanolint:ignore floateq Butcher tableau entries are exact constants; zeros encode stage sparsity
					continue
				}
				for i := 0; i < n; i++ {
					ytmp[i] += h * a * k[prev][i]
				}
			}
			s.Derivatives(t+dpC[stage]*h, ytmp, k[stage])
			evals++
		}
		// Candidate solutions and error estimate.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			s5, s4 := 0.0, 0.0
			for stage := 0; stage < 7; stage++ {
				s5 += dpB5[stage] * k[stage][i]
				s4 += dpB4[stage] * k[stage][i]
			}
			y5[i] = y[i] + h*s5
			y4[i] = y[i] + h*s4
			sc := absTol + relTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := (y5[i] - y4[i]) / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if errNorm <= 1 {
			// Accept.
			t += h
			copy(y, y5)
		}
		// Step-size update (standard PI-free controller).
		factor := 0.9
		if errNorm > 0 {
			factor = 0.9 * math.Pow(1/errNorm, 0.2)
		} else {
			factor = 5
		}
		factor = math.Min(5, math.Max(0.2, factor))
		h *= factor
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return evals, fmt.Errorf("ode: RK45 step size degenerated to %g at t=%g", h, t)
		}
	}
	return evals, fmt.Errorf("ode: RK45 exceeded %d steps (t=%g of %g)", maxSteps, t, t1)
}

// Package ode provides initial-value-problem integrators for the thermal
// network. The paper integrates its thermal-RC equations with a classical
// fourth-order Runge-Kutta method (Sec. 5.3); that integrator is the
// default here. An adaptive Dormand-Prince RK45 and an explicit Euler
// method are provided for cross-validation and ablation studies.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// System is the right-hand side of an ODE system: dydt receives the
// derivative dy/dt at time t and state y. Implementations must treat y as
// read-only and fully overwrite dydt.
type System interface {
	// Dim returns the number of state variables.
	Dim() int
	// Derivatives computes dy/dt into dydt.
	Derivatives(t float64, y, dydt []float64)
}

// Func adapts a plain function to the System interface.
type Func struct {
	N int
	F func(t float64, y, dydt []float64)
}

// Dim returns the configured dimension.
func (f Func) Dim() int { return f.N }

// Derivatives invokes the wrapped function.
func (f Func) Derivatives(t float64, y, dydt []float64) { f.F(t, y, dydt) }

// Integrator advances a System from (t, y) over a time span.
type Integrator interface {
	// Integrate advances y in place from t0 to t1 and returns the number
	// of derivative evaluations performed.
	Integrate(s System, t0, t1 float64, y []float64) (evals int, err error)
}

// ErrBadSpan is returned for a non-positive integration span.
var ErrBadSpan = errors.New("ode: integration span must be positive")

// RK4 is the classical fixed-step fourth-order Runge-Kutta integrator used
// by the paper. MaxStep bounds the internal step; the span is divided into
// equal steps no larger than MaxStep.
type RK4 struct {
	// MaxStep is the largest internal step size in seconds. Zero means
	// take the whole span in a single step.
	MaxStep float64

	k1, k2, k3, k4, tmp []float64
}

// NewRK4 returns an RK4 integrator with the given maximum internal step.
func NewRK4(maxStep float64) *RK4 { return &RK4{MaxStep: maxStep} }

func (r *RK4) ensure(n int) {
	if len(r.k1) < n {
		r.k1 = make([]float64, n)
		r.k2 = make([]float64, n)
		r.k3 = make([]float64, n)
		r.k4 = make([]float64, n)
		r.tmp = make([]float64, n)
	}
}

// Integrate advances y from t0 to t1 with fixed RK4 steps.
func (r *RK4) Integrate(s System, t0, t1 float64, y []float64) (int, error) {
	span := t1 - t0
	if span <= 0 {
		return 0, ErrBadSpan
	}
	n := s.Dim()
	if len(y) != n {
		return 0, fmt.Errorf("ode: state length %d, want %d", len(y), n)
	}
	steps := 1
	if r.MaxStep > 0 && span > r.MaxStep {
		// Ceil, not trunc+1: an exact multiple of MaxStep should not pay
		// an extra (and smaller) step.
		steps = int(math.Ceil(span / r.MaxStep))
	}
	h := span / float64(steps)
	r.ensure(n)
	t := t0
	evals := 0
	for i := 0; i < steps; i++ {
		r.step(s, t, h, y)
		evals += 4
		t += h
	}
	return evals, nil
}

// step performs one classical RK4 step of size h, updating y in place.
func (r *RK4) step(s System, t, h float64, y []float64) {
	n := len(y)
	s.Derivatives(t, y, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k1[i]
	}
	s.Derivatives(t+0.5*h, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + 0.5*h*r.k2[i]
	}
	s.Derivatives(t+0.5*h, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = y[i] + h*r.k3[i]
	}
	s.Derivatives(t+h, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		y[i] += h / 6 * (r.k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
}

// Euler is an explicit first-order integrator, provided for ablation
// studies of integrator accuracy.
type Euler struct {
	// MaxStep bounds the internal step size; zero means a single step.
	MaxStep float64
	dydt    []float64
}

// NewEuler returns an Euler integrator with the given maximum step.
func NewEuler(maxStep float64) *Euler { return &Euler{MaxStep: maxStep} }

// Integrate advances y from t0 to t1 with fixed explicit-Euler steps.
func (e *Euler) Integrate(s System, t0, t1 float64, y []float64) (int, error) {
	span := t1 - t0
	if span <= 0 {
		return 0, ErrBadSpan
	}
	n := s.Dim()
	if len(y) != n {
		return 0, fmt.Errorf("ode: state length %d, want %d", len(y), n)
	}
	steps := 1
	if e.MaxStep > 0 && span > e.MaxStep {
		steps = int(math.Ceil(span / e.MaxStep))
	}
	h := span / float64(steps)
	if len(e.dydt) < n {
		e.dydt = make([]float64, n)
	}
	t := t0
	for i := 0; i < steps; i++ {
		s.Derivatives(t, y, e.dydt)
		for j := 0; j < n; j++ {
			y[j] += h * e.dydt[j]
		}
		t += h
	}
	return steps, nil
}

// Package fdm implements a two-dimensional steady-state heat-conduction
// solver over the bus cross-section — an independent, first-principles
// check on the paper's lumped thermal-RC network. The paper's Eq. 6
// resistances come from the compact model of Chiang/Banerjee/Saraswat,
// who validated against SPICE field solutions; this package plays that
// validating role here: the RC network's steady-state wire temperatures
// must agree with the field solution within the compact model's accuracy.
//
// The domain is the bus cross-section: a grounded isothermal plane at the
// bottom (the layer below the ILD), dielectric everywhere else, copper
// wire rectangles with uniform volumetric heat generation, and adiabatic
// top/side boundaries (matching the RC model's heat paths: down through
// the ILD and laterally between wires). The conduction equation
// ∇·(k∇T) + q = 0 is discretised with a 5-point finite-volume stencil
// (harmonic-mean interface conductivities) and solved with Gauss-Seidel
// successive over-relaxation.
package fdm

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// Grid is the discretised cross-section.
type Grid struct {
	nx, ny int
	dx, dy float64
	// k is the cell thermal conductivity (W/mK), row-major, ny rows of
	// nx cells, row 0 at the bottom.
	k []float64
	// q is the volumetric heat generation (W/m^3).
	q []float64
	// fixed marks Dirichlet cells (held at temp).
	fixed []bool
	// temp is the temperature field (K).
	temp []float64
	// wires records each wire's cell-index rectangle for averaging.
	wires []wireRect
}

type wireRect struct {
	x0, x1, y0, y1 int // half-open cell ranges
}

// Options configure the discretisation.
type Options struct {
	// CellsPerWidth is the number of grid cells across one wire width;
	// zero means 4.
	CellsPerWidth int
	// MarginWires is the lateral margin on each side, in wire pitches;
	// zero means 2.
	MarginWires int
	// TopMarginFactor is the dielectric height above the wires as a
	// multiple of wire thickness; zero means 1.5.
	TopMarginFactor float64
}

func (o Options) cellsPerWidth() int {
	if o.CellsPerWidth <= 0 {
		return 4
	}
	return o.CellsPerWidth
}

// NewBusCrossSection builds the grid for a wires-wide bus on the node with
// the given per-wire line power (W/m). The bottom row is an isothermal
// plane at ambient.
func NewBusCrossSection(node itrs.Node, power []float64, ambient float64, opts Options) (*Grid, error) {
	n := len(power)
	if n < 1 {
		return nil, fmt.Errorf("fdm: no wires")
	}
	if ambient <= 0 {
		return nil, fmt.Errorf("fdm: non-positive ambient %g", ambient)
	}
	w := node.WireWidth
	s := node.Spacing()
	t := node.WireThickness
	h := node.ILDHeight

	cpw := opts.cellsPerWidth()
	dx := w / float64(cpw)
	dy := dx
	margin := opts.MarginWires
	if margin <= 0 {
		margin = 2
	}
	topFactor := opts.TopMarginFactor
	if topFactor <= 0 {
		topFactor = 1.5
	}

	widthM := float64(margin) * (w + s)
	totalW := widthM*2 + float64(n)*w + float64(n-1)*s
	totalH := h + t + topFactor*t
	nx := int(math.Ceil(totalW / dx))
	ny := int(math.Ceil(totalH / dy))
	if nx*ny > 4_000_000 {
		return nil, fmt.Errorf("fdm: grid too large (%dx%d)", nx, ny)
	}
	g := &Grid{
		nx: nx, ny: ny, dx: dx, dy: dy,
		k:     make([]float64, nx*ny),
		q:     make([]float64, nx*ny),
		fixed: make([]bool, nx*ny),
		temp:  make([]float64, nx*ny),
	}
	for i := range g.k {
		g.k[i] = node.KILD
		g.temp[i] = ambient
	}
	// Bottom row: isothermal plane.
	for x := 0; x < nx; x++ {
		g.fixed[x] = true
	}
	// Wires: copper cells with volumetric generation q = P/(w*t).
	y0 := int(math.Round(h / dy))
	y1 := int(math.Round((h + t) / dy))
	if y1 <= y0 {
		y1 = y0 + 1
	}
	for wi := 0; wi < n; wi++ {
		xLeft := widthM + float64(wi)*(w+s)
		x0 := int(math.Round(xLeft / dx))
		x1 := int(math.Round((xLeft + w) / dx))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if x1 > nx {
			x1 = nx
		}
		qv := power[wi] / (w * t)
		for y := y0; y < y1 && y < ny; y++ {
			for x := x0; x < x1; x++ {
				idx := y*nx + x
				g.k[idx] = units.KCopper
				g.q[idx] = qv
			}
		}
		g.wires = append(g.wires, wireRect{x0: x0, x1: x1, y0: y0, y1: min(y1, ny)})
	}
	return g, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// harmonic returns the interface conductivity between two cells.
func harmonic(a, b float64) float64 {
	if a+b == 0 { //nanolint:ignore floateq exact-zero guard before division; two insulating cells share no conductance
		return 0
	}
	return 2 * a * b / (a + b)
}

// SolveSteadyState iterates SOR until the maximum update falls below tol
// kelvin or maxIter sweeps elapse; it returns the sweep count.
func (g *Grid) SolveSteadyState(tol float64, maxIter int) (int, error) {
	if tol <= 0 {
		tol = 1e-7
	}
	if maxIter <= 0 {
		maxIter = 50_000
	}
	const omega = 1.85 // SOR relaxation
	ax := g.dy / g.dx  // conductance scale for x-neighbours (unit depth)
	ay := g.dx / g.dy
	nx, ny := g.nx, g.ny
	for sweep := 1; sweep <= maxIter; sweep++ {
		maxDelta := 0.0
		for y := 0; y < ny; y++ {
			row := y * nx
			for x := 0; x < nx; x++ {
				idx := row + x
				if g.fixed[idx] {
					continue
				}
				kc := g.k[idx]
				var cSum, rhs float64
				if x > 0 {
					c := harmonic(kc, g.k[idx-1]) * ax
					cSum += c
					rhs += c * g.temp[idx-1]
				}
				if x < nx-1 {
					c := harmonic(kc, g.k[idx+1]) * ax
					cSum += c
					rhs += c * g.temp[idx+1]
				}
				if y > 0 {
					c := harmonic(kc, g.k[idx-nx]) * ay
					cSum += c
					rhs += c * g.temp[idx-nx]
				}
				if y < ny-1 {
					c := harmonic(kc, g.k[idx+nx]) * ay
					cSum += c
					rhs += c * g.temp[idx+nx]
				}
				if cSum == 0 { //nanolint:ignore floateq a cell with no conducting neighbours is skipped exactly
					continue
				}
				rhs += g.q[idx] * g.dx * g.dy
				newT := rhs / cSum
				delta := newT - g.temp[idx]
				g.temp[idx] += omega * delta
				if d := math.Abs(delta); d > maxDelta {
					maxDelta = d
				}
			}
		}
		if maxDelta < tol {
			return sweep, nil
		}
	}
	return maxIter, fmt.Errorf("fdm: SOR did not converge in %d sweeps", maxIter)
}

// WireTemp returns wire i's average temperature.
func (g *Grid) WireTemp(i int) (float64, error) {
	if i < 0 || i >= len(g.wires) {
		return 0, fmt.Errorf("fdm: wire %d out of range", i)
	}
	r := g.wires[i]
	sum, n := 0.0, 0
	for y := r.y0; y < r.y1; y++ {
		for x := r.x0; x < r.x1; x++ {
			sum += g.temp[y*g.nx+x]
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("fdm: wire %d has no cells", i)
	}
	return sum / float64(n), nil
}

// WireTemps returns every wire's average temperature.
func (g *Grid) WireTemps() ([]float64, error) {
	out := make([]float64, len(g.wires))
	for i := range out {
		t, err := g.WireTemp(i)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// Cells returns the grid dimensions.
func (g *Grid) Cells() (nx, ny int) { return g.nx, g.ny }

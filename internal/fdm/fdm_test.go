package fdm

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
	"nanobus/internal/units"
)

func TestNoPowerStaysAmbient(t *testing.T) {
	g, err := NewBusCrossSection(itrs.N130, []float64{0, 0, 0}, units.AmbientK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SolveSteadyState(1e-9, 20000); err != nil {
		t.Fatal(err)
	}
	temps, err := g.WireTemps()
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range temps {
		if math.Abs(temp-units.AmbientK) > 1e-6 {
			t.Errorf("wire %d at %g K with no power", i, temp)
		}
	}
}

func TestHeatingAndSymmetry(t *testing.T) {
	g, err := NewBusCrossSection(itrs.N130, []float64{5, 5, 5, 5, 5}, units.AmbientK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SolveSteadyState(1e-8, 50000); err != nil {
		t.Fatal(err)
	}
	temps, err := g.WireTemps()
	if err != nil {
		t.Fatal(err)
	}
	// All wires warm.
	for i, temp := range temps {
		if temp <= units.AmbientK {
			t.Errorf("wire %d did not warm (%.4f K)", i, temp)
		}
	}
	// Mirror symmetry.
	if math.Abs(temps[0]-temps[4]) > 0.02*(temps[0]-units.AmbientK) {
		t.Errorf("edge wires asymmetric: %g vs %g", temps[0], temps[4])
	}
	// Centre runs hottest under uniform power (neighbours heat it).
	if !(temps[2] >= temps[1] && temps[1] >= temps[0]) {
		t.Errorf("profile not centre-peaked: %v", temps)
	}
}

func TestHotCentreSpreads(t *testing.T) {
	g, err := NewBusCrossSection(itrs.N130, []float64{0, 0, 20, 0, 0}, units.AmbientK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SolveSteadyState(1e-8, 50000); err != nil {
		t.Fatal(err)
	}
	temps, err := g.WireTemps()
	if err != nil {
		t.Fatal(err)
	}
	if !(temps[2] > temps[1] && temps[1] > temps[0]) {
		t.Errorf("no monotone spread from the hot wire: %v", temps)
	}
	if temps[1] <= units.AmbientK {
		t.Error("lateral coupling absent: neighbour stayed at ambient")
	}
}

// TestRCModelAgreesWithField is the headline validation: the paper's
// lumped Eq. 6 network and the finite-difference field solution must agree
// on the temperature rise within the compact model's accuracy (a few tens
// of percent), for both uniform and hot-spot loads.
func TestRCModelAgreesWithField(t *testing.T) {
	for _, tc := range []struct {
		name  string
		power []float64
	}{
		{"uniform", []float64{8, 8, 8, 8, 8}},
		{"hotspot", []float64{0, 0, 25, 0, 0}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g, err := NewBusCrossSection(itrs.N130, tc.power, units.AmbientK, Options{CellsPerWidth: 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.SolveSteadyState(1e-8, 80000); err != nil {
				t.Fatal(err)
			}
			field, err := g.WireTemps()
			if err != nil {
				t.Fatal(err)
			}
			nw, err := thermal.NewFromNode(itrs.N130, len(tc.power), thermal.NodeOptions{
				DisableInterLayer: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rc, err := nw.SteadyState(tc.power)
			if err != nil {
				t.Fatal(err)
			}
			for i := range field {
				fRise := field[i] - units.AmbientK
				rcRise := rc[i] - units.AmbientK
				if fRise < 1e-3 && rcRise < 1e-3 {
					continue // both essentially ambient
				}
				ratio := rcRise / fRise
				if ratio < 0.4 || ratio > 2.5 {
					t.Errorf("wire %d: RC rise %.4f K vs field %.4f K (ratio %.2f)",
						i, rcRise, fRise, ratio)
				}
			}
			// For a distinguishable load the models must agree on the
			// hottest wire. (Uniform power ties the RC temperatures
			// exactly — lateral flow cancels — so argmax is ill-posed
			// there.)
			if tc.name == "hotspot" {
				argmax := func(v []float64) int {
					best := 0
					for i := range v {
						if v[i] > v[best] {
							best = i
						}
					}
					return best
				}
				if argmax(field) != argmax(rc) {
					t.Errorf("hottest wire disagrees: field %d, RC %d", argmax(field), argmax(rc))
				}
			}
		})
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewBusCrossSection(itrs.N130, nil, units.AmbientK, Options{}); err == nil {
		t.Error("empty power accepted")
	}
	if _, err := NewBusCrossSection(itrs.N130, []float64{1}, 0, Options{}); err == nil {
		t.Error("zero ambient accepted")
	}
	g, err := NewBusCrossSection(itrs.N130, []float64{1}, units.AmbientK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WireTemp(5); err == nil {
		t.Error("out-of-range wire accepted")
	}
	nx, ny := g.Cells()
	if nx <= 0 || ny <= 0 {
		t.Errorf("cells = %dx%d", nx, ny)
	}
}

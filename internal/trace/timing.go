package trace

import (
	"fmt"

	"nanobus/internal/cache"
)

// Latencies are the stall cycles a miss adds at each level. The paper's
// SHADE traces are functional (one cycle per committed instruction); this
// adapter is the timing-aware extension: misses insert stall cycles during
// which both address buses hold their values, making the bus traffic
// burstier and the idle windows realistic.
type Latencies struct {
	// L2Hit is the added stall for an L1 miss that hits in L2.
	L2Hit uint32
	// Memory is the added stall for an L2 miss.
	Memory uint32
}

// DefaultLatencies returns a conventional 2000s-era hierarchy timing.
func DefaultLatencies() Latencies { return Latencies{L2Hit: 10, Memory: 100} }

// TimingAdapter wraps a functional source with the paper's cache hierarchy
// and stretches time: each underlying cycle is followed by stall (idle)
// cycles determined by its cache behaviour.
type TimingAdapter struct {
	src   Source
	h     *cache.Hierarchy
	lat   Latencies
	stall uint32
	// stats
	cycles uint64
	stalls uint64
	// l2Miss tracks whether the current access chain reached memory.
	l2Miss bool
}

// NewTimingAdapter builds the adapter with a fresh paper-configured
// hierarchy.
func NewTimingAdapter(src Source, lat Latencies) (*TimingAdapter, error) {
	if src == nil {
		return nil, fmt.Errorf("trace: nil source")
	}
	h, err := cache.NewPaperHierarchy()
	if err != nil {
		return nil, err
	}
	ta := &TimingAdapter{src: src, h: h, lat: lat}
	ta.h.L2.MissHook = func(blockAddr uint32, write bool) {
		if !write {
			ta.l2Miss = true
		}
	}
	return ta, nil
}

// Next implements Source: stall cycles surface as full-idle cycles.
func (ta *TimingAdapter) Next() (Cycle, bool) {
	if ta.stall > 0 {
		ta.stall--
		ta.stalls++
		ta.cycles++
		return Cycle{}, true
	}
	c, ok := ta.src.Next()
	if !ok {
		return Cycle{}, false
	}
	ta.cycles++
	var addStall uint32
	if c.IValid {
		ta.l2Miss = false
		if !ta.h.IL1.Read(c.IAddr) {
			addStall += ta.missCost()
		}
	}
	if c.DValid {
		ta.l2Miss = false
		hit := false
		if c.DStore {
			hit = ta.h.DL1.Write(c.DAddr)
		} else {
			hit = ta.h.DL1.Read(c.DAddr)
		}
		if !hit {
			addStall += ta.missCost()
		}
	}
	ta.stall = addStall
	return c, true
}

// missCost prices the L1 miss that just happened: memory latency if the
// refill escalated to an L2 miss, otherwise the L2 hit latency.
func (ta *TimingAdapter) missCost() uint32 {
	if ta.l2Miss {
		ta.l2Miss = false
		return ta.lat.Memory
	}
	return ta.lat.L2Hit
}

// StallFraction reports the fraction of emitted cycles that were stalls.
func (ta *TimingAdapter) StallFraction() float64 {
	if ta.cycles == 0 {
		return 0
	}
	return float64(ta.stalls) / float64(ta.cycles)
}

// Hierarchy exposes the underlying caches for statistics.
func (ta *TimingAdapter) Hierarchy() *cache.Hierarchy { return ta.h }

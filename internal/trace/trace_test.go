package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSliceSource(t *testing.T) {
	cycles := []Cycle{
		{IValid: true, IAddr: 4},
		{IValid: true, IAddr: 8, DValid: true, DAddr: 100, DStore: true},
	}
	src := NewSliceSource(cycles)
	for i, want := range cycles {
		got, ok := src.Next()
		if !ok || got != want {
			t.Fatalf("cycle %d = %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("source did not end")
	}
	src.Reset()
	if c, ok := src.Next(); !ok || c != cycles[0] {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	src := NewLimit(NewSynth(DefaultSynthConfig(1)), 10)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("Limit yielded %d cycles, want 10", n)
	}
}

func TestSkip(t *testing.T) {
	cycles := make([]Cycle, 5)
	for i := range cycles {
		cycles[i] = Cycle{IValid: true, IAddr: uint32(i * 4)}
	}
	src := Skip(NewSliceSource(cycles), 3)
	c, ok := src.Next()
	if !ok || c.IAddr != 12 {
		t.Errorf("after Skip(3): %+v ok=%v, want IAddr=12", c, ok)
	}
	// Skipping past the end leaves an exhausted source.
	src2 := Skip(NewSliceSource(cycles[:2]), 10)
	if _, ok := src2.Next(); ok {
		t.Error("over-skipped source not exhausted")
	}
}

func TestIdleInjector(t *testing.T) {
	base := make([]Cycle, 6)
	for i := range base {
		base[i] = Cycle{IValid: true, IAddr: uint32(100 + 4*i)}
	}
	inj, err := NewIdleInjector(NewSliceSource(base), []IdleWindow{{Start: 2, Length: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var got []Cycle
	for {
		c, ok := inj.Next()
		if !ok {
			break
		}
		got = append(got, c)
	}
	if len(got) != 9 {
		t.Fatalf("got %d cycles, want 9 (6 + 3 idle)", len(got))
	}
	for i := 2; i < 5; i++ {
		if got[i].IValid || got[i].DValid {
			t.Errorf("cycle %d not idle: %+v", i, got[i])
		}
	}
	// Underlying traffic resumes unchanged after the window.
	if got[5].IAddr != 108 {
		t.Errorf("cycle 5 IAddr = %d, want 108 (paused, not dropped)", got[5].IAddr)
	}
}

func TestIdleInjectorValidation(t *testing.T) {
	src := NewSliceSource(nil)
	if _, err := NewIdleInjector(src, []IdleWindow{{Start: 0, Length: 0}}); err == nil {
		t.Error("zero-length window accepted")
	}
	if _, err := NewIdleInjector(src, []IdleWindow{{Start: 10, Length: 5}, {Start: 12, Length: 1}}); err == nil {
		t.Error("overlapping windows accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cycles := make([]Cycle, int(n)+1)
		for i := range cycles {
			cycles[i] = Cycle{
				IValid: rng.Intn(10) > 0,
				IAddr:  rng.Uint32(),
				DValid: rng.Intn(2) == 0,
				DAddr:  rng.Uint32(),
				DStore: rng.Intn(2) == 0,
			}
			if !cycles[i].IValid {
				cycles[i].IAddr = 0
			}
			if !cycles[i].DValid {
				cycles[i].DAddr = 0
				cycles[i].DStore = false
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, c := range cycles {
			if err := w.Write(c); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		if w.Cycles() != uint64(len(cycles)) {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range cycles {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		if _, ok := r.Next(); ok {
			return false
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX....."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSynthFetchMostlySequential(t *testing.T) {
	src := NewSynth(DefaultSynthConfig(42))
	seq, total := 0, 0
	prev, _ := src.Next()
	for i := 0; i < 20000; i++ {
		c, _ := src.Next()
		if c.IAddr == prev.IAddr+4 {
			seq++
		}
		total++
		prev = c
	}
	frac := float64(seq) / float64(total)
	if frac < 0.7 {
		t.Errorf("sequential-fetch fraction = %.3f, want > 0.7", frac)
	}
}

func TestSynthDataDuty(t *testing.T) {
	cfg := DefaultSynthConfig(7)
	cfg.MemProb = 0.4
	src := NewSynth(cfg)
	_, da, cycles := CollectStats(NewLimit(src, 50000), 50000)
	if cycles != 50000 {
		t.Fatalf("cycles = %d", cycles)
	}
	duty := da.DutyFactor()
	if duty < 0.35 || duty > 0.45 {
		t.Errorf("DA duty factor = %.3f, want ~0.40", duty)
	}
}

func TestStreamStats(t *testing.T) {
	var s StreamStats
	s.Observe(0b0000, true)
	s.Observe(0b0011, true) // h=2
	s.Observe(0, false)     // idle
	s.Observe(0b0111, true) // h=1 vs 0b0011
	if s.Cycles != 4 || s.Driven != 3 {
		t.Errorf("cycles=%d driven=%d", s.Cycles, s.Driven)
	}
	if s.Transitions != 3 {
		t.Errorf("transitions = %d, want 3", s.Transitions)
	}
	if s.HammingHist[2] != 1 || s.HammingHist[1] != 1 {
		t.Errorf("hist wrong: %v", s.HammingHist[:4])
	}
	if mh := s.MeanHamming(); mh != 1.5 {
		t.Errorf("MeanHamming = %g, want 1.5", mh)
	}
	if d := s.DutyFactor(); d != 0.75 {
		t.Errorf("DutyFactor = %g, want 0.75", d)
	}
}

func TestFracAboveHalf(t *testing.T) {
	var s StreamStats
	s.Observe(0, true)
	s.Observe(0xFFFFFFFF, true) // h=32 > 16
	s.Observe(0xFFFFFFFE, true) // h=1
	if f := s.FracAboveHalf(); f != 0.5 {
		t.Errorf("FracAboveHalf = %g, want 0.5", f)
	}
	var empty StreamStats
	if empty.FracAboveHalf() != 0 || empty.MeanHamming() != 0 || empty.DutyFactor() != 0 {
		t.Error("empty stats not zero")
	}
}

// The paper's key observation about address streams: consecutive fetch
// addresses have very low Hamming distance, so BI-style schemes rarely
// trigger. Verify the synthetic streams reproduce it.
func TestSynthLowFetchHamming(t *testing.T) {
	src := NewLimit(NewSynth(DefaultSynthConfig(3)), 100000)
	ia, _, _ := CollectStats(src, 100000)
	if mh := ia.MeanHamming(); mh > 6 {
		t.Errorf("IA mean Hamming = %.2f, want low (< 6)", mh)
	}
	if f := ia.FracAboveHalf(); f > 0.01 {
		t.Errorf("IA frac above half = %.4f, want ~0", f)
	}
}

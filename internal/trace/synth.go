package trace

import (
	"math/rand"
)

// SynthConfig parameterises the statistical address-stream generator — a
// lightweight alternative to the full CPU simulator for quick studies and
// benchmarks. The model mirrors the structural features that drive bus
// energy: mostly-sequential instruction fetch broken by branches, and data
// accesses that mix sequential, strided, and region-jumping behaviour with
// idle cycles in between.
type SynthConfig struct {
	// Seed for the generator.
	Seed int64
	// BranchProb is the per-cycle probability that the fetch stream jumps
	// (taken branch/call); otherwise the PC advances by 4.
	BranchProb float64
	// BranchSpan is the maximum jump distance in bytes.
	BranchSpan uint32
	// CallProb is the probability that a jump targets a different code
	// region (changing high-order bits).
	CallProb float64
	// CodeRegions are base addresses of code regions.
	CodeRegions []uint32
	// MemProb is the per-cycle probability of a data access (the DA bus's
	// duty factor).
	MemProb float64
	// StoreFrac is the fraction of data accesses that are stores.
	StoreFrac float64
	// SeqFrac, StrideFrac of data accesses continue the previous address
	// +4 or +Stride; the rest jump within or between data regions.
	SeqFrac, StrideFrac float64
	// Stride is the stride in bytes for strided accesses.
	Stride uint32
	// DataRegions are base addresses of data regions (heap, stack, ...).
	DataRegions []uint32
	// RegionSpan is the extent of each data region in bytes.
	RegionSpan uint32
	// RegionSwitchProb is the probability a random access changes region.
	RegionSwitchProb float64
}

// DefaultSynthConfig returns a configuration resembling an integer SPEC
// program's address behaviour.
func DefaultSynthConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:             seed,
		BranchProb:       0.15,
		BranchSpan:       1 << 12,
		CallProb:         0.1,
		CodeRegions:      []uint32{0x0001_0000, 0x0008_0000, 0x0010_0000},
		MemProb:          0.35,
		StoreFrac:        0.3,
		SeqFrac:          0.35,
		StrideFrac:       0.25,
		Stride:           64,
		DataRegions:      []uint32{0x1000_0000, 0x2000_0000, 0x7FFE_0000},
		RegionSpan:       1 << 20,
		RegionSwitchProb: 0.05,
	}
}

// Synth is the statistical trace source.
type Synth struct {
	cfg    SynthConfig
	rng    *rand.Rand
	pc     uint32
	daddr  uint32
	region int
}

// NewSynth builds a statistical source from the configuration.
func NewSynth(cfg SynthConfig) *Synth {
	if len(cfg.CodeRegions) == 0 {
		cfg.CodeRegions = []uint32{0x0001_0000}
	}
	if len(cfg.DataRegions) == 0 {
		cfg.DataRegions = []uint32{0x1000_0000}
	}
	if cfg.RegionSpan == 0 {
		cfg.RegionSpan = 1 << 20
	}
	if cfg.Stride == 0 {
		cfg.Stride = 64
	}
	s := &Synth{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.pc = cfg.CodeRegions[0]
	s.daddr = cfg.DataRegions[0]
	return s
}

// Next implements Source. Synthetic sources never end; wrap with Limit.
func (s *Synth) Next() (Cycle, bool) {
	c := Cycle{IValid: true, IAddr: s.pc}
	// Advance fetch stream.
	if s.rng.Float64() < s.cfg.BranchProb {
		if s.rng.Float64() < s.cfg.CallProb {
			base := s.cfg.CodeRegions[s.rng.Intn(len(s.cfg.CodeRegions))]
			s.pc = base + uint32(s.rng.Intn(int(s.cfg.BranchSpan)))&^3
		} else {
			span := int32(s.cfg.BranchSpan)
			off := int32(s.rng.Intn(int(2*span))) - span
			s.pc = uint32(int64(s.pc)+int64(off)) &^ 3
		}
	} else {
		s.pc += 4
	}
	// Data access?
	if s.rng.Float64() < s.cfg.MemProb {
		r := s.rng.Float64()
		switch {
		case r < s.cfg.SeqFrac:
			s.daddr += 4
		case r < s.cfg.SeqFrac+s.cfg.StrideFrac:
			s.daddr += s.cfg.Stride
		default:
			if s.rng.Float64() < s.cfg.RegionSwitchProb {
				s.region = s.rng.Intn(len(s.cfg.DataRegions))
			}
			base := s.cfg.DataRegions[s.region]
			s.daddr = base + uint32(s.rng.Intn(int(s.cfg.RegionSpan)))&^3
		}
		c.DValid = true
		c.DAddr = s.daddr
		c.DStore = s.rng.Float64() < s.cfg.StoreFrac
	}
	return c, true
}

package trace

import "math/bits"

// StreamStats accumulates the address-stream statistics the paper's
// analysis discusses (Sec. 5.2.1): per-cycle Hamming distances between
// consecutive bus words, duty factors, and transition counts.
type StreamStats struct {
	// Cycles is the number of cycles observed.
	Cycles uint64
	// Driven is the number of cycles with a valid word.
	Driven uint64
	// Transitions is the total number of bit transitions between
	// consecutive driven words.
	Transitions uint64
	// HammingHist[h] counts consecutive-word pairs with Hamming distance
	// h.
	HammingHist [33]uint64

	prev    uint32
	started bool
}

// Observe feeds one cycle's word (or an idle cycle when valid is false).
func (s *StreamStats) Observe(word uint32, valid bool) {
	s.Cycles++
	if !valid {
		return
	}
	s.Driven++
	if s.started {
		h := bits.OnesCount32(s.prev ^ word)
		s.Transitions += uint64(h)
		s.HammingHist[h]++
	}
	s.started = true
	s.prev = word
}

// MeanHamming returns the average Hamming distance between consecutive
// driven words.
func (s *StreamStats) MeanHamming() float64 {
	pairs := uint64(0)
	for _, c := range s.HammingHist {
		pairs += c
	}
	if pairs == 0 {
		return 0
	}
	return float64(s.Transitions) / float64(pairs)
}

// DutyFactor returns the fraction of cycles with a driven word.
func (s *StreamStats) DutyFactor() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Driven) / float64(s.Cycles)
}

// FracAboveHalf returns the fraction of consecutive pairs whose Hamming
// distance exceeds half the bus width — the fraction on which BI would
// invert.
func (s *StreamStats) FracAboveHalf() float64 {
	pairs, above := uint64(0), uint64(0)
	for h, c := range s.HammingHist {
		pairs += c
		if h > 16 {
			above += c
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(above) / float64(pairs)
}

// CollectStats drains up to n cycles from src, returning IA- and DA-bus
// statistics and the cycles consumed.
func CollectStats(src Source, n uint64) (ia, da StreamStats, cycles uint64) {
	for cycles < n {
		c, ok := src.Next()
		if !ok {
			break
		}
		cycles++
		ia.Observe(c.IAddr, c.IValid)
		da.Observe(c.DAddr, c.DValid)
	}
	return ia, da, cycles
}

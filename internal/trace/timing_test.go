package trace

import (
	"testing"
)

// fetchSeq yields sequential fetches over a range larger than the L1.
func fetchSeq(n int, stride uint32) []Cycle {
	out := make([]Cycle, n)
	for i := range out {
		out[i] = Cycle{IValid: true, IAddr: uint32(i) * stride}
	}
	return out
}

func TestTimingAdapterInsertsStalls(t *testing.T) {
	// A fetch stream striding one L1 block per access misses every time
	// in the first pass: every access costs the memory latency (cold L2).
	base := fetchSeq(100, 32)
	ta, err := NewTimingAdapter(NewSliceSource(base), Latencies{L2Hit: 5, Memory: 50})
	if err != nil {
		t.Fatal(err)
	}
	var total, idle int
	for {
		c, ok := ta.Next()
		if !ok {
			break
		}
		total++
		if !c.IValid && !c.DValid {
			idle++
		}
	}
	if idle == 0 {
		t.Fatal("no stall cycles inserted")
	}
	if total != 100+idle {
		t.Errorf("total %d != 100 real + %d stalls", total, idle)
	}
	// Cold pass: 100 fetches, each a new 32B block -> 100 L1 misses; L2
	// has 64B blocks so every second fetch also misses L2. Expect
	// 50*50 + 50*5 = 2750 stalls.
	if idle != 2750 {
		t.Errorf("stalls = %d, want 2750", idle)
	}
	if f := ta.StallFraction(); f < 0.9 {
		t.Errorf("stall fraction = %.3f, want ~0.96 for a cold striding stream", f)
	}
}

func TestTimingAdapterHitsAreFree(t *testing.T) {
	// Re-fetching one cached block adds no stalls after the first miss.
	cycles := make([]Cycle, 50)
	for i := range cycles {
		cycles[i] = Cycle{IValid: true, IAddr: 0x1000}
	}
	ta, err := NewTimingAdapter(NewSliceSource(cycles), DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	var total, idle int
	for {
		c, ok := ta.Next()
		if !ok {
			break
		}
		total++
		if !c.IValid {
			idle++
		}
	}
	// One cold miss: memory latency (L2 also missed).
	want := int(DefaultLatencies().Memory)
	if idle != want {
		t.Errorf("stalls = %d, want %d (single cold miss)", idle, want)
	}
	if total != 50+want {
		t.Errorf("total = %d", total)
	}
	if ta.Hierarchy().IL1.Stats().ReadMisses != 1 {
		t.Errorf("IL1 misses = %d, want 1", ta.Hierarchy().IL1.Stats().ReadMisses)
	}
}

func TestTimingAdapterDataSide(t *testing.T) {
	cycles := []Cycle{
		{IValid: true, IAddr: 0x1000, DValid: true, DAddr: 0x2000_0000},
		{IValid: true, IAddr: 0x1004, DValid: true, DAddr: 0x2000_0000},
	}
	ta, err := NewTimingAdapter(NewSliceSource(cycles), Latencies{L2Hit: 3, Memory: 30})
	if err != nil {
		t.Fatal(err)
	}
	var idle int
	for {
		c, ok := ta.Next()
		if !ok {
			break
		}
		if !c.IValid && !c.DValid {
			idle++
		}
	}
	// First cycle: I miss (memory: 30) + D miss (memory: 30) = 60.
	// Second cycle: both hit.
	if idle != 60 {
		t.Errorf("stalls = %d, want 60", idle)
	}
}

func TestTimingAdapterNilSource(t *testing.T) {
	if _, err := NewTimingAdapter(nil, DefaultLatencies()); err == nil {
		t.Error("nil source accepted")
	}
}

func TestTimingAdapterEmptyStats(t *testing.T) {
	ta, err := NewTimingAdapter(NewSliceSource(nil), DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if ta.StallFraction() != 0 {
		t.Error("empty adapter stall fraction != 0")
	}
	if _, ok := ta.Next(); ok {
		t.Error("empty source yielded a cycle")
	}
}

// Package trace defines the address-trace representation shared by the CPU
// simulator (which produces traces) and the bus simulator (which consumes
// them), together with synthetic trace generators, idle injection, a
// compact binary codec, and stream statistics.
//
// The unit of a trace is the Cycle: what the processor-to-L1 instruction
// address (IA) and data address (DA) buses carry during one committed
// instruction slot, following the paper's methodology (Sec. 5.1): the IA
// bus carries the fetch address every cycle; the DA bus carries an address
// only on loads/stores and otherwise holds its previous value (idle, no
// dissipation).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Cycle is one committed-instruction slot on the address buses.
type Cycle struct {
	// IValid is false only for injected full-idle cycles.
	IValid bool
	// IAddr is the instruction fetch address.
	IAddr uint32
	// DValid reports whether a data address is driven this cycle.
	DValid bool
	// DAddr is the data (load/store) address, valid when DValid.
	DAddr uint32
	// DStore reports whether the data access is a store.
	DStore bool
}

// Source yields consecutive bus cycles. Next returns ok=false at
// end-of-trace.
type Source interface {
	Next() (Cycle, bool)
}

// SliceSource replays a fixed slice of cycles.
type SliceSource struct {
	cycles []Cycle
	pos    int
}

// NewSliceSource returns a Source over the given cycles.
func NewSliceSource(cycles []Cycle) *SliceSource { return &SliceSource{cycles: cycles} }

// Next implements Source.
func (s *SliceSource) Next() (Cycle, bool) {
	if s.pos >= len(s.cycles) {
		return Cycle{}, false
	}
	c := s.cycles[s.pos]
	s.pos++
	return c, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit caps an underlying source at n cycles.
type Limit struct {
	src  Source
	left uint64
}

// NewLimit wraps src, stopping after n cycles.
func NewLimit(src Source, n uint64) *Limit { return &Limit{src: src, left: n} }

// Next implements Source.
func (l *Limit) Next() (Cycle, bool) {
	if l.left == 0 {
		return Cycle{}, false
	}
	c, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Cycle{}, false
	}
	l.left--
	return c, true
}

// Skip discards the first n cycles of src (the paper's warm-up skip of the
// initial instructions) and then passes through.
func Skip(src Source, n uint64) Source {
	for i := uint64(0); i < n; i++ {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	return src
}

// IdleWindow describes a [Start, Start+Length) cycle range during which the
// injector forces both buses idle.
type IdleWindow struct {
	Start, Length uint64
}

// IdleInjector wraps a source and replaces the cycles inside the given
// windows with full-idle cycles *in addition to* the underlying traffic
// (the underlying source is paused, not consumed, during a window). This
// reproduces the paper's Fig. 5 experiment: intermittent ~1M-cycle idle
// periods in which bus energy drops to zero.
type IdleInjector struct {
	src     Source
	windows []IdleWindow
	cycle   uint64
}

// NewIdleInjector wraps src with the given idle windows (must be sorted by
// Start and non-overlapping).
func NewIdleInjector(src Source, windows []IdleWindow) (*IdleInjector, error) {
	var prevEnd uint64
	for i, w := range windows {
		if w.Length == 0 {
			return nil, fmt.Errorf("trace: idle window %d has zero length", i)
		}
		if w.Start < prevEnd {
			return nil, fmt.Errorf("trace: idle windows overlap or are unsorted at %d", i)
		}
		prevEnd = w.Start + w.Length
	}
	return &IdleInjector{src: src, windows: windows}, nil
}

// Next implements Source.
func (ii *IdleInjector) Next() (Cycle, bool) {
	for len(ii.windows) > 0 {
		w := ii.windows[0]
		if ii.cycle < w.Start {
			break
		}
		if ii.cycle < w.Start+w.Length {
			ii.cycle++
			return Cycle{}, true // full idle: both buses hold
		}
		ii.windows = ii.windows[1:]
	}
	c, ok := ii.src.Next()
	if !ok {
		return Cycle{}, false
	}
	ii.cycle++
	return c, true
}

// --- Binary codec -----------------------------------------------------------

// Writer streams cycles in the compact nanotrace binary format:
// a 1-byte flags field (bit0 IValid, bit1 DValid, bit2 DStore) followed by
// the valid addresses as little-endian uint32s.
type Writer struct {
	w   *bufio.Writer
	buf [9]byte
	n   uint64
}

// magic identifies nanotrace streams.
var magic = [4]byte{'N', 'B', 'T', '1'}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one cycle.
func (tw *Writer) Write(c Cycle) error {
	b := tw.buf[:1]
	var flags byte
	if c.IValid {
		flags |= 1
	}
	if c.DValid {
		flags |= 2
	}
	if c.DStore {
		flags |= 4
	}
	tw.buf[0] = flags
	if c.IValid {
		b = binary.LittleEndian.AppendUint32(b, c.IAddr)
	}
	if c.DValid {
		b = binary.LittleEndian.AppendUint32(b, c.DAddr)
	}
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing cycle %d: %w", tw.n, err)
	}
	tw.n++
	return nil
}

// Flush flushes buffered output; call once after the last Write.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Cycles returns the number of cycles written.
func (tw *Writer) Cycles() uint64 { return tw.n }

// Reader streams cycles from the nanotrace binary format; it implements
// Source.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	return &Reader{r: br}, nil
}

// Next implements Source.
func (tr *Reader) Next() (Cycle, bool) {
	if tr.err != nil {
		return Cycle{}, false
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		tr.err = err
		return Cycle{}, false
	}
	var c Cycle
	c.IValid = flags&1 != 0
	c.DValid = flags&2 != 0
	c.DStore = flags&4 != 0
	var word [4]byte
	if c.IValid {
		if _, err := io.ReadFull(tr.r, word[:]); err != nil {
			tr.err = err
			return Cycle{}, false
		}
		c.IAddr = binary.LittleEndian.Uint32(word[:])
	}
	if c.DValid {
		if _, err := io.ReadFull(tr.r, word[:]); err != nil {
			tr.err = err
			return Cycle{}, false
		}
		c.DAddr = binary.LittleEndian.Uint32(word[:])
	}
	return c, true
}

// Err returns the terminal error, if any (io.EOF is reported as nil).
func (tr *Reader) Err() error {
	if tr.err == io.EOF {
		return nil
	}
	return tr.err
}

// Package parallel is the shared sweep runner for the experiment drivers.
// Every figure/table driver fans the same shape of work out — an independent
// job per (node, scheme, benchmark) tuple — so they share one bounded worker
// pool instead of five hand-rolled goroutine fan-outs.
//
// Semantics:
//
//   - Concurrency is bounded by Workers (default GOMAXPROCS).
//   - Results land at the index of their job: output ordering is
//     deterministic regardless of scheduling.
//   - On failure the pool stops dispatching new jobs and returns the error
//     of the lowest-indexed failed job — also deterministic, because jobs
//     are dispatched in index order from a monotonic counter, so every job
//     below the first recorded failure has been dispatched and awaited.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the effective worker count: n when positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for i in [0, n) on at most Workers(workers)
// goroutines. It waits for all started jobs, then returns the error of the
// lowest-indexed failed job, or nil. After the first failure no new jobs are
// dispatched (in-flight jobs still finish).
func ForEach(workers, n int, fn func(i int) error) error {
	if fn == nil {
		return fmt.Errorf("parallel: nil job function")
	}
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the running goroutine's identity exposed:
// fn(worker, i) receives a worker index in [0, Workers(workers)) that is
// stable for the lifetime of the call and never used by two goroutines at
// once. Jobs that need reusable scratch — capture buffers, result slabs,
// accumulators — index a per-worker slab with it instead of allocating
// per job or synchronising on shared state.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	if n < 0 {
		return fmt.Errorf("parallel: negative job count %d", n)
	}
	if fn == nil {
		return fmt.Errorf("parallel: nil job function")
	}
	if n == 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Serial fast path: no goroutines, exact first-error semantics.
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return fmt.Errorf("parallel: job %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		next     atomic.Int64 // dispatch counter
		failed   atomic.Int64 // lowest failed index + 1, 0 = none
		errs     = make([]error, n)
		wg       sync.WaitGroup
		errsLock sync.Mutex
	)
	failed.Store(0)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Stop dispatching past a known failure; jobs below it
				// must still run so "lowest failed index" is exact.
				if f := failed.Load(); f != 0 && i >= int(f-1) {
					return
				}
				if err := fn(worker, i); err != nil {
					errsLock.Lock()
					errs[i] = err
					errsLock.Unlock()
					// Record the minimum failed index.
					for {
						f := failed.Load()
						if f != 0 && int(f-1) <= i {
							break
						}
						if failed.CompareAndSwap(f, int64(i+1)) {
							break
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if f := failed.Load(); f != 0 {
		// The recorded index is the minimum among jobs that ran; jobs with
		// a lower index all completed (dispatch is monotonic), and any that
		// failed would have lowered the record. Scan for exactness anyway —
		// it is O(n) once, and makes the guarantee independent of memory-
		// ordering subtleties.
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("parallel: job %d: %w", i, err)
			}
		}
		return fmt.Errorf("parallel: job %d: %w", int(f-1), errs[f-1])
	}
	return nil
}

// Map runs fn over [0, n) with ForEach semantics and collects the results
// in job order. On error the partial results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("parallel: nil map function")
	}
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honoured")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaulted worker count < 1")
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers %d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(workers, 50, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs with %d workers", p, workers)
	}
}

func TestForEachRunsAllJobs(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]int)
	if err := ForEach(4, 1000, func(i int) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1000 {
		t.Fatalf("%d distinct jobs ran, want 1000", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		// Jobs 30 and 60 fail; the returned error must always be job 30's.
		err := ForEach(workers, 100, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("job-%d: %w", i, sentinel)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers %d: error swallowed", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers %d: wrapped cause lost: %v", workers, err)
		}
		if want := "job 30"; !containsSub(err.Error(), want) {
			t.Errorf("workers %d: got %q, want the lowest-index failure (%s)", workers, err, want)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n := ran.Load(); n > 1000 {
		t.Errorf("%d jobs ran after an index-0 failure; dispatch did not stop", n)
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := ForEach(4, -1, func(int) error { return nil }); err == nil {
		t.Error("negative n accepted")
	}
	if err := ForEach(4, 5, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := Map[int](4, 5, nil); err == nil {
		t.Error("nil map fn accepted")
	}
	// More workers than jobs must not deadlock or duplicate work.
	got, err := Map(64, 2, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("workers>jobs: got %v, %v", got, err)
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestForEachWorkerIdentity checks the per-worker slab contract: worker
// indices stay in [0, Workers(n)), every job sees exactly one worker, and
// no two concurrent jobs share a worker index.
func TestForEachWorkerIdentity(t *testing.T) {
	const workers, jobs = 4, 200
	var inUse [workers]atomic.Bool
	var ran atomic.Int64
	err := ForEachWorker(workers, jobs, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker %d out of range", worker)
		}
		if inUse[worker].Swap(true) {
			return fmt.Errorf("worker %d used concurrently", worker)
		}
		time.Sleep(100 * time.Microsecond)
		inUse[worker].Store(false)
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != jobs {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), jobs)
	}
	// Serial fast path pins worker 0.
	if err := ForEachWorker(1, 10, func(worker, _ int) error {
		if worker != 0 {
			return fmt.Errorf("serial path got worker %d", worker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ForEachWorker(2, 3, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// TestPropertyEnergyMonotone: cumulative energy never decreases, total
// always equals the per-line sum, and every wire stays at or above
// ambient — for arbitrary word streams.
func TestPropertyEnergyMonotone(t *testing.T) {
	f := func(words []uint32, nodeIdx uint8) bool {
		nodes := itrs.Nodes()
		node := nodes[int(nodeIdx)%len(nodes)]
		sim, err := New(Config{Node: node, CouplingDepth: -1, IntervalCycles: 64})
		if err != nil {
			return false
		}
		prev := 0.0
		for _, w := range words {
			sim.StepWord(w)
			if i := sim.TotalEnergy().Total(); i < prev {
				return false
			}
		}
		sim.Finish()
		tot := sim.TotalEnergy()
		if tot.Total() < prev {
			return false
		}
		// Temperatures at or above ambient (energy only heats).
		for _, temp := range sim.Temps() {
			if temp < units.AmbientK-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrderInsensitiveTotal: the total energy of a word sequence
// equals the sum of its transition energies regardless of interval
// boundaries (sampling must not change physics).
func TestPropertyIntervalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	words := make([]uint32, 500)
	for i := range words {
		words[i] = rng.Uint32()
	}
	run := func(interval uint64) float64 {
		sim, err := New(Config{Node: itrs.N90, CouplingDepth: -1, IntervalCycles: interval})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			sim.StepWord(w)
		}
		sim.Finish()
		return sim.TotalEnergy().Total()
	}
	e1 := run(7)
	e2 := run(100)
	e3 := run(100000)
	if math.Abs(e1-e2) > 1e-12*e1 || math.Abs(e2-e3) > 1e-12*e2 {
		t.Errorf("interval size changed total energy: %g %g %g", e1, e2, e3)
	}
}

// TestPropertyIdlePrefixInvariance: leading idle cycles change no energy
// and no temperature ordering.
func TestPropertyIdlePrefixInvariance(t *testing.T) {
	f := func(idles uint8, words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		sim, err := New(Config{Node: itrs.N65, CouplingDepth: -1, IntervalCycles: 50})
		if err != nil {
			return false
		}
		for i := 0; i < int(idles); i++ {
			sim.StepIdle()
		}
		for _, w := range words {
			sim.StepWord(w)
		}
		sim.Finish()
		withIdles := sim.TotalEnergy().Total()

		sim2, err := New(Config{Node: itrs.N65, CouplingDepth: -1, IntervalCycles: 50})
		if err != nil {
			return false
		}
		for _, w := range words {
			sim2.StepWord(w)
		}
		sim2.Finish()
		return math.Abs(withIdles-sim2.TotalEnergy().Total()) <= 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEncodedDecodes: for every scheme, driving the simulator
// through an encoder never produces a physical word wider than the bus.
func TestPropertyMaskedWidth(t *testing.T) {
	sim, err := New(Config{Node: itrs.N45, CouplingDepth: -1, IntervalCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f := func(w uint32) bool {
		sim.StepWord(w)
		// 32-wire bus: accumulated state must fit in 32 bits.
		return sim.Cycles() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"math"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
	"nanobus/internal/trace"
	"nanobus/internal/units"
)

func newSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	if cfg.Node.Name == "" {
		cfg.Node = itrs.N130
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestIdleBusDissipatesNothing(t *testing.T) {
	s := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 100})
	s.StepWord(0xAAAA5555)
	for i := 0; i < 500; i++ {
		s.StepIdle()
	}
	s.Finish()
	if e := s.TotalEnergy().Total(); e != 0 {
		t.Errorf("idle bus dissipated %g J", e)
	}
	if len(s.Samples()) < 5 {
		t.Errorf("samples = %d, want >= 5", len(s.Samples()))
	}
}

func TestEnergyMatchesAccumulatorSemantics(t *testing.T) {
	// Toggling one bit every cycle: per cycle energy is
	// 0.5*(cself+crep)*Vdd^2 (self) + rowsum coupling charge... compare
	// against a direct energy.Accumulator on the same word stream.
	s := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 1000})
	words := []uint32{0, 1, 0, 1, 3, 7, 0xFFFF, 0}
	for _, w := range words {
		s.StepWord(w)
	}
	s.Finish()
	got := s.TotalEnergy().Total()
	if got <= 0 {
		t.Fatal("no energy accumulated")
	}
	// Per-line totals must sum to the bus total.
	lines := make([]energy.LineEnergy, s.Width())
	s.LineEnergies(lines)
	sum := 0.0
	for _, le := range lines {
		sum += le.Total()
	}
	if math.Abs(sum-got) > 1e-15+1e-9*got {
		t.Errorf("per-line sum %g != total %g", sum, got)
	}
}

func TestCouplingDepthOrdering(t *testing.T) {
	// Self-only <= NN <= All on an alternating-pattern stream.
	run := func(depth int) float64 {
		s := newSim(t, Config{CouplingDepth: depth, IntervalCycles: 1000})
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				s.StepWord(0x55555555)
			} else {
				s.StepWord(0xAAAAAAAA)
			}
		}
		s.Finish()
		return s.TotalEnergy().Total()
	}
	self := run(0)
	nn := run(1)
	all := run(-1)
	if !(self < nn && nn < all) {
		t.Errorf("energy ordering violated: self=%g nn=%g all=%g", self, nn, all)
	}
	// For the alternating pattern, coupling dominates: NN >> self.
	if nn < 2*self {
		t.Errorf("NN=%g not much larger than self=%g for toggle pattern", nn, self)
	}
}

func TestTemperatureRisesAndSaturates(t *testing.T) {
	// A reduced dielectric heat mass shrinks the ~8 ms time constant to
	// ~10 us so the rise-and-saturate shape fits a fast test window.
	s := newSim(t, Config{
		CouplingDepth:  -1,
		IntervalCycles: 10_000,
		Thermal: thermal.NodeOptions{
			HeatCapacity: &thermal.HeatCapacityOptions{ExtraDielectricArea: 2.5e-12},
		},
	})
	// Hammer the bus with toggling traffic for many intervals.
	amb := units.AmbientK
	var temps []float64
	for k := 0; k < 80; k++ {
		for i := 0; i < 10_000; i++ {
			if i%2 == 0 {
				s.StepWord(0x55555555)
			} else {
				s.StepWord(0xAAAAAAAA)
			}
		}
		temps = append(temps, s.Network().AvgTemp())
	}
	first, last := temps[0], temps[len(temps)-1]
	if first <= amb {
		t.Errorf("no initial rise: %g", first)
	}
	if last <= first {
		t.Errorf("temperature did not keep rising: %g -> %g", first, last)
	}
	// Saturation: the last 10 intervals change far less than the first 10.
	d0 := temps[9] - temps[0]
	d1 := temps[79] - temps[70]
	if d1 > 0.2*d0 {
		t.Errorf("no saturation: early delta %g, late delta %g", d0, d1)
	}
}

func TestRunPairSplitsBuses(t *testing.T) {
	cycles := []trace.Cycle{
		{IValid: true, IAddr: 0x1000},
		{IValid: true, IAddr: 0x1004, DValid: true, DAddr: 0x2000_0000},
		{IValid: true, IAddr: 0x1008},
		{IValid: true, IAddr: 0x100C, DValid: true, DAddr: 0x2000_0040},
	}
	ia := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 10})
	da := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 10})
	res, err := RunPair(trace.NewSliceSource(cycles), ia, da, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", res.Cycles)
	}
	if ia.Cycles() != 4 || da.Cycles() != 4 {
		t.Errorf("bus cycles: ia=%d da=%d", ia.Cycles(), da.Cycles())
	}
	if ia.TotalEnergy().Total() <= 0 {
		t.Error("IA bus dissipated nothing")
	}
	// DA bus saw 2 words (1 transition) — energy must be positive but
	// far smaller than a per-cycle stream would give.
	if da.TotalEnergy().Total() <= 0 {
		t.Error("DA bus dissipated nothing despite a transition")
	}
}

func TestRunSingleKinds(t *testing.T) {
	cycles := []trace.Cycle{
		{IValid: true, IAddr: 0x1000, DValid: true, DAddr: 0x2000_0000},
		{IValid: true, IAddr: 0x2000},
	}
	s := newSim(t, Config{IntervalCycles: 10})
	if _, err := RunSingle(trace.NewSliceSource(cycles), s, "ia", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSingle(trace.NewSliceSource(cycles), s, "bogus", 10); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := RunSingle(trace.NewSliceSource(cycles), nil, "ia", 10); err == nil {
		t.Error("nil simulator accepted")
	}
}

func TestEncoderWidensBus(t *testing.T) {
	s := newSim(t, Config{Encoder: encoding.NewOEBI()})
	if s.Width() != 34 {
		t.Errorf("width = %d, want 34", s.Width())
	}
	u := newSim(t, Config{})
	if u.Width() != 32 {
		t.Errorf("unencoded width = %d, want 32", u.Width())
	}
}

func TestOnSampleCallbackAndDrop(t *testing.T) {
	var got []Sample
	s := newSim(t, Config{
		IntervalCycles: 50,
		OnSample:       func(smp Sample) { got = append(got, smp) },
		DropSamples:    true,
	})
	for i := 0; i < 175; i++ {
		s.StepWord(uint32(i * 4))
	}
	s.Finish()
	if len(got) != 4 { // 3 full + 1 partial
		t.Errorf("callback samples = %d, want 4", len(got))
	}
	if len(s.Samples()) != 0 {
		t.Errorf("DropSamples retained %d samples", len(s.Samples()))
	}
	if got[3].EndCycle != 175 {
		t.Errorf("last sample end = %d, want 175", got[3].EndCycle)
	}
}

func TestSampleEnergyConsistency(t *testing.T) {
	s := newSim(t, Config{IntervalCycles: 100, CouplingDepth: -1})
	for i := 0; i < 1000; i++ {
		s.StepWord(uint32(i) * 4)
	}
	s.Finish()
	sum := 0.0
	for _, smp := range s.Samples() {
		sum += smp.Energy
		if math.Abs(smp.Energy-(smp.Self+smp.CoupAdj+smp.CoupNonAdj)) > 1e-18 {
			t.Errorf("sample components do not sum: %+v", smp)
		}
		if smp.AvgTemp < units.AmbientK {
			t.Errorf("avg temp %g below ambient", smp.AvgTemp)
		}
		if smp.MaxTemp < smp.AvgTemp {
			t.Errorf("max %g < avg %g", smp.MaxTemp, smp.AvgTemp)
		}
	}
	if math.Abs(sum-s.TotalEnergy().Total()) > 1e-15+1e-9*sum {
		t.Errorf("sample sum %g != total %g", sum, s.TotalEnergy().Total())
	}
}

func TestTrackWireTemps(t *testing.T) {
	s := newSim(t, Config{IntervalCycles: 50, TrackWireTemps: true})
	for i := 0; i < 120; i++ {
		s.StepWord(uint32(i) * 4)
	}
	s.Finish()
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("%d samples", len(samples))
	}
	for _, smp := range samples {
		if len(smp.WireTemps) != s.Width() {
			t.Fatalf("WireTemps length %d, want %d", len(smp.WireTemps), s.Width())
		}
		maxT := smp.WireTemps[0]
		for _, temp := range smp.WireTemps {
			if temp > maxT {
				maxT = temp
			}
		}
		if maxT != smp.MaxTemp {
			t.Errorf("WireTemps max %g != MaxTemp %g", maxT, smp.MaxTemp)
		}
	}
	// Off by default.
	u := newSim(t, Config{IntervalCycles: 50})
	for i := 0; i < 60; i++ {
		u.StepWord(uint32(i) * 4)
	}
	u.Finish()
	if u.Samples()[0].WireTemps != nil {
		t.Error("WireTemps populated without TrackWireTemps")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config (invalid node) accepted")
	}
	if _, err := New(Config{Node: itrs.N130, Length: -1}); err == nil {
		t.Error("negative length accepted")
	}
}

func TestNoRepeatersLowersSelfEnergy(t *testing.T) {
	run := func(noRep bool) float64 {
		s := newSim(t, Config{NoRepeaters: noRep, IntervalCycles: 100})
		for i := 0; i < 100; i++ {
			s.StepWord(uint32(i) ^ 0xFFFFFFFF*uint32(i&1))
		}
		s.Finish()
		return s.TotalEnergy().Self
	}
	with := run(false)
	without := run(true)
	if without >= with {
		t.Errorf("repeater-free self energy %g >= repeatered %g", without, with)
	}
	// Crep = 0.756*Cint is several times cline for these nodes, so the
	// difference must be substantial.
	if with < 2*without {
		t.Errorf("repeater contribution too small: %g vs %g", with, without)
	}
}

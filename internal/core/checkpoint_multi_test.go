package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
)

func newMultiForCkpt(t *testing.T, buses int) *MultiSim {
	t.Helper()
	enc, err := encoding.New("BI")
	if err != nil {
		t.Fatalf("encoding.New: %v", err)
	}
	m, err := NewMulti(MultiConfig{
		Config: Config{
			Node:           itrs.N90,
			Encoder:        enc,
			CouplingDepth:  -1,
			IntervalCycles: 1000,
			TrackWireTemps: true,
		},
		Buses: buses,
	})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	return m
}

// TestMultiSnapshotRestoreRoundTrip snapshots a K-bus simulator mid-run
// (mid-interval, stateful encoder, samples retained), restores into a
// fresh simulator, and requires both to continue bit-identically.
func TestMultiSnapshotRestoreRoundTrip(t *testing.T) {
	const buses = 4
	src := newMultiForCkpt(t, buses)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(3))
	mkSlab := func(rows int) []uint32 {
		s := make([]uint32, rows*buses)
		for i := range s {
			s[i] = rng.Uint32()
		}
		return s
	}
	// 2.3 intervals in: retained samples plus a partially filled window.
	if _, err := src.StepBatch(ctx, mkSlab(2300)); err != nil {
		t.Fatalf("StepBatch: %v", err)
	}

	blob, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dst := newMultiForCkpt(t, buses)
	if err := dst.Restore(blob); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// The restored simulator must also re-snapshot to the same bytes.
	blob2, err := dst.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if len(blob) != len(blob2) {
		t.Fatalf("re-snapshot length %d != %d", len(blob2), len(blob))
	}
	for i := range blob {
		if blob[i] != blob2[i] {
			t.Fatalf("re-snapshot differs at byte %d", i)
		}
	}

	tail := mkSlab(1700)
	if _, err := src.StepBatch(ctx, tail); err != nil {
		t.Fatalf("src tail: %v", err)
	}
	if _, err := dst.StepBatch(ctx, tail); err != nil {
		t.Fatalf("dst tail: %v", err)
	}
	if err := src.Finish(); err != nil {
		t.Fatalf("src Finish: %v", err)
	}
	if err := dst.Finish(); err != nil {
		t.Fatalf("dst Finish: %v", err)
	}

	if src.Cycles() != dst.Cycles() {
		t.Fatalf("cycles: %d vs %d", src.Cycles(), dst.Cycles())
	}
	// The snapshot state round-trips bit-exactly (checked byte-for-byte
	// above). The continued runs agree to rounding, not bit-exactly: the
	// restored simulator's cold memo evicts on a different schedule than
	// the source's warm one, so the K>1 count-aggregation drains associate
	// float additions differently (see the format comment).
	relClose := func(a, b float64) bool {
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			return a == b
		}
		return math.Abs(a-b) <= 1e-12*scale
	}
	for k := 0; k < buses; k++ {
		ss, ds := src.Samples(k), dst.Samples(k)
		if len(ss) != len(ds) {
			t.Fatalf("bus %d sample counts: %d vs %d", k, len(ss), len(ds))
		}
		for i := range ss {
			if ss[i].EndCycle != ds[i].EndCycle ||
				!relClose(ss[i].Energy, ds[i].Energy) ||
				!relClose(ss[i].MaxTemp, ds[i].MaxTemp) {
				t.Fatalf("bus %d sample %d: %+v vs %+v", k, i, ss[i], ds[i])
			}
		}
		a, b := src.TotalEnergy(k), dst.TotalEnergy(k)
		if !relClose(a.Self, b.Self) || !relClose(a.CoupAdj, b.CoupAdj) || !relClose(a.CoupNonAdj, b.CoupNonAdj) {
			t.Fatalf("bus %d total energy: %+v vs %+v", k, a, b)
		}
		at, bt := src.BusTemps(k), dst.BusTemps(k)
		for j := range at {
			if !relClose(at[j], bt[j]) {
				t.Fatalf("bus %d wire %d temp: %v vs %v", k, j, at[j], bt[j])
			}
		}
	}
}

// TestMultiSnapshotK1IsV1 checks the K == 1 pass-through: a K=1 MultiSim
// snapshot restores into a plain Simulator and vice versa.
func TestMultiSnapshotK1IsV1(t *testing.T) {
	enc1, _ := encoding.New("CBI")
	enc2, _ := encoding.New("CBI")
	cfg := Config{Node: itrs.N130, Encoder: enc1, CouplingDepth: -1, IntervalCycles: 500}
	msim, err := NewMulti(MultiConfig{Config: cfg, Buses: 1})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	cfg.Encoder = enc2
	sim, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	words := make([]uint32, 750)
	rng := rand.New(rand.NewSource(5))
	for i := range words {
		words[i] = rng.Uint32()
	}
	if _, err := msim.StepBatch(context.Background(), words); err != nil {
		t.Fatalf("StepBatch: %v", err)
	}
	blob, err := msim.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := sim.Restore(blob); err != nil {
		t.Fatalf("scalar Restore of K=1 multi snapshot: %v", err)
	}
	if sim.Cycles() != msim.Cycles() {
		t.Fatalf("cycles: %d vs %d", sim.Cycles(), msim.Cycles())
	}
}

// TestMultiRestoreRejections covers corrupt and mismatched blobs.
func TestMultiRestoreRejections(t *testing.T) {
	m := newMultiForCkpt(t, 3)
	if _, err := m.StepBatch(context.Background(), make([]uint32, 300)); err != nil {
		t.Fatalf("StepBatch: %v", err)
	}
	blob, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	if err := m.Restore(blob[:10]); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("short blob: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	if err := m.Restore(bad); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bit rot: %v", err)
	}
	other := newMultiForCkpt(t, 2)
	if err := other.Restore(blob); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("bus-count mismatch: %v", err)
	}
	// A v1 blob must be rejected by a K>1 target (version gate).
	sim, err := New(Config{Node: itrs.N90, IntervalCycles: 1000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v1, err := sim.Snapshot()
	if err != nil {
		t.Fatalf("scalar Snapshot: %v", err)
	}
	if err := m.Restore(v1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("v1 blob into multi target: %v", err)
	}
}

package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
)

// Multi-bus checkpoint format (version 2). Same envelope and plumbing as
// version 1 (magic "NBCP", little-endian fields, crc32 trailer,
// validate-before-mutate restore), extended with a bus count and per-bus
// state blocks:
//
//	magic "NBCP" | version=2 u16 | flags u16
//	config fingerprint: node, encoder, width, interval, length, depth,
//	    repeater flag (as v1) | buses u32 | bus-coupling-disabled flag |
//	    bus gap pitches f64
//	shared state: cycle count, interval phase, grid ambient, K*W wire
//	    temperatures (bus-major)
//	per bus k: cumulative energy total, W per-line totals, accumulator
//	    window (as v1), encoder state, retained samples (as v1)
//	crc32 (IEEE) over everything above
//
// A K == 1 MultiSim snapshots through the scalar pipeline unchanged, so
// its blobs are byte-identical version-1 checkpoints, interchangeable
// with Simulator.Snapshot/Restore. For K > 1, Snapshot drains the shared
// memo's pending transition counts into the window first, and the
// snapshot/restore round trip itself is bit-exact (restore then
// re-snapshot reproduces the blob byte for byte). Continued runs agree to
// rounding rather than bit-exactly: the memo is never serialized, so the
// restored simulator re-warms from a cold table whose eviction schedule
// differs from the source's warm one, and the count-aggregation drains
// then associate float additions differently (~1e-12 relative — the same
// bound as the K>1 kernel against K scalar simulators). K == 1 restores
// continue bit-identically, exactly like Simulator.Restore.
const checkpointVersionMulti = 2

// Snapshot serializes the multi-bus simulator (see Simulator.Snapshot for
// the contract; K == 1 produces a version-1 blob).
func (m *MultiSim) Snapshot() ([]byte, error) {
	if m.single != nil {
		return m.single.Snapshot()
	}
	if m.err != nil {
		return nil, fmt.Errorf("snapshot: %w", m.err)
	}
	m.acc.Drain()

	w := ckptWriter{}
	w.raw([]byte(checkpointMagic))
	w.u16(checkpointVersionMulti)
	w.u16(0) // flags, reserved

	// Config fingerprint: v1 fields, then the multi extension.
	w.str(m.cfg.Node.Name)
	w.str(m.encs[0].Name())
	w.u32(uint32(m.width))
	w.u64(m.interval)
	w.f64(m.length)
	w.i64(int64(normalizedDepth(m.cfg.CouplingDepth)))
	w.bool(m.cfg.NoRepeaters)
	w.u32(uint32(m.buses))
	w.bool(m.cfg.DisableBusCoupling)
	w.f64(m.cfg.BusGapPitches)

	// Shared counters and grid state.
	w.u64(m.cycles)
	w.u64(m.cycleInInterval)
	w.f64(m.grid.Ambient())
	for _, t := range m.grid.Temps(nil) {
		w.f64(t)
	}

	// Per-bus blocks.
	for k := 0; k < m.buses; k++ {
		w.lineEnergy(m.totalEnergy[k])
		for _, le := range m.lineTotals[k*m.width : (k+1)*m.width] {
			w.lineEnergy(le)
		}
		ast := m.acc.BusState(k)
		w.u64(ast.Prev)
		w.bool(ast.First)
		w.u64(ast.Cycles)
		w.u64(ast.IdleCycles)
		w.lineEnergy(ast.Total)
		for _, le := range ast.Lines {
			w.lineEnergy(le)
		}
		var est encoding.State
		if se, ok := m.encs[k].(encoding.Stateful); ok {
			est = se.State()
		}
		w.u64(est.Prev)
		w.u32(est.Last)
		w.bool(est.First)
		w.u32(uint32(len(m.samples[k])))
		for _, sm := range m.samples[k] {
			w.u64(sm.EndCycle)
			w.f64(sm.Energy)
			w.f64(sm.Self)
			w.f64(sm.CoupAdj)
			w.f64(sm.CoupNonAdj)
			w.f64(sm.AvgTemp)
			w.f64(sm.MaxTemp)
			w.i64(int64(sm.MaxWire))
			w.u32(uint32(len(sm.WireTemps)))
			for _, t := range sm.WireTemps {
				w.f64(t)
			}
		}
	}

	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// Restore overwrites the multi-bus simulator's state from a Snapshot blob
// (see Simulator.Restore for the validation contract; K == 1 accepts
// version-1 blobs).
func (m *MultiSim) Restore(data []byte) error {
	if m.single != nil {
		return m.single.Restore(data)
	}
	r := &ckptReader{buf: data}
	const trailerLen = 4
	if len(data) < len(checkpointMagic)+2+2+trailerLen {
		return fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrCheckpointCorrupt, len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, data[:len(checkpointMagic)])
	}
	body, tail := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCheckpointCorrupt, want, got)
	}
	r.buf = body
	r.off = len(checkpointMagic)
	if v := r.u16(); v != checkpointVersionMulti {
		return fmt.Errorf("%w: unsupported version %d (want %d for a multi-bus target)", ErrCheckpointCorrupt, v, checkpointVersionMulti)
	}
	r.u16() // flags, reserved

	nodeName := r.str()
	encName := r.str()
	width := int(r.u32())
	interval := r.u64()
	length := r.f64()
	depth := int(r.i64())
	noRep := r.bool()
	buses := int(r.u32())
	noCoupling := r.bool()
	gapPitches := r.f64()
	if r.err != nil {
		return r.wrapErr()
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("%w: %s is %v in the checkpoint, %v in the target", ErrCheckpointMismatch, field, got, want)
	}
	switch {
	case nodeName != m.cfg.Node.Name:
		return mismatch("node", nodeName, m.cfg.Node.Name)
	case encName != m.encs[0].Name():
		return mismatch("encoding", encName, m.encs[0].Name())
	case width != m.width:
		return mismatch("width", width, m.width)
	case interval != m.interval:
		return mismatch("interval_cycles", interval, m.interval)
	case math.Float64bits(length) != math.Float64bits(m.length):
		return mismatch("length_m", length, m.length)
	case depth != normalizedDepth(m.cfg.CouplingDepth):
		return mismatch("coupling_depth", depth, normalizedDepth(m.cfg.CouplingDepth))
	case noRep != m.cfg.NoRepeaters:
		return mismatch("no_repeaters", noRep, m.cfg.NoRepeaters)
	case buses != m.buses:
		return mismatch("buses", buses, m.buses)
	case noCoupling != m.cfg.DisableBusCoupling:
		return mismatch("bus_coupling_disabled", noCoupling, m.cfg.DisableBusCoupling)
	case math.Float64bits(gapPitches) != math.Float64bits(m.cfg.BusGapPitches):
		return mismatch("bus_gap_pitches", gapPitches, m.cfg.BusGapPitches)
	}

	// Decode everything into temporaries before mutating the simulator.
	cycles := r.u64()
	cycleInInterval := r.u64()
	ambient := r.f64()
	temps := make([]float64, buses*width)
	for i := range temps {
		temps[i] = r.f64()
	}
	totalEnergy := make([]energy.LineEnergy, buses)
	lineTotals := make([]energy.LineEnergy, buses*width)
	asts := make([]energy.AccumulatorState, buses)
	ests := make([]encoding.State, buses)
	samples := make([][]Sample, buses)
	for k := 0; k < buses && r.err == nil; k++ {
		totalEnergy[k] = r.lineEnergy()
		for i := 0; i < width; i++ {
			lineTotals[k*width+i] = r.lineEnergy()
		}
		ast := energy.AccumulatorState{Lines: make([]energy.LineEnergy, width)}
		ast.Prev = r.u64()
		ast.First = r.bool()
		ast.Cycles = r.u64()
		ast.IdleCycles = r.u64()
		ast.Total = r.lineEnergy()
		for i := range ast.Lines {
			ast.Lines[i] = r.lineEnergy()
		}
		asts[k] = ast
		ests[k].Prev = r.u64()
		ests[k].Last = r.u32()
		ests[k].First = r.bool()
		nSamples := int(r.u32())
		if r.err == nil && nSamples > r.remaining()/sampleMinBytes {
			r.err = fmt.Errorf("bus %d sample count %d exceeds the remaining payload", k, nSamples)
		}
		if r.err == nil && nSamples > 0 {
			samples[k] = make([]Sample, nSamples)
			for i := range samples[k] {
				sm := &samples[k][i]
				sm.EndCycle = r.u64()
				sm.Energy = r.f64()
				sm.Self = r.f64()
				sm.CoupAdj = r.f64()
				sm.CoupNonAdj = r.f64()
				sm.AvgTemp = r.f64()
				sm.MaxTemp = r.f64()
				sm.MaxWire = int(r.i64())
				if nwt := int(r.u32()); r.err == nil && nwt > 0 {
					if nwt > r.remaining()/8 {
						r.err = fmt.Errorf("wire-temp count %d exceeds the remaining payload", nwt)
						break
					}
					sm.WireTemps = make([]float64, nwt)
					for j := range sm.WireTemps {
						sm.WireTemps[j] = r.f64()
					}
				}
			}
		}
	}
	if r.err != nil {
		return r.wrapErr()
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes after the payload", ErrCheckpointCorrupt, len(r.buf)-r.off)
	}

	// Everything validated; apply. Drop pending counts from the current
	// run first so they cannot leak into the restored window.
	m.acc.ResetAll()
	for k := 0; k < buses; k++ {
		if err := m.acc.SetBusState(k, asts[k]); err != nil {
			return err
		}
		if se, ok := m.encs[k].(encoding.Stateful); ok {
			se.SetState(ests[k])
		}
	}
	if err := m.grid.SetAmbient(ambient); err != nil {
		return err
	}
	if err := m.grid.SetTemps(temps); err != nil {
		return err
	}
	m.cycles = cycles
	m.cycleInInterval = cycleInInterval
	copy(m.totalEnergy, totalEnergy)
	copy(m.lineTotals, lineTotals)
	m.samples = samples
	m.err = nil
	return nil
}

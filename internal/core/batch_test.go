package core

import (
	"context"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/trace"
)

// batchWords is an address-like data-word stream.
func batchWords(n int) []uint32 {
	words := make([]uint32, n)
	w, rng := uint32(0x4000_1000), uint32(7)
	for i := range words {
		rng = rng*1664525 + 1013904223
		switch rng % 8 {
		case 0:
			w = rng
		case 1: // hold
		default:
			w += 4
		}
		words[i] = w
	}
	return words
}

// TestStepBatchMatchesStepWordAllEncoders requires the chunked batch path
// to be bit-identical to per-word stepping — samples included — for every
// encoder (batch-encoded and per-word encoded alike) and across interval
// boundaries that do not divide the batch size.
func TestStepBatchMatchesStepWordAllEncoders(t *testing.T) {
	words := batchWords(10_000)
	for _, scheme := range encoding.AllSchemes() {
		mk := func() *Simulator {
			enc, err := encoding.New(scheme)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := New(Config{
				Node:           itrs.N130,
				Encoder:        enc,
				CouplingDepth:  -1,
				IntervalCycles: 997, // prime, so chunks straddle intervals
			})
			if err != nil {
				t.Fatal(err)
			}
			return sim
		}
		ref, got := mk(), mk()
		for _, w := range words {
			ref.StepWord(w)
		}
		ref.StepIdle()
		for i := 0; i < 2500; i++ {
			ref.StepIdle()
		}
		ctx := context.Background()
		if _, err := got.StepBatch(ctx, words); err != nil {
			t.Fatal(err)
		}
		if _, err := got.StepIdleBatch(ctx, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := got.StepIdleBatch(ctx, 2500); err != nil {
			t.Fatal(err)
		}
		if err := ref.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := got.Finish(); err != nil {
			t.Fatal(err)
		}
		if ref.Cycles() != got.Cycles() {
			t.Fatalf("%s: cycles %d != %d", scheme, ref.Cycles(), got.Cycles())
		}
		if ref.TotalEnergy() != got.TotalEnergy() {
			t.Fatalf("%s: total %+v != %+v", scheme, ref.TotalEnergy(), got.TotalEnergy())
		}
		rs, gs := ref.Samples(), got.Samples()
		if len(rs) != len(gs) {
			t.Fatalf("%s: %d samples != %d", scheme, len(rs), len(gs))
		}
		for i := range rs {
			if rs[i].EndCycle != gs[i].EndCycle || rs[i].Energy != gs[i].Energy ||
				rs[i].AvgTemp != gs[i].AvgTemp || rs[i].MaxTemp != gs[i].MaxTemp {
				t.Fatalf("%s: sample %d differs: %+v != %+v", scheme, i, rs[i], gs[i])
			}
		}
		rt, gt := ref.Temps(), got.Temps()
		for i := range rt {
			if rt[i] != gt[i] {
				t.Fatalf("%s: wire %d temp %v != %v", scheme, i, rt[i], gt[i])
			}
		}
	}
}

// TestPlayTapeMatchesRunSingle requires a compiled tape replay to be
// bit-identical to the per-cycle run loop over the same source.
func TestPlayTapeMatchesRunSingle(t *testing.T) {
	const cycles = 50_000
	for _, kind := range []string{"ia", "da"} {
		mk := func() *Simulator {
			sim, err := New(Config{Node: itrs.N90, CouplingDepth: -1, IntervalCycles: 4096})
			if err != nil {
				t.Fatal(err)
			}
			return sim
		}
		ref, got := mk(), mk()
		src := trace.NewSynth(trace.DefaultSynthConfig(42))
		n, err := RunSingle(src, ref, kind, cycles)
		if err != nil {
			t.Fatal(err)
		}
		if n != cycles {
			t.Fatalf("ran %d of %d cycles", n, cycles)
		}
		tape, err := CompileTape(trace.NewSynth(trace.DefaultSynthConfig(42)), kind, cycles)
		if err != nil {
			t.Fatal(err)
		}
		if tape.Cycles() != cycles {
			t.Fatalf("tape has %d cycles, want %d", tape.Cycles(), cycles)
		}
		if err := got.PlayTape(context.Background(), tape); err != nil {
			t.Fatal(err)
		}
		if err := got.Finish(); err != nil {
			t.Fatal(err)
		}
		if ref.TotalEnergy() != got.TotalEnergy() {
			t.Fatalf("%s: total %+v != %+v", kind, ref.TotalEnergy(), got.TotalEnergy())
		}
		if ref.Cycles() != got.Cycles() {
			t.Fatalf("%s: cycles %d != %d", kind, ref.Cycles(), got.Cycles())
		}
		rs, gs := ref.Samples(), got.Samples()
		if len(rs) != len(gs) {
			t.Fatalf("%s: %d samples != %d", kind, len(rs), len(gs))
		}
		for i := range rs {
			if rs[i].EndCycle != gs[i].EndCycle || rs[i].Energy != gs[i].Energy ||
				rs[i].Self != gs[i].Self || rs[i].CoupAdj != gs[i].CoupAdj ||
				rs[i].CoupNonAdj != gs[i].CoupNonAdj ||
				rs[i].AvgTemp != gs[i].AvgTemp || rs[i].MaxTemp != gs[i].MaxTemp {
				t.Fatalf("%s: sample %d differs: %+v != %+v", kind, i, rs[i], gs[i])
			}
		}
	}
}

// TestCompileTapeErrors pins the tape compiler's validation.
func TestCompileTapeErrors(t *testing.T) {
	if _, err := CompileTape(trace.NewSliceSource(nil), "xa", 10); err == nil {
		t.Fatal("want error for unknown bus kind")
	}
}

// TestStepBatchAllocs is the alloc regression gate for the core batch
// pipeline: once the memo is warm, StepBatch and StepIdleBatch must not
// allocate — including the interval flushes and thermal advances inside.
func TestStepBatchAllocs(t *testing.T) {
	words := batchWords(8192)
	sim, err := New(Config{
		Node:           itrs.N130,
		CouplingDepth:  -1,
		IntervalCycles: 1000, // several flushes per measured run
		DropSamples:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sim.StepBatch(ctx, words); err != nil { // warm memo and dt cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sim.StepBatch(ctx, words); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.StepIdleBatch(ctx, 3000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("StepBatch+StepIdleBatch allocate %v/op in steady state, want 0", allocs)
	}
}

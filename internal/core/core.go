// Package core ties the paper's models together into the unified bus
// simulator of Secs. 3-5: words (optionally passed through a low-power
// encoder) drive the per-line energy model every cycle; every interval
// (100K cycles by default, the paper's choice) the accumulated per-line
// energies become piecewise-constant power inputs to the thermal-RC
// network, which is advanced with the exact interval propagator (or the
// paper's RK4 when requested); samples of interval energy and
// average/maximum wire temperature reproduce the traces of Figs. 4-5.
// Per-cycle transition energies are memoized by default (bit-identical to
// the direct kernel; Config.MemoSizeLog2 tunes or disables the cache).
package core

import (
	"context"
	"errors"
	"fmt"

	"nanobus/internal/capmodel"
	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/faultinject"
	"nanobus/internal/itrs"
	"nanobus/internal/repeater"
	"nanobus/internal/thermal"
	"nanobus/internal/trace"
)

// DefaultLength is the paper's global bus length regime ("length > 10 mm").
const DefaultLength = 0.01

// DefaultIntervalCycles is the paper's energy/temperature sampling interval.
const DefaultIntervalCycles = 100_000

// ErrPoisoned marks a simulator whose interval flush failed: the sticky
// error returned by Err, Finish, StepBatch and StepIdleBatch wraps it, so
// callers can test errors.Is(err, ErrPoisoned). A poisoned simulator stops
// emitting samples; Reset clears the condition.
//
// Every method that can close a sampling interval can poison the
// simulator: StepWord, StepIdle, StepBatch, StepIdleBatch, and Finish
// (which flushes the final partial interval). Read-only accessors
// (Samples, Temps, TotalEnergy, ...) never do.
var ErrPoisoned = errors.New("core: simulator poisoned")

// Config assembles a bus Simulator.
type Config struct {
	// Node is the technology node (required).
	Node itrs.Node
	// Length is the bus length in meters; zero means DefaultLength.
	Length float64
	// Encoder transforms data words to physical bus words; nil means
	// unencoded. Mutually exclusive with Adaptive.
	Encoder encoding.Encoder
	// Adaptive, when non-nil, enables the closed-loop thermal encoding
	// controller: the simulator starts on Adaptive.Base and switches
	// encoders at sampling-interval boundaries to defend the configured
	// temperature ceiling (see AdaptiveConfig). Mutually exclusive with
	// Encoder.
	Adaptive *AdaptiveConfig
	// CouplingDepth truncates the coupling matrix: 0 keeps self
	// capacitance only, 1 nearest-neighbour, negative or large keeps all
	// pairs. Use a negative value for the paper's full ("All") model.
	CouplingDepth int
	// IntervalCycles is the sampling interval; zero means
	// DefaultIntervalCycles.
	IntervalCycles uint64
	// NoRepeaters drops the repeater capacitance (ablation; the paper's
	// model includes delay-optimal repeaters).
	NoRepeaters bool
	// Thermal configures the thermal network.
	Thermal thermal.NodeOptions
	// OnSample, when non-nil, receives every interval sample as it
	// closes (streaming consumers).
	OnSample func(Sample)
	// DropSamples disables in-memory sample retention; combine with
	// OnSample for long runs that must not accumulate memory.
	DropSamples bool
	// TrackWireTemps copies the full per-wire temperature vector into
	// every sample (Sample.WireTemps), enabling cross-bus thermal-profile
	// animations at the cost of width*8 bytes per interval.
	TrackWireTemps bool
	// Decay overrides the non-adjacent coupling decay model; nil uses the
	// node's calibrated default.
	Decay *capmodel.DecayModel
	// MemoSizeLog2 sizes the transition-energy memo (2^k entries): zero
	// selects energy.DefaultMemoSizeLog2, a negative value disables
	// memoization entirely (the direct kernel runs every cycle). Memoized
	// and direct runs are bit-identical; see energy.Memo.
	MemoSizeLog2 int
}

// Sample is one interval's record.
type Sample struct {
	// EndCycle is the cycle count at the end of this interval.
	EndCycle uint64
	// Energy is the whole-bus energy dissipated during the interval (J),
	// under the full (all-pairs) model.
	Energy float64
	// Self, CoupAdj, CoupNonAdj split Energy by component.
	Self, CoupAdj, CoupNonAdj float64
	// AvgTemp and MaxTemp are wire temperatures (K) at interval end.
	AvgTemp, MaxTemp float64
	// MaxWire is the hottest wire's index.
	MaxWire int
	// WireTemps is the full per-wire temperature vector at interval end;
	// nil unless Config.TrackWireTemps is set.
	WireTemps []float64
	// Encoder names the scheme that drove the bus during this interval.
	// Empty unless the adaptive controller is enabled.
	Encoder string
	// Switched marks that the adaptive controller changed encoders when
	// this interval closed (the next interval runs the other encoder).
	Switched bool
}

// Simulator drives one address bus.
type Simulator struct {
	cfg Config
	enc encoding.Encoder
	// ad is the adaptive encoding controller; nil for static encoders.
	// When set, enc always aliases ad's active encoder.
	ad       *adaptiveState
	acc      *energy.Accumulator
	net      *thermal.Network
	interval uint64
	dt       float64 // interval duration in seconds
	length   float64

	cycleInInterval uint64
	samples         []Sample
	lineBuf         []energy.LineEnergy
	power           []float64
	// encBuf is the batch pipeline's encode scratch: StepBatch encodes up
	// to one chunk of data words into physical words here before handing
	// them to the accumulator, so the steady state allocates nothing.
	encBuf []uint64

	totalEnergy energy.LineEnergy
	lineTotals  []energy.LineEnergy
	cycles      uint64

	// err is the first error hit while flushing an interval; sticky, and
	// surfaced by Finish and Err.
	err error
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Node.Validate(); err != nil {
		return nil, err
	}
	enc := cfg.Encoder
	var ad *adaptiveState
	if cfg.Adaptive != nil {
		if enc != nil {
			return nil, fmt.Errorf("core: Encoder and Adaptive are mutually exclusive")
		}
		var err error
		if ad, err = newAdaptive(*cfg.Adaptive); err != nil {
			return nil, err
		}
		enc = ad.active()
	}
	if enc == nil {
		enc = encoding.NewUnencoded()
	}
	length := cfg.Length
	if length == 0 { //nanolint:ignore floateq zero means the option was left unset; configured lengths are nonzero
		length = DefaultLength
	}
	if length < 0 {
		return nil, fmt.Errorf("core: negative bus length %g", length)
	}
	interval := cfg.IntervalCycles
	if interval == 0 {
		interval = DefaultIntervalCycles
	}
	width := enc.Width()

	decay := capmodel.DefaultDecay(cfg.Node)
	if cfg.Decay != nil {
		decay = *cfg.Decay
	}
	caps, err := capmodel.FromNode(cfg.Node, width, decay)
	if err != nil {
		return nil, err
	}
	depth := cfg.CouplingDepth
	if depth >= 0 {
		caps = caps.Truncate(depth)
	}

	crep := 0.0
	if !cfg.NoRepeaters {
		plan, err := repeater.InsertDefault(cfg.Node, length)
		if err != nil {
			return nil, err
		}
		crep = plan.Crep
	}
	model, err := energy.New(energy.Config{
		Caps:   caps,
		Length: length,
		Vdd:    cfg.Node.Vdd,
		Crep:   crep,
	})
	if err != nil {
		return nil, err
	}
	net, err := thermal.NewFromNode(cfg.Node, width, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	acc := energy.NewAccumulator(model)
	if cfg.MemoSizeLog2 >= 0 {
		if err := acc.EnableMemo(cfg.MemoSizeLog2); err != nil {
			return nil, err
		}
	}
	return &Simulator{
		cfg:        cfg,
		enc:        enc,
		ad:         ad,
		acc:        acc,
		net:        net,
		interval:   interval,
		dt:         float64(interval) * cfg.Node.CyclePeriod(),
		length:     length,
		lineBuf:    make([]energy.LineEnergy, width),
		power:      make([]float64, width),
		lineTotals: make([]energy.LineEnergy, width),
		encBuf:     make([]uint64, batchChunk),
	}, nil
}

// Width returns the physical bus width (data + invert lines).
func (s *Simulator) Width() int { return s.enc.Width() }

// Encoder returns the encoder in use.
func (s *Simulator) Encoder() encoding.Encoder { return s.enc }

// Network exposes the thermal network (read-only use intended).
func (s *Simulator) Network() *thermal.Network { return s.net }

// StepWord drives one data word for one cycle. If the cycle closes a
// sampling interval whose flush fails, the simulator is poisoned (see
// ErrPoisoned); check Err or Finish.
func (s *Simulator) StepWord(word uint32) {
	s.acc.Step(s.enc.Encode(word))
	s.tick()
}

// StepIdle advances one cycle with the bus holding its value. Like
// StepWord it can poison the simulator when an interval flush fails.
func (s *Simulator) StepIdle() {
	s.acc.Idle()
	s.tick()
}

func (s *Simulator) tick() {
	s.cycles++
	s.cycleInInterval++
	if s.cycleInInterval >= s.interval {
		s.flush(s.cycleInInterval)
	}
}

// flush closes the current interval of n cycles: convert per-line energy to
// power, advance the thermal network, emit a sample, reset the window.
func (s *Simulator) flush(n uint64) {
	if n == 0 {
		return
	}
	// Chaos harnesses arm this failpoint to fail (or panic) an interval
	// close mid-run; disarmed it is one atomic load per interval.
	if err := faultinject.Hit("core.interval.flush"); err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("%w: interval flush: %w", ErrPoisoned, err)
		}
		s.acc.Reset()
		s.cycleInInterval = 0
		return
	}
	s.acc.Lines(s.lineBuf)
	dt := float64(n) * s.cfg.Node.CyclePeriod()
	for i := range s.lineBuf {
		le := s.lineBuf[i]
		s.lineTotals[i].Self += le.Self
		s.lineTotals[i].CoupAdj += le.CoupAdj
		s.lineTotals[i].CoupNonAdj += le.CoupNonAdj
		// W/m: interval line energy over interval time, per unit length.
		s.power[i] = le.Total() / dt / s.length
	}
	tot := s.acc.Total()
	s.totalEnergy.Self += tot.Self
	s.totalEnergy.CoupAdj += tot.CoupAdj
	s.totalEnergy.CoupNonAdj += tot.CoupNonAdj

	if err := s.net.Advance(dt, s.power); err != nil {
		// The network is sized to the bus and dt > 0, so this indicates a
		// programming bug; record it sticky and stop sampling rather than
		// take the library down.
		if s.err == nil {
			s.err = fmt.Errorf("%w: thermal advance: %w", ErrPoisoned, err)
		}
		s.acc.Reset()
		s.cycleInInterval = 0
		return
	}
	maxT, maxW := s.net.MaxTemp()
	sample := Sample{
		EndCycle:   s.cycles,
		Energy:     tot.Total(),
		Self:       tot.Self,
		CoupAdj:    tot.CoupAdj,
		CoupNonAdj: tot.CoupNonAdj,
		AvgTemp:    s.net.AvgTemp(),
		MaxTemp:    maxT,
		MaxWire:    maxW,
	}
	if s.cfg.TrackWireTemps {
		sample.WireTemps = s.net.Temps(nil)
	}
	if s.ad != nil {
		// The controller runs at interval boundaries: attribute the closed
		// interval's cycles to the encoder that drove it, then let the
		// control law pick the encoder for the next interval. The switch
		// decision is a pure function of (cycle, MaxTemp, config), so the
		// recorded switch points replay bit-identically from checkpoints.
		sample.Encoder = s.ad.names[s.ad.mode]
		s.ad.occupancy[s.ad.mode] += n
		s.enc, sample.Switched = s.ad.decide(s.cycles, maxT)
	}
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(sample)
	}
	if !s.cfg.DropSamples {
		s.samples = append(s.samples, sample)
	}
	s.acc.Reset()
	s.cycleInInterval = 0
}

// Finish closes any partial interval; call once after the last cycle. It
// returns the first error the simulator hit while flushing intervals, if
// any (also available via Err).
func (s *Simulator) Finish() error {
	if s.cycleInInterval > 0 {
		s.flush(s.cycleInInterval)
	}
	return s.err
}

// Err returns the first error recorded during stepping, or nil. Once an
// error is recorded the simulator is poisoned (the error wraps
// ErrPoisoned) and stops emitting samples; Reset clears it.
func (s *Simulator) Err() error { return s.err }

// MemoStats returns the transition-memo hit/miss counters, or the zero
// value when memoization is disabled (Config.MemoSizeLog2 < 0).
func (s *Simulator) MemoStats() energy.MemoStats {
	if m := s.acc.Memo(); m != nil {
		return m.Stats()
	}
	return energy.MemoStats{}
}

// Reset returns the simulator to its post-New state so sweep drivers can
// reuse one simulator (and its capacitance extraction, thermal
// factorisation and warm transition memo) across runs: bus state, encoder
// state, wire temperatures, samples, totals and the sticky error are all
// cleared; the memo's cached transition energies are kept — they depend
// only on the model, so a reused simulator replays runs bit-identically.
func (s *Simulator) Reset() {
	s.acc.ResetAll()
	s.net.Reset()
	s.enc.Reset()
	if s.ad != nil {
		s.ad.reset()
		s.enc = s.ad.active()
	}
	s.cycleInInterval = 0
	s.cycles = 0
	s.samples = nil
	s.totalEnergy = energy.LineEnergy{}
	for i := range s.lineTotals {
		s.lineTotals[i] = energy.LineEnergy{}
	}
	s.err = nil
}

// Samples returns the retained interval samples.
func (s *Simulator) Samples() []Sample { return s.samples }

// Cycles returns the number of cycles simulated.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// TotalEnergy returns the cumulative bus energy split by component,
// including any flushed intervals only (call Finish first for exact
// totals).
func (s *Simulator) TotalEnergy() energy.LineEnergy { return s.totalEnergy }

// LineEnergies copies cumulative per-line energies into dst (length
// Width()).
func (s *Simulator) LineEnergies(dst []energy.LineEnergy) {
	copy(dst, s.lineTotals)
}

// Temps returns the current per-wire temperatures.
func (s *Simulator) Temps() []float64 { return s.net.Temps(nil) }

// PairResult bundles the IA and DA simulators after a run.
type PairResult struct {
	IA, DA *Simulator
	Cycles uint64
}

// RunPair drives separate instruction- and data-address bus simulators
// from a trace source for up to maxCycles cycles (the DA bus idles on
// cycles without a data access, and both buses idle on injected idle
// cycles). It finishes both simulators before returning. RunPair is
// RunPairContext with a background context.
func RunPair(src trace.Source, ia, da *Simulator, maxCycles uint64) (PairResult, error) {
	return RunPairContext(context.Background(), src, ia, da, maxCycles)
}

// RunSingle drives one simulator from the source's instruction stream
// (kind "ia") or data stream ("da") for up to maxCycles cycles. RunSingle
// is RunSingleContext with a background context.
func RunSingle(src trace.Source, sim *Simulator, kind string, maxCycles uint64) (uint64, error) {
	return RunSingleContext(context.Background(), src, sim, kind, maxCycles)
}

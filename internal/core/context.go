package core

import (
	"context"
	"fmt"

	"nanobus/internal/encoding"
	"nanobus/internal/trace"
)

// Context-aware run loops. Cancellation granularity is one sampling
// interval: the loops poll ctx.Err() when an interval closes (and once on
// entry), never per cycle, so a cancelled context stops a run within at
// most IntervalCycles cycles of simulated work while the hot path stays
// free of per-cycle synchronization.

// batchChunk bounds how many words one StepBatch iteration encodes into
// the simulator's scratch buffer (32 KiB of uint64 scratch per simulator).
const batchChunk = 4096

// StepBatch drives one data word per cycle for every word in words,
// checking ctx each time a sampling interval closes. It returns the number
// of words consumed and the first error hit: ctx's error on cancellation,
// or the simulator's sticky error if an interval flush poisoned it (see
// Err). Like StepWord, StepBatch can poison the simulator.
//
// StepBatch is the batch fast path: words are encoded a chunk at a time
// into preallocated scratch (one encoder call per chunk instead of one
// interface dispatch per word) and accumulated through
// energy.Accumulator.StepBatch. Chunks never cross a sampling-interval
// boundary, so flush timing, sample contents, ctx polling points, and the
// consumed-word counts on every error path are identical to the per-word
// loop — and so are the energies, bit for bit. The steady state allocates
// nothing.
//
//nanolint:hotpath zero-alloc steady state pinned by BenchmarkStepBatch AllocsPerRun gates
func (s *Simulator) StepBatch(ctx context.Context, words []uint32) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	done := 0
	for done < len(words) {
		n := uint64(len(words) - done)
		if left := s.interval - s.cycleInInterval; n > left {
			n = left
		}
		if n > uint64(len(s.encBuf)) {
			n = uint64(len(s.encBuf))
		}
		encoding.EncodeWords(s.enc, s.encBuf[:n], words[done:done+int(n)])
		s.acc.StepBatch(s.encBuf[:n])
		s.cycles += n
		s.cycleInInterval += n
		done += int(n)
		if s.cycleInInterval >= s.interval {
			s.flush(s.cycleInInterval)
			if s.err != nil {
				return done, s.err
			}
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
	}
	return len(words), nil
}

// StepIdleBatch advances n idle cycles (the bus holds its value), checking
// ctx each time a sampling interval closes. It returns the number of
// cycles consumed and the first error hit, with the same semantics as
// StepBatch. Idle cycles dissipate nothing, so a run of idles inside one
// interval is two counter additions: the cost is O(intervals closed), not
// O(n).
//
//nanolint:hotpath idle fast path shares StepBatch's zero-alloc contract
func (s *Simulator) StepIdleBatch(ctx context.Context, n uint64) (uint64, error) {
	if s.err != nil {
		return 0, s.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var done uint64
	for done < n {
		k := n - done
		if left := s.interval - s.cycleInInterval; k > left {
			k = left
		}
		s.acc.IdleN(k)
		s.cycles += k
		s.cycleInInterval += k
		done += k
		if s.cycleInInterval >= s.interval {
			s.flush(s.cycleInInterval)
			if s.err != nil {
				return done, s.err
			}
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
	}
	return n, nil
}

// SetOnSample replaces the per-sample callback (Config.OnSample) for
// subsequent intervals. Streaming consumers attach a callback for the
// duration of one request and detach it with SetOnSample(nil); the
// simulator must not be stepped concurrently.
func (s *Simulator) SetOnSample(fn func(Sample)) { s.cfg.OnSample = fn }

// RunPairContext drives separate instruction- and data-address bus
// simulators from a trace source for up to maxCycles cycles, like RunPair,
// but polls ctx once per sampling interval (the smaller of the two
// simulators' intervals). On cancellation it returns ctx's error without
// finishing the simulators; the partial state remains inspectable through
// ia and da.
func RunPairContext(ctx context.Context, src trace.Source, ia, da *Simulator, maxCycles uint64) (PairResult, error) {
	if ia == nil || da == nil {
		return PairResult{}, fmt.Errorf("core: nil simulator")
	}
	check := ia.interval
	if da.interval < check {
		check = da.interval
	}
	var n uint64
	for n < maxCycles {
		if n%check == 0 {
			if err := ctx.Err(); err != nil {
				return PairResult{}, err
			}
		}
		c, ok := src.Next()
		if !ok {
			break
		}
		n++
		if c.IValid {
			ia.StepWord(c.IAddr)
		} else {
			ia.StepIdle()
		}
		if c.DValid {
			da.StepWord(c.DAddr)
		} else {
			da.StepIdle()
		}
	}
	if err := ia.Finish(); err != nil {
		return PairResult{}, err
	}
	if err := da.Finish(); err != nil {
		return PairResult{}, err
	}
	return PairResult{IA: ia, DA: da, Cycles: n}, nil
}

// RunSingleContext drives one simulator from the source's instruction
// stream (kind "ia") or data stream ("da") for up to maxCycles cycles,
// polling ctx once per sampling interval. On cancellation it returns the
// cycles consumed and ctx's error without finishing the simulator.
func RunSingleContext(ctx context.Context, src trace.Source, sim *Simulator, kind string, maxCycles uint64) (uint64, error) {
	if sim == nil {
		return 0, fmt.Errorf("core: nil simulator")
	}
	if kind != "ia" && kind != "da" {
		return 0, fmt.Errorf("core: unknown bus kind %q", kind)
	}
	var n uint64
	for n < maxCycles {
		if n%sim.interval == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		c, ok := src.Next()
		if !ok {
			break
		}
		n++
		valid, addr := c.IValid, c.IAddr
		if kind == "da" {
			valid, addr = c.DValid, c.DAddr
		}
		if valid {
			sim.StepWord(addr)
		} else {
			sim.StepIdle()
		}
	}
	if err := sim.Finish(); err != nil {
		return n, err
	}
	return n, nil
}

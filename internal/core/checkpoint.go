package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
)

// Checkpoint format (version 1). A snapshot is a self-describing binary
// blob, deterministic down to the byte for a given simulator state:
//
//	magic "NBCP" | version u16 | flags u16
//	config fingerprint: node name, encoder name, width, interval cycles,
//	    length bits, coupling depth, repeater flag
//	state: cycle count, interval phase, cumulative energy totals,
//	    per-line totals, accumulator window (held word, first flag,
//	    counters, window energies), encoder state, thermal ambient and
//	    per-wire temperatures, retained samples
//	crc32 (IEEE) over everything above
//
// All integers and float bit patterns are little-endian. The transition
// memo is never serialized: its contents are a pure function of the model,
// so a restored simulator re-warms bit-identically (the "dropped and
// rewarmed" policy). Restore validates magic, version, checksum and the
// config fingerprint before mutating anything, so a failed Restore leaves
// the simulator exactly as it was.

// ErrCheckpointCorrupt marks a checkpoint Restore rejected before touching
// any state: short blob, bad magic, unsupported version, or checksum
// mismatch. Test with errors.Is.
var ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")

// ErrCheckpointMismatch marks a structurally valid checkpoint taken from a
// simulator whose configuration differs from the restore target (node,
// encoder, width, length, interval, coupling depth or repeater setting).
// Test with errors.Is.
var ErrCheckpointMismatch = errors.New("core: checkpoint configuration mismatch")

const (
	checkpointMagic   = "NBCP"
	checkpointVersion = 1
)

// Snapshot serializes the simulator's full in-flight state into a
// versioned, checksummed, deterministic binary checkpoint. Snapshotting a
// poisoned simulator fails (its state is not trustworthy); everything else
// — including a partially filled sampling interval — round-trips exactly:
// a simulator restored from the snapshot emits bit-identical samples,
// totals and temperatures from that point on.
func (s *Simulator) Snapshot() ([]byte, error) {
	if s.err != nil {
		return nil, fmt.Errorf("snapshot: %w", s.err)
	}
	if s.ad != nil {
		return s.snapshotAdaptive()
	}
	w := ckptWriter{}
	w.raw([]byte(checkpointMagic))
	w.u16(checkpointVersion)
	w.u16(0) // flags, reserved

	// Config fingerprint.
	w.str(s.cfg.Node.Name)
	w.str(s.enc.Name())
	w.u32(uint32(s.enc.Width()))
	w.u64(s.interval)
	w.f64(s.length)
	w.i64(int64(normalizedDepth(s.cfg.CouplingDepth)))
	w.bool(s.cfg.NoRepeaters)

	// Simulator counters and cumulative totals.
	w.u64(s.cycles)
	w.u64(s.cycleInInterval)
	w.lineEnergy(s.totalEnergy)
	for _, le := range s.lineTotals {
		w.lineEnergy(le)
	}

	// Accumulator window.
	ast := s.acc.State()
	w.u64(ast.Prev)
	w.bool(ast.First)
	w.u64(ast.Cycles)
	w.u64(ast.IdleCycles)
	w.lineEnergy(ast.Total)
	for _, le := range ast.Lines {
		w.lineEnergy(le)
	}

	// Encoder state (zeros for stateless schemes).
	var est encoding.State
	if se, ok := s.enc.(encoding.Stateful); ok {
		est = se.State()
	}
	w.u64(est.Prev)
	w.u32(est.Last)
	w.bool(est.First)

	// Thermal state.
	w.f64(s.net.Ambient())
	for _, t := range s.net.Temps(nil) {
		w.f64(t)
	}

	// Retained samples.
	w.u32(uint32(len(s.samples)))
	for _, sm := range s.samples {
		w.u64(sm.EndCycle)
		w.f64(sm.Energy)
		w.f64(sm.Self)
		w.f64(sm.CoupAdj)
		w.f64(sm.CoupNonAdj)
		w.f64(sm.AvgTemp)
		w.f64(sm.MaxTemp)
		w.i64(int64(sm.MaxWire))
		w.u32(uint32(len(sm.WireTemps)))
		for _, t := range sm.WireTemps {
			w.f64(t)
		}
	}

	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// normalizedDepth folds every "keep all pairs" spelling of CouplingDepth
// into -1, so fingerprints compare by effect rather than literal value.
func normalizedDepth(depth int) int {
	if depth < 0 {
		return -1
	}
	return depth
}

// Restore overwrites the simulator's state from a Snapshot blob. The
// target must have been built with an equivalent configuration: same node,
// encoder, width, length, interval, coupling depth and repeater setting —
// anything else is rejected with ErrCheckpointMismatch. Structural damage
// (truncation, bit rot, wrong magic or version) is rejected with
// ErrCheckpointCorrupt. Both rejections leave the simulator untouched.
//
// Restore clears any sticky error, so it also resurrects a poisoned
// simulator back to its last known-good checkpoint. The transition memo is
// kept as-is (warm or cold makes no numerical difference), and the
// OnSample callback is unchanged.
func (s *Simulator) Restore(data []byte) error {
	r := &ckptReader{buf: data}
	const trailerLen = 4
	if len(data) < len(checkpointMagic)+2+2+trailerLen {
		return fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrCheckpointCorrupt, len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, data[:len(checkpointMagic)])
	}
	body, tail := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCheckpointCorrupt, want, got)
	}
	r.buf = body
	r.off = len(checkpointMagic)
	switch v := r.u16(); {
	case v == checkpointVersion && s.ad != nil:
		return fmt.Errorf("%w: v1 (static-encoder) checkpoint, but the target runs the adaptive controller", ErrCheckpointMismatch)
	case v == checkpointVersionAdaptive && s.ad == nil:
		return fmt.Errorf("%w: v3 (adaptive) checkpoint, but the target has a static encoder", ErrCheckpointMismatch)
	case v == checkpointVersionAdaptive:
		r.u16() // flags, reserved
		return s.restoreAdaptive(r)
	case v != checkpointVersion:
		return fmt.Errorf("%w: unsupported version %d (want %d or %d)", ErrCheckpointCorrupt, v, checkpointVersion, checkpointVersionAdaptive)
	}
	r.u16() // flags, reserved

	// Config fingerprint: every field must match the target simulator.
	nodeName := r.str()
	encName := r.str()
	width := int(r.u32())
	interval := r.u64()
	length := r.f64()
	depth := int(r.i64())
	noRep := r.bool()
	if r.err != nil {
		return r.wrapErr()
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("%w: %s is %v in the checkpoint, %v in the target", ErrCheckpointMismatch, field, got, want)
	}
	switch {
	case nodeName != s.cfg.Node.Name:
		return mismatch("node", nodeName, s.cfg.Node.Name)
	case encName != s.enc.Name():
		return mismatch("encoding", encName, s.enc.Name())
	case width != s.enc.Width():
		return mismatch("width", width, s.enc.Width())
	case interval != s.interval:
		return mismatch("interval_cycles", interval, s.interval)
	case math.Float64bits(length) != math.Float64bits(s.length):
		return mismatch("length_m", length, s.length)
	case depth != normalizedDepth(s.cfg.CouplingDepth):
		return mismatch("coupling_depth", depth, normalizedDepth(s.cfg.CouplingDepth))
	case noRep != s.cfg.NoRepeaters:
		return mismatch("no_repeaters", noRep, s.cfg.NoRepeaters)
	}

	// Decode the full state into temporaries before mutating the
	// simulator, so a truncated blob cannot leave it half-restored.
	cycles := r.u64()
	cycleInInterval := r.u64()
	totalEnergy := r.lineEnergy()
	lineTotals := make([]energy.LineEnergy, width)
	for i := range lineTotals {
		lineTotals[i] = r.lineEnergy()
	}
	ast := energy.AccumulatorState{Lines: make([]energy.LineEnergy, width)}
	ast.Prev = r.u64()
	ast.First = r.bool()
	ast.Cycles = r.u64()
	ast.IdleCycles = r.u64()
	ast.Total = r.lineEnergy()
	for i := range ast.Lines {
		ast.Lines[i] = r.lineEnergy()
	}
	var est encoding.State
	est.Prev = r.u64()
	est.Last = r.u32()
	est.First = r.bool()
	ambient := r.f64()
	temps := make([]float64, width)
	for i := range temps {
		temps[i] = r.f64()
	}
	nSamples := int(r.u32())
	if r.err == nil && nSamples > r.remaining()/sampleMinBytes {
		r.err = fmt.Errorf("sample count %d exceeds the remaining payload", nSamples)
	}
	var samples []Sample
	if r.err == nil && nSamples > 0 {
		samples = make([]Sample, nSamples)
		for i := range samples {
			sm := &samples[i]
			sm.EndCycle = r.u64()
			sm.Energy = r.f64()
			sm.Self = r.f64()
			sm.CoupAdj = r.f64()
			sm.CoupNonAdj = r.f64()
			sm.AvgTemp = r.f64()
			sm.MaxTemp = r.f64()
			sm.MaxWire = int(r.i64())
			if nwt := int(r.u32()); r.err == nil && nwt > 0 {
				if nwt > r.remaining()/8 {
					r.err = fmt.Errorf("wire-temp count %d exceeds the remaining payload", nwt)
					break
				}
				sm.WireTemps = make([]float64, nwt)
				for j := range sm.WireTemps {
					sm.WireTemps[j] = r.f64()
				}
			}
		}
	}
	if r.err != nil {
		return r.wrapErr()
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes after the payload", ErrCheckpointCorrupt, len(r.buf)-r.off)
	}

	// Everything validated; apply.
	if err := s.acc.SetState(ast); err != nil {
		return err
	}
	if se, ok := s.enc.(encoding.Stateful); ok {
		se.SetState(est)
	}
	if err := s.net.SetAmbient(ambient); err != nil {
		return err
	}
	if err := s.net.SetTemps(temps); err != nil {
		return err
	}
	s.cycles = cycles
	s.cycleInInterval = cycleInInterval
	s.totalEnergy = totalEnergy
	copy(s.lineTotals, lineTotals)
	s.samples = samples
	s.err = nil
	return nil
}

// sampleMinBytes is the encoded size of a sample with no wire temps, used
// to sanity-bound decoded counts before allocating.
const sampleMinBytes = 8 + 6*8 + 8 + 4

// --- Binary plumbing --------------------------------------------------------

// ckptWriter appends fixed-width little-endian fields to a growing buffer.
type ckptWriter struct{ buf []byte }

func (w *ckptWriter) raw(b []byte) { w.buf = append(w.buf, b...) }
func (w *ckptWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *ckptWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *ckptWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *ckptWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *ckptWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *ckptWriter) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
func (w *ckptWriter) str(s string) {
	w.u16(uint16(len(s)))
	w.raw([]byte(s))
}
func (w *ckptWriter) lineEnergy(le energy.LineEnergy) {
	w.f64(le.Self)
	w.f64(le.CoupAdj)
	w.f64(le.CoupNonAdj)
}

// ckptReader consumes fixed-width little-endian fields with a sticky
// error, so decode sequences read linearly and check once.
type ckptReader struct {
	buf []byte
	off int
	err error
}

func (r *ckptReader) remaining() int { return len(r.buf) - r.off }

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.remaining() < n {
		r.err = fmt.Errorf("truncated at offset %d (want %d more bytes, have %d)", r.off, n, r.remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *ckptReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *ckptReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *ckptReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *ckptReader) i64() int64   { return int64(r.u64()) }
func (r *ckptReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *ckptReader) bool() bool {
	if b := r.take(1); b != nil {
		return b[0] != 0
	}
	return false
}

func (r *ckptReader) str() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

func (r *ckptReader) wrapErr() error {
	return fmt.Errorf("%w: %w", ErrCheckpointCorrupt, r.err)
}

func (r *ckptReader) lineEnergy() energy.LineEnergy {
	return energy.LineEnergy{Self: r.f64(), CoupAdj: r.f64(), CoupNonAdj: r.f64()}
}

// Compiled trace tapes. The sweep drivers replay one captured trace
// window through many simulator configurations; pulling the window
// cycle-by-cycle through trace.Source costs an interface dispatch and a
// branch pair per cycle per replay. A Tape compiles the window once into
// its run-length form — alternating batches of driven words and idle runs
// for one bus — so every replay is a handful of StepBatch/StepIdleBatch
// calls over shared read-only slices: zero allocations, no per-cycle
// dispatch, and bit-identical results (the same words and idles reach the
// accumulator in the same order as the per-cycle loop).
package core

import (
	"context"
	"fmt"

	"nanobus/internal/trace"
)

// tapeRun is one alternation of a tape: words driven words followed by
// idle held cycles.
type tapeRun struct {
	words uint32
	idle  uint64
}

// Tape is a run-length compiled single-bus trace: the exact word/idle
// cycle sequence one bus sees over a captured window. Tapes are immutable
// after compilation and safe to replay concurrently from many goroutines.
type Tape struct {
	words  []uint32
	runs   []tapeRun
	cycles uint64
}

// CompileTape consumes up to maxCycles cycles from src and compiles the
// stream of the given bus kind ("ia" or "da") into a tape. It returns the
// tape and the number of cycles consumed (less than maxCycles only if the
// source ended first).
func CompileTape(src trace.Source, kind string, maxCycles uint64) (*Tape, error) {
	if kind != "ia" && kind != "da" {
		return nil, fmt.Errorf("core: unknown bus kind %q", kind)
	}
	t := &Tape{}
	var run tapeRun
	flush := func() {
		if run.words > 0 || run.idle > 0 {
			t.runs = append(t.runs, run)
			run = tapeRun{}
		}
	}
	//nanolint:ignore ctxpoll one-shot bounded compile step, not a run loop; PlayTape carries the cancellable replay
	for t.cycles < maxCycles {
		c, ok := src.Next()
		if !ok {
			break
		}
		t.cycles++
		valid, addr := c.IValid, c.IAddr
		if kind == "da" {
			valid, addr = c.DValid, c.DAddr
		}
		if valid {
			// A word after an idle run starts a new alternation.
			if run.idle > 0 {
				flush()
			}
			t.words = append(t.words, addr)
			run.words++
		} else {
			run.idle++
		}
	}
	flush()
	return t, nil
}

// Cycles returns the tape's length in bus cycles.
func (t *Tape) Cycles() uint64 { return t.cycles }

// Words returns how many cycles drive a word (the rest are idle).
func (t *Tape) Words() uint64 { return uint64(len(t.words)) }

// PlayTape replays the tape through the simulator — exactly equivalent to
// driving StepWord/StepIdle per cycle, with the batch pipeline's cost
// profile (ctx is polled once per closed sampling interval). It does not
// call Finish; like the run loops' cancellation contract, a ctx or
// poisoning error returns immediately with the partial state inspectable.
func (s *Simulator) PlayTape(ctx context.Context, t *Tape) error {
	w := 0
	for _, run := range t.runs {
		if run.words > 0 {
			n := int(run.words)
			if _, err := s.StepBatch(ctx, t.words[w:w+n]); err != nil {
				return err
			}
			w += n
		}
		if run.idle > 0 {
			if _, err := s.StepIdleBatch(ctx, run.idle); err != nil {
				return err
			}
		}
	}
	return nil
}

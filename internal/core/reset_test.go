package core

import (
	"math/rand"
	"testing"

	"nanobus/internal/encoding"
)

// driveRandom pushes a deterministic pseudo-random word/idle mix through the
// simulator and returns its observable end state.
func driveRandom(t *testing.T, s *Simulator, seed int64, n int) (samples []Sample, total, maxT float64, cycles uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			s.StepIdle()
		} else {
			s.StepWord(rng.Uint32())
		}
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	mt, _ := s.Network().MaxTemp()
	return s.Samples(), s.TotalEnergy().Total(), mt, s.Cycles()
}

// TestResetReplaysBitIdentically is the sweep-reuse contract: a fresh
// simulator and a reset one must produce bit-identical samples, totals,
// temperatures and cycle counts on the same input.
func TestResetReplaysBitIdentically(t *testing.T) {
	cfg := Config{CouplingDepth: -1, IntervalCycles: 250, Encoder: encoding.NewBI()}
	reused := newSim(t, cfg)
	s1, e1, t1, c1 := driveRandom(t, reused, 11, 2000)
	// Copy the sample slice: Reset nils the simulator's view.
	first := append([]Sample(nil), s1...)

	reused.Reset()
	if reused.Cycles() != 0 || reused.TotalEnergy().Total() != 0 || reused.Samples() != nil || reused.Err() != nil {
		t.Fatal("Reset left residue in counters/samples")
	}
	if mt, _ := reused.Network().MaxTemp(); mt != reused.Network().Ambient() {
		t.Fatalf("Reset left wires at %g K, ambient %g K", mt, reused.Network().Ambient())
	}

	s2, e2, t2, c2 := driveRandom(t, reused, 11, 2000)
	fresh := newSim(t, cfg)
	s3, e3, t3, c3 := driveRandom(t, fresh, 11, 2000)

	if e1 != e2 || e1 != e3 || t1 != t2 || t1 != t3 || c1 != c2 || c1 != c3 {
		t.Fatalf("runs diverge: energy %v/%v/%v, maxT %v/%v/%v, cycles %v/%v/%v",
			e1, e2, e3, t1, t2, t3, c1, c2, c3)
	}
	if len(first) != len(s2) || len(first) != len(s3) {
		t.Fatalf("sample counts diverge: %d/%d/%d", len(first), len(s2), len(s3))
	}
	sameSample := func(a, b Sample) bool {
		// WireTemps is nil here (TrackWireTemps off); compare scalar fields.
		return a.EndCycle == b.EndCycle && a.Energy == b.Energy &&
			a.Self == b.Self && a.CoupAdj == b.CoupAdj && a.CoupNonAdj == b.CoupNonAdj &&
			a.AvgTemp == b.AvgTemp && a.MaxTemp == b.MaxTemp && a.MaxWire == b.MaxWire
	}
	for i := range first {
		if !sameSample(first[i], s2[i]) || !sameSample(first[i], s3[i]) {
			t.Fatalf("sample %d diverges: %+v vs %+v vs %+v", i, first[i], s2[i], s3[i])
		}
	}
	// The reused simulator's memo stayed warm across Reset.
	if st := reused.MemoStats(); st.Hits == 0 {
		t.Error("reused simulator recorded no memo hits")
	}
}

// TestMemoConfig checks the tri-state MemoSizeLog2 contract and that
// memoized and unmemoized simulators agree bit-for-bit.
func TestMemoConfig(t *testing.T) {
	on := newSim(t, Config{IntervalCycles: 100})
	off := newSim(t, Config{IntervalCycles: 100, MemoSizeLog2: -1})
	_, eOn, tOn, _ := driveRandom(t, on, 5, 1500)
	_, eOff, tOff, _ := driveRandom(t, off, 5, 1500)
	if eOn != eOff || tOn != tOff {
		t.Fatalf("memoized run diverges from direct: %v/%v J, %v/%v K", eOn, eOff, tOn, tOff)
	}
	st := on.MemoStats()
	if st.Hits+st.Misses == 0 {
		t.Error("default config did not enable the memo")
	}
	if off.MemoStats().Capacity != 0 {
		t.Error("MemoSizeLog2 < 0 still built a memo")
	}
	if _, err := New(Config{Node: on.cfg.Node, MemoSizeLog2: 99}); err == nil {
		t.Error("absurd memo size accepted")
	}
}

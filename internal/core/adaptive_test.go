package core

import (
	"context"
	"math"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
)

// hotWords returns a stream that toggles every wire each cycle — the
// worst-case heating pattern, so tests cross temperature thresholds in a
// handful of short intervals.
func hotWords(n int) []uint32 {
	words := make([]uint32, n)
	for i := range words {
		if i%2 == 0 {
			words[i] = 0xAAAAAAAA
		} else {
			words[i] = 0x55555555
		}
	}
	return words
}

// probeTrajectory runs a static base-encoder sim over words and returns
// its samples; adaptive tests derive bit-exact trigger temperatures from
// it (the adaptive run follows the base run identically until the first
// switch).
func probeTrajectory(t *testing.T, words []uint32, interval uint64, th thermal.NodeOptions) []Sample {
	t.Helper()
	enc, err := encoding.New("BI")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{Node: itrs.N45, Encoder: enc, IntervalCycles: interval, Thermal: th})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.StepBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	return sim.Samples()
}

func newAdaptiveSim(t *testing.T, interval uint64, cfg AdaptiveConfig) *Simulator {
	return newAdaptiveSimThermal(t, interval, cfg, thermal.NodeOptions{})
}

func newAdaptiveSimThermal(t *testing.T, interval uint64, cfg AdaptiveConfig, th thermal.NodeOptions) *Simulator {
	t.Helper()
	sim, err := New(Config{Node: itrs.N45, IntervalCycles: interval, Adaptive: &cfg, Thermal: th})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestAdaptiveConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing base", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Cool: "CoolSpread", CeilingK: 350}}},
		{"missing cool", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "BI", CeilingK: 350}}},
		{"same scheme", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "BI", Cool: "BI", CeilingK: 350}}},
		{"zero ceiling", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "BI", Cool: "CoolSpread"}}},
		{"negative guard", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "BI", Cool: "CoolSpread", CeilingK: 350, GuardK: -1}}},
		{"unknown base", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "nope", Cool: "CoolSpread", CeilingK: 350}}},
		{"unknown cool", Config{Node: itrs.N45, Adaptive: &AdaptiveConfig{Base: "BI", Cool: "nope", CeilingK: 350}}},
		{"encoder and adaptive", Config{Node: itrs.N45, Encoder: encoding.NewBI(),
			Adaptive: &AdaptiveConfig{Base: "BI", Cool: "CoolSpread", CeilingK: 350}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: config accepted, want error", tc.name)
		}
	}
}

func TestAdaptiveWidthIsCommonMax(t *testing.T) {
	sim := newAdaptiveSim(t, 1000, AdaptiveConfig{Base: "BI", Cool: "CoolSpread", CeilingK: 1000})
	if sim.Width() != 33 {
		t.Errorf("BI+CoolSpread width = %d, want 33", sim.Width())
	}
	sim = newAdaptiveSim(t, 1000, AdaptiveConfig{Base: "BI", Cool: "CoolCap", CeilingK: 1000})
	if sim.Width() != 36 {
		t.Errorf("BI+CoolCap width = %d, want 36", sim.Width())
	}
}

// TestAdaptiveSwitchesAtTrigger pins the control law: the switch happens
// exactly at the first interval whose closing MaxTemp reaches
// CeilingK-GuardK, the sample is tagged, and occupancy splits at the
// switch boundary.
func TestAdaptiveSwitchesAtTrigger(t *testing.T) {
	const interval = 1000
	words := hotWords(8 * interval)
	probe := probeTrajectory(t, words, interval, thermal.NodeOptions{})
	// Trigger on the 3rd interval's exact closing temperature: the
	// adaptive run replays the base run bit-identically until then.
	trigger := probe[2].MaxTemp

	sim := newAdaptiveSim(t, interval, AdaptiveConfig{
		Base: "BI", Cool: "CoolSpread",
		CeilingK: trigger + 0.5, GuardK: 0.5, HysteresisK: 0.1,
	})
	if _, err := sim.StepBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if err := sim.Finish(); err != nil {
		t.Fatal(err)
	}

	events := sim.SwitchEvents()
	if len(events) != 1 {
		t.Fatalf("got %d switch events, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Cycle != probe[2].EndCycle {
		t.Errorf("switch at cycle %d, want %d", ev.Cycle, probe[2].EndCycle)
	}
	if ev.From != "BI" || ev.To != "CoolSpread" {
		t.Errorf("switch %s->%s, want BI->CoolSpread", ev.From, ev.To)
	}
	if math.Float64bits(ev.TempK) != math.Float64bits(probe[2].MaxTemp) {
		t.Errorf("switch TempK %v, want the probe's exact MaxTemp %v", ev.TempK, probe[2].MaxTemp)
	}

	samples := sim.Samples()
	for i, s := range samples {
		wantEnc := "BI"
		if i > 2 {
			wantEnc = "CoolSpread"
		}
		if s.Encoder != wantEnc {
			t.Errorf("sample %d encoder %q, want %q", i, s.Encoder, wantEnc)
		}
		if s.Switched != (i == 2) {
			t.Errorf("sample %d switched=%v", i, s.Switched)
		}
	}
	// Samples up to and including the switch interval are bit-identical
	// to the static base run: the controller must not perturb the
	// simulation before it acts.
	for i := 0; i <= 2; i++ {
		if samples[i].Energy != probe[i].Energy || samples[i].MaxTemp != probe[i].MaxTemp {
			t.Errorf("pre-switch sample %d diverged from static base run", i)
		}
	}

	occ := sim.EncoderOccupancy()
	if occ[0].Encoder != "BI" || occ[0].Cycles != 3*interval {
		t.Errorf("base occupancy %+v, want 3 intervals", occ[0])
	}
	if occ[1].Encoder != "CoolSpread" || occ[1].Cycles != 5*interval {
		t.Errorf("cool occupancy %+v, want 5 intervals", occ[1])
	}
	if sim.ActiveEncoder() != "CoolSpread" {
		t.Errorf("active encoder %q, want CoolSpread", sim.ActiveEncoder())
	}
	if !sim.Adaptive() {
		t.Error("Adaptive() = false")
	}
}

// TestAdaptiveHysteresisBand proves both sides of the band: with a tiny
// hysteresis the controller releases back to base once idle cycles cool
// the bus below the release point; with a huge hysteresis it holds the
// cool encoder forever.
func TestAdaptiveHysteresisBand(t *testing.T) {
	const interval = 1000
	// With the Eq. 7 inter-layer heating on, the whole bus warms
	// monotonically regardless of activity and a release threshold below
	// the trigger is unreachable; disable it so only bus self-heating
	// drives the trajectory and idle cycles genuinely cool the wires.
	th := thermal.NodeOptions{DisableInterLayer: true}
	words := hotWords(6 * interval)
	probe := probeTrajectory(t, words, interval, th)
	trigger := probe[2].MaxTemp

	run := func(hyst float64) *Simulator {
		sim := newAdaptiveSimThermal(t, interval, AdaptiveConfig{
			Base: "BI", Cool: "CoolSpread",
			CeilingK: trigger, HysteresisK: hyst,
		}, th)
		ctx := context.Background()
		if _, err := sim.StepBatch(ctx, words); err != nil {
			t.Fatal(err)
		}
		// Idle until the bus has cooled well below the trigger (idle
		// interval flushes still run the controller).
		if _, err := sim.StepIdleBatch(ctx, 5000*interval); err != nil {
			t.Fatal(err)
		}
		if err := sim.Finish(); err != nil {
			t.Fatal(err)
		}
		return sim
	}

	tight := run(1e-9)
	events := tight.SwitchEvents()
	if len(events) < 2 {
		t.Fatalf("tight band: %d events, want switch and release: %+v", len(events), events)
	}
	if events[1].From != "CoolSpread" || events[1].To != "BI" {
		t.Errorf("release %s->%s, want CoolSpread->BI", events[1].From, events[1].To)
	}
	if events[1].TempK > trigger-1e-9 {
		t.Errorf("released at %v, above release point %v", events[1].TempK, trigger-1e-9)
	}

	wide := run(1e6)
	if n := len(wide.SwitchEvents()); n != 1 {
		t.Errorf("wide band: %d events, want 1 (never releases)", n)
	}
}

// TestAdaptiveNeverSwitchingMatchesStaticBase pins the handover-free
// path: with an unreachable ceiling the adaptive simulator is the static
// base encoder, sample for sample, bit for bit.
func TestAdaptiveNeverSwitchingMatchesStaticBase(t *testing.T) {
	const interval = 1000
	words := hotWords(5 * interval)
	probe := probeTrajectory(t, words, interval, thermal.NodeOptions{})

	sim := newAdaptiveSim(t, interval, AdaptiveConfig{
		Base: "BI", Cool: "CoolSpread", CeilingK: 1e6,
	})
	if _, err := sim.StepBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(sim.SwitchEvents()) != 0 {
		t.Fatalf("unexpected switches: %+v", sim.SwitchEvents())
	}
	samples := sim.Samples()
	if len(samples) != len(probe) {
		t.Fatalf("%d samples vs %d", len(samples), len(probe))
	}
	for i := range samples {
		if samples[i].Energy != probe[i].Energy ||
			samples[i].MaxTemp != probe[i].MaxTemp ||
			samples[i].AvgTemp != probe[i].AvgTemp {
			t.Errorf("sample %d diverged from static BI", i)
		}
	}
}

// TestAdaptiveDeterministicReplay runs the same trace twice (fresh sim
// and Reset reuse) and requires bit-identical switch events and samples.
func TestAdaptiveDeterministicReplay(t *testing.T) {
	const interval = 1000
	words := hotWords(10 * interval)
	probe := probeTrajectory(t, words, interval, thermal.NodeOptions{})
	cfg := AdaptiveConfig{
		Base: "BI", Cool: "CoolSpread",
		CeilingK: probe[3].MaxTemp + 0.1, GuardK: 0.1, HysteresisK: 0.05,
	}

	runOn := func(sim *Simulator) ([]SwitchEvent, []Sample) {
		if _, err := sim.StepBatch(context.Background(), words); err != nil {
			t.Fatal(err)
		}
		if err := sim.Finish(); err != nil {
			t.Fatal(err)
		}
		return sim.SwitchEvents(), sim.Samples()
	}

	sim := newAdaptiveSim(t, interval, cfg)
	ev1, s1 := runOn(sim)
	if len(ev1) == 0 {
		t.Fatal("no switches in the replay scenario")
	}
	ev1 = append([]SwitchEvent(nil), ev1...)
	s1 = append([]Sample(nil), s1...)

	sim.Reset()
	ev2, s2 := runOn(sim)

	fresh := newAdaptiveSim(t, interval, cfg)
	ev3, s3 := runOn(fresh)

	for run, got := range [][]SwitchEvent{ev2, ev3} {
		if len(got) != len(ev1) {
			t.Fatalf("run %d: %d events vs %d", run, len(got), len(ev1))
		}
		for i := range got {
			if got[i].Cycle != ev1[i].Cycle || got[i].From != ev1[i].From || got[i].To != ev1[i].To ||
				math.Float64bits(got[i].TempK) != math.Float64bits(ev1[i].TempK) {
				t.Errorf("run %d event %d: %+v vs %+v", run, i, got[i], ev1[i])
			}
		}
	}
	for run, got := range [][]Sample{s2, s3} {
		for i := range got {
			if math.Float64bits(got[i].Energy) != math.Float64bits(s1[i].Energy) ||
				math.Float64bits(got[i].MaxTemp) != math.Float64bits(s1[i].MaxTemp) ||
				got[i].Encoder != s1[i].Encoder || got[i].Switched != s1[i].Switched {
				t.Errorf("run %d sample %d diverged", run, i)
			}
		}
	}
}

// TestAdaptiveStepWordMatchesStepBatch pins the per-word and batch
// pipelines to identical adaptive behaviour, switches included.
func TestAdaptiveStepWordMatchesStepBatch(t *testing.T) {
	const interval = 1000
	words := hotWords(8 * interval)
	probe := probeTrajectory(t, words, interval, thermal.NodeOptions{})
	cfg := AdaptiveConfig{Base: "BI", Cool: "CoolSpread", CeilingK: probe[2].MaxTemp}

	batch := newAdaptiveSim(t, interval, cfg)
	if _, err := batch.StepBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if err := batch.Finish(); err != nil {
		t.Fatal(err)
	}

	scalar := newAdaptiveSim(t, interval, cfg)
	for _, w := range words {
		scalar.StepWord(w)
	}
	if err := scalar.Finish(); err != nil {
		t.Fatal(err)
	}

	be, se := batch.SwitchEvents(), scalar.SwitchEvents()
	if len(be) != len(se) || len(be) == 0 {
		t.Fatalf("events: batch %d vs scalar %d (want equal, nonzero)", len(be), len(se))
	}
	for i := range be {
		if be[i] != se[i] {
			t.Errorf("event %d: batch %+v vs scalar %+v", i, be[i], se[i])
		}
	}
	bs, ss := batch.Samples(), scalar.Samples()
	for i := range bs {
		if math.Float64bits(bs[i].Energy) != math.Float64bits(ss[i].Energy) ||
			math.Float64bits(bs[i].MaxTemp) != math.Float64bits(ss[i].MaxTemp) {
			t.Errorf("sample %d: batch/scalar diverged", i)
		}
	}
}

// TestNonAdaptiveSampleFieldsEmpty guards the v1 JSON surface: static
// sims must leave the adaptive tags at their zero values so omitempty
// keeps the wire format unchanged.
func TestNonAdaptiveSampleFieldsEmpty(t *testing.T) {
	const interval = 1000
	for _, s := range probeTrajectory(t, hotWords(3*interval), interval, thermal.NodeOptions{}) {
		if s.Encoder != "" || s.Switched {
			t.Fatalf("static sample carries adaptive tags: %+v", s)
		}
	}
}

package core

import (
	"fmt"
	"hash/crc32"
	"math"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
)

// Checkpoint format version 3: adaptive scalar simulators. The layout
// extends v1 so a restored controller replays the rest of the trace
// bit-identically, switch points included:
//
//	magic "NBCP" | version=3 u16 | flags u16
//	config fingerprint: node name, base scheme, cool scheme, ceiling,
//	    guard and hysteresis bit patterns, width, interval cycles,
//	    length bits, coupling depth, repeater flag
//	state: cycle count, interval phase, cumulative energy totals,
//	    per-line totals, accumulator window (as v1)
//	adaptive state: active mode, per-mode occupancy, BOTH encoders'
//	    states (the inactive one holds private history — e.g.
//	    CoolSpread's rotation counter — that the next switch resumes),
//	    recorded switch events
//	thermal ambient + per-wire temperatures (as v1)
//	retained samples: the v1 sample layout plus a mode byte and a
//	    switched byte per sample
//	crc32 (IEEE) over everything above
//
// v1 blobs and static simulators are unchanged byte for byte; a v1 blob
// restored into an adaptive simulator (or vice versa) is rejected with
// ErrCheckpointMismatch before any state is touched.

// checkpointVersionAdaptive is the NBCP version for adaptive scalar
// checkpoints (v2 is the multi-bus format).
const checkpointVersionAdaptive = 3

// sampleMinBytesAdaptive is the v3 per-sample floor: the v1 layout plus
// the mode and switched bytes.
const sampleMinBytesAdaptive = sampleMinBytes + 2

func encoderState(e encoding.Encoder) encoding.State {
	if se, ok := e.(encoding.Stateful); ok {
		return se.State()
	}
	return encoding.State{}
}

// snapshotAdaptive is Snapshot for simulators running the adaptive
// controller.
func (s *Simulator) snapshotAdaptive() ([]byte, error) {
	a := s.ad
	w := ckptWriter{}
	w.raw([]byte(checkpointMagic))
	w.u16(checkpointVersionAdaptive)
	w.u16(0) // flags, reserved

	// Config fingerprint: the adaptive identity replaces the single
	// encoder name, and the control-law thresholds are pinned bit-exact —
	// a restore into a differently tuned controller would diverge at the
	// next decision, so it is a mismatch, not a resume.
	w.str(s.cfg.Node.Name)
	w.str(a.names[modeBase])
	w.str(a.names[modeCool])
	w.f64(a.cfg.CeilingK)
	w.f64(a.cfg.GuardK)
	w.f64(a.cfg.HysteresisK)
	w.u32(uint32(s.enc.Width()))
	w.u64(s.interval)
	w.f64(s.length)
	w.i64(int64(normalizedDepth(s.cfg.CouplingDepth)))
	w.bool(s.cfg.NoRepeaters)

	// Simulator counters and cumulative totals (v1 layout).
	w.u64(s.cycles)
	w.u64(s.cycleInInterval)
	w.lineEnergy(s.totalEnergy)
	for _, le := range s.lineTotals {
		w.lineEnergy(le)
	}

	// Accumulator window (v1 layout).
	ast := s.acc.State()
	w.u64(ast.Prev)
	w.bool(ast.First)
	w.u64(ast.Cycles)
	w.u64(ast.IdleCycles)
	w.lineEnergy(ast.Total)
	for _, le := range ast.Lines {
		w.lineEnergy(le)
	}

	// Controller state: mode, occupancy, both encoder states, events.
	w.u16(uint16(a.mode))
	w.bool(a.justSwitch)
	w.u64(a.occupancy[modeBase])
	w.u64(a.occupancy[modeCool])
	for _, enc := range a.encs {
		est := encoderState(enc)
		w.u64(est.Prev)
		w.u32(est.Last)
		w.bool(est.First)
	}
	w.u32(uint32(len(a.events)))
	for _, ev := range a.events {
		w.u64(ev.Cycle)
		if ev.To == a.names[modeCool] {
			w.u16(modeCool)
		} else {
			w.u16(modeBase)
		}
		w.f64(ev.TempK)
	}

	// Thermal state (v1 layout).
	w.f64(s.net.Ambient())
	for _, t := range s.net.Temps(nil) {
		w.f64(t)
	}

	// Retained samples: v1 layout + adaptive tags.
	w.u32(uint32(len(s.samples)))
	for _, sm := range s.samples {
		w.u64(sm.EndCycle)
		w.f64(sm.Energy)
		w.f64(sm.Self)
		w.f64(sm.CoupAdj)
		w.f64(sm.CoupNonAdj)
		w.f64(sm.AvgTemp)
		w.f64(sm.MaxTemp)
		w.i64(int64(sm.MaxWire))
		w.u32(uint32(len(sm.WireTemps)))
		for _, t := range sm.WireTemps {
			w.f64(t)
		}
		if sm.Encoder == a.names[modeCool] {
			w.bool(true)
		} else {
			w.bool(false)
		}
		w.bool(sm.Switched)
	}

	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf, nil
}

// restoreAdaptive decodes a v3 payload (r is positioned just past the
// version and flags words) and applies it all-or-nothing.
func (s *Simulator) restoreAdaptive(r *ckptReader) error {
	a := s.ad

	// Config fingerprint.
	nodeName := r.str()
	baseName := r.str()
	coolName := r.str()
	ceiling := r.f64()
	guard := r.f64()
	hyst := r.f64()
	width := int(r.u32())
	interval := r.u64()
	length := r.f64()
	depth := int(r.i64())
	noRep := r.bool()
	if r.err != nil {
		return r.wrapErr()
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("%w: %s is %v in the checkpoint, %v in the target", ErrCheckpointMismatch, field, got, want)
	}
	switch {
	case nodeName != s.cfg.Node.Name:
		return mismatch("node", nodeName, s.cfg.Node.Name)
	case baseName != a.names[modeBase]:
		return mismatch("adaptive_base", baseName, a.names[modeBase])
	case coolName != a.names[modeCool]:
		return mismatch("adaptive_cool", coolName, a.names[modeCool])
	case math.Float64bits(ceiling) != math.Float64bits(a.cfg.CeilingK):
		return mismatch("ceiling_k", ceiling, a.cfg.CeilingK)
	case math.Float64bits(guard) != math.Float64bits(a.cfg.GuardK):
		return mismatch("guard_k", guard, a.cfg.GuardK)
	case math.Float64bits(hyst) != math.Float64bits(a.cfg.HysteresisK):
		return mismatch("hysteresis_k", hyst, a.cfg.HysteresisK)
	case width != s.enc.Width():
		return mismatch("width", width, s.enc.Width())
	case interval != s.interval:
		return mismatch("interval_cycles", interval, s.interval)
	case math.Float64bits(length) != math.Float64bits(s.length):
		return mismatch("length_m", length, s.length)
	case depth != normalizedDepth(s.cfg.CouplingDepth):
		return mismatch("coupling_depth", depth, normalizedDepth(s.cfg.CouplingDepth))
	case noRep != s.cfg.NoRepeaters:
		return mismatch("no_repeaters", noRep, s.cfg.NoRepeaters)
	}

	// Decode everything into temporaries before mutating the simulator.
	cycles := r.u64()
	cycleInInterval := r.u64()
	totalEnergy := r.lineEnergy()
	lineTotals := make([]energy.LineEnergy, width)
	for i := range lineTotals {
		lineTotals[i] = r.lineEnergy()
	}
	ast := energy.AccumulatorState{Lines: make([]energy.LineEnergy, width)}
	ast.Prev = r.u64()
	ast.First = r.bool()
	ast.Cycles = r.u64()
	ast.IdleCycles = r.u64()
	ast.Total = r.lineEnergy()
	for i := range ast.Lines {
		ast.Lines[i] = r.lineEnergy()
	}

	mode := int(r.u16())
	if r.err == nil && mode != modeBase && mode != modeCool {
		r.err = fmt.Errorf("adaptive mode %d out of range", mode)
	}
	justSwitch := r.bool()
	var occupancy [2]uint64
	occupancy[modeBase] = r.u64()
	occupancy[modeCool] = r.u64()
	var encStates [2]encoding.State
	for i := range encStates {
		encStates[i].Prev = r.u64()
		encStates[i].Last = r.u32()
		encStates[i].First = r.bool()
	}
	nEvents := int(r.u32())
	const eventBytes = 8 + 2 + 8
	if r.err == nil && nEvents > r.remaining()/eventBytes {
		r.err = fmt.Errorf("event count %d exceeds the remaining payload", nEvents)
	}
	var events []SwitchEvent
	if r.err == nil && nEvents > 0 {
		events = make([]SwitchEvent, nEvents)
		for i := range events {
			events[i].Cycle = r.u64()
			to := int(r.u16())
			if r.err == nil && to != modeBase && to != modeCool {
				r.err = fmt.Errorf("event %d target mode %d out of range", i, to)
				break
			}
			events[i].To = a.names[to]
			events[i].From = a.names[1-to]
			events[i].TempK = r.f64()
		}
	}

	ambient := r.f64()
	temps := make([]float64, width)
	for i := range temps {
		temps[i] = r.f64()
	}
	nSamples := int(r.u32())
	if r.err == nil && nSamples > r.remaining()/sampleMinBytesAdaptive {
		r.err = fmt.Errorf("sample count %d exceeds the remaining payload", nSamples)
	}
	var samples []Sample
	if r.err == nil && nSamples > 0 {
		samples = make([]Sample, nSamples)
		for i := range samples {
			sm := &samples[i]
			sm.EndCycle = r.u64()
			sm.Energy = r.f64()
			sm.Self = r.f64()
			sm.CoupAdj = r.f64()
			sm.CoupNonAdj = r.f64()
			sm.AvgTemp = r.f64()
			sm.MaxTemp = r.f64()
			sm.MaxWire = int(r.i64())
			if nwt := int(r.u32()); r.err == nil && nwt > 0 {
				if nwt > r.remaining()/8 {
					r.err = fmt.Errorf("wire-temp count %d exceeds the remaining payload", nwt)
					break
				}
				sm.WireTemps = make([]float64, nwt)
				for j := range sm.WireTemps {
					sm.WireTemps[j] = r.f64()
				}
			}
			if r.bool() {
				sm.Encoder = a.names[modeCool]
			} else {
				sm.Encoder = a.names[modeBase]
			}
			sm.Switched = r.bool()
		}
	}
	if r.err != nil {
		return r.wrapErr()
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes after the payload", ErrCheckpointCorrupt, len(r.buf)-r.off)
	}

	// Everything validated; apply.
	if err := s.acc.SetState(ast); err != nil {
		return err
	}
	for i, enc := range a.encs {
		if se, ok := enc.(encoding.Stateful); ok {
			se.SetState(encStates[i])
		}
	}
	if err := s.net.SetAmbient(ambient); err != nil {
		return err
	}
	if err := s.net.SetTemps(temps); err != nil {
		return err
	}
	a.mode = mode
	a.justSwitch = justSwitch
	a.occupancy = occupancy
	a.events = events
	s.enc = a.encs[mode]
	s.cycles = cycles
	s.cycleInInterval = cycleInInterval
	s.totalEnergy = totalEnergy
	copy(s.lineTotals, lineTotals)
	s.samples = samples
	s.err = nil
	return nil
}

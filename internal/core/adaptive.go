package core

import (
	"fmt"

	"nanobus/internal/encoding"
)

// AdaptiveConfig configures the closed-loop thermal encoding controller:
// the simulator runs the Base encoder until the hottest wire approaches
// CeilingK, switches to the Cool encoder until the bus has cooled back
// through the hysteresis band, and records every switch. Decisions are
// taken once per sampling interval from the interval's closing MaxTemp,
// so switch points are a deterministic function of the trace and the
// configuration (no wall-clock, no randomness) and survive checkpoint
// resume bit-identically.
type AdaptiveConfig struct {
	// Base is the encoder run while the bus is cool (e.g. "BI" — the
	// paper's best energy code). Required.
	Base string
	// Cool is the thermally-protective encoder engaged near the ceiling
	// (e.g. "CoolSpread"). Required, distinct from Base.
	Cool string
	// CeilingK is the wire-temperature ceiling in kelvin the controller
	// defends. Required.
	CeilingK float64
	// GuardK is how far below the ceiling the controller reacts: the bus
	// switches Base -> Cool when MaxTemp >= CeilingK-GuardK. The guard
	// absorbs the one-interval decision lag (temperature can still rise
	// during the interval that triggers the switch). Zero means react at
	// the ceiling itself.
	GuardK float64
	// HysteresisK is the width of the cool-down band: the bus switches
	// Cool -> Base only when MaxTemp <= CeilingK-GuardK-HysteresisK.
	// Zero collapses the band and the controller may thrash at the
	// trigger point.
	HysteresisK float64
}

const (
	modeBase = iota
	modeCool
)

// SwitchEvent records one deterministic encoder switch: the interval
// boundary it happened at and the encoders on each side.
type SwitchEvent struct {
	// Cycle is the simulated cycle count at the interval boundary where
	// the controller switched (the sample ending at Cycle is the last
	// one produced under From).
	Cycle uint64 `json:"cycle"`
	// From and To are the outgoing and incoming scheme names.
	From string `json:"from"`
	To   string `json:"to"`
	// TempK is the MaxTemp reading that triggered the switch.
	TempK float64 `json:"temp_k"`
}

// EncoderCycles reports how many simulated cycles an encoder was active.
type EncoderCycles struct {
	Encoder string `json:"encoder"`
	Cycles  uint64 `json:"cycles"`
}

// adaptiveState is the controller's runtime: both encoders (padded to a
// common physical width so the capacitance and thermal models are built
// once), the active mode, and the audit trail.
type adaptiveState struct {
	cfg        AdaptiveConfig
	encs       [2]encoding.Encoder // indexed by modeBase/modeCool
	names      [2]string
	mode       int
	justSwitch bool // a switch closed the most recent interval
	occupancy  [2]uint64
	events     []SwitchEvent
}

// newAdaptive validates cfg and builds the controller with both encoders
// padded to their common (maximum) width.
func newAdaptive(cfg AdaptiveConfig) (*adaptiveState, error) {
	if cfg.Base == "" || cfg.Cool == "" {
		return nil, fmt.Errorf("core: adaptive config requires Base and Cool encoders")
	}
	if cfg.Base == cfg.Cool {
		return nil, fmt.Errorf("core: adaptive Base and Cool must differ (both %q)", cfg.Base)
	}
	if cfg.CeilingK <= 0 {
		return nil, fmt.Errorf("core: adaptive CeilingK must be positive, got %g", cfg.CeilingK)
	}
	if cfg.GuardK < 0 || cfg.HysteresisK < 0 {
		return nil, fmt.Errorf("core: adaptive GuardK/HysteresisK must be non-negative")
	}
	base, err := encoding.New(cfg.Base)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive base: %w", err)
	}
	cool, err := encoding.New(cfg.Cool)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive cool: %w", err)
	}
	width := base.Width()
	if cool.Width() > width {
		width = cool.Width()
	}
	return &adaptiveState{
		cfg:   cfg,
		encs:  [2]encoding.Encoder{encoding.Pad(base, width), encoding.Pad(cool, width)},
		names: [2]string{base.Name(), cool.Name()},
	}, nil
}

// trigger and release are the two thresholds of the hysteresis band.
func (a *adaptiveState) trigger() float64 { return a.cfg.CeilingK - a.cfg.GuardK }
func (a *adaptiveState) release() float64 { return a.trigger() - a.cfg.HysteresisK }

// active returns the encoder the simulator should be driving now.
func (a *adaptiveState) active() encoding.Encoder { return a.encs[a.mode] }

// decide runs the control law at an interval boundary: given the
// interval's closing MaxTemp it may flip the mode, handing the physical
// bus state across so the incoming encoder's first transition is charged
// against the word actually on the wires. It returns the new active
// encoder and whether a switch happened.
func (a *adaptiveState) decide(cycle uint64, maxTemp float64) (encoding.Encoder, bool) {
	next := a.mode
	switch a.mode {
	case modeBase:
		if maxTemp >= a.trigger() {
			next = modeCool
		}
	case modeCool:
		if maxTemp <= a.release() {
			next = modeBase
		}
	}
	if next == a.mode {
		a.justSwitch = false
		return a.encs[a.mode], false
	}
	a.handoff(a.encs[a.mode], a.encs[next])
	a.events = append(a.events, SwitchEvent{
		Cycle: cycle,
		From:  a.names[a.mode],
		To:    a.names[next],
		TempK: maxTemp,
	})
	a.mode = next
	a.justSwitch = true
	return a.encs[a.mode], true
}

// handoff carries the physical bus state from the outgoing encoder into
// the incoming one: the incoming encoder keeps its own private history
// (e.g. CoolSpread's rotation counter) but inherits the word currently
// driven on the wires, so its first Encode decision — and the energy of
// the transition it causes — is computed against the true bus state.
func (a *adaptiveState) handoff(from, to encoding.Encoder) {
	fs, ok := from.(encoding.Stateful)
	if !ok {
		return
	}
	ts, ok := to.(encoding.Stateful)
	if !ok {
		return
	}
	st := ts.State()
	fst := fs.State()
	st.Prev = fst.Prev
	st.First = fst.First
	ts.SetState(st)
}

// reset returns the controller to its post-build state.
func (a *adaptiveState) reset() {
	for _, e := range a.encs {
		e.Reset()
	}
	a.mode = modeBase
	a.justSwitch = false
	a.occupancy = [2]uint64{}
	a.events = nil
}

// Adaptive reports whether the simulator runs the adaptive encoding
// controller.
func (s *Simulator) Adaptive() bool { return s.ad != nil }

// ActiveEncoder returns the scheme name currently driving the bus (the
// static encoder's name for non-adaptive simulators).
func (s *Simulator) ActiveEncoder() string {
	if s.ad != nil {
		return s.ad.names[s.ad.mode]
	}
	return s.enc.Name()
}

// SwitchEvents returns the encoder switches recorded so far, in cycle
// order. Nil for non-adaptive simulators or before the first switch.
func (s *Simulator) SwitchEvents() []SwitchEvent {
	if s.ad == nil {
		return nil
	}
	return s.ad.events
}

// EncoderOccupancy returns the cycles attributed to each encoder (whole
// flushed intervals only), base first. Nil for non-adaptive simulators.
func (s *Simulator) EncoderOccupancy() []EncoderCycles {
	if s.ad == nil {
		return nil
	}
	return []EncoderCycles{
		{Encoder: s.ad.names[modeBase], Cycles: s.ad.occupancy[modeBase]},
		{Encoder: s.ad.names[modeCool], Cycles: s.ad.occupancy[modeCool]},
	}
}

package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/faultinject"
	"nanobus/internal/itrs"
)

// ckptWords returns a deterministic pseudo-random word stream.
func ckptWords(seed int64, n int) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

// sameSamples requires bit-identical sample records.
func sameSamples(t *testing.T, label string, a, b []Sample) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: sample counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		same := x.EndCycle == y.EndCycle && x.MaxWire == y.MaxWire &&
			math.Float64bits(x.Energy) == math.Float64bits(y.Energy) &&
			math.Float64bits(x.Self) == math.Float64bits(y.Self) &&
			math.Float64bits(x.CoupAdj) == math.Float64bits(y.CoupAdj) &&
			math.Float64bits(x.CoupNonAdj) == math.Float64bits(y.CoupNonAdj) &&
			math.Float64bits(x.AvgTemp) == math.Float64bits(y.AvgTemp) &&
			math.Float64bits(x.MaxTemp) == math.Float64bits(y.MaxTemp) &&
			len(x.WireTemps) == len(y.WireTemps)
		if same {
			for j := range x.WireTemps {
				if math.Float64bits(x.WireTemps[j]) != math.Float64bits(y.WireTemps[j]) {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("%s: sample %d differs:\n  %+v\n  %+v", label, i, x, y)
		}
	}
}

// TestSnapshotRestoreBitIdentical is the durability contract: snapshot a
// simulator mid-run (mid-interval, with a stateful encoder), restore into
// a fresh simulator, drive both with the same remaining stream, and
// require every subsequent sample, total, temperature and cycle count to
// be bit-identical to the uninterrupted run.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	cfg := Config{
		CouplingDepth:  -1,
		IntervalCycles: 300,
		Encoder:        encoding.NewBI(),
		TrackWireTemps: true,
	}
	words := ckptWords(7, 5000)
	cut := 1111 // mid-interval: 1111 % 300 != 0

	uninterrupted := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 300, Encoder: encoding.NewBI(), TrackWireTemps: true})
	ctx := context.Background()
	if _, err := uninterrupted.StepBatch(ctx, words); err != nil {
		t.Fatal(err)
	}
	if err := uninterrupted.Finish(); err != nil {
		t.Fatal(err)
	}

	primary := newSim(t, cfg)
	if _, err := primary.StepBatch(ctx, words[:cut]); err != nil {
		t.Fatal(err)
	}
	blob, err := primary.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob2, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("two snapshots of the same state are not byte-identical")
	}

	restored := newSim(t, Config{CouplingDepth: -1, IntervalCycles: 300, Encoder: encoding.NewBI(), TrackWireTemps: true})
	if err := restored.Restore(blob); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Cycles() != uint64(cut) {
		t.Fatalf("restored cycle count %d, want %d", restored.Cycles(), cut)
	}
	if _, err := restored.StepBatch(ctx, words[cut:]); err != nil {
		t.Fatal(err)
	}
	if err := restored.Finish(); err != nil {
		t.Fatal(err)
	}

	sameSamples(t, "restored vs uninterrupted", restored.Samples(), uninterrupted.Samples())
	rt, lt := restored.TotalEnergy(), uninterrupted.TotalEnergy()
	if math.Float64bits(rt.Total()) != math.Float64bits(lt.Total()) ||
		math.Float64bits(rt.Self) != math.Float64bits(lt.Self) ||
		math.Float64bits(rt.CoupAdj) != math.Float64bits(lt.CoupAdj) ||
		math.Float64bits(rt.CoupNonAdj) != math.Float64bits(lt.CoupNonAdj) {
		t.Fatalf("totals differ: %+v vs %+v", rt, lt)
	}
	a, b := restored.Temps(), uninterrupted.Temps()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("wire %d temp differs: %.17g vs %.17g", i, a[i], b[i])
		}
	}
	if restored.Cycles() != uninterrupted.Cycles() {
		t.Fatalf("cycles differ: %d vs %d", restored.Cycles(), uninterrupted.Cycles())
	}
}

// TestSnapshotOnIntervalBoundary checkpoints at exactly a sampling-interval
// boundary (cycleInInterval == 0, the just-flushed state) and requires the
// resumed run to match the uninterrupted one.
func TestSnapshotOnIntervalBoundary(t *testing.T) {
	const interval = 250
	words := ckptWords(13, 2000)
	ctx := context.Background()

	uninterrupted := newSim(t, Config{IntervalCycles: interval})
	if _, err := uninterrupted.StepBatch(ctx, words); err != nil {
		t.Fatal(err)
	}
	if err := uninterrupted.Finish(); err != nil {
		t.Fatal(err)
	}

	primary := newSim(t, Config{IntervalCycles: interval})
	if _, err := primary.StepBatch(ctx, words[:3*interval]); err != nil {
		t.Fatal(err)
	}
	blob, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := newSim(t, Config{IntervalCycles: interval})
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if len(restored.Samples()) != 3 {
		t.Fatalf("restored %d samples, want 3", len(restored.Samples()))
	}
	if _, err := restored.StepBatch(ctx, words[3*interval:]); err != nil {
		t.Fatal(err)
	}
	if err := restored.Finish(); err != nil {
		t.Fatal(err)
	}
	sameSamples(t, "boundary restore", restored.Samples(), uninterrupted.Samples())
	if math.Float64bits(restored.TotalEnergy().Total()) != math.Float64bits(uninterrupted.TotalEnergy().Total()) {
		t.Fatal("totals differ after boundary restore")
	}
}

// TestRestoreRejectsMismatchedConfig feeds a checkpoint into simulators
// built under different configurations and requires the typed mismatch
// error, with the target left untouched.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	src := newSim(t, Config{IntervalCycles: 500, Encoder: encoding.NewBI()})
	if _, err := src.StepBatch(context.Background(), ckptWords(3, 700)); err != nil {
		t.Fatal(err)
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	targets := map[string]Config{
		"different interval": {IntervalCycles: 400, Encoder: encoding.NewBI()},
		"different encoder":  {IntervalCycles: 500, Encoder: encoding.NewCBI()},
		"different width":    {IntervalCycles: 500},
		"different node":     {IntervalCycles: 500, Encoder: encoding.NewBI(), Node: itrs.N45},
		"different length":   {IntervalCycles: 500, Encoder: encoding.NewBI(), Length: 0.002},
		"different depth":    {IntervalCycles: 500, Encoder: encoding.NewBI(), CouplingDepth: 1},
		"no repeaters":       {IntervalCycles: 500, Encoder: encoding.NewBI(), NoRepeaters: true},
	}
	for label, cfg := range targets {
		tgt := newSim(t, cfg)
		err := tgt.Restore(blob)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s: Restore = %v, want ErrCheckpointMismatch", label, err)
		}
		if tgt.Cycles() != 0 || tgt.Err() != nil {
			t.Errorf("%s: failed Restore mutated the target", label)
		}
	}

	// The compatible config restores fine.
	ok := newSim(t, Config{IntervalCycles: 500, Encoder: encoding.NewBI()})
	if err := ok.Restore(blob); err != nil {
		t.Fatalf("compatible Restore: %v", err)
	}
}

// TestRestoreRejectsCorruptCheckpoints requires the typed corrupt error
// for truncation, bit flips, bad magic and unsupported versions — and an
// untouched target in every case.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	src := newSim(t, Config{IntervalCycles: 200})
	if _, err := src.StepBatch(context.Background(), ckptWords(5, 450)); err != nil {
		t.Fatal(err)
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":            {},
		"short":            blob[:8],
		"truncated body":   blob[:len(blob)/2],
		"truncated tail":   blob[:len(blob)-1],
		"bad magic":        append([]byte("XXXX"), blob[4:]...),
		"flipped bit":      flipBit(blob, len(blob)/3),
		"flipped checksum": flipBit(blob, len(blob)-2),
		"bad version":      flipBit(blob, 4),
		"trailing bytes":   append(append([]byte{}, blob...), 0xAA),
	}
	for label, bad := range cases {
		tgt := newSim(t, Config{IntervalCycles: 200})
		err := tgt.Restore(bad)
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: Restore = %v, want ErrCheckpointCorrupt", label, err)
		}
		if tgt.Cycles() != 0 {
			t.Errorf("%s: failed Restore mutated the target", label)
		}
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}

// TestSnapshotPoisonedFails arms the flush failpoint to poison the
// simulator and requires Snapshot to refuse, then Restore to resurrect it
// from the pre-poison checkpoint.
func TestSnapshotPoisonedFails(t *testing.T) {
	defer faultinject.Reset()
	sim := newSim(t, Config{IntervalCycles: 100})
	ctx := context.Background()
	if _, err := sim.StepBatch(ctx, ckptWords(9, 150)); err != nil {
		t.Fatal(err)
	}
	blob, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Set("core.interval.flush", "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.StepBatch(ctx, ckptWords(10, 200)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("StepBatch under injected flush failure = %v, want ErrPoisoned", err)
	}
	if !errors.Is(sim.Err(), faultinject.ErrInjected) {
		t.Fatalf("sticky error %v does not wrap faultinject.ErrInjected", sim.Err())
	}
	if _, err := sim.Snapshot(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Snapshot on poisoned simulator = %v, want ErrPoisoned", err)
	}
	faultinject.Reset()

	if err := sim.Restore(blob); err != nil {
		t.Fatalf("Restore after poison: %v", err)
	}
	if sim.Err() != nil {
		t.Fatalf("Restore left sticky error %v", sim.Err())
	}
	if sim.Cycles() != 150 {
		t.Fatalf("resurrected cycle count %d, want 150", sim.Cycles())
	}
}

// TestFlushPanicFailpoint proves the scripted panic failpoint fires where
// armed — the chaos harness relies on it to model mid-interval crashes.
func TestFlushPanicFailpoint(t *testing.T) {
	defer faultinject.Reset()
	if err := faultinject.Set("core.interval.flush", "panic,nth=2"); err != nil {
		t.Fatal(err)
	}
	sim := newSim(t, Config{IntervalCycles: 50})
	ctx := context.Background()
	if _, err := sim.StepBatch(ctx, ckptWords(1, 50)); err != nil {
		t.Fatalf("first interval (trigger not yet due): %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second interval flush did not panic")
		}
	}()
	_, _ = sim.StepBatch(ctx, ckptWords(2, 50))
}

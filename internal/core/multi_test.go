package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/itrs"
)

// interleave packs per-bus word streams (cols[k][r]) into the cycle-major
// slab MultiSim.StepBatch consumes.
func interleave(cols [][]uint32) []uint32 {
	buses := len(cols)
	rows := len(cols[0])
	out := make([]uint32, rows*buses)
	for r := 0; r < rows; r++ {
		for k := 0; k < buses; k++ {
			out[r*buses+k] = cols[k][r]
		}
	}
	return out
}

// TestMultiSimK1BitIdentical is the tentpole identity gate: for every
// encoder scheme and node, a K=1 MultiSim must produce bit-identical
// (Float64bits) samples, totals and temperatures to the scalar Simulator
// over the same stream.
func TestMultiSimK1BitIdentical(t *testing.T) {
	nodes := []itrs.Node{itrs.N130, itrs.N90}
	for _, node := range nodes {
		for _, scheme := range encoding.AllSchemes() {
			enc1, err := encoding.New(scheme)
			if err != nil {
				t.Fatalf("encoding.New(%s): %v", scheme, err)
			}
			enc2, err := encoding.New(scheme)
			if err != nil {
				t.Fatalf("encoding.New(%s): %v", scheme, err)
			}
			cfg := Config{
				Node:           node,
				Encoder:        enc1,
				CouplingDepth:  -1,
				IntervalCycles: 1000,
				TrackWireTemps: true,
			}
			sim, err := New(cfg)
			if err != nil {
				t.Fatalf("New(%s/%s): %v", node.Name, scheme, err)
			}
			mcfg := cfg
			mcfg.Encoder = enc2
			msim, err := NewMulti(MultiConfig{Config: mcfg, Buses: 1})
			if err != nil {
				t.Fatalf("NewMulti(%s/%s): %v", node.Name, scheme, err)
			}

			rng := rand.New(rand.NewSource(11))
			words := make([]uint32, 3500) // 3.5 intervals: exercises the partial flush
			for i := range words {
				if rng.Intn(2) == 0 {
					words[i] = rng.Uint32()
				} else {
					words[i] = uint32(i) * 4
				}
			}
			ctx := context.Background()
			if _, err := sim.StepBatch(ctx, words); err != nil {
				t.Fatalf("scalar StepBatch: %v", err)
			}
			if _, err := msim.StepBatch(ctx, words); err != nil {
				t.Fatalf("multi StepBatch: %v", err)
			}
			if _, err := sim.StepIdleBatch(ctx, 700); err != nil {
				t.Fatalf("scalar StepIdleBatch: %v", err)
			}
			if _, err := msim.StepIdleBatch(ctx, 700); err != nil {
				t.Fatalf("multi StepIdleBatch: %v", err)
			}
			if err := sim.Finish(); err != nil {
				t.Fatalf("scalar Finish: %v", err)
			}
			if err := msim.Finish(); err != nil {
				t.Fatalf("multi Finish: %v", err)
			}

			label := node.Name + "/" + scheme
			sameSamples(t, label, sim.Samples(), msim.Samples(0))
			st, mt := sim.TotalEnergy(), msim.TotalEnergy(0)
			if math.Float64bits(st.Self) != math.Float64bits(mt.Self) ||
				math.Float64bits(st.CoupAdj) != math.Float64bits(mt.CoupAdj) ||
				math.Float64bits(st.CoupNonAdj) != math.Float64bits(mt.CoupNonAdj) {
				t.Fatalf("%s: total energy differs: %+v vs %+v", label, st, mt)
			}
			stemps, mtemps := sim.Temps(), msim.BusTemps(0)
			for i := range stemps {
				if math.Float64bits(stemps[i]) != math.Float64bits(mtemps[i]) {
					t.Fatalf("%s: wire %d temp differs: %v vs %v", label, i, stemps[i], mtemps[i])
				}
			}
			if sim.Cycles() != msim.Cycles() {
				t.Fatalf("%s: cycles differ: %d vs %d", label, sim.Cycles(), msim.Cycles())
			}
		}
	}
}

// TestMultiSimMatchesIndependentSims checks the K>1 struct-of-arrays path
// against K independent scalar simulators with inter-bus coupling
// disabled: energies agree to rounding and temperatures to the thermal
// solver's tolerance.
func TestMultiSimMatchesIndependentSims(t *testing.T) {
	const buses = 4
	const rows = 2600
	const intervalCycles = 1000

	makeCfg := func() Config {
		enc, err := encoding.New("BI")
		if err != nil {
			t.Fatalf("encoding.New: %v", err)
		}
		return Config{
			Node:           itrs.N90,
			Encoder:        enc,
			CouplingDepth:  -1,
			IntervalCycles: intervalCycles,
		}
	}

	msim, err := NewMulti(MultiConfig{Config: makeCfg(), Buses: buses, DisableBusCoupling: true})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	sims := make([]*Simulator, buses)
	for k := range sims {
		if sims[k], err = New(makeCfg()); err != nil {
			t.Fatalf("New: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(23))
	cols := make([][]uint32, buses)
	for k := range cols {
		cols[k] = make([]uint32, rows)
		for r := range cols[k] {
			if rng.Intn(3) == 0 {
				cols[k][r] = rng.Uint32()
			} else {
				cols[k][r] = uint32(r*8 + k)
			}
		}
	}

	ctx := context.Background()
	if _, err := msim.StepBatch(ctx, interleave(cols)); err != nil {
		t.Fatalf("multi StepBatch: %v", err)
	}
	if err := msim.Finish(); err != nil {
		t.Fatalf("multi Finish: %v", err)
	}
	for k := range sims {
		if _, err := sims[k].StepBatch(ctx, cols[k]); err != nil {
			t.Fatalf("scalar StepBatch: %v", err)
		}
		if err := sims[k].Finish(); err != nil {
			t.Fatalf("scalar Finish: %v", err)
		}
	}

	relClose := func(a, b, tol float64) bool {
		scale := math.Max(math.Abs(a), math.Abs(b))
		if scale == 0 {
			return a == b
		}
		return math.Abs(a-b) <= tol*scale
	}
	for k := 0; k < buses; k++ {
		mt, st := msim.TotalEnergy(k), sims[k].TotalEnergy()
		if !relClose(mt.Total(), st.Total(), 1e-9) {
			t.Fatalf("bus %d total energy: multi %g scalar %g", k, mt.Total(), st.Total())
		}
		ms, ss := msim.Samples(k), sims[k].Samples()
		if len(ms) != len(ss) {
			t.Fatalf("bus %d sample counts: %d vs %d", k, len(ms), len(ss))
		}
		for i := range ms {
			if ms[i].EndCycle != ss[i].EndCycle {
				t.Fatalf("bus %d sample %d end cycle: %d vs %d", k, i, ms[i].EndCycle, ss[i].EndCycle)
			}
			if !relClose(ms[i].Energy, ss[i].Energy, 1e-9) {
				t.Fatalf("bus %d sample %d energy: %g vs %g", k, i, ms[i].Energy, ss[i].Energy)
			}
			// The decoupled grid and the per-bus network integrate the same
			// system with the same spectral method; temperatures should agree
			// far beyond thermal-model accuracy.
			if !relClose(ms[i].MaxTemp, ss[i].MaxTemp, 1e-9) {
				t.Fatalf("bus %d sample %d max temp: %v vs %v", k, i, ms[i].MaxTemp, ss[i].MaxTemp)
			}
		}
		mtemp, stemp := msim.BusTemps(k), sims[k].Temps()
		for j := range stemp {
			if !relClose(mtemp[j], stemp[j], 1e-9) {
				t.Fatalf("bus %d wire %d temp: %v vs %v", k, j, mtemp[j], stemp[j])
			}
		}
	}

	// With coupling enabled, a hot bus must warm its quiet neighbour above
	// the neighbour's uncoupled temperature.
	coupled, err := NewMulti(MultiConfig{Config: makeCfg(), Buses: 2})
	if err != nil {
		t.Fatalf("NewMulti coupled: %v", err)
	}
	uncoupled, err := NewMulti(MultiConfig{Config: makeCfg(), Buses: 2, DisableBusCoupling: true})
	if err != nil {
		t.Fatalf("NewMulti uncoupled: %v", err)
	}
	hot := make([][]uint32, 2)
	hot[0] = make([]uint32, rows)
	hot[1] = make([]uint32, rows) // quiet: all zeros
	for r := range hot[0] {
		hot[0][r] = rng.Uint32()
	}
	slab := interleave(hot)
	if _, err := coupled.StepBatch(ctx, slab); err != nil {
		t.Fatalf("coupled StepBatch: %v", err)
	}
	if _, err := uncoupled.StepBatch(ctx, slab); err != nil {
		t.Fatalf("uncoupled StepBatch: %v", err)
	}
	if err := coupled.Finish(); err != nil {
		t.Fatalf("coupled Finish: %v", err)
	}
	if err := uncoupled.Finish(); err != nil {
		t.Fatalf("uncoupled Finish: %v", err)
	}
	cq := coupled.Grid().BusAvgTemp(1)
	uq := uncoupled.Grid().BusAvgTemp(1)
	if cq <= uq {
		t.Fatalf("coupled quiet bus %v K not warmer than uncoupled %v K", cq, uq)
	}
}

// TestMultiSimValidation covers constructor and stepping error paths.
func TestMultiSimValidation(t *testing.T) {
	if _, err := NewMulti(MultiConfig{Config: Config{Node: itrs.N130}, Buses: 0}); err == nil {
		t.Fatal("zero buses accepted")
	}
	m, err := NewMulti(MultiConfig{Config: Config{Node: itrs.N130, IntervalCycles: 100}, Buses: 3})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if _, err := m.StepBatch(context.Background(), make([]uint32, 7)); err == nil {
		t.Fatal("non-multiple batch accepted")
	}
	if m.Buses() != 3 || m.Width() != 32 || m.Grid() == nil || m.Single() != nil {
		t.Fatalf("accessors: buses=%d width=%d", m.Buses(), m.Width())
	}
}

// TestMultiStepBatchAllocs is the multi-bus twin of TestStepBatchAllocs:
// once the shared memo is warm, the K-bus batch kernel — transpose,
// encode, count-aggregation, interval flushes and banded grid advances
// included — must not allocate.
func TestMultiStepBatchAllocs(t *testing.T) {
	// Address-like traffic (mostly strides, occasional jumps), phase-shifted
	// per bus: the same bounded transition diversity batchWords gives the
	// scalar gate, so the memo reaches a true steady state. Unbounded
	// random streams keep missing forever and each miss may regrow a memo
	// slot's line buffer.
	const buses, rows = 8, 4096
	cols := make([][]uint32, buses)
	for k := range cols {
		col := make([]uint32, rows)
		w, rng := uint32(0x4000_1000)+uint32(k)*0x100, uint32(7+k)
		for i := range col {
			rng = rng*1664525 + 1013904223
			switch rng % 8 {
			case 0:
				w = rng
			case 1: // hold
			default:
				w += 4
			}
			col[i] = w
		}
		cols[k] = col
	}
	slab := interleave(cols)
	m, err := NewMulti(MultiConfig{
		Config: Config{
			Node:           itrs.N130,
			CouplingDepth:  -1,
			IntervalCycles: 1000, // several flushes per measured run
			DropSamples:    true,
		},
		Buses: buses,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.StepBatch(ctx, slab); err != nil { // warm memo and dt cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.StepBatch(ctx, slab); err != nil {
			t.Fatal(err)
		}
		if _, err := m.StepIdleBatch(ctx, 3000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("multi StepBatch+StepIdleBatch allocate %v/op in steady state, want 0", allocs)
	}
}

// multiRun is one bus's figures captured after a MultiSim run, for
// replay comparisons.
type multiRun struct {
	total   energy.LineEnergy
	lines   []energy.LineEnergy
	temps   []float64
	samples []Sample
}

// relCloseMulti mirrors the K > 1 replay contract (see MultiSim.Snapshot):
// a warm-memo replay re-associates the count-aggregation drains, so
// energies agree to ~1e-12 relative, not bit for bit.
func relCloseMulti(a, b float64) bool {
	d := math.Abs(a - b)
	if b == 0 {
		return d == 0
	}
	return d <= 1e-11*math.Abs(b)
}

// TestMultiSimResetReplay pins Reset's contract at K > 1: the simulator
// returns to its post-NewMulti state (cycles, samples, totals, grid
// temperatures) while keeping the warm shared memo, so an identical
// replay reproduces the first run to rounding and hits the memo where
// the first run missed. It also exercises the streaming callback,
// LineEnergies, MemoStats, Err and IntervalCycles on the K > 1 path.
func TestMultiSimResetReplay(t *testing.T) {
	const buses, rows, idle, interval = 4, 2300, 400, 1000
	enc, err := encoding.New("BI")
	if err != nil {
		t.Fatalf("encoding.New: %v", err)
	}
	msim, err := NewMulti(MultiConfig{
		Config: Config{Node: itrs.N130, Encoder: enc, CouplingDepth: -1, IntervalCycles: interval},
		Buses:  buses,
	})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if msim.IntervalCycles() != interval {
		t.Fatalf("IntervalCycles = %d, want %d", msim.IntervalCycles(), interval)
	}

	type tagged struct {
		bus int
		s   Sample
	}
	var streamed []tagged
	msim.SetOnBusSample(func(bus int, s Sample) { streamed = append(streamed, tagged{bus, s}) })

	rng := rand.New(rand.NewSource(97))
	cols := make([][]uint32, buses)
	for k := range cols {
		cols[k] = make([]uint32, rows)
		for r := range cols[k] {
			if rng.Intn(4) == 0 {
				cols[k][r] = rng.Uint32()
			} else {
				cols[k][r] = uint32(r*4 + k*64)
			}
		}
	}
	slab := interleave(cols)
	ctx := context.Background()

	run := func() []multiRun {
		if _, err := msim.StepBatch(ctx, slab); err != nil {
			t.Fatalf("StepBatch: %v", err)
		}
		if _, err := msim.StepIdleBatch(ctx, idle); err != nil {
			t.Fatalf("StepIdleBatch: %v", err)
		}
		if err := msim.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		out := make([]multiRun, buses)
		for k := range out {
			lines := make([]energy.LineEnergy, msim.Width())
			msim.LineEnergies(k, lines)
			out[k] = multiRun{
				total:   msim.TotalEnergy(k),
				lines:   lines,
				temps:   msim.BusTemps(k),
				samples: append([]Sample(nil), msim.Samples(k)...),
			}
		}
		return out
	}

	first := run()
	if msim.Err() != nil {
		t.Fatalf("Err after clean run: %v", msim.Err())
	}
	st1 := msim.MemoStats()
	if st1.Hits == 0 || st1.Misses == 0 || st1.Entries == 0 {
		t.Fatalf("memo never exercised: %+v", st1)
	}
	firstStreamed := append([]tagged(nil), streamed...)
	streamed = streamed[:0]

	msim.Reset()
	if msim.Cycles() != 0 {
		t.Fatalf("cycles after Reset = %d", msim.Cycles())
	}
	for k := 0; k < buses; k++ {
		if len(msim.Samples(k)) != 0 {
			t.Fatalf("bus %d keeps %d samples after Reset", k, len(msim.Samples(k)))
		}
		if tot := msim.TotalEnergy(k); tot != (energy.LineEnergy{}) {
			t.Fatalf("bus %d keeps energy after Reset: %+v", k, tot)
		}
	}

	second := run()
	if msim.Cycles() != rows+idle {
		t.Fatalf("cycles after replay = %d, want %d", msim.Cycles(), rows+idle)
	}
	st2 := msim.MemoStats()
	if st2.Hits <= st1.Hits {
		t.Fatalf("warm replay gained no memo hits: %+v -> %+v", st1, st2)
	}

	for k := range first {
		f, s := first[k], second[k]
		if !relCloseMulti(s.total.Self, f.total.Self) ||
			!relCloseMulti(s.total.CoupAdj, f.total.CoupAdj) ||
			!relCloseMulti(s.total.CoupNonAdj, f.total.CoupNonAdj) {
			t.Fatalf("bus %d replay totals drifted: %+v vs %+v", k, s.total, f.total)
		}
		for j := range f.lines {
			if !relCloseMulti(s.lines[j].Self, f.lines[j].Self) {
				t.Fatalf("bus %d line %d replay energy drifted", k, j)
			}
		}
		for j := range f.temps {
			if !relCloseMulti(s.temps[j], f.temps[j]) {
				t.Fatalf("bus %d wire %d replay temp drifted: %v vs %v", k, j, s.temps[j], f.temps[j])
			}
		}
		if len(s.samples) != len(f.samples) {
			t.Fatalf("bus %d sample counts differ: %d vs %d", k, len(s.samples), len(f.samples))
		}
		for i := range f.samples {
			if s.samples[i].EndCycle != f.samples[i].EndCycle {
				t.Fatalf("bus %d sample %d EndCycle %d vs %d",
					k, i, s.samples[i].EndCycle, f.samples[i].EndCycle)
			}
			if !relCloseMulti(s.samples[i].Energy, f.samples[i].Energy) {
				t.Fatalf("bus %d sample %d replay energy drifted", k, i)
			}
		}
	}

	// Streaming: every flush fires one callback per bus in bus order, and
	// the streamed samples are exactly the retained ones.
	for runIdx, got := range [][]tagged{firstStreamed, streamed} {
		want := 0
		for k := 0; k < buses; k++ {
			want += len(second[k].samples)
		}
		if len(got) != want {
			t.Fatalf("run %d streamed %d samples, retained %d", runIdx, len(got), want)
		}
		perBus := make([]int, buses)
		for i, g := range got {
			if g.bus != i%buses {
				t.Fatalf("run %d callback %d tagged bus %d, want %d", runIdx, i, g.bus, i%buses)
			}
			ref := second[g.bus].samples[perBus[g.bus]]
			if g.s.EndCycle != ref.EndCycle || !relCloseMulti(g.s.Energy, ref.Energy) {
				t.Fatalf("run %d bus %d streamed sample %d differs from retained",
					runIdx, g.bus, perBus[g.bus])
			}
			perBus[g.bus]++
		}
	}
}

// TestMultiSimK1Delegation covers the K == 1 delegation of the
// accessors Reset, Err, IntervalCycles, LineEnergies, MemoStats and
// SetOnBusSample: every call must land on the inner scalar simulator,
// and a replay after Reset is bit-identical (the scalar accumulator has
// no drain-order sensitivity).
func TestMultiSimK1Delegation(t *testing.T) {
	msim, err := NewMulti(MultiConfig{
		Config: Config{Node: itrs.N130, CouplingDepth: -1, IntervalCycles: 500},
		Buses:  1,
	})
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if msim.Single() == nil {
		t.Fatal("K=1 has no inner simulator")
	}
	if msim.IntervalCycles() != 500 {
		t.Fatalf("IntervalCycles = %d", msim.IntervalCycles())
	}
	var buses []int
	msim.SetOnBusSample(func(bus int, s Sample) { buses = append(buses, bus) })

	words := make([]uint32, 1300)
	for i := range words {
		words[i] = uint32(i * 4)
	}
	ctx := context.Background()
	run := func() (energy.LineEnergy, []energy.LineEnergy) {
		if _, err := msim.StepBatch(ctx, words); err != nil {
			t.Fatalf("StepBatch: %v", err)
		}
		if err := msim.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		lines := make([]energy.LineEnergy, msim.Width())
		msim.LineEnergies(0, lines)
		return msim.TotalEnergy(0), lines
	}

	tot1, lines1 := run()
	if msim.Err() != nil {
		t.Fatalf("Err: %v", msim.Err())
	}
	if msim.MemoStats() != msim.Single().MemoStats() {
		t.Fatal("MemoStats does not delegate")
	}
	if len(buses) == 0 {
		t.Fatal("K=1 streaming callback never fired")
	}
	for _, b := range buses {
		if b != 0 {
			t.Fatalf("K=1 sample tagged bus %d", b)
		}
	}

	msim.SetOnBusSample(nil)
	msim.Reset()
	if msim.Cycles() != 0 {
		t.Fatalf("cycles after Reset = %d", msim.Cycles())
	}
	callbacks := len(buses)
	tot2, lines2 := run()
	if len(buses) != callbacks {
		t.Fatal("cleared callback still fires")
	}
	if math.Float64bits(tot1.Self) != math.Float64bits(tot2.Self) ||
		math.Float64bits(tot1.CoupAdj) != math.Float64bits(tot2.CoupAdj) ||
		math.Float64bits(tot1.CoupNonAdj) != math.Float64bits(tot2.CoupNonAdj) {
		t.Fatalf("K=1 replay after Reset not bit-identical: %+v vs %+v", tot1, tot2)
	}
	for j := range lines1 {
		if math.Float64bits(lines1[j].Self) != math.Float64bits(lines2[j].Self) {
			t.Fatalf("K=1 line %d replay differs", j)
		}
	}
}

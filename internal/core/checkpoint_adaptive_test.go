package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
)

// adaptiveScenario builds an adaptive config whose trigger lands on the
// 3rd interval of the hotWords trace, so runs of >=4 intervals contain a
// switch.
func adaptiveScenario(t *testing.T, interval uint64) AdaptiveConfig {
	t.Helper()
	probe := probeTrajectory(t, hotWords(8*int(interval)), interval, thermal.NodeOptions{})
	return AdaptiveConfig{
		Base: "BI", Cool: "CoolSpread",
		CeilingK: probe[2].MaxTemp + 0.25, GuardK: 0.25, HysteresisK: 0.1,
	}
}

// TestAdaptiveSnapshotRestoreMidSwitch is the v3 round-trip pin: snapshot
// at several cut points — before, exactly at, and after the switch, on
// and off interval boundaries — restore into a fresh simulator, replay
// the tail, and require bit-identical samples, events, occupancy and
// snapshots versus the uninterrupted run.
func TestAdaptiveSnapshotRestoreMidSwitch(t *testing.T) {
	const interval = 1000
	words := hotWords(8 * interval)
	cfg := adaptiveScenario(t, interval)
	ctx := context.Background()

	full := newAdaptiveSim(t, interval, cfg)
	if _, err := full.StepBatch(ctx, words); err != nil {
		t.Fatal(err)
	}
	if err := full.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(full.SwitchEvents()) == 0 {
		t.Fatal("scenario has no switch; cuts would not cross one")
	}
	finalSnap, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Cut points in cycles: mid-interval before the switch, the switch
	// boundary itself, mid-interval after, and a later boundary.
	for _, cut := range []int{1500, 3000, 3500, 5000} {
		orig := newAdaptiveSim(t, interval, cfg)
		if _, err := orig.StepBatch(ctx, words[:cut]); err != nil {
			t.Fatal(err)
		}
		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}

		resumed := newAdaptiveSim(t, interval, cfg)
		if err := resumed.Restore(snap); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if resumed.Cycles() != uint64(cut) {
			t.Fatalf("cut %d: restored cycle count %d", cut, resumed.Cycles())
		}
		if resumed.ActiveEncoder() != orig.ActiveEncoder() {
			t.Fatalf("cut %d: active encoder %q vs %q", cut, resumed.ActiveEncoder(), orig.ActiveEncoder())
		}
		// An immediate re-snapshot must reproduce the blob byte for byte.
		resnap, err := resumed.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if string(resnap) != string(snap) {
			t.Fatalf("cut %d: restore+snapshot is not byte-identical", cut)
		}

		if _, err := resumed.StepBatch(ctx, words[cut:]); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Finish(); err != nil {
			t.Fatal(err)
		}

		gotEv, wantEv := resumed.SwitchEvents(), full.SwitchEvents()
		if len(gotEv) != len(wantEv) {
			t.Fatalf("cut %d: %d events vs %d", cut, len(gotEv), len(wantEv))
		}
		for i := range gotEv {
			if gotEv[i].Cycle != wantEv[i].Cycle || gotEv[i].From != wantEv[i].From ||
				gotEv[i].To != wantEv[i].To ||
				math.Float64bits(gotEv[i].TempK) != math.Float64bits(wantEv[i].TempK) {
				t.Errorf("cut %d event %d: %+v vs %+v", cut, i, gotEv[i], wantEv[i])
			}
		}
		gotS, wantS := resumed.Samples(), full.Samples()
		if len(gotS) != len(wantS) {
			t.Fatalf("cut %d: %d samples vs %d", cut, len(gotS), len(wantS))
		}
		for i := range gotS {
			if math.Float64bits(gotS[i].Energy) != math.Float64bits(wantS[i].Energy) ||
				math.Float64bits(gotS[i].MaxTemp) != math.Float64bits(wantS[i].MaxTemp) ||
				math.Float64bits(gotS[i].AvgTemp) != math.Float64bits(wantS[i].AvgTemp) ||
				gotS[i].Encoder != wantS[i].Encoder || gotS[i].Switched != wantS[i].Switched {
				t.Errorf("cut %d sample %d diverged", cut, i)
			}
		}
		gotO, wantO := resumed.EncoderOccupancy(), full.EncoderOccupancy()
		for i := range gotO {
			if gotO[i] != wantO[i] {
				t.Errorf("cut %d occupancy %d: %+v vs %+v", cut, i, gotO[i], wantO[i])
			}
		}
		// The strongest pin: the resumed run's final snapshot equals the
		// uninterrupted run's final snapshot byte for byte.
		resumedFinal, err := resumed.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if string(resumedFinal) != string(finalSnap) {
			t.Errorf("cut %d: final snapshots differ", cut)
		}
	}
}

// TestAdaptiveCheckpointVersionGates pins the cross-version rejections:
// v1 blobs cannot restore into adaptive targets, v3 blobs cannot restore
// into static targets, and both are ErrCheckpointMismatch (config-shape
// errors, not corruption).
func TestAdaptiveCheckpointVersionGates(t *testing.T) {
	const interval = 1000
	cfg := adaptiveScenario(t, interval)

	adaptiveSim := newAdaptiveSim(t, interval, cfg)
	v3, err := adaptiveSim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v3[4] != checkpointVersionAdaptive {
		t.Fatalf("adaptive snapshot version byte = %d, want %d", v3[4], checkpointVersionAdaptive)
	}

	enc, _ := encoding.New("BI")
	staticSim, err := New(Config{Node: itrs.N45, Encoder: enc, IntervalCycles: interval})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := staticSim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v1[4] != checkpointVersion {
		t.Fatalf("static snapshot version byte = %d, want %d", v1[4], checkpointVersion)
	}

	if err := staticSim.Restore(v3); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("v3 into static: %v, want ErrCheckpointMismatch", err)
	}
	if err := adaptiveSim.Restore(v1); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("v1 into adaptive: %v, want ErrCheckpointMismatch", err)
	}
}

// TestAdaptiveRestoreRejectsMismatchedController pins the fingerprint:
// any drift in the adaptive tuning refuses to restore.
func TestAdaptiveRestoreRejectsMismatchedController(t *testing.T) {
	const interval = 1000
	cfg := adaptiveScenario(t, interval)
	sim := newAdaptiveSim(t, interval, cfg)
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	variants := []AdaptiveConfig{
		{Base: "CBI", Cool: cfg.Cool, CeilingK: cfg.CeilingK, GuardK: cfg.GuardK, HysteresisK: cfg.HysteresisK},
		{Base: cfg.Base, Cool: "CoolCap", CeilingK: cfg.CeilingK, GuardK: cfg.GuardK, HysteresisK: cfg.HysteresisK},
		{Base: cfg.Base, Cool: cfg.Cool, CeilingK: cfg.CeilingK + 1, GuardK: cfg.GuardK, HysteresisK: cfg.HysteresisK},
		{Base: cfg.Base, Cool: cfg.Cool, CeilingK: cfg.CeilingK, GuardK: cfg.GuardK + 0.01, HysteresisK: cfg.HysteresisK},
		{Base: cfg.Base, Cool: cfg.Cool, CeilingK: cfg.CeilingK, GuardK: cfg.GuardK, HysteresisK: cfg.HysteresisK + 0.01},
	}
	for i, v := range variants {
		target := newAdaptiveSim(t, interval, v)
		if err := target.Restore(snap); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("variant %d: %v, want ErrCheckpointMismatch", i, err)
		}
	}
}

// TestAdaptiveCheckpointCorruption pins v3's structural validation: bit
// flips and truncation are rejected and leave the target untouched.
func TestAdaptiveCheckpointCorruption(t *testing.T) {
	const interval = 1000
	words := hotWords(4 * interval)
	cfg := adaptiveScenario(t, interval)
	sim := newAdaptiveSim(t, interval, cfg)
	if _, err := sim.StepBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	target := newAdaptiveSim(t, interval, cfg)
	pristine, err := target.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0x40
	if err := target.Restore(flipped); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("bit flip: %v, want ErrCheckpointCorrupt", err)
	}
	if err := target.Restore(snap[:len(snap)-9]); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("truncation: %v, want ErrCheckpointCorrupt", err)
	}
	after, err := target.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(pristine) {
		t.Error("failed restores mutated the target")
	}
}

package core

import (
	"context"
	"fmt"

	"nanobus/internal/encoding"
	"nanobus/internal/energy"
	"nanobus/internal/faultinject"
	"nanobus/internal/thermal"
)

// MultiConfig assembles a MultiSim: K identically-configured buses (one
// shared technology node, encoder scheme, coupling model and sampling
// interval) coupled through a banded inter-bus thermal network.
type MultiConfig struct {
	// Config is the shared per-bus configuration. Config.Encoder names the
	// scheme; each bus gets its own instance (encoder state is per bus).
	// Config.OnSample is ignored — use OnBusSample.
	Config
	// Buses is the number of buses K (>= 1). K == 1 runs the scalar
	// Simulator pipeline unchanged (bit-identical results).
	Buses int
	// BusGapPitches is the edge-to-edge gap between adjacent buses in
	// units of the node's wire pitch; zero means
	// thermal.DefaultBusGapPitches.
	BusGapPitches float64
	// DisableBusCoupling severs the lateral inter-bus conductance: the
	// grid degenerates to K independent per-bus networks (ablation and
	// equivalence testing).
	DisableBusCoupling bool
	// OnBusSample, when non-nil, receives every interval sample as it
	// closes, tagged with its bus index.
	OnBusSample func(bus int, s Sample)
}

// MultiSim drives K buses in lockstep through one struct-of-arrays
// kernel: one shared transition memo probed across all buses, one
// contiguous [K*W] power slab, and one banded thermal grid advanced once
// per sampling interval for the whole die region.
//
// K == 1 delegates to an inner *Simulator, so single-bus results are
// bit-identical (Float64bits) to the scalar pipeline. For K > 1 the
// deferred count-aggregation kernel associates float additions
// differently from K scalar accumulators: energies agree to rounding
// (~1e-12 relative), not bit exact.
type MultiSim struct {
	cfg      MultiConfig
	buses    int
	width    int
	interval uint64
	length   float64

	// K == 1: the scalar pipeline, nothing else populated.
	single *Simulator

	// K > 1: struct-of-arrays state.
	encs []encoding.Encoder
	acc  *energy.MultiAccumulator
	grid *thermal.Grid

	cycleInInterval uint64
	cycles          uint64
	samples         [][]Sample // per bus

	lineBuf     []energy.LineEnergy // [W] per-bus flush scratch
	power       []float64           // [K*W] bus-major interval power slab
	encBuf      []uint64            // [chunkRows] per-bus physical words
	colBuf      []uint32            // [chunkRows] per-bus data-word column
	chunkRows   int
	rawEncode   bool                // Unencoded scheme: fuse transpose and encode
	lineTotals  []energy.LineEnergy // [K*W] cumulative per-line energies
	totalEnergy []energy.LineEnergy // [K] cumulative per-bus energies

	err error
}

// NewMulti builds a K-bus simulator. The encoder named by
// cfg.Config.Encoder must come from the encoding registry (each bus needs
// its own instance); custom encoder implementations are limited to K == 1.
func NewMulti(cfg MultiConfig) (*MultiSim, error) {
	if cfg.Buses < 1 {
		return nil, fmt.Errorf("core: multi-sim buses %d < 1", cfg.Buses)
	}
	m := &MultiSim{cfg: cfg, buses: cfg.Buses}

	if cfg.Buses == 1 {
		inner := cfg.Config
		if cfg.OnBusSample != nil {
			fn := cfg.OnBusSample
			inner.OnSample = func(s Sample) { fn(0, s) }
		} else {
			inner.OnSample = nil
		}
		s, err := New(inner)
		if err != nil {
			return nil, err
		}
		m.single = s
		m.width = s.Width()
		m.interval = s.interval
		m.length = s.length
		return m, nil
	}

	if cfg.Adaptive != nil {
		// The SoA kernel drives per-bus registry encoders; threading the
		// controller's padded pair and per-bus decisions through it is
		// future work. Without this guard the probe below would silently
		// flatten the controller onto its base scheme.
		return nil, fmt.Errorf("core: multi-sim does not support the adaptive controller; run scalar sessions")
	}

	// Probe the shared configuration through the scalar constructor once,
	// then rebuild the pieces in struct-of-arrays form. The probe also
	// hands us resolved defaults (length, interval) and the energy model.
	probeCfg := cfg.Config
	probeCfg.OnSample = nil
	probe, err := New(probeCfg)
	if err != nil {
		return nil, err
	}
	model := probe.acc.Model()
	m.width = probe.Width()
	m.interval = probe.interval
	m.length = probe.length

	m.encs = make([]encoding.Encoder, cfg.Buses)
	name := probe.enc.Name()
	for k := range m.encs {
		e, err := encoding.New(name)
		if err != nil {
			return nil, fmt.Errorf("core: multi-sim needs a registry encoder (per-bus instances): %w", err)
		}
		m.encs[k] = e
	}
	_, m.rawEncode = m.encs[0].(*encoding.Unencoded)

	acc, err := energy.NewMultiAccumulator(model, cfg.Buses)
	if err != nil {
		return nil, err
	}
	if cfg.MemoSizeLog2 >= 0 {
		if err := acc.EnableMemo(cfg.MemoSizeLog2); err != nil {
			return nil, err
		}
	}
	m.acc = acc

	grid, err := thermal.NewGridFromNode(cfg.Node, m.width, cfg.Buses, thermal.GridNodeOptions{
		NodeOptions:        cfg.Thermal,
		BusGapPitches:      cfg.BusGapPitches,
		DisableBusCoupling: cfg.DisableBusCoupling,
	})
	if err != nil {
		return nil, err
	}
	m.grid = grid

	m.samples = make([][]Sample, cfg.Buses)
	m.lineBuf = make([]energy.LineEnergy, m.width)
	m.power = make([]float64, cfg.Buses*m.width)
	m.lineTotals = make([]energy.LineEnergy, cfg.Buses*m.width)
	m.totalEnergy = make([]energy.LineEnergy, cfg.Buses)
	// Size chunks so one round's per-bus working set (the transposed
	// column plus the encode buffer) stays cache-resident while keeping
	// enough rows per chunk that the per-bus dispatch overhead (encoder
	// interface call, StepBus prologue) amortizes away even at large K.
	m.chunkRows = batchChunk / cfg.Buses
	if m.chunkRows < 1024 {
		m.chunkRows = 1024
	}
	m.encBuf = make([]uint64, m.chunkRows)
	m.colBuf = make([]uint32, m.chunkRows)
	return m, nil
}

// Buses returns K.
func (m *MultiSim) Buses() int { return m.buses }

// Width returns the per-bus physical width.
func (m *MultiSim) Width() int { return m.width }

// IntervalCycles returns the sampling interval length in cycles.
func (m *MultiSim) IntervalCycles() uint64 { return m.interval }

// Grid exposes the banded thermal grid (nil when K == 1; use the inner
// simulator's Network then).
func (m *MultiSim) Grid() *thermal.Grid { return m.grid }

// Single returns the inner scalar simulator when K == 1, else nil.
func (m *MultiSim) Single() *Simulator { return m.single }

// StepBatch drives every bus one word per cycle from an interleaved
// cycle-major slab: words[r*K + k] is bus k's word on relative cycle r,
// so len(words) must be a multiple of K. It checks ctx each time a
// sampling interval closes and returns the number of whole cycles (rows)
// consumed plus the first error hit, mirroring Simulator.StepBatch.
//
//nanolint:hotpath multi-bus batch kernel; steady state allocates nothing
func (m *MultiSim) StepBatch(ctx context.Context, words []uint32) (int, error) {
	if m.single != nil {
		return m.single.StepBatch(ctx, words)
	}
	if m.err != nil {
		return 0, m.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(words)%m.buses != 0 {
		return 0, fmt.Errorf("core: multi-sim batch of %d words is not a multiple of %d buses", len(words), m.buses)
	}
	rows := len(words) / m.buses
	done := 0
	for done < rows {
		n := rows - done
		if left := int(m.interval - m.cycleInInterval); n > left {
			n = left
		}
		if n > m.chunkRows {
			n = m.chunkRows
		}
		base := done * m.buses
		for k := 0; k < m.buses; k++ {
			// Transpose bus k's column out of the interleaved slab so the
			// encoder and accumulator see a contiguous stream. The
			// Unencoded scheme is a stateless widening, so its encode fuses
			// into the transpose and skips one buffer pass.
			enc := m.encBuf[:n]
			src := words[base+k:]
			if m.rawEncode {
				for r := 0; r < n; r++ {
					enc[r] = uint64(src[r*m.buses])
				}
			} else {
				col := m.colBuf[:n]
				for r := 0; r < n; r++ {
					col[r] = src[r*m.buses]
				}
				encoding.EncodeWords(m.encs[k], enc, col)
			}
			m.acc.StepBus(k, enc)
		}
		m.acc.AddCycles(uint64(n))
		m.cycles += uint64(n)
		m.cycleInInterval += uint64(n)
		done += n
		if m.cycleInInterval >= m.interval {
			m.flush(m.cycleInInterval)
			if m.err != nil {
				return done, m.err
			}
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
	}
	return rows, nil
}

// StepIdleBatch advances n idle cycles on every bus, with the same
// interval/ctx semantics as StepBatch.
func (m *MultiSim) StepIdleBatch(ctx context.Context, n uint64) (uint64, error) {
	if m.single != nil {
		return m.single.StepIdleBatch(ctx, n)
	}
	if m.err != nil {
		return 0, m.err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var done uint64
	for done < n {
		k := n - done
		if left := m.interval - m.cycleInInterval; k > left {
			k = left
		}
		m.acc.IdleN(k)
		m.cycles += k
		m.cycleInInterval += k
		done += k
		if m.cycleInInterval >= m.interval {
			m.flush(m.cycleInInterval)
			if m.err != nil {
				return done, m.err
			}
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
	}
	return n, nil
}

// flush closes the current interval of n cycles for all K buses: drain
// the shared memo counts, convert per-line energies to one [K*W] power
// slab, advance the banded grid once, and emit one sample per bus.
func (m *MultiSim) flush(n uint64) {
	if n == 0 {
		return
	}
	if err := faultinject.Hit("core.interval.flush"); err != nil {
		if m.err == nil {
			m.err = fmt.Errorf("%w: interval flush: %w", ErrPoisoned, err)
		}
		m.acc.Drain()
		m.acc.Reset()
		m.cycleInInterval = 0
		return
	}
	m.acc.Drain()
	dt := float64(n) * m.cfg.Node.CyclePeriod()
	w := m.width
	for k := 0; k < m.buses; k++ {
		m.acc.BusLines(k, m.lineBuf)
		for i := range m.lineBuf {
			le := m.lineBuf[i]
			m.lineTotals[k*w+i].Self += le.Self
			m.lineTotals[k*w+i].CoupAdj += le.CoupAdj
			m.lineTotals[k*w+i].CoupNonAdj += le.CoupNonAdj
			m.power[k*w+i] = le.Total() / dt / m.length
		}
		tot := m.acc.BusTotal(k)
		m.totalEnergy[k].Self += tot.Self
		m.totalEnergy[k].CoupAdj += tot.CoupAdj
		m.totalEnergy[k].CoupNonAdj += tot.CoupNonAdj
	}

	if err := m.grid.Advance(dt, m.power); err != nil {
		if m.err == nil {
			m.err = fmt.Errorf("%w: thermal advance: %w", ErrPoisoned, err)
		}
		m.acc.Reset()
		m.cycleInInterval = 0
		return
	}

	for k := 0; k < m.buses; k++ {
		tot := m.acc.BusTotal(k)
		maxT, maxW := m.grid.BusMaxTemp(k)
		sample := Sample{
			EndCycle:   m.cycles,
			Energy:     tot.Total(),
			Self:       tot.Self,
			CoupAdj:    tot.CoupAdj,
			CoupNonAdj: tot.CoupNonAdj,
			AvgTemp:    m.grid.BusAvgTemp(k),
			MaxTemp:    maxT,
			MaxWire:    maxW,
		}
		if m.cfg.TrackWireTemps {
			sample.WireTemps = m.grid.BusTemps(k, nil)
		}
		if m.cfg.OnBusSample != nil {
			m.cfg.OnBusSample(k, sample)
		}
		if !m.cfg.DropSamples {
			m.samples[k] = append(m.samples[k], sample)
		}
	}
	m.acc.Reset()
	m.cycleInInterval = 0
}

// Finish closes any partial interval; call once after the last cycle.
func (m *MultiSim) Finish() error {
	if m.single != nil {
		return m.single.Finish()
	}
	if m.cycleInInterval > 0 {
		m.flush(m.cycleInInterval)
	}
	return m.err
}

// Err returns the first sticky error, or nil (see Simulator.Err).
func (m *MultiSim) Err() error {
	if m.single != nil {
		return m.single.Err()
	}
	return m.err
}

// SetOnBusSample replaces the per-sample callback for subsequent
// intervals (streaming consumers; see Simulator.SetOnSample).
func (m *MultiSim) SetOnBusSample(fn func(bus int, s Sample)) {
	m.cfg.OnBusSample = fn
	if m.single != nil {
		if fn == nil {
			m.single.SetOnSample(nil)
			return
		}
		m.single.SetOnSample(func(s Sample) { fn(0, s) })
	}
}

// Samples returns bus k's retained interval samples.
func (m *MultiSim) Samples(k int) []Sample {
	if m.single != nil {
		return m.single.Samples()
	}
	return m.samples[k]
}

// Cycles returns the number of lockstep cycles simulated.
func (m *MultiSim) Cycles() uint64 {
	if m.single != nil {
		return m.single.Cycles()
	}
	return m.cycles
}

// TotalEnergy returns bus k's cumulative energy split by component
// (flushed intervals only; call Finish first for exact totals).
func (m *MultiSim) TotalEnergy(k int) energy.LineEnergy {
	if m.single != nil {
		return m.single.TotalEnergy()
	}
	return m.totalEnergy[k]
}

// LineEnergies copies bus k's cumulative per-line energies into dst
// (length Width()).
func (m *MultiSim) LineEnergies(k int, dst []energy.LineEnergy) {
	if m.single != nil {
		m.single.LineEnergies(dst)
		return
	}
	copy(dst, m.lineTotals[k*m.width:(k+1)*m.width])
}

// BusTemps returns bus k's current per-wire temperatures.
func (m *MultiSim) BusTemps(k int) []float64 {
	if m.single != nil {
		return m.single.Temps()
	}
	return m.grid.BusTemps(k, nil)
}

// MemoStats returns the shared transition-memo counters (zero value when
// memoization is disabled).
func (m *MultiSim) MemoStats() energy.MemoStats {
	if m.single != nil {
		return m.single.MemoStats()
	}
	if mm := m.acc.Memo(); mm != nil {
		return mm.Stats()
	}
	return energy.MemoStats{}
}

// Reset returns the simulator to its post-NewMulti state, keeping the
// warm memo and thermal factorisations (see Simulator.Reset).
func (m *MultiSim) Reset() {
	if m.single != nil {
		m.single.Reset()
		return
	}
	m.acc.ResetAll()
	m.grid.Reset()
	for _, e := range m.encs {
		e.Reset()
	}
	m.cycleInInterval = 0
	m.cycles = 0
	for k := range m.samples {
		m.samples[k] = nil
	}
	for i := range m.lineTotals {
		m.lineTotals[i] = energy.LineEnergy{}
	}
	for i := range m.totalEnergy {
		m.totalEnergy[i] = energy.LineEnergy{}
	}
	m.err = nil
}

package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/trace"
)

func testSim(t *testing.T, interval uint64) *Simulator {
	t.Helper()
	sim, err := New(Config{Node: itrs.N90, CouplingDepth: -1, IntervalCycles: interval})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// testWords returns a deterministic pseudo-address stream.
func testWords(n int) []uint32 {
	words := make([]uint32, n)
	x := uint32(0x1234_5678)
	for i := range words {
		x = x*1664525 + 1013904223
		words[i] = x
	}
	return words
}

// TestStepBatchMatchesStepWord pins the batch fast path bit-identical to
// per-word stepping.
func TestStepBatchMatchesStepWord(t *testing.T) {
	const interval = 512
	words := testWords(5 * interval / 2)

	a := testSim(t, interval)
	for _, w := range words {
		a.StepWord(w)
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}

	b := testSim(t, interval)
	n, err := b.StepBatch(context.Background(), words)
	if err != nil || n != len(words) {
		t.Fatalf("StepBatch: n=%d err=%v", n, err)
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}

	if a.Cycles() != b.Cycles() {
		t.Fatalf("cycles %d != %d", a.Cycles(), b.Cycles())
	}
	if len(a.Samples()) != len(b.Samples()) {
		t.Fatalf("samples %d != %d", len(a.Samples()), len(b.Samples()))
	}
	for i := range a.Samples() {
		sa, sb := a.Samples()[i], b.Samples()[i]
		if math.Float64bits(sa.Energy) != math.Float64bits(sb.Energy) ||
			math.Float64bits(sa.MaxTemp) != math.Float64bits(sb.MaxTemp) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa, sb)
		}
	}
	ta, tb := a.Temps(), b.Temps()
	for i := range ta {
		if math.Float64bits(ta[i]) != math.Float64bits(tb[i]) {
			t.Fatalf("temp %d differs", i)
		}
	}
}

// TestStepBatchCancellation checks the one-sampling-interval cancellation
// bound: a context cancelled by the first sample stops the batch before a
// second interval completes.
func TestStepBatchCancellation(t *testing.T) {
	const interval = 256
	sim := testSim(t, interval)
	ctx, cancel := context.WithCancel(context.Background())
	sim.SetOnSample(func(Sample) { cancel() })

	n, err := sim.StepBatch(ctx, testWords(10*interval))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != interval {
		t.Fatalf("consumed %d words, want exactly one interval (%d)", n, interval)
	}

	// A cancelled context stops the batch before any work.
	n, err = sim.StepBatch(ctx, testWords(10))
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch: n=%d err=%v", n, err)
	}
}

func TestStepIdleBatchCancellation(t *testing.T) {
	const interval = 256
	sim := testSim(t, interval)
	ctx, cancel := context.WithCancel(context.Background())
	sim.SetOnSample(func(Sample) { cancel() })
	n, err := sim.StepIdleBatch(ctx, 10*interval)
	if !errors.Is(err, context.Canceled) || n != interval {
		t.Fatalf("n=%d err=%v, want one interval (%d) and Canceled", n, interval, err)
	}
}

func TestRunContextWrappersMatch(t *testing.T) {
	const cycles = 3000
	mk := func() (trace.Source, *Simulator, *Simulator) {
		return trace.NewSynth(trace.DefaultSynthConfig(7)), testSim(t, 512), testSim(t, 512)
	}

	src1, ia1, da1 := mk()
	r1, err := RunPair(src1, ia1, da1, cycles)
	if err != nil {
		t.Fatal(err)
	}
	src2, ia2, da2 := mk()
	r2, err := RunPairContext(context.Background(), src2, ia2, da2, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("cycles %d != %d", r1.Cycles, r2.Cycles)
	}
	e1, e2 := r1.IA.TotalEnergy().Total(), r2.IA.TotalEnergy().Total()
	if math.Float64bits(e1) != math.Float64bits(e2) {
		t.Fatalf("IA energy %g != %g", e1, e2)
	}
}

func TestRunPairContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := trace.NewSynth(trace.DefaultSynthConfig(1))
	ia, da := testSim(t, 128), testSim(t, 128)
	if _, err := RunPairContext(ctx, src, ia, da, 10_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if ia.Cycles() != 0 {
		t.Fatalf("pre-cancelled run consumed %d cycles", ia.Cycles())
	}
}

func TestRunSingleContextCancelledMidRun(t *testing.T) {
	const interval = 128
	sim := testSim(t, interval)
	ctx, cancel := context.WithCancel(context.Background())
	sim.SetOnSample(func(Sample) { cancel() })
	src := trace.NewSynth(trace.DefaultSynthConfig(3))
	n, err := RunSingleContext(ctx, src, sim, "ia", 100*interval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	// The loop may finish the interval in flight, then must stop at the
	// next interval boundary check.
	if n > 2*interval {
		t.Fatalf("consumed %d cycles after cancellation, want <= %d", n, 2*interval)
	}
}

func TestRunSingleContextUnknownKind(t *testing.T) {
	sim := testSim(t, 128)
	src := trace.NewSynth(trace.DefaultSynthConfig(3))
	if _, err := RunSingleContext(context.Background(), src, sim, "xx", 10); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// words extracts the instruction words of the program's first segment.
func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	if len(p.Segments) == 0 {
		t.Fatal("no segments")
	}
	d := p.Segments[0].Data
	out := make([]uint32, len(d)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d[4*i:])
	}
	return out
}

func TestAssembleBasicBlock(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x1000
	start:
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", p.Entry)
	}
	if p.Symbols["loop"] != 0x1008 {
		t.Errorf("loop = %#x, want 0x1008", p.Symbols["loop"])
	}
	ws := words(t, p)
	if len(ws) != 6 {
		t.Fatalf("%d instructions, want 6", len(ws))
	}
	// The branch at 0x1010 targets 0x1008: offset -8.
	b := Decode(ws[4])
	if b.Op != OpBne || b.Imm != -8 {
		t.Errorf("branch decoded as %+v, want bne offset -8", b)
	}
}

func TestAssembleMemoryAndPseudo(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x2000
		la r1, buf      ; 2 instructions
		lw r2, 4(r1)
		sw r2, 8(r1)
		mv r3, r2
		nop
		j end
	end:
		ret
		.align 16
	buf:
		.word 1, 2, 3
		.float 1.5
		.space 8
	`)
	buf := p.Symbols["buf"]
	if buf%16 != 0 {
		t.Errorf("buf = %#x not 16-aligned", buf)
	}
	ws := words(t, p)
	// la expands to lui+ori targeting buf.
	lui := Decode(ws[0])
	ori := Decode(ws[1])
	if lui.Op != OpLui || ori.Op != OpOri {
		t.Fatalf("la expansion: %v, %v", lui, ori)
	}
	if uint32(lui.Imm)|uint32(ori.Imm) != buf {
		t.Errorf("la materialises %#x, want %#x", uint32(lui.Imm)|uint32(ori.Imm), buf)
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x100
		beq r0, r0, fwd
		nop
		nop
	fwd:
		halt
	`)
	ws := words(t, p)
	b := Decode(ws[0])
	if b.Imm != 12 {
		t.Errorf("forward branch offset = %d, want 12", b.Imm)
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	p := mustAssemble(t, `
		addi sp, zero, 100
		jal ra, 8
	`)
	ws := words(t, p)
	a := Decode(ws[0])
	if a.Rd != 15 || a.Rs1 != 0 {
		t.Errorf("aliases wrong: %+v", a)
	}
	j := Decode(ws[1])
	if j.Rd != 14 {
		t.Errorf("ra alias wrong: %+v", j)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",
		"addi r1, r2",          // missing operand
		"addi r99, r0, 1",      // bad register
		"lw r1, nope",          // bad memory operand
		"beq r1, r2, nowhere",  // undefined label
		".org xyz",             // bad number
		".align 3",             // not a power of two
		".unknown 5",           // unknown directive
		"dup: nop\ndup: nop",   // duplicate label
		"addi r1, r0, 9999999", // immediate overflow
		"fadd r1, f2, f3",      // int register in FP slot
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTwoPassSizesAgree(t *testing.T) {
	// Forward la references must produce identical layout in both passes;
	// a mismatch would corrupt every later label.
	p := mustAssemble(t, `
		.org 0
		la r1, late
		la r2, early
	marker:
		halt
		.org 0x100000
	late:
		.word 7
	early:
		.word 8
	`)
	if p.Symbols["marker"] != 16 {
		t.Errorf("marker at %#x, want 0x10 (two 2-instruction la expansions)", p.Symbols["marker"])
	}
}

func TestDisassembleReassemble(t *testing.T) {
	src := `
		.org 0x400
		addi r1, r0, 5
		slli r2, r1, 3
		lw r3, 0(r2)
		sw r3, 4(r2)
		beq r3, r0, 8
		halt
	`
	p1 := mustAssemble(t, src)
	ws := words(t, p1)
	// Render each instruction and re-assemble the rendering.
	var sb strings.Builder
	sb.WriteString(".org 0x400\n")
	for _, w := range ws {
		in := Decode(w)
		line := in.String()
		// Branch offsets render relative; convert to an absolute-target
		// form the assembler accepts by keeping the numeric offset:
		// "beq r3, r0, 8" reassembles as target 8 absolute, so skip
		// branches in this round-trip.
		if InfoOf(in.Op).Fmt == FmtB {
			sb.WriteString("nop\n")
			continue
		}
		sb.WriteString(line + "\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	ws2 := words(t, p2)
	if len(ws2) != len(ws) {
		t.Fatalf("reassembled %d instructions, want %d", len(ws2), len(ws))
	}
	for i := range ws {
		if Decode(ws[i]).Op == OpBeq {
			continue
		}
		if ws[i] != ws2[i] {
			t.Errorf("instruction %d: %#08x vs %#08x (%s vs %s)",
				i, ws[i], ws2[i], Decode(ws[i]), Decode(ws2[i]))
		}
	}
}

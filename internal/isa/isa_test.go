package isa

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSub, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpAddi, Rd: 5, Rs1: 0, Imm: -42},
		{Op: OpAddi, Rd: 5, Rs1: 0, Imm: ImmMaxI},
		{Op: OpAddi, Rd: 5, Rs1: 0, Imm: ImmMinI},
		{Op: OpLw, Rd: 3, Rs1: 7, Imm: 1024},
		{Op: OpSw, Rs1: 7, Rs2: 3, Imm: -8},
		{Op: OpSb, Rs1: 1, Rs2: 2, Imm: 131071},
		{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -256},
		{Op: OpBge, Rs1: 9, Rs2: 10, Imm: 4096},
		{Op: OpJal, Rd: 14, Imm: -4096},
		{Op: OpJalr, Rd: 0, Rs1: 14, Imm: 0},
		{Op: OpLui, Rd: 4, Imm: int32(0xDEAD << LuiShift)},
		{Op: OpFadd, Rd: 2, Rs1: 3, Rs2: 4},
		{Op: OpFlw, Rd: 1, Rs1: 15, Imm: 16},
		{Op: OpFsw, Rs1: 15, Rs2: 1, Imm: 20},
		{Op: OpHalt},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got := Decode(w)
		if got != in {
			t.Errorf("round trip %+v -> %#08x -> %+v", in, w, got)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	bad := []Inst{
		{Op: OpAddi, Rd: 1, Imm: ImmMaxI + 1},
		{Op: OpAddi, Rd: 1, Imm: ImmMinI - 1},
		{Op: OpAdd, Rd: 16},
		{Op: OpBeq, Imm: 3},                 // not multiple of 4
		{Op: OpJal, Imm: 2},                 // not multiple of 4
		{Op: OpLui, Imm: 1},                 // low bits set
		{Op: OpBeq, Imm: 4 * (ImmMaxI + 1)}, // branch out of range
		{Op: OpJal, Imm: 4 * (ImmMaxJ + 1)}, // jump out of range
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) accepted", in)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if got := Decode(0xFFFFFFFF); got.Op != OpInvalid {
		t.Errorf("Decode(all ones) = %+v, want invalid", got)
	}
}

func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		op := Op(1 + rng.Intn(int(opCount)-1))
		info := InfoOf(op)
		in := Inst{Op: op}
		switch info.Fmt {
		case FmtR, FmtNone:
			in.Rd = uint8(rng.Intn(16))
			in.Rs1 = uint8(rng.Intn(16))
			in.Rs2 = uint8(rng.Intn(16))
		case FmtI:
			in.Rd = uint8(rng.Intn(16))
			in.Rs1 = uint8(rng.Intn(16))
			in.Imm = int32(rng.Intn(ImmMaxI-ImmMinI+1)) + ImmMinI
		case FmtS:
			in.Rs1 = uint8(rng.Intn(16))
			in.Rs2 = uint8(rng.Intn(16))
			in.Imm = int32(rng.Intn(ImmMaxI-ImmMinI+1)) + ImmMinI
		case FmtB:
			in.Rs1 = uint8(rng.Intn(16))
			in.Rs2 = uint8(rng.Intn(16))
			in.Imm = (int32(rng.Intn(ImmMaxI-ImmMinI+1)) + ImmMinI) / 4 * 4
		case FmtJ:
			in.Rd = uint8(rng.Intn(16))
			if op == OpLui {
				in.Imm = int32(uint32(rng.Intn(1<<ImmBitsJ)) << LuiShift)
			} else {
				in.Imm = (int32(rng.Intn(ImmMaxJ-ImmMinJ+1)) + ImmMinJ) * 4
			}
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		if got := Decode(w); got != in {
			t.Fatalf("round trip %+v -> %+v", in, got)
		}
	}
}

func TestOpByName(t *testing.T) {
	op, ok := OpByName("add")
	if !ok || op != OpAdd {
		t.Errorf("OpByName(add) = %v %v", op, ok)
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":   {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"lw r3, 8(r7)":     {Op: OpLw, Rd: 3, Rs1: 7, Imm: 8},
		"sw r3, -4(r7)":    {Op: OpSw, Rs1: 7, Rs2: 3, Imm: -4},
		"fadd f2, f3, f4":  {Op: OpFadd, Rd: 2, Rs1: 3, Rs2: 4},
		"halt":             {Op: OpHalt},
		"flw f1, 16(r15)":  {Op: OpFlw, Rd: 1, Rs1: 15, Imm: 16},
		"beq r1, r2, -256": {Op: OpBeq, Rs1: 1, Rs2: 2, Imm: -256},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", in, got, want)
		}
	}
}

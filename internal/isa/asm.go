package isa

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Segment is a contiguous span of assembled bytes.
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is the output of the assembler: placed segments and an entry
// point (the address of the first instruction assembled, or the `start`
// label if defined).
type Program struct {
	Entry    uint32
	Segments []Segment
	// Symbols maps labels to addresses.
	Symbols map[string]uint32
}

// Assemble translates NB32 assembly source into a Program. Supported
// syntax: one instruction or directive per line; `label:` definitions
// (optionally followed by an instruction); `#` or `;` comments; directives
// .org ADDR, .word V..., .float F..., .space N, .align N; pseudo
// instructions nop, mv, li, la, j, call, ret. Numeric literals accept
// decimal, hex (0x...) and character quotes.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: map[string]uint32{}}
	lines := strings.Split(src, "\n")

	// Pass 1: layout (compute sizes, record labels).
	if err := a.run(lines, false); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	a.resetCursor()
	if err := a.run(lines, true); err != nil {
		return nil, err
	}
	prog := &Program{Symbols: a.symbols, Segments: a.segments()}
	if e, ok := a.symbols["start"]; ok {
		prog.Entry = e
	} else {
		prog.Entry = a.firstInst
	}
	return prog, nil
}

type chunk struct {
	addr uint32
	data []byte
}

type assembler struct {
	symbols   map[string]uint32
	chunks    []chunk
	addr      uint32
	firstInst uint32
	haveFirst bool
	emitting  bool
	lineNo    int
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return fmt.Errorf("isa: line %d: %s", a.lineNo, fmt.Sprintf(format, args...))
}

func (a *assembler) resetCursor() {
	a.addr = 0
	a.chunks = nil
	a.haveFirst = false
}

func (a *assembler) run(lines []string, emit bool) error {
	a.emitting = emit
	for i, raw := range lines {
		a.lineNo = i + 1
		line := raw
		if j := strings.IndexAny(line, "#;"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefixing an instruction.
		for {
			j := strings.Index(line, ":")
			if j < 0 {
				break
			}
			label := strings.TrimSpace(line[:j])
			if !isIdent(label) {
				return a.errf("bad label %q", label)
			}
			if !emit {
				if _, dup := a.symbols[label]; dup {
					return a.errf("duplicate label %q", label)
				}
				a.symbols[label] = a.addr
			}
			line = strings.TrimSpace(line[j+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	name := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, name))
	switch name {
	case ".org":
		v, err := a.number(rest)
		if err != nil {
			return err
		}
		a.addr = uint32(v)
	case ".word":
		for _, tok := range splitOperands(rest) {
			v, err := a.numberOrLabel(tok)
			if err != nil {
				return err
			}
			a.emit32(uint32(v))
		}
	case ".float":
		for _, tok := range splitOperands(rest) {
			f, err := strconv.ParseFloat(tok, 32)
			if err != nil {
				return a.errf("bad float %q: %v", tok, err)
			}
			a.emit32(math.Float32bits(float32(f)))
		}
	case ".space":
		v, err := a.number(rest)
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf(".space with negative size")
		}
		if a.emitting {
			a.append(make([]byte, v))
		} else {
			a.addr += uint32(v)
		}
	case ".align":
		v, err := a.number(rest)
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return a.errf(".align needs a power of two")
		}
		al := uint32(v)
		pad := (al - a.addr%al) % al
		if a.emitting {
			a.append(make([]byte, pad))
		} else {
			a.addr += pad
		}
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

func (a *assembler) instruction(line string) error {
	if !a.haveFirst {
		a.haveFirst = true
		if a.firstInst == 0 || a.emitting {
			a.firstInst = a.addr
		}
	}
	sp := strings.IndexAny(line, " \t")
	mn := line
	rest := ""
	if sp >= 0 {
		mn = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	mn = strings.ToLower(mn)
	ops := splitOperands(rest)

	// Pseudo instructions expand to real ones.
	switch mn {
	case "nop":
		return a.encode(Inst{Op: OpAddi})
	case "mv":
		if len(ops) != 2 {
			return a.errf("mv needs 2 operands")
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		rs, err := a.reg(ops[1], false)
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: OpAddi, Rd: rd, Rs1: rs})
	case "li", "la":
		if len(ops) != 2 {
			return a.errf("%s needs 2 operands", mn)
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		v, err := a.numberOrLabel(ops[1])
		if err != nil {
			return err
		}
		return a.loadConst(rd, uint32(v))
	case "j":
		if len(ops) != 1 {
			return a.errf("j needs 1 operand")
		}
		return a.jump(OpJal, 0, ops[0])
	case "call":
		if len(ops) != 1 {
			return a.errf("call needs 1 operand")
		}
		return a.jump(OpJal, 14, ops[0])
	case "ret":
		return a.encode(Inst{Op: OpJalr, Rd: 0, Rs1: 14})
	}

	op, ok := OpByName(mn)
	if !ok {
		return a.errf("unknown mnemonic %q", mn)
	}
	info := InfoOf(op)
	switch {
	case op == OpHalt:
		return a.encode(Inst{Op: OpHalt})
	case info.Load:
		if len(ops) != 2 {
			return a.errf("%s needs rd, off(base)", mn)
		}
		rd, err := a.reg(ops[0], info.FP)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
	case info.Store:
		if len(ops) != 2 {
			return a.errf("%s needs rs, off(base)", mn)
		}
		rs, err := a.reg(ops[0], info.FP)
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: op, Rs1: base, Rs2: rs, Imm: off})
	case info.Fmt == FmtB:
		if len(ops) != 3 {
			return a.errf("%s needs rs1, rs2, target", mn)
		}
		rs1, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[1], false)
		if err != nil {
			return err
		}
		off, err := a.branchOffset(ops[2])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case op == OpJal:
		if len(ops) != 2 {
			return a.errf("jal needs rd, target")
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		return a.jump(OpJal, rd, ops[1])
	case op == OpJalr:
		if len(ops) != 3 {
			return a.errf("jalr needs rd, rs1, imm")
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1], false)
		if err != nil {
			return err
		}
		imm, err := a.numberOrLabel(ops[2])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: int32(imm)})
	case op == OpLui:
		if len(ops) != 2 {
			return a.errf("lui needs rd, value")
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		v, err := a.numberOrLabel(ops[1])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: OpLui, Rd: rd, Imm: int32(v)})
	case info.Fmt == FmtI:
		if len(ops) != 3 {
			return a.errf("%s needs rd, rs1, imm", mn)
		}
		rd, err := a.reg(ops[0], false)
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1], false)
		if err != nil {
			return err
		}
		imm, err := a.numberOrLabel(ops[2])
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(imm)})
	case info.Fmt == FmtR:
		if len(ops) != 3 {
			return a.errf("%s needs 3 register operands", mn)
		}
		// FP source/destination register files per opcode.
		dFP := info.FP && op != OpFcvtws && op != OpFmvxw && op != OpFeq && op != OpFlt
		sFP := info.FP && op != OpFcvtsw && op != OpFmvwx
		rd, err := a.reg(ops[0], dFP)
		if err != nil {
			return err
		}
		rs1, err := a.reg(ops[1], sFP)
		if err != nil {
			return err
		}
		rs2, err := a.reg(ops[2], sFP)
		if err != nil {
			return err
		}
		return a.encode(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	return a.errf("cannot assemble %q", mn)
}

// loadConst emits li/la as a fixed-size lui+ori pair. The size must not
// depend on the value: pass 1 may see unresolved (zero) forward labels, and
// layout and emission have to agree.
func (a *assembler) loadConst(rd uint8, v uint32) error {
	hi := v &^ ((1 << LuiShift) - 1)
	lo := v & ((1 << LuiShift) - 1)
	if err := a.encode(Inst{Op: OpLui, Rd: rd, Imm: int32(hi)}); err != nil {
		return err
	}
	return a.encode(Inst{Op: OpOri, Rd: rd, Rs1: rd, Imm: int32(lo)})
}

func (a *assembler) jump(op Op, rd uint8, target string) error {
	v, err := a.numberOrLabel(target)
	if err != nil {
		return err
	}
	return a.encode(Inst{Op: op, Rd: rd, Imm: int32(uint32(v) - a.addr)})
}

func (a *assembler) branchOffset(target string) (int32, error) {
	v, err := a.numberOrLabel(target)
	if err != nil {
		return 0, err
	}
	return int32(uint32(v) - a.addr), nil
}

func (a *assembler) encode(in Inst) error {
	if !a.emitting {
		// Pass 1 counts fixed-size pseudo-expansions exactly: loadConst
		// already calls encode per emitted instruction, so layout and
		// emission agree.
		a.addr += 4
		return nil
	}
	w, err := Encode(in)
	if err != nil {
		return a.errf("%v", err)
	}
	a.emit32(w)
	return nil
}

func (a *assembler) emit32(w uint32) {
	if !a.emitting {
		a.addr += 4
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	a.append(b[:])
}

func (a *assembler) append(b []byte) {
	n := len(a.chunks)
	if n > 0 && a.chunks[n-1].addr+uint32(len(a.chunks[n-1].data)) == a.addr {
		a.chunks[n-1].data = append(a.chunks[n-1].data, b...)
	} else {
		a.chunks = append(a.chunks, chunk{addr: a.addr, data: append([]byte(nil), b...)})
	}
	a.addr += uint32(len(b))
}

func (a *assembler) segments() []Segment {
	out := make([]Segment, len(a.chunks))
	for i, c := range a.chunks {
		out[i] = Segment{Addr: c.addr, Data: c.data}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// memOperand parses "off(base)" where off may be a number or label and may
// be empty ("(r3)").
func (a *assembler) memOperand(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	base, err := a.reg(strings.TrimSpace(s[open+1:len(s)-1]), false)
	if err != nil {
		return 0, 0, err
	}
	var off int64
	if offStr != "" {
		off, err = a.numberOrLabel(offStr)
		if err != nil {
			return 0, 0, err
		}
	}
	return int32(off), base, nil
}

func (a *assembler) reg(s string, fp bool) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "zero":
		return 0, nil
	case "ra":
		return 14, nil
	case "sp":
		return 15, nil
	}
	want := byte('r')
	if fp {
		want = 'f'
	}
	if len(s) < 2 || s[0] != want {
		return 0, a.errf("bad register %q (want %c0..%c15)", s, want, want)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, a.errf("bad register %q", s)
	}
	return uint8(n), nil
}

func (a *assembler) number(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow unsigned 32-bit hex like 0xFFFFFFFF.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int64(u), nil
		}
		return 0, a.errf("bad number %q", s)
	}
	return v, nil
}

func (a *assembler) numberOrLabel(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if isIdent(s) {
		if addr, ok := a.symbols[s]; ok {
			return int64(addr), nil
		}
		if !a.emitting {
			// Forward reference during layout: size-stable placeholder.
			return 0, nil
		}
		return 0, a.errf("undefined label %q", s)
	}
	return a.number(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Pure numbers are not identifiers; a leading dot is a directive.
	return s[0] != '.'
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// progMagic identifies serialized NB32 programs ("NBX1" format): magic,
// entry point, segment count, then (addr, length, bytes) per segment,
// all little-endian.
var progMagic = [4]byte{'N', 'B', 'X', '1'}

// WriteProgram serializes a program.
func WriteProgram(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(progMagic[:]); err != nil {
		return fmt.Errorf("isa: writing magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], p.Entry)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(p.Segments)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("isa: writing header: %w", err)
	}
	for i, seg := range p.Segments {
		binary.LittleEndian.PutUint32(hdr[0:4], seg.Addr)
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(seg.Data)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return fmt.Errorf("isa: writing segment %d header: %w", i, err)
		}
		if _, err := bw.Write(seg.Data); err != nil {
			return fmt.Errorf("isa: writing segment %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadProgram deserializes a program. Symbols are not stored in the binary
// format and come back empty.
func ReadProgram(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if magic != progMagic {
		return nil, fmt.Errorf("isa: bad program magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: reading header: %w", err)
	}
	p := &Program{
		Entry:   binary.LittleEndian.Uint32(hdr[0:4]),
		Symbols: map[string]uint32{},
	}
	nseg := binary.LittleEndian.Uint32(hdr[4:8])
	const maxSegments = 1 << 16
	if nseg > maxSegments {
		return nil, fmt.Errorf("isa: implausible segment count %d", nseg)
	}
	for i := uint32(0); i < nseg; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("isa: reading segment %d header: %w", i, err)
		}
		addr := binary.LittleEndian.Uint32(hdr[0:4])
		size := binary.LittleEndian.Uint32(hdr[4:8])
		const maxSegment = 1 << 28
		if size > maxSegment {
			return nil, fmt.Errorf("isa: implausible segment size %d", size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("isa: reading segment %d body: %w", i, err)
		}
		p.Segments = append(p.Segments, Segment{Addr: addr, Data: data})
	}
	return p, nil
}

// Disassemble renders a segment's words as assembly, one instruction per
// line with addresses.
func Disassemble(w io.Writer, seg Segment) error {
	for off := 0; off+4 <= len(seg.Data); off += 4 {
		word := binary.LittleEndian.Uint32(seg.Data[off : off+4])
		in := Decode(word)
		text := in.String()
		if in.Op == OpInvalid {
			text = fmt.Sprintf(".word %#08x", word)
		}
		if _, err := fmt.Fprintf(w, "%08x:  %08x  %s\n", seg.Addr+uint32(off), word, text); err != nil {
			return err
		}
	}
	return nil
}

// Package isa defines NB32, the small 32-bit RISC instruction set executed
// by the trace-generating CPU simulator (the substitution for the paper's
// SPARC-V9/SHADE setup — see DESIGN.md). NB32 has 16 integer registers
// (r0 hardwired to zero), 16 single-precision FP registers, fixed 32-bit
// instructions, and a flat 32-bit byte-addressed address space.
//
// Instruction formats (bit 31 is the MSB):
//
//	R-type: op[31:26] rd[25:22] rs1[21:18] rs2[17:14] unused[13:0]
//	I-type: op[31:26] rd[25:22] rs1[21:18] imm18[17:0] (signed)
//	S-type: op[31:26] imm[17:14]->[25:22] rs1[21:18] rs2[17:14] imm[13:0]
//	        (stores and branches: an 18-bit signed immediate split across
//	        the rd slot and the low field; branch immediates are byte
//	        offsets divided by 4)
//	J-type: op[31:26] rd[25:22] imm22[21:0] (JAL: signed word offset;
//	        LUI: unsigned, register value = imm22 << 10)
package isa

import "fmt"

// Op is an NB32 opcode.
type Op uint8

// Opcodes. The groupings matter to Format().
const (
	OpInvalid Op = iota

	// R-type integer ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu
	OpMul
	OpDiv
	OpRem

	// I-type integer ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSlli
	OpSrli
	OpSrai

	// Upper immediate (J-type layout).
	OpLui

	// Loads (I-type).
	OpLw
	OpLh
	OpLhu
	OpLb
	OpLbu
	OpFlw

	// Stores (S-type).
	OpSw
	OpSh
	OpSb
	OpFsw

	// Branches (S-type, word offsets).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Jumps.
	OpJal  // J-type
	OpJalr // I-type

	// FP R-type.
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFmin
	OpFmax
	OpFeq // rd(int) = f[rs1] == f[rs2]
	OpFlt // rd(int) = f[rs1] < f[rs2]

	// FP conversions/moves (R-type, rs2 unused).
	OpFcvtws // rd(int) = int32(f[rs1])
	OpFcvtsw // fd = float32(int32(r[rs1]))
	OpFmvxw  // rd(int) = bits(f[rs1])
	OpFmvwx  // fd = bits(r[rs1])

	// System.
	OpHalt

	opCount
)

// Format classifies an opcode's encoding layout.
type Format uint8

// Encoding layouts.
const (
	FmtR Format = iota
	FmtI
	FmtS
	FmtB
	FmtJ
	FmtNone
)

// Info describes one opcode.
type Info struct {
	Name string
	Fmt  Format
	// Load/Store mark memory operations; Size is the access width in
	// bytes.
	Load, Store bool
	Size        uint32
	// FP marks instructions reading/writing the FP register file.
	FP bool
}

var infos = [opCount]Info{
	OpInvalid: {Name: "invalid", Fmt: FmtNone},

	OpAdd:  {Name: "add", Fmt: FmtR},
	OpSub:  {Name: "sub", Fmt: FmtR},
	OpAnd:  {Name: "and", Fmt: FmtR},
	OpOr:   {Name: "or", Fmt: FmtR},
	OpXor:  {Name: "xor", Fmt: FmtR},
	OpSll:  {Name: "sll", Fmt: FmtR},
	OpSrl:  {Name: "srl", Fmt: FmtR},
	OpSra:  {Name: "sra", Fmt: FmtR},
	OpSlt:  {Name: "slt", Fmt: FmtR},
	OpSltu: {Name: "sltu", Fmt: FmtR},
	OpMul:  {Name: "mul", Fmt: FmtR},
	OpDiv:  {Name: "div", Fmt: FmtR},
	OpRem:  {Name: "rem", Fmt: FmtR},

	OpAddi: {Name: "addi", Fmt: FmtI},
	OpAndi: {Name: "andi", Fmt: FmtI},
	OpOri:  {Name: "ori", Fmt: FmtI},
	OpXori: {Name: "xori", Fmt: FmtI},
	OpSlti: {Name: "slti", Fmt: FmtI},
	OpSlli: {Name: "slli", Fmt: FmtI},
	OpSrli: {Name: "srli", Fmt: FmtI},
	OpSrai: {Name: "srai", Fmt: FmtI},

	OpLui: {Name: "lui", Fmt: FmtJ},

	OpLw:  {Name: "lw", Fmt: FmtI, Load: true, Size: 4},
	OpLh:  {Name: "lh", Fmt: FmtI, Load: true, Size: 2},
	OpLhu: {Name: "lhu", Fmt: FmtI, Load: true, Size: 2},
	OpLb:  {Name: "lb", Fmt: FmtI, Load: true, Size: 1},
	OpLbu: {Name: "lbu", Fmt: FmtI, Load: true, Size: 1},
	OpFlw: {Name: "flw", Fmt: FmtI, Load: true, Size: 4, FP: true},

	OpSw:  {Name: "sw", Fmt: FmtS, Store: true, Size: 4},
	OpSh:  {Name: "sh", Fmt: FmtS, Store: true, Size: 2},
	OpSb:  {Name: "sb", Fmt: FmtS, Store: true, Size: 1},
	OpFsw: {Name: "fsw", Fmt: FmtS, Store: true, Size: 4, FP: true},

	OpBeq:  {Name: "beq", Fmt: FmtB},
	OpBne:  {Name: "bne", Fmt: FmtB},
	OpBlt:  {Name: "blt", Fmt: FmtB},
	OpBge:  {Name: "bge", Fmt: FmtB},
	OpBltu: {Name: "bltu", Fmt: FmtB},
	OpBgeu: {Name: "bgeu", Fmt: FmtB},

	OpJal:  {Name: "jal", Fmt: FmtJ},
	OpJalr: {Name: "jalr", Fmt: FmtI},

	OpFadd: {Name: "fadd", Fmt: FmtR, FP: true},
	OpFsub: {Name: "fsub", Fmt: FmtR, FP: true},
	OpFmul: {Name: "fmul", Fmt: FmtR, FP: true},
	OpFdiv: {Name: "fdiv", Fmt: FmtR, FP: true},
	OpFmin: {Name: "fmin", Fmt: FmtR, FP: true},
	OpFmax: {Name: "fmax", Fmt: FmtR, FP: true},
	OpFeq:  {Name: "feq", Fmt: FmtR, FP: true},
	OpFlt:  {Name: "flt", Fmt: FmtR, FP: true},

	OpFcvtws: {Name: "fcvtws", Fmt: FmtR, FP: true},
	OpFcvtsw: {Name: "fcvtsw", Fmt: FmtR, FP: true},
	OpFmvxw:  {Name: "fmvxw", Fmt: FmtR, FP: true},
	OpFmvwx:  {Name: "fmvwx", Fmt: FmtR, FP: true},

	OpHalt: {Name: "halt", Fmt: FmtNone},
}

// InfoOf returns the opcode's description.
func InfoOf(op Op) Info {
	if op >= opCount {
		return infos[OpInvalid]
	}
	return infos[op]
}

// byName maps mnemonics to opcodes.
var byName = func() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op := Op(1); op < opCount; op++ {
		m[infos[op].Name] = op
	}
	return m
}()

// OpByName resolves a mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := byName[name]
	return op, ok
}

// Instruction field limits.
const (
	// ImmBitsI is the width of the I/S/B-type immediate.
	ImmBitsI = 18
	// ImmBitsJ is the width of the J-type immediate.
	ImmBitsJ = 22
	// ImmMinI and ImmMaxI bound the signed 18-bit immediate.
	ImmMinI = -(1 << (ImmBitsI - 1))
	ImmMaxI = 1<<(ImmBitsI-1) - 1
	// ImmMinJ and ImmMaxJ bound the signed 22-bit immediate.
	ImmMinJ = -(1 << (ImmBitsJ - 1))
	ImmMaxJ = 1<<(ImmBitsJ-1) - 1
	// LuiShift is the left shift LUI applies to its immediate.
	LuiShift = 10
	// NumRegs is the number of integer (and FP) registers.
	NumRegs = 16
)

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	// Imm is the sign-extended immediate. For branches and JAL it is the
	// byte offset (already multiplied by 4); for LUI the final register
	// value (imm22 << LuiShift).
	Imm int32
}

// Encode packs an instruction into its 32-bit form.
func Encode(in Inst) (uint32, error) {
	info := InfoOf(in.Op)
	if info.Name == "invalid" && in.Op != OpHalt {
		return 0, fmt.Errorf("isa: cannot encode invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %+v", in)
	}
	w := uint32(in.Op) << 26
	switch info.Fmt {
	case FmtR, FmtNone:
		w |= uint32(in.Rd)<<22 | uint32(in.Rs1)<<18 | uint32(in.Rs2)<<14
	case FmtI:
		if in.Imm < ImmMinI || in.Imm > ImmMaxI {
			return 0, fmt.Errorf("isa: %s immediate %d out of 18-bit range", info.Name, in.Imm)
		}
		w |= uint32(in.Rd)<<22 | uint32(in.Rs1)<<18 | uint32(in.Imm)&0x3FFFF
	case FmtS, FmtB:
		imm := in.Imm
		if info.Fmt == FmtB {
			if imm%4 != 0 {
				return 0, fmt.Errorf("isa: %s offset %d not a multiple of 4", info.Name, imm)
			}
			imm /= 4
		}
		if imm < ImmMinI || imm > ImmMaxI {
			return 0, fmt.Errorf("isa: %s immediate %d out of 18-bit range", info.Name, imm)
		}
		u := uint32(imm) & 0x3FFFF
		w |= (u >> 14 << 22) | uint32(in.Rs1)<<18 | uint32(in.Rs2)<<14 | (u & 0x3FFF)
	case FmtJ:
		imm := in.Imm
		if in.Op == OpLui {
			if imm&((1<<LuiShift)-1) != 0 {
				return 0, fmt.Errorf("isa: lui value %#x has low bits set", imm)
			}
			u := uint32(imm) >> LuiShift
			if u >= 1<<ImmBitsJ {
				return 0, fmt.Errorf("isa: lui immediate %#x out of 22-bit range", imm)
			}
			w |= uint32(in.Rd)<<22 | u
			break
		}
		// JAL: signed word offset.
		if imm%4 != 0 {
			return 0, fmt.Errorf("isa: jal offset %d not a multiple of 4", imm)
		}
		wo := imm / 4
		if wo < ImmMinJ || wo > ImmMaxJ {
			return 0, fmt.Errorf("isa: jal offset %d out of range", imm)
		}
		w |= uint32(in.Rd)<<22 | uint32(wo)&0x3FFFFF
	}
	return w, nil
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) Inst {
	op := Op(w >> 26)
	if op >= opCount {
		return Inst{Op: OpInvalid}
	}
	info := infos[op]
	in := Inst{Op: op}
	switch info.Fmt {
	case FmtR, FmtNone:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Rs1 = uint8(w >> 18 & 0xF)
		in.Rs2 = uint8(w >> 14 & 0xF)
	case FmtI:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Rs1 = uint8(w >> 18 & 0xF)
		in.Imm = signExtend(w&0x3FFFF, ImmBitsI)
	case FmtS, FmtB:
		in.Rs1 = uint8(w >> 18 & 0xF)
		in.Rs2 = uint8(w >> 14 & 0xF)
		u := (w >> 22 & 0xF << 14) | (w & 0x3FFF)
		in.Imm = signExtend(u, ImmBitsI)
		if info.Fmt == FmtB {
			in.Imm *= 4
		}
	case FmtJ:
		in.Rd = uint8(w >> 22 & 0xF)
		if op == OpLui {
			in.Imm = int32(w & 0x3FFFFF << LuiShift)
		} else {
			in.Imm = signExtend(w&0x3FFFFF, ImmBitsJ) * 4
		}
	}
	return in
}

func signExtend(u uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(u<<shift) >> shift
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	info := InfoOf(in.Op)
	switch info.Fmt {
	case FmtNone:
		return info.Name
	case FmtR:
		rp := "r"
		if info.FP && in.Op != OpFcvtws && in.Op != OpFmvxw && in.Op != OpFeq && in.Op != OpFlt {
			rp = "f"
		}
		srcp := "r"
		if info.FP && in.Op != OpFcvtsw && in.Op != OpFmvwx {
			srcp = "f"
		}
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.Name, rp, in.Rd, srcp, in.Rs1, srcp, in.Rs2)
	case FmtI:
		if info.Load {
			dp := "r"
			if info.FP {
				dp = "f"
			}
			return fmt.Sprintf("%s %s%d, %d(r%d)", info.Name, dp, in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.Rd, in.Rs1, in.Imm)
	case FmtS:
		sp := "r"
		if info.FP {
			sp = "f"
		}
		return fmt.Sprintf("%s %s%d, %d(r%d)", info.Name, sp, in.Rs2, in.Imm, in.Rs1)
	case FmtB:
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.Rs1, in.Rs2, in.Imm)
	case FmtJ:
		if in.Op == OpLui {
			return fmt.Sprintf("lui r%d, %#x", in.Rd, uint32(in.Imm))
		}
		return fmt.Sprintf("jal r%d, %d", in.Rd, in.Imm)
	}
	return info.Name
}

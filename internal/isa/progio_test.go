package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestProgramRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x1000
	start:
		addi r1, r0, 5
		halt
		.org 0x2000
	data:
		.word 1, 2, 3
	`)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != p.Entry {
		t.Errorf("entry %#x, want %#x", got.Entry, p.Entry)
	}
	if len(got.Segments) != len(p.Segments) {
		t.Fatalf("%d segments, want %d", len(got.Segments), len(p.Segments))
	}
	for i := range p.Segments {
		if got.Segments[i].Addr != p.Segments[i].Addr {
			t.Errorf("segment %d addr %#x, want %#x", i, got.Segments[i].Addr, p.Segments[i].Addr)
		}
		if !bytes.Equal(got.Segments[i].Data, p.Segments[i].Data) {
			t.Errorf("segment %d data mismatch", i)
		}
	}
}

func TestReadProgramErrors(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadProgram(strings.NewReader("XXXX12345678")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated segment body.
	var buf bytes.Buffer
	p := mustAssemble(t, "halt")
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadProgram(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated program accepted")
	}
	// Implausible segment count.
	bad := append([]byte{'N', 'B', 'X', '1'}, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadProgram(bytes.NewReader(bad)); err == nil {
		t.Error("implausible segment count accepted")
	}
}

func TestDisassemble(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x400
		addi r1, r0, 7
		lw r2, 4(r1)
		halt
	`)
	var buf bytes.Buffer
	if err := Disassemble(&buf, p.Segments[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"00000400:", "addi r1, r0, 7", "lw r2, 4(r1)", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q in:\n%s", want, out)
		}
	}
	// Invalid words render as .word directives.
	var buf2 bytes.Buffer
	if err := Disassemble(&buf2, Segment{Addr: 0, Data: []byte{0xFF, 0xFF, 0xFF, 0xFF}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), ".word") {
		t.Errorf("invalid word not rendered as .word: %s", buf2.String())
	}
}

// Package geometry describes 2-D interconnect cross-section geometry: wire
// outlines, coplanar bus layouts, and the panel discretisation consumed by
// the boundary-element capacitance extractor. The coordinate system places
// the ground plane (the layer below the inter-layer dielectric) at y = 0,
// with wires above it; all lengths are in meters.
package geometry

import (
	"fmt"
	"math"
)

// Point is a 2-D point in the bus cross-section plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Segment is a directed straight boundary element.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Split divides the segment into n equal sub-segments.
func (s Segment) Split(n int) []Segment {
	if n < 1 {
		n = 1
	}
	out := make([]Segment, n)
	dx := (s.B.X - s.A.X) / float64(n)
	dy := (s.B.Y - s.A.Y) / float64(n)
	for i := 0; i < n; i++ {
		out[i] = Segment{
			A: Point{s.A.X + float64(i)*dx, s.A.Y + float64(i)*dy},
			B: Point{s.A.X + float64(i+1)*dx, s.A.Y + float64(i+1)*dy},
		}
	}
	return out
}

// Conductor is a closed outline (a polygon given as its boundary segments)
// carrying a name for reporting.
type Conductor struct {
	Name     string
	Boundary []Segment
}

// Perimeter returns the total boundary length.
func (c Conductor) Perimeter() float64 {
	p := 0.0
	for _, s := range c.Boundary {
		p += s.Length()
	}
	return p
}

// RectConductor builds a rectangular conductor with lower-left corner at
// (x, y), width w and height h. The boundary is ordered counter-clockwise.
func RectConductor(name string, x, y, w, h float64) Conductor {
	ll := Point{x, y}
	lr := Point{x + w, y}
	ur := Point{x + w, y + h}
	ul := Point{x, y + h}
	return Conductor{
		Name: name,
		Boundary: []Segment{
			{ll, lr}, // bottom
			{lr, ur}, // right
			{ur, ul}, // top
			{ul, ll}, // left
		},
	}
}

// PolygonConductor builds a conductor from a closed list of vertices
// (the last vertex connects back to the first).
func PolygonConductor(name string, vertices []Point) (Conductor, error) {
	if len(vertices) < 3 {
		return Conductor{}, fmt.Errorf("geometry: polygon needs >= 3 vertices, got %d", len(vertices))
	}
	segs := make([]Segment, len(vertices))
	for i := range vertices {
		segs[i] = Segment{vertices[i], vertices[(i+1)%len(vertices)]}
	}
	return Conductor{Name: name, Boundary: segs}, nil
}

// CircleConductor approximates a circular conductor of radius r centred at
// (cx, cy) with an n-gon; used by extractor validation tests against the
// analytic cylinder-over-ground-plane capacitance.
func CircleConductor(name string, cx, cy, r float64, n int) Conductor {
	if n < 8 {
		n = 8
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{cx + r*math.Cos(a), cy + r*math.Sin(a)}
	}
	//nanolint:ignore droppederr a regular n-gon with n >= 8 distinct vertices always passes polygon validation
	c, _ := PolygonConductor(name, pts)
	return c
}

// BusLayout describes a coplanar bus cross-section: n identical wires of
// width W and thickness T, separated by spacing S, with their bottom faces
// at height H above the ground plane (the inter-layer dielectric height),
// embedded in a uniform dielectric of relative permittivity EpsRel. This is
// the geometry of Fig. 1(a) of the paper.
type BusLayout struct {
	Wires   int
	W, T, S float64
	H       float64
	EpsRel  float64
}

// Validate checks the layout parameters.
func (b BusLayout) Validate() error {
	switch {
	case b.Wires < 1:
		return fmt.Errorf("geometry: bus needs >= 1 wire, got %d", b.Wires)
	case b.W <= 0 || b.T <= 0 || b.S < 0 || b.H <= 0:
		return fmt.Errorf("geometry: non-positive bus dimensions (w=%g t=%g s=%g h=%g)", b.W, b.T, b.S, b.H)
	case b.EpsRel < 1:
		return fmt.Errorf("geometry: relative permittivity %g < 1", b.EpsRel)
	}
	return nil
}

// Pitch returns the wire pitch W + S.
func (b BusLayout) Pitch() float64 { return b.W + b.S }

// Conductors lays out the wires left to right, centred on x = 0.
func (b BusLayout) Conductors() []Conductor {
	total := float64(b.Wires)*b.W + float64(b.Wires-1)*b.S
	x0 := -total / 2
	out := make([]Conductor, b.Wires)
	for i := 0; i < b.Wires; i++ {
		x := x0 + float64(i)*b.Pitch()
		out[i] = RectConductor(fmt.Sprintf("w%d", i), x, b.H, b.W, b.T)
	}
	return out
}

// Panel is one boundary element produced by discretisation, tagged with the
// conductor it belongs to.
type Panel struct {
	Segment
	Conductor int
}

// Discretize splits every boundary segment of every conductor into panels
// no longer than maxLen, returning at least minPerSegment panels per
// segment. The result is the collocation mesh for the extractor.
func Discretize(conductors []Conductor, maxLen float64, minPerSegment int) []Panel {
	if minPerSegment < 1 {
		minPerSegment = 1
	}
	var panels []Panel
	for ci, c := range conductors {
		for _, seg := range c.Boundary {
			n := minPerSegment
			if maxLen > 0 {
				if need := int(math.Ceil(seg.Length() / maxLen)); need > n {
					n = need
				}
			}
			for _, sub := range seg.Split(n) {
				panels = append(panels, Panel{Segment: sub, Conductor: ci})
			}
		}
	}
	return panels
}

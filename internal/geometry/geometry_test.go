package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{0, 0}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %g, want 5", d)
	}
	if r := p.Sub(q); r != p {
		t.Errorf("Sub = %+v", r)
	}
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if s.Length() != 4 {
		t.Errorf("Length = %g", s.Length())
	}
	if m := s.Midpoint(); m != (Point{2, 0}) {
		t.Errorf("Midpoint = %+v", m)
	}
}

func TestSegmentSplit(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 2}}
	parts := s.Split(4)
	if len(parts) != 4 {
		t.Fatalf("%d parts", len(parts))
	}
	if parts[0].A != s.A || parts[3].B != s.B {
		t.Error("split endpoints wrong")
	}
	// Contiguity and equal lengths.
	total := 0.0
	for i, p := range parts {
		total += p.Length()
		if i > 0 && p.A != parts[i-1].B {
			t.Errorf("gap between parts %d and %d", i-1, i)
		}
	}
	if math.Abs(total-s.Length()) > 1e-12 {
		t.Errorf("split lengths sum to %g, want %g", total, s.Length())
	}
	// n < 1 clamps to 1.
	if len(s.Split(0)) != 1 {
		t.Error("Split(0) != 1 part")
	}
}

func TestSplitProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64, n uint8) bool {
		// Constrain to a physically meaningful range (the extractor
		// works in meters at micron scale); quick generates extreme
		// float64s whose lengths overflow.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e3)
		}
		ax, ay, bx, by = clamp(ax), clamp(ay), clamp(bx), clamp(by)
		s := Segment{Point{ax, ay}, Point{bx, by}}
		k := int(n%16) + 1
		parts := s.Split(k)
		if len(parts) != k {
			return false
		}
		sum := 0.0
		for _, p := range parts {
			sum += p.Length()
		}
		return math.Abs(sum-s.Length()) <= 1e-9*(1+s.Length())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRectConductor(t *testing.T) {
	c := RectConductor("w", 1, 2, 3, 4)
	if len(c.Boundary) != 4 {
		t.Fatalf("%d segments", len(c.Boundary))
	}
	if p := c.Perimeter(); math.Abs(p-14) > 1e-12 {
		t.Errorf("perimeter = %g, want 14", p)
	}
	// Closed boundary.
	for i, s := range c.Boundary {
		next := c.Boundary[(i+1)%4]
		if s.B != next.A {
			t.Errorf("boundary not closed at segment %d", i)
		}
	}
}

func TestPolygonConductor(t *testing.T) {
	if _, err := PolygonConductor("bad", []Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	tri, err := PolygonConductor("tri", []Point{{0, 0}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tri.Boundary) != 3 {
		t.Errorf("%d segments", len(tri.Boundary))
	}
	want := 2 + math.Sqrt2
	if math.Abs(tri.Perimeter()-want) > 1e-12 {
		t.Errorf("perimeter = %g, want %g", tri.Perimeter(), want)
	}
}

func TestCircleConductor(t *testing.T) {
	c := CircleConductor("c", 5, 7, 2, 128)
	if len(c.Boundary) != 128 {
		t.Fatalf("%d segments", len(c.Boundary))
	}
	// Perimeter approaches 2*pi*r.
	if math.Abs(c.Perimeter()-2*math.Pi*2) > 0.01 {
		t.Errorf("perimeter = %g, want ~%g", c.Perimeter(), 2*math.Pi*2)
	}
	// Minimum vertex count enforced.
	if got := len(CircleConductor("c", 0, 0, 1, 3).Boundary); got != 8 {
		t.Errorf("min polygon = %d segments, want 8", got)
	}
}

func TestBusLayoutConductors(t *testing.T) {
	b := BusLayout{Wires: 3, W: 2, T: 4, S: 1, H: 10, EpsRel: 2}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Pitch() != 3 {
		t.Errorf("Pitch = %g", b.Pitch())
	}
	cs := b.Conductors()
	if len(cs) != 3 {
		t.Fatalf("%d conductors", len(cs))
	}
	// Centred on x=0: total width 3*2+2*1 = 8, so first wire starts at -4.
	first := cs[0].Boundary[0].A
	if first.X != -4 || first.Y != 10 {
		t.Errorf("first corner = %+v, want (-4, 10)", first)
	}
	// Spacing between wires: wire 0 right edge at -2, wire 1 left at -1.
	w1 := cs[1].Boundary[0].A
	if w1.X != -1 {
		t.Errorf("wire 1 starts at %g, want -1", w1.X)
	}
}

func TestDiscretize(t *testing.T) {
	c := RectConductor("w", 0, 1, 2, 2)
	panels := Discretize([]Conductor{c}, 0.5, 1)
	// Each 2-long edge at maxLen 0.5 -> 4 panels; 4 edges -> 16.
	if len(panels) != 16 {
		t.Fatalf("%d panels, want 16", len(panels))
	}
	for _, p := range panels {
		if p.Conductor != 0 {
			t.Error("wrong conductor tag")
		}
		if p.Length() > 0.5+1e-12 {
			t.Errorf("panel length %g exceeds max", p.Length())
		}
	}
	// minPerSegment dominates when maxLen is large.
	panels = Discretize([]Conductor{c}, 100, 3)
	if len(panels) != 12 {
		t.Errorf("%d panels, want 12", len(panels))
	}
	// Zero/negative minPerSegment clamps to 1.
	panels = Discretize([]Conductor{c}, 0, 0)
	if len(panels) != 4 {
		t.Errorf("%d panels, want 4", len(panels))
	}
}

package cache

import (
	"math/rand"
	"testing"
)

func mustCache(t *testing.T, cfg Config, next *Cache) *Cache {
	t.Helper()
	c, err := New(cfg, next)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func smallCfg(writeBack bool) Config {
	return Config{Name: "test", Size: 256, Assoc: 2, BlockSize: 16, WriteBack: writeBack}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, Assoc: 1, BlockSize: 16},
		{Size: 256, Assoc: 2, BlockSize: 15},
		{Size: 250, Assoc: 2, BlockSize: 16},
		{Size: 96, Assoc: 1, BlockSize: 16}, // 6 sets, not a power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	il1, dl1, l2 := PaperConfig()
	for _, cfg := range []Config{il1, dl1, l2} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("paper config %s rejected: %v", cfg.Name, err)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, smallCfg(false), nil)
	if c.Read(0x100) {
		t.Error("cold read hit")
	}
	if !c.Read(0x100) {
		t.Error("warm read missed")
	}
	if !c.Read(0x10C) {
		t.Error("same-block read missed")
	}
	s := c.Stats()
	if s.Reads != 3 || s.ReadMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 16B blocks, 256B cache -> 8 sets. Addresses mapping to set 0:
	// 0x000, 0x080, 0x100 (increments of sets*block = 128).
	c := mustCache(t, smallCfg(false), nil)
	c.Read(0x000)
	c.Read(0x080)
	c.Read(0x000) // touch 0x000: 0x080 becomes LRU
	c.Read(0x100) // evicts 0x080
	if !c.Read(0x000) {
		t.Error("MRU line evicted")
	}
	if c.Read(0x080) {
		t.Error("LRU line survived")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	var fwd []uint32
	c := mustCache(t, smallCfg(false), nil)
	c.MissHook = func(ba uint32, write bool) {
		if write {
			fwd = append(fwd, ba)
		}
	}
	// Write miss: no allocation, write forwarded.
	c.Write(0x200)
	if len(fwd) != 1 {
		t.Fatalf("write miss forwarded %d writes, want 1", len(fwd))
	}
	if c.Read(0x200) {
		t.Error("no-write-allocate allocated")
	}
	// Now resident; write hit also forwards (write-through).
	c.Write(0x200)
	if len(fwd) != 2 {
		t.Errorf("write hit forwarded %d writes total, want 2", len(fwd))
	}
}

func TestWriteBackAllocatesAndWritesBackDirty(t *testing.T) {
	var writes []uint32
	c := mustCache(t, smallCfg(true), nil)
	c.MissHook = func(ba uint32, write bool) {
		if write {
			writes = append(writes, ba)
		}
	}
	c.Write(0x000) // allocate, dirty
	if len(writes) != 0 {
		t.Fatalf("write-back forwarded a write on allocation")
	}
	if !c.Read(0x000) {
		t.Error("write-allocate did not allocate")
	}
	// Evict 0x000's set: fill two more conflicting blocks.
	c.Read(0x080)
	c.Read(0x100)
	if len(writes) != 1 || writes[0] != 0x000 {
		t.Errorf("dirty eviction writes = %#v, want [0x000]", writes)
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Dirty victim in a nonzero set must write back its own address.
	var writes []uint32
	c := mustCache(t, smallCfg(true), nil)
	c.MissHook = func(ba uint32, write bool) {
		if write {
			writes = append(writes, ba)
		}
	}
	const setStride = 128 // sets(8) * block(16)
	addr := uint32(0x30)  // set 3
	c.Write(addr)
	c.Read(addr + setStride)
	c.Read(addr + 2*setStride)
	if len(writes) != 1 || writes[0] != addr {
		t.Errorf("victim writeback = %#v, want [%#x]", writes, addr)
	}
}

func TestHierarchyInclusionTraffic(t *testing.T) {
	h, err := NewPaperHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// A fetch stream larger than I-L1 but within L2: L2 read misses stop
	// growing on the second pass, I-L1 keeps missing.
	for pass := 0; pass < 2; pass++ {
		for a := uint32(0); a < 64<<10; a += 4 {
			h.Fetch(a)
		}
	}
	il1 := h.IL1.Stats()
	l2 := h.L2.Stats()
	if il1.ReadMisses == 0 || l2.ReadMisses == 0 {
		t.Fatal("no misses on a 64KB stream")
	}
	// First pass: 64KB/32B = 2048 I-L1 misses; second pass same (stream
	// exceeds 16KB I-L1). L2 (256KB) holds it all: misses only from the
	// first pass.
	if il1.ReadMisses != 2*2048 {
		t.Errorf("I-L1 misses = %d, want 4096", il1.ReadMisses)
	}
	if l2.ReadMisses != 2048/2 {
		// L2 blocks are 64B: 1024 block fetches, all cold, second pass
		// hits.
		t.Errorf("L2 misses = %d, want 1024", l2.ReadMisses)
	}
	if got := l2.Reads; got != 4096 {
		t.Errorf("L2 reads = %d, want 4096 (one per I-L1 miss)", got)
	}
}

func TestMissRateBounds(t *testing.T) {
	c := mustCache(t, smallCfg(false), nil)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a := uint32(rng.Intn(1 << 14))
		if rng.Intn(4) == 0 {
			c.Write(a)
		} else {
			c.Read(a)
		}
	}
	s := c.Stats()
	mr := s.MissRate()
	if mr <= 0 || mr > 1 {
		t.Errorf("miss rate = %g out of (0,1]", mr)
	}
	if s.Accesses() != 10000 {
		t.Errorf("accesses = %d", s.Accesses())
	}
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("ResetStats did not clear")
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate not 0")
	}
}

// Property: a tiny direct-mapped cache agrees with a brute-force model.
func TestAgainstReferenceModel(t *testing.T) {
	cfg := Config{Name: "dm", Size: 64, Assoc: 1, BlockSize: 16}
	c := mustCache(t, cfg, nil)
	ref := map[uint32]uint32{} // set -> block address
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		addr := uint32(rng.Intn(1 << 10))
		block := addr &^ 15
		set := (addr >> 4) & 3
		wantHit := ref[set] == block+1 // +1 marks validity
		gotHit := c.Read(addr)
		if gotHit != wantHit {
			t.Fatalf("access %d addr %#x: hit=%v want %v", i, addr, gotHit, wantHit)
		}
		ref[set] = block + 1
	}
}

// Package cache implements the set-associative cache hierarchy of the
// paper's simulated memory system (Sec. 5.1): split 16 KB 4-way 32 B-block
// write-through L1 instruction and data caches over a unified 256 KB 4-way
// 64 B-block write-back L2. The hierarchy is functional (hit/miss state and
// statistics, no timing): the monitored processor-to-L1 address buses do
// not depend on cache latency, and the L1-to-L2 bus study (an extension
// experiment) needs only the miss address stream.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in reports ("I-L1", ...).
	Name string
	// Size is the capacity in bytes.
	Size int
	// Assoc is the set associativity.
	Assoc int
	// BlockSize is the line size in bytes (a power of two).
	BlockSize int
	// WriteBack selects write-back with write-allocate; false selects
	// write-through with no-write-allocate (the paper's L1 policy).
	WriteBack bool
}

// Validate checks the configuration's invariants.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.Assoc <= 0 || c.BlockSize <= 0:
		return fmt.Errorf("cache: %s: non-positive parameter", c.Name)
	case c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("cache: %s: block size %d not a power of two", c.Name, c.BlockSize)
	case c.Size%(c.Assoc*c.BlockSize) != 0:
		return fmt.Errorf("cache: %s: size %d not divisible by assoc*block", c.Name, c.Size)
	}
	sets := c.Size / (c.Assoc * c.BlockSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates per-cache access counts.
type Stats struct {
	Reads, ReadMisses   uint64
	Writes, WriteMisses uint64
	Writebacks          uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	// lru is a per-set use counter: higher is more recent.
	lru uint64
}

// Cache is one level of set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	setMask  uint32
	lines    []line // sets x assoc
	useClock uint64
	stats    Stats
	// next is the backing level; nil means memory (infinite, always
	// hits).
	next *Cache
	// MissHook, when non-nil, observes every block address sent to the
	// next level (the L1→L2 address bus).
	MissHook func(blockAddr uint32, write bool)
}

// New builds a cache over the optional next level.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(bits.TrailingZeros32(uint32(cfg.BlockSize))),
		setMask:  uint32(sets - 1),
		lines:    make([]line, sets*cfg.Assoc),
		next:     next,
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (e.g. after warm-up).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex and tagOf split an address into its set index and tag.
func (c *Cache) setIndex(addr uint32) uint32 { return (addr >> c.setShift) & c.setMask }

func (c *Cache) tagOf(addr uint32) uint32 {
	return addr >> c.setShift >> uint(bits.TrailingZeros32(uint32(c.sets)))
}

// set returns the line slice of addr's set.
func (c *Cache) set(addr uint32) []line {
	base := int(c.setIndex(addr)) * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

// lookup finds addr's line within its set; returns nil on miss.
func (c *Cache) lookup(addr uint32) *line {
	set := c.set(addr)
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim picks the LRU line of addr's set.
func (c *Cache) victim(addr uint32) *line {
	set := c.set(addr)
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

func (c *Cache) touch(l *line) {
	c.useClock++
	l.lru = c.useClock
}

// blockAddr masks addr to its block base.
func (c *Cache) blockAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.BlockSize) - 1)
}

// Read performs a read access; it returns true on hit.
func (c *Cache) Read(addr uint32) bool {
	c.stats.Reads++
	if l := c.lookup(addr); l != nil {
		c.touch(l)
		return true
	}
	c.stats.ReadMisses++
	c.fill(addr)
	return false
}

// Write performs a write access; it returns true on hit.
func (c *Cache) Write(addr uint32) bool {
	c.stats.Writes++
	if l := c.lookup(addr); l != nil {
		c.touch(l)
		if c.cfg.WriteBack {
			l.dirty = true
		} else {
			// Write-through: propagate the word's block address.
			c.forward(addr, true)
		}
		return true
	}
	c.stats.WriteMisses++
	if c.cfg.WriteBack {
		// Write-allocate.
		l := c.fill(addr)
		l.dirty = true
	} else {
		// No-write-allocate: just send the write on.
		c.forward(addr, true)
	}
	return false
}

// fill allocates addr's block, evicting (and writing back) as needed, and
// fetches the block from the next level.
func (c *Cache) fill(addr uint32) *line {
	v := c.victim(addr)
	if v.valid && v.dirty {
		c.stats.Writebacks++
		victimAddr := (v.tag<<uint(bits.TrailingZeros32(uint32(c.sets))) | c.setIndex(addr)) << c.setShift
		c.forward(victimAddr, true)
	}
	c.forward(addr, false) // block fetch from next level
	v.valid = true
	v.dirty = false
	v.tag = c.tagOf(addr)
	c.touch(v)
	return v
}

// forward sends an access to the next level (read fetch or write/writeback)
// and notifies the MissHook.
func (c *Cache) forward(addr uint32, write bool) {
	ba := c.blockAddr(addr)
	if c.MissHook != nil {
		c.MissHook(ba, write)
	}
	if c.next == nil {
		return
	}
	if write {
		c.next.Write(ba)
	} else {
		c.next.Read(ba)
	}
}

// Hierarchy is the paper's two-level memory system.
type Hierarchy struct {
	IL1, DL1, L2 *Cache
}

// PaperConfig returns the Sec. 5.1 configuration: split 16 KB 4-way 32 B
// write-through L1s and a unified 256 KB 4-way 64 B write-back L2.
func PaperConfig() (il1, dl1, l2 Config) {
	il1 = Config{Name: "I-L1", Size: 16 << 10, Assoc: 4, BlockSize: 32}
	dl1 = Config{Name: "D-L1", Size: 16 << 10, Assoc: 4, BlockSize: 32}
	l2 = Config{Name: "L2", Size: 256 << 10, Assoc: 4, BlockSize: 64, WriteBack: true}
	return il1, dl1, l2
}

// NewPaperHierarchy builds the paper's hierarchy.
func NewPaperHierarchy() (*Hierarchy, error) {
	il1Cfg, dl1Cfg, l2Cfg := PaperConfig()
	l2, err := New(l2Cfg, nil)
	if err != nil {
		return nil, err
	}
	il1, err := New(il1Cfg, l2)
	if err != nil {
		return nil, err
	}
	dl1, err := New(dl1Cfg, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{IL1: il1, DL1: dl1, L2: l2}, nil
}

// Fetch performs an instruction fetch through the hierarchy.
func (h *Hierarchy) Fetch(addr uint32) { h.IL1.Read(addr) }

// Load performs a data load.
func (h *Hierarchy) Load(addr uint32) { h.DL1.Read(addr) }

// Store performs a data store.
func (h *Hierarchy) Store(addr uint32) { h.DL1.Write(addr) }

// Package repeater implements the delay-optimal repeater insertion model of
// Sec. 3.1.1 of the paper (after Naeemi/Venkatesan/Meindl): the size h and
// count k of repeaters that minimise delay on a long global line, and the
// total repeater capacitance Crep they add to the line — which the energy
// model charges on every self transition.
package repeater

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// Inverter describes the minimum-sized inverter of a technology: its output
// resistance R0 (ohms) and input capacitance C0 (farads).
type Inverter struct {
	R0 float64
	C0 float64
}

// DefaultInverter returns a representative minimum inverter for the node.
// R0 is approximately constant across nodes (transistor width scales with
// feature size while resistivity per square stays roughly fixed); C0
// scales with feature size. Only the reported h and k depend on these; the
// energy-relevant Crep = h*k*C0 cancels R0 and C0 entirely (see Insert).
func DefaultInverter(node itrs.Node) Inverter {
	return Inverter{
		R0: 9.5 * units.Kilo,
		C0: 2.0 * units.Femto * float64(node.FeatureNm) / 130.0,
	}
}

// Plan is the result of repeater insertion on one wire.
type Plan struct {
	// SizeH is the repeater size h in multiples of the minimum inverter
	// (Eq. 1).
	SizeH float64
	// CountK is the (real-valued) optimal number of repeaters (Eq. 2).
	CountK float64
	// Crep is the total repeater capacitance added to the line in farads
	// (absolute, for the given length): Crep = h*k*C0 = sqrt(0.4/0.7)*Cint.
	Crep float64
	// WireDelay is the Elmore-style 50% delay estimate of the repeated
	// line in seconds: k segments, each 0.7*(R0/h)*(Cseg + h*C0) +
	// 0.4*Rseg*Cseg + 0.7*Rseg*h*C0.
	WireDelay float64
}

// CrepFactor is Crep/Cint for delay-optimal insertion: sqrt(0.4/0.7). The
// paper rounds this to 0.75 ("effectively, Crep = 0.75 x Cint").
var CrepFactor = math.Sqrt(units.ElmoreDistributed / units.ElmoreLumped)

// Insert computes the delay-optimal repeater plan for a line of the given
// length (meters) on the node, using the inverter inv.
//
// Cint is the total per-unit-length wire capacitance cline + 2*cinter
// (Sec. 3.1.1) and Rint the total wire resistance; per Eqs. 1-2:
//
//	h = sqrt(R0*Cint / (C0*Rint))
//	k = sqrt(0.4*Rint*Cint / (0.7*C0*R0))
func Insert(node itrs.Node, length float64, inv Inverter) (Plan, error) {
	if length <= 0 {
		return Plan{}, fmt.Errorf("repeater: non-positive length %g", length)
	}
	if inv.R0 <= 0 || inv.C0 <= 0 {
		return Plan{}, fmt.Errorf("repeater: non-positive inverter parameters R0=%g C0=%g", inv.R0, inv.C0)
	}
	cint := node.CTotal() * length
	rint := node.RWire * length
	h := math.Sqrt(inv.R0 * cint / (inv.C0 * rint))
	k := math.Sqrt(units.ElmoreDistributed * rint * cint / (units.ElmoreLumped * inv.C0 * inv.R0))
	crep := h * k * inv.C0

	// Per-segment Elmore delay for k equal segments driven by h-sized
	// repeaters.
	segs := math.Max(1, math.Round(k))
	cseg := cint / segs
	rseg := rint / segs
	segDelay := units.ElmoreLumped*(inv.R0/h)*(cseg+h*inv.C0) + units.ElmoreDistributed*rseg*cseg + units.ElmoreLumped*rseg*h*inv.C0
	return Plan{
		SizeH:     h,
		CountK:    k,
		Crep:      crep,
		WireDelay: segs * segDelay,
	}, nil
}

// InsertDefault runs Insert with the node's default minimum inverter.
func InsertDefault(node itrs.Node, length float64) (Plan, error) {
	return Insert(node, length, DefaultInverter(node))
}

// SweepPoint is one setting of the repeater-count sweep.
type SweepPoint struct {
	// Scale is the repeater count relative to the delay-optimal k.
	Scale float64
	// CountK is the (real-valued) repeater count used.
	CountK float64
	// Crep is the total repeater capacitance (F) — the energy cost the
	// bus model charges on every self transition.
	Crep float64
	// WireDelay is the Elmore 50% delay (s).
	WireDelay float64
}

// Sweep evaluates the energy-delay tradeoff of under- and over-repeating a
// line: the paper inserts delay-optimal repeaters (Eqs. 1-2), which
// maximise speed but carry the Crep energy cost its Sec. 1 lists among the
// reasons global-bus energy is rising. Each point keeps the optimal size h
// and scales the count k. Scales must be positive; a scale of 1 is the
// paper's operating point.
func Sweep(node itrs.Node, length float64, inv Inverter, scales []float64) ([]SweepPoint, error) {
	opt, err := Insert(node, length, inv)
	if err != nil {
		return nil, err
	}
	cint := node.CTotal() * length
	rint := node.RWire * length
	out := make([]SweepPoint, 0, len(scales))
	for _, sc := range scales {
		if sc <= 0 {
			return nil, fmt.Errorf("repeater: non-positive sweep scale %g", sc)
		}
		k := opt.CountK * sc
		segs := math.Max(1, math.Round(k))
		cseg := cint / segs
		rseg := rint / segs
		segDelay := units.ElmoreLumped*(inv.R0/opt.SizeH)*(cseg+opt.SizeH*inv.C0) +
			units.ElmoreDistributed*rseg*cseg + units.ElmoreLumped*rseg*opt.SizeH*inv.C0
		out = append(out, SweepPoint{
			Scale:     sc,
			CountK:    k,
			Crep:      opt.SizeH * k * inv.C0,
			WireDelay: segs * segDelay,
		})
	}
	return out, nil
}

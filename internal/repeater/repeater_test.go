package repeater

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
)

func TestCrepIsPointSevenFiveCint(t *testing.T) {
	// The paper: "effectively, Crep = 0.75 x Cint". The exact factor is
	// sqrt(0.4/0.7) ~ 0.756, independent of R0/C0 and length.
	for _, node := range itrs.Nodes() {
		for _, length := range []float64{0.005, 0.01, 0.02} {
			plan, err := InsertDefault(node, length)
			if err != nil {
				t.Fatalf("%s: %v", node.Name, err)
			}
			cint := node.CTotal() * length
			ratio := plan.Crep / cint
			if math.Abs(ratio-math.Sqrt(0.4/0.7)) > 1e-12 {
				t.Errorf("%s L=%g: Crep/Cint = %.6f, want %.6f", node.Name, length, ratio, math.Sqrt(0.4/0.7))
			}
			if math.Abs(ratio-0.75) > 0.01 {
				t.Errorf("%s: Crep/Cint = %.4f, want ~0.75 per the paper", node.Name, ratio)
			}
		}
	}
}

func TestRepeaterCountGrowsWithLength(t *testing.T) {
	p1, err := InsertDefault(itrs.N130, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := InsertDefault(itrs.N130, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CountK <= p1.CountK {
		t.Errorf("k(20mm)=%g <= k(5mm)=%g", p2.CountK, p1.CountK)
	}
	// k scales linearly with length (both Rint and Cint are linear).
	if math.Abs(p2.CountK/p1.CountK-4) > 1e-9 {
		t.Errorf("k ratio = %g, want 4", p2.CountK/p1.CountK)
	}
	// h is length-independent.
	if math.Abs(p2.SizeH-p1.SizeH) > 1e-9*p1.SizeH {
		t.Errorf("h changed with length: %g vs %g", p1.SizeH, p2.SizeH)
	}
}

func TestRepeaterCountGrowsWithScaling(t *testing.T) {
	// Wire RC per length worsens with scaling, so a 10 mm line needs more
	// repeaters at 45 nm than at 130 nm.
	p130, err := InsertDefault(itrs.N130, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	p45, err := InsertDefault(itrs.N45, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p45.CountK <= p130.CountK {
		t.Errorf("k(45nm)=%g <= k(130nm)=%g", p45.CountK, p130.CountK)
	}
}

func TestDelayPositiveAndOrdered(t *testing.T) {
	for _, node := range itrs.Nodes() {
		p, err := InsertDefault(node, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if p.WireDelay <= 0 {
			t.Errorf("%s: delay %g <= 0", node.Name, p.WireDelay)
		}
		if p.SizeH <= 1 {
			t.Errorf("%s: repeater size h = %g, want > 1 (larger than minimum inverter)", node.Name, p.SizeH)
		}
		if p.CountK < 1 {
			t.Errorf("%s: repeater count k = %g, want >= 1 for a 10mm global line", node.Name, p.CountK)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	if _, err := InsertDefault(itrs.N130, 0); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Insert(itrs.N130, 0.01, Inverter{R0: 0, C0: 1e-15}); err == nil {
		t.Error("zero R0 accepted")
	}
	if _, err := Insert(itrs.N130, 0.01, Inverter{R0: 1e3, C0: 0}); err == nil {
		t.Error("zero C0 accepted")
	}
}

func TestSweepTradeoff(t *testing.T) {
	node := itrs.N130
	inv := DefaultInverter(node)
	points, err := Sweep(node, 0.01, inv, []float64{0.25, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Crep grows linearly with the count scale.
	if math.Abs(points[3].Crep/points[0].Crep-8) > 1e-9 {
		t.Errorf("Crep ratio = %g, want 8", points[3].Crep/points[0].Crep)
	}
	// Scale 1 reproduces the delay-optimal plan.
	opt, err := Insert(node, 0.01, inv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(points[2].WireDelay-opt.WireDelay) > 1e-15 {
		t.Errorf("scale-1 delay %g != optimal %g", points[2].WireDelay, opt.WireDelay)
	}
	if math.Abs(points[2].Crep-opt.Crep) > 1e-9*opt.Crep {
		t.Errorf("scale-1 Crep %g != optimal %g", points[2].Crep, opt.Crep)
	}
	// Under-repeating is slower than optimal (the RC term dominates);
	// halving the repeaters must cost delay while saving half the Crep.
	if points[1].WireDelay <= points[2].WireDelay {
		t.Errorf("half-repeated delay %g not above optimal %g",
			points[1].WireDelay, points[2].WireDelay)
	}
	if _, err := Sweep(node, 0.01, inv, []float64{0}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestEquation1And2Explicit(t *testing.T) {
	// Verify h and k against a hand-computed instance of Eqs. 1-2.
	node := itrs.N130
	inv := Inverter{R0: 10e3, C0: 2e-15}
	length := 0.01
	plan, err := Insert(node, length, inv)
	if err != nil {
		t.Fatal(err)
	}
	cint := node.CTotal() * length
	rint := node.RWire * length
	wantH := math.Sqrt(inv.R0 * cint / (inv.C0 * rint))
	wantK := math.Sqrt(0.4 * rint * cint / (0.7 * inv.C0 * inv.R0))
	if math.Abs(plan.SizeH-wantH) > 1e-9*wantH {
		t.Errorf("h = %g, want %g", plan.SizeH, wantH)
	}
	if math.Abs(plan.CountK-wantK) > 1e-9*wantK {
		t.Errorf("k = %g, want %g", plan.CountK, wantK)
	}
}

package workload

import (
	"testing"

	"nanobus/internal/cache"
	"nanobus/internal/trace"
)

func TestAllBenchmarksAssemble(t *testing.T) {
	bs := All()
	if len(bs) != 8 {
		t.Fatalf("%d benchmarks, want 8", len(bs))
	}
	for _, b := range bs {
		if _, err := b.Program(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestRegistryAndOrder(t *testing.T) {
	names := Names()
	// Integer programs first.
	wantInt := map[string]bool{"eon": true, "crafty": true, "twolf": true, "mcf": true}
	for i, n := range names[:4] {
		if !wantInt[n] {
			t.Errorf("position %d is %s, want an integer benchmark", i, n)
		}
	}
	if _, ok := ByName("swim"); !ok {
		t.Error("swim not registered")
	}
	if _, ok := ByName("gcc"); ok {
		t.Error("unknown benchmark resolved")
	}
	e, s := PaperPair()
	if e.Name != "eon" || s.Name != "swim" {
		t.Errorf("PaperPair = %s, %s", e.Name, s.Name)
	}
}

// runCycles pulls n cycles and returns the collected stats.
func runCycles(t *testing.T, b Benchmark, skip, n uint64) (ia, da trace.StreamStats) {
	t.Helper()
	src, err := b.NewWarmSource(skip)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	ia, da, got := trace.CollectStats(src, n)
	if got != n {
		t.Fatalf("%s: source ended after %d of %d cycles", b.Name, got, n)
	}
	return ia, da
}

func TestBenchmarksRunAndCharacter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle workload characterisation")
	}
	// Duty-factor envelopes per benchmark: [min, max] fraction of cycles
	// with a data access in steady state.
	type envelope struct {
		skip    uint64
		dutyMin float64
		dutyMax float64
	}
	cases := map[string]envelope{
		"eon":    {skip: 600_000, dutyMin: 0.15, dutyMax: 0.5},
		"crafty": {skip: 100_000, dutyMin: 0.02, dutyMax: 0.25},
		"twolf":  {skip: 800_000, dutyMin: 0.1, dutyMax: 0.5},
		"mcf":    {skip: 3_000_000, dutyMin: 0.25, dutyMax: 0.6},
		"swim":   {skip: 4_000_000, dutyMin: 0.3, dutyMax: 0.6},
		"applu":  {skip: 9_500_000, dutyMin: 0.25, dutyMax: 0.6},
		"art":    {skip: 3_000_000, dutyMin: 0.2, dutyMax: 0.6},
		"ammp":   {skip: 4_000_000, dutyMin: 0.25, dutyMax: 0.6},
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			env, ok := cases[b.Name]
			if !ok {
				t.Fatalf("no envelope for %s", b.Name)
			}
			ia, da := runCycles(t, b, env.skip, 400_000)
			if d := da.DutyFactor(); d < env.dutyMin || d > env.dutyMax {
				t.Errorf("DA duty = %.3f, want in [%.2f, %.2f]", d, env.dutyMin, env.dutyMax)
			}
			// The paper's core observation: consecutive IA words are
			// close — BI should almost never trigger.
			if f := ia.FracAboveHalf(); f > 0.02 {
				t.Errorf("IA frac above half-width = %.4f, want ~0", f)
			}
			if ia.DutyFactor() != 1 {
				t.Errorf("IA duty = %.3f, want 1 (fetch every cycle)", ia.DutyFactor())
			}
		})
	}
}

func TestMcfMissesInL2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle cache characterisation")
	}
	// mcf's 4MB ring must thrash the 256KB L2; swim streams, so it also
	// misses; crafty's tables are hot and must mostly hit.
	missRates := map[string]float64{}
	for _, name := range []string{"mcf", "crafty"} {
		b, _ := ByName(name)
		src, err := b.NewWarmSource(3_500_000)
		if err != nil {
			t.Fatal(err)
		}
		h, err := cache.NewPaperHierarchy()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500_000; i++ {
			c, ok := src.Next()
			if !ok {
				t.Fatalf("%s ended early", name)
			}
			h.Fetch(c.IAddr)
			if c.DValid {
				if c.DStore {
					h.Store(c.DAddr)
				} else {
					h.Load(c.DAddr)
				}
			}
		}
		s := h.DL1.Stats()
		missRates[name] = float64(s.ReadMisses) / float64(s.Reads)
	}
	if missRates["mcf"] < 0.4 {
		t.Errorf("mcf D-L1 read miss rate = %.3f, want > 0.4 (4MB ring vs 16KB cache)", missRates["mcf"])
	}
	if missRates["crafty"] > 0.05 {
		t.Errorf("crafty D-L1 read miss rate = %.3f, want < 0.05 (hot tables)", missRates["crafty"])
	}
}

func TestExtraBenchmarks(t *testing.T) {
	all := AllWithExtras()
	if len(all) != 10 {
		t.Fatalf("%d benchmarks with extras, want 10", len(all))
	}
	// All() keeps the paper's exact set of eight.
	if len(All()) != 8 {
		t.Fatalf("All() = %d, want the paper's 8", len(All()))
	}
	for _, name := range []string{"gzip", "equake"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if !b.Extra {
			t.Errorf("%s not marked Extra", name)
		}
		if _, err := b.Program(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Extras sort after the paper set.
	if all[8].Extra != true || all[9].Extra != true {
		t.Error("extras not sorted last")
	}
}

func TestExtraBenchmarksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle workload characterisation")
	}
	type envelope struct {
		skip             uint64
		dutyMin, dutyMax float64
	}
	cases := map[string]envelope{
		"gzip":   {skip: 2_500_000, dutyMin: 0.15, dutyMax: 0.5},
		"equake": {skip: 4_000_000, dutyMin: 0.2, dutyMax: 0.6},
	}
	for name, env := range cases {
		b, _ := ByName(name)
		ia, da := runCycles(t, b, env.skip, 300_000)
		if d := da.DutyFactor(); d < env.dutyMin || d > env.dutyMax {
			t.Errorf("%s: DA duty = %.3f, want in [%.2f, %.2f]", name, d, env.dutyMin, env.dutyMax)
		}
		if f := ia.FracAboveHalf(); f > 0.02 {
			t.Errorf("%s: IA frac above half = %.4f", name, f)
		}
	}
}

func TestWarmSourcePropagatesError(t *testing.T) {
	bad := Benchmark{Name: "bad", Class: Int, Source: "bogus instruction"}
	if _, err := bad.NewSource(); err == nil {
		t.Error("unassemblable benchmark accepted")
	}
}

func TestStackAndHeapRegionsAppear(t *testing.T) {
	if testing.Short() {
		t.Skip("workload characterisation")
	}
	// eon must touch both the heap (scene) and the stack region; the
	// region switches drive the paper's high-order-bit observation.
	b, _ := ByName("eon")
	src, err := b.NewWarmSource(600_000)
	if err != nil {
		t.Fatal(err)
	}
	heap, stack := 0, 0
	for i := 0; i < 200_000; i++ {
		c, ok := src.Next()
		if !ok {
			t.Fatal("eon ended early")
		}
		if !c.DValid {
			continue
		}
		switch {
		case c.DAddr >= 0x1000_0000 && c.DAddr < 0x3000_0000:
			heap++
		case c.DAddr >= 0x7000_0000:
			stack++
		}
	}
	if heap == 0 || stack == 0 {
		t.Errorf("eon regions: heap=%d stack=%d, want both nonzero", heap, stack)
	}
}

// Package workload provides the eight synthetic SPEC CPU2000-like
// benchmarks that substitute for the paper's SHADE-traced eon, crafty,
// twolf, mcf (integer) and applu, swim, art, ammp (floating-point)
// programs — see DESIGN.md for the substitution argument. Each benchmark
// is a real NB32 assembly program executed instruction-by-instruction by
// the CPU simulator; what matters for the bus study is that the resulting
// instruction- and data-address streams have the right structure
// (sequential fetch runs broken by branches and calls, strided vs.
// pointer-chasing data accesses, realistic idle gaps on the DA bus, low
// consecutive-cycle Hamming distances).
//
// All programs initialise their data and then enter an infinite steady
// loop, so a trace window of any length can be drawn after a warm-up skip,
// like the paper's 500M-instruction skip.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"nanobus/internal/cpu"
	"nanobus/internal/isa"
	"nanobus/internal/trace"
)

// Class labels a benchmark integer or floating-point.
type Class string

// Benchmark classes.
const (
	Int Class = "int"
	FP  Class = "fp"
)

// Benchmark is one synthetic program.
type Benchmark struct {
	// Name matches the SPEC program it imitates ("eon", "swim", ...).
	Name string
	// Class is Int or FP.
	Class Class
	// Description summarises the imitated behaviour.
	Description string
	// WarmupCycles is the recommended warm-up skip: enough to clear the
	// program's data-initialisation phase and settle into the steady
	// loop (the paper skips the first 500M instructions; these scaled
	// skips serve the same purpose for the synthetic programs).
	WarmupCycles uint64
	// Extra marks benchmarks beyond the paper's eight (they are excluded
	// from All and the default experiment sets, but resolvable by name).
	Extra bool
	// Source is the NB32 assembly text.
	Source string
}

// progCache retains assembled programs keyed by source text, so sweeps
// that open a benchmark many times (every trace window, every session)
// pay the two-pass assembly once. Keying by source — not name — keeps
// hand-built Benchmark values with reused names correct.
var progCache sync.Map // source string -> *isa.Program

// Program assembles the benchmark. The returned program is cached and
// shared across calls: treat it as read-only (cpu.LoadProgram copies the
// segments into a fresh Memory, so normal execution never mutates it).
func (b Benchmark) Program() (*isa.Program, error) {
	if p, ok := progCache.Load(b.Source); ok {
		return p.(*isa.Program), nil
	}
	p, err := isa.Assemble(b.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	// Concurrent assemblies of the same source race benignly: Assemble is
	// deterministic, so whichever result lands is equivalent.
	progCache.Store(b.Source, p)
	return p, nil
}

// NewSource assembles the benchmark, loads it into a fresh CPU, and returns
// an endless trace source over its execution.
func (b Benchmark) NewSource() (*cpu.TraceSource, error) {
	p, err := b.Program()
	if err != nil {
		return nil, err
	}
	c := cpu.LoadProgram(p)
	return cpu.NewTraceSource(c, p.Entry), nil
}

// NewWarmSource returns a trace source with the first skip cycles already
// consumed (the paper skips the first 500M instructions; scaled runs use a
// smaller skip that still clears the init phase).
func (b Benchmark) NewWarmSource(skip uint64) (trace.Source, error) {
	src, err := b.NewSource()
	if err != nil {
		return nil, err
	}
	warmed := trace.Skip(src, skip)
	if src.Err() != nil {
		return nil, fmt.Errorf("workload %s: warm-up: %w", b.Name, src.Err())
	}
	return warmed, nil
}

var registry = map[string]Benchmark{}

func register(b Benchmark) Benchmark {
	if _, dup := registry[b.Name]; dup {
		// A duplicate name is a compile-time mistake in this package's own
		// benchmark table, detectable by any test that imports it; there is
		// no caller that could handle an error at package init.
		panic("workload: duplicate benchmark " + b.Name) //nanolint:ignore libpanic init-time table construction; a duplicate entry is unreachable for callers and must fail the build
	}
	registry[b.Name] = b
	return b
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// All returns the paper's eight benchmarks, integer programs first, each
// class alphabetical (the paper's set: eon, crafty, twolf, mcf then applu,
// swim, art, ammp — we sort for determinism). Extras are excluded; see
// AllWithExtras.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, b := range registry {
		if !b.Extra {
			out = append(out, b)
		}
	}
	sortBenchmarks(out)
	return out
}

// AllWithExtras returns every registered benchmark including the extras
// beyond the paper's set.
func AllWithExtras() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sortBenchmarks(out)
	return out
}

func sortBenchmarks(out []Benchmark) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Extra != out[j].Extra {
			return !out[i].Extra
		}
		if out[i].Class != out[j].Class {
			return out[i].Class == Int
		}
		return out[i].Name < out[j].Name
	})
}

// Names lists the benchmark names in All() order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// PaperPair returns the two benchmarks the paper plots in Figs. 4-5: eon
// (integer) and swim (floating-point).
func PaperPair() (eon, swim Benchmark) {
	e, _ := ByName("eon")
	s, _ := ByName("swim")
	return e, s
}

// Memory region bases shared by the programs. Code sits low, heap arrays
// in the 0x10000000 range, and the stack high — so region switches flip
// high-order address bits, the behaviour the paper calls out for OEBI/CBI.
const (
	codeBase  = 0x0001_0000
	heapBase  = 0x1000_0000
	heap2Base = 0x2000_0000
	stackTop  = 0x7FFE_0000
)

package workload

import (
	"testing"
)

// TestInstructionMixCharacter checks each benchmark's committed-instruction
// mix against the character of the SPEC program it imitates, using the
// CPU's classification counters: FP programs must actually execute FP
// arithmetic, pointer/placement codes must be branchy, compression must be
// load-heavy, and so on. This pins the substitution argument of DESIGN.md
// to measurable properties.
func TestInstructionMixCharacter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle characterisation")
	}
	type expect struct {
		fpMin     float64 // min FP-op fraction
		fpMax     float64 // max FP-op fraction
		branchMin float64 // min conditional-branch fraction
		loadMin   float64 // min load fraction
	}
	cases := map[string]expect{
		"eon":    {fpMin: 0.05, fpMax: 0.5, branchMin: 0.0, loadMin: 0.05},
		"crafty": {fpMin: 0, fpMax: 0.01, branchMin: 0.1, loadMin: 0.01},
		"twolf":  {fpMin: 0, fpMax: 0.01, branchMin: 0.05, loadMin: 0.1},
		"mcf":    {fpMin: 0, fpMax: 0.01, branchMin: 0.1, loadMin: 0.2},
		"swim":   {fpMin: 0.15, fpMax: 0.6, branchMin: 0.05, loadMin: 0.2},
		"applu":  {fpMin: 0.15, fpMax: 0.6, branchMin: 0.05, loadMin: 0.15},
		"art":    {fpMin: 0.15, fpMax: 0.6, branchMin: 0.05, loadMin: 0.2},
		"ammp":   {fpMin: 0.1, fpMax: 0.6, branchMin: 0.05, loadMin: 0.15},
		"gzip":   {fpMin: 0, fpMax: 0.01, branchMin: 0.05, loadMin: 0.15},
		"equake": {fpMin: 0.1, fpMax: 0.6, branchMin: 0.05, loadMin: 0.15},
	}
	for _, b := range AllWithExtras() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			exp, ok := cases[b.Name]
			if !ok {
				t.Fatalf("no mix expectation for %s", b.Name)
			}
			src, err := b.NewSource()
			if err != nil {
				t.Fatal(err)
			}
			// Skip init, then measure a steady window with the CPU's own
			// counters.
			for i := uint64(0); i < b.WarmupCycles; i++ {
				if _, ok := src.Next(); !ok {
					t.Fatal(src.Err())
				}
			}
			before := src.CPU.Counters
			const window = 200_000
			for i := 0; i < window; i++ {
				if _, ok := src.Next(); !ok {
					t.Fatal(src.Err())
				}
			}
			k := src.CPU.Counters
			frac := func(a, b uint64) float64 { return float64(a-b) / window }
			fp := frac(k.FPOps, before.FPOps)
			br := frac(k.Branches, before.Branches)
			ld := frac(k.Loads, before.Loads)
			if fp < exp.fpMin || fp > exp.fpMax {
				t.Errorf("FP fraction %.3f outside [%.2f, %.2f]", fp, exp.fpMin, exp.fpMax)
			}
			if br < exp.branchMin {
				t.Errorf("branch fraction %.3f below %.2f", br, exp.branchMin)
			}
			if ld < exp.loadMin {
				t.Errorf("load fraction %.3f below %.2f", ld, exp.loadMin)
			}
			// Integer programs execute no FP at all; FP programs do.
			if b.Class == FP && fp == 0 {
				t.Error("FP benchmark executed no FP ops")
			}
			if b.Class == Int && b.Name != "eon" && fp > 0.01 {
				t.Errorf("integer benchmark executed %.3f FP ops", fp)
			}
		})
	}
}

package workload

import (
	"fmt"
	"strings"
)

// eonTextureKernel emits the unrolled straight-line body of eon's texture
// phase: each copy performs three hot scene loads, a framebuffer store,
// and the filter arithmetic, and advances the pseudo-cycle counter that
// drives the phase selector (13 instructions per body).
func eonTextureKernel(bodies int) string {
	var sb strings.Builder
	for i := 0; i < bodies; i++ {
		sb.WriteString(`	mul r13, r13, r11
	add r13, r13, r12
	srli r1, r13, 8
	andi r1, r1, 16380
	add r1, r10, r1
	flw f1, 0(r1)
	flw f2, 4(r1)
	flw f3, 8(r1)
	fmul f4, f1, f2
	fadd f4, f4, f3
	fadd f10, f10, f4
	fsw f4, 0(r9)
	addi r9, r9, 4
	addi r8, r8, 14
`)
	}
	return sb.String()
}

// lcgA and lcgC are full-period (mod 2^32) linear-congruential constants:
// a ≡ 1 (mod 4), c odd. The mod-2^k LCG i -> a*i+c is a bijection whose
// iteration visits every value, which mcf exploits to build a single
// pointer-chasing cycle without a separate permutation pass.
const (
	lcgA = 1664525
	lcgC = 1013904223
)

// Eon imitates SPEC eon (OO ray tracer): call chains three deep with stack
// traffic, lookups into a 64 KB scene table at pseudo-random indices, and
// FP arithmetic between the loads. Its DA stream mixes the heap and stack
// regions, flipping high-order address bits on nearly every call boundary.
var Eon = register(Benchmark{
	Name:         "eon",
	WarmupCycles: 1_000_000,
	Class:        Int,
	Description:  "ray-tracer-like: deep call chains, stack traffic, random scene lookups, FP math",
	Source: fmt.Sprintf(`
	# eon-like workload
	.org %#x
start:
	li sp, %#x          # stack top
	li r10, %#x         # scene base
	li r11, %d          # lcg a
	li r12, %d          # lcg c
	li r13, 12345       # lcg state
	# init: fill the 16K-word scene with floats in [1,2):
	# (bits & 0x7FFFFF) | 0x3F800000
	li r1, 0            # i (byte offset)
	li r2, 65536        # 16K words * 4
	li r3, 0x3F800000
	li r4, 0x007FFC00   # mantissa mask (low bits via ori)
	ori r4, r4, 0x3FF
init:
	mul r13, r13, r11
	add r13, r13, r12
	and r5, r13, r4
	or r5, r5, r3
	add r6, r10, r1
	sw r5, 0(r6)
	addi r1, r1, 4
	blt r1, r2, init

main:
	# Phase select on a pseudo-cycle counter (r8): ~260K cycles of
	# ray-tracing alternate with ~260K cycles of texture filtering — the
	# program phases real eon exhibits, which make the IA-bus energy
	# profile fluctuate between sampling intervals (Sec. 5.3.1).
	srli r1, r8, 18
	andi r1, r1, 1
	bne r1, r0, texture
	call trace_ray
	fadd f10, f10, f1   # accumulate radiance
	call trace_ray
	fadd f10, f10, f1
	# write a framebuffer pixel (scene tail doubles as framebuffer)
	srli r1, r13, 12
	andi r1, r1, 8188
	add r1, r10, r1
	fsw f10, 32768(r1)
	j main

	# texture phase: an unrolled, straight-line filtering kernel over a
	# hot 16KB window. The DA duty matches the ray phase, but the fetch
	# stream is purely sequential — so the IA-bus energy differs between
	# phases while the DA-bus energy stays level.
texture:
	li r9, %#x          # framebuffer tile base
`+eonTextureKernel(32)+`
	j main

	# trace_ray: two intersections plus shading arithmetic.
trace_ray:
	addi sp, sp, -16
	sw ra, 0(sp)
	fsw f10, 4(sp)      # spill accumulated radiance
	sw r8, 8(sp)        # spill ray depth counter
	call intersect
	fadd f9, f1, f1
	call intersect
	fadd f1, f1, f9
	lw r8, 8(sp)
	addi r8, r8, 74     # pseudo-cycle cost of one ray
	flw f10, 4(sp)
	lw ra, 0(sp)
	addi sp, sp, 16
	ret

	# intersect: pick a scene cell (origin, normal, material), combine
	# with a dot product.
intersect:
	addi sp, sp, -8
	sw ra, 0(sp)
	mul r13, r13, r11
	add r13, r13, r12
	srli r1, r13, 8
	andi r1, r1, 16380  # 16K words, room for the 3-word record
	slli r1, r1, 2
	add r1, r10, r1
	flw f1, 0(r1)       # origin
	flw f4, 4(r1)       # normal
	flw f5, 8(r1)       # material
	fmul f1, f1, f4
	fadd f1, f1, f5
	call dot
	fmul f1, f1, f2
	lw ra, 0(sp)
	addi sp, sp, 8
	ret

	# dot: leaf; two adjacent scene loads and a multiply-add. Placed 1 MB
	# away in the text segment (real eon's math library sits far from the
	# tracer's hot loop), so every ray makes long-distance call/return
	# fetch transitions that the texture phase never does.
	.org 0x110000
dot:
	mul r13, r13, r11
	add r13, r13, r12
	srli r2, r13, 10
	andi r2, r2, 16380  # word-aligned offset within 16K words
	add r2, r10, r2
	flw f2, 0(r2)
	flw f3, 4(r2)
	fmul f2, f2, f3
	fadd f2, f2, f3
	ret
`, codeBase, stackTop, heapBase, lcgA, lcgC, heap2Base),
})

// Crafty imitates SPEC crafty (chess): bitboard-style shift/mask/xor
// arithmetic, lookups into a small attack table that stays cache-resident,
// a branchy popcount loop, and sparse stores into a tiny history table.
// Data traffic is light; the IA bus dominates.
var Crafty = register(Benchmark{
	Name:         "crafty",
	WarmupCycles: 500_000,
	Class:        Int,
	Description:  "chess-like: bitboard shift/mask arithmetic, hot small tables, branchy popcount",
	Source: fmt.Sprintf(`
	# crafty-like workload
	.org %#x
start:
	li r10, %#x         # attack table base (1024 words)
	li r9, %#x          # history table base (64 words)
	li r11, %d          # lcg a
	li r12, %d          # lcg c
	li r13, 99991       # lcg state / hash
	# init attack table
	li r1, 0
	li r2, 4096
tinit:
	mul r13, r13, r11
	add r13, r13, r12
	add r3, r10, r1
	sw r13, 0(r3)
	addi r1, r1, 4
	blt r1, r2, tinit

	li r8, 0            # move counter
search:
	# hash step
	mul r13, r13, r11
	add r13, r13, r12
	# attack lookup
	srli r1, r13, 6
	andi r1, r1, 1023
	slli r1, r1, 2
	add r1, r10, r1
	lw r2, 0(r1)
	# bitboard update: rotate-ish mix of the two halves
	slli r3, r2, 7
	srli r4, r2, 25
	or r3, r3, r4
	xor r5, r5, r3
	and r6, r5, r2
	# popcount of the low 16 bits, 4 bits at a time (branchy)
	li r7, 0
	li r4, 4
pcloop:
	andi r3, r6, 15
	add r7, r7, r3
	srli r6, r6, 4
	addi r4, r4, -1
	bne r4, r0, pcloop
	# occasional history store (every 16th move)
	andi r3, r8, 15
	bne r3, r0, nohist
	srli r3, r13, 10
	andi r3, r3, 63
	slli r3, r3, 2
	add r3, r9, r3
	sw r7, 0(r3)
nohist:
	addi r8, r8, 1
	j search
`, codeBase, heapBase, heap2Base, lcgA, lcgC),
})

// Twolf imitates SPEC twolf (standard-cell placement): pseudo-random
// read-modify-write pairs over a medium array with data-dependent branches
// (conditional swaps), the classic annealing inner loop.
var Twolf = register(Benchmark{
	Name:         "twolf",
	WarmupCycles: 1_000_000,
	Class:        Int,
	Description:  "placement-like: random paired reads, conditional swap stores, data-dependent branches",
	Source: fmt.Sprintf(`
	# twolf-like workload
	.org %#x
start:
	li r10, %#x         # cell array base (64K words)
	li r11, %d
	li r12, %d
	li r13, 777
	li r9, 0x3FFFC      # byte-offset mask for 64K words (word aligned)
	# init cells with their index
	li r1, 0
	li r2, 0x40000
cinit:
	add r3, r10, r1
	sw r1, 0(r3)
	addi r1, r1, 4
	blt r1, r2, cinit

anneal:
	# pick two cells
	mul r13, r13, r11
	add r13, r13, r12
	srli r1, r13, 4
	and r1, r1, r9
	add r1, r10, r1     # &cell[i1]
	mul r13, r13, r11
	add r13, r13, r12
	srli r2, r13, 4
	and r2, r2, r9
	add r2, r10, r2     # &cell[i2]
	lw r3, 0(r1)
	lw r4, 0(r2)
	# accept the swap only if it lowers "cost" (here: v1 > v2)
	bge r4, r3, reject
	sw r4, 0(r1)
	sw r3, 0(r2)
	addi r8, r8, 1      # accepted moves
reject:
	addi r7, r7, 1      # attempted moves
	j anneal
`, codeBase, heapBase, lcgA, lcgC),
})

// Mcf imitates SPEC mcf (network simplex): dependent pointer chasing
// around a 4 MB ring of 16-byte nodes — far beyond L2 — with a high load
// fraction and occasional flow updates. The DA stream is the most random
// of the integer set.
var Mcf = register(Benchmark{
	Name:         "mcf",
	WarmupCycles: 3_500_000,
	Class:        Int,
	Description:  "network-simplex-like: pointer chasing over a 4MB node ring, load-dominated",
	Source: fmt.Sprintf(`
	# mcf-like workload: 2^18 nodes x 16 bytes
	.org %#x
start:
	li r10, %#x         # node base
	li r11, %d
	li r12, %d
	li r9, 0x3FFFF      # index mask (2^18 - 1)
	# init: node[i].next = &node[(a*i+c) & mask]; node[i].key = i
	li r1, 0            # i
	li r2, 0x40000      # 2^18
ninit:
	mul r3, r1, r11
	add r3, r3, r12
	and r3, r3, r9      # next index
	slli r3, r3, 4
	add r3, r10, r3     # next address
	slli r4, r1, 4
	add r4, r10, r4     # this node
	sw r3, 0(r4)        # .next
	sw r1, 4(r4)        # .key
	addi r1, r1, 1
	blt r1, r2, ninit

	add r5, r10, r0     # p = &node[0]
	li r8, 0
chase:
	lw r5, 0(r5)        # p = p->next (dependent load)
	lw r6, 4(r5)        # read key
	add r7, r7, r6      # accumulate cost
	# every 8th visit, update the node's flow field
	andi r6, r8, 7
	bne r6, r0, noupd
	sw r7, 8(r5)
noupd:
	addi r8, r8, 1
	j chase
`, codeBase, heapBase, lcgA, lcgC),
})

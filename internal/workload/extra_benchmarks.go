package workload

import "fmt"

// The extra benchmarks widen the workload library beyond the paper's
// randomly-chosen eight (SPEC CPU2000 had 26; a library user studying a
// new encoding wants more coverage). They are excluded from All() so the
// paper's experiments keep their exact benchmark set.

// Gzip imitates SPEC gzip (LZ77 deflate): a sequential scan over a 1 MB
// input buffer, hash-table probes and updates, and back-reference reads
// into the recently-scanned window — sequential, random, and
// short-distance-backward access patterns interleaved.
var Gzip = register(Benchmark{
	Name:         "gzip",
	WarmupCycles: 2_500_000,
	Class:        Int,
	Extra:        true,
	Description:  "deflate-like: sequential scan, hash probes/updates, back-reference window reads",
	Source: fmt.Sprintf(`
	# gzip-like workload: 1MB input, 32K-entry hash table
	.org %#x
start:
	li r10, %#x         # input buffer (1MB)
	li r9, %#x          # hash table (32K words)
	li r11, %d          # lcg a
	li r12, %d          # lcg c
	li r13, 65537       # lcg state
	# golden-ratio hash multiplier
	li r14, 0x9E377800
	ori r14, r14, 0x1B1
	# init input with pseudo-random bytes
	li r1, 0
	li r2, 0x100000
binit:
	mul r13, r13, r11
	add r13, r13, r12
	add r3, r10, r1
	sw r13, 0(r3)
	addi r1, r1, 4
	blt r1, r2, binit

deflate:
	li r1, 0            # cursor (word aligned)
	li r2, 0xFFFF8      # limit: input size - slack
scan:
	add r3, r10, r1
	lw r4, 0(r3)        # 4-byte window
	# hash the window
	mul r5, r4, r14
	srli r5, r5, 17
	andi r5, r5, 0x7FFC # 32K word-aligned entries
	add r6, r9, r5
	lw r7, 0(r6)        # candidate back-reference position
	sw r1, 0(r6)        # update hash head with current position
	# probe the candidate in the window (backward read)
	add r7, r10, r7
	lw r8, 0(r7)
	bne r8, r4, literal
	# match: emit a copy, skip ahead
	addi r1, r1, 8
	j next
literal:
	addi r1, r1, 4
next:
	blt r1, r2, scan
	j deflate
`, codeBase, heapBase, heap2Base, lcgA, lcgC),
})

// Equake imitates SPEC equake (FE earthquake simulation): sparse
// matrix-vector products in CSR-like form — a streaming pass over the
// nonzero values and column indices with indirect gathers from the dense
// vector and per-row result stores.
var Equake = register(Benchmark{
	Name:         "equake",
	WarmupCycles: 4_000_000,
	Class:        FP,
	Extra:        true,
	Description:  "sparse-MV-like: streaming CSR nonzeros with indirect vector gathers",
	Source: fmt.Sprintf(`
	# equake-like workload: 64K nonzeros, 16 per row, 4K-entry vector
	.org %#x
start:
	li r9, %#x          # column indices (64K words)
	li r10, %#x         # values (64K floats)
	li r11, %#x         # x vector (4K words)
	li r12, %#x         # y vector (4K words)
	li r2, %d           # lcg a
	li r3, %d           # lcg c
	li r4, 1048573      # lcg state
	# init column indices (random rows of the 4K vector)
	li r1, 0
	li r5, 0x40000
ciinit:
	mul r4, r4, r2
	add r4, r4, r3
	srli r6, r4, 8
	andi r6, r6, 4095
	add r7, r9, r1
	sw r6, 0(r7)
	addi r1, r1, 4
	blt r1, r5, ciinit
	# init values and x with floats in [1,2)
	li r1, 0
	li r7, 0x3F800000
	li r8, 0x007FFC00
	ori r8, r8, 0x3FF
vinit:
	mul r4, r4, r2
	add r4, r4, r3
	and r6, r4, r8
	or r6, r6, r7
	add r13, r10, r1
	sw r6, 0(r13)
	addi r1, r1, 4
	blt r1, r5, vinit
	li r1, 0
	li r5, 0x4000
xinit:
	mul r4, r4, r2
	add r4, r4, r3
	and r6, r4, r8
	or r6, r6, r7
	add r13, r11, r1
	sw r6, 0(r13)
	addi r1, r1, 4
	blt r1, r5, xinit

smvp:
	li r1, 0            # nonzero cursor (bytes)
	li r5, 0x40000
	fsub f1, f1, f1     # row accumulator
nz:
	add r6, r9, r1
	lw r7, 0(r6)        # col = idx[k]
	slli r7, r7, 2
	add r7, r11, r7
	flw f2, 0(r7)       # x[col] (gather)
	add r8, r10, r1
	flw f3, 0(r8)       # val[k] (streaming)
	fmul f4, f2, f3
	fadd f1, f1, f4
	# end of row every 16 nonzeros (64 bytes)
	andi r13, r1, 60
	xori r13, r13, 60
	bne r13, r0, cont
	srli r13, r1, 6     # row index
	slli r13, r13, 2
	add r13, r12, r13
	fsw f1, 0(r13)      # y[row]
	fsub f1, f1, f1
cont:
	addi r1, r1, 4
	blt r1, r5, nz
	j smvp
`, codeBase, heapBase, heapBase+0x10_0000, heap2Base, heap2Base+0x1_0000, lcgA, lcgC),
})

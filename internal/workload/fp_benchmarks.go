package workload

import "fmt"

// Swim imitates SPEC swim (shallow-water 2D stencil): long sequential
// sweeps over three 1 MB arrays with a 9-instruction inner loop. The DA
// bus is busy and strongly sequential; the IA bus loops tightly.
var Swim = register(Benchmark{
	Name:         "swim",
	WarmupCycles: 4_000_000,
	Class:        FP,
	Description:  "shallow-water-like: sequential 2D stencil sweeps over three 1MB arrays",
	Source: fmt.Sprintf(`
	# swim-like workload: u, v, p arrays of 2^18 words
	.org %#x
start:
	li r10, %#x         # u
	li r11, %#x         # v
	li r12, %#x         # p
	li r9, 0x100000     # 2^18 words * 4 bytes
	# init u and v with floats in [1,2)
	li r1, 0
	li r2, %d
	li r3, %d
	li r4, 31415
	li r5, 0x3F800000
	li r6, 0x007FFC00
	ori r6, r6, 0x3FF
finit:
	mul r4, r4, r2
	add r4, r4, r3
	and r7, r4, r6
	or r7, r7, r5
	add r8, r10, r1
	sw r7, 0(r8)
	mul r4, r4, r2
	add r4, r4, r3
	and r7, r4, r6
	or r7, r7, r5
	add r8, r11, r1
	sw r7, 0(r8)
	addi r1, r1, 4
	blt r1, r9, finit

sweep:
	li r1, 0            # i byte offset
	addi r2, r9, -8     # stop two words early for the i+1 access
step:
	add r3, r10, r1
	flw f1, 0(r3)       # u[i]
	flw f2, 4(r3)       # u[i+1]
	add r4, r11, r1
	flw f3, 0(r4)       # v[i]
	fadd f4, f1, f2
	fmul f5, f4, f3
	add r5, r12, r1
	fsw f5, 0(r5)       # p[i]
	addi r1, r1, 4
	blt r1, r2, step
	j sweep
`, codeBase, heapBase, heapBase+0x20_0000, heapBase+0x40_0000, lcgA, lcgC),
})

// Applu imitates SPEC applu (implicit 3D CFD): a blocked loop whose reads
// hit three planes of a 4 MB grid at large fixed strides, so the DA stream
// interleaves three strided sequences.
var Applu = register(Benchmark{
	Name:         "applu",
	WarmupCycles: 10_000_000,
	Class:        FP,
	Description:  "CFD-like: 3D stencil with plane/row strides over a 4MB grid",
	Source: fmt.Sprintf(`
	# applu-like workload: 2^20-word grid, row 2^8 words, plane 2^16 words
	.org %#x
start:
	li r10, %#x         # grid base
	li r9, 0x400000     # grid bytes (2^22)
	# init grid
	li r1, 0
	li r2, %d
	li r3, %d
	li r4, 8191
	li r5, 0x3F800000
	li r6, 0x007FFC00
	ori r6, r6, 0x3FF
ginit:
	mul r4, r4, r2
	add r4, r4, r3
	and r7, r4, r6
	or r7, r7, r5
	add r8, r10, r1
	sw r7, 0(r8)
	addi r1, r1, 4
	blt r1, r9, ginit

	li r12, 0x40000     # plane stride in bytes (2^16 words)
	li r13, 0x400       # row stride in bytes (2^8 words)
outer:
	li r1, 0
	li r2, 0x3BF000     # iterate the interior: grid bytes - plane - row - slack
relax:
	add r3, r10, r1
	flw f1, 0(r3)       # grid[i]
	add r4, r3, r13
	flw f2, 0(r4)       # grid[i+row]
	add r5, r3, r12
	flw f3, 0(r5)       # grid[i+plane]
	fadd f4, f1, f2
	fadd f4, f4, f3
	fmul f5, f4, f4
	fsw f5, 0(r3)       # update in place
	addi r1, r1, 16     # blocked: every 4th word
	blt r1, r2, relax
	j outer
`, codeBase, heapBase, lcgA, lcgC),
})

// Art imitates SPEC art (neural-net image recognition): repeated dot
// products of a streamed 1 MB weight matrix against a hot 16 KB input
// vector, with a tiny per-neuron reduction store.
var Art = register(Benchmark{
	Name:         "art",
	WarmupCycles: 3_000_000,
	Class:        FP,
	Description:  "neural-net-like: streaming 1MB weight matrix against a hot 16KB input vector",
	Source: fmt.Sprintf(`
	# art-like workload: 64 neurons x 4096 weights, 4096-word input
	.org %#x
start:
	li r10, %#x         # weights (64*4096 words = 1MB)
	li r11, %#x         # input vector (16KB)
	li r12, %#x         # outputs (64 words)
	# init input and weights
	li r1, 0
	li r2, %d
	li r3, %d
	li r4, 271828
	li r5, 0x3F800000
	li r6, 0x007FFC00
	ori r6, r6, 0x3FF
	li r9, 0x100000     # weight bytes
winit:
	mul r4, r4, r2
	add r4, r4, r3
	and r7, r4, r6
	or r7, r7, r5
	add r8, r10, r1
	sw r7, 0(r8)
	addi r1, r1, 4
	blt r1, r9, winit
	li r1, 0
	li r9, 0x4000       # input bytes
iinit:
	mul r4, r4, r2
	add r4, r4, r3
	and r7, r4, r6
	or r7, r7, r5
	add r8, r11, r1
	sw r7, 0(r8)
	addi r1, r1, 4
	blt r1, r9, iinit

pass:
	li r1, 0            # neuron index j
	li r2, 64
	add r5, r10, r0     # weight cursor
neuron:
	fsub f1, f1, f1     # acc = 0
	li r3, 0            # i byte offset
	li r4, 0x4000
dot:
	flw f2, 0(r5)       # w[j][i] (streaming)
	add r6, r11, r3
	flw f3, 0(r6)       # x[i] (hot)
	fmul f4, f2, f3
	fadd f1, f1, f4
	addi r5, r5, 4
	addi r3, r3, 4
	blt r3, r4, dot
	slli r6, r1, 2
	add r6, r12, r6
	fsw f1, 0(r6)       # out[j]
	addi r1, r1, 1
	blt r1, r2, neuron
	j pass
`, codeBase, heapBase, heap2Base, heap2Base+0x1_0000, lcgA, lcgC),
})

// Ammp imitates SPEC ammp (molecular dynamics): gather loads through a
// pseudo-random neighbour index array into a coordinate array, FP force
// arithmetic, and scattered coordinate updates.
var Ammp = register(Benchmark{
	Name:         "ammp",
	WarmupCycles: 4_500_000,
	Class:        FP,
	Description:  "molecular-dynamics-like: neighbour-list gather/scatter with FP force math",
	Source: fmt.Sprintf(`
	# ammp-like workload: 2^16 neighbour indices, 2^16 coordinate pairs
	.org %#x
start:
	li r10, %#x         # index array (2^16 words)
	li r11, %#x         # coordinates (2^17 words: x,y interleaved)
	li r9, 0xFFFF       # index mask
	li r2, %d
	li r3, %d
	li r4, 16180
	# init: random neighbour indices; coordinates in [1,2)
	li r1, 0
	li r5, 0x40000      # index array bytes
nli:
	mul r4, r4, r2
	add r4, r4, r3
	srli r6, r4, 8
	and r6, r6, r9
	add r7, r10, r1
	sw r6, 0(r7)
	addi r1, r1, 4
	blt r1, r5, nli
	li r1, 0
	li r5, 0x80000      # coordinate bytes
	li r7, 0x3F800000
	li r8, 0x007FFC00
	ori r8, r8, 0x3FF
cli:
	mul r4, r4, r2
	add r4, r4, r3
	and r6, r4, r8
	or r6, r6, r7
	add r13, r11, r1
	sw r6, 0(r13)
	addi r1, r1, 4
	blt r1, r5, cli

force:
	li r1, 0            # particle byte offset in index array
	li r5, 0x40000
pair:
	add r6, r10, r1
	lw r7, 0(r6)        # j = idx[i]
	slli r7, r7, 3      # coordinate pair offset
	add r7, r11, r7
	flw f1, 0(r7)       # x[j]
	flw f2, 4(r7)       # y[j]
	fmul f3, f1, f2
	fadd f4, f4, f3     # accumulate energy
	# scatter an update every 4th pair
	andi r8, r1, 12
	bne r8, r0, noscat
	fsw f4, 0(r7)
noscat:
	addi r1, r1, 4
	blt r1, r5, pair
	j force
`, codeBase, heapBase, heap2Base, lcgA, lcgC),
})

package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingGoldenAssignments pins the ownership function to golden
// values. These must never change: every node and every client build the
// ring independently, so a Go version or refactor that shifted the
// assignment would split the cluster's notion of ownership. If this test
// fails, the hash changed — that is a breaking protocol change, not a
// golden to refresh.
func TestRingGoldenAssignments(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	golden := map[string]string{
		"0000000000000001": "n2",
		"00000000000000ff": "n2",
		"deadbeefdeadbeef": "n3",
		"0123456789abcdef": "n2",
		"cafebabecafebabe": "n2",
		"1111111111111111": "n1",
		"2222222222222222": "n2",
		"abcdefabcdefabcd": "n3",
	}
	for id, want := range golden {
		if got := r.Owner(id); got != want {
			t.Errorf("Owner(%s) = %q, want %q", id, got, want)
		}
	}
	if got := r.Successors("deadbeefdeadbeef", 3); !reflect.DeepEqual(got, []string{"n3", "n1", "n2"}) {
		t.Errorf("Successors = %v, want [n3 n1 n2]", got)
	}
}

// TestRingOrderIndependence checks that member order (and duplicates)
// never change the assignment.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n2", "n1", ""})
	for i := 0; i < 512; i++ {
		id := fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("order-dependent assignment for %s: %q vs %q", id, a.Owner(id), b.Owner(id))
		}
	}
}

// TestRingBalance bounds the ownership skew: with 64 vnodes per member a
// 3-node ring should give every node a non-trivial share.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	const n = 4096
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15))]++
	}
	for _, name := range r.Nodes() {
		share := float64(counts[name]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of ids (counts: %v)", name, 100*share, counts)
		}
	}
}

// TestRingSuccessorsProperties checks the replication-set invariants:
// distinct members, owner first, capped at the membership.
func TestRingSuccessorsProperties(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"})
	for i := 0; i < 128; i++ {
		id := fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15)
		succ := r.Successors(id, 10)
		if len(succ) != 4 {
			t.Fatalf("Successors(%s, 10) = %v, want all 4 members", id, succ)
		}
		if succ[0] != r.Owner(id) {
			t.Fatalf("Successors(%s)[0] = %q, want owner %q", id, succ[0], r.Owner(id))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%s) repeats %q: %v", id, s, succ)
			}
			seen[s] = true
		}
	}
	if got := r.Successors("0000000000000001", 0); got != nil {
		t.Errorf("Successors(n=0) = %v, want nil", got)
	}
}

func TestEmptyRing(t *testing.T) {
	var r Ring
	if got := r.Owner("deadbeef"); got != "" {
		t.Errorf("zero ring Owner = %q, want empty", got)
	}
	if got := NewRing(nil).Owner("deadbeef"); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
	if got := NewRing(nil).Successors("deadbeef", 2); got != nil {
		t.Errorf("empty ring Successors = %v, want nil", got)
	}
}

func TestParseMembers(t *testing.T) {
	nodes, err := ParseMembers("n1=http://10.0.0.1:8080+10.0.0.1:9080, n2=http://10.0.0.2:8080/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{Name: "n1", HTTP: "http://10.0.0.1:8080", NBWP: "10.0.0.1:9080"},
		{Name: "n2", HTTP: "http://10.0.0.2:8080"},
	}
	if !reflect.DeepEqual(nodes, want) {
		t.Fatalf("ParseMembers = %+v, want %+v", nodes, want)
	}
	if n, ok := FindNode(nodes, "n2"); !ok || n.HTTP != "http://10.0.0.2:8080" {
		t.Errorf("FindNode(n2) = %+v, %v", n, ok)
	}
	if _, ok := FindNode(nodes, "n9"); ok {
		t.Error("FindNode(n9) found a ghost member")
	}
	if !reflect.DeepEqual(Names(nodes), []string{"n1", "n2"}) {
		t.Errorf("Names = %v", Names(nodes))
	}

	for _, bad := range []string{
		"",
		"   ",
		"n1",
		"n1=",
		"=http://x:1",
		"n1=tcp://10.0.0.1:9080",
		"n1=http://a:1,n1=http://b:2",
	} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted a malformed spec", bad)
		}
	}
}

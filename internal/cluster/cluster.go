// Package cluster is the multi-node layer of nanobusd: static membership
// lists and the deterministic consistent-hash ring that assigns session
// ids to nodes. The package is pure data + arithmetic — no sockets, no
// goroutines — so both the server (ownership checks, replication targets)
// and the client router (request routing, failover order) share one
// implementation and therefore one notion of ownership.
//
// Determinism contract: Owner and Successors are pure functions of the
// member names and the id. The ring is built from FNV-1a hashes (a fixed
// algorithm, unlike hash/maphash's per-process seed) over explicitly
// sorted nodes, so every node and every client — across processes, Go
// versions, and architectures — derives the same assignment. A cluster
// whose nodes disagreed on ownership would bounce sessions forever.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Node is one cluster member: a stable name plus its advertised
// transport endpoints. Name is what the ring hashes; the addresses are
// what redirects and replication dial.
type Node struct {
	// Name is the stable member identity (e.g. "n1").
	Name string `json:"name"`
	// HTTP is the advertised v1 API base URL (e.g. "http://10.0.0.1:8080").
	HTTP string `json:"http"`
	// NBWP is the advertised NBWP host:port; empty when the node does not
	// serve the binary protocol.
	NBWP string `json:"nbwp,omitempty"`
}

// ringVnodes is the number of virtual points each member contributes.
// 64 points per node keeps the maximum ownership imbalance across a
// small static cluster under a few percent while the whole ring for a
// dozen nodes still fits in cache.
const ringVnodes = 64

// point is one virtual position on the ring.
type point struct {
	hash uint64
	node string
}

// Ring assigns ids to member names by consistent hashing. Build it with
// NewRing; the zero value owns nothing.
type Ring struct {
	points []point
	nodes  []string
}

// NewRing builds the ring over the given member names. Names are
// deduplicated and sorted before hashing, so argument order never
// changes the assignment. An empty list yields a ring that owns nothing.
func NewRing(names []string) *Ring {
	uniq := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]point, 0, len(uniq)*ringVnodes)}
	for _, n := range uniq {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	// Ties (hash collisions between distinct vnode labels) break on the
	// node name so the order is total and reproducible.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hash64 is FNV-1a pushed through the splitmix64 finalizer. Both halves
// are fixed by specification — never hash/maphash, whose per-process
// seed would give every process its own ring. The finalizer matters:
// vnode labels differ in a character or two, and raw FNV-1a of such
// near-identical strings clusters on the ring badly enough to skew
// ownership 3:1; the finalizer's avalanche restores balance.
func hash64(s string) uint64 {
	h := fnv.New64a()
	//nanolint:ignore droppederr hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), constants fixed.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Nodes returns the member names on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the member that owns id, or "" on an empty ring.
func (r *Ring) Owner(id string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(id)].node
}

// search finds the first ring point at or clockwise-after id's hash.
func (r *Ring) search(id string) int {
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Successors returns up to n distinct members in ring order starting at
// id's owner: the replication set and the failover order. n larger than
// the membership returns every member.
func (r *Ring) Successors(id string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := r.search(id); len(out) < n; i = (i + 1) % len(r.points) {
		nd := r.points[i].node
		if !seen[nd] {
			seen[nd] = true
			out = append(out, nd)
		}
	}
	return out
}

// ParseMembers parses a static membership spec: comma-separated
// name=httpURL entries, each optionally extended with an NBWP endpoint
// after a '+' —
//
//	n1=http://10.0.0.1:8080+10.0.0.1:9080,n2=http://10.0.0.2:8080
//
// The format is shared by the -cluster-members flag and the
// NANOBUS_CLUSTER_MEMBERS environment variable.
func ParseMembers(spec string) ([]Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty members spec")
	}
	var nodes []Node
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("cluster: member %q is not name=httpURL", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate member %q", name)
		}
		seen[name] = true
		httpURL, nbwpAddr, _ := strings.Cut(addr, "+")
		if !strings.HasPrefix(httpURL, "http://") && !strings.HasPrefix(httpURL, "https://") {
			return nil, fmt.Errorf("cluster: member %q address %q is not an http(s) URL", name, httpURL)
		}
		nodes = append(nodes, Node{Name: name, HTTP: strings.TrimRight(httpURL, "/"), NBWP: nbwpAddr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty members spec")
	}
	return nodes, nil
}

// FindNode returns the member named name.
func FindNode(nodes []Node, name string) (Node, bool) {
	for _, n := range nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// Names projects the member names out of a node list.
func Names(nodes []Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

package capmodel

import (
	"math"
	"testing"

	"nanobus/internal/extract"
	"nanobus/internal/itrs"
)

func TestFromNodeAnchorsTable1(t *testing.T) {
	for _, node := range itrs.Nodes() {
		m, err := FromNode(node, 32, DefaultDecay(node))
		if err != nil {
			t.Fatalf("%s: %v", node.Name, err)
		}
		if m.N() != 32 {
			t.Fatalf("%s: N = %d, want 32", node.Name, m.N())
		}
		for i := 0; i < 32; i++ {
			if m.Self(i) != node.CLine {
				t.Errorf("%s: Self(%d) = %g, want %g", node.Name, i, m.Self(i), node.CLine)
			}
		}
		if m.Coupling(10, 11) != node.CInter {
			t.Errorf("%s: adjacent coupling = %g, want %g", node.Name, m.Coupling(10, 11), node.CInter)
		}
	}
}

func TestCouplingSymmetricZeroDiagonal(t *testing.T) {
	m, err := FromNode(itrs.N90, 16, DefaultDecay(itrs.N90))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if m.Coupling(i, i) != 0 {
			t.Errorf("Coupling(%d,%d) = %g, want 0", i, i, m.Coupling(i, i))
		}
		for j := 0; j < 16; j++ {
			if m.Coupling(i, j) != m.Coupling(j, i) {
				t.Errorf("asymmetric coupling (%d,%d)", i, j)
			}
			if m.Coupling(i, j) < 0 {
				t.Errorf("negative coupling (%d,%d)", i, j)
			}
		}
	}
}

func TestCouplingDecaysMonotonically(t *testing.T) {
	m, err := FromNode(itrs.N130, 16, DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for d := 1; d <= 6; d++ {
		c := m.Coupling(8, 8+d)
		if c >= prev {
			t.Errorf("coupling at distance %d (%g) >= previous (%g)", d, c, prev)
		}
		if c <= 0 {
			t.Errorf("coupling at distance %d is %g, want > 0", d, c)
		}
		prev = c
	}
}

func TestTruncate(t *testing.T) {
	m, err := FromNode(itrs.N130, 8, DefaultDecay(itrs.N130))
	if err != nil {
		t.Fatal(err)
	}
	selfOnly := m.Truncate(0)
	nn := m.Truncate(1)
	all := m.Truncate(100)

	if selfOnly.RowSum(3) != 0 {
		t.Errorf("Truncate(0) left coupling %g", selfOnly.RowSum(3))
	}
	if nn.Coupling(3, 4) != m.Coupling(3, 4) {
		t.Error("Truncate(1) removed adjacent coupling")
	}
	if nn.Coupling(3, 5) != 0 {
		t.Error("Truncate(1) kept distance-2 coupling")
	}
	if all.RowSum(3) != m.RowSum(3) {
		t.Error("Truncate(100) changed the matrix")
	}
	// Self caps always preserved.
	if selfOnly.Self(3) != m.Self(3) || nn.Self(3) != m.Self(3) {
		t.Error("Truncate changed self capacitance")
	}
	// Original untouched.
	if m.Coupling(3, 5) == 0 {
		t.Error("Truncate mutated the original")
	}
}

func TestRowSumAndTotal(t *testing.T) {
	m, err := FromNode(itrs.N45, 4, DecayModel{Ratios: []float64{1, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// Wire 1 couples to 0 (d1), 2 (d1), 3 (d2).
	want := itrs.N45.CInter * (1 + 1 + 0.5)
	if got := m.RowSum(1); math.Abs(got-want) > 1e-20 {
		t.Errorf("RowSum(1) = %g, want %g", got, want)
	}
	if got := m.Total(1); math.Abs(got-(want+itrs.N45.CLine)) > 1e-20 {
		t.Errorf("Total(1) = %g, want %g", got, want+itrs.N45.CLine)
	}
}

func TestDecayValidate(t *testing.T) {
	bad := []DecayModel{
		{},
		{Ratios: []float64{0.9}},
		{Ratios: []float64{1, 0.5, 0.7}},
		{Ratios: []float64{1, -0.1}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("decay %d accepted: %+v", i, d)
		}
	}
	if err := (DecayModel{Ratios: []float64{1, 0.04, 0.01}}).Validate(); err != nil {
		t.Errorf("good decay rejected: %v", err)
	}
}

func TestDecayAtOutOfRange(t *testing.T) {
	d := DecayModel{Ratios: []float64{1, 0.5}}
	if d.At(0) != 0 || d.At(3) != 0 || d.At(-1) != 0 {
		t.Error("out-of-range distances should have zero ratio")
	}
	if d.At(1) != 1 || d.At(2) != 0.5 {
		t.Error("in-range ratios wrong")
	}
}

func TestFromNodeValidation(t *testing.T) {
	if _, err := FromNode(itrs.N130, 0, DefaultDecay(itrs.N130)); err == nil {
		t.Error("zero-width bus accepted")
	}
	if _, err := FromNode(itrs.N130, 8, DecayModel{Ratios: []float64{0.5}}); err == nil {
		t.Error("invalid decay accepted")
	}
}

// TestDefaultDecayMatchesFreshExtraction re-derives the calibrated decay
// constants from a fresh (coarser, faster) BEM run and checks they agree to
// within discretisation error. This keeps the hard-coded table honest.
func TestDefaultDecayMatchesFreshExtraction(t *testing.T) {
	if testing.Short() {
		t.Skip("BEM extraction in -short mode")
	}
	for _, node := range []itrs.Node{itrs.N130, itrs.N45} {
		got, err := CalibrateDecay(node, 11, 3, extract.Options{PanelsPerEdge: 4})
		if err != nil {
			t.Fatalf("%s: CalibrateDecay: %v", node.Name, err)
		}
		want := DefaultDecay(node)
		for d := 2; d <= 3; d++ {
			g, w := got.At(d), want.At(d)
			if math.Abs(g-w) > 0.25*w {
				t.Errorf("%s: decay at distance %d = %.4f, calibrated table %.4f (>25%% apart)",
					node.Name, d, g, w)
			}
		}
	}
}

func TestDefaultDecayAllNodesValid(t *testing.T) {
	for _, node := range itrs.Nodes() {
		if err := DefaultDecay(node).Validate(); err != nil {
			t.Errorf("%s: %v", node.Name, err)
		}
	}
	// Unknown node falls back to a valid generic profile.
	if err := DefaultDecay(itrs.Node{FeatureNm: 22}).Validate(); err != nil {
		t.Errorf("generic: %v", err)
	}
}

func TestFromExtraction(t *testing.T) {
	node := itrs.N130
	dec, err := CalibrateDecay(node, 5, 2, extract.Options{PanelsPerEdge: 4})
	if err != nil {
		t.Fatalf("CalibrateDecay: %v", err)
	}
	if dec.At(1) != 1 {
		t.Errorf("extraction decay at d=1 is %g, want 1", dec.At(1))
	}
	// FromExtraction on a small bus: symmetric, positive couplings.
	// (Re-extract to get the raw result.)
	m, err := FromNode(node, 5, dec)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 5 {
		t.Errorf("N = %d, want 5", m.N())
	}
}

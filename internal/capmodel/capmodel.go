// Package capmodel builds the bus capacitance matrices consumed by the
// energy model. Absolute self and adjacent-coupling values come from the
// paper's Table 1 (ITRS-2001 / FastCap); non-adjacent couplings extend the
// adjacent value with per-distance decay ratios calibrated from our
// boundary-element extraction (package extract), mirroring the paper's use
// of FastCap for the full matrix (Sec. 3.2.1).
package capmodel

import (
	"fmt"

	"nanobus/internal/extract"
	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
)

// Matrix is a per-unit-length bus capacitance description: Self[i] is wire
// i's capacitance to ground in F/m and Coupling[i][j] (symmetric, zero
// diagonal) the inter-wire coupling in F/m.
type Matrix struct {
	n        int
	self     []float64
	coupling [][]float64
}

// N returns the number of wires.
func (m *Matrix) N() int { return m.n }

// Self returns wire i's self (ground) capacitance in F/m.
func (m *Matrix) Self(i int) float64 { return m.self[i] }

// Coupling returns the coupling capacitance between wires i and j in F/m.
func (m *Matrix) Coupling(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.coupling[i][j]
}

// CouplingRow returns wire i's coupling row (do not modify).
func (m *Matrix) CouplingRow(i int) []float64 { return m.coupling[i] }

// RowSum returns the sum of wire i's couplings to all other wires in F/m.
func (m *Matrix) RowSum(i int) float64 {
	s := 0.0
	for _, c := range m.coupling[i] {
		s += c
	}
	return s
}

// Total returns wire i's total capacitance (self + all couplings) in F/m.
func (m *Matrix) Total(i int) float64 { return m.self[i] + m.RowSum(i) }

// Truncate returns a copy with couplings beyond maxDist zeroed. maxDist=1
// keeps only nearest-neighbour coupling (the paper's "NN" model); maxDist=0
// keeps no coupling at all ("Self"); a large maxDist keeps everything
// ("All").
func (m *Matrix) Truncate(maxDist int) *Matrix {
	out := newMatrix(m.n)
	copy(out.self, m.self)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d != 0 && d <= maxDist {
				out.coupling[i][j] = m.coupling[i][j]
			}
		}
	}
	return out
}

func newMatrix(n int) *Matrix {
	m := &Matrix{n: n, self: make([]float64, n), coupling: make([][]float64, n)}
	for i := range m.coupling {
		m.coupling[i] = make([]float64, n)
	}
	return m
}

// DecayModel gives the coupling at neighbour distance d >= 1 as a fraction
// of the adjacent coupling: ratio 1 at d=1, decaying with distance.
type DecayModel struct {
	// Ratios[d-1] is coupling(d)/coupling(1). Ratios[0] must be 1.
	// Distances beyond len(Ratios) have zero coupling.
	Ratios []float64
}

// At returns the decay ratio at distance d (>= 1).
func (d DecayModel) At(dist int) float64 {
	if dist < 1 || dist > len(d.Ratios) {
		return 0
	}
	return d.Ratios[dist-1]
}

// Validate checks the decay model's invariants.
func (d DecayModel) Validate() error {
	if len(d.Ratios) == 0 {
		return fmt.Errorf("capmodel: empty decay model")
	}
	if d.Ratios[0] != 1 { //nanolint:ignore floateq the decay table's distance-1 entry is defined to be exactly 1
		return fmt.Errorf("capmodel: decay at distance 1 is %g, want 1", d.Ratios[0])
	}
	for i := 1; i < len(d.Ratios); i++ {
		if d.Ratios[i] < 0 || d.Ratios[i] > d.Ratios[i-1] {
			return fmt.Errorf("capmodel: decay not non-increasing at distance %d (%g after %g)",
				i+1, d.Ratios[i], d.Ratios[i-1])
		}
	}
	return nil
}

// DefaultDecay is the per-node decay calibrated offline from this module's
// own BEM extractor on a 15-wire ITRS-geometry bus (see capmodel tests,
// which re-derive these from a fresh extraction and assert agreement).
// The ratios are nearly node-independent, matching the paper's observation
// that the relative non-adjacent contribution stays roughly constant with
// scaling.
func DefaultDecay(node itrs.Node) DecayModel {
	switch node.FeatureNm {
	case 130:
		return DecayModel{Ratios: []float64{1, 0.0402, 0.0142, 0.0077, 0.0049, 0.0036}}
	case 90:
		return DecayModel{Ratios: []float64{1, 0.0388, 0.0137, 0.0074, 0.0048, 0.0034}}
	case 65:
		return DecayModel{Ratios: []float64{1, 0.0381, 0.0133, 0.0071, 0.0046, 0.0033}}
	case 45:
		return DecayModel{Ratios: []float64{1, 0.0374, 0.0130, 0.0069, 0.0044, 0.0032}}
	default:
		// Generic: the 90 nm profile.
		return DecayModel{Ratios: []float64{1, 0.0388, 0.0137, 0.0074, 0.0048, 0.0034}}
	}
}

// FromNode builds the n-wire capacitance matrix for a technology node:
// Table 1 cline/cinter anchored, non-adjacent couplings from the decay
// model.
func FromNode(node itrs.Node, n int, decay DecayModel) (*Matrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("capmodel: bus width %d < 1", n)
	}
	if err := decay.Validate(); err != nil {
		return nil, err
	}
	m := newMatrix(n)
	for i := 0; i < n; i++ {
		m.self[i] = node.CLine
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d >= 1 {
				m.coupling[i][j] = node.CInter * decay.At(d)
			}
		}
	}
	return m, nil
}

// FromExtraction builds a capacitance matrix directly from a BEM result,
// using absolute extracted values (F/m). Useful for custom (non-ITRS)
// geometries.
func FromExtraction(res *extract.Result) *Matrix {
	n := len(res.Names)
	m := newMatrix(n)
	for i := 0; i < n; i++ {
		m.self[i] = res.SelfToGround(i)
		for j := 0; j < n; j++ {
			if i != j {
				m.coupling[i][j] = res.Coupling(i, j)
			}
		}
	}
	return m
}

// CalibrateDecay runs the extractor on a wires-wide bus with the node's
// geometry and returns the measured decay model up to maxDist.
func CalibrateDecay(node itrs.Node, wires, maxDist int, opts extract.Options) (DecayModel, error) {
	layout := geometry.BusLayout{
		Wires: wires,
		W:     node.WireWidth, T: node.WireThickness,
		S: node.Spacing(), H: node.ILDHeight,
		EpsRel: node.EpsRel,
	}
	res, _, err := extract.ExtractBus(layout, opts)
	if err != nil {
		return DecayModel{}, err
	}
	ratios := extract.CouplingDecay(res, maxDist)
	return DecayModel{Ratios: ratios}, nil
}

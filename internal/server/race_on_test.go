//go:build race

package server

// raceEnabled reports whether the race detector is instrumenting this
// build. Alloc-count gates skip under it: race-mode sync.Pool drops
// items at random (by design, to surface lifetime bugs), so pooled
// frames miss and the steady-state allocation count is not meaningful.
const raceEnabled = true

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"nanobus/internal/core"
	"nanobus/internal/energy"
)

// poolKey identifies a simulator configuration. Two sessions with equal
// keys are interchangeable after Simulator.Reset(), which is what makes
// pooling bit-exact: every field that reaches core.Config is part of the
// key (nodes and encoders are identified by name — both registries return
// fixed configurations per name).
type poolKey struct {
	node     string
	encoding string
	lengthM  float64
	interval uint64
	depth    int
	memoLog2 int
	track    bool
	drop     bool
}

// pool recycles idle simulators by configuration. A Get hit skips the
// capacitance model build and thermal eigendecomposition and keeps the
// warm transition memo.
type pool struct {
	mu     sync.Mutex
	free   map[poolKey][]*core.Simulator
	maxPer int
}

func newPool(maxPer int) *pool {
	return &pool{free: make(map[poolKey][]*core.Simulator), maxPer: maxPer}
}

// get pops a recycled simulator for the key, or reports a miss.
func (p *pool) get(k poolKey) (*core.Simulator, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sims := p.free[k]
	if len(sims) == 0 {
		return nil, false
	}
	sim := sims[len(sims)-1]
	p.free[k] = sims[:len(sims)-1]
	return sim, true
}

// put resets sim and shelves it for reuse; full shelves and poisoned
// simulators are dropped.
func (p *pool) put(k poolKey, sim *core.Simulator) {
	if sim.Err() != nil {
		return
	}
	sim.SetOnSample(nil)
	sim.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free[k]) >= p.maxPer {
		return
	}
	p.free[k] = append(p.free[k], sim)
}

// session is one client-visible simulation stream. The simulator is
// guarded by sem (capacity 1): step, result and delete requests serialize
// on it, so the core never sees concurrent access. words/idle are atomics
// so status and metrics reads never touch the simulator.
type session struct {
	id    string
	key   poolKey
	info  SessionInfo // static fields; live counters come from the atomics
	sim   *core.Simulator
	sem   chan struct{}
	words atomic.Uint64
	idle  atomic.Uint64
	// closed is set (under sem) by delete; requests that were already
	// waiting on sem must re-check it after acquiring.
	closed bool
	// lastMemo is the memo snapshot at the last harvest (guarded by sem).
	lastMemo energy.MemoStats
	// encBuf is the reused ?stream=samples NDJSON line buffer (guarded
	// by sem): one buffer per session instead of an allocation per
	// streamed sample.
	encBuf []byte
	// reqJSON is the normalized CreateSessionRequest (deterministic
	// field order), embedded in checkpoint envelopes so a fresh process
	// can rebuild the simulator from the envelope alone.
	reqJSON []byte
	// lastSeq is the last acknowledged ?seq= batch (written under sem;
	// atomic so session-info reads skip the sem).
	lastSeq atomic.Uint64
	// lastSum caches the lastSeq batch's summary for duplicate acks
	// (guarded by sem).
	lastSum StepSummary
	// dirtySeq marks a sequenced batch that began mutating the simulator
	// but never acknowledged: the state is ahead of lastSeq, so seq
	// accounting is unsound until a restore rewinds it (guarded by sem,
	// deliberately also across a mid-batch handler panic — the deferred
	// release runs but the flag stays set).
	dirtySeq bool
	// ckptCycles is the simulator cycle count at the last checkpoint,
	// the auto-checkpoint pacing reference (guarded by sem).
	ckptCycles uint64
}

// acquire takes the session's simulator, failing when ctx ends first.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *session) release() { <-s.sem }

// shard is one lock domain of the session table.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
	// queue counts step/result/delete requests waiting for or holding a
	// session of this shard (the per-shard queue depth metric).
	queue atomic.Int64
}

func (sh *shard) lookup(id string) (*session, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[id]
	return sess, ok
}

// newSessionID returns a fresh 16-hex-char id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// shardOf maps a session id onto a shard index.
func shardOf(id string, n int) int {
	h := fnv.New32a()
	//nanolint:ignore droppederr hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

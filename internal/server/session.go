package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"nanobus/internal/core"
	"nanobus/internal/energy"
)

// poolKey identifies a simulator configuration. Two sessions with equal
// keys are interchangeable after Simulator.Reset(), which is what makes
// pooling bit-exact: every field that reaches core.Config is part of the
// key (nodes and encoders are identified by name — both registries return
// fixed configurations per name).
type poolKey struct {
	node     string
	encoding string
	lengthM  float64
	interval uint64
	depth    int
	memoLog2 int
	track    bool
	drop     bool
}

// pool recycles idle simulators by configuration. A Get hit skips the
// capacitance model build and thermal eigendecomposition and keeps the
// warm transition memo.
type pool struct {
	mu     sync.Mutex
	free   map[poolKey][]*core.Simulator
	maxPer int
}

func newPool(maxPer int) *pool {
	return &pool{free: make(map[poolKey][]*core.Simulator), maxPer: maxPer}
}

// get pops a recycled simulator for the key, or reports a miss.
func (p *pool) get(k poolKey) (*core.Simulator, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sims := p.free[k]
	if len(sims) == 0 {
		return nil, false
	}
	sim := sims[len(sims)-1]
	p.free[k] = sims[:len(sims)-1]
	return sim, true
}

// put resets sim and shelves it for reuse; full shelves and poisoned
// simulators are dropped. Adaptive simulators are never pooled: the key
// does not carry the controller tuning, so two adaptive sessions with
// equal keys would not be interchangeable.
func (p *pool) put(k poolKey, sim *core.Simulator) {
	if sim.Err() != nil || sim.Adaptive() {
		return
	}
	sim.SetOnSample(nil)
	sim.Reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free[k]) >= p.maxPer {
		return
	}
	p.free[k] = append(p.free[k], sim)
}

// session is one client-visible simulation stream. The simulator is
// guarded by sem (capacity 1): step, result and delete requests serialize
// on it, so the core never sees concurrent access. words/idle are atomics
// so status and metrics reads never touch the simulator.
type session struct {
	id   string
	key  poolKey
	info SessionInfo // static fields; live counters come from the atomics
	// Exactly one of sim and msim is non-nil: sim is a scalar session's
	// simulator, msim a multi-bus session's (buses > 1). Handlers go
	// through the dispatch helpers below so the branch lives in one place;
	// only the pool (scalar-only) and the interleaved step layout look
	// behind them.
	sim   *core.Simulator
	msim  *core.MultiSim
	buses int // 1 for scalar sessions
	sem   chan struct{}
	words atomic.Uint64
	idle  atomic.Uint64
	// closed is set (under sem) by delete; requests that were already
	// waiting on sem must re-check it after acquiring.
	closed bool
	// lastMemo is the memo snapshot at the last harvest (guarded by sem).
	lastMemo energy.MemoStats
	// encBuf is the reused ?stream=samples NDJSON line buffer (guarded
	// by sem): one buffer per session instead of an allocation per
	// streamed sample.
	encBuf []byte
	// reqJSON is the normalized CreateSessionRequest (deterministic
	// field order), embedded in checkpoint envelopes so a fresh process
	// can rebuild the simulator from the envelope alone.
	reqJSON []byte
	// lastSeq is the last acknowledged ?seq= batch (written under sem;
	// atomic so session-info reads skip the sem).
	lastSeq atomic.Uint64
	// lastSum caches the lastSeq batch's summary for duplicate acks
	// (guarded by sem).
	lastSum StepSummary
	// dirtySeq marks a sequenced batch that began mutating the simulator
	// but never acknowledged: the state is ahead of lastSeq, so seq
	// accounting is unsound until a restore rewinds it (guarded by sem,
	// deliberately also across a mid-batch handler panic — the deferred
	// release runs but the flag stays set).
	dirtySeq bool
	// ckptCycles is the simulator cycle count at the last checkpoint,
	// the auto-checkpoint pacing reference (guarded by sem).
	ckptCycles uint64
}

// acquire takes the session's simulator, failing when ctx ends first.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *session) release() { <-s.sem }

// --- Simulator dispatch ------------------------------------------------------

// stepBatch feeds one word batch to the session's simulator and returns
// the number of words consumed. Multi-bus batches are interleaved
// cycle-major, so K words advance one lockstep cycle.
func (s *session) stepBatch(ctx context.Context, words []uint32) (uint64, error) {
	if s.msim != nil {
		rows, err := s.msim.StepBatch(ctx, words)
		return uint64(rows) * uint64(s.buses), err
	}
	n, err := s.sim.StepBatch(ctx, words)
	return uint64(n), err
}

// stepIdleBatch advances n idle cycles (on every bus, for multi).
func (s *session) stepIdleBatch(ctx context.Context, n uint64) (uint64, error) {
	if s.msim != nil {
		return s.msim.StepIdleBatch(ctx, n)
	}
	return s.sim.StepIdleBatch(ctx, n)
}

// setOnSample installs fn as the per-interval sample callback; scalar
// sessions always report bus 0.
func (s *session) setOnSample(fn func(bus int, cs core.Sample)) {
	if s.msim != nil {
		s.msim.SetOnBusSample(fn)
		return
	}
	if fn == nil {
		s.sim.SetOnSample(nil)
		return
	}
	s.sim.SetOnSample(func(cs core.Sample) { fn(0, cs) })
}

// finish closes any partial sampling interval.
func (s *session) finish() error {
	if s.msim != nil {
		return s.msim.Finish()
	}
	return s.sim.Finish()
}

// simErr returns the simulator's sticky error, or nil.
func (s *session) simErr() error {
	if s.msim != nil {
		return s.msim.Err()
	}
	return s.sim.Err()
}

// snapshot serializes the simulator (NBCP v1 for scalar, v2 for multi).
func (s *session) snapshot() ([]byte, error) {
	if s.msim != nil {
		return s.msim.Snapshot()
	}
	return s.sim.Snapshot()
}

// restoreBlob overwrites the simulator's state from a snapshot blob.
func (s *session) restoreBlob(data []byte) error {
	if s.msim != nil {
		return s.msim.Restore(data)
	}
	return s.sim.Restore(data)
}

// simCycles returns the simulated (lockstep) cycle count.
func (s *session) simCycles() uint64 {
	if s.msim != nil {
		return s.msim.Cycles()
	}
	return s.sim.Cycles()
}

// memoStats returns the transition-memo counters.
func (s *session) memoStats() energy.MemoStats {
	if s.msim != nil {
		return s.msim.MemoStats()
	}
	return s.sim.MemoStats()
}

// cycleCount converts the live word/idle counters into lockstep cycles:
// a multi-bus session consumes K words per cycle.
func (s *session) cycleCount() uint64 {
	return s.words.Load()/uint64(s.buses) + s.idle.Load()
}

// shard is one lock domain of the session table.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
	// queue counts step/result/delete requests waiting for or holding a
	// session of this shard (the per-shard queue depth metric).
	queue atomic.Int64
}

func (sh *shard) lookup(id string) (*session, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[id]
	return sess, ok
}

// newSessionID returns a fresh 16-hex-char id.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// shardOf maps a session id onto a shard index.
func shardOf(id string, n int) int {
	h := fnv.New32a()
	//nanolint:ignore droppederr hash.Hash.Write is documented to never return an error
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

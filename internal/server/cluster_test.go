package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nanobus/client"
	"nanobus/internal/blob"
	"nanobus/internal/cluster"
	"nanobus/internal/server"
)

// testCluster is an in-process multi-node nanobusd: every node gets its
// own listener, FSStore, and replication fan-out over the real peer blob
// endpoints, exactly like three nanobusd processes wired by
// -cluster-members — minus the process boundary.
type testCluster struct {
	t       *testing.T
	nodes   []cluster.Node
	servers []*server.Server
	https   []*http.Server
	dirs    []string
	clients []*client.Client
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		nodes:   make([]cluster.Node, n),
		servers: make([]*server.Server, n),
		https:   make([]*http.Server, n),
		dirs:    make([]string, n),
		clients: make([]*client.Client, n),
	}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.nodes[i] = cluster.Node{
			Name: fmt.Sprintf("n%d", i+1),
			HTTP: "http://" + ln.Addr().String(),
		}
	}
	for i := range lns {
		tc.dirs[i] = filepath.Join(t.TempDir(), tc.nodes[i].Name)
		local, err := blob.NewFSStore(tc.dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		var peers []blob.Store
		for j := range tc.nodes {
			if j != i {
				peers = append(peers, blob.NewHTTPStore(tc.nodes[j].HTTP, nil))
			}
		}
		store := blob.NewReplicated(local, peers, blob.WithValidator(server.ValidateEnvelope))
		tc.servers[i] = server.New(server.Config{
			Store:     store,
			PeerStore: local,
			Cluster:   server.ClusterConfig{Self: tc.nodes[i].Name, Nodes: tc.nodes, Replicas: n},
		})
		tc.https[i] = &http.Server{Handler: tc.servers[i].Handler()}
		go func(hs *http.Server, ln net.Listener) {
			//nanolint:ignore droppederr the serve loop exits with ErrServerClosed on cleanup
			_ = hs.Serve(ln)
		}(tc.https[i], lns[i])
		tc.clients[i] = client.New(tc.nodes[i].HTTP)
	}
	t.Cleanup(func() {
		for _, hs := range tc.https {
			//nanolint:ignore droppederr test cleanup; the server may already be killed
			_ = hs.Close()
		}
	})
	return tc
}

// kill hard-stops node i: in-flight connections drop, no drain.
func (tc *testCluster) kill(i int) {
	//nanolint:ignore droppederr a kill is abrupt by design; the close error is noise
	_ = tc.https[i].Close()
}

// nodeIdx maps a member name back to its index.
func (tc *testCluster) nodeIdx(name string) int {
	for i, n := range tc.nodes {
		if n.Name == name {
			return i
		}
	}
	tc.t.Fatalf("unknown node %q", name)
	return -1
}

// migrate drives POST /v1/cluster/sessions/{id}/migrate on node from.
func (tc *testCluster) migrate(from int, id, target string) (server.MigrateResponse, error) {
	body, err := json.Marshal(server.MigrateRequest{Target: target})
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := http.Post(tc.nodes[from].HTTP+"/v1/cluster/sessions/"+id+"/migrate",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return server.MigrateResponse{}, err
	}
	defer func() {
		//nanolint:ignore droppederr test helper; the decoded body is the result
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		//nanolint:ignore droppederr a malformed error body still fails the call with the status
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return server.MigrateResponse{}, &client.APIError{
			StatusCode: resp.StatusCode, Code: er.Code, Message: er.Error, Owner: er.Owner}
	}
	var mr server.MigrateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return server.MigrateResponse{}, err
	}
	return mr, nil
}

// referenceResult replays seq batches 1..last on a fresh single-node
// service and returns the result — the bit-exactness oracle for every
// migration and failover test.
func referenceResult(t *testing.T, last uint64) *client.Result {
	t.Helper()
	_, c := newTestService(t, server.Config{})
	sess, err := c.CreateSession(context.Background(), ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, last)
	res, err := sess.Result(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestClusterStatusSingleNode(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	st, err := c.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != "" || len(st.Nodes) != 0 {
		t.Fatalf("single-node cluster status = %+v, want empty", st)
	}
}

func TestClusterStatusAndSelfOwnedMinting(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()

	st, err := tc.clients[1].Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Self != "n2" || len(st.Nodes) != 3 || st.Replicas != 3 {
		t.Fatalf("cluster status = %+v", st)
	}

	// Every node mints ids its own ring assignment owns, so a fresh
	// session never starts life redirected.
	ring := cluster.NewRing(cluster.Names(tc.nodes))
	for i, c := range tc.clients {
		sess, err := c.CreateSession(ctx, ckptConfig())
		if err != nil {
			t.Fatal(err)
		}
		if owner := ring.Owner(sess.ID()); owner != tc.nodes[i].Name {
			t.Errorf("node %s minted id %s owned by %s", tc.nodes[i].Name, sess.ID(), owner)
		}
	}
}

func TestClusterNotOwnerRedirect(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	sess, err := tc.clients[0].CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}

	// The same id addressed at the wrong node comes back 421 with the
	// owner's contacts, on both a step and a status read.
	wrong := tc.clients[1].Session(sess.ID())
	_, err = wrong.StepBinary(ctx, testWords(1, 32))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusMisdirectedRequest ||
		ae.Code != server.CodeNotOwner {
		t.Fatalf("step at wrong node = %v, want 421 not_owner", err)
	}
	if ae.Owner == nil || ae.Owner.Node != "n1" || ae.Owner.URL != tc.nodes[0].HTTP {
		t.Fatalf("redirect owner = %+v, want n1 at %s", ae.Owner, tc.nodes[0].HTTP)
	}
	if _, err := wrong.Status(ctx); !errors.As(err, &ae) || ae.Code != server.CodeNotOwner {
		t.Fatalf("status at wrong node = %v, want not_owner", err)
	}
}

// TestClusterMigrateBitIdentical moves a session mid-stream and requires
// the final result to match an uninterrupted single-node run bit for
// bit; the source must answer stragglers with a moved redirect.
func TestClusterMigrateBitIdentical(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	sess, err := tc.clients[0].CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	runSeq(t, sess, 1, 6)

	mr, err := tc.migrate(0, id, "n3")
	if err != nil {
		t.Fatal(err)
	}
	if mr.Target != "n3" || mr.Seq != 6 {
		t.Fatalf("migrate response = %+v, want target n3 seq 6", mr)
	}

	// Stragglers hitting the source get the moved redirect.
	var ae *client.APIError
	if _, err := sess.StepBinarySeq(ctx, 7, seqBatch(7)); !errors.As(err, &ae) ||
		ae.Code != server.CodeMoved || ae.Owner == nil || ae.Owner.Node != "n3" {
		t.Fatalf("step at source after migrate = %v, want moved->n3", err)
	}
	// An unrelated node redirects to the ring owner, which redirects on:
	// the chain converges on the target.
	if _, err := tc.clients[1].Session(id).StepBinarySeq(ctx, 7, seqBatch(7)); !errors.As(err, &ae) ||
		(ae.Code != server.CodeNotOwner && ae.Code != server.CodeMoved) {
		t.Fatalf("step at third node after migrate = %v, want a redirect", err)
	}

	moved := tc.clients[tc.nodeIdx("n3")].Session(id)
	runSeq(t, moved, 7, 10)
	res, err := moved.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, referenceResult(t, 10))
}

// TestClusterMigrateRacingStep races a sequenced batch against the
// migration. Whatever interleaving the scheduler picks, replaying the
// batch on the target must leave the stream applied exactly once —
// verified bit for bit against the oracle.
func TestClusterMigrateRacingStep(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	sess, err := tc.clients[0].CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	runSeq(t, sess, 1, 5)

	raceErr := make(chan error, 1)
	go func() {
		_, err := sess.StepBinarySeq(ctx, 6, seqBatch(6))
		raceErr <- err
	}()
	if _, err := tc.migrate(0, id, "n2"); err != nil {
		t.Fatal(err)
	}
	// The racer either applied before the checkpoint (nil), chased the
	// move (421), or lost the acquire race (409 busy). Anything else is a
	// correctness hole.
	if err := <-raceErr; err != nil {
		var ae *client.APIError
		if !errors.As(err, &ae) ||
			(ae.Code != server.CodeMoved && ae.Code != server.CodeNotOwner &&
				ae.Code != server.CodeSessionBusy) {
			t.Fatalf("racing step = %v, want nil, moved, or busy", err)
		}
	}

	moved := tc.clients[tc.nodeIdx("n2")].Session(id)
	// Replay 6 (a duplicate when the racer won) and continue to 10.
	runSeq(t, moved, 6, 10)
	res, err := moved.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, referenceResult(t, 10))
}

// TestClusterFailoverResurrect kills the owning node and resurrects the
// session from its replicated checkpoint on a survivor, replaying the
// unacknowledged tail — the client-driven failover path the chaos gate
// exercises at process scale. The survivor's local replica is corrupted
// first, so the restore must fall through to the second surviving copy.
func TestClusterFailoverResurrect(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	sess, err := tc.clients[0].CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	runSeq(t, sess, 1, 6)
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 7, 8) // unacknowledged tail past the checkpoint

	// Corrupt n2's replica: truncate the envelope mid-blob. The validator
	// must reject it and fall back to n3's copy.
	n2blob := filepath.Join(tc.dirs[1], id+".nbse")
	data, err := os.ReadFile(n2blob)
	if err != nil {
		t.Fatalf("replica missing on n2: %v", err)
	}
	if err := os.WriteFile(n2blob, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tc.kill(0)

	revived := tc.clients[1].Session(id)
	resp, err := revived.Restore(ctx)
	if err != nil {
		t.Fatalf("resurrect on survivor: %v", err)
	}
	if !resp.Resurrected || resp.Seq != 6 {
		t.Fatalf("resurrect = %+v, want resurrected at seq 6", resp)
	}
	runSeq(t, revived, resp.Seq+1, 10)
	res, err := revived.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, referenceResult(t, 10))
}

func TestClusterPeerBlobEndpoints(t *testing.T) {
	tc := newTestCluster(t, 2)
	ctx := context.Background()
	st := blob.NewHTTPStore(tc.nodes[0].HTTP, nil)

	// A torn envelope is rejected at the door: replication must never
	// seed a peer with a blob that cannot restore.
	if err := st.Put(ctx, "deadbeef", []byte("not an NBSE envelope")); err == nil {
		t.Fatal("peer accepted a torn envelope")
	}
	if _, err := st.Get(ctx, "deadbeef"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}

	// A real envelope (made by checkpointing a session) round-trips.
	sess, err := tc.clients[0].CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 2)
	env, err := sess.CheckpointDownload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ctx, "deadbeef", env); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "deadbeef")
	if err != nil || !bytes.Equal(got, env) {
		t.Fatalf("peer round-trip: %v (len %d vs %d)", err, len(got), len(env))
	}
	ids, err := st.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lid := range ids {
		found = found || lid == "deadbeef"
	}
	if !found {
		t.Fatalf("List = %v, missing deadbeef", ids)
	}
	if err := st.Delete(ctx, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(ctx, "deadbeef"); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

// TestRouterFollowsMigration drives a RoutedSession across a live
// migration: the handle re-binds to the target transparently and the
// stream stays exactly-once.
func TestRouterFollowsMigration(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	r, err := client.NewRouter(ctx, []string{tc.nodes[0].HTTP})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//nanolint:ignore droppederr test cleanup
		_ = r.Close()
	}()

	rs, err := r.Open(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, rs, 1, 5)

	src := rs.Node()
	var target string
	for _, n := range tc.nodes {
		if n.Name != src {
			target = n.Name
			break
		}
	}
	if _, err := tc.migrate(tc.nodeIdx(src), rs.ID(), target); err != nil {
		t.Fatal(err)
	}

	// The next calls hit the old node, get the moved redirect, and follow
	// it without surfacing an error.
	runSeq(t, rs, 6, 10)
	if rs.Node() != target {
		t.Fatalf("routed session still pinned to %s, want %s", rs.Node(), target)
	}
	res, err := rs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, referenceResult(t, 10))
}

// TestRouterRecoverAfterNodeDeath is the router-level failover: the
// owning node dies, Recover resurrects the session from a replica on a
// survivor, and the caller replays the tail from the returned frontier.
func TestRouterRecoverAfterNodeDeath(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	r, err := client.NewRouter(ctx, []string{tc.nodes[2].HTTP})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//nanolint:ignore droppederr test cleanup
		_ = r.Close()
	}()

	rs, err := r.Open(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, rs, 1, 6)
	if _, err := rs.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	runSeq(t, rs, 7, 9)

	tc.kill(tc.nodeIdx(rs.Node()))

	resp, err := rs.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 6 {
		t.Fatalf("recovered at seq %d, want 6", resp.Seq)
	}
	runSeq(t, rs, resp.Seq+1, 12) // 7..9 replayed, 10..12 fresh
	res, err := rs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, referenceResult(t, 12))
}

// TestClusterConcurrentSessions is the in-process 3-node soak: many
// routed sessions streaming sequenced batches concurrently (run under
// -race in CI). Cheap per-session checks — exact cycle accounting —
// catch cross-session or cross-node state bleed.
func TestClusterConcurrentSessions(t *testing.T) {
	tc := newTestCluster(t, 3)
	ctx := context.Background()
	const sessions, batches, wordsPer = 12, 5, 100

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := client.NewRouter(ctx, []string{tc.nodes[i%3].HTTP})
			if err != nil {
				errs <- err
				return
			}
			defer func() {
				//nanolint:ignore droppederr test cleanup
				_ = r.Close()
			}()
			rs, err := r.Open(ctx, ckptConfig())
			if err != nil {
				errs <- err
				return
			}
			for seq := uint64(1); seq <= batches; seq++ {
				if _, err := rs.StepBinarySeq(ctx, seq, testWords(uint32(i)<<8|uint32(seq), wordsPer)); err != nil {
					errs <- fmt.Errorf("session %d seq %d: %w", i, seq, err)
					return
				}
			}
			res, err := rs.Result(ctx, true)
			if err != nil {
				errs <- err
				return
			}
			if res.Cycles != batches*wordsPer {
				errs <- fmt.Errorf("session %d cycles = %d, want %d", i, res.Cycles, batches*wordsPer)
				return
			}
			errs <- rs.Close(ctx)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

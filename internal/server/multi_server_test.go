package server_test

import (
	"context"
	"testing"

	"nanobus/client"
	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/server"
)

// TestMultiBusResultMatchesLibrary drives a 4-bus session over HTTP and
// checks the assembled multi Result — grid-wide aggregates plus every
// per-bus block — bit-identically against an in-process core.MultiSim
// replay of the same schedule. The transport-level comparisons live in
// the client package; this test pins the server's own Result assembly
// (multiResultLocked) against the kernel it wraps.
func TestMultiBusResultMatchesLibrary(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()

	const buses, rows, idle, interval = 4, 1300, 200, 512
	cols := make([][]uint32, buses)
	for k := range cols {
		cols[k] = testWords(uint32(31+k), rows)
	}
	slab, err := client.PackInterleaved(nil, cols...)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := c.CreateSession(ctx, client.SessionConfig{
		Node: "130nm", Buses: buses, IntervalCycles: interval, TrackWireTemps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Info.Buses != buses {
		t.Fatalf("session info buses = %d, want %d", sess.Info.Buses, buses)
	}
	if _, err := sess.StepBinary(ctx, slab); err != nil {
		t.Fatal(err)
	}
	// finish=0 first: a multi Result over flushed intervals only, without
	// closing out the partial one.
	keep, err := sess.Result(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if keep.Buses != buses || len(keep.PerBus) != buses {
		t.Fatalf("keep result buses = %d (per_bus %d), want %d", keep.Buses, len(keep.PerBus), buses)
	}
	if keep.Cycles != rows {
		t.Fatalf("keep result cycles = %d, want %d", keep.Cycles, rows)
	}
	if _, err := sess.StepIdle(ctx, idle); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The same schedule through the library kernel, using the server's
	// session defaults (Unencoded, full coupling depth, default length).
	node, err := itrs.Resolve("130nm")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encoding.New("Unencoded")
	if err != nil {
		t.Fatal(err)
	}
	msim, err := core.NewMulti(core.MultiConfig{
		Config: core.Config{
			Node:           node,
			Encoder:        enc,
			CouplingDepth:  -1,
			IntervalCycles: interval,
			TrackWireTemps: true,
		},
		Buses: buses,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := msim.StepBatch(ctx, slab); err != nil {
		t.Fatal(err)
	}
	if _, err := msim.StepIdleBatch(ctx, idle); err != nil {
		t.Fatal(err)
	}
	if err := msim.Finish(); err != nil {
		t.Fatal(err)
	}
	grid := msim.Grid()

	if res.Cycles != msim.Cycles() || res.Buses != buses || res.Width != msim.Width() {
		t.Fatalf("shape: cycles=%d buses=%d width=%d, library cycles=%d width=%d",
			res.Cycles, res.Buses, res.Width, msim.Cycles(), msim.Width())
	}
	if len(res.Samples) != 0 {
		t.Fatalf("multi result carries %d flat samples, want 0 (per-bus only)", len(res.Samples))
	}
	maxT, maxBus, maxW := grid.MaxTemp()
	if !bitsEq(res.MaxTempK, maxT) || res.MaxBus != maxBus || res.MaxWire != maxW {
		t.Fatalf("hottest node: server (%g, bus %d, wire %d), library (%g, bus %d, wire %d)",
			res.MaxTempK, res.MaxBus, res.MaxWire, maxT, maxBus, maxW)
	}
	temps := grid.Temps(nil)
	if len(res.TempsK) != len(temps) {
		t.Fatalf("temps slab length %d, want %d", len(res.TempsK), len(temps))
	}
	avg := 0.0
	for i, tk := range temps {
		if !bitsEq(res.TempsK[i], tk) {
			t.Fatalf("temp slab node %d differs: %g vs %g", i, res.TempsK[i], tk)
		}
		avg += tk
	}
	if !bitsEq(res.AvgTempK, avg/float64(len(temps))) {
		t.Fatalf("avg temp %g, library %g", res.AvgTempK, avg/float64(len(temps)))
	}
	st := msim.MemoStats()
	if res.Memo.Hits != st.Hits || res.Memo.Misses != st.Misses {
		t.Fatalf("memo counters: server %+v, library %+v", res.Memo, st)
	}

	var sum server.EnergySplit
	for k, pb := range res.PerBus {
		if pb.Bus != k {
			t.Fatalf("per_bus[%d] tagged bus %d", k, pb.Bus)
		}
		tot := msim.TotalEnergy(k)
		if !bitsEq(pb.Total.TotalJ, tot.Total()) || !bitsEq(pb.Total.SelfJ, tot.Self) ||
			!bitsEq(pb.Total.CoupAdjJ, tot.CoupAdj) || !bitsEq(pb.Total.CoupNonAdjJ, tot.CoupNonAdj) {
			t.Fatalf("bus %d energy: server %+v, library %+v", k, pb.Total, tot)
		}
		bMaxT, bMaxW := grid.BusMaxTemp(k)
		if !bitsEq(pb.MaxTempK, bMaxT) || pb.MaxWire != bMaxW || !bitsEq(pb.AvgTempK, grid.BusAvgTemp(k)) {
			t.Fatalf("bus %d temps: server (%g, wire %d, avg %g), library (%g, wire %d, avg %g)",
				k, pb.MaxTempK, pb.MaxWire, pb.AvgTempK, bMaxT, bMaxW, grid.BusAvgTemp(k))
		}
		bTemps := grid.BusTemps(k, nil)
		if len(pb.TempsK) != len(bTemps) {
			t.Fatalf("bus %d temps length %d, want %d", k, len(pb.TempsK), len(bTemps))
		}
		for j := range bTemps {
			if !bitsEq(pb.TempsK[j], bTemps[j]) {
				t.Fatalf("bus %d wire %d temp differs", k, j)
			}
		}
		libSamples := msim.Samples(k)
		if len(pb.Samples) != len(libSamples) {
			t.Fatalf("bus %d samples: server %d, library %d", k, len(pb.Samples), len(libSamples))
		}
		for i, ss := range pb.Samples {
			ls := libSamples[i]
			if ss.Bus != k || ss.EndCycle != ls.EndCycle || !bitsEq(ss.EnergyJ, ls.Energy) ||
				!bitsEq(ss.MaxTempK, ls.MaxTemp) {
				t.Fatalf("bus %d sample %d differs: server %+v, library %+v", k, i, ss, ls)
			}
		}
		sum.TotalJ += pb.Total.TotalJ
		sum.SelfJ += pb.Total.SelfJ
		sum.CoupAdjJ += pb.Total.CoupAdjJ
		sum.CoupNonAdjJ += pb.Total.CoupNonAdjJ
	}
	if !bitsEq(res.Total.TotalJ, sum.TotalJ) || !bitsEq(res.Total.SelfJ, sum.SelfJ) ||
		!bitsEq(res.Total.CoupAdjJ, sum.CoupAdjJ) || !bitsEq(res.Total.CoupNonAdjJ, sum.CoupNonAdjJ) {
		t.Fatalf("grand total %+v is not the per-bus sum %+v", res.Total, sum)
	}
}

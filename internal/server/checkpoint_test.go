package server_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nanobus/client"
	"nanobus/internal/core"
	"nanobus/internal/faultinject"
	"nanobus/internal/server"
)

// ckptConfig is the session shape shared by the durability tests: a
// short interval so a few hundred words close several samples.
func ckptConfig() client.SessionConfig {
	return client.SessionConfig{
		Node:           "90nm",
		Encoding:       "BI",
		IntervalCycles: 100,
	}
}

// seqBatch regenerates the batch for a sequence number from the number
// alone — exactly what a resuming client must be able to do to replay
// unacknowledged work after a restore.
func seqBatch(seq uint64) []uint32 {
	return testWords(uint32(seq)*2654435761+1, 150)
}

// runSeq replays batches first..last (inclusive) in order.
func runSeq(t *testing.T, sess client.Session, first, last uint64) client.StepSummary {
	t.Helper()
	var sum client.StepSummary
	for seq := first; seq <= last; seq++ {
		var err error
		sum, err = sess.StepBinarySeq(context.Background(), seq, seqBatch(seq))
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	return sum
}

// sameResult compares two session results bit-for-bit.
func sameResult(t *testing.T, a, b *client.Result) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if math.Float64bits(a.Total.TotalJ) != math.Float64bits(b.Total.TotalJ) ||
		math.Float64bits(a.Total.SelfJ) != math.Float64bits(b.Total.SelfJ) ||
		math.Float64bits(a.Total.CoupAdjJ) != math.Float64bits(b.Total.CoupAdjJ) ||
		math.Float64bits(a.Total.CoupNonAdjJ) != math.Float64bits(b.Total.CoupNonAdjJ) {
		t.Fatalf("energy split differs: %+v vs %+v", a.Total, b.Total)
	}
	if math.Float64bits(a.AvgTempK) != math.Float64bits(b.AvgTempK) ||
		math.Float64bits(a.MaxTempK) != math.Float64bits(b.MaxTempK) {
		t.Fatalf("temps differ: (%g,%g) vs (%g,%g)", a.AvgTempK, a.MaxTempK, b.AvgTempK, b.MaxTempK)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].EndCycle != b.Samples[i].EndCycle ||
			math.Float64bits(a.Samples[i].EnergyJ) != math.Float64bits(b.Samples[i].EnergyJ) ||
			math.Float64bits(a.Samples[i].MaxTempK) != math.Float64bits(b.Samples[i].MaxTempK) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestCheckpointRestoreReplayBitIdentical(t *testing.T) {
	_, c := newTestService(t, server.Config{Store: server.NewMemStore()})
	ctx := context.Background()

	// Uninterrupted reference run: seqs 1..6 straight through.
	ref, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, ref, 1, 6)
	want, err := ref.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint after seq 3, keep going to 5, then
	// rewind to the checkpoint and replay 4..6.
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 3)
	info, err := sess.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 3 || !info.Stored || info.Cycles == 0 || len(info.SHA256) != 64 {
		t.Fatalf("checkpoint info = %+v", info)
	}
	runSeq(t, sess, 4, 5)
	res, err := sess.Restore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 3 || res.Resurrected {
		t.Fatalf("restore = %+v, want seq 3 in place", res)
	}
	st, err := sess.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != 3 || st.Words != res.Words {
		t.Fatalf("status after restore = %+v", st)
	}
	runSeq(t, sess, 4, 6)
	got, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestSeqDuplicateAndGap(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.StepBinarySeq(ctx, 1, seqBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate || first.Seq != 1 {
		t.Fatalf("first apply = %+v", first)
	}
	// The same batch again: acknowledged, not re-stepped.
	dup, err := sess.StepBinarySeq(ctx, 1, seqBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.Words != first.Words || dup.Cycles != first.Cycles {
		t.Fatalf("duplicate ack = %+v, want echo of %+v", dup, first)
	}
	st, err := sess.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Words != first.Words {
		t.Fatalf("duplicate double-counted: words %d after ack, %d after apply", st.Words, first.Words)
	}
	// Skipping ahead is a protocol error, not silent data loss.
	_, err = sess.StepBinarySeq(ctx, 3, seqBatch(3))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != server.CodeSeqGap {
		t.Fatalf("seq gap error = %v", err)
	}
	// seq=0 is reserved (the "never sequenced" sentinel) and rejected.
	_, err = sess.StepBinarySeq(ctx, 0, seqBatch(0))
	if !errors.As(err, &ae) || ae.Code != server.CodeBadRequest {
		t.Fatalf("seq=0 error = %v", err)
	}
}

func TestSeqConflictAfterMidBatchFailure(t *testing.T) {
	defer faultinject.Reset()
	_, c := newTestService(t, server.Config{Store: server.NewMemStore()})
	ctx := context.Background()

	ref, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, ref, 1, 3)
	want, err := ref.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 2)
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Fail the second NDJSON line of the next batch: the first line has
	// already mutated the simulator, so the batch is partially applied.
	if err := faultinject.Set("server.ingest.decode", "error,nth=2"); err != nil {
		t.Fatal(err)
	}
	lines := []client.StepLine{{Words: seqBatch(3)[:75]}, {Words: seqBatch(3)[75:]}}
	_, err = sess.StepLinesSeq(ctx, 3, lines)
	faultinject.Reset()
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != server.CodeBadRequest {
		t.Fatalf("injected mid-batch failure = %v", err)
	}
	// A blind retry must NOT be applied on top of the partial state.
	_, err = sess.StepLinesSeq(ctx, 3, lines)
	if !errors.As(err, &ae) || ae.Code != server.CodeSeqConflict {
		t.Fatalf("retry after partial apply = %v, want seq_conflict", err)
	}
	// Checkpointing the tainted state is refused too.
	_, err = sess.Checkpoint(ctx)
	if !errors.As(err, &ae) || ae.Code != server.CodeSeqConflict {
		t.Fatalf("checkpoint of tainted state = %v, want seq_conflict", err)
	}
	// Restore rewinds to seq 2; the replay then lands exactly once.
	res, err := sess.Restore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Fatalf("restored seq = %d, want 2", res.Seq)
	}
	if _, err := sess.StepLinesSeq(ctx, 3, lines); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestResurrectionAcrossProcessRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := server.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference run on a single long-lived server.
	_, cRef := newTestService(t, server.Config{})
	ref, err := cRef.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, ref, 1, 5)
	want, err := ref.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	// First "process": step to seq 3, checkpoint, then die without
	// warning (the httptest server is simply torn down).
	srv1 := server.New(server.Config{Store: store})
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL, client.WithHTTPClient(ts1.Client()))
	sess1, err := c1.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess1, 1, 3)
	if _, err := sess1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	id := sess1.Info.ID
	ts1.Close()

	// Second process shares only the checkpoint directory.
	srv2 := server.New(server.Config{Store: store})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL, client.WithHTTPClient(ts2.Client()))
	sess2 := c2.Session(id)
	res, err := sess2.Restore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resurrected || res.Seq != 3 {
		t.Fatalf("resurrection = %+v, want resurrected at seq 3", res)
	}
	// A duplicate of the last acknowledged batch is absorbed...
	dup, err := sess2.StepBinarySeq(ctx, 3, seqBatch(3))
	if err != nil || !dup.Duplicate {
		t.Fatalf("replayed seq 3 = %+v, %v", dup, err)
	}
	// ...and the remaining work replays to a bit-identical figure.
	runSeq(t, sess2, 4, 5)
	got, err := sess2.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
	if srv2.SessionsActive() != 1 {
		t.Fatalf("active sessions = %d, want 1", srv2.SessionsActive())
	}
}

func TestRestoreResurrectsPoisonedSession(t *testing.T) {
	defer faultinject.Reset()
	_, c := newTestService(t, server.Config{Store: server.NewMemStore()})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 2)
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Poison the simulator mid-interval on the next batch.
	if err := faultinject.Set("core.interval.flush", "error"); err != nil {
		t.Fatal(err)
	}
	_, err = sess.StepBinarySeq(ctx, 3, seqBatch(3))
	faultinject.Reset()
	var ae *client.APIError
	if !errors.As(err, &ae) || !errors.Is(ae, core.ErrPoisoned) {
		t.Fatalf("poisoned step = %v", err)
	}
	// Every later touch fails the same way until a restore clears it.
	if _, err := sess.Result(ctx, true); !errors.Is(err, core.ErrPoisoned) {
		t.Fatalf("result on poisoned session = %v", err)
	}
	if res, err := sess.Restore(ctx); err != nil || res.Seq != 2 {
		t.Fatalf("restore of poisoned session = %+v, %v", res, err)
	}
	if _, err := sess.StepBinarySeq(ctx, 3, seqBatch(3)); err != nil {
		t.Fatalf("step after resurrection: %v", err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	store := server.NewMemStore()
	_, c := newTestService(t, server.Config{Store: store, AutoCheckpointCycles: 200})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 batches x 150 words crosses the 200-cycle pacing twice; no
	// manual checkpoint is ever taken.
	runSeq(t, sess, 1, 3)
	res, err := sess.Restore(ctx)
	if err != nil {
		t.Fatalf("restore from auto checkpoint: %v", err)
	}
	if res.Seq == 0 || res.Seq > 3 {
		t.Fatalf("auto checkpoint captured seq %d", res.Seq)
	}
	// The session replays forward from the captured point and the final
	// state matches an uninterrupted run.
	runSeq(t, sess, res.Seq+1, 3)
	got, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, ref, 1, 3)
	want, err := ref.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestCheckpointDownloadNoStore(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Without a store, a bare checkpoint has nowhere to go...
	_, err = sess.Checkpoint(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != server.CodeNoStore {
		t.Fatalf("checkpoint without store = %v", err)
	}
	// ...but ?download=1 hands the envelope to the client, and an inline
	// restore rewinds from it.
	runSeq(t, sess, 1, 2)
	env, err := sess.CheckpointDownload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 3, 4)
	res, err := sess.RestoreFrom(ctx, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Fatalf("inline restore seq = %d, want 2", res.Seq)
	}
	// Store-less restore without a body has nothing to load.
	_, err = sess.Restore(ctx)
	if !errors.As(err, &ae) || ae.Code != server.CodeNoStore {
		t.Fatalf("bodyless restore without store = %v", err)
	}
}

func TestRestoreRejectsCorruptAndMismatched(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 2)
	env, err := sess.CheckpointDownload(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var ae *client.APIError
	// Structural damage anywhere in the envelope is rejected cleanly.
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		// A zero-length body means "load from the store", so the shortest
		// inline envelope that can reach the decoder is one byte.
		{"one byte", func(b []byte) []byte { return b[:1] }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit flip", func(b []byte) []byte { b[len(b)/3] ^= 0x40; return b }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xEE) }},
	} {
		bad := tc.mutate(append([]byte(nil), env...))
		_, err := sess.RestoreFrom(ctx, bad)
		if !errors.As(err, &ae) || ae.Code != server.CodeCheckpointCorrupt {
			t.Errorf("%s: restore = %v, want checkpoint_corrupt", tc.name, err)
		}
		if !errors.Is(err, core.ErrCheckpointCorrupt) {
			t.Errorf("%s: error does not unwrap to ErrCheckpointCorrupt", tc.name)
		}
	}

	// A healthy envelope restored into a differently-configured session
	// is a mismatch, and the target session is untouched by the attempt.
	other, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", Encoding: "Gray", IntervalCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	before, err := other.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = other.RestoreFrom(ctx, env)
	if !errors.As(err, &ae) || ae.Code != server.CodeCheckpointMismatch {
		t.Fatalf("cross-config restore = %v, want checkpoint_mismatch", err)
	}
	after, err := other.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("failed restore mutated the session: %+v -> %+v", before, after)
	}
}

func TestFSStoreTruncatedSaveRejectedOnRestore(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	store, err := server.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestService(t, server.Config{Store: store})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 2)
	// The store silently writes a torn envelope (a dying disk).
	if err := faultinject.Set("store.fs.truncate", "truncate=40"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint with torn store write: %v", err)
	}
	faultinject.Reset()
	_, err = sess.Restore(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != server.CodeCheckpointCorrupt {
		t.Fatalf("restore of torn envelope = %v, want checkpoint_corrupt", err)
	}
	// An injected store error surfaces as a checkpoint failure.
	if err := faultinject.Set("store.fs.save", "error"); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Checkpoint(ctx)
	faultinject.Reset()
	if err == nil {
		t.Fatal("checkpoint with failing store succeeded")
	}
}

func TestDeleteRemovesStoredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := server.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, c := newTestService(t, server.Config{Store: store})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, ckptConfig())
	if err != nil {
		t.Fatal(err)
	}
	runSeq(t, sess, 1, 1)
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.nbse"))
	if err != nil || len(files) != 1 {
		t.Fatalf("stored envelopes = %v, %v", files, err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(files[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("envelope survived session delete: %v", err)
	}
	// A deleted session cannot be resurrected.
	_, err = sess.Restore(ctx)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != server.CodeNoCheckpoint {
		t.Fatalf("restore after delete = %v, want no_checkpoint", err)
	}
}

func TestFSStoreRejectsHostileIDs(t *testing.T) {
	store, err := server.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", "UPPER", strings.Repeat("a", 65)} {
		if err := store.Put(context.Background(), id, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile id", id)
		}
		if _, err := store.Get(context.Background(), id); err == nil {
			t.Errorf("Get(%q) accepted a hostile id", id)
		}
	}
}

package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// rateWindow computes words/sec between consecutive /metrics scrapes.
type rateWindow struct {
	mu        sync.Mutex
	lastTime  time.Time
	lastWords uint64
}

// sample returns the word rate since the previous call (0 on the first).
func (r *rateWindow) sample(now time.Time, words uint64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rate float64
	if !r.lastTime.IsZero() {
		if dt := now.Sub(r.lastTime).Seconds(); dt > 0 {
			rate = float64(words-r.lastWords) / dt
		}
	}
	r.lastTime = now
	r.lastWords = words
	return rate
}

// handleMetrics serves Prometheus text exposition format (0.0.4). Every
// value is an atomic or lock-scoped snapshot: scraping never touches a
// session's simulator, so it is safe while sessions stream.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	drain := 0
	if s.draining.Load() {
		drain = 1
	}
	gauge("nanobusd_up", "1 while the service is serving.", 1)
	gauge("nanobusd_draining", "1 after Drain(): new sessions are refused.", drain)
	gauge("nanobusd_uptime_seconds", "Seconds since the server was built.",
		fmt.Sprintf("%.3f", time.Since(s.start).Seconds()))
	gauge("nanobusd_sessions_active", "Open sessions.", s.active.Load())
	counter("nanobusd_sessions_created_total", "Sessions ever created.", s.createdTotal.Load())
	counter("nanobusd_sessions_recycled_total", "Sessions served by a pooled simulator.", s.recycledTotal.Load())
	counter("nanobusd_sessions_closed_total", "Sessions closed by DELETE.", s.closedTotal.Load())

	words := s.wordsTotal.Load()
	counter("nanobusd_words_total", "Trace words simulated.", words)
	counter("nanobusd_idle_cycles_total", "Idle cycles simulated.", s.idleTotal.Load())
	counter("nanobusd_samples_total", "Sampling intervals closed.", s.samplesTotal.Load())
	gauge("nanobusd_words_per_second", "Word throughput since the previous scrape.",
		fmt.Sprintf("%.3f", s.rate.sample(time.Now(), words)))

	counter("nanobusd_checkpoints_total", "Checkpoints taken (manual and automatic).", s.checkpointsTotal.Load())
	counter("nanobusd_checkpoint_failures_total", "Automatic checkpoints that failed to persist.", s.checkpointFailedTotal.Load())
	counter("nanobusd_restores_total", "Session restores (in-place and resurrection).", s.restoresTotal.Load())
	counter("nanobusd_sessions_resurrected_total", "Sessions rebuilt from stored checkpoints after loss.", s.resurrectedTotal.Load())
	counter("nanobusd_seq_duplicates_total", "Sequenced batches acknowledged idempotently without re-stepping.", s.seqDuplicatesTotal.Load())

	s.nbwpMu.Lock()
	nbwpActive := len(s.nbwpConns)
	s.nbwpMu.Unlock()
	gauge("nanobusd_nbwp_connections_active", "Open NBWP connections.", nbwpActive)
	counter("nanobusd_nbwp_connections_total", "NBWP connections ever accepted.", s.nbwpConnsTotal.Load())
	counter("nanobusd_nbwp_frames_in_total", "NBWP frames received.", s.nbwpFramesIn.Load())
	counter("nanobusd_nbwp_frames_out_total", "NBWP frames sent (acks, samples, errors, drains).", s.nbwpFramesOut.Load())
	counter("nanobusd_nbwp_step_frames_total", "NBWP STEP/STEP_IDLE frames applied.", s.nbwpStepFrames.Load())
	counter("nanobusd_nbwp_errors_total", "NBWP frames answered with an ERROR frame.", s.nbwpErrorsTotal.Load())

	hits, misses := s.memoHits.Load(), s.memoMisses.Load()
	counter("nanobusd_memo_hits_total", "Transition-memo hits (harvested per request).", hits)
	counter("nanobusd_memo_misses_total", "Transition-memo misses (harvested per request).", misses)
	hitRate := 0.0
	if n := hits + misses; n > 0 {
		hitRate = float64(hits) / float64(n)
	}
	gauge("nanobusd_memo_hit_rate", "Hits over lookups across all harvested sessions.",
		fmt.Sprintf("%.6f", hitRate))

	fmt.Fprintf(&b, "# HELP nanobusd_shard_queue_depth Step/result/delete requests waiting for or holding a session.\n")
	fmt.Fprintf(&b, "# TYPE nanobusd_shard_queue_depth gauge\n")
	for i, sh := range s.shards {
		fmt.Fprintf(&b, "nanobusd_shard_queue_depth{shard=\"%d\"} %d\n", i, sh.queue.Load())
	}
	fmt.Fprintf(&b, "# HELP nanobusd_shard_sessions Open sessions per shard.\n")
	fmt.Fprintf(&b, "# TYPE nanobusd_shard_sessions gauge\n")
	for i, sh := range s.shards {
		sh.mu.Lock()
		n := len(sh.sessions)
		sh.mu.Unlock()
		fmt.Fprintf(&b, "nanobusd_shard_sessions{shard=\"%d\"} %d\n", i, n)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write([]byte(b.String())); err != nil {
		// Scraper went away; nothing to do.
		return
	}
}

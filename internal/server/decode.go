package server

import (
	"encoding/binary"
	"sync"
	"unsafe"
)

// hostLittleEndian reports whether the host's native byte order matches
// the wire format (little-endian uint32 words), decided once at init.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// decodeWords views or decodes the little-endian uint32 words in src
// (len(src) must be a multiple of 4). On little-endian hosts with an
// aligned buffer the returned slice aliases src — a zero-copy
// reinterpretation; callers must be done with the words before reusing
// src. Elsewhere it decodes into dst and returns dst[:len(src)/4].
//
//nanolint:hotpath zero-copy ingest path; the view must not allocate
func decodeWords(dst []uint32, src []byte) []uint32 {
	n := len(src) / 4
	if n == 0 {
		return dst[:0]
	}
	p := unsafe.SliceData(src)
	if hostLittleEndian && uintptr(unsafe.Pointer(p))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(p)), n)
	}
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return dst[:n]
}

// frame is one pooled ingest buffer set: the raw read chunk and the
// decode fallback, both sized to Config.MaxBatchWords.
type frame struct {
	buf   []byte
	words []uint32
}

// framePool recycles ingest frames so the binary hot path costs zero
// steady-state allocations per request instead of ~5×MaxBatchWords bytes.
type framePool struct {
	p sync.Pool
}

func newFramePool(maxWords int) *framePool {
	return &framePool{p: sync.Pool{New: func() any {
		return &frame{
			buf:   make([]byte, maxWords*4),
			words: make([]uint32, maxWords),
		}
	}}}
}

func (fp *framePool) get() *frame  { return fp.p.Get().(*frame) }
func (fp *framePool) put(f *frame) { fp.p.Put(f) }

// scanBufPool recycles the NDJSON scanner's initial buffer. The scanner
// may grow past it (up to the request's maxLine); the original stays
// reusable either way, so put always returns what get handed out.
type scanBufPool struct {
	p sync.Pool
}

func newScanBufPool(size int) *scanBufPool {
	return &scanBufPool{p: sync.Pool{New: func() any {
		b := make([]byte, size)
		return &b
	}}}
}

func (sp *scanBufPool) get() *[]byte  { return sp.p.Get().(*[]byte) }
func (sp *scanBufPool) put(b *[]byte) { sp.p.Put(b) }

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"nanobus/internal/core"
	"nanobus/internal/faultinject"
	"nanobus/internal/nbwp"
)

// This file is the NBWP transport: the same session machinery as the v1
// HTTP surface — shards, per-session semaphores, ?seq= write-ahead
// idempotency, checkpoint stores, the simulator pool — behind persistent
// framed TCP instead of per-batch requests. One goroutine serves each
// connection, processing frames strictly in arrival order and answering
// every client frame with exactly one ACK or ERROR frame, so pipelined
// clients correlate responses by FIFO position. Throughput comes from
// pipelining: the client streams STEP frames without waiting, acks
// accumulate in the connection's buffered writer, and the writer is
// flushed only when the read side would block — a full round-trip per
// batch becomes one syscall per burst in each direction.

// nbwpBufSize sizes each connection's buffered reader and writer.
const nbwpBufSize = 64 << 10

// ServeNBWP accepts NBWP connections on lis until the listener closes;
// it always returns a non-nil error (net.ErrClosed after Drain). Run it
// on its own goroutine beside http.Server.Serve; both surfaces share one
// session table, so a session created over HTTP can be attached over
// NBWP and vice versa.
func (s *Server) ServeNBWP(lis net.Listener) error {
	s.nbwpMu.Lock()
	if s.draining.Load() {
		s.nbwpMu.Unlock()
		//nanolint:ignore droppederr the listener is being refused, not used; close is best-effort
		_ = lis.Close()
		return net.ErrClosed
	}
	s.nbwpLis = append(s.nbwpLis, lis)
	s.nbwpMu.Unlock()
	for {
		c, err := lis.Accept()
		if err != nil {
			return err
		}
		if s.draining.Load() {
			// Drain closed the listener, but a connection already in the
			// accept queue can slip through; refuse it.
			//nanolint:ignore droppederr refused connection; nothing to report to
			_ = c.Close()
			continue
		}
		s.nbwpWG.Add(1)
		go s.serveNBWPConn(c)
	}
}

// ShutdownNBWP waits for every NBWP connection to finish its in-flight
// pipelined work and close — call Drain first so clients get DRAIN
// frames and stop sending. When ctx expires the remaining connections
// are force-closed and their contexts canceled; ShutdownNBWP still waits
// for the goroutines to unwind before returning ctx's error.
func (s *Server) ShutdownNBWP(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.nbwpWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.nbwpMu.Lock()
	for nc := range s.nbwpConns {
		nc.cancel()
		//nanolint:ignore droppederr force-close on shutdown deadline; the error has nowhere to go
		_ = nc.c.Close()
	}
	s.nbwpMu.Unlock()
	<-done
	return ctx.Err()
}

// drainNBWP stops the accept loops and tells every live connection to
// wind down. Called by Drain.
func (s *Server) drainNBWP() {
	s.nbwpMu.Lock()
	lis := s.nbwpLis
	s.nbwpLis = nil
	conns := make([]*nbwpConn, 0, len(s.nbwpConns))
	for nc := range s.nbwpConns {
		conns = append(conns, nc)
	}
	s.nbwpMu.Unlock()
	for _, l := range lis {
		//nanolint:ignore droppederr closing a listener during drain; the accept loop reports the exit
		_ = l.Close()
	}
	for _, nc := range conns {
		nc.sendDrain()
	}
}

// nbwpConn is one NBWP connection: up to 255 sessions multiplexed over
// persistent TCP, served by a single goroutine in frame order.
type nbwpConn struct {
	s      *Server
	c      net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	br     *bufio.Reader
	fr     nbwp.FrameReader

	// wmu serializes frame writes and flushes between the connection
	// goroutine (acks, samples) and Drain's broadcast goroutine.
	wmu sync.Mutex
	bw  *bufio.Writer
	fw  nbwp.FrameWriter

	// slots maps the header slot byte onto bound sessions; stream marks
	// slots opened with FlagStream (SAMPLE frames wanted).
	slots  [256]*session
	stream [256]bool

	// payload is the reused control-plane response buffer; ackBuf is the
	// fixed STEP ack scratch (a struct field so the hot path stays off
	// the heap); words is the lazily-grown fallback for the rare
	// unaligned STEP payload nbwp.Words cannot view in place.
	payload []byte
	ackBuf  [nbwp.StepAckLen]byte
	words   []uint32

	drained atomic.Bool
}

func (s *Server) serveNBWPConn(c net.Conn) {
	defer s.nbwpWG.Done()
	ctx, cancel := context.WithCancel(context.Background())
	nc := &nbwpConn{
		s:      s,
		c:      c,
		ctx:    ctx,
		cancel: cancel,
		br:     bufio.NewReaderSize(c, nbwpBufSize),
		bw:     bufio.NewWriterSize(c, nbwpBufSize),
	}
	nc.fr = nbwp.FrameReader{R: nc.br, Max: nbwp.MaxPayload}
	nc.fw = nbwp.FrameWriter{W: nc.bw}

	s.nbwpMu.Lock()
	s.nbwpConns[nc] = struct{}{}
	draining := s.draining.Load()
	s.nbwpMu.Unlock()
	s.nbwpConnsTotal.Add(1)
	defer func() {
		cancel()
		s.nbwpMu.Lock()
		delete(s.nbwpConns, nc)
		s.nbwpMu.Unlock()
		//nanolint:ignore droppederr the connection is ending either way; close is best-effort
		_ = c.Close()
	}()
	if draining {
		// The connection raced Drain's broadcast; tell it directly.
		nc.sendDrain()
	}
	nc.serve()
}

// serve is the connection loop: flush pending acks when the next read
// would block, read one frame, dispatch it. Dispatch reporting false
// (GOODBYE, write failure) ends the connection; the final flush pushes
// out whatever the last burst produced.
func (nc *nbwpConn) serve() {
	defer nc.flush()
	var h nbwp.Header
	for {
		if nc.br.Buffered() == 0 {
			// The pipelined burst is consumed; push its acks before
			// blocking so a waiting client always makes progress.
			if !nc.flush() {
				return
			}
		}
		payload, err := nc.fr.ReadFrame(&h)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Framing is unrecoverable after a damaged header; report
				// once and hang up.
				nc.reply(nbwp.Header{}, http.StatusBadRequest, CodeBadRequest, err.Error())
			}
			return
		}
		nc.s.nbwpFramesIn.Add(1)
		if !nc.dispatch(h, payload) {
			return
		}
	}
}

func (nc *nbwpConn) flush() bool {
	nc.wmu.Lock()
	err := nc.bw.Flush()
	nc.wmu.Unlock()
	return err == nil
}

func (nc *nbwpConn) dispatch(h nbwp.Header, payload []byte) bool {
	switch h.Type {
	case nbwp.TypeHello:
		// Version agreement is implicit: a mismatched header already
		// failed the frame codec.
		return nc.ack(h, 0, nil)
	case nbwp.TypeOpen:
		return nc.handleOpen(h, payload)
	case nbwp.TypeStep, nbwp.TypeStepIdle:
		return nc.handleStep(h, payload)
	case nbwp.TypeResult:
		return nc.handleResult(h)
	case nbwp.TypeCheckpoint:
		return nc.handleCheckpoint(h)
	case nbwp.TypeRestore:
		return nc.handleRestore(h, payload)
	case nbwp.TypeGoodbye:
		return nc.handleGoodbye(h)
	default:
		return nc.reply(h, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown frame type %#x", uint8(h.Type)))
	}
}

// --- Frame write helpers -----------------------------------------------------

// writeFrame writes one frame into the buffered writer under wmu; false
// means the connection is broken and the caller should unwind.
func (nc *nbwpConn) writeFrame(h nbwp.Header, payload []byte) bool {
	nc.wmu.Lock()
	err := nc.fw.WriteFrame(h, payload)
	nc.wmu.Unlock()
	if err != nil {
		return false
	}
	nc.s.nbwpFramesOut.Add(1)
	return true
}

// ack answers the frame req with an ACK echoing its slot and seq.
func (nc *nbwpConn) ack(req nbwp.Header, flags uint8, payload []byte) bool {
	return nc.writeFrame(nbwp.Header{Type: nbwp.TypeAck, Flags: flags, Slot: req.Slot, Seq: req.Seq}, payload)
}

// ackJSON acks req with a JSON document payload — the same encoding/json
// serialization as the HTTP surface, so control-plane documents are
// identical across transports.
func (nc *nbwpConn) ackJSON(req nbwp.Header, v any) bool {
	data, err := json.Marshal(v)
	if err != nil {
		return nc.reply(req, http.StatusInternalServerError, CodeInternal, err.Error())
	}
	return nc.ack(req, 0, data)
}

// reply answers req with an ERROR frame carrying the v1 status and code.
func (nc *nbwpConn) reply(req nbwp.Header, status int, code, msg string) bool {
	return nc.replyWire(req, nbwp.WireError{Status: status, Code: code, Msg: msg})
}

// replyErr answers req with he, carrying the owner hint (as the same
// JSON OwnerInfo document the HTTP surface embeds) when a cluster
// redirect set one.
func (nc *nbwpConn) replyErr(req nbwp.Header, he *httpErr) bool {
	we := nbwp.WireError{Status: he.status, Code: he.code, Msg: he.msg}
	if he.owner != nil {
		if b, err := json.Marshal(he.owner); err == nil {
			we.Owner = string(b)
		}
	}
	return nc.replyWire(req, we)
}

func (nc *nbwpConn) replyWire(req nbwp.Header, we nbwp.WireError) bool {
	nc.s.nbwpErrorsTotal.Add(1)
	nc.payload = nbwp.AppendError(nc.payload[:0], we)
	return nc.writeFrame(nbwp.Header{Type: nbwp.TypeError, Slot: req.Slot, Seq: req.Seq}, nc.payload)
}

// sendDrain broadcasts the unsolicited DRAIN frame once, flushing so it
// reaches the client even mid-burst.
func (nc *nbwpConn) sendDrain() {
	if !nc.drained.CompareAndSwap(false, true) {
		return
	}
	nc.wmu.Lock()
	//nanolint:ignore droppederr drain notice is best-effort; a dead connection drains itself
	_ = nc.fw.WriteFrame(nbwp.Header{Type: nbwp.TypeDrain}, nil)
	//nanolint:ignore droppederr drain notice is best-effort; a dead connection drains itself
	_ = nc.bw.Flush()
	nc.wmu.Unlock()
}

// --- Slot helpers ------------------------------------------------------------

// slotSession resolves the frame's slot to its bound session.
func (nc *nbwpConn) slotSession(h nbwp.Header) (*session, *httpErr) {
	if h.Slot == 0 {
		return nil, herr(http.StatusBadRequest, CodeBadRequest, "frame needs a session slot (1-255)")
	}
	sess := nc.slots[h.Slot]
	if sess == nil {
		return nil, herr(http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("slot %d is not bound; OPEN it first", h.Slot))
	}
	return sess, nil
}

// reqCtx bounds one frame's work like the HTTP RequestTimeout does; the
// returned cancel must run before the next frame.
func (nc *nbwpConn) reqCtx() (context.Context, context.CancelFunc) {
	if nc.s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(nc.ctx, nc.s.cfg.RequestTimeout)
	}
	return nc.ctx, func() {}
}

// --- OPEN --------------------------------------------------------------------

func (nc *nbwpConn) handleOpen(h nbwp.Header, payload []byte) bool {
	if h.Slot == 0 {
		return nc.reply(h, http.StatusBadRequest, CodeBadRequest, "OPEN needs a session slot (1-255)")
	}
	if nc.slots[h.Slot] != nil {
		return nc.reply(h, http.StatusConflict, CodeBadRequest,
			fmt.Sprintf("slot %d is already bound", h.Slot))
	}
	var sess *session
	if h.Flags&nbwp.FlagAttach != 0 {
		existing, _, ok := nc.s.find(string(payload))
		if !ok {
			return nc.replyErr(h, nc.s.notFoundErr(string(payload)))
		}
		sess = existing
	} else {
		var req CreateSessionRequest
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nc.reply(h, http.StatusBadRequest, CodeBadRequest, "decode request: "+err.Error())
		}
		var he *httpErr
		sess, he = nc.s.openSession(req)
		if he != nil {
			return nc.replyErr(h, he)
		}
	}
	nc.slots[h.Slot] = sess
	nc.stream[h.Slot] = h.Flags&nbwp.FlagStream != 0
	info := sess.info
	info.Words = sess.words.Load()
	info.IdleCycles = sess.idle.Load()
	info.LastSeq = sess.lastSeq.Load()
	return nc.ackJSON(h, info)
}

// --- STEP / STEP_IDLE --------------------------------------------------------

// handleStep is the hot path: feed one pipelined batch to the slot's
// simulator and ack it. The ?seq= write-ahead machinery is byte-for-byte
// the HTTP handler's — same dirty flag, same duplicate ack, same gap
// conflict — so a client may interleave transports mid-stream and the
// exactly-once guarantee holds.
func (nc *nbwpConn) handleStep(h nbwp.Header, payload []byte) bool {
	sess, he := nc.slotSession(h)
	if he != nil {
		return nc.replyErr(h, he)
	}
	hasSeq := h.Flags&nbwp.FlagSeq != 0
	seq := uint64(h.Seq)
	if hasSeq && seq == 0 {
		return nc.reply(h, http.StatusBadRequest, CodeBadRequest, "seq must be a positive integer")
	}
	if h.Type == nbwp.TypeStep {
		if len(payload)%4 != 0 {
			return nc.reply(h, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("binary body length is not a multiple of 4 (%d trailing bytes)", len(payload)%4))
		}
		if len(payload)/4 > nc.s.cfg.MaxBatchWords {
			return nc.reply(h, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
				fmt.Sprintf("batch of %d words exceeds the %d-word limit", len(payload)/4, nc.s.cfg.MaxBatchWords))
		}
		if sess.buses > 1 && (len(payload)/4)%sess.buses != 0 {
			// Unlike the chunked HTTP body, a STEP frame is one complete
			// batch, so row alignment is checked up front.
			return nc.reply(h, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("batch of %d words is not a multiple of the session's %d buses", len(payload)/4, sess.buses))
		}
	}
	ctx, cancel := nc.reqCtx()
	defer cancel()
	if err := nc.s.acquireSession(ctx, sess); err != nil {
		return nc.reply(h, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
	}
	defer sess.release()
	if sess.closed {
		return nc.replyErr(h, nc.s.closedErr(sess.id))
	}
	defer nc.s.harvestMemo(sess)

	if hasSeq {
		if sess.dirtySeq {
			return nc.reply(h, http.StatusConflict, CodeSeqConflict,
				"a sequenced batch failed mid-apply; restore from a checkpoint before retrying")
		}
		last := sess.lastSeq.Load()
		switch {
		case seq <= last:
			// Already applied: acknowledge idempotently — nothing
			// re-steps, so a replayed batch can never double-count energy.
			sum := sess.lastSum
			if seq != last {
				sum = StepSummary{}
			}
			sum.Cycles = sess.cycleCount()
			nc.s.seqDuplicatesTotal.Add(1)
			nbwp.PutStepAck(&nc.ackBuf, nbwp.StepAck{
				Words: sum.Words, Idle: sum.Idle, Cycles: sum.Cycles, Samples: sum.Samples,
			})
			return nc.ack(h, nbwp.FlagDuplicate, nc.ackBuf[:])
		case seq > last+1:
			return nc.reply(h, http.StatusConflict, CodeSeqGap,
				fmt.Sprintf("seq %d skips ahead; expected %d", seq, last+1))
		}
		// seq == last+1: write-ahead intent before any word reaches the
		// simulator; a mid-apply death leaves the flag set and all seq
		// traffic conflicts until a restore rewinds the state.
		sess.dirtySeq = true
	}

	var sum StepSummary
	streaming := nc.stream[h.Slot]
	multi := sess.buses > 1
	adaptive := sess.sim != nil && sess.sim.Adaptive()
	writeOK := true
	sess.setOnSample(func(bus int, cs core.Sample) {
		sum.Samples++
		nc.s.samplesTotal.Add(1)
		if streaming && writeOK {
			// Samples interleave ahead of the batch's ack, append-encoded
			// into the connection's reused buffer. Multi-bus sessions
			// prefix the bus index; adaptive sessions append the encoder
			// tail; each flags its layout.
			var flags uint8
			switch {
			case multi:
				flags = nbwp.FlagMultiSample
				nc.payload = nbwp.AppendBusSample(nc.payload[:0], uint32(bus), toNBWPSample(fromCoreSample(cs)))
			case adaptive:
				flags = nbwp.FlagAdaptiveSample
				nc.payload = nbwp.AppendAdaptiveSample(nc.payload[:0], toNBWPSample(fromCoreSample(cs)), cs.Encoder, cs.Switched)
			default:
				nc.payload = appendNBWPSample(nc.payload[:0], fromCoreSample(cs))
			}
			writeOK = nc.writeFrame(nbwp.Header{Type: nbwp.TypeSample, Flags: flags, Slot: h.Slot}, nc.payload)
		}
	})
	defer sess.setOnSample(nil)

	var stepErr error
	if h.Type == nbwp.TypeStep {
		// Chaos harnesses arm this to fail an ingest batch mid-stream —
		// the same failpoint as the HTTP binary path.
		if ferr := faultinject.Hit("server.ingest.decode"); ferr != nil {
			stepErr = herr(http.StatusBadRequest, CodeBadRequest, "decode binary batch: "+ferr.Error())
		} else if len(payload) > 0 {
			if need := len(payload) / 4; cap(nc.words) < need {
				nc.words = make([]uint32, need)
			}
			stepErr = nc.s.stepWords(ctx, sess, nbwp.Words(nc.words, payload), &sum)
		}
	} else {
		idle, perr := nbwp.ParseIdle(payload)
		if perr != nil {
			stepErr = herr(http.StatusBadRequest, CodeBadRequest, perr.Error())
		} else if idle > 0 {
			stepErr = nc.s.stepIdle(ctx, sess, idle, &sum)
		}
	}
	sum.Cycles = sess.cycleCount()

	if stepErr != nil {
		return nc.replyErr(h, asHTTPErr(stepErr))
	}
	if hasSeq {
		sess.dirtySeq = false
		sess.lastSeq.Store(seq)
		sum.Seq = seq
		sess.lastSum = sum
	}
	nc.s.maybeAutoCheckpoint(ctx, sess)
	nc.s.nbwpStepFrames.Add(1)
	nbwp.PutStepAck(&nc.ackBuf, nbwp.StepAck{
		Words: sum.Words, Idle: sum.Idle, Cycles: sum.Cycles, Samples: sum.Samples,
	})
	return nc.ack(h, 0, nc.ackBuf[:])
}

// toNBWPSample converts a wire Sample to the NBWP binary form (the bus
// tag travels in the frame layout, not the sample body).
func toNBWPSample(s Sample) nbwp.Sample {
	return nbwp.Sample{
		EndCycle:    s.EndCycle,
		EnergyJ:     s.EnergyJ,
		SelfJ:       s.SelfJ,
		CoupAdjJ:    s.CoupAdjJ,
		CoupNonAdjJ: s.CoupNonAdjJ,
		AvgTempK:    s.AvgTempK,
		MaxTempK:    s.MaxTempK,
		MaxWire:     int32(s.MaxWire),
		WireTempsK:  s.WireTempsK,
	}
}

// appendNBWPSample encodes a wire Sample into the NBWP binary layout.
func appendNBWPSample(dst []byte, s Sample) []byte {
	return nbwp.AppendSample(dst, toNBWPSample(s))
}

// --- RESULT ------------------------------------------------------------------

func (nc *nbwpConn) handleResult(h nbwp.Header) bool {
	sess, he := nc.slotSession(h)
	if he != nil {
		return nc.replyErr(h, he)
	}
	ctx, cancel := nc.reqCtx()
	defer cancel()
	if err := nc.s.acquireSession(ctx, sess); err != nil {
		return nc.reply(h, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
	}
	defer sess.release()
	if sess.closed {
		return nc.replyErr(h, nc.s.closedErr(sess.id))
	}
	defer nc.s.harvestMemo(sess)
	res, rhe := nc.s.resultLocked(sess, h.Flags&nbwp.FlagNoFinish == 0)
	if rhe != nil {
		return nc.replyErr(h, rhe)
	}
	return nc.ackJSON(h, res)
}

// --- CHECKPOINT --------------------------------------------------------------

func (nc *nbwpConn) handleCheckpoint(h nbwp.Header) bool {
	download := h.Flags&nbwp.FlagDownload != 0
	if nc.s.cfg.Store == nil && !download {
		return nc.reply(h, http.StatusNotImplemented, CodeNoStore,
			"no checkpoint store configured; use FlagDownload to fetch the envelope inline")
	}
	sess, he := nc.slotSession(h)
	if he != nil {
		return nc.replyErr(h, he)
	}
	ctx, cancel := nc.reqCtx()
	defer cancel()
	if err := nc.s.acquireSession(ctx, sess); err != nil {
		return nc.reply(h, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
	}
	defer sess.release()
	if sess.closed {
		return nc.replyErr(h, nc.s.closedErr(sess.id))
	}
	if sess.dirtySeq {
		return nc.reply(h, http.StatusConflict, CodeSeqConflict,
			"a sequenced batch failed mid-apply; restore from a checkpoint first")
	}
	info, data, err := nc.s.checkpointLocked(ctx, sess)
	if err != nil {
		return nc.replyErr(h, asHTTPErr(err))
	}
	if download {
		return nc.ack(h, nbwp.FlagDownload, data)
	}
	return nc.ackJSON(h, info)
}

// --- RESTORE -----------------------------------------------------------------

func (nc *nbwpConn) handleRestore(h nbwp.Header, payload []byte) bool {
	if h.Slot == 0 {
		return nc.reply(h, http.StatusBadRequest, CodeBadRequest, "RESTORE needs a session slot (1-255)")
	}
	id, envData, perr := nbwp.ParseRestore(payload)
	if perr != nil {
		return nc.reply(h, http.StatusBadRequest, CodeBadRequest, perr.Error())
	}
	if id == "" {
		bound := nc.slots[h.Slot]
		if bound == nil {
			return nc.reply(h, http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("slot %d is not bound and the RESTORE names no session", h.Slot))
		}
		id = bound.id
	}
	ctx, cancel := nc.reqCtx()
	defer cancel()
	if len(envData) == 0 {
		if nc.s.cfg.Store == nil {
			return nc.reply(h, http.StatusNotImplemented, CodeNoStore,
				"no checkpoint store configured and no inline envelope sent")
		}
		b, err := nc.s.cfg.Store.Get(ctx, id)
		if noCheckpoint(err) {
			return nc.reply(h, http.StatusNotFound, CodeNoCheckpoint, err.Error())
		}
		if err != nil {
			return nc.reply(h, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		envData = b
	} else if len(envData) > maxEnvelopeBytes {
		return nc.reply(h, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Sprintf("envelope exceeds %d bytes", maxEnvelopeBytes))
	}
	env, err := decodeEnvelope(envData)
	if err != nil {
		return nc.replyErr(h, asHTTPErr(err))
	}
	resp, rhe := nc.s.restoreSession(ctx, id, env)
	if rhe != nil {
		return nc.replyErr(h, rhe)
	}
	// Bind (or rebind) the slot to the restored session so the stream
	// resumes on this connection without a separate OPEN.
	if sess, _, ok := nc.s.find(id); ok {
		nc.slots[h.Slot] = sess
	}
	return nc.ackJSON(h, resp)
}

// --- GOODBYE -----------------------------------------------------------------

func (nc *nbwpConn) handleGoodbye(h nbwp.Header) bool {
	if h.Slot == 0 {
		// Connection goodbye: ack, then hang up. Bound sessions stay
		// registered — like an HTTP client going away, they remain
		// addressable for reattach.
		nc.ack(h, 0, nil)
		return false
	}
	sess, he := nc.slotSession(h)
	if he != nil {
		return nc.replyErr(h, he)
	}
	ctx, cancel := nc.reqCtx()
	defer cancel()
	if err := nc.s.acquireSession(ctx, sess); err != nil {
		return nc.reply(h, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
	}
	defer sess.release()
	if sess.closed {
		nc.slots[h.Slot] = nil
		nc.stream[h.Slot] = false
		return nc.replyErr(h, nc.s.closedErr(sess.id))
	}
	resp := nc.s.closeLocked(ctx, sess, nc.s.shards[shardOf(sess.id, len(nc.s.shards))])
	nc.slots[h.Slot] = nil
	nc.stream[h.Slot] = false
	return nc.ackJSON(h, resp)
}

package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"

	"nanobus/internal/blob"
	"nanobus/internal/core"
)

// BlobStore persists checkpoint envelopes by session id: context-aware
// Put/Get/List/Delete (see nanobus/internal/blob). In cluster mode the
// configured store is a blob.Replicated fanning out to peer nodes, which
// is how sessions survive the death of the node that wrote them.
type BlobStore = blob.Store

// ErrNoCheckpoint is the sentinel for "the store holds no checkpoint for
// the id". The blob package reports the same condition as
// blob.ErrNotFound; the server accepts either and maps both onto
// CodeNoCheckpoint.
var ErrNoCheckpoint = errors.New("server: no checkpoint for session")

// noCheckpoint reports whether err means the store holds no envelope.
func noCheckpoint(err error) bool {
	return errors.Is(err, ErrNoCheckpoint) || errors.Is(err, blob.ErrNotFound)
}

// CheckpointStore is the pre-cluster store interface (Save/Load/Delete,
// no context, no enumeration).
//
// Deprecated: implement blob.Store instead; it adds context propagation
// (replicated stores cross the network) and List (replication GC). Wrap
// a legacy implementation with AdaptCheckpointStore during migration.
type CheckpointStore interface {
	Save(id string, data []byte) error
	Load(id string) ([]byte, error)
	Delete(id string) error
}

// legacyStore adapts a CheckpointStore to the BlobStore interface.
type legacyStore struct{ s CheckpointStore }

func (l legacyStore) Put(_ context.Context, id string, data []byte) error { return l.s.Save(id, data) }

func (l legacyStore) Get(_ context.Context, id string) ([]byte, error) {
	data, err := l.s.Load(id)
	if err != nil && noCheckpoint(err) {
		return nil, fmt.Errorf("%w: %s", blob.ErrNotFound, id)
	}
	return data, err
}

// List is empty: legacy stores cannot enumerate, which only costs
// replication GC coverage, never a restore.
func (l legacyStore) List(context.Context) ([]string, error) { return nil, nil }

func (l legacyStore) Delete(_ context.Context, id string) error { return l.s.Delete(id) }

// AdaptCheckpointStore wraps a legacy CheckpointStore as a BlobStore so
// pre-cluster store implementations keep working for one release while
// they migrate to blob.Store.
func AdaptCheckpointStore(s CheckpointStore) BlobStore { return legacyStore{s} }

// NewMemStore builds an empty in-memory store. Kept as an alias for
// blob.NewMemStore so pre-cluster callers compile unchanged.
func NewMemStore() *blob.MemStore { return blob.NewMemStore() }

// NewFSStore builds a filesystem store rooted at dir. Kept as an alias
// for blob.NewFSStore so pre-cluster callers compile unchanged; the
// on-disk layout (one <id>.nbse per session) is identical.
func NewFSStore(dir string) (*blob.FSStore, error) { return blob.NewFSStore(dir) }

// ValidateEnvelope reports whether data parses as a structurally sound
// NBSE checkpoint envelope (magic, version, section lengths, CRC). It is
// the integrity check a replicated blob store runs before trusting a
// copy — a torn replica is skipped, not restored.
func ValidateEnvelope(data []byte) error {
	_, err := decodeEnvelope(data)
	return err
}

// --- Envelope codec ---------------------------------------------------------

// The server checkpoint envelope wraps a core.Simulator checkpoint blob
// with everything the service layer needs to resurrect the session in a
// fresh process: the write-ahead sequence number, the words/idle
// counters, and the normalized CreateSessionRequest JSON. Layout (all
// little-endian): magic "NBSE", version u16, seq u64, words u64, idle
// u64, cfg (u32 length + JSON bytes), core blob (u32 length + bytes),
// CRC-32 (IEEE) of every preceding byte.
const (
	envelopeMagic   = "NBSE"
	envelopeVersion = 1
	// maxEnvelopeBytes bounds inline restore bodies and decoded section
	// lengths; a session with millions of retained samples should use
	// DropSamples, not a multi-GB checkpoint.
	maxEnvelopeBytes = 64 << 20
	maxCfgBytes      = 1 << 20
)

type envelope struct {
	Seq   uint64
	Words uint64
	Idle  uint64
	Cfg   []byte // normalized CreateSessionRequest JSON
	Core  []byte // core.Simulator checkpoint blob
}

func (e *envelope) encode() []byte {
	n := len(envelopeMagic) + 2 + 3*8 + 4 + len(e.Cfg) + 4 + len(e.Core) + 4
	b := make([]byte, 0, n)
	b = append(b, envelopeMagic...)
	b = binary.LittleEndian.AppendUint16(b, envelopeVersion)
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint64(b, e.Words)
	b = binary.LittleEndian.AppendUint64(b, e.Idle)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Cfg)))
	b = append(b, e.Cfg...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Core)))
	b = append(b, e.Core...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// decodeEnvelope validates and splits an envelope. Structural damage is
// reported as core.ErrCheckpointCorrupt so it maps onto the same wire
// code as a damaged core blob.
func decodeEnvelope(data []byte) (*envelope, error) {
	corrupt := func(what string) (*envelope, error) {
		return nil, fmt.Errorf("%w: envelope %s", core.ErrCheckpointCorrupt, what)
	}
	const trailerLen = 4
	minLen := len(envelopeMagic) + 2 + 3*8 + 4 + 4 + trailerLen
	if len(data) < minLen {
		return corrupt("truncated")
	}
	if string(data[:len(envelopeMagic)]) != envelopeMagic {
		return corrupt("has bad magic")
	}
	body, tail := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return corrupt("checksum mismatch")
	}
	off := len(envelopeMagic)
	if v := binary.LittleEndian.Uint16(body[off:]); v != envelopeVersion {
		return nil, fmt.Errorf("%w: envelope version %d (want %d)",
			core.ErrCheckpointCorrupt, v, envelopeVersion)
	}
	off += 2
	e := &envelope{}
	e.Seq = binary.LittleEndian.Uint64(body[off:])
	e.Words = binary.LittleEndian.Uint64(body[off+8:])
	e.Idle = binary.LittleEndian.Uint64(body[off+16:])
	off += 24
	cfgLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if cfgLen > maxCfgBytes || off+cfgLen+4 > len(body) {
		return corrupt("config section overruns")
	}
	e.Cfg = body[off : off+cfgLen]
	off += cfgLen
	coreLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if coreLen != len(body)-off {
		return corrupt("core section length mismatch")
	}
	e.Core = body[off:]
	return e, nil
}

// --- POST /v1/sessions/{id}/checkpoint --------------------------------------

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	download := r.URL.Query().Get("download") == "1"
	if s.cfg.Store == nil && !download {
		writeError(w, http.StatusNotImplemented, CodeNoStore,
			"no checkpoint store configured; use ?download=1 to fetch the envelope inline")
		return
	}
	sess, sh, ok := s.find(r.PathValue("id"))
	if !ok {
		writeHTTPErr(w, s.notFoundErr(r.PathValue("id")))
		return
	}
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(r.Context(), sess); err != nil {
		writeError(w, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
		return
	}
	defer sess.release()
	if sess.closed {
		writeHTTPErr(w, s.closedErr(sess.id))
		return
	}
	if sess.dirtySeq {
		writeError(w, http.StatusConflict, CodeSeqConflict,
			"a sequenced batch failed mid-apply; restore from a checkpoint first")
		return
	}
	info, data, err := s.checkpointLocked(r.Context(), sess)
	if err != nil {
		he := asHTTPErr(err)
		writeError(w, he.status, he.code, he.msg)
		return
	}
	if download {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Nanobus-Checkpoint-Sha256", info.SHA256)
		if _, err := w.Write(data); err != nil {
			// Client went away mid-download; the store copy (if any) stands.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// checkpointLocked snapshots the session into an envelope and saves it to
// the store (when configured). The caller must hold the session.
func (s *Server) checkpointLocked(ctx context.Context, sess *session) (CheckpointInfo, []byte, error) {
	blob, err := sess.snapshot()
	if err != nil {
		return CheckpointInfo{}, nil, err
	}
	env := envelope{
		Seq:   sess.lastSeq.Load(),
		Words: sess.words.Load(),
		Idle:  sess.idle.Load(),
		Cfg:   sess.reqJSON,
		Core:  blob,
	}
	data := env.encode()
	stored := false
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(ctx, sess.id, data); err != nil {
			return CheckpointInfo{}, nil, err
		}
		stored = true
	}
	sess.ckptCycles = sess.simCycles()
	s.checkpointsTotal.Add(1)
	sum := sha256.Sum256(data)
	return CheckpointInfo{
		ID:     sess.id,
		Seq:    env.Seq,
		Cycles: sess.ckptCycles,
		Bytes:  len(data),
		SHA256: hex.EncodeToString(sum[:]),
		Stored: stored,
	}, data, nil
}

// maybeAutoCheckpoint persists the session once it has simulated
// AutoCheckpointCycles cycles past its last checkpoint. Failures are
// counted, not fatal: the stream keeps flowing and the next interval
// retries. The caller must hold the session.
func (s *Server) maybeAutoCheckpoint(ctx context.Context, sess *session) {
	if s.cfg.Store == nil || s.cfg.AutoCheckpointCycles == 0 || sess.dirtySeq {
		return
	}
	if sess.simErr() != nil {
		return
	}
	if sess.simCycles()-sess.ckptCycles < s.cfg.AutoCheckpointCycles {
		return
	}
	if _, _, err := s.checkpointLocked(ctx, sess); err != nil {
		s.checkpointFailedTotal.Add(1)
	}
}

// --- PUT /v1/sessions/{id}/restore ------------------------------------------

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// An inline octet-stream body overrides the store: it is the
	// ?download=1 envelope coming back.
	var data []byte
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "read envelope: "+err.Error())
			return
		}
		if len(b) > maxEnvelopeBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
				fmt.Sprintf("envelope exceeds %d bytes", maxEnvelopeBytes))
			return
		}
		data = b
	}
	if len(data) == 0 {
		if s.cfg.Store == nil {
			writeError(w, http.StatusNotImplemented, CodeNoStore,
				"no checkpoint store configured and no inline envelope sent")
			return
		}
		b, err := s.cfg.Store.Get(r.Context(), id)
		if noCheckpoint(err) {
			writeError(w, http.StatusNotFound, CodeNoCheckpoint, err.Error())
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		data = b
	}
	env, err := decodeEnvelope(data)
	if err != nil {
		he := asHTTPErr(err)
		writeError(w, he.status, he.code, he.msg)
		return
	}

	resp, he := s.restoreSession(r.Context(), id, env)
	if he != nil {
		writeError(w, he.status, he.code, he.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// restoreSession is the transport-neutral restore: a live session is
// rewound in place, a missing one resurrected from the envelope. Both
// PUT .../restore and the NBWP RESTORE frame reduce to it.
func (s *Server) restoreSession(ctx context.Context, id string, env *envelope) (RestoreResponse, *httpErr) {
	if sess, sh, ok := s.find(id); ok {
		return s.restoreLive(ctx, sess, sh, env)
	}
	return s.resurrectFrom(id, env)
}

// restoreLive rewinds a live session to the envelope's state. This is
// the recovery path for poisoned simulators and failed ?seq= batches: the
// core Restore clears the poison and the seq counters rewind with it.
func (s *Server) restoreLive(ctx context.Context, sess *session, sh *shard, env *envelope) (RestoreResponse, *httpErr) {
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(ctx, sess); err != nil {
		return RestoreResponse{}, herr(http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
	}
	defer sess.release()
	if sess.closed {
		return RestoreResponse{}, herr(http.StatusNotFound, CodeNotFound, "session closed")
	}
	if !bytes.Equal(env.Cfg, sess.reqJSON) {
		return RestoreResponse{}, herr(http.StatusConflict, CodeCheckpointMismatch,
			"checkpoint configuration does not match the session")
	}
	if err := sess.restoreBlob(env.Core); err != nil {
		return RestoreResponse{}, asHTTPErr(err)
	}
	s.applyEnvelopeState(sess, env)
	s.restoresTotal.Add(1)
	return RestoreResponse{
		ID:         sess.id,
		Seq:        env.Seq,
		Cycles:     sess.simCycles(),
		Words:      env.Words,
		IdleCycles: env.Idle,
	}, nil
}

// resurrectFrom rebuilds a session that no longer exists — a poisoned pod
// that dropped it, or a process restart — from the envelope's embedded
// configuration and core blob, registering it under its original id so
// clients resume against the same URL (or NBWP slot).
func (s *Server) resurrectFrom(id string, env *envelope) (RestoreResponse, *httpErr) {
	if s.draining.Load() {
		return RestoreResponse{}, herr(http.StatusServiceUnavailable, CodeDraining, "server is draining")
	}
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		return RestoreResponse{}, herr(http.StatusServiceUnavailable, CodeServerFull,
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
	}
	ok := false
	defer func() {
		if !ok {
			s.active.Add(-1)
		}
	}()

	var req CreateSessionRequest
	if err := json.Unmarshal(env.Cfg, &req); err != nil {
		return RestoreResponse{}, herr(http.StatusUnprocessableEntity, CodeCheckpointCorrupt,
			"envelope config: "+err.Error())
	}
	sess, he := s.buildSession(req)
	if he != nil {
		return RestoreResponse{}, he
	}
	if err := sess.restoreBlob(env.Core); err != nil {
		// A failed Restore leaves the simulator untouched; recycle it.
		if sess.sim != nil {
			s.pool.put(sess.key, sess.sim)
		}
		return RestoreResponse{}, asHTTPErr(err)
	}
	// All session state is set before registration makes it reachable.
	s.applyEnvelopeState(sess, env)
	if !s.registerSession(sess, id) {
		if sess.sim != nil {
			s.pool.put(sess.key, sess.sim)
		}
		return RestoreResponse{}, herr(http.StatusConflict, CodeSessionBusy,
			"session reappeared during restore; retry")
	}
	ok = true
	s.restoresTotal.Add(1)
	s.resurrectedTotal.Add(1)
	return RestoreResponse{
		ID:          id,
		Seq:         env.Seq,
		Cycles:      sess.simCycles(),
		Words:       env.Words,
		IdleCycles:  env.Idle,
		Resurrected: true,
	}, nil
}

// applyEnvelopeState installs the envelope's service-layer counters on a
// session whose simulator has just been restored. The caller must hold
// the session (or own it exclusively pre-registration).
func (s *Server) applyEnvelopeState(sess *session, env *envelope) {
	sess.words.Store(env.Words)
	sess.idle.Store(env.Idle)
	sess.lastSeq.Store(env.Seq)
	sess.dirtySeq = false
	// A retried duplicate of the checkpointed batch gets an idempotent
	// ack with the restored cumulative counters.
	sess.lastSum = StepSummary{Cycles: env.Words/uint64(sess.buses) + env.Idle}
	sess.ckptCycles = sess.simCycles()
	sess.lastMemo = sess.memoStats()
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nanobus/internal/cluster"
	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/faultinject"
	"nanobus/internal/itrs"
)

// maxBuses caps the bus count of one multi-bus session; a full-chip
// thermal map beyond it should shard across sessions.
const maxBuses = 256

// Config tunes a Server. Zero values take the defaults noted per field.
type Config struct {
	// Shards is the number of session-table lock domains (default 8).
	Shards int
	// MaxSessions bounds concurrently open sessions; creates beyond it
	// get 503/server_full (default 1024).
	MaxSessions int
	// MaxBatchWords bounds one NDJSON words batch and sizes the binary
	// read chunk; larger NDJSON batches get 413 (default 65536).
	MaxBatchWords int
	// MaxPoolPerKey bounds recycled simulators kept per configuration
	// (default 32).
	MaxPoolPerKey int
	// RequestTimeout bounds each step/result/delete request; zero means
	// no server-side timeout (the client context still applies).
	RequestTimeout time.Duration
	// AcquireTimeout bounds how long a request waits for a session that
	// is busy serving another request before giving up with
	// 409/session_busy (default 1s). The bound is server-side on purpose:
	// an HTTP/1 server cannot see a client disconnect until the request
	// body has been read, so waiting on the client context alone could
	// park the request forever.
	AcquireTimeout time.Duration
	// Store persists session checkpoints for PUT restore and resurrection
	// after a process restart; nil disables server-side persistence
	// (checkpoint?download=1 still works). In cluster mode this is the
	// replicated store (blob.NewReplicated) so checkpoints survive the
	// node that wrote them.
	Store BlobStore
	// PeerStore backs the /v1/cluster/blobs peer-replication endpoints.
	// It must be the node's *local* store — serving the replicated Store
	// there would cascade fan-outs between peers. Nil falls back to Store
	// (correct for single-store deployments).
	PeerStore BlobStore
	// AutoCheckpointCycles checkpoints each session to Store every N
	// simulated cycles as step requests complete; 0 disables automatic
	// checkpoints. Requires Store.
	AutoCheckpointCycles uint64
	// Cluster configures multi-node mode; the zero value (empty Self)
	// runs the server single-node with every cluster endpoint inert.
	Cluster ClusterConfig
}

// ClusterConfig names this node and its peers for multi-node mode.
type ClusterConfig struct {
	// Self is this node's member name; it must appear in Nodes.
	Self string
	// Nodes is the full static membership, including self.
	Nodes []cluster.Node
	// Replicas is the number of peer copies each checkpoint is fanned
	// out to (informational here; cmd/nanobusd builds the replicated
	// store). Reported by GET /v1/cluster.
	Replicas int
}

func (c ClusterConfig) enabled() bool { return c.Self != "" && len(c.Nodes) > 0 }

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBatchWords <= 0 {
		c.MaxBatchWords = 65536
	}
	if c.MaxPoolPerKey <= 0 {
		c.MaxPoolPerKey = 32
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = time.Second
	}
	return c
}

// Server owns the shard pool of sessions and serves the v1 API. Create
// with New, mount Handler, and call Drain before http.Server.Shutdown for
// a graceful stop.
type Server struct {
	cfg    Config
	shards []*shard
	pool   *pool
	frames *framePool
	scans  *scanBufPool
	mux    *http.ServeMux

	draining atomic.Bool
	active   atomic.Int64

	// Cluster state: the ownership ring (nil single-node) and the moved
	// table recording sessions this node migrated away, so late traffic
	// is redirected at the node that now serves them.
	ring    *cluster.Ring
	movedMu sync.Mutex
	moved   map[string]string
	peerHC  *http.Client

	migratedTotal atomic.Uint64
	notOwnerTotal atomic.Uint64
	movedTotal    atomic.Uint64

	createdTotal  atomic.Uint64
	recycledTotal atomic.Uint64
	closedTotal   atomic.Uint64
	wordsTotal    atomic.Uint64
	idleTotal     atomic.Uint64
	samplesTotal  atomic.Uint64
	memoHits      atomic.Uint64
	memoMisses    atomic.Uint64

	checkpointsTotal      atomic.Uint64
	checkpointFailedTotal atomic.Uint64
	restoresTotal         atomic.Uint64
	resurrectedTotal      atomic.Uint64
	seqDuplicatesTotal    atomic.Uint64

	// NBWP transport state: registered listeners (closed by Drain), live
	// connections (for the DRAIN broadcast and shutdown force-close), and
	// the wait group ShutdownNBWP blocks on.
	nbwpMu    sync.Mutex
	nbwpLis   []net.Listener
	nbwpConns map[*nbwpConn]struct{}
	nbwpWG    sync.WaitGroup

	nbwpConnsTotal  atomic.Uint64
	nbwpFramesIn    atomic.Uint64
	nbwpFramesOut   atomic.Uint64
	nbwpStepFrames  atomic.Uint64
	nbwpErrorsTotal atomic.Uint64

	start time.Time
	rate  rateWindow
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		pool:      newPool(cfg.MaxPoolPerKey),
		frames:    newFramePool(cfg.MaxBatchWords),
		scans:     newScanBufPool(64 * 1024),
		mux:       http.NewServeMux(),
		nbwpConns: make(map[*nbwpConn]struct{}),
		start:     time.Now(),
	}
	for i := range s.shards {
		s.shards[i] = &shard{sessions: make(map[string]*session)}
	}
	if cfg.Cluster.enabled() {
		s.ring = cluster.NewRing(cluster.Names(cfg.Cluster.Nodes))
		s.moved = make(map[string]string)
		s.peerHC = &http.Client{Timeout: 30 * time.Second}
	}
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/restore", s.handleRestore)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterStatus)
	s.mux.HandleFunc("POST /v1/cluster/sessions/{id}/migrate", s.handleMigrate)
	s.mux.HandleFunc("PUT /v1/cluster/blobs/{id}", s.handleBlobPut)
	s.mux.HandleFunc("GET /v1/cluster/blobs/{id}", s.handleBlobGet)
	s.mux.HandleFunc("DELETE /v1/cluster/blobs/{id}", s.handleBlobDelete)
	s.mux.HandleFunc("GET /v1/cluster/blobs", s.handleBlobList)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops session creation (new creates get 503/draining) while
// existing sessions keep serving, stops accepting NBWP connections, and
// broadcasts DRAIN frames so pipelined clients wind down. Pair it with
// http.Server.Shutdown and ShutdownNBWP, which wait for in-flight work.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainNBWP()
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SessionsActive returns the number of open sessions.
func (s *Server) SessionsActive() int64 { return s.active.Load() }

// --- Response plumbing ------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//nanolint:ignore droppederr a failed response write means the client is gone; no recovery path
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// writeHTTPErr writes he as the response, owner hint included.
func writeHTTPErr(w http.ResponseWriter, he *httpErr) {
	writeJSON(w, he.status, ErrorResponse{Error: he.msg, Code: he.code, Owner: he.owner})
}

// httpErr carries an error with its v1 status and code through the body
// consumers; owner rides along on cluster redirects.
type httpErr struct {
	status int
	code   string
	msg    string
	owner  *OwnerInfo
}

// herr builds an ownerless httpErr (the common case).
func herr(status int, code, msg string) *httpErr {
	return &httpErr{status: status, code: code, msg: msg}
}

func (e *httpErr) Error() string { return e.msg }

// asHTTPErr maps simulator/context errors onto wire errors.
func asHTTPErr(err error) *httpErr {
	var he *httpErr
	switch {
	case errors.As(err, &he):
		return he
	case errors.Is(err, core.ErrPoisoned):
		return herr(http.StatusInternalServerError, CodePoisoned, err.Error())
	case errors.Is(err, core.ErrCheckpointCorrupt):
		return herr(http.StatusUnprocessableEntity, CodeCheckpointCorrupt, err.Error())
	case errors.Is(err, core.ErrCheckpointMismatch):
		return herr(http.StatusConflict, CodeCheckpointMismatch, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return herr(http.StatusRequestTimeout, CodeCanceled, err.Error())
	default:
		return herr(http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// --- Session lookup ---------------------------------------------------------

func (s *Server) find(id string) (*session, *shard, bool) {
	sh := s.shards[shardOf(id, len(s.shards))]
	sess, ok := sh.lookup(id)
	return sess, sh, ok
}

// harvestMemo folds the session's memo counters since the last harvest
// into the server totals; the caller must hold the session.
func (s *Server) harvestMemo(sess *session) {
	st := sess.memoStats()
	s.memoHits.Add(st.Hits - sess.lastMemo.Hits)
	s.memoMisses.Add(st.Misses - sess.lastMemo.Misses)
	sess.lastMemo = st
}

// --- POST /v1/sessions ------------------------------------------------------

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		writeError(w, http.StatusServiceUnavailable, CodeServerFull,
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
		return
	}
	ok := false
	defer func() {
		if !ok {
			s.active.Add(-1)
		}
	}()

	var req CreateSessionRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: "+err.Error())
		return
	}
	sess, he := s.buildSession(req)
	if he != nil {
		writeError(w, he.status, he.code, he.msg)
		return
	}
	if he := s.registerFresh(sess); he != nil {
		writeError(w, he.status, he.code, he.msg)
		return
	}
	ok = true
	writeJSON(w, http.StatusCreated, sess.info)
}

// openSession is the transport-neutral session open: the draining and
// capacity gates, the simulator build (or pool recycle), and
// registration under a fresh id. Both POST /v1/sessions and the NBWP
// OPEN frame reduce to it.
func (s *Server) openSession(req CreateSessionRequest) (*session, *httpErr) {
	if s.draining.Load() {
		return nil, herr(http.StatusServiceUnavailable, CodeDraining, "server is draining")
	}
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		return nil, herr(http.StatusServiceUnavailable, CodeServerFull,
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
	}
	sess, he := s.buildSession(req)
	if he == nil {
		he = s.registerFresh(sess)
	}
	if he != nil {
		s.active.Add(-1)
		return nil, he
	}
	return sess, nil
}

// registerFresh registers sess under a newly minted id, retrying the
// (vanishingly unlikely) id collision. In cluster mode it also mints
// until the ring assigns the id to this node, so a freshly created
// session is always owned where it lives — clients can route any later
// request by hashing the id, with no ownership table to consult.
func (s *Server) registerFresh(sess *session) *httpErr {
	// With N nodes an id lands on self with probability ~1/N; 4096 tries
	// failing means the ring or the RNG is broken, not bad luck.
	const maxMintTries = 4096
	for tries := 0; ; tries++ {
		id, err := newSessionID()
		if err != nil {
			return herr(http.StatusInternalServerError, CodeInternal, err.Error())
		}
		if s.ring != nil && s.ring.Owner(id) != s.cfg.Cluster.Self {
			if tries >= maxMintTries {
				return herr(http.StatusInternalServerError, CodeInternal,
					fmt.Sprintf("could not mint a self-owned session id in %d tries", maxMintTries))
			}
			continue
		}
		if s.registerSession(sess, id) {
			s.createdTotal.Add(1)
			return nil
		}
	}
}

// buildSession validates req, builds (or recycles) its simulator, and
// returns an unregistered session carrying the normalized request JSON
// (the resurrection config embedded in checkpoint envelopes). The caller
// owns registration and the active-session counter.
func (s *Server) buildSession(req CreateSessionRequest) (*session, *httpErr) {
	node, err := itrs.Resolve(req.Node)
	if err != nil {
		return nil, herr(http.StatusBadRequest, CodeUnknownNode, err.Error())
	}
	if req.Adaptive != nil {
		switch {
		case req.Encoding != "":
			return nil, herr(http.StatusBadRequest, CodeBadRequest,
				"adaptive and encoding are mutually exclusive (the controller names its own schemes)")
		case req.Buses > 1:
			return nil, herr(http.StatusBadRequest, CodeBadRequest,
				"adaptive requires a scalar session (buses <= 1)")
		}
		if _, err := encoding.New(req.Adaptive.Base); err != nil {
			return nil, herr(http.StatusBadRequest, CodeUnknownEncoding, "adaptive base: "+err.Error())
		}
		if _, err := encoding.New(req.Adaptive.Cool); err != nil {
			return nil, herr(http.StatusBadRequest, CodeUnknownEncoding, "adaptive cool: "+err.Error())
		}
	}
	encName := req.Encoding
	if encName == "" {
		encName = "Unencoded"
	}
	var enc encoding.Encoder
	if req.Adaptive == nil {
		enc, err = encoding.New(encName)
		if err != nil {
			return nil, herr(http.StatusBadRequest, CodeUnknownEncoding, err.Error())
		}
	}
	if req.LengthM < 0 {
		return nil, herr(http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("negative bus length %g", req.LengthM))
	}
	buses := req.Buses
	if buses == 0 {
		buses = 1
	}
	switch {
	case buses < 1 || buses > maxBuses:
		return nil, herr(http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("buses %d outside [1, %d]", req.Buses, maxBuses))
	case buses > s.cfg.MaxBatchWords:
		// The binary ingest chunk must hold at least one interleaved row.
		return nil, herr(http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("buses %d exceeds the %d-word batch limit", buses, s.cfg.MaxBatchWords))
	case buses == 1 && (req.BusGapPitches != 0 || req.DisableBusCoupling): //nanolint:ignore floateq zero means the field was absent
		return nil, herr(http.StatusBadRequest, CodeBadRequest,
			"bus_gap_pitches and disable_bus_coupling require buses > 1")
	case req.BusGapPitches < 0:
		return nil, herr(http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("negative bus gap %g", req.BusGapPitches))
	}

	// Normalise to the effective configuration so pool keys, SessionInfo
	// and the envelope config reflect what actually runs.
	length := req.LengthM
	if length == 0 { //nanolint:ignore floateq zero means the field was absent
		length = core.DefaultLength
	}
	interval := req.IntervalCycles
	if interval == 0 {
		interval = core.DefaultIntervalCycles
	}
	depth := -1
	if req.CouplingDepth != nil {
		depth = *req.CouplingDepth
	}
	norm := CreateSessionRequest{
		Node:           node.Name,
		Encoding:       encName,
		LengthM:        length,
		IntervalCycles: interval,
		CouplingDepth:  &depth,
		TrackWireTemps: req.TrackWireTemps,
		MemoSizeLog2:   req.MemoSizeLog2,
		DropSamples:    req.DropSamples,
	}
	if req.Adaptive != nil {
		// Adaptive sessions leave Encoding out of the normalized JSON —
		// the controller spec names its schemes — so the envelope config
		// round-trips through the mutual-exclusion check above.
		norm.Encoding = ""
		spec := *req.Adaptive
		norm.Adaptive = &spec
	}
	if buses > 1 {
		// The multi fields are zero for scalar sessions, so their
		// normalized JSON — and with it every v1 checkpoint envelope —
		// stays byte-identical to the single-bus wire format.
		norm.Buses = buses
		norm.BusGapPitches = req.BusGapPitches
		norm.DisableBusCoupling = req.DisableBusCoupling
	}
	reqJSON, err := json.Marshal(norm)
	if err != nil {
		return nil, herr(http.StatusInternalServerError, CodeInternal, err.Error())
	}
	cfg := core.Config{
		Node:           node,
		Length:         length,
		Encoder:        enc,
		CouplingDepth:  depth,
		IntervalCycles: interval,
		TrackWireTemps: req.TrackWireTemps,
		MemoSizeLog2:   req.MemoSizeLog2,
		DropSamples:    req.DropSamples,
	}
	info := SessionInfo{
		Node:           node.Name,
		Encoding:       encName,
		LengthM:        length,
		IntervalCycles: interval,
		CouplingDepth:  depth,
	}
	if req.Adaptive != nil {
		cfg.Adaptive = &core.AdaptiveConfig{
			Base:        req.Adaptive.Base,
			Cool:        req.Adaptive.Cool,
			CeilingK:    req.Adaptive.CeilingK,
			GuardK:      req.Adaptive.GuardK,
			HysteresisK: req.Adaptive.HysteresisK,
		}
		info.Encoding = "adaptive"
		info.Adaptive = norm.Adaptive
		// Adaptive sessions skip the pool (the key carries no controller
		// tuning) and always build fresh.
		sim, err := core.New(cfg)
		if err != nil {
			return nil, herr(http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		info.Width = sim.Width()
		return &session{
			sim:      sim,
			buses:    1,
			sem:      make(chan struct{}, 1),
			lastMemo: sim.MemoStats(),
			reqJSON:  reqJSON,
			info:     info,
		}, nil
	}
	if buses > 1 {
		// Multi-bus sessions skip the pool: the eigendecomposition and
		// memo cost scale with K, so cross-session reuse matters less and
		// keying the pool on bus geometry would fragment it.
		msim, err := core.NewMulti(core.MultiConfig{
			Config:             cfg,
			Buses:              buses,
			BusGapPitches:      req.BusGapPitches,
			DisableBusCoupling: req.DisableBusCoupling,
		})
		if err != nil {
			return nil, herr(http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		info.Width = msim.Width()
		info.Buses = buses
		return &session{
			msim:     msim,
			buses:    buses,
			sem:      make(chan struct{}, 1),
			lastMemo: msim.MemoStats(),
			reqJSON:  reqJSON,
			info:     info,
		}, nil
	}
	key := poolKey{
		node:     node.Name,
		encoding: encName,
		lengthM:  length,
		interval: interval,
		depth:    depth,
		memoLog2: req.MemoSizeLog2,
		track:    req.TrackWireTemps,
		drop:     req.DropSamples,
	}
	sim, recycled := s.pool.get(key)
	if !recycled {
		sim, err = core.New(cfg)
		if err != nil {
			return nil, herr(http.StatusBadRequest, CodeBadRequest, err.Error())
		}
	} else {
		s.recycledTotal.Add(1)
	}
	info.Width = sim.Width()
	info.Recycled = recycled
	return &session{
		key:      key,
		sim:      sim,
		buses:    1,
		sem:      make(chan struct{}, 1),
		lastMemo: sim.MemoStats(),
		reqJSON:  reqJSON,
		info:     info,
	}, nil
}

// registerSession claims id for sess, filling the id-dependent info
// fields; it reports false when the id is already taken.
func (s *Server) registerSession(sess *session, id string) bool {
	idx := shardOf(id, len(s.shards))
	sh := s.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.sessions[id]; exists {
		return false
	}
	sess.id = id
	sess.info.ID = id
	sess.info.Shard = idx
	sh.sessions[id] = sess
	// A session registering here supersedes any moved-away record (it
	// migrated back, or was resurrected locally after a failover).
	if s.moved != nil {
		s.movedMu.Lock()
		delete(s.moved, id)
		s.movedMu.Unlock()
	}
	return true
}

// --- GET /v1/sessions/{id} --------------------------------------------------

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.find(r.PathValue("id"))
	if !ok {
		writeHTTPErr(w, s.notFoundErr(r.PathValue("id")))
		return
	}
	info := sess.info
	info.Words = sess.words.Load()
	info.IdleCycles = sess.idle.Load()
	info.LastSeq = sess.lastSeq.Load()
	writeJSON(w, http.StatusOK, info)
}

// acquireSession takes the session's simulator under the server-side
// AcquireTimeout bound. The bound must not come from the client context:
// HTTP/1 servers only notice a client disconnect once the request body
// has been read, and step/result/delete acquire before touching the
// body, so an unbounded wait on a busy session could strand the
// connection past the client's own deadline.
func (s *Server) acquireSession(ctx context.Context, sess *session) error {
	if s.cfg.AcquireTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.AcquireTimeout)
		defer cancel()
	}
	return sess.acquire(ctx)
}

// --- POST /v1/sessions/{id}/step --------------------------------------------

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess, sh, ok := s.find(r.PathValue("id"))
	if !ok {
		writeHTTPErr(w, s.notFoundErr(r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	streaming := q.Get("stream") == "samples"
	var (
		seq    uint64
		hasSeq bool
	)
	if v := q.Get("seq"); v != "" {
		if streaming {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"seq cannot be combined with stream=samples")
			return
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"seq must be a positive integer")
			return
		}
		seq, hasSeq = n, true
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(ctx, sess); err != nil {
		writeError(w, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
		return
	}
	defer sess.release()
	if sess.closed {
		writeHTTPErr(w, s.closedErr(sess.id))
		return
	}
	defer s.harvestMemo(sess)

	if hasSeq {
		if sess.dirtySeq {
			writeError(w, http.StatusConflict, CodeSeqConflict,
				"a sequenced batch failed mid-apply; restore from a checkpoint before retrying")
			return
		}
		last := sess.lastSeq.Load()
		switch {
		case seq <= last:
			// Already applied: drain the body so the connection stays
			// reusable and acknowledge idempotently — nothing re-steps, so
			// a retried batch can never double-count energy.
			//nanolint:ignore droppederr draining a duplicate body is best-effort
			_, _ = io.Copy(io.Discard, r.Body)
			sum := sess.lastSum
			if seq != last {
				sum = StepSummary{}
			}
			sum.Seq = seq
			sum.Duplicate = true
			sum.Cycles = sess.cycleCount()
			s.seqDuplicatesTotal.Add(1)
			writeJSON(w, http.StatusOK, sum)
			return
		case seq > last+1:
			writeError(w, http.StatusConflict, CodeSeqGap,
				fmt.Sprintf("seq %d skips ahead; expected %d", seq, last+1))
			return
		}
		// seq == last+1: mark the write-ahead intent before any word
		// reaches the simulator. If the batch dies mid-apply the flag
		// stays set and all seq traffic gets 409/seq_conflict until a
		// restore rewinds the state — the partial application can never
		// be silently replayed.
		sess.dirtySeq = true
	}

	var (
		sum       StepSummary
		jsonOut   = json.NewEncoder(w)
		flusher   http.Flusher
		streamErr error
	)
	if streaming {
		// Samples flow back while the body is still being read; HTTP/1
		// needs explicit full-duplex (a no-op elsewhere, so the error is
		// advisory).
		//nanolint:ignore droppederr HTTP/2 and h2c are full-duplex already; nothing to enable
		_ = http.NewResponseController(w).EnableFullDuplex()
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ = w.(http.Flusher)
		w.WriteHeader(http.StatusOK)
	}
	sess.setOnSample(func(bus int, cs core.Sample) {
		sum.Samples++
		s.samplesTotal.Add(1)
		if streaming && streamErr == nil {
			// Append-encoded into the session's reused buffer;
			// byte-identical to jsonOut.Encode(StreamLine{Sample: &ws}).
			sess.encBuf = appendStreamSample(sess.encBuf[:0], fromCoreBusSample(bus, cs))
			_, streamErr = w.Write(sess.encBuf)
			if streamErr == nil && flusher != nil {
				flusher.Flush()
			}
		}
	})
	defer sess.setOnSample(nil)

	stepErr := s.consumeBody(ctx, r, sess, &sum)
	sum.Cycles = sess.cycleCount()

	if stepErr == nil {
		if hasSeq {
			sess.dirtySeq = false
			sess.lastSeq.Store(seq)
			sum.Seq = seq
			sess.lastSum = sum
		}
		s.maybeAutoCheckpoint(ctx, sess)
	}
	if stepErr != nil {
		he := asHTTPErr(stepErr)
		if streaming {
			// Headers are out; report the failure as a terminal line.
			//nanolint:ignore droppederr the stream is already broken; nowhere left to report
			_ = jsonOut.Encode(StreamLine{Error: &ErrorResponse{Error: he.msg, Code: he.code}})
			return
		}
		writeError(w, he.status, he.code, he.msg)
		return
	}
	if streaming {
		//nanolint:ignore droppederr a failed final write means the client is gone; no recovery path
		_ = jsonOut.Encode(StreamLine{Summary: &sum})
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// consumeBody feeds the request body into the session's simulator:
// little-endian uint32 words for application/octet-stream, NDJSON
// StepLine batches otherwise. Work is bounded per read (MaxBatchWords)
// and the simulator checks ctx once per sampling interval, so a
// cancelled request stops within one interval.
func (s *Server) consumeBody(ctx context.Context, r *http.Request, sess *session, sum *StepSummary) error {
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		return s.consumeBinary(ctx, r.Body, sess, sum)
	}
	return s.consumeNDJSON(ctx, r.Body, sess, sum)
}

func (s *Server) stepWords(ctx context.Context, sess *session, words []uint32, sum *StepSummary) error {
	if sess.buses > 1 && len(words)%sess.buses != 0 {
		return herr(http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch of %d words is not a multiple of the session's %d buses", len(words), sess.buses))
	}
	n, err := sess.stepBatch(ctx, words)
	sum.Words += n
	sess.words.Add(n)
	s.wordsTotal.Add(n)
	return err
}

func (s *Server) stepIdle(ctx context.Context, sess *session, idle uint64, sum *StepSummary) error {
	n, err := sess.stepIdleBatch(ctx, idle)
	sum.Idle += n
	sess.idle.Add(n)
	s.idleTotal.Add(n)
	return err
}

func (s *Server) consumeBinary(ctx context.Context, body io.Reader, sess *session, sum *StepSummary) error {
	f := s.frames.get()
	defer s.frames.put(f)
	// A multi-bus session steps whole interleaved K-word rows, and a
	// chunked read can split one; the tail bytes carry over to the front
	// of the next chunk, so clients need no row-level framing. buildSession
	// guarantees one row fits the chunk buffer (buses <= MaxBatchWords).
	rowBytes := 4 * sess.buses
	carry := 0
	for {
		n, err := io.ReadFull(body, f.buf[carry:])
		n += carry
		carry = 0
		eof := errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
		if n > 0 {
			if eof && n%4 != 0 {
				return herr(http.StatusBadRequest, CodeBadRequest,
					fmt.Sprintf("binary body length is not a multiple of 4 (%d trailing bytes)", n%4))
			}
			if eof && n%rowBytes != 0 {
				return herr(http.StatusBadRequest, CodeBadRequest,
					fmt.Sprintf("binary body ends mid-row (%d trailing words; a %d-bus batch interleaves in multiples of %d)",
						(n%rowBytes)/4, sess.buses, sess.buses))
			}
			use := n - n%rowBytes
			if use > 0 {
				// Chaos harnesses arm this to fail an ingest chunk mid-batch.
				if ferr := faultinject.Hit("server.ingest.decode"); ferr != nil {
					return herr(http.StatusBadRequest, CodeBadRequest,
						"decode binary batch: "+ferr.Error())
				}
				if serr := s.stepWords(ctx, sess, decodeWords(f.words, f.buf[:use]), sum); serr != nil {
					return serr
				}
			}
			if rest := n - use; rest > 0 {
				copy(f.buf, f.buf[use:n])
				carry = rest
			}
		}
		switch {
		case err == nil:
			continue
		case eof:
			return nil
		default:
			// The client went away mid-body.
			return fmt.Errorf("read body: %w: %w", context.Canceled, err)
		}
	}
}

func (s *Server) consumeNDJSON(ctx context.Context, body io.Reader, sess *session, sum *StepSummary) error {
	sc := bufio.NewScanner(body)
	// A words batch serialises to at most ~11 bytes per word.
	maxLine := 16*s.cfg.MaxBatchWords + 4096
	scanBuf := s.scans.get()
	defer s.scans.put(scanBuf)
	sc.Buffer(*scanBuf, maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Chaos harnesses arm this to fail an ingest line mid-batch.
		if ferr := faultinject.Hit("server.ingest.decode"); ferr != nil {
			return herr(http.StatusBadRequest, CodeBadRequest,
				"decode step line: "+ferr.Error())
		}
		var sl StepLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return herr(http.StatusBadRequest, CodeBadRequest, "decode step line: "+err.Error())
		}
		if len(sl.Words) > s.cfg.MaxBatchWords {
			return herr(http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
				fmt.Sprintf("batch of %d words exceeds the %d-word limit", len(sl.Words), s.cfg.MaxBatchWords))
		}
		if len(sl.Words) > 0 {
			if err := s.stepWords(ctx, sess, sl.Words, sum); err != nil {
				return err
			}
		}
		if sl.Idle > 0 {
			if err := s.stepIdle(ctx, sess, sl.Idle, sum); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return herr(http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
				fmt.Sprintf("step line exceeds %d bytes", maxLine))
		}
		return fmt.Errorf("read body: %w: %w", context.Canceled, err)
	}
	return nil
}

// --- GET /v1/sessions/{id}/result -------------------------------------------

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, sh, ok := s.find(r.PathValue("id"))
	if !ok {
		writeHTTPErr(w, s.notFoundErr(r.PathValue("id")))
		return
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(ctx, sess); err != nil {
		writeError(w, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
		return
	}
	defer sess.release()
	if sess.closed {
		writeHTTPErr(w, s.closedErr(sess.id))
		return
	}
	defer s.harvestMemo(sess)

	res, he := s.resultLocked(sess, r.URL.Query().Get("finish") != "0")
	if he != nil {
		writeError(w, he.status, he.code, he.msg)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// resultLocked finishes the session (unless finish is false, which only
// checks for poisoning) and assembles its Result document — the single
// source both GET .../result and the NBWP RESULT frame serialize, which
// is what keeps figures bit-identical across transports. The caller must
// hold the session.
func (s *Server) resultLocked(sess *session, finish bool) (Result, *httpErr) {
	if finish {
		if err := sess.finish(); err != nil {
			return Result{}, asHTTPErr(err)
		}
	} else if err := sess.simErr(); err != nil {
		return Result{}, asHTTPErr(err)
	}
	if sess.msim != nil {
		return s.multiResultLocked(sess), nil
	}

	sim := sess.sim
	tot := sim.TotalEnergy()
	maxT, maxW := sim.Network().MaxTemp()
	coreSamples := sim.Samples()
	samples := make([]Sample, len(coreSamples))
	for i, cs := range coreSamples {
		samples[i] = fromCoreSample(cs)
	}
	st := sim.MemoStats()
	res := Result{
		ID:     sess.id,
		Cycles: sim.Cycles(),
		Width:  sim.Width(),
		Total: EnergySplit{
			TotalJ:      tot.Total(),
			SelfJ:       tot.Self,
			CoupAdjJ:    tot.CoupAdj,
			CoupNonAdjJ: tot.CoupNonAdj,
		},
		AvgTempK: sim.Network().AvgTemp(),
		MaxTempK: maxT,
		MaxWire:  maxW,
		TempsK:   sim.Temps(),
		Samples:  samples,
		Memo:     MemoStats{Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate()},
	}
	if sim.Adaptive() {
		spec := sess.info.Adaptive
		switches := sim.SwitchEvents()
		if switches == nil {
			switches = []core.SwitchEvent{}
		}
		res.Adaptive = &AdaptiveResult{
			Base:      spec.Base,
			Cool:      spec.Cool,
			CeilingK:  spec.CeilingK,
			Active:    sim.ActiveEncoder(),
			Switches:  switches,
			Occupancy: sim.EncoderOccupancy(),
		}
	}
	return res, nil
}

// multiResultLocked assembles a multi-bus Result: one BusResult per bus
// (each the same shape a scalar session reports) under grid-wide
// aggregates. The caller must hold the session and have finished (or
// error-checked) the simulator.
func (s *Server) multiResultLocked(sess *session) Result {
	m := sess.msim
	grid := m.Grid()
	var total EnergySplit
	per := make([]BusResult, m.Buses())
	for k := range per {
		tot := m.TotalEnergy(k)
		maxT, maxW := grid.BusMaxTemp(k)
		coreSamples := m.Samples(k)
		samples := make([]Sample, len(coreSamples))
		for i, cs := range coreSamples {
			samples[i] = fromCoreBusSample(k, cs)
		}
		per[k] = BusResult{
			Bus: k,
			Total: EnergySplit{
				TotalJ:      tot.Total(),
				SelfJ:       tot.Self,
				CoupAdjJ:    tot.CoupAdj,
				CoupNonAdjJ: tot.CoupNonAdj,
			},
			AvgTempK: grid.BusAvgTemp(k),
			MaxTempK: maxT,
			MaxWire:  maxW,
			TempsK:   grid.BusTemps(k, nil),
			Samples:  samples,
		}
		total.TotalJ += tot.Total()
		total.SelfJ += tot.Self
		total.CoupAdjJ += tot.CoupAdj
		total.CoupNonAdjJ += tot.CoupNonAdj
	}
	temps := grid.Temps(nil)
	avg := 0.0
	for _, t := range temps {
		avg += t
	}
	avg /= float64(len(temps))
	maxT, maxBus, maxW := grid.MaxTemp()
	st := m.MemoStats()
	return Result{
		ID:       sess.id,
		Cycles:   m.Cycles(),
		Width:    m.Width(),
		Total:    total,
		AvgTempK: avg,
		MaxTempK: maxT,
		MaxWire:  maxW,
		TempsK:   temps,
		Samples:  []Sample{},
		Memo:     MemoStats{Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate()},
		Buses:    m.Buses(),
		MaxBus:   maxBus,
		PerBus:   per,
	}
}

// --- DELETE /v1/sessions/{id} -----------------------------------------------

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, sh, ok := s.find(id)
	if !ok {
		writeHTTPErr(w, s.notFoundErr(id))
		return
	}
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(r.Context(), sess); err != nil {
		writeError(w, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
		return
	}
	defer sess.release()
	if sess.closed {
		writeHTTPErr(w, s.closedErr(sess.id))
		return
	}
	writeJSON(w, http.StatusOK, s.closeLocked(r.Context(), sess, sh))
}

// closeLocked tears a session down: deregisters it, drops its stored
// checkpoint, and recycles the simulator. Both DELETE and the NBWP
// GOODBYE frame reduce to it. The caller must hold the session and have
// verified it is not already closed.
func (s *Server) closeLocked(ctx context.Context, sess *session, sh *shard) CloseResponse {
	resp := s.deregister(sess, sh)
	if s.cfg.Store != nil {
		// A deleted session must not be resurrectable.
		//nanolint:ignore droppederr best-effort cleanup; a stale envelope only wastes store space
		_ = s.cfg.Store.Delete(ctx, sess.id)
	}
	return resp
}

// deregister removes sess from the table and recycles its simulator,
// leaving any stored checkpoint alone (migration keeps the envelope —
// it now belongs to the target node). The caller must hold the session.
func (s *Server) deregister(sess *session, sh *shard) CloseResponse {
	sess.closed = true
	s.harvestMemo(sess)
	cycles := sess.cycleCount()

	sh.mu.Lock()
	delete(sh.sessions, sess.id)
	sh.mu.Unlock()
	if sess.sim != nil {
		// Multi-bus simulators are never pooled; scalar ones recycle.
		s.pool.put(sess.key, sess.sim)
	}
	s.active.Add(-1)
	s.closedTotal.Add(1)
	return CloseResponse{ID: sess.id, Cycles: cycles}
}

// --- GET /healthz -----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Draining: s.draining.Load(),
		Sessions: s.active.Load(),
	})
}

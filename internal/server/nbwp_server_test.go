package server_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"nanobus/client"
	"nanobus/internal/nbwp"
	"nanobus/internal/server"
)

// newNBWPServer stands up a server with an NBWP listener and returns the
// dial address. The HTTP surface is not mounted: these tests pin the
// transport's own behaviour, not cross-transport fidelity (the client
// suite covers that).
func newNBWPServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		//nanolint:ignore droppederr the accept loop's exit error is net.ErrClosed on cleanup
		_ = srv.ServeNBWP(lis)
	}()
	t.Cleanup(func() {
		//nanolint:ignore droppederr test cleanup; the listener may already be closed by Drain
		_ = lis.Close()
	})
	return srv, lis.Addr().String()
}

// rawNBWP speaks frames directly, bypassing the client, so the server's
// handling of traffic a well-behaved client never produces is testable.
type rawNBWP struct {
	t  *testing.T
	c  net.Conn
	fr nbwp.FrameReader
	fw nbwp.FrameWriter
	bw *bufio.Writer
}

func dialRawNBWP(t *testing.T, addr string) *rawNBWP {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//nanolint:ignore droppederr test cleanup; the connection may already be closed
		_ = c.Close()
	})
	r := &rawNBWP{t: t, c: c, bw: bufio.NewWriter(c)}
	r.fr = nbwp.FrameReader{R: bufio.NewReader(c), Max: nbwp.MaxPayload}
	r.fw = nbwp.FrameWriter{W: r.bw}
	return r
}

func (r *rawNBWP) send(h nbwp.Header, payload []byte) {
	r.t.Helper()
	if err := r.fw.WriteFrame(h, payload); err != nil {
		r.t.Fatal(err)
	}
	if err := r.bw.Flush(); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawNBWP) recv() (nbwp.Header, []byte) {
	r.t.Helper()
	var h nbwp.Header
	p, err := r.fr.ReadFrame(&h)
	if err != nil {
		r.t.Fatalf("read frame: %v", err)
	}
	return h, bytes.Clone(p)
}

// expectError requires the next frame to be an ERROR echoing slot/seq
// with the given v1 status and code.
func (r *rawNBWP) expectError(req nbwp.Header, wantStatus int, wantCode string) {
	r.t.Helper()
	h, p := r.recv()
	if h.Type != nbwp.TypeError || h.Slot != req.Slot || h.Seq != req.Seq {
		r.t.Fatalf("got %+v, want ERROR echoing slot %d seq %d", h, req.Slot, req.Seq)
	}
	we, err := nbwp.ParseError(p)
	if err != nil {
		r.t.Fatal(err)
	}
	if we.Status != wantStatus || we.Code != wantCode {
		r.t.Fatalf("error = %d %q (%s), want %d %q", we.Status, we.Code, we.Msg, wantStatus, wantCode)
	}
}

func (r *rawNBWP) expectAck(req nbwp.Header) []byte {
	r.t.Helper()
	h, p := r.recv()
	if h.Type != nbwp.TypeAck || h.Slot != req.Slot || h.Seq != req.Seq {
		r.t.Fatalf("got %+v, want ACK echoing slot %d seq %d", h, req.Slot, req.Seq)
	}
	return p
}

// TestNBWPProtocolErrors exhausts the per-frame validation branches: the
// server must answer every malformed request with one ERROR frame
// carrying the v1 status/code, and keep the connection usable.
func TestNBWPProtocolErrors(t *testing.T) {
	_, addr := newNBWPServer(t, server.Config{MaxBatchWords: 8})
	r := dialRawNBWP(t, addr)

	hello := nbwp.Header{Type: nbwp.TypeHello}
	r.send(hello, nil)
	if p := r.expectAck(hello); len(p) != 0 {
		t.Fatalf("HELLO ack carries %d payload bytes", len(p))
	}

	cases := []struct {
		name    string
		h       nbwp.Header
		payload []byte
		status  int
		code    string
	}{
		{"unknown type", nbwp.Header{Type: nbwp.Type(0x7F), Seq: 9}, nil,
			http.StatusBadRequest, server.CodeBadRequest},
		{"open slot 0", nbwp.Header{Type: nbwp.TypeOpen}, []byte(`{"node":"90nm"}`),
			http.StatusBadRequest, server.CodeBadRequest},
		{"open bad json", nbwp.Header{Type: nbwp.TypeOpen, Slot: 1}, []byte(`{"nod`),
			http.StatusBadRequest, server.CodeBadRequest},
		{"attach unknown", nbwp.Header{Type: nbwp.TypeOpen, Slot: 1, Flags: nbwp.FlagAttach}, []byte("nope"),
			http.StatusNotFound, server.CodeNotFound},
		{"step slot 0", nbwp.Header{Type: nbwp.TypeStep}, []byte{1, 0, 0, 0},
			http.StatusBadRequest, server.CodeBadRequest},
		{"step unbound slot", nbwp.Header{Type: nbwp.TypeStep, Slot: 7}, []byte{1, 0, 0, 0},
			http.StatusNotFound, server.CodeNotFound},
		{"restore slot 0", nbwp.Header{Type: nbwp.TypeRestore}, nbwp.AppendRestore(nil, "id", nil),
			http.StatusBadRequest, server.CodeBadRequest},
		{"restore bad payload", nbwp.Header{Type: nbwp.TypeRestore, Slot: 1}, []byte{9},
			http.StatusBadRequest, server.CodeBadRequest},
		{"restore unbound unnamed", nbwp.Header{Type: nbwp.TypeRestore, Slot: 3}, nbwp.AppendRestore(nil, "", nil),
			http.StatusNotFound, server.CodeNotFound},
		{"goodbye unbound slot", nbwp.Header{Type: nbwp.TypeGoodbye, Slot: 5}, nil,
			http.StatusNotFound, server.CodeNotFound},
	}
	for _, tc := range cases {
		r.send(tc.h, tc.payload)
		r.expectError(tc.h, tc.status, tc.code)
	}

	// Bind slot 1, then exhaust the STEP validation on a live session.
	open := nbwp.Header{Type: nbwp.TypeOpen, Slot: 1, Seq: 1}
	r.send(open, []byte(`{"node":"90nm","interval_cycles":256}`))
	if p := r.expectAck(open); !bytes.Contains(p, []byte(`"id"`)) {
		t.Fatalf("OPEN ack is not a SessionInfo document: %s", p)
	}
	bound := []struct {
		name    string
		h       nbwp.Header
		payload []byte
		status  int
		code    string
	}{
		{"open bound slot", nbwp.Header{Type: nbwp.TypeOpen, Slot: 1}, []byte(`{"node":"90nm"}`),
			http.StatusConflict, server.CodeBadRequest},
		{"step ragged payload", nbwp.Header{Type: nbwp.TypeStep, Slot: 1}, []byte{1, 2, 3},
			http.StatusBadRequest, server.CodeBadRequest},
		{"step seq 0", nbwp.Header{Type: nbwp.TypeStep, Slot: 1, Flags: nbwp.FlagSeq}, []byte{1, 0, 0, 0},
			http.StatusBadRequest, server.CodeBadRequest},
		{"step oversized batch", nbwp.Header{Type: nbwp.TypeStep, Slot: 1}, make([]byte, 4*9),
			http.StatusRequestEntityTooLarge, server.CodeBatchTooLarge},
		{"idle ragged payload", nbwp.Header{Type: nbwp.TypeStepIdle, Slot: 1}, []byte{1, 2, 3},
			http.StatusBadRequest, server.CodeBadRequest},
		{"checkpoint without store", nbwp.Header{Type: nbwp.TypeCheckpoint, Slot: 1}, nil,
			http.StatusNotImplemented, server.CodeNoStore},
		{"restore without store or envelope", nbwp.Header{Type: nbwp.TypeRestore, Slot: 1}, nbwp.AppendRestore(nil, "", nil),
			http.StatusNotImplemented, server.CodeNoStore},
	}
	for _, tc := range bound {
		r.send(tc.h, tc.payload)
		r.expectError(tc.h, tc.status, tc.code)
	}

	// The connection survived all of it: a valid STEP still works.
	step := nbwp.Header{Type: nbwp.TypeStep, Slot: 1, Seq: 42}
	r.send(step, []byte{0x10, 0, 0, 0, 0x14, 0, 0, 0})
	var ack nbwp.StepAck
	if err := nbwp.ParseStepAck(r.expectAck(step), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Words != 2 || ack.Cycles != 2 {
		t.Fatalf("step ack = %+v, want 2 words, 2 cycles", ack)
	}

	// Connection-scope GOODBYE: one empty ack, then the server hangs up.
	bye := nbwp.Header{Type: nbwp.TypeGoodbye}
	r.send(bye, nil)
	r.expectAck(bye)
	var h nbwp.Header
	if _, err := r.fr.ReadFrame(&h); !errors.Is(err, io.EOF) {
		t.Fatalf("after GOODBYE read = %v, want EOF", err)
	}
}

// TestNBWPDamagedFramingHangsUp: a broken header is unrecoverable — the
// server reports one framing ERROR and closes the connection.
func TestNBWPDamagedFramingHangsUp(t *testing.T) {
	_, addr := newNBWPServer(t, server.Config{})
	r := dialRawNBWP(t, addr)
	if _, err := r.c.Write(bytes.Repeat([]byte{'X'}, nbwp.HeaderLen)); err != nil {
		t.Fatal(err)
	}
	h, p := r.recv()
	if h.Type != nbwp.TypeError {
		t.Fatalf("got %+v, want ERROR", h)
	}
	we, err := nbwp.ParseError(p)
	if err != nil || we.Status != http.StatusBadRequest || we.Code != server.CodeBadRequest {
		t.Fatalf("framing error = %d %q (%v)", we.Status, we.Code, err)
	}
	if _, err := r.fr.ReadFrame(&h); !errors.Is(err, io.EOF) {
		t.Fatalf("after damaged framing read = %v, want EOF", err)
	}
}

// TestNBWPServerLifecycle drives the full session surface over NBWP via
// the Go client: open-with-stream, sequenced steps with duplicate and
// gap handling, idle, checkpoint both ways, restore rewind, result,
// close.
func TestNBWPServerLifecycle(t *testing.T) {
	ctx := context.Background()
	_, addr := newNBWPServer(t, server.Config{Store: server.NewMemStore()})
	nc, err := client.DialNBWP(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	var streamed []client.Sample
	sess, err := nc.Open(ctx, client.SessionConfig{Node: "90nm", Encoding: "BI", IntervalCycles: 64},
		func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	words := testWords(7, 256)
	sum, err := sess.StepBinarySeq(ctx, 1, words)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Words != 256 || sum.Seq != 1 || sum.Duplicate {
		t.Fatalf("seq 1 summary = %+v", sum)
	}
	if sum.Samples == 0 || len(streamed) == 0 {
		t.Fatalf("expected streamed samples (ack %d, streamed %d)", sum.Samples, len(streamed))
	}

	// Replay is absorbed, not re-stepped; skipping ahead is a gap.
	dup, err := sess.StepBinarySeq(ctx, 1, words)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.Cycles != sum.Cycles {
		t.Fatalf("replay summary = %+v, want duplicate at %d cycles", dup, sum.Cycles)
	}
	var apiErr *client.APIError
	if _, err := sess.StepBinarySeq(ctx, 5, words); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeSeqGap || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("seq gap err = %v", err)
	}

	if _, err := sess.StepIdle(ctx, 100); err != nil {
		t.Fatal(err)
	}
	info, err := sess.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Cycles != 356 {
		t.Fatalf("checkpoint info = %+v, want seq 1 at 356 cycles", info)
	}
	env, err := sess.CheckpointDownload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) == 0 {
		t.Fatal("downloaded envelope is empty")
	}

	// Step past the checkpoint, rewind from the store, replay.
	if _, err := sess.StepBinarySeq(ctx, 2, words); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Restore(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || res.Cycles != 356 || res.Resurrected {
		t.Fatalf("restore = %+v, want in-place rewind to seq 1", res)
	}
	if _, err := sess.StepBinarySeq(ctx, 2, words); err != nil {
		t.Fatal(err)
	}
	// The inline-envelope path rewinds the same way.
	if res, err = sess.RestoreFrom(ctx, env); err != nil || res.Seq != 1 {
		t.Fatalf("restore from envelope = %+v, %v", res, err)
	}
	if _, err := sess.StepBinarySeq(ctx, 2, words); err != nil {
		t.Fatal(err)
	}

	final, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.Cycles != 612 || final.Total.TotalJ <= 0 {
		t.Fatalf("result = %d cycles, %g J", final.Cycles, final.Total.TotalJ)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nc.Goodbye(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNBWPResurrectionAcrossServers: two servers sharing one store model
// a daemon restart; RESTORE on a fresh connection resurrects the session
// by id even though the new server never saw it.
func TestNBWPResurrectionAcrossServers(t *testing.T) {
	ctx := context.Background()
	store := server.NewMemStore()
	_, addr1 := newNBWPServer(t, server.Config{Store: store})
	nc1, err := client.DialNBWP(ctx, addr1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := nc1.Open(ctx, client.SessionConfig{Node: "65nm", IntervalCycles: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.StepBinarySeq(ctx, 1, testWords(3, 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	id := sess.Info.ID
	if err := nc1.Close(); err != nil {
		t.Fatal(err)
	}

	_, addr2 := newNBWPServer(t, server.Config{Store: store})
	nc2, err := client.DialNBWP(ctx, addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	sess2, res, err := nc2.RestoreSession(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resurrected || res.Seq != 1 || res.Cycles != 200 {
		t.Fatalf("resurrection = %+v, want seq 1 at 200 cycles", res)
	}
	// The restored slot is live: the next sequenced batch applies.
	if sum, err := sess2.StepBinarySeq(ctx, 2, testWords(4, 100)); err != nil || sum.Cycles != 300 {
		t.Fatalf("post-resurrection step = %+v, %v", sum, err)
	}
}

// TestNBWPDrainAndShutdown pins the SIGTERM choreography: Drain refuses
// new connections, broadcasts DRAIN to live ones, ShutdownNBWP waits for
// them — and force-closes stragglers once its context expires.
func TestNBWPDrainAndShutdown(t *testing.T) {
	ctx := context.Background()
	srv, addr := newNBWPServer(t, server.Config{})
	nc, err := client.DialNBWP(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	notified := make(chan struct{})
	nc.SetOnDrain(func() { close(notified) })

	srv.Drain()
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("DRAIN frame never arrived")
	}
	if !nc.Draining() {
		t.Fatal("client does not report a draining peer")
	}
	if _, err := client.DialNBWP(ctx, addr); err == nil {
		t.Fatal("dial after Drain succeeded; the listener should be closed")
	}

	// The idle connection is a straggler: a short shutdown deadline
	// force-closes it and reports the deadline.
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := srv.ShutdownNBWP(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ShutdownNBWP = %v, want deadline exceeded", err)
	}

	// A listener offered after Drain is refused outright.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeNBWP(lis); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("ServeNBWP after Drain = %v, want net.ErrClosed", err)
	}
}

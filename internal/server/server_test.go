package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nanobus/client"
	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/server"
)

func newTestService(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

// testWords returns a deterministic pseudo-address stream.
func testWords(seed uint32, n int) []uint32 {
	words := make([]uint32, n)
	x := seed
	for i := range words {
		x = x*1664525 + 1013904223
		words[i] = x
	}
	return words
}

// coupling is a helper for CreateSessionRequest.CouplingDepth pointers.
func coupling(d int) *int { return &d }

// libraryRun replays the same word/idle schedule through the in-process
// library and returns the finished simulator.
func libraryRun(t *testing.T, cfg client.SessionConfig, lines []client.StepLine) *core.Simulator {
	t.Helper()
	node, err := itrs.Resolve(cfg.Node)
	if err != nil {
		t.Fatal(err)
	}
	encName := cfg.Encoding
	if encName == "" {
		encName = "Unencoded"
	}
	enc, err := encoding.New(encName)
	if err != nil {
		t.Fatal(err)
	}
	depth := -1
	if cfg.CouplingDepth != nil {
		depth = *cfg.CouplingDepth
	}
	sim, err := core.New(core.Config{
		Node:           node,
		Length:         cfg.LengthM,
		Encoder:        enc,
		CouplingDepth:  depth,
		IntervalCycles: cfg.IntervalCycles,
		TrackWireTemps: cfg.TrackWireTemps,
		MemoSizeLog2:   cfg.MemoSizeLog2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, line := range lines {
		if len(line.Words) > 0 {
			if _, err := sim.StepBatch(ctx, line.Words); err != nil {
				t.Fatal(err)
			}
		}
		if line.Idle > 0 {
			if _, err := sim.StepIdleBatch(ctx, line.Idle); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	return sim
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// compareResult asserts the service result is bit-identical to the
// library simulator.
func compareResult(t *testing.T, res *client.Result, sim *core.Simulator) {
	t.Helper()
	if res.Cycles != sim.Cycles() {
		t.Fatalf("cycles: server %d, library %d", res.Cycles, sim.Cycles())
	}
	tot := sim.TotalEnergy()
	if !bitsEq(res.Total.TotalJ, tot.Total()) || !bitsEq(res.Total.SelfJ, tot.Self) ||
		!bitsEq(res.Total.CoupAdjJ, tot.CoupAdj) || !bitsEq(res.Total.CoupNonAdjJ, tot.CoupNonAdj) {
		t.Fatalf("total energy differs: server %+v, library %+v", res.Total, tot)
	}
	libSamples := sim.Samples()
	if len(res.Samples) != len(libSamples) {
		t.Fatalf("samples: server %d, library %d", len(res.Samples), len(libSamples))
	}
	for i, ss := range res.Samples {
		ls := libSamples[i]
		if ss.EndCycle != ls.EndCycle || ss.MaxWire != ls.MaxWire ||
			!bitsEq(ss.EnergyJ, ls.Energy) || !bitsEq(ss.SelfJ, ls.Self) ||
			!bitsEq(ss.CoupAdjJ, ls.CoupAdj) || !bitsEq(ss.CoupNonAdjJ, ls.CoupNonAdj) ||
			!bitsEq(ss.AvgTempK, ls.AvgTemp) || !bitsEq(ss.MaxTempK, ls.MaxTemp) {
			t.Fatalf("sample %d differs: server %+v, library %+v", i, ss, ls)
		}
	}
	libTemps := sim.Temps()
	if len(res.TempsK) != len(libTemps) {
		t.Fatalf("temps length: server %d, library %d", len(res.TempsK), len(libTemps))
	}
	for i := range libTemps {
		if !bitsEq(res.TempsK[i], libTemps[i]) {
			t.Fatalf("temp %d differs: server %g, library %g", i, res.TempsK[i], libTemps[i])
		}
	}
}

func TestSessionBitIdenticalToLibrary(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	cfg := client.SessionConfig{
		Node:           "90nm",
		Encoding:       "BI",
		IntervalCycles: 1000,
	}
	lines := []client.StepLine{
		{Words: testWords(0xBEEF, 1700)},
		{Idle: 900},
		{Words: testWords(0xF00D, 1500)},
	}

	sess, err := c.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Info.Width != 33 { // 32 data lines + BI invert line
		t.Fatalf("width %d", sess.Info.Width)
	}
	sum, err := sess.StepLines(ctx, lines)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Words != 3200 || sum.Idle != 900 || sum.Cycles != 4100 {
		t.Fatalf("summary %+v", sum)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	compareResult(t, res, libraryRun(t, cfg, lines))
	if res.Memo.Hits+res.Memo.Misses == 0 {
		t.Fatal("memo counters never moved")
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryStepMatchesNDJSON(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	cfg := client.SessionConfig{Node: "65nm", IntervalCycles: 512}
	words := testWords(42, 2048)

	a, err := c.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(ctx, words); err != nil {
		t.Fatal(err)
	}
	ra, err := a.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	b, err := c.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.StepBinary(ctx, words); err != nil {
		t.Fatal(err)
	}
	rb, err := b.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(ra.Total.TotalJ, rb.Total.TotalJ) || ra.Cycles != rb.Cycles {
		t.Fatalf("binary run diverged: %+v vs %+v", ra.Total, rb.Total)
	}
}

func TestStreamedSamples(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "130nm", IntervalCycles: 256})
	if err != nil {
		t.Fatal(err)
	}
	body, err := client.BodyFromLines([]client.StepLine{{Words: testWords(7, 1024)}})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []client.Sample
	sum, err := sess.StepStream(ctx, body, func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 4 || len(streamed) != 4 {
		t.Fatalf("streamed %d samples, summary says %d, want 4", len(streamed), sum.Samples)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, ss := range streamed {
		if !bitsEq(ss.EnergyJ, res.Samples[i].EnergyJ) {
			t.Fatalf("streamed sample %d diverges from retained sample", i)
		}
	}
}

// TestCancellationMidStream: cancelling a streaming request releases the
// session within one sampling interval, leaving it usable.
func TestCancellationMidStream(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 128})
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	stepCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	firstSample := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := sess.StepStream(stepCtx, pr, func(client.Sample) {
			once.Do(func() { close(firstSample) })
		})
		done <- err
	}()

	enc := json.NewEncoder(pw)
	if err := enc.Encode(client.StepLine{Words: testWords(3, 256)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstSample:
	case <-time.After(10 * time.Second):
		t.Fatal("no sample within 10s")
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled stream returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled stream did not return")
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	// The session must be released promptly: the next request acquires it
	// within a bounded wait.
	resCtx, resCancel := context.WithTimeout(ctx, 10*time.Second)
	defer resCancel()
	if _, err := sess.Result(resCtx, true); err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
}

// TestConcurrentStreamingSessions drives 64 concurrent streaming
// sessions (the acceptance bar) under -race; identical configs and
// traces must produce bit-identical results, including across pool
// recycling in a second wave.
func TestConcurrentStreamingSessions(t *testing.T) {
	const sessions = 64
	srv, c := newTestService(t, server.Config{Shards: 4})
	cfg := client.SessionConfig{Node: "90nm", Encoding: "BI", IntervalCycles: 256}
	words := testWords(99, 1024)

	wave := func(n int) []client.Result {
		results := make([]client.Result, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				sess, err := c.CreateSession(ctx, cfg)
				if err != nil {
					errs[i] = err
					return
				}
				// Three streaming step requests per session.
				for k := 0; k < 3 && errs[i] == nil; k++ {
					body, err := client.BodyFromLines([]client.StepLine{
						{Words: words}, {Idle: 64},
					})
					if err != nil {
						errs[i] = err
						return
					}
					if _, err := sess.StepStream(ctx, body, func(client.Sample) {}); err != nil {
						errs[i] = err
						return
					}
				}
				res, err := sess.Result(ctx, true)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = *res
				errs[i] = sess.Close(ctx)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
		return results
	}

	wave1 := wave(sessions)
	for i := 1; i < len(wave1); i++ {
		if !bitsEq(wave1[i].Total.TotalJ, wave1[0].Total.TotalJ) {
			t.Fatalf("session %d energy diverged from session 0", i)
		}
	}
	if got := srv.SessionsActive(); got != 0 {
		t.Fatalf("%d sessions leaked", got)
	}

	// Second wave rides recycled simulators and must match wave 1 bit
	// for bit.
	wave2 := wave(8)
	for i := range wave2 {
		if !bitsEq(wave2[i].Total.TotalJ, wave1[0].Total.TotalJ) {
			t.Fatalf("recycled session %d diverged", i)
		}
	}
}

func TestPoolRecycling(t *testing.T) {
	_, c := newTestService(t, server.Config{})
	ctx := context.Background()
	cfg := client.SessionConfig{Node: "45nm", IntervalCycles: 512}
	a, err := c.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Info.Recycled {
		t.Fatal("first session claims to be recycled")
	}
	if _, err := a.Step(ctx, testWords(1, 700)); err != nil {
		t.Fatal(err)
	}
	ra, err := a.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}

	b, err := c.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Info.Recycled {
		t.Fatal("second same-config session not recycled")
	}
	if _, err := b.Step(ctx, testWords(1, 700)); err != nil {
		t.Fatal(err)
	}
	rb, err := b.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(ra.Total.TotalJ, rb.Total.TotalJ) || !bitsEq(ra.MaxTempK, rb.MaxTempK) {
		t.Fatal("recycled simulator is not bit-identical to a fresh one")
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, c := newTestService(t, server.Config{})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 128})
	if err != nil {
		t.Fatal(err)
	}

	// Hold one step request in flight via a pipe body.
	pr, pw := io.Pipe()
	firstSample := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := sess.StepStream(ctx, pr, func(client.Sample) {
			once.Do(func() { close(firstSample) })
		})
		done <- err
	}()
	enc := json.NewEncoder(pw)
	if err := enc.Encode(client.StepLine{Words: testWords(5, 256)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstSample:
	case <-time.After(10 * time.Second):
		t.Fatal("no sample within 10s")
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	// New sessions are refused with the draining code.
	_, err = c.CreateSession(ctx, client.SessionConfig{Node: "90nm"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeDraining || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: %v", err)
	}
	// The in-flight request finishes normally.
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight request failed during drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not finish during drain")
	}
}

func TestErrorCodes(t *testing.T) {
	_, c := newTestService(t, server.Config{MaxBatchWords: 8, MaxSessions: 2})
	ctx := context.Background()

	var apiErr *client.APIError
	if _, err := c.CreateSession(ctx, client.SessionConfig{Node: "14nm"}); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeUnknownNode {
		t.Fatalf("unknown node: %v", err)
	}
	if !errors.Is(apiErr, itrs.ErrUnknownNode) {
		t.Fatal("unknown_node does not unwrap to itrs.ErrUnknownNode")
	}
	if _, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", Encoding: "XYZ"}); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeUnknownEncoding {
		t.Fatalf("unknown encoding: %v", err)
	}
	if !errors.Is(apiErr, encoding.ErrUnknownScheme) {
		t.Fatal("unknown_encoding does not unwrap to encoding.ErrUnknownScheme")
	}

	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(ctx, testWords(1, 9)); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeBatchTooLarge || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %v", err)
	}

	// Session limit.
	if _, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm"}); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeServerFull {
		t.Fatalf("server full: %v", err)
	}

	// Unknown session.
	ghost := *sess
	ghost.Info.ID = "00000000deadbeef"
	if _, err := ghost.Result(ctx, true); !errors.As(err, &apiErr) || apiErr.Code != server.CodeNotFound {
		t.Fatalf("unknown session: %v", err)
	}
}

func TestSessionBusy(t *testing.T) {
	// A short server-side acquire bound makes the 409 deterministic: the
	// server answers on its own rather than waiting on a client
	// disconnect it cannot yet observe (HTTP/1 only detects one after
	// the request body is read, and step acquires before reading it).
	_, c := newTestService(t, server.Config{AcquireTimeout: 200 * time.Millisecond})
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 128})
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	firstSample := make(chan struct{})
	done := make(chan error, 1)
	var once sync.Once
	go func() {
		_, err := sess.StepStream(ctx, pr, func(client.Sample) {
			once.Do(func() { close(firstSample) })
		})
		done <- err
	}()
	enc := json.NewEncoder(pw)
	if err := enc.Encode(client.StepLine{Words: testWords(5, 256)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstSample:
	case <-time.After(10 * time.Second):
		t.Fatal("no sample within 10s")
	}

	busyCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var apiErr *client.APIError
	if _, err := sess.Step(busyCtx, testWords(9, 4)); !errors.As(err, &apiErr) ||
		apiErr.Code != server.CodeSessionBusy || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("busy session: %v", err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBadRequests(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Malformed create body.
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	checkErrResp(t, resp, http.StatusBadRequest, server.CodeBadRequest)

	// Valid session for body-shape errors.
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"node":"90nm","interval_cycles":128}`))
	if err != nil {
		t.Fatal(err)
	}
	var info server.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}

	// Binary body with trailing partial word.
	resp, err = http.Post(ts.URL+"/v1/sessions/"+info.ID+"/step",
		"application/octet-stream", bytes.NewReader([]byte{1, 2, 3, 4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	checkErrResp(t, resp, http.StatusBadRequest, server.CodeBadRequest)

	// Malformed NDJSON line.
	resp, err = http.Post(ts.URL+"/v1/sessions/"+info.ID+"/step",
		"application/x-ndjson", strings.NewReader("{bad json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	checkErrResp(t, resp, http.StatusBadRequest, server.CodeBadRequest)
}

func checkErrResp(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d", resp.StatusCode, status)
	}
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Code != code {
		t.Fatalf("code %q, want %q", er.Code, code)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, c := newTestService(t, server.Config{Shards: 2})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(ctx, testWords(11, 512)); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"nanobusd_up 1",
		"nanobusd_sessions_active 1",
		"nanobusd_sessions_created_total 1",
		"nanobusd_words_total 512",
		"nanobusd_samples_total 2",
		"nanobusd_memo_hits_total",
		"nanobusd_memo_hit_rate",
		"nanobusd_words_per_second",
		`nanobusd_shard_queue_depth{shard="0"}`,
		`nanobusd_shard_queue_depth{shard="1"}`,
		`nanobusd_shard_sessions{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	status, err := sess.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Words != 512 || status.IdleCycles != 0 {
		t.Fatalf("status counters %+v", status)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"nanobus/internal/core"
	"nanobus/internal/itrs"
)

// TestAppendStreamSampleParity pins the append-based sample encoder
// byte-identical to encoding/json across the float formats json selects:
// 'f' for ordinary magnitudes, 'e' below 1e-6 and at 1e21 and above, with
// zero-padded exponents stripped.
func TestAppendStreamSampleParity(t *testing.T) {
	samples := []Sample{
		{},
		{EndCycle: 100000, EnergyJ: 1.2345e-9, SelfJ: 9.87e-10, CoupAdjJ: 2e-10,
			CoupNonAdjJ: 4.75e-11, AvgTempK: 312.0625, MaxTempK: 319.5, MaxWire: 17},
		{EndCycle: math.MaxUint64, EnergyJ: -1.5e-7, SelfJ: 1e-6, CoupAdjJ: 9.999999e-7,
			CoupNonAdjJ: 1e21, AvgTempK: 9.99e20, MaxTempK: -2.5e-300, MaxWire: -1},
		{EnergyJ: 5e-324, SelfJ: math.MaxFloat64, CoupAdjJ: 0.1, CoupNonAdjJ: -0,
			AvgTempK: 300, MaxTempK: 1e-100},
		{EndCycle: 7, AvgTempK: 310.123456789, MaxTempK: 310.2,
			WireTempsK: []float64{300, 1e-9, 3.5e22, -0.25}},
		{WireTempsK: []float64{1e-6, 1e-7, 123456789.123}},
		{EndCycle: 200000, EnergyJ: 3.25e-9, AvgTempK: 311, MaxTempK: 318.75,
			Encoder: "BI"},
		{EndCycle: 300000, MaxTempK: 321.5, Encoder: "CoolSpread", Switched: true,
			Bus: 2, WireTempsK: []float64{305.5, 1e-8}},
		{Switched: true},
	}
	for i, ws := range samples {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(StreamLine{Sample: &ws}); err != nil {
			t.Fatal(err)
		}
		got := appendStreamSample(nil, ws)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("sample %d:\n got %q\nwant %q", i, got, want.Bytes())
		}
	}
}

// perfSession builds a server+session pair wired for direct body-consumer
// calls, bypassing HTTP.
func perfSession(t testing.TB, maxBatch int) (*Server, *session) {
	t.Helper()
	s := New(Config{MaxBatchWords: maxBatch})
	sim, err := core.New(core.Config{
		Node:           itrs.N130,
		CouplingDepth:  -1,
		IntervalCycles: core.DefaultIntervalCycles,
		DropSamples:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, &session{sim: sim, buses: 1, sem: make(chan struct{}, 1)}
}

// binaryBody serialises an address-like word stream to the wire format.
func binaryBody(words int) []byte {
	body := make([]byte, words*4)
	w, rng := uint32(0x4000_1000), uint32(5)
	for i := 0; i < words; i++ {
		rng = rng*1664525 + 1013904223
		switch rng % 8 {
		case 0:
			w = rng
		case 1: // hold
		default:
			w += 4
		}
		binary.LittleEndian.PutUint32(body[4*i:], w)
	}
	return body
}

// TestConsumeBinaryAllocs is the frame-decode alloc regression gate: with
// pooled frames and the zero-copy word view, a steady-state binary step
// request allocates a small constant independent of the batch size.
func TestConsumeBinaryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items at random; alloc counts are not steady-state")
	}
	ctx := context.Background()
	measure := func(words int) float64 {
		s, sess := perfSession(t, 4096)
		body := binaryBody(words)
		rd := bytes.NewReader(body)
		var sum StepSummary
		// Warm the simulator memo and the frame pool.
		if err := s.consumeBinary(ctx, rd, sess, &sum); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			rd.Reset(body)
			if err := s.consumeBinary(ctx, rd, sess, &sum); err != nil {
				t.Fatal(err)
			}
		})
	}
	// The shared bound is the gate: a 64x larger batch may not allocate
	// proportionally more (the odd residual alloc is a memo-entry slab for
	// a late-colliding transition, not a per-request buffer).
	small, large := measure(1024), measure(64*1024)
	if small > 2 || large > 2 {
		t.Errorf("consumeBinary allocates %v (1K words) / %v (64K words) per request, want <= 2", small, large)
	}
}

// TestDecodeWords pins the zero-copy/fallback decode against the
// reference loop, including the unaligned fallback path.
func TestDecodeWords(t *testing.T) {
	raw := binaryBody(1027)
	want := make([]uint32, 1027)
	for i := range want {
		want[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	check := func(name string, got []uint32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d words, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: word %d = %#x, want %#x", name, i, got[i], want[i])
			}
		}
	}
	dst := make([]uint32, 1027)
	check("aligned", decodeWords(dst, raw))
	// An offset source defeats the aliasing fast path on every host.
	shifted := make([]byte, len(raw)+1)
	copy(shifted[1:], raw)
	check("unaligned", decodeWords(dst, shifted[1:]))
	if got := decodeWords(dst, nil); len(got) != 0 {
		t.Fatalf("empty source decoded %d words", len(got))
	}
}

// BenchmarkBinaryIngest measures the in-process binary step path —
// request body to simulator — in words per second.
func BenchmarkBinaryIngest(b *testing.B) {
	const words = 16384
	s, sess := perfSession(b, 65536)
	body := binaryBody(words)
	rd := bytes.NewReader(body)
	var sum StepSummary
	ctx := context.Background()
	if err := s.consumeBinary(ctx, rd, sess, &sum); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(words * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		if err := s.consumeBinary(ctx, rd, sess, &sum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSampleEncode measures the per-sample NDJSON append path.
func BenchmarkStreamSampleEncode(b *testing.B) {
	ws := Sample{EndCycle: 100000, EnergyJ: 1.2345e-9, SelfJ: 9.87e-10,
		CoupAdjJ: 2e-10, CoupNonAdjJ: 4.75e-11, AvgTempK: 312.0625,
		MaxTempK: 319.5, MaxWire: 17}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendStreamSample(buf[:0], ws)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

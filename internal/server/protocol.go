// Package server is nanobusd: a long-running HTTP service exposing the
// unified energy/thermal bus model as streaming sessions. A session wraps
// one core.Simulator; trace words arrive as NDJSON or binary batches on
// POST /v1/sessions/{id}/step and per-interval samples flow back either
// incrementally (?stream=samples) or on GET /v1/sessions/{id}/result.
// Sessions are partitioned across shards for lock locality and recycled
// through a keyed pool via Simulator.Reset(), so a hot service pays the
// capacitance extraction, thermal eigendecomposition and memo warm-up once
// per distinct configuration, not once per session.
//
// v1 API compatibility promise: the /v1 wire surface is append-only.
// Fields and endpoints may be added; existing JSON field names, endpoint
// paths, error codes, and the binary word format (little-endian uint32)
// are never renamed, removed, or re-typed. Server results are
// bit-identical to an in-process library run of the same trace and
// configuration (JSON float64 round-trips exactly).
package server

import "nanobus/internal/core"

// CreateSessionRequest opens a session (POST /v1/sessions). Zero-valued
// fields take the service defaults noted on each field; unlike the
// library's zero-magic core.Config, an absent coupling_depth selects the
// paper's full model.
type CreateSessionRequest struct {
	// Node is the technology node label: "130nm", "90nm", "65nm", "45nm".
	Node string `json:"node"`
	// Encoding names the low-power scheme; empty means "Unencoded".
	Encoding string `json:"encoding,omitempty"`
	// LengthM is the bus length in meters; zero means the paper's 10 mm.
	LengthM float64 `json:"length_m,omitempty"`
	// IntervalCycles is the sampling interval; zero means the paper's 100K.
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
	// CouplingDepth truncates the coupling matrix (0 self-only, 1
	// nearest-neighbour, negative all pairs); absent means all pairs.
	CouplingDepth *int `json:"coupling_depth,omitempty"`
	// TrackWireTemps copies per-wire temperatures into every sample.
	TrackWireTemps bool `json:"track_wire_temps,omitempty"`
	// MemoSizeLog2 sizes the transition memo (2^k entries); zero selects
	// the default, negative disables memoization.
	MemoSizeLog2 int `json:"memo_size_log2,omitempty"`
	// DropSamples disables in-memory sample retention; combine with
	// ?stream=samples step requests for unbounded sessions.
	DropSamples bool `json:"drop_samples,omitempty"`
	// Buses opens a multi-bus session: K identical buses stepped in
	// lockstep with lateral inter-bus thermal coupling. Zero or one means
	// a scalar session. Multi-bus step bodies interleave words cycle-major
	// (words[r*K+k] is bus k's word on relative cycle r), samples carry a
	// bus index, and the result gains per-bus blocks.
	Buses int `json:"buses,omitempty"`
	// BusGapPitches is the edge-to-edge gap between adjacent buses in
	// wire pitches (multi-bus only); zero selects the service default.
	BusGapPitches float64 `json:"bus_gap_pitches,omitempty"`
	// DisableBusCoupling severs the lateral inter-bus conductance so the
	// K buses evolve as independent thermal strips (multi-bus only).
	DisableBusCoupling bool `json:"disable_bus_coupling,omitempty"`
	// Adaptive enables the adaptive encoding controller: the session
	// starts on Adaptive.Base and switches to Adaptive.Cool (and back)
	// at sampling-interval boundaries driven by the peak wire
	// temperature. Mutually exclusive with Encoding and with multi-bus
	// sessions. Samples gain encoder/switched tags and the result an
	// adaptive block.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
}

// AdaptiveSpec is the wire form of core.AdaptiveConfig: the encoder pair
// and the control-law thresholds of an adaptive session.
type AdaptiveSpec struct {
	// Base and Cool name the performance and the thermally relieving
	// encoding scheme; they must differ and both must resolve.
	Base string `json:"base"`
	Cool string `json:"cool"`
	// CeilingK is the peak-wire-temperature ceiling in kelvin the
	// controller defends.
	CeilingK float64 `json:"ceiling_k"`
	// GuardK lowers the switch-to-cool trigger below the ceiling.
	GuardK float64 `json:"guard_k,omitempty"`
	// HysteresisK sets the release band: the controller returns to Base
	// only once the peak temperature falls HysteresisK below the trigger.
	HysteresisK float64 `json:"hysteresis_k,omitempty"`
}

// SessionInfo describes a session (201 of POST /v1/sessions, and GET
// /v1/sessions/{id}).
type SessionInfo struct {
	ID             string  `json:"id"`
	Node           string  `json:"node"`
	Encoding       string  `json:"encoding"`
	Width          int     `json:"width"`
	LengthM        float64 `json:"length_m"`
	IntervalCycles uint64  `json:"interval_cycles"`
	CouplingDepth  int     `json:"coupling_depth"`
	Shard          int     `json:"shard"`
	// Recycled reports whether the session reuses a pooled simulator
	// (bit-identical to a fresh one; see Simulator.Reset).
	Recycled bool `json:"recycled"`
	// Words and IdleCycles are live cumulative counters.
	Words      uint64 `json:"words"`
	IdleCycles uint64 `json:"idle_cycles"`
	// LastSeq is the last acknowledged ?seq= batch (0 when the client
	// has never sent sequenced steps).
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Buses is the bus count K of a multi-bus session (absent for
	// scalar sessions).
	Buses int `json:"buses,omitempty"`
	// Adaptive echoes the controller spec of an adaptive session.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
}

// StepLine is one NDJSON line of a step request body: a batch of data
// words, a count of idle cycles, or both (words first).
type StepLine struct {
	Words []uint32 `json:"words,omitempty"`
	Idle  uint64   `json:"idle,omitempty"`
}

// StepSummary reports what one step request consumed (response of POST
// /v1/sessions/{id}/step).
type StepSummary struct {
	// Words and Idle are the cycles consumed by this request.
	Words uint64 `json:"words"`
	Idle  uint64 `json:"idle"`
	// Cycles is the session's cumulative cycle count afterwards.
	Cycles uint64 `json:"cycles"`
	// Samples is the number of sampling intervals closed by this request.
	Samples uint64 `json:"samples"`
	// Duplicate reports that a ?seq= batch was already applied and this
	// response is an idempotent acknowledgement: nothing was re-stepped.
	Duplicate bool `json:"duplicate,omitempty"`
	// Seq echoes the request's write-ahead sequence number, if any.
	Seq uint64 `json:"seq,omitempty"`
}

// Sample is the wire form of one sampling interval's record.
type Sample struct {
	EndCycle    uint64    `json:"end_cycle"`
	EnergyJ     float64   `json:"energy_j"`
	SelfJ       float64   `json:"self_j"`
	CoupAdjJ    float64   `json:"coup_adj_j"`
	CoupNonAdjJ float64   `json:"coup_non_adj_j"`
	AvgTempK    float64   `json:"avg_temp_k"`
	MaxTempK    float64   `json:"max_temp_k"`
	MaxWire     int       `json:"max_wire"`
	WireTempsK  []float64 `json:"wire_temps_k,omitempty"`
	// Bus tags which bus of a multi-bus session the sample belongs to
	// (absent both for scalar sessions and for bus 0).
	Bus int `json:"bus,omitempty"`
	// Encoder names the scheme that was active during this interval
	// (adaptive sessions only).
	Encoder string `json:"encoder,omitempty"`
	// Switched marks an interval whose closing decision changed the
	// active encoder: the NEXT interval runs the other scheme.
	Switched bool `json:"switched,omitempty"`
}

func fromCoreSample(s core.Sample) Sample {
	return Sample{
		EndCycle:    s.EndCycle,
		EnergyJ:     s.Energy,
		SelfJ:       s.Self,
		CoupAdjJ:    s.CoupAdj,
		CoupNonAdjJ: s.CoupNonAdj,
		AvgTempK:    s.AvgTemp,
		MaxTempK:    s.MaxTemp,
		MaxWire:     s.MaxWire,
		WireTempsK:  s.WireTemps,
		Encoder:     s.Encoder,
		Switched:    s.Switched,
	}
}

// fromCoreBusSample is fromCoreSample with the multi-bus tag applied.
func fromCoreBusSample(bus int, s core.Sample) Sample {
	ws := fromCoreSample(s)
	ws.Bus = bus
	return ws
}

// StreamLine is one NDJSON line of a ?stream=samples step response:
// exactly one field is set per line — samples as they close, then a final
// summary, or a terminal error.
type StreamLine struct {
	Sample  *Sample        `json:"sample,omitempty"`
	Summary *StepSummary   `json:"summary,omitempty"`
	Error   *ErrorResponse `json:"error,omitempty"`
}

// EnergySplit is a whole-bus energy total split by component.
type EnergySplit struct {
	TotalJ      float64 `json:"total_j"`
	SelfJ       float64 `json:"self_j"`
	CoupAdjJ    float64 `json:"coup_adj_j"`
	CoupNonAdjJ float64 `json:"coup_non_adj_j"`
}

// MemoStats is the session's transition-memo effectiveness.
type MemoStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Result is the session outcome (GET /v1/sessions/{id}/result). Unless
// ?finish=0, the server first closes the session's partial sampling
// interval, exactly like Bus.Finish. For a multi-bus session the
// top-level Total sums every bus, the temperature aggregates span the
// whole K×W grid (TempsK is the bus-major slab, MaxBus/MaxWire locate
// the hottest wire), Samples is empty, and PerBus carries each bus's
// own totals and samples.
type Result struct {
	ID       string      `json:"id"`
	Cycles   uint64      `json:"cycles"`
	Width    int         `json:"width"`
	Total    EnergySplit `json:"total"`
	AvgTempK float64     `json:"avg_temp_k"`
	MaxTempK float64     `json:"max_temp_k"`
	MaxWire  int         `json:"max_wire"`
	TempsK   []float64   `json:"temps_k"`
	Samples  []Sample    `json:"samples"`
	Memo     MemoStats   `json:"memo"`
	// Buses, MaxBus and PerBus are set only for multi-bus sessions.
	Buses  int         `json:"buses,omitempty"`
	MaxBus int         `json:"max_bus,omitempty"`
	PerBus []BusResult `json:"per_bus,omitempty"`
	// Adaptive is set only for adaptive sessions.
	Adaptive *AdaptiveResult `json:"adaptive,omitempty"`
}

// AdaptiveResult summarizes an adaptive session's controller activity.
type AdaptiveResult struct {
	// Base, Cool and CeilingK echo the session's AdaptiveSpec.
	Base     string  `json:"base"`
	Cool     string  `json:"cool"`
	CeilingK float64 `json:"ceiling_k"`
	// Active names the scheme in effect when the result was taken.
	Active string `json:"active"`
	// Switches lists every encoder switch in cycle order.
	Switches []core.SwitchEvent `json:"switches"`
	// Occupancy reports the cycles spent under each scheme, base first.
	Occupancy []core.EncoderCycles `json:"occupancy"`
}

// BusResult is one bus's slice of a multi-bus Result: the same totals,
// temperature aggregates and samples a scalar session would report.
type BusResult struct {
	Bus      int         `json:"bus"`
	Total    EnergySplit `json:"total"`
	AvgTempK float64     `json:"avg_temp_k"`
	MaxTempK float64     `json:"max_temp_k"`
	MaxWire  int         `json:"max_wire"`
	TempsK   []float64   `json:"temps_k"`
	Samples  []Sample    `json:"samples"`
}

// CloseResponse acknowledges DELETE /v1/sessions/{id}.
type CloseResponse struct {
	ID     string `json:"id"`
	Cycles uint64 `json:"cycles"`
}

// CheckpointInfo acknowledges POST /v1/sessions/{id}/checkpoint: the
// durable snapshot's identity and integrity digest.
type CheckpointInfo struct {
	ID string `json:"id"`
	// Seq is the last acknowledged write-ahead sequence number captured in
	// the checkpoint (0 when the client never sent ?seq=).
	Seq uint64 `json:"seq"`
	// Cycles is the simulated cycle count captured in the checkpoint.
	Cycles uint64 `json:"cycles"`
	// Bytes is the encoded envelope size.
	Bytes int `json:"bytes"`
	// SHA256 is the hex digest of the envelope.
	SHA256 string `json:"sha256"`
	// Stored reports whether the envelope was written to the server's
	// checkpoint store (false for ?download=1 on a store-less server).
	Stored bool `json:"stored"`
}

// RestoreResponse acknowledges PUT /v1/sessions/{id}/restore: where the
// session's state now stands, so clients resume from Seq+1.
type RestoreResponse struct {
	ID string `json:"id"`
	// Seq is the last write-ahead sequence number the restored state has
	// applied; batches up to and including it must NOT be replayed.
	Seq uint64 `json:"seq"`
	// Cycles, Words and IdleCycles are the restored cumulative counters.
	Cycles     uint64 `json:"cycles"`
	Words      uint64 `json:"words"`
	IdleCycles uint64 `json:"idle_cycles"`
	// Resurrected reports that the session did not exist (poisoned pod,
	// process restart) and was rebuilt from the stored checkpoint.
	Resurrected bool `json:"resurrected"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Sessions int64  `json:"sessions"`
}

// OwnerInfo names the cluster node a redirected request should go to.
// It rides on not_owner/moved errors so clients re-route without a
// second lookup; single-node servers never emit it.
type OwnerInfo struct {
	// Node is the owning member's stable cluster name.
	Node string `json:"node"`
	// URL is the owner's v1 API base URL.
	URL string `json:"url"`
	// NBWP is the owner's NBWP host:port, when it serves the binary
	// protocol.
	NBWP string `json:"nbwp,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// Owner points at the cluster node that owns the session, set only
	// with CodeNotOwner and CodeMoved.
	Owner *OwnerInfo `json:"owner,omitempty"`
}

// Machine-readable error codes of the v1 API.
const (
	CodeBadRequest      = "bad_request"
	CodeUnknownNode     = "unknown_node"
	CodeUnknownEncoding = "unknown_encoding"
	CodeNotFound        = "not_found"
	CodeSessionBusy     = "session_busy"
	CodeBatchTooLarge   = "batch_too_large"
	CodeServerFull      = "server_full"
	CodeDraining        = "draining"
	CodePoisoned        = "poisoned"
	CodeCanceled        = "canceled"
	CodeInternal        = "internal"
	// CodeSeqGap rejects a ?seq= batch that skips ahead of the session's
	// last acknowledged sequence number (the client must rewind).
	CodeSeqGap = "seq_gap"
	// CodeSeqConflict rejects ?seq= traffic after a batch failed mid-apply:
	// the state is past the last acknowledged sequence number, so dedup
	// accounting is unsound until the client restores from a checkpoint.
	CodeSeqConflict = "seq_conflict"
	// CodeNoCheckpoint marks a restore with no stored checkpoint to load.
	CodeNoCheckpoint = "no_checkpoint"
	// CodeNoStore marks a checkpoint/restore on a server with no
	// configured checkpoint store (and no inline blob to fall back on).
	CodeNoStore = "no_store"
	// CodeCheckpointCorrupt marks a checkpoint rejected for structural
	// damage (truncation, checksum mismatch, bad magic/version).
	CodeCheckpointCorrupt = "checkpoint_corrupt"
	// CodeCheckpointMismatch marks a checkpoint whose configuration does
	// not match the session it is being restored into.
	CodeCheckpointMismatch = "checkpoint_mismatch"
	// CodeNotOwner rejects (421) a session request on a cluster node the
	// hash ring does not assign the id to; the Owner field names the node
	// that serves it.
	CodeNotOwner = "not_owner"
	// CodeMoved rejects a request for a session this node migrated away;
	// the Owner field names the node it moved to.
	CodeMoved = "moved"
)

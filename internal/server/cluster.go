package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"nanobus/internal/blob"
	"nanobus/internal/cluster"
)

// This file is the server side of cluster mode: ownership redirects
// (not_owner/moved with the owning node's contacts), checkpoint-based
// session migration, and the peer blob endpoints the replicated store
// fans out to. Single-node servers keep all of it inert — the ring is
// nil, redirects never fire, and the blob endpoints answer 501 unless a
// store is configured.

// --- Ownership ----------------------------------------------------------------

// ownerInfo resolves a member name to its advertised contacts.
func (s *Server) ownerInfo(name string) *OwnerInfo {
	n, ok := cluster.FindNode(s.cfg.Cluster.Nodes, name)
	if !ok {
		return &OwnerInfo{Node: name}
	}
	return &OwnerInfo{Node: n.Name, URL: n.HTTP, NBWP: n.NBWP}
}

// redirectErr returns the cluster redirect for a session this node does
// not hold, or nil when a plain not-found is the right answer (single
// node, or an id the ring does assign here). The moved table wins over
// the ring: a freshly migrated session's owner-of-record is wherever the
// migration put it, even though the ring still hashes the id here.
func (s *Server) redirectErr(id string) *httpErr {
	if s.ring == nil {
		return nil
	}
	s.movedMu.Lock()
	target, wasMoved := s.moved[id]
	s.movedMu.Unlock()
	if wasMoved {
		s.movedTotal.Add(1)
		return &httpErr{http.StatusMisdirectedRequest, CodeMoved,
			fmt.Sprintf("session %s migrated to node %s", id, target), s.ownerInfo(target)}
	}
	if owner := s.ring.Owner(id); owner != s.cfg.Cluster.Self {
		s.notOwnerTotal.Add(1)
		return &httpErr{http.StatusMisdirectedRequest, CodeNotOwner,
			fmt.Sprintf("session %s belongs to node %s", id, owner), s.ownerInfo(owner)}
	}
	return nil
}

// notFoundErr classifies a session-table miss: a cluster redirect when
// another node serves the id, otherwise the plain 404.
func (s *Server) notFoundErr(id string) *httpErr {
	if he := s.redirectErr(id); he != nil {
		return he
	}
	return &httpErr{status: http.StatusNotFound, code: CodeNotFound, msg: "unknown session"}
}

// closedErr classifies a request that caught a session mid-teardown: a
// migration away reports the new owner (the racing request must follow
// it), a local close stays a plain 404.
func (s *Server) closedErr(id string) *httpErr {
	if he := s.redirectErr(id); he != nil {
		return he
	}
	return &httpErr{status: http.StatusNotFound, code: CodeNotFound, msg: "session closed"}
}

// --- GET /v1/cluster ----------------------------------------------------------

// ClusterStatus is the body of GET /v1/cluster: the node's own identity
// and the full static membership, which is all a client needs to build
// the same ring the servers route by. Self is empty on single-node
// servers.
type ClusterStatus struct {
	Self     string         `json:"self"`
	Nodes    []cluster.Node `json:"nodes"`
	Replicas int            `json:"replicas"`
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ClusterStatus{
		Self:     s.cfg.Cluster.Self,
		Nodes:    s.cfg.Cluster.Nodes,
		Replicas: s.cfg.Cluster.Replicas,
	})
}

// --- POST /v1/cluster/sessions/{id}/migrate -----------------------------------

// MigrateRequest names the node a session should move to.
type MigrateRequest struct {
	Target string `json:"target"`
}

// MigrateResponse acknowledges a completed migration: the session now
// lives on Target, restored at Seq.
type MigrateResponse struct {
	ID     string `json:"id"`
	Target string `json:"target"`
	Seq    uint64 `json:"seq"`
	Cycles uint64 `json:"cycles"`
}

// handleMigrate moves a session to another node: checkpoint here,
// restore there, then redirect stragglers. The session's semaphore is
// held across the whole move, so a racing STEP serializes behind it and
// finds the session either still here (applied normally, before the
// checkpoint) or moved (redirected, applied on the target) — there is no
// interleaving in which a batch lands on both nodes.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		writeError(w, http.StatusNotImplemented, CodeBadRequest, "server is not in cluster mode")
		return
	}
	var req MigrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decode request: "+err.Error())
		return
	}
	target, ok := cluster.FindNode(s.cfg.Cluster.Nodes, req.Target)
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown target node %q", req.Target))
		return
	}
	if target.Name == s.cfg.Cluster.Self {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "target is this node")
		return
	}
	id := r.PathValue("id")
	sess, sh, found := s.find(id)
	if !found {
		writeHTTPErr(w, s.notFoundErr(id))
		return
	}
	sh.queue.Add(1)
	defer sh.queue.Add(-1)
	if err := s.acquireSession(r.Context(), sess); err != nil {
		writeError(w, http.StatusConflict, CodeSessionBusy, "session busy: "+err.Error())
		return
	}
	defer sess.release()
	if sess.closed {
		writeHTTPErr(w, s.closedErr(sess.id))
		return
	}
	if sess.dirtySeq {
		writeError(w, http.StatusConflict, CodeSeqConflict,
			"a sequenced batch failed mid-apply; restore from a checkpoint before migrating")
		return
	}

	info, data, err := s.checkpointLocked(r.Context(), sess)
	if err != nil {
		writeHTTPErr(w, asHTTPErr(err))
		return
	}
	if err := s.restoreOnPeer(r, target, id, data); err != nil {
		writeError(w, http.StatusBadGateway, CodeInternal,
			fmt.Sprintf("restore on %s: %v", target.Name, err))
		return
	}
	// The target serves the session from here on. Record the move before
	// deregistering so a request that misses the table finds the
	// redirect, and keep the stored envelope — it is the target's
	// replica now.
	s.movedMu.Lock()
	s.moved[id] = target.Name
	s.movedMu.Unlock()
	s.deregister(sess, sh)
	s.migratedTotal.Add(1)
	writeJSON(w, http.StatusOK, MigrateResponse{
		ID:     id,
		Target: target.Name,
		Seq:    info.Seq,
		Cycles: info.Cycles,
	})
}

// restoreOnPeer pushes a checkpoint envelope to target's inline-restore
// endpoint, resurrecting the session there.
func (s *Server) restoreOnPeer(r *http.Request, target cluster.Node, id string, data []byte) error {
	url := target.HTTP + "/v1/sessions/" + id + "/restore"
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.peerHC.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr the restore outcome is the status; body close is best-effort
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		//nanolint:ignore droppederr the status error is reported; the body snippet is best-effort color
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// --- Peer blob endpoints ------------------------------------------------------

// peerStore is the store the /v1/cluster/blobs endpoints serve: the
// node's local store, never the replicated one (a peer writing here must
// not trigger a second fan-out).
func (s *Server) peerStore() BlobStore {
	if s.cfg.PeerStore != nil {
		return s.cfg.PeerStore
	}
	return s.cfg.Store
}

func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	st := s.peerStore()
	if st == nil {
		writeError(w, http.StatusNotImplemented, CodeNoStore, "no checkpoint store configured")
		return
	}
	id := r.PathValue("id")
	if !blob.ValidID(id) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("invalid blob id %q", id))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read blob: "+err.Error())
		return
	}
	if len(data) > maxEnvelopeBytes {
		writeError(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			fmt.Sprintf("blob exceeds %d bytes", maxEnvelopeBytes))
		return
	}
	// Replicas are vetted on arrival: accepting a torn envelope would
	// defeat the point of holding a second copy.
	if err := ValidateEnvelope(data); err != nil {
		he := asHTTPErr(err)
		writeError(w, he.status, he.code, he.msg)
		return
	}
	if err := st.Put(r.Context(), id, data); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	st := s.peerStore()
	if st == nil {
		writeError(w, http.StatusNotImplemented, CodeNoStore, "no checkpoint store configured")
		return
	}
	data, err := st.Get(r.Context(), r.PathValue("id"))
	if errors.Is(err, blob.ErrNotFound) {
		writeError(w, http.StatusNotFound, CodeNoCheckpoint, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	//nanolint:ignore droppederr a failed response write means the peer is gone; no recovery path
	_, _ = w.Write(data)
}

func (s *Server) handleBlobDelete(w http.ResponseWriter, r *http.Request) {
	st := s.peerStore()
	if st == nil {
		writeError(w, http.StatusNotImplemented, CodeNoStore, "no checkpoint store configured")
		return
	}
	if err := st.Delete(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleBlobList(w http.ResponseWriter, r *http.Request) {
	st := s.peerStore()
	if st == nil {
		writeError(w, http.StatusNotImplemented, CodeNoStore, "no checkpoint store configured")
		return
	}
	ids, err := st.List(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, ids)
}

// Append-based NDJSON sample encoding. The ?stream=samples step path
// emits one StreamLine per closed sampling interval; encoding each line
// with encoding/json allocates an encoder state and scratch per sample.
// The hot loop instead appends into one per-session buffer with these
// helpers, byte-identical to json.Encoder.Encode(StreamLine{Sample: &s})
// (the parity test pins that), so clients cannot tell the paths apart.
package server

import (
	"math"
	"strconv"
)

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format except for magnitudes below 1e-6
// or at least 1e21, which use 'e' with any zero-padded exponent stripped
// (1e-07 → 1e-7). f must be finite — encoding/json rejects NaN and ±Inf,
// and the sampler never produces them.
//
//nanolint:hotpath runs once per streamed sample field into a reused buffer
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	//nanolint:ignore floateq exact-zero sentinel mirrors encoding/json's own format selection
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendStreamSample appends one complete ?stream=samples NDJSON line —
// {"sample":{...}} plus the trailing newline — for ws.
//
//nanolint:hotpath per-sample NDJSON encoder; append into the reused stream buffer only
func appendStreamSample(b []byte, ws Sample) []byte {
	b = append(b, `{"sample":{"end_cycle":`...)
	b = strconv.AppendUint(b, ws.EndCycle, 10)
	b = append(b, `,"energy_j":`...)
	b = appendJSONFloat(b, ws.EnergyJ)
	b = append(b, `,"self_j":`...)
	b = appendJSONFloat(b, ws.SelfJ)
	b = append(b, `,"coup_adj_j":`...)
	b = appendJSONFloat(b, ws.CoupAdjJ)
	b = append(b, `,"coup_non_adj_j":`...)
	b = appendJSONFloat(b, ws.CoupNonAdjJ)
	b = append(b, `,"avg_temp_k":`...)
	b = appendJSONFloat(b, ws.AvgTempK)
	b = append(b, `,"max_temp_k":`...)
	b = appendJSONFloat(b, ws.MaxTempK)
	b = append(b, `,"max_wire":`...)
	b = strconv.AppendInt(b, int64(ws.MaxWire), 10)
	if len(ws.WireTempsK) > 0 {
		b = append(b, `,"wire_temps_k":[`...)
		for i, t := range ws.WireTempsK {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, t)
		}
		b = append(b, ']')
	}
	if ws.Bus != 0 {
		b = append(b, `,"bus":`...)
		b = strconv.AppendInt(b, int64(ws.Bus), 10)
	}
	if ws.Encoder != "" {
		// Scheme names come from the encoding registry and contain only
		// characters encoding/json passes through unescaped.
		b = append(b, `,"encoder":"`...)
		b = append(b, ws.Encoder...)
		b = append(b, '"')
	}
	if ws.Switched {
		b = append(b, `,"switched":true`...)
	}
	b = append(b, '}', '}', '\n')
	return b
}

package cpu

import (
	"testing"

	"nanobus/internal/isa"
	"nanobus/internal/trace"
)

func run(t *testing.T, src string, maxSteps int) *CPU {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	c := LoadProgram(p)
	for i := 0; i < maxSteps && !c.Halted; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
	}
	if !c.Halted {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	return c
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into r2.
	c := run(t, `
		.org 0x1000
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`, 100)
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
		.org 0x1000
		la r1, data
		lw r2, 0(r1)
		lw r3, 4(r1)
		add r4, r2, r3
		sw r4, 8(r1)
		lb r5, 0(r1)
		lbu r6, 12(r1)
		lh r7, 12(r1)
		lhu r8, 12(r1)
		halt
		.align 4
	data:
		.word 40, 2, 0
		.word 0xFFFF80FF
	`, 100)
	if c.Regs[4] != 42 {
		t.Errorf("r4 = %d, want 42", c.Regs[4])
	}
	if c.Regs[5] != 40 { // lb of 40
		t.Errorf("lb = %d, want 40", c.Regs[5])
	}
	if c.Regs[6] != 0xFF {
		t.Errorf("lbu = %#x, want 0xFF", c.Regs[6])
	}
	if c.Regs[7] != 0xFFFF80FF {
		t.Errorf("lh sign-extended = %#x, want 0xFFFF80FF", c.Regs[7])
	}
	if c.Regs[8] != 0x80FF {
		t.Errorf("lhu = %#x, want 0x80FF", c.Regs[8])
	}
}

func TestShiftAndCompare(t *testing.T) {
	c := run(t, `
		addi r1, r0, 1
		slli r2, r1, 31     # 0x80000000
		srai r3, r2, 31     # 0xFFFFFFFF (arithmetic)
		srli r4, r2, 31     # 1 (logical)
		slt  r5, r2, r1     # signed: 0x80000000 < 1 -> 1
		sltu r6, r2, r1     # unsigned: -> 0
		halt
	`, 20)
	if c.Regs[2] != 0x80000000 {
		t.Errorf("slli = %#x", c.Regs[2])
	}
	if c.Regs[3] != 0xFFFFFFFF {
		t.Errorf("srai = %#x", c.Regs[3])
	}
	if c.Regs[4] != 1 {
		t.Errorf("srli = %#x", c.Regs[4])
	}
	if c.Regs[5] != 1 || c.Regs[6] != 0 {
		t.Errorf("slt=%d sltu=%d", c.Regs[5], c.Regs[6])
	}
}

func TestMulDivRem(t *testing.T) {
	c := run(t, `
		addi r1, r0, -7
		addi r2, r0, 3
		mul r3, r1, r2
		div r4, r1, r2
		rem r5, r1, r2
		div r6, r1, r0     # div by zero -> all ones
		rem r7, r1, r0     # rem by zero -> dividend
		halt
	`, 20)
	if int32(c.Regs[3]) != -21 {
		t.Errorf("mul = %d", int32(c.Regs[3]))
	}
	if int32(c.Regs[4]) != -2 {
		t.Errorf("div = %d", int32(c.Regs[4]))
	}
	if int32(c.Regs[5]) != -1 {
		t.Errorf("rem = %d", int32(c.Regs[5]))
	}
	if c.Regs[6] != 0xFFFFFFFF || int32(c.Regs[7]) != -7 {
		t.Errorf("div0=%#x rem0=%d", c.Regs[6], int32(c.Regs[7]))
	}
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
		.org 0x1000
		addi r1, r0, 5
		call double
		call double
		halt
	double:
		add r1, r1, r1
		ret
	`, 50)
	if c.Regs[1] != 20 {
		t.Errorf("r1 = %d, want 20", c.Regs[1])
	}
}

func TestFloatingPoint(t *testing.T) {
	c := run(t, `
		la r1, vals
		flw f1, 0(r1)
		flw f2, 4(r1)
		fadd f3, f1, f2
		fmul f4, f1, f2
		fdiv f5, f2, f1
		fsub f6, f2, f1
		fmin f7, f1, f2
		fmax f8, f1, f2
		flt r2, f1, f2
		feq r3, f1, f1
		fcvtws r4, f4, f0
		addi r5, r0, 9
		fcvtsw f9, r5, r0
		fsw f3, 8(r1)
		halt
		.align 4
	vals:
		.float 2.5, 10.0
		.word 0
	`, 50)
	if c.FRegs[3] != 12.5 {
		t.Errorf("fadd = %g, want 12.5", c.FRegs[3])
	}
	if c.FRegs[4] != 25 {
		t.Errorf("fmul = %g, want 25", c.FRegs[4])
	}
	if c.FRegs[5] != 4 {
		t.Errorf("fdiv = %g, want 4", c.FRegs[5])
	}
	if c.FRegs[6] != 7.5 {
		t.Errorf("fsub = %g", c.FRegs[6])
	}
	if c.FRegs[7] != 2.5 || c.FRegs[8] != 10 {
		t.Errorf("fmin/fmax = %g/%g", c.FRegs[7], c.FRegs[8])
	}
	if c.Regs[2] != 1 || c.Regs[3] != 1 {
		t.Errorf("flt=%d feq=%d", c.Regs[2], c.Regs[3])
	}
	if c.Regs[4] != 25 {
		t.Errorf("fcvtws = %d", c.Regs[4])
	}
	if c.FRegs[9] != 9 {
		t.Errorf("fcvtsw = %g", c.FRegs[9])
	}
}

func TestR0Hardwired(t *testing.T) {
	c := run(t, `
		addi r0, r0, 99
		add r1, r0, r0
		halt
	`, 10)
	if c.Regs[0] != 0 || c.Regs[1] != 0 {
		t.Errorf("r0=%d r1=%d, want 0 0", c.Regs[0], c.Regs[1])
	}
}

func TestEvents(t *testing.T) {
	p, err := isa.Assemble(`
		.org 0x1000
		la r1, data
		lw r2, 0(r1)
		sw r2, 4(r1)
		halt
		.align 4
	data:
		.word 7, 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := LoadProgram(p)
	var evs []Event
	for !c.Halted {
		ev, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	// la(2) + lw + sw + halt = 5 events.
	if len(evs) != 5 {
		t.Fatalf("%d events, want 5", len(evs))
	}
	if evs[0].Fetch != 0x1000 || evs[1].Fetch != 0x1004 {
		t.Errorf("fetch addresses wrong: %+v", evs[:2])
	}
	data := p.Symbols["data"]
	if !evs[2].Mem || evs[2].Addr != data || evs[2].Store {
		t.Errorf("load event wrong: %+v", evs[2])
	}
	if !evs[3].Mem || evs[3].Addr != data+4 || !evs[3].Store {
		t.Errorf("store event wrong: %+v", evs[3])
	}
	if evs[4].Mem {
		t.Errorf("halt generated a memory event")
	}
}

func TestCounters(t *testing.T) {
	c := run(t, `
		.org 0x1000
		addi r1, r0, 3
	loop:
		lw r2, 0(r3)
		sw r2, 4(r3)
		fadd f1, f1, f2
		addi r1, r1, -1
		bne r1, r0, loop
		call fn
		halt
	fn:
		ret
	`, 100)
	k := c.Counters
	if k.Loads != 3 || k.Stores != 3 {
		t.Errorf("loads/stores = %d/%d, want 3/3", k.Loads, k.Stores)
	}
	if k.Branches != 3 || k.Taken != 2 {
		t.Errorf("branches/taken = %d/%d, want 3/2", k.Branches, k.Taken)
	}
	if k.Jumps != 2 { // call + ret
		t.Errorf("jumps = %d, want 2", k.Jumps)
	}
	if k.FPOps != 3 {
		t.Errorf("fp ops = %d, want 3", k.FPOps)
	}
}

func TestStepWhileHalted(t *testing.T) {
	c := run(t, "halt", 5)
	if _, err := c.Step(); err == nil {
		t.Error("step while halted accepted")
	}
}

func TestInvalidInstruction(t *testing.T) {
	mem := NewMemory()
	mem.WriteBytes(0, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	c := New(mem, 0)
	if _, err := c.Step(); err == nil {
		t.Error("invalid instruction executed")
	}
}

func TestUnalignedAccess(t *testing.T) {
	p, err := isa.Assemble(`
		addi r1, r0, 2
		lw r2, 0(r1)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := LoadProgram(p)
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err == nil {
		t.Error("unaligned lw accepted")
	}
}

func TestTraceSourceRestarts(t *testing.T) {
	p, err := isa.Assemble(`
		.org 0x1000
		addi r1, r1, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := LoadProgram(p)
	src := NewTraceSource(c, p.Entry)
	var n int
	for n = 0; n < 10; n++ {
		cyc, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at %d: %v", n, src.Err())
		}
		if !cyc.IValid {
			t.Fatal("invalid fetch")
		}
	}
	if src.Restarts < 3 {
		t.Errorf("restarts = %d, want >= 3 for a 2-instruction program over 10 cycles", src.Restarts)
	}
	if c.Regs[1] < 4 {
		t.Errorf("program state did not persist across restarts: r1=%d", c.Regs[1])
	}
}

func TestMemorySparse(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, 42)
	m.WriteWord(0xFFFF0000, 43)
	if m.PageCount() != 2 {
		t.Errorf("pages = %d, want 2", m.PageCount())
	}
	v, err := m.ReadWord(0x1000)
	if err != nil || v != 42 {
		t.Errorf("ReadWord = %d, %v", v, err)
	}
	// Cross-page byte write.
	m.WriteBytes(0x1FFE, []byte{1, 2, 3, 4})
	if m.LoadByte(0x2001) != 4 {
		t.Error("cross-page WriteBytes failed")
	}
	if _, err := m.ReadWord(0x1001); err == nil {
		t.Error("unaligned ReadWord accepted")
	}
	if err := m.WriteWord(0x1002, 1); err == nil {
		t.Error("unaligned WriteWord accepted")
	}
	if _, err := m.ReadHalf(0x1001); err == nil {
		t.Error("unaligned ReadHalf accepted")
	}
	if err := m.WriteHalf(0x1001, 1); err == nil {
		t.Error("unaligned WriteHalf accepted")
	}
}

var _ trace.Source = (*TraceSource)(nil)

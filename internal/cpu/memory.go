package cpu

import (
	"encoding/binary"
	"fmt"

	"nanobus/internal/isa"
)

// pageBits selects a 4 KiB page granule for the sparse memory.
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, little-endian 32-bit byte-addressable memory.
// Pages materialise (zero-filled) on first touch, so multi-megabyte
// workload footprints cost only what they touch.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// PageCount returns the number of materialised pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// LoadProgram copies a program's segments into memory.
func (m *Memory) LoadProgram(p *isa.Program) {
	for _, seg := range p.Segments {
		m.WriteBytes(seg.Addr, seg.Data)
	}
}

// WriteBytes copies b to addr, crossing pages as needed.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr & (pageSize - 1)
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint32(n)
	}
}

// ReadWord reads a 32-bit little-endian word; addr must be 4-aligned.
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, fmt.Errorf("cpu: unaligned word read at %#x", addr)
	}
	p := m.page(addr)
	off := addr & (pageSize - 1)
	return binary.LittleEndian.Uint32(p[off : off+4]), nil
}

// WriteWord writes a 32-bit word; addr must be 4-aligned.
func (m *Memory) WriteWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("cpu: unaligned word write at %#x", addr)
	}
	p := m.page(addr)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint32(p[off:off+4], v)
	return nil
}

// ReadHalf reads a 16-bit little-endian halfword; addr must be 2-aligned.
func (m *Memory) ReadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, fmt.Errorf("cpu: unaligned half read at %#x", addr)
	}
	p := m.page(addr)
	off := addr & (pageSize - 1)
	return binary.LittleEndian.Uint16(p[off : off+2]), nil
}

// WriteHalf writes a 16-bit halfword; addr must be 2-aligned.
func (m *Memory) WriteHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return fmt.Errorf("cpu: unaligned half write at %#x", addr)
	}
	p := m.page(addr)
	off := addr & (pageSize - 1)
	binary.LittleEndian.PutUint16(p[off:off+2], v)
	return nil
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) byte {
	return m.page(addr)[addr&(pageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

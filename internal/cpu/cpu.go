// Package cpu implements the NB32 functional processor simulator that
// generates the paper's address traces: every committed instruction yields
// one fetch address (the IA bus) and, for loads/stores, one data address
// (the DA bus), mirroring the SHADE/cachesim5 methodology of Sec. 5.1.
package cpu

import (
	"fmt"
	"math"

	"nanobus/internal/isa"
	"nanobus/internal/trace"
)

// Counters classify committed instructions — the mix statistics used to
// sanity-check that a synthetic workload behaves like the program class it
// imitates.
type Counters struct {
	Loads, Stores uint64
	// Branches counts conditional branches; Taken those that redirected.
	Branches, Taken uint64
	// Jumps counts jal/jalr.
	Jumps uint64
	// FPOps counts floating-point arithmetic/conversion instructions.
	FPOps uint64
}

// CPU is the architectural state of one NB32 core.
type CPU struct {
	// Regs are the integer registers; Regs[0] reads as zero.
	Regs [isa.NumRegs]uint32
	// FRegs are the FP registers.
	FRegs [isa.NumRegs]float32
	// PC is the program counter.
	PC uint32
	// Mem is the memory.
	Mem *Memory
	// Halted is set by the halt instruction.
	Halted bool
	// Instret counts committed instructions.
	Instret uint64
	// Counters classify the committed instructions.
	Counters Counters
}

// New builds a CPU over mem starting at entry.
func New(mem *Memory, entry uint32) *CPU {
	return &CPU{Mem: mem, PC: entry}
}

// LoadProgram assembles nothing — it loads an assembled program and points
// the PC at its entry.
func LoadProgram(p *isa.Program) *CPU {
	mem := NewMemory()
	mem.LoadProgram(p)
	return New(mem, p.Entry)
}

// Event reports what one committed instruction put on the address buses.
type Event struct {
	// Fetch is the instruction's own address.
	Fetch uint32
	// Mem reports a data access with its address; Store distinguishes
	// stores from loads.
	Mem   bool
	Addr  uint32
	Store bool
}

// Step executes one instruction and reports its bus event. Executing while
// halted is an error.
func (c *CPU) Step() (Event, error) {
	if c.Halted {
		return Event{}, fmt.Errorf("cpu: step while halted at pc=%#x", c.PC)
	}
	ev := Event{Fetch: c.PC}
	w, err := c.Mem.ReadWord(c.PC)
	if err != nil {
		return ev, fmt.Errorf("cpu: fetch: %w", err)
	}
	in := isa.Decode(w)
	next := c.PC + 4

	r := func(i uint8) uint32 {
		if i == 0 {
			return 0
		}
		return c.Regs[i]
	}
	setR := func(i uint8, v uint32) {
		if i != 0 {
			c.Regs[i] = v
		}
	}

	switch in.Op {
	case isa.OpAdd:
		setR(in.Rd, r(in.Rs1)+r(in.Rs2))
	case isa.OpSub:
		setR(in.Rd, r(in.Rs1)-r(in.Rs2))
	case isa.OpAnd:
		setR(in.Rd, r(in.Rs1)&r(in.Rs2))
	case isa.OpOr:
		setR(in.Rd, r(in.Rs1)|r(in.Rs2))
	case isa.OpXor:
		setR(in.Rd, r(in.Rs1)^r(in.Rs2))
	case isa.OpSll:
		setR(in.Rd, r(in.Rs1)<<(r(in.Rs2)&31))
	case isa.OpSrl:
		setR(in.Rd, r(in.Rs1)>>(r(in.Rs2)&31))
	case isa.OpSra:
		setR(in.Rd, uint32(int32(r(in.Rs1))>>(r(in.Rs2)&31)))
	case isa.OpSlt:
		setR(in.Rd, b2u(int32(r(in.Rs1)) < int32(r(in.Rs2))))
	case isa.OpSltu:
		setR(in.Rd, b2u(r(in.Rs1) < r(in.Rs2)))
	case isa.OpMul:
		setR(in.Rd, r(in.Rs1)*r(in.Rs2))
	case isa.OpDiv:
		d := r(in.Rs2)
		if d == 0 {
			setR(in.Rd, ^uint32(0))
		} else {
			setR(in.Rd, uint32(int32(r(in.Rs1))/int32(d)))
		}
	case isa.OpRem:
		d := r(in.Rs2)
		if d == 0 {
			setR(in.Rd, r(in.Rs1))
		} else {
			setR(in.Rd, uint32(int32(r(in.Rs1))%int32(d)))
		}

	case isa.OpAddi:
		setR(in.Rd, r(in.Rs1)+uint32(in.Imm))
	case isa.OpAndi:
		setR(in.Rd, r(in.Rs1)&uint32(in.Imm))
	case isa.OpOri:
		setR(in.Rd, r(in.Rs1)|uint32(in.Imm))
	case isa.OpXori:
		setR(in.Rd, r(in.Rs1)^uint32(in.Imm))
	case isa.OpSlti:
		setR(in.Rd, b2u(int32(r(in.Rs1)) < in.Imm))
	case isa.OpSlli:
		setR(in.Rd, r(in.Rs1)<<(uint32(in.Imm)&31))
	case isa.OpSrli:
		setR(in.Rd, r(in.Rs1)>>(uint32(in.Imm)&31))
	case isa.OpSrai:
		setR(in.Rd, uint32(int32(r(in.Rs1))>>(uint32(in.Imm)&31)))

	case isa.OpLui:
		setR(in.Rd, uint32(in.Imm))

	case isa.OpLw, isa.OpLh, isa.OpLhu, isa.OpLb, isa.OpLbu, isa.OpFlw:
		addr := r(in.Rs1) + uint32(in.Imm)
		ev.Mem, ev.Addr = true, addr
		switch in.Op {
		case isa.OpLw:
			v, err := c.Mem.ReadWord(addr)
			if err != nil {
				return ev, err
			}
			setR(in.Rd, v)
		case isa.OpLh:
			v, err := c.Mem.ReadHalf(addr)
			if err != nil {
				return ev, err
			}
			setR(in.Rd, uint32(int32(int16(v))))
		case isa.OpLhu:
			v, err := c.Mem.ReadHalf(addr)
			if err != nil {
				return ev, err
			}
			setR(in.Rd, uint32(v))
		case isa.OpLb:
			setR(in.Rd, uint32(int32(int8(c.Mem.LoadByte(addr)))))
		case isa.OpLbu:
			setR(in.Rd, uint32(c.Mem.LoadByte(addr)))
		case isa.OpFlw:
			v, err := c.Mem.ReadWord(addr)
			if err != nil {
				return ev, err
			}
			c.FRegs[in.Rd] = math.Float32frombits(v)
		}

	case isa.OpSw, isa.OpSh, isa.OpSb, isa.OpFsw:
		addr := r(in.Rs1) + uint32(in.Imm)
		ev.Mem, ev.Addr, ev.Store = true, addr, true
		switch in.Op {
		case isa.OpSw:
			if err := c.Mem.WriteWord(addr, r(in.Rs2)); err != nil {
				return ev, err
			}
		case isa.OpSh:
			if err := c.Mem.WriteHalf(addr, uint16(r(in.Rs2))); err != nil {
				return ev, err
			}
		case isa.OpSb:
			c.Mem.StoreByte(addr, byte(r(in.Rs2)))
		case isa.OpFsw:
			if err := c.Mem.WriteWord(addr, math.Float32bits(c.FRegs[in.Rs2])); err != nil {
				return ev, err
			}
		}

	case isa.OpBeq:
		if r(in.Rs1) == r(in.Rs2) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBne:
		if r(in.Rs1) != r(in.Rs2) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBlt:
		if int32(r(in.Rs1)) < int32(r(in.Rs2)) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBge:
		if int32(r(in.Rs1)) >= int32(r(in.Rs2)) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBltu:
		if r(in.Rs1) < r(in.Rs2) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBgeu:
		if r(in.Rs1) >= r(in.Rs2) {
			next = c.PC + uint32(in.Imm)
		}

	case isa.OpJal:
		setR(in.Rd, c.PC+4)
		next = c.PC + uint32(in.Imm)
	case isa.OpJalr:
		t := (r(in.Rs1) + uint32(in.Imm)) &^ 3
		setR(in.Rd, c.PC+4)
		next = t

	case isa.OpFadd:
		c.FRegs[in.Rd] = c.FRegs[in.Rs1] + c.FRegs[in.Rs2]
	case isa.OpFsub:
		c.FRegs[in.Rd] = c.FRegs[in.Rs1] - c.FRegs[in.Rs2]
	case isa.OpFmul:
		c.FRegs[in.Rd] = c.FRegs[in.Rs1] * c.FRegs[in.Rs2]
	case isa.OpFdiv:
		c.FRegs[in.Rd] = c.FRegs[in.Rs1] / c.FRegs[in.Rs2]
	case isa.OpFmin:
		c.FRegs[in.Rd] = float32(math.Min(float64(c.FRegs[in.Rs1]), float64(c.FRegs[in.Rs2])))
	case isa.OpFmax:
		c.FRegs[in.Rd] = float32(math.Max(float64(c.FRegs[in.Rs1]), float64(c.FRegs[in.Rs2])))
	case isa.OpFeq:
		setR(in.Rd, b2u(c.FRegs[in.Rs1] == c.FRegs[in.Rs2])) //nanolint:ignore floateq Feq implements the ISA's IEEE-754 equality semantics
	case isa.OpFlt:
		setR(in.Rd, b2u(c.FRegs[in.Rs1] < c.FRegs[in.Rs2]))
	case isa.OpFcvtws:
		setR(in.Rd, uint32(int32(c.FRegs[in.Rs1])))
	case isa.OpFcvtsw:
		c.FRegs[in.Rd] = float32(int32(r(in.Rs1)))
	case isa.OpFmvxw:
		setR(in.Rd, math.Float32bits(c.FRegs[in.Rs1]))
	case isa.OpFmvwx:
		c.FRegs[in.Rd] = math.Float32frombits(r(in.Rs1))

	case isa.OpHalt:
		c.Halted = true
		next = c.PC

	default:
		return ev, fmt.Errorf("cpu: invalid instruction %#08x at pc=%#x", w, c.PC)
	}

	// Classify for the mix counters.
	info := isa.InfoOf(in.Op)
	switch {
	case info.Load:
		c.Counters.Loads++
	case info.Store:
		c.Counters.Stores++
	case info.Fmt == isa.FmtB:
		c.Counters.Branches++
		if next != ev.Fetch+4 {
			c.Counters.Taken++
		}
	case in.Op == isa.OpJal || in.Op == isa.OpJalr:
		c.Counters.Jumps++
	}
	if info.FP && !info.Load && !info.Store {
		c.Counters.FPOps++
	}

	c.PC = next
	c.Instret++
	return ev, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// TraceSource adapts a CPU to trace.Source: one Cycle per committed
// instruction. When the program halts before the consumer stops pulling,
// the CPU restarts from the configured entry point (SPEC-style programs
// run far longer than any trace window; restarting keeps sources infinite
// like the paper's 300M-cycle windows require). A Step error terminates
// the stream and is retained in Err.
type TraceSource struct {
	CPU   *CPU
	entry uint32
	err   error
	// Restarts counts how many times the program wrapped around.
	Restarts int
}

// NewTraceSource wraps the CPU; entry is the restart address.
func NewTraceSource(c *CPU, entry uint32) *TraceSource {
	return &TraceSource{CPU: c, entry: entry}
}

// Next implements trace.Source.
func (ts *TraceSource) Next() (trace.Cycle, bool) {
	if ts.err != nil {
		return trace.Cycle{}, false
	}
	if ts.CPU.Halted {
		ts.CPU.Halted = false
		ts.CPU.PC = ts.entry
		ts.Restarts++
	}
	ev, err := ts.CPU.Step()
	if err != nil {
		ts.err = err
		return trace.Cycle{}, false
	}
	return trace.Cycle{
		IValid: true,
		IAddr:  ev.Fetch,
		DValid: ev.Mem,
		DAddr:  ev.Addr,
		DStore: ev.Store,
	}, true
}

// Err returns the error that terminated the stream, if any.
func (ts *TraceSource) Err() error { return ts.err }

package reliability

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestRelativeMTTFReference(t *testing.T) {
	// At the reference condition the relative MTTF is exactly 1.
	m, err := RelativeMTTF(Params{}, 350, 1e10, 350, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 1e-12 {
		t.Errorf("MTTF at reference = %g, want 1", m)
	}
}

func TestHotterIsShorter(t *testing.T) {
	ref := 318.15
	prev := math.Inf(1)
	for _, temp := range []float64{318.15, 328.15, 338.15, 358.15} {
		m, err := RelativeMTTF(Params{}, temp, 1e10, ref, 1e10)
		if err != nil {
			t.Fatal(err)
		}
		if m >= prev {
			t.Errorf("MTTF did not fall with temperature: %g at %g K", m, temp)
		}
		prev = m
	}
}

func TestTwentyKelvinRule(t *testing.T) {
	// With Ea = 0.9 eV around 320 K, +20 K should cost roughly a factor
	// of ~7-9 in lifetime — the quantitative bite behind the paper's
	// warning about a 20 K bus temperature rise.
	af, err := AccelerationFactor(Params{}, units.AmbientK+20, units.AmbientK)
	if err != nil {
		t.Fatal(err)
	}
	if af < 5 || af > 12 {
		t.Errorf("acceleration for +20K = %.2f, want ~5-12", af)
	}
}

func TestCurrentExponent(t *testing.T) {
	// Doubling current density with n=2 quarters the lifetime.
	m, err := RelativeMTTF(Params{}, 330, 2e10, 330, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.25) > 1e-12 {
		t.Errorf("MTTF at 2x j = %g, want 0.25", m)
	}
	// Custom exponent n=1: halves it.
	m, err = RelativeMTTF(Params{CurrentExponent: 1}, 330, 2e10, 330, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.5) > 1e-12 {
		t.Errorf("n=1 MTTF = %g, want 0.5", m)
	}
}

func TestIdleWireUnbounded(t *testing.T) {
	m, err := RelativeMTTF(Params{}, 330, 0, 330, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m, 1) {
		t.Errorf("idle wire MTTF = %g, want +Inf", m)
	}
}

func TestValidation(t *testing.T) {
	if _, err := RelativeMTTF(Params{}, 0, 1, 300, 1); err == nil {
		t.Error("zero temperature accepted")
	}
	if _, err := RelativeMTTF(Params{}, 300, -1, 300, 1); err == nil {
		t.Error("negative current accepted")
	}
	if _, err := RelativeMTTF(Params{}, 300, 1, 300, 0); err == nil {
		t.Error("zero reference current accepted")
	}
	if _, err := AssessBus(Params{}, []float64{300}, []float64{1, 2}, 300, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AssessBus(Params{}, nil, nil, 300, 1); err == nil {
		t.Error("empty bus accepted")
	}
}

func TestAssessBusFindsHotWire(t *testing.T) {
	temps := []float64{320, 325, 340, 325, 320}
	currents := []float64{1e10, 1e10, 1e10, 1e10, 1e10}
	a, err := AssessBus(Params{}, temps, currents, units.AmbientK, 1e10)
	if err != nil {
		t.Fatal(err)
	}
	if a.WorstWire != 2 {
		t.Errorf("worst wire = %d, want 2 (the hottest)", a.WorstWire)
	}
	if a.WorstRelMTTF >= 1 {
		t.Errorf("hot wire MTTF = %g, want < 1", a.WorstRelMTTF)
	}
	// The uniform-temperature model (avg 326 K < 340 K) must be more
	// optimistic than the per-wire model — the paper's misprediction.
	if a.UniformModelRelMTTF <= a.WorstRelMTTF {
		t.Errorf("uniform model (%g) not more optimistic than per-wire (%g)",
			a.UniformModelRelMTTF, a.WorstRelMTTF)
	}
}

func TestRMSCurrentDensity(t *testing.T) {
	n := itrs.N130
	// A wire dissipating 1 W/m in a 335x670 nm cross-section.
	j, err := RMSCurrentDensity(1, units.RhoCopper, n.WireWidth, n.WireThickness)
	if err != nil {
		t.Fatal(err)
	}
	// Invert: p' = j^2 * rho * w * t.
	back := j * j * units.RhoCopper * n.WireWidth * n.WireThickness
	if math.Abs(back-1) > 1e-9 {
		t.Errorf("round trip power = %g, want 1", back)
	}
	if _, err := RMSCurrentDensity(-1, 1, 1, 1); err == nil {
		t.Error("negative power accepted")
	}
	// Zero power: zero current.
	j0, err := RMSCurrentDensity(0, units.RhoCopper, n.WireWidth, n.WireThickness)
	if err != nil || j0 != 0 {
		t.Errorf("zero power j = %g, %v", j0, err)
	}
}

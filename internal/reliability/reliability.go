// Package reliability quantifies the electromigration-lifetime impact of
// the per-wire temperatures the thermal model produces. The paper motivates
// per-line modeling precisely with this analysis (Secs. 1, 5.3.1, 6):
// worst-case uniform-temperature models mispredict interconnect lifetime,
// and the hottest wires of an actively switching bus are "susceptible to
// higher thermal stresses and electromigration failure".
//
// The model is Black's equation, the standard EM lifetime form the paper's
// references [2, 5] build on:
//
//	MTTF ∝ (1/j^n) * exp(Ea / (k_B * T))
//
// with current-density exponent n = 2 and activation energy Ea = 0.9 eV
// for Cu interconnect. Absolute lifetimes need process constants the paper
// does not give, so the package reports lifetimes relative to a reference
// operating point (typically the ambient-temperature, jmax case).
package reliability

import (
	"fmt"
	"math"
)

// Boltzmann constant in eV/K.
const kBeV = 8.617333262e-5

// Params configure Black's equation.
type Params struct {
	// ActivationEV is the EM activation energy in eV; zero means 0.9
	// (copper).
	ActivationEV float64
	// CurrentExponent is Black's n; zero means 2.
	CurrentExponent float64
}

func (p Params) activation() float64 {
	if p.ActivationEV == 0 { //nanolint:ignore floateq zero means the parameter was left unset
		return 0.9
	}
	return p.ActivationEV
}

func (p Params) exponent() float64 {
	if p.CurrentExponent == 0 { //nanolint:ignore floateq zero means the parameter was left unset
		return 2
	}
	return p.CurrentExponent
}

// RelativeMTTF returns the wire's mean time to failure relative to a
// reference condition: MTTF(T, j) / MTTF(Tref, jref). Values below 1 mean
// the wire ages faster than the reference. Current densities are in A/m^2
// and temperatures in kelvin.
func RelativeMTTF(p Params, tempK, jA float64, refTempK, refJA float64) (float64, error) {
	if tempK <= 0 || refTempK <= 0 {
		return 0, fmt.Errorf("reliability: non-positive temperature (%g, %g)", tempK, refTempK)
	}
	if jA < 0 || refJA <= 0 {
		return 0, fmt.Errorf("reliability: invalid current density (%g, %g)", jA, refJA)
	}
	ea := p.activation()
	n := p.exponent()
	jTerm := 1.0
	if jA > 0 {
		jTerm = math.Pow(refJA/jA, n)
	} else {
		// An idle wire carries no EM stress; lifetime is effectively
		// unbounded relative to any active reference.
		return math.Inf(1), nil
	}
	tTerm := math.Exp(ea / kBeV * (1/tempK - 1/refTempK))
	return jTerm * tTerm, nil
}

// AccelerationFactor returns how much faster a wire ages at tempK than at
// refTempK with the same current density: MTTF(ref)/MTTF(T).
func AccelerationFactor(p Params, tempK, refTempK float64) (float64, error) {
	m, err := RelativeMTTF(p, tempK, 1, refTempK, 1)
	if err != nil {
		return 0, err
	}
	return 1 / m, nil
}

// WireAssessment is one wire's EM summary.
type WireAssessment struct {
	// Wire is the index within the bus.
	Wire int
	// TempK is the wire temperature used.
	TempK float64
	// CurrentA is the RMS current density in A/m^2.
	CurrentA float64
	// RelMTTF is the lifetime relative to the reference condition.
	RelMTTF float64
}

// BusAssessment grades a whole bus.
type BusAssessment struct {
	Wires []WireAssessment
	// WorstWire indexes the shortest-lived wire.
	WorstWire int
	// WorstRelMTTF is its relative lifetime.
	WorstRelMTTF float64
	// UniformModelRelMTTF is the lifetime a uniform-temperature model
	// (every wire at the average temperature) would predict for the same
	// worst wire — the paper's argued source of lifetime misprediction.
	UniformModelRelMTTF float64
}

// AssessBus grades each wire of a bus given per-wire temperatures (K) and
// RMS current densities (A/m^2), against a reference condition (refTempK,
// refJA).
func AssessBus(p Params, temps, currents []float64, refTempK, refJA float64) (*BusAssessment, error) {
	if len(temps) == 0 || len(temps) != len(currents) {
		return nil, fmt.Errorf("reliability: temps/currents length mismatch (%d vs %d)",
			len(temps), len(currents))
	}
	out := &BusAssessment{Wires: make([]WireAssessment, len(temps))}
	avgT := 0.0
	worst := math.Inf(1)
	for i := range temps {
		m, err := RelativeMTTF(p, temps[i], currents[i], refTempK, refJA)
		if err != nil {
			return nil, fmt.Errorf("wire %d: %w", i, err)
		}
		out.Wires[i] = WireAssessment{Wire: i, TempK: temps[i], CurrentA: currents[i], RelMTTF: m}
		avgT += temps[i]
		if m < worst {
			worst = m
			out.WorstWire = i
		}
	}
	out.WorstRelMTTF = worst
	avgT /= float64(len(temps))
	uni, err := RelativeMTTF(p, avgT, currents[out.WorstWire], refTempK, refJA)
	if err != nil {
		return nil, err
	}
	out.UniformModelRelMTTF = uni
	return out, nil
}

// RMSCurrentDensity converts a wire's average switching power (watts over
// a window) into the equivalent RMS current density in its cross-section:
// P = I_rms^2 * R  =>  j_rms = sqrt(P / (rho * length)) / (w*t) ... with
// per-unit-length quantities: j = sqrt(p' / (rho)) / (w*t) where p' is
// W/m and rho the resistivity. Geometry in meters.
func RMSCurrentDensity(powerPerMeter, rho, width, thickness float64) (float64, error) {
	if powerPerMeter < 0 || rho <= 0 || width <= 0 || thickness <= 0 {
		return 0, fmt.Errorf("reliability: invalid inputs p'=%g rho=%g w=%g t=%g",
			powerPerMeter, rho, width, thickness)
	}
	// p' = j^2 * (w*t) * rho  (I = j*w*t, R' = rho/(w*t), p' = I^2 R').
	return math.Sqrt(powerPerMeter / (rho * width * thickness)), nil
}

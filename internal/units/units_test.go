package units

import (
	"math"
	"strings"
	"testing"
)

func TestTemperatureConversions(t *testing.T) {
	if CelsiusToKelvin(45) != 318.15 {
		t.Errorf("45C = %g K", CelsiusToKelvin(45))
	}
	if KelvinToCelsius(318.15) != 45 {
		t.Errorf("318.15K = %g C", KelvinToCelsius(318.15))
	}
	if AmbientK != CelsiusToKelvin(45) {
		t.Error("ambient constant inconsistent with 45 C")
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range []float64{-273.15, 0, 25, 45, 125} {
		if got := KelvinToCelsius(CelsiusToKelvin(c)); math.Abs(got-c) > 1e-12 {
			t.Errorf("round trip %g -> %g", c, got)
		}
	}
}

func TestConstantsPlausible(t *testing.T) {
	// Copper volumetric heat capacity ~3.45 MJ/(m^3 K).
	if CvCopper < 3.3e6 || CvCopper > 3.6e6 {
		t.Errorf("CvCopper = %g", CvCopper)
	}
	if Eps0 < 8.8e-12 || Eps0 > 8.9e-12 {
		t.Errorf("Eps0 = %g", Eps0)
	}
	if RhoCopper < 1.6e-8 || RhoCopper > 3e-8 {
		t.Errorf("RhoCopper = %g", RhoCopper)
	}
}

func TestFormatEngineering(t *testing.T) {
	cases := map[string]string{
		FormatEnergy(1.5e-12):      "1.5 pJ",
		FormatEnergy(0):            "0 J",
		FormatPower(2.5e-3):        "2.5 mW",
		FormatCapacitance(44e-12):  "44 pF",
		FormatCapacitance(1.7e-15): "1.7 fF",
		FormatEnergy(3.0):          "3 J",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatted %q, want %q", got, want)
		}
	}
	// Negative values keep their sign.
	if s := FormatEnergy(-2e-9); !strings.HasPrefix(s, "-2") || !strings.HasSuffix(s, "nJ") {
		t.Errorf("negative format = %q", s)
	}
	// Very small values fall through to the raw format.
	if s := FormatEnergy(1e-21); !strings.Contains(s, "1e-21") {
		t.Errorf("tiny format = %q", s)
	}
}

// Package units collects the physical constants and unit helpers used by
// the bus energy and thermal models. All model code works in SI units:
// meters, seconds, volts, joules, watts, kelvin, farads, ohms.
package units

import "fmt"

// Physical constants.
const (
	// Eps0 is the permittivity of free space in F/m.
	Eps0 = 8.8541878128e-12

	// RhoCopper is the effective resistivity of copper interconnect in
	// ohm-meters. Nanoscale copper lines have higher resistivity than
	// bulk (1.68e-8) due to surface and grain-boundary scattering; 2.2e-8
	// is the value commonly used for ITRS-2001-era global wires and is
	// consistent with Table 1 of the paper (rwire = rho*l/(w*t)).
	RhoCopper = 2.2e-8

	// CvCopper is the volumetric heat capacity of copper in J/(m^3*K):
	// density 8960 kg/m^3 times specific heat 385 J/(kg*K).
	CvCopper = 8960.0 * 385.0

	// KCopper is the thermal conductivity of copper in W/(m*K).
	KCopper = 400.0

	// AmbientK is the paper's ambient (substrate) temperature: 45 C.
	AmbientK = 318.15
)

// Scale prefixes for readability at call sites.
const (
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
	Pico  = 1e-12
	Femto = 1e-15
)

// CelsiusToKelvin converts a Celsius temperature to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// KelvinToCelsius converts a kelvin temperature to Celsius.
func KelvinToCelsius(k float64) float64 { return k - 273.15 }

// FormatEnergy renders an energy in J with an engineering prefix.
func FormatEnergy(j float64) string { return formatEng(j, "J") }

// FormatPower renders a power in W with an engineering prefix.
func FormatPower(w float64) string { return formatEng(w, "W") }

// FormatCapacitance renders a capacitance in F with an engineering prefix.
func FormatCapacitance(f float64) string { return formatEng(f, "F") }

func formatEng(v float64, unit string) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	type pref struct {
		scale float64
		name  string
	}
	prefixes := []pref{
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
		{1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
	}
	if abs == 0 {
		return "0 " + unit
	}
	for _, p := range prefixes {
		if abs >= p.scale {
			return fmt.Sprintf("%.4g %s%s", v/p.scale, p.name, unit)
		}
	}
	return fmt.Sprintf("%.4g %s", v, unit)
}

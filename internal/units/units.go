// Package units collects the physical constants and unit helpers used by
// the bus energy and thermal models. All model code works in SI units:
// meters, seconds, volts, joules, watts, kelvin, farads, ohms.
package units

import "fmt"

// Physical constants.
const (
	// Eps0 is the permittivity of free space in F/m.
	Eps0 = 8.8541878128e-12

	// RhoCopper is the effective resistivity of copper interconnect in
	// ohm-meters. Nanoscale copper lines have higher resistivity than
	// bulk (1.68e-8) due to surface and grain-boundary scattering; 2.2e-8
	// is the value commonly used for ITRS-2001-era global wires and is
	// consistent with Table 1 of the paper (rwire = rho*l/(w*t)).
	RhoCopper = 2.2e-8

	// CvCopper is the volumetric heat capacity of copper in J/(m^3*K):
	// density 8960 kg/m^3 times specific heat 385 J/(kg*K).
	CvCopper = 8960.0 * 385.0

	// KCopper is the thermal conductivity of copper in W/(m*K).
	KCopper = 400.0

	// AmbientK is the paper's ambient (substrate) temperature: 45 C.
	AmbientK = 318.15

	// ZeroCelsiusK is 0 C expressed in kelvin, the offset used by the
	// Celsius conversions and by AmbientK (= 45 C) above.
	ZeroCelsiusK = 273.15

	// CrepPerCint is the paper's rounded repeater-capacitance ratio: after
	// Eqs. 1-2 delay-optimal insertion gives Crep = sqrt(0.4/0.7)*Cint,
	// which the paper rounds to "effectively, Crep = 0.75 x Cint"
	// (Sec. 3.1.1). Exact sizing uses repeater.CrepFactor; this constant
	// exists so the rounded paper value is never re-typed as a literal.
	CrepPerCint = 0.75

	// ElmoreDistributed is the distributed-RC coefficient of the Elmore
	// 50% delay estimate used by the paper's repeater Eqs. 1-2
	// (0.4*Rint*Cint term, after Bakoglu).
	ElmoreDistributed = 0.4

	// ElmoreLumped is the lumped (step-response) RC coefficient of the
	// same delay estimate (0.7*R*C terms, ln 2 rounded up).
	ElmoreLumped = 0.7
)

// Scale prefixes for readability at call sites.
const (
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
	Pico  = 1e-12
	Femto = 1e-15
)

// CelsiusToKelvin converts a Celsius temperature to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + ZeroCelsiusK }

// KelvinToCelsius converts a kelvin temperature to Celsius.
func KelvinToCelsius(k float64) float64 { return k - ZeroCelsiusK }

// FormatEnergy renders an energy in J with an engineering prefix.
func FormatEnergy(j float64) string { return formatEng(j, "J") }

// FormatPower renders a power in W with an engineering prefix.
func FormatPower(w float64) string { return formatEng(w, "W") }

// FormatCapacitance renders a capacitance in F with an engineering prefix.
func FormatCapacitance(f float64) string { return formatEng(f, "F") }

func formatEng(v float64, unit string) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	type pref struct {
		scale float64
		name  string
	}
	prefixes := []pref{
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
		{1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
	}
	if abs == 0 { //nanolint:ignore floateq only an exactly zero value prints without a prefix
		return "0 " + unit
	}
	for _, p := range prefixes {
		if abs >= p.scale {
			return fmt.Sprintf("%.4g %s%s", v/p.scale, p.name, unit)
		}
	}
	return fmt.Sprintf("%.4g %s", v, unit)
}

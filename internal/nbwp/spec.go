// Package nbwp defines NBWP, the Nanobus Binary Wire Protocol: a
// length-prefixed little-endian framing over persistent TCP that replaces
// per-batch HTTP on the step hot path. One connection multiplexes up to
// 255 sessions (one per slot) and the client pipelines STEP frames
// without waiting for acknowledgements; the server answers every
// client frame with exactly one ACK or ERROR frame *in request order*,
// so correlation needs no request ids — a FIFO of in-flight requests on
// the client matches acks one-for-one.
//
// Every frame starts with a fixed 16-byte header:
//
//	offset  size  field
//	0       4     magic "NBWP"
//	4       1     protocol version (1)
//	5       1     frame type (Type*)
//	6       1     flags (Flag*)
//	7       1     session slot (1-255; 0 = connection scope)
//	8       4     seq (uint32 LE; write-ahead number under FlagSeq,
//	              echoed on the matching ACK/ERROR)
//	12      3     payload length (uint24 LE, at most MaxPayload)
//	15      1     header CRC: low byte of CRC-32 (IEEE) over bytes 0-14
//
// The payload follows immediately; its layout depends on the type (see
// the Type constants). Multi-byte payload integers are little-endian,
// floats are IEEE-754 bit patterns, and structured control payloads
// (session configs, results) are the same JSON documents as the v1 HTTP
// surface, so figures observed over NBWP are bit-identical to HTTP.
//
// Durability composes with the PR 5 machinery unchanged: a STEP frame
// carrying FlagSeq is the binary twin of POST .../step?seq=N — applied
// exactly once, acknowledged idempotently (FlagDuplicate) on replay — so
// a client that reconnects after a crash replays from the last
// acknowledged sequence number and never double-counts energy.
package nbwp

import "errors"

// Magic opens every frame header.
const Magic = "NBWP"

// Version is the protocol version this package speaks. The HELLO
// exchange pins it: a server that cannot speak the client's version
// answers ERROR and closes.
const Version = 1

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 16

// MaxPayload is the largest payload one frame can carry (the length
// field is 24 bits). Readers typically enforce a much smaller
// application bound; see ReadFrame.
const MaxPayload = 1<<24 - 1

// Type identifies what a frame means and how its payload is laid out.
type Type uint8

// Frame types. Directions are client→server unless noted.
const (
	// TypeHello opens a connection (empty payload; header version is the
	// negotiation). The server acks with an empty payload.
	TypeHello Type = 0x01
	// TypeOpen binds a session to the header slot. Payload: a
	// CreateSessionRequest JSON document, or under FlagAttach the id of
	// an existing session. Ack payload: SessionInfo JSON.
	TypeOpen Type = 0x02
	// TypeStep feeds data words to the slot's session. Payload:
	// little-endian uint32 words (the HTTP binary body format). Under
	// FlagSeq the header seq is the write-ahead idempotency number. Ack
	// payload: StepAck (binary, fixed length).
	TypeStep Type = 0x03
	// TypeStepIdle advances the slot's session idle cycles. Payload:
	// uint64 LE cycle count. Ack payload: StepAck.
	TypeStepIdle Type = 0x04
	// TypeAck (server→client) acknowledges the oldest unacknowledged
	// client frame, echoing its slot and seq. Payload depends on the
	// acknowledged type.
	TypeAck Type = 0x05
	// TypeSample (server→client) streams one closed sampling interval
	// for a slot opened with FlagStream. Payload: Sample (binary).
	TypeSample Type = 0x06
	// TypeCheckpoint snapshots the slot's session into the server store
	// (ack payload: CheckpointInfo JSON), or under FlagDownload returns
	// the raw envelope inline (ack payload: envelope bytes).
	TypeCheckpoint Type = 0x07
	// TypeRestore rewinds or resurrects a session and binds it to the
	// header slot. Payload: see AppendRestore — a session id (empty to
	// target the slot's bound session) plus an optional checkpoint
	// envelope (absent to load from the server store). Ack payload:
	// RestoreResponse JSON.
	TypeRestore Type = 0x08
	// TypeError (server→client) answers the oldest unacknowledged frame
	// in place of an ACK. Payload: see AppendError/ParseError.
	TypeError Type = 0x09
	// TypeGoodbye closes the header slot's session (ack payload:
	// CloseResponse JSON), or with slot 0 ends the connection (empty
	// ack, then the server closes).
	TypeGoodbye Type = 0x0A
	// TypeDrain (server→client, unsolicited, slot 0, empty payload)
	// announces a draining server: in-flight frames will still be
	// acknowledged, new OPENs will be refused; finish up and say
	// goodbye.
	TypeDrain Type = 0x0B
	// TypeResult fetches the slot's session outcome, closing the partial
	// sampling interval first unless FlagNoFinish. Ack payload: Result
	// JSON (the exact HTTP v1 document, so figures are bit-identical).
	TypeResult Type = 0x0C
)

// Frame flag bits.
const (
	// FlagSeq marks a STEP/STEP_IDLE whose header seq is a write-ahead
	// idempotency number (the ?seq= machinery).
	FlagSeq uint8 = 1 << 0
	// FlagAttach marks an OPEN whose payload is an existing session id.
	FlagAttach uint8 = 1 << 1
	// FlagStream marks an OPEN requesting SAMPLE frames for the slot.
	FlagStream uint8 = 1 << 2
	// FlagDuplicate marks a STEP ack for a batch that was already
	// applied: nothing re-stepped, the ack is idempotent.
	FlagDuplicate uint8 = 1 << 3
	// FlagNoFinish marks a RESULT that must not close the partial
	// sampling interval (the HTTP ?finish=0).
	FlagNoFinish uint8 = 1 << 4
	// FlagDownload marks a CHECKPOINT whose ack payload is the raw
	// envelope instead of CheckpointInfo (the HTTP ?download=1).
	FlagDownload uint8 = 1 << 5
	// FlagMultiSample marks a SAMPLE from a multi-bus session: the
	// payload is a uint32 LE bus index followed by the standard Sample
	// layout (see AppendBusSample/ParseBusSample). Scalar sessions never
	// set it, so existing clients keep decoding plain Sample payloads.
	FlagMultiSample uint8 = 1 << 6
	// FlagAdaptiveSample marks a SAMPLE from an adaptive session: the
	// standard Sample layout followed by a switched byte, the active
	// encoder's name length, and the name bytes (see
	// AppendAdaptiveSample/ParseAdaptiveSample). Static sessions never
	// set it.
	FlagAdaptiveSample uint8 = 1 << 7
)

// Typed frame-codec errors. Readers must get exactly these (wrapped) for
// damaged input — never a panic, never a raw slice fault.
var (
	// ErrBadMagic marks a header that does not start with "NBWP".
	ErrBadMagic = errors.New("nbwp: bad frame magic")
	// ErrBadVersion marks a header with an unsupported protocol version.
	ErrBadVersion = errors.New("nbwp: unsupported protocol version")
	// ErrBadHeaderCRC marks a header whose CRC byte does not match.
	ErrBadHeaderCRC = errors.New("nbwp: header CRC mismatch")
	// ErrFrameTooLarge marks a frame whose payload length exceeds the
	// reader's bound.
	ErrFrameTooLarge = errors.New("nbwp: frame exceeds payload bound")
	// ErrTruncated marks a frame cut short of its declared length.
	ErrTruncated = errors.New("nbwp: truncated frame")
	// ErrBadPayload marks a payload whose layout does not match its type.
	ErrBadPayload = errors.New("nbwp: malformed payload")
)

// Header is the decoded fixed frame header.
type Header struct {
	// Type identifies the frame.
	Type Type
	// Flags carries the Flag* bits.
	Flags uint8
	// Slot is the session slot (1-255), or 0 for connection scope.
	Slot uint8
	// Seq is the frame sequence field: the write-ahead number under
	// FlagSeq, echoed back on the matching ACK/ERROR.
	Seq uint32
	// Len is the payload length in bytes (at most MaxPayload).
	Len uint32
}

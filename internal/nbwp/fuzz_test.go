package nbwp

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame is the codec's robustness gate: arbitrary bytes —
// truncated, oversized, bad-CRC, bad-magic, lying length fields — must
// never panic the reader and must always surface one of the package's
// typed errors (or a plain io error for a stream cut between frames).
// Valid frames must round-trip: re-encoding the parsed frame reproduces
// the consumed bytes exactly.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: every frame type round-tripped, plus each corruption
	// class the typed errors enumerate.
	seed := func(h Header, payload []byte) []byte {
		var buf bytes.Buffer
		fw := FrameWriter{W: &buf}
		if err := fw.WriteFrame(h, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(Header{Type: TypeHello}, nil))
	f.Add(seed(Header{Type: TypeOpen, Slot: 1}, []byte(`{"node":"90nm"}`)))
	f.Add(seed(Header{Type: TypeStep, Flags: FlagSeq, Slot: 1, Seq: 7}, []byte{1, 0, 0, 0, 2, 0, 0, 0}))
	f.Add(seed(Header{Type: TypeStepIdle, Slot: 1}, []byte{64, 0, 0, 0, 0, 0, 0, 0}))
	f.Add(seed(Header{Type: TypeAck, Slot: 1, Seq: 7}, make([]byte, StepAckLen)))
	f.Add(seed(Header{Type: TypeSample, Slot: 1}, AppendSample(nil, Sample{EndCycle: 100, MaxWire: 3})))
	f.Add(seed(Header{Type: TypeError, Slot: 1}, AppendError(nil, WireError{Status: 409, Code: "seq_gap", Msg: "gap"})))
	f.Add(seed(Header{Type: TypeError, Slot: 2}, AppendError(nil, WireError{Status: 421, Code: "not_owner", Owner: `{"node":"n2"}`, Msg: "moved"})))
	f.Add(seed(Header{Type: TypeGoodbye}, nil))
	f.Add(seed(Header{Type: TypeDrain}, nil))
	cut := seed(Header{Type: TypeStep, Slot: 2}, bytes.Repeat([]byte{7}, 64))
	f.Add(cut[:len(cut)-9])  // truncated payload
	f.Add(cut[:HeaderLen-3]) // truncated header
	bad := bytes.Clone(cut)
	bad[0] = 'X'
	f.Add(bad) // bad magic
	bad2 := bytes.Clone(cut)
	bad2[15] ^= 0x5A
	f.Add(bad2) // bad CRC
	big := bytes.Clone(cut)
	big[12], big[13], big[14] = 0xFF, 0xFF, 0xFF // declare 16 MiB
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var h Header
		fr := FrameReader{R: rd, Max: 1 << 20}
		for {
			buf, err := fr.ReadFrame(&h)
			if err != nil {
				if errors.Is(err, io.EOF) ||
					errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) ||
					errors.Is(err, ErrBadHeaderCRC) || errors.Is(err, ErrFrameTooLarge) ||
					errors.Is(err, ErrTruncated) {
					return
				}
				t.Fatalf("untyped error %v (%T)", err, err)
			}
			// A frame that parsed must re-encode to the exact bytes consumed.
			var out bytes.Buffer
			ofw := FrameWriter{W: &out}
			if werr := ofw.WriteFrame(h, buf); werr != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", werr)
			}
			consumed := len(data) - rd.Len()
			start := consumed - out.Len()
			if start < 0 || !bytes.Equal(out.Bytes(), data[start:consumed]) {
				t.Fatalf("accepted frame does not round-trip (%d bytes at %d)", out.Len(), start)
			}
			// Typed payload parsers must be panic-free on whatever the
			// framing layer accepted.
			switch h.Type {
			case TypeAck:
				var ack StepAck
				_ = ParseStepAck(buf, &ack)
			case TypeSample:
				_, _ = ParseSample(buf, nil)
			case TypeError:
				_, _ = ParseError(buf)
			case TypeStepIdle:
				_, _ = ParseIdle(buf)
			case TypeRestore:
				_, _, _ = ParseRestore(buf)
			}
		}
	})
}

package nbwp

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the host's native byte order matches
// the wire format (little-endian), decided once at init.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Words views or decodes the little-endian uint32 words of a STEP
// payload (len(src) must be a multiple of 4; trailing bytes are the
// caller's validation error). On little-endian hosts with an aligned
// buffer the returned slice aliases src — a zero-copy reinterpretation,
// the same discipline as the HTTP binary ingest path; callers must be
// done with the words before reusing src. Elsewhere it decodes into dst
// and returns dst[:len(src)/4].
//
//nanolint:hotpath zero-copy STEP decode; the view must not allocate
func Words(dst []uint32, src []byte) []uint32 {
	n := len(src) / 4
	if n == 0 {
		return dst[:0]
	}
	p := unsafe.SliceData(src)
	if hostLittleEndian && uintptr(unsafe.Pointer(p))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(p)), n)
	}
	for i := 0; i < n; i++ {
		dst[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return dst[:n]
}

// AppendWords appends the wire encoding of words (little-endian uint32)
// to dst — the client-side inverse of Words.
//
//nanolint:hotpath one encode per STEP frame; appends into the caller's reused buffer
func AppendWords(dst []byte, words []uint32) []byte {
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	return dst
}

// floatBits and floatFrom convert float64 figures to and from their wire
// form (IEEE-754 bit patterns), keeping every streamed value
// bit-identical across the connection.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

package nbwp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"
)

func mustFrame(t *testing.T, h Header, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := FrameWriter{W: &buf}
	if err := fw.WriteFrame(h, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		h       Header
		payload []byte
	}{
		{"empty", Header{Type: TypeHello}, nil},
		{"step", Header{Type: TypeStep, Flags: FlagSeq, Slot: 7, Seq: 42}, []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{"max slot", Header{Type: TypeGoodbye, Slot: 255, Seq: math.MaxUint32}, []byte("bye")},
		{"big", Header{Type: TypeRestore, Slot: 1}, bytes.Repeat([]byte{0xAB}, 100_000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := mustFrame(t, tc.h, tc.payload)
			var got Header
			fr := FrameReader{R: bytes.NewReader(raw), Max: MaxPayload}
			payload, err := fr.ReadFrame(&got)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.h
			want.Len = uint32(len(tc.payload))
			if got != want {
				t.Fatalf("header = %+v, want %+v", got, want)
			}
			if !bytes.Equal(payload, tc.payload) {
				t.Fatalf("payload mismatch: %d vs %d bytes", len(payload), len(tc.payload))
			}
		})
	}
}

func TestReadFrameTypedErrors(t *testing.T) {
	good := mustFrame(t, Header{Type: TypeStep, Slot: 1, Seq: 9}, []byte("abcdefgh"))

	corrupt := func(mutate func(b []byte)) []byte {
		b := bytes.Clone(good)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"cut header", good[:7], ErrTruncated},
		{"cut payload", good[:HeaderLen+3], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", corrupt(func(b []byte) {
			b[4] = 99
			b[15] = byte(headerCRC(b))
		}), ErrBadVersion},
		{"bad crc", corrupt(func(b []byte) { b[15] ^= 0xFF }), ErrBadHeaderCRC},
		{"oversized", corrupt(func(b []byte) {
			b[12], b[13], b[14] = 0xFF, 0xFF, 0x00 // declare 64 KiB
			b[15] = byte(headerCRC(b))
		}), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Header
			fr := FrameReader{R: bytes.NewReader(tc.raw), Max: 1024}
			_, err := fr.ReadFrame(&h)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestPutHeaderRejectsOversizedPayload(t *testing.T) {
	var buf [HeaderLen]byte
	if err := PutHeader(&buf, Header{Type: TypeStep, Len: MaxPayload + 1}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	var w strings.Builder
	fw := FrameWriter{W: &w}
	if err := fw.WriteFrame(Header{Type: TypeStep}, make([]byte, MaxPayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame err = %v, want ErrFrameTooLarge", err)
	}
}

func TestStepAckRoundTrip(t *testing.T) {
	a := StepAck{Words: 16384, Idle: 77, Cycles: 1 << 40, Samples: 12}
	var buf [StepAckLen]byte
	PutStepAck(&buf, a)
	var got StepAck
	if err := ParseStepAck(buf[:], &got); err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip = %+v, want %+v", got, a)
	}
	if err := ParseStepAck(buf[:StepAckLen-1], &got); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short ack err = %v, want ErrBadPayload", err)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	cases := []Sample{
		{},
		{EndCycle: 100000, EnergyJ: 1.2345e-9, SelfJ: 9.87e-10, CoupAdjJ: 2e-10,
			CoupNonAdjJ: 4.75e-11, AvgTempK: 312.0625, MaxTempK: 319.5, MaxWire: 17},
		{EndCycle: math.MaxUint64, EnergyJ: -1.5e-7, MaxTempK: math.Inf(1), MaxWire: -1,
			WireTempsK: []float64{300, 5e-324, math.MaxFloat64, -0.25}},
	}
	for i, s := range cases {
		raw := AppendSample(nil, s)
		got, err := ParseSample(raw, nil)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if got.EndCycle != s.EndCycle || got.MaxWire != s.MaxWire ||
			math.Float64bits(got.EnergyJ) != math.Float64bits(s.EnergyJ) ||
			math.Float64bits(got.MaxTempK) != math.Float64bits(s.MaxTempK) {
			t.Fatalf("sample %d round trip = %+v, want %+v", i, got, s)
		}
		if len(got.WireTempsK) != len(s.WireTempsK) {
			t.Fatalf("sample %d temps = %d, want %d", i, len(got.WireTempsK), len(s.WireTempsK))
		}
		for j := range s.WireTempsK {
			if math.Float64bits(got.WireTempsK[j]) != math.Float64bits(s.WireTempsK[j]) {
				t.Fatalf("sample %d temp %d differs", i, j)
			}
		}
	}

	// Structural damage is a typed error, not a panic or a giant alloc.
	raw := AppendSample(nil, cases[1])
	if _, err := ParseSample(raw[:sampleFixedLen-1], nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short sample err = %v", err)
	}
	lying := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(lying[60:64], 1<<30) // declare 2^30 temps
	if _, err := ParseSample(lying, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("lying temp count err = %v", err)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := WireError{Status: 409, Code: "seq_gap", Msg: "seq 9 skips ahead; expected 4"}
	raw := AppendError(nil, in)
	got, err := ParseError(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
	if _, err := ParseError(raw[:2]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short error err = %v", err)
	}
	lying := bytes.Clone(raw)
	binary.LittleEndian.PutUint16(lying[2:4], math.MaxUint16)
	if _, err := ParseError(lying); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("lying code length err = %v", err)
	}
}

func TestErrorRoundTripOwner(t *testing.T) {
	in := WireError{
		Status: 421,
		Code:   "not_owner",
		Owner:  `{"node":"n2","url":"http://10.0.0.2:8080","nbwp":"10.0.0.2:9080"}`,
		Msg:    "session belongs to n2",
	}
	raw := AppendError(nil, in)
	got, err := ParseError(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
	// An owner length that points past the frame must be rejected, not
	// read out of bounds.
	ownerLenOff := errorFixedLen + len(in.Code)
	lying := bytes.Clone(raw)
	binary.LittleEndian.PutUint16(lying[ownerLenOff:ownerLenOff+2], math.MaxUint16)
	if _, err := ParseError(lying); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("lying owner length err = %v", err)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	env := bytes.Repeat([]byte{0xCD}, 100)
	raw := AppendRestore(nil, "deadbeefcafef00d", env)
	id, gotEnv, err := ParseRestore(raw)
	if err != nil {
		t.Fatal(err)
	}
	if id != "deadbeefcafef00d" || !bytes.Equal(gotEnv, env) {
		t.Fatalf("round trip = %q, %d envelope bytes", id, len(gotEnv))
	}
	if _, _, err := ParseRestore(raw[:1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short restore err = %v", err)
	}
	lying := bytes.Clone(raw)
	binary.LittleEndian.PutUint16(lying[0:2], math.MaxUint16)
	if _, _, err := ParseRestore(lying); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("lying id length err = %v", err)
	}
}

func TestIdleRoundTrip(t *testing.T) {
	var buf [8]byte
	PutIdle(&buf, 123456789)
	n, err := ParseIdle(buf[:])
	if err != nil || n != 123456789 {
		t.Fatalf("ParseIdle = %d, %v", n, err)
	}
	if _, err := ParseIdle(buf[:5]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short idle err = %v", err)
	}
}

func TestWords(t *testing.T) {
	want := make([]uint32, 1027)
	raw := make([]byte, 4*len(want))
	x := uint32(5)
	for i := range want {
		x = x*1664525 + 1013904223
		want[i] = x
		binary.LittleEndian.PutUint32(raw[4*i:], x)
	}
	check := func(name string, got []uint32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d words, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: word %d = %#x, want %#x", name, i, got[i], want[i])
			}
		}
	}
	dst := make([]uint32, len(want))
	check("aligned", Words(dst, raw))
	shifted := make([]byte, len(raw)+1)
	copy(shifted[1:], raw)
	check("unaligned", Words(dst, shifted[1:]))
	if got := Words(dst, nil); len(got) != 0 {
		t.Fatalf("empty source decoded %d words", len(got))
	}
	if got := AppendWords(nil, want); !bytes.Equal(got, raw) {
		t.Fatal("AppendWords does not invert Words")
	}
}

// TestFrameCodecAllocs pins the STEP hot path at zero allocations per
// frame: once the payload buffer has grown to the connection's
// high-water mark, reading and writing frames costs nothing on the heap.
func TestFrameCodecAllocs(t *testing.T) {
	payload := make([]byte, 16384*4)
	raw := mustFrame(t, Header{Type: TypeStep, Flags: FlagSeq, Slot: 3, Seq: 1}, payload)
	rd := bytes.NewReader(raw)
	var h Header
	fr := &FrameReader{R: rd, Max: MaxPayload}
	if got := testing.AllocsPerRun(100, func() {
		rd.Reset(raw)
		if _, err := fr.ReadFrame(&h); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("ReadFrame allocates %v per frame, want 0", got)
	}

	fw := &FrameWriter{W: &countingDiscard{}}
	if got := testing.AllocsPerRun(100, func() {
		if err := fw.WriteFrame(h, payload); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("WriteFrame allocates %v per frame, want 0", got)
	}

	var ackBuf [StepAckLen]byte
	ack := StepAck{Words: 16384, Cycles: 1 << 20}
	var back StepAck
	if got := testing.AllocsPerRun(100, func() {
		PutStepAck(&ackBuf, ack)
		if err := ParseStepAck(ackBuf[:], &back); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("step ack codec allocates %v per ack, want 0", got)
	}
}

// countingDiscard is io.Discard without the interface-dispatch
// ReadFrom fast path, so WriteFrame's own writes are what is measured.
type countingDiscard struct{ n int }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func headerCRC(b []byte) uint32 {
	return crc32.ChecksumIEEE(b[:15])
}

package nbwp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// PutHeader encodes h into buf. Len must be at most MaxPayload.
func PutHeader(buf *[HeaderLen]byte, h Header) error {
	if h.Len > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, h.Len)
	}
	copy(buf[:4], Magic)
	buf[4] = Version
	buf[5] = byte(h.Type)
	buf[6] = h.Flags
	buf[7] = h.Slot
	binary.LittleEndian.PutUint32(buf[8:12], h.Seq)
	buf[12] = byte(h.Len)
	buf[13] = byte(h.Len >> 8)
	buf[14] = byte(h.Len >> 16)
	buf[15] = byte(crc32.ChecksumIEEE(buf[:15]))
	return nil
}

// ParseHeader decodes and validates a fixed frame header into h.
//
//nanolint:hotpath one ParseHeader per frame on the STEP path; must not allocate
func ParseHeader(buf *[HeaderLen]byte, h *Header) error {
	if string(buf[:4]) != Magic {
		return ErrBadMagic
	}
	if byte(crc32.ChecksumIEEE(buf[:15])) != buf[15] {
		return ErrBadHeaderCRC
	}
	if buf[4] != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrBadVersion, buf[4], Version)
	}
	h.Type = Type(buf[5])
	h.Flags = buf[6]
	h.Slot = buf[7]
	h.Seq = binary.LittleEndian.Uint32(buf[8:12])
	h.Len = uint32(buf[12]) | uint32(buf[13])<<8 | uint32(buf[14])<<16
	return nil
}

// FrameReader reads frames from an underlying stream, owning the header
// scratch and a payload buffer that grows to the connection's high-water
// frame size — steady-state reads allocate nothing. Create one per
// connection; it is not safe for concurrent use.
type FrameReader struct {
	// R is the underlying stream (wrap it in a bufio.Reader).
	R io.Reader
	// Max bounds the declared payload length before any payload byte is
	// read, so a hostile peer cannot force a MaxPayload allocation;
	// frames beyond it get ErrFrameTooLarge. Negative means MaxPayload.
	Max int

	hdr [HeaderLen]byte
	buf []byte
}

// ReadFrame reads one frame: the header into h, the payload into the
// reader's reused buffer. The returned slice is valid until the next
// call. Damaged input yields the package's typed errors — never a panic;
// a clean EOF before any header byte is io.EOF.
//
//nanolint:hotpath one ReadFrame per STEP frame; zero allocs once buf has grown
func (fr *FrameReader) ReadFrame(h *Header) ([]byte, error) {
	if _, err := io.ReadFull(fr.R, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: header", ErrTruncated)
		}
		return nil, err
	}
	var parsed Header
	if err := ParseHeader(&fr.hdr, &parsed); err != nil {
		return nil, err
	}
	limit := fr.Max
	if limit < 0 {
		limit = MaxPayload
	}
	if parsed.Len > uint32(limit) {
		return nil, fmt.Errorf("%w: %d bytes (bound %d)", ErrFrameTooLarge, parsed.Len, limit)
	}
	n := int(parsed.Len)
	if cap(fr.buf) < n {
		//nanolint:ignore hotalloc one-time growth to the connection's high-water payload size; steady state reuses buf
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if n > 0 {
		if _, err := io.ReadFull(fr.R, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: payload (want %d bytes)", ErrTruncated, n)
			}
			return nil, err
		}
	}
	*h = parsed
	return buf, nil
}

// FrameWriter writes frames to an underlying stream, owning the header
// scratch so the hot path allocates nothing. Create one per connection;
// callers serialize access (it is not safe for concurrent use).
type FrameWriter struct {
	// W is the underlying stream (wrap it in a bufio.Writer and flush
	// once per pipelined burst).
	W io.Writer

	hdr [HeaderLen]byte
}

// WriteFrame writes one frame — header then payload. h.Len is derived
// from the payload; the field's value on entry is ignored.
//
//nanolint:hotpath one WriteFrame per STEP/ACK; must not allocate
func (fw *FrameWriter) WriteFrame(h Header, payload []byte) error {
	h.Len = uint32(len(payload))
	if err := PutHeader(&fw.hdr, h); err != nil {
		return err
	}
	if _, err := fw.W.Write(fw.hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := fw.W.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// --- STEP acknowledgement payload -------------------------------------------

// StepAckLen is the fixed ACK payload length for STEP/STEP_IDLE frames.
const StepAckLen = 32

// StepAck is the binary ACK payload of a STEP or STEP_IDLE frame: what
// the batch consumed and where the session's cumulative counters stand.
// Seq and Duplicate ride in the ack frame's header (Seq echo, FlagDuplicate).
type StepAck struct {
	// Words and Idle are the cycles consumed by the acknowledged frame.
	Words uint64
	Idle  uint64
	// Cycles is the session's cumulative cycle count afterwards.
	Cycles uint64
	// Samples is the number of sampling intervals the frame closed.
	Samples uint64
}

// PutStepAck encodes a into buf.
//
//nanolint:hotpath one encode per STEP ack; must not allocate
func PutStepAck(buf *[StepAckLen]byte, a StepAck) {
	binary.LittleEndian.PutUint64(buf[0:8], a.Words)
	binary.LittleEndian.PutUint64(buf[8:16], a.Idle)
	binary.LittleEndian.PutUint64(buf[16:24], a.Cycles)
	binary.LittleEndian.PutUint64(buf[24:32], a.Samples)
}

// ParseStepAck decodes a STEP ack payload into a.
//
//nanolint:hotpath one decode per STEP ack; must not allocate
func ParseStepAck(p []byte, a *StepAck) error {
	if len(p) != StepAckLen {
		return fmt.Errorf("%w: step ack is %d bytes (want %d)", ErrBadPayload, len(p), StepAckLen)
	}
	a.Words = binary.LittleEndian.Uint64(p[0:8])
	a.Idle = binary.LittleEndian.Uint64(p[8:16])
	a.Cycles = binary.LittleEndian.Uint64(p[16:24])
	a.Samples = binary.LittleEndian.Uint64(p[24:32])
	return nil
}

// --- SAMPLE payload ----------------------------------------------------------

// sampleFixedLen is the SAMPLE payload length before optional wire
// temperatures: end cycle, six float64 figures, max wire, temp count.
const sampleFixedLen = 8 + 6*8 + 4 + 4

// Sample is the binary wire form of one closed sampling interval. The
// float64 fields travel as IEEE-754 bit patterns, so a streamed sample
// is bit-identical to the library's.
type Sample struct {
	EndCycle    uint64
	EnergyJ     float64
	SelfJ       float64
	CoupAdjJ    float64
	CoupNonAdjJ float64
	AvgTempK    float64
	MaxTempK    float64
	MaxWire     int32
	// WireTempsK is present only for sessions created with
	// track_wire_temps.
	WireTempsK []float64
}

// AppendSample appends the wire encoding of s to dst.
//
//nanolint:hotpath one encode per streamed sample; appends into the caller's reused buffer
func AppendSample(dst []byte, s Sample) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.EndCycle)
	for _, f := range [...]float64{s.EnergyJ, s.SelfJ, s.CoupAdjJ, s.CoupNonAdjJ, s.AvgTempK, s.MaxTempK} {
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(f))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.MaxWire))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.WireTempsK)))
	for _, t := range s.WireTempsK {
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(t))
	}
	return dst
}

// ParseSample decodes a SAMPLE payload. temps, when non-nil, is reused
// for the wire temperatures to keep the streaming path allocation-free.
func ParseSample(p []byte, temps []float64) (Sample, error) {
	if len(p) < sampleFixedLen {
		return Sample{}, fmt.Errorf("%w: sample is %d bytes (min %d)", ErrBadPayload, len(p), sampleFixedLen)
	}
	var s Sample
	s.EndCycle = binary.LittleEndian.Uint64(p[0:8])
	s.EnergyJ = floatFrom(binary.LittleEndian.Uint64(p[8:16]))
	s.SelfJ = floatFrom(binary.LittleEndian.Uint64(p[16:24]))
	s.CoupAdjJ = floatFrom(binary.LittleEndian.Uint64(p[24:32]))
	s.CoupNonAdjJ = floatFrom(binary.LittleEndian.Uint64(p[32:40]))
	s.AvgTempK = floatFrom(binary.LittleEndian.Uint64(p[40:48]))
	s.MaxTempK = floatFrom(binary.LittleEndian.Uint64(p[48:56]))
	s.MaxWire = int32(binary.LittleEndian.Uint32(p[56:60]))
	n := int(binary.LittleEndian.Uint32(p[60:64]))
	if rest := len(p) - sampleFixedLen; rest != 8*n {
		return Sample{}, fmt.Errorf("%w: sample declares %d wire temps but carries %d bytes", ErrBadPayload, n, rest)
	}
	if n > 0 {
		if cap(temps) < n {
			temps = make([]float64, n)
		}
		temps = temps[:n]
		for i := 0; i < n; i++ {
			temps[i] = floatFrom(binary.LittleEndian.Uint64(p[sampleFixedLen+8*i:]))
		}
		s.WireTempsK = temps
	}
	return s, nil
}

// AppendBusSample appends a multi-bus SAMPLE payload to dst: the uint32
// bus index, then the standard Sample layout. Frames carrying this
// layout set FlagMultiSample.
//
//nanolint:hotpath one encode per streamed multi-bus sample; appends into the caller's reused buffer
func AppendBusSample(dst []byte, bus uint32, s Sample) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, bus)
	return AppendSample(dst, s)
}

// ParseBusSample decodes a FlagMultiSample SAMPLE payload; temps is the
// optional reuse buffer ParseSample documents.
func ParseBusSample(p []byte, temps []float64) (uint32, Sample, error) {
	if len(p) < 4 {
		return 0, Sample{}, fmt.Errorf("%w: multi-bus sample is %d bytes (min %d)", ErrBadPayload, len(p), 4+sampleFixedLen)
	}
	bus := binary.LittleEndian.Uint32(p[0:4])
	s, err := ParseSample(p[4:], temps)
	return bus, s, err
}

// adaptiveTailLen is the fixed part of the adaptive sample tail: the
// switched byte and the encoder-name length byte.
const adaptiveTailLen = 2

// AppendAdaptiveSample appends an adaptive SAMPLE payload to dst: the
// standard Sample layout, then a switched byte (0/1), the active
// encoder's name length (u8), and the name bytes. Frames carrying this
// layout set FlagAdaptiveSample. Encoder names longer than 255 bytes do
// not exist in the scheme registry and are truncated defensively.
//
//nanolint:hotpath one encode per streamed adaptive sample; appends into the caller's reused buffer
func AppendAdaptiveSample(dst []byte, s Sample, encoder string, switched bool) []byte {
	dst = AppendSample(dst, s)
	if switched {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	if len(encoder) > 255 {
		encoder = encoder[:255]
	}
	dst = append(dst, uint8(len(encoder)))
	return append(dst, encoder...)
}

// ParseAdaptiveSample decodes a FlagAdaptiveSample SAMPLE payload; temps
// is the optional reuse buffer ParseSample documents.
func ParseAdaptiveSample(p []byte, temps []float64) (s Sample, encoder string, switched bool, err error) {
	if len(p) < sampleFixedLen+adaptiveTailLen {
		return Sample{}, "", false, fmt.Errorf("%w: adaptive sample is %d bytes (min %d)",
			ErrBadPayload, len(p), sampleFixedLen+adaptiveTailLen)
	}
	// The tail offset depends on the embedded wire-temp count, so locate
	// it before delegating the fixed layout to ParseSample.
	n := int(binary.LittleEndian.Uint32(p[60:64]))
	base := sampleFixedLen + 8*n
	if base+adaptiveTailLen > len(p) {
		return Sample{}, "", false, fmt.Errorf("%w: adaptive sample declares %d wire temps but carries %d bytes",
			ErrBadPayload, n, len(p)-sampleFixedLen)
	}
	nameLen := int(p[base+1])
	if len(p) != base+adaptiveTailLen+nameLen {
		return Sample{}, "", false, fmt.Errorf("%w: adaptive sample declares a %d-byte encoder name but carries %d bytes",
			ErrBadPayload, nameLen, len(p)-base-adaptiveTailLen)
	}
	if p[base] > 1 {
		return Sample{}, "", false, fmt.Errorf("%w: adaptive sample switched byte is %d", ErrBadPayload, p[base])
	}
	s, err = ParseSample(p[:base], temps)
	if err != nil {
		return Sample{}, "", false, err
	}
	return s, string(p[base+adaptiveTailLen:]), p[base] == 1, nil
}

// --- ERROR payload -----------------------------------------------------------

// errorFixedLen is the ERROR payload length before the code string:
// HTTP-equivalent status (u16) and code length (u16).
const errorFixedLen = 4

// WireError is the decoded form of an ERROR payload. Status carries the
// HTTP-equivalent status so clients map NBWP failures onto the exact
// semantics of the v1 surface; Code is the machine-readable v1 error
// code; Owner is the owning-node hint a clustered server attaches to
// not_owner/moved redirects (a JSON OwnerInfo document, empty
// otherwise); Msg is the human-readable message.
type WireError struct {
	Status int
	Code   string
	Owner  string
	Msg    string
}

// AppendError appends the wire encoding of an ERROR payload to dst:
// status u16, code (u16 length prefix), owner (u16 length prefix, zero
// when absent), then the message as the remainder of the frame.
func AppendError(dst []byte, e WireError) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(e.Status))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Code)))
	dst = append(dst, e.Code...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Owner)))
	dst = append(dst, e.Owner...)
	dst = append(dst, e.Msg...)
	return dst
}

// ParseError decodes an ERROR payload.
func ParseError(p []byte) (WireError, error) {
	if len(p) < errorFixedLen+2 {
		return WireError{}, fmt.Errorf("%w: error frame is %d bytes (min %d)", ErrBadPayload, len(p), errorFixedLen+2)
	}
	var e WireError
	e.Status = int(binary.LittleEndian.Uint16(p[0:2]))
	n := int(binary.LittleEndian.Uint16(p[2:4]))
	off := errorFixedLen
	if off+n+2 > len(p) {
		return WireError{}, fmt.Errorf("%w: error code overruns the frame", ErrBadPayload)
	}
	e.Code = string(p[off : off+n])
	off += n
	on := int(binary.LittleEndian.Uint16(p[off : off+2]))
	off += 2
	if off+on > len(p) {
		return WireError{}, fmt.Errorf("%w: error owner overruns the frame", ErrBadPayload)
	}
	e.Owner = string(p[off : off+on])
	e.Msg = string(p[off+on:])
	return e, nil
}

// --- RESTORE payload ---------------------------------------------------------

// AppendRestore appends the wire encoding of a RESTORE request to dst: a
// session id (u16 length prefix; empty targets the slot's bound session)
// followed by an optional checkpoint envelope (empty loads from the
// server store). Carrying the id in the payload is what makes
// resurrection work over a fresh connection: the session is gone, so
// there is no live slot binding to name it.
func AppendRestore(dst []byte, id string, envelope []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	dst = append(dst, envelope...)
	return dst
}

// ParseRestore decodes a RESTORE payload.
func ParseRestore(p []byte) (id string, envelope []byte, err error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: restore payload is %d bytes (min 2)", ErrBadPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if 2+n > len(p) {
		return "", nil, fmt.Errorf("%w: restore session id overruns the frame", ErrBadPayload)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// --- STEP_IDLE payload -------------------------------------------------------

// PutIdle encodes a STEP_IDLE payload (the idle cycle count).
func PutIdle(buf *[8]byte, n uint64) { binary.LittleEndian.PutUint64(buf[:], n) }

// ParseIdle decodes a STEP_IDLE payload.
func ParseIdle(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: idle payload is %d bytes (want 8)", ErrBadPayload, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

package stats

import (
	"math"
	"testing"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Errorf("Std = %g, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	if math.Abs(s.CoeffVar()-0.4) > 1e-12 {
		t.Errorf("CoeffVar = %g, want 0.4", s.CoeffVar())
	}
}

func TestEmptyStream(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.CoeffVar() != 0 {
		t.Error("empty stream not all zero")
	}
}

func TestSummarizeAndOfSlice(t *testing.T) {
	sum := OfSlice([]float64{1, 2, 3})
	if sum.N != 3 || math.Abs(sum.Mean-2) > 1e-12 {
		t.Errorf("OfSlice = %+v", sum)
	}
	var s Stream
	s.Add(10)
	frozen := Summarize(&s)
	if frozen.N != 1 || frozen.Mean != 10 || frozen.Min != 10 || frozen.Max != 10 {
		t.Errorf("Summarize = %+v", frozen)
	}
}

func TestSingleAndNegative(t *testing.T) {
	var s Stream
	s.Add(-5)
	if s.Min() != -5 || s.Max() != -5 || s.Mean() != -5 || s.Std() != 0 {
		t.Error("single negative observation mishandled")
	}
	if s.CoeffVar() != 0 {
		t.Errorf("CoeffVar = %g, want 0 for zero Std", s.CoeffVar())
	}
}

// Package stats provides the small streaming-statistics helpers used by
// the experiment harness (mean/max temperature summaries, energy
// fluctuation comparisons).
package stats

import "math"

// Stream accumulates count, mean, variance (Welford), min and max.
type Stream struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add observes one value.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Stream) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// CoeffVar returns Std/Mean, the scale-free fluctuation measure used to
// compare IA vs DA energy variability (0 when the mean is 0).
func (s *Stream) CoeffVar() float64 {
	if s.mean == 0 { //nanolint:ignore floateq exact-zero guard before division by the mean
		return 0
	}
	return s.Std() / math.Abs(s.mean)
}

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Summary is a frozen snapshot of a Stream.
type Summary struct {
	N              uint64
	Mean, Std      float64
	Min, Max       float64
	CoefficientVar float64
}

// Summarize freezes the stream.
func Summarize(s *Stream) Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Std: s.Std(),
		Min: s.Min(), Max: s.Max(), CoefficientVar: s.CoeffVar(),
	}
}

// OfSlice summarises a slice in one call.
func OfSlice(xs []float64) Summary {
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	return Summarize(&s)
}
